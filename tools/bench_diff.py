#!/usr/bin/env python3
"""Diff two benchmark outputs: relative orderings + regression flags.

The repo's reproduction target is *relative orderings* between engines
(docs/ARCHITECTURE.md, "Substitutions"), not absolute milliseconds, so
this tool compares two captured bench outputs structurally:

  * util::Table blocks (every bench_table*/bench_fig* binary): each
    numeric cell is keyed (table index, row label, column header).
  * google-benchmark console lines (bench_micro): each `BM_*` line's
    real-time value, normalized to nanoseconds.

Checks, in decreasing severity:

  1. ORDER FLIP — within one (table, column) a pair of rows separated
     by more than --threshold in BOTH runs swapped order between
     baseline and current. Orderings are what the figures claim, so
     flips are the strongest signal; requiring a significant margin on
     both sides keeps near-ties (e.g. two routing policies at equal
     throughput) from flapping run to run.
  2. REGRESSION — a time-like metric (ns/ms/time/latency columns, all
     google-benchmark times) grew, or a throughput-like metric
     (qps/rps/throughput columns, e.g. the serve-load generator's
     QPS-at-SLO) shrank, by more than --threshold (default 20%).
  3. CHANGE — any other numeric cell moved by more than --threshold
     (informational; GFLOPS-style metrics shrink on regression).

--orders-only suppresses the value-delta checks (2 and 3): use it when
baseline and current ran on different hardware, where absolute-time
deltas are meaningless but orderings still carry signal (the CI
bench-gate does).

Exit status is 0 unless --strict is given and an ORDER FLIP or
REGRESSION was found; CI runs it non-blocking and uploads the report
(--report FILE) as an artifact. Usage:

    tools/bench_diff.py BASELINE CURRENT [--threshold 0.20]
                        [--report FILE] [--strict] [--orders-only]
"""

import argparse
import re
import sys


def _to_float(cell):
    """Numeric value of a table cell ('1.23', '4.5x', '12.3%') or None."""
    m = re.fullmatch(r"(-?\d+(?:\.\d+)?)\s*(?:x|%)?", cell.strip())
    return float(m.group(1)) if m else None


def _split_columns(line):
    """Split an aligned table line on runs of >= 2 spaces."""
    return [c for c in re.split(r"\s{2,}", line.strip()) if c]


def parse_tables(text):
    """Extract util::Table blocks: {(table#, row, col): value}."""
    metrics = {}
    lines = text.splitlines()
    table_idx = 0
    i = 0
    while i < len(lines) - 1:
        # A table is a header line directly above a dashed rule.
        if re.fullmatch(r"-{4,}", lines[i + 1].strip()) and _split_columns(lines[i]):
            headers = _split_columns(lines[i])
            i += 2
            while i < len(lines):
                cells = _split_columns(lines[i])
                if len(cells) != len(headers) or not cells:
                    break
                row_label = cells[0]
                for col, cell in zip(headers[1:], cells[1:]):
                    value = _to_float(cell)
                    if value is not None:
                        metrics[(f"table{table_idx}", row_label, col)] = value
                i += 1
            table_idx += 1
        else:
            i += 1
    return metrics


_GB_LINE = re.compile(
    r"^(BM_\S+)\s+([\d.]+)\s+(ns|us|ms|s)\s+[\d.]+\s+(?:ns|us|ms|s)\s"
)
_GB_SCALE = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def parse_google_benchmark(text):
    """Extract BM_* real-time values, normalized to ns."""
    metrics = {}
    for line in text.splitlines():
        m = _GB_LINE.match(line)
        if m:
            metrics[("gbench", m.group(1), "time_ns")] = float(
                m.group(2)
            ) * _GB_SCALE[m.group(3)]
    return metrics


def parse(text):
    metrics = parse_tables(text)
    metrics.update(parse_google_benchmark(text))
    return metrics


_TIME_TOKENS = {"ns", "us", "ms", "s", "time", "latency"}
_THROUGHPUT_TOKENS = {"qps", "rps", "throughput"}


def _tokens(key):
    """Whole-word tokens of a column header: a substring test would
    classify 'Dense'/'Patterns' columns (GFLOPS / counts) as time-like
    via the embedded 'ns'."""
    return re.findall(r"[a-z]+", key[2].lower())


def _time_like(key):
    """Whether higher values of this metric are worse."""
    return any(t in _TIME_TOKENS for t in _tokens(key))


def _throughput_like(key):
    """Whether lower values of this metric are worse (qps/rps)."""
    return any(t in _THROUGHPUT_TOKENS for t in _tokens(key))


def _ordered_pairs(metrics, threshold):
    """Per (table, column): row pairs (a, b) where a's value is below
    b's by more than `threshold` relative margin. Near-ties produce no
    pair, so they can never register as a flip."""
    groups = {}
    for (table, row, col), value in metrics.items():
        groups.setdefault((table, col), []).append((row, value))
    pairs = {}
    for group, entries in groups.items():
        sig = set()
        for ra, va in entries:
            for rb, vb in entries:
                if va < vb and (vb - va) > threshold * max(abs(va), abs(vb)):
                    sig.add((ra, rb))
        if sig:
            pairs[group] = sig
    return pairs


def diff(baseline, current, threshold, orders_only=False):
    flips, regressions, changes = [], [], []

    base_pairs = _ordered_pairs(baseline, threshold)
    cur_pairs = _ordered_pairs(current, threshold)
    for group, pairs in sorted(base_pairs.items()):
        cur = cur_pairs.get(group, set())
        for a, b in sorted(pairs):
            if (b, a) in cur:
                flips.append(
                    f"ORDER FLIP  {group[0]}/{group[1]}: "
                    f"{a} < {b}  ->  {b} < {a}"
                )
    if orders_only:
        return flips, regressions, changes

    for key in sorted(set(baseline) & set(current)):
        b, c = baseline[key], current[key]
        if b == 0:
            continue
        rel = (c - b) / abs(b)
        label = "/".join(key)
        if _time_like(key) and rel > threshold:
            regressions.append(
                f"REGRESSION  {label}: {b:g} -> {c:g}  (+{rel * 100:.0f}%)"
            )
        elif _throughput_like(key) and rel < -threshold:
            regressions.append(
                f"REGRESSION  {label}: {b:g} -> {c:g}  ({rel * 100:.0f}%)"
            )
        elif abs(rel) > threshold:
            changes.append(
                f"CHANGE      {label}: {b:g} -> {c:g}  ({rel * 100:+.0f}%)"
            )
    return flips, regressions, changes


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="relative change that counts (default 0.20)")
    ap.add_argument("--report", help="also write the report to this file")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 on order flips or regressions")
    ap.add_argument("--orders-only", action="store_true",
                    help="only check orderings (cross-machine comparisons)")
    args = ap.parse_args()

    with open(args.baseline) as f:
        baseline = parse(f.read())
    with open(args.current) as f:
        current = parse(f.read())

    if not baseline:
        print(f"warning: no metrics parsed from {args.baseline}", file=sys.stderr)
    missing = sorted(set(baseline) - set(current))
    flips, regressions, changes = diff(baseline, current, args.threshold,
                                       args.orders_only)

    out = []
    out.append(
        f"bench_diff: {len(baseline)} baseline / {len(current)} current "
        f"metrics, {len(set(baseline) & set(current))} compared, "
        f"threshold {args.threshold * 100:.0f}%"
    )
    out.extend(flips)
    out.extend(regressions)
    out.extend(changes)
    if missing:
        out.append(f"missing from current run: {len(missing)} metric(s), "
                   f"e.g. {'/'.join(missing[0])}")
    if not (flips or regressions or changes):
        out.append("OK: no order flips, regressions or >threshold changes")

    report = "\n".join(out) + "\n"
    sys.stdout.write(report)
    if args.report:
        with open(args.report, "w") as f:
            f.write(report)

    if args.strict and (flips or regressions):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
