/**
 * @file
 * Capture one served burst as a Chrome trace + profile/metrics report.
 *
 * Compiles a zoo model with the full pattern engine, serves a burst of
 * requests through the batching InferenceServer with tracing enabled,
 * then writes everything observability collected:
 *
 *  - a Chrome trace_event JSON (open in chrome://tracing or
 *    ui.perfetto.dev): queue_wait / batch_form / dispatch / epilogue
 *    serve spans nested over session.run, model.run and one span per
 *    layer;
 *  - the per-layer RunProfile of the last run (Fig. 14-style table:
 *    engine kind, kernel ISA, bytes, per-layer time);
 *  - the process metrics registry (run counters, arena high-water,
 *    memory-planner quality).
 *
 * Usage: trace_dump [vgg16|resnet50] [output.json]
 *        (defaults: vgg16, trace.json)
 */
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "core/patdnn.h"

using namespace patdnn;

int
main(int argc, char** argv)
{
    const std::string net = argc > 1 ? argv[1] : "vgg16";
    const std::string out_path = argc > 2 ? argv[2] : "trace.json";
    Model model;
    if (net == "vgg16") {
        model = buildVGG16(Dataset::kCifar10);
    } else if (net == "resnet50") {
        model = buildResNet50(Dataset::kCifar10);
    } else {
        std::printf("usage: trace_dump [vgg16|resnet50] [output.json]\n");
        return 2;
    }

    if (!Tracer::compiledIn())
        std::printf("note: built with PATDNN_ENABLE_TRACING=OFF — the trace "
                    "will be empty\n");

    DeviceSpec device = makeCpuDevice(4);
    std::printf("compiling %s (pattern engine) for %s...\n",
                model.name().c_str(), device.name.c_str());
    Compiler compiler(device);
    Result<std::shared_ptr<CompiledModel>> built = compiler.compile(model);
    if (!built.ok()) {
        std::printf("compile failed: %s\n", built.status().toString().c_str());
        return 1;
    }
    std::shared_ptr<CompiledModel> compiled = std::move(built).value();

    // Capture exactly this burst.
    Tracer::clear();
    Tracer::setEnabled(true);

    ServerOptions sopts;
    sopts.workers = 2;
    sopts.max_batch = 8;
    sopts.max_linger_ms = 2.0;  // Show batch formation in the trace.
    constexpr int kBurst = 24;
    {
        InferenceServer server(compiled, sopts);
        Rng rng(7);
        std::vector<std::future<Tensor>> futures;
        futures.reserve(kBurst);
        for (int i = 0; i < kBurst; ++i) {
            Tensor in(Shape{1, 3, 32, 32});
            in.fillUniform(rng, -1.0f, 1.0f);
            futures.push_back(server.submit(std::move(in)));
        }
        for (auto& f : futures)
            f.get();
        server.drain();
        ServerStats stats = server.stats();
        std::printf("served %lld requests in %lld batches (avg %.1f rows), "
                    "p50 %.2f ms, p99 %.2f ms\n",
                    static_cast<long long>(stats.completed),
                    static_cast<long long>(stats.batches), stats.avg_batch,
                    stats.latency.p50, stats.latency.p99);
    }
    Tracer::setEnabled(false);

    // The server's worker sessions are private; run one more inference
    // on a local session for the per-layer breakdown table.
    InferenceSession session(compiled);
    Tensor probe(Shape{1, 3, 32, 32});
    Rng prng(11);
    probe.fillUniform(prng, -1.0f, 1.0f);
    session.run(probe);
    std::printf("\nper-layer profile (last run):\n%s\n",
                session.lastRunProfile().renderTable().c_str());

    std::printf("process metrics:\n%s\n",
                MetricsRegistry::global().renderText().c_str());

    Status written = Tracer::writeChromeTrace(out_path);
    if (!written.ok()) {
        std::printf("trace write failed: %s\n", written.toString().c_str());
        return 1;
    }
    std::printf("wrote %s — open it in chrome://tracing or "
                "ui.perfetto.dev\n",
                out_path.c_str());
    return 0;
}
