#!/usr/bin/env bash
# Tier-1 verify: the exact command from ROADMAP.md, plus an optional
# clang-format check (skipped with a notice when the tool is absent).
# Usage: tools/verify.sh [--format-only|--no-format]
set -euo pipefail

cd "$(dirname "$0")/.."

run_format=1
run_build=1
case "${1:-}" in
    --format-only) run_build=0 ;;
    --no-format)   run_format=0 ;;
    "") ;;
    *) echo "usage: tools/verify.sh [--format-only|--no-format]" >&2; exit 2 ;;
esac

if [[ ${run_format} -eq 1 ]]; then
    if command -v clang-format >/dev/null 2>&1; then
        echo "== clang-format check =="
        mapfile -t files < <(git ls-files 'src/*.cc' 'src/*.h' 'tests/*.cc' 'bench/*.cc' 'bench/*.h' 'examples/*.cpp')
        clang-format --dry-run --Werror "${files[@]}"
        echo "format OK (${#files[@]} files)"
    else
        echo "== clang-format not installed, skipping format check =="
    fi
fi

if [[ ${run_build} -eq 1 ]]; then
    echo "== tier-1: configure + build + ctest =="
    # Per-test timeout so a hung suite (e.g. a deadlocked server test)
    # fails fast instead of stalling the whole job.
    cmake -B build -S . && cmake --build build -j && cd build \
        && ctest --output-on-failure -j --timeout 300
fi
