#!/usr/bin/env bash
# Tier-1 verify: the exact command from ROADMAP.md, plus an optional
# clang-format check (skipped with a notice when the tool is absent).
#
# --simd-off configures with -DPATDNN_ENABLE_SIMD=OFF in a separate
# build directory (build-scalar/), so developers on machines without
# AVX2 — and anyone reproducing the CI matrix's scalar cell — run
# tier-1 against the same configuration CI uses without clobbering the
# default build tree's cache. The memory-planner suites (memplan_test,
# memplan_exec_test) run in both cells: planned-arena execution must be
# bit-exact against per-layer execution on the vector AND scalar kernel
# paths.
#
# --trace-off configures with -DPATDNN_ENABLE_TRACING=OFF in
# build-notrace/, reproducing CI's tracing-compiled-out cell: proves
# every TraceSpan emit site dead-strips (obs_test's static_asserts and
# the compiled-out behaviour tests run in this configuration).
#
# --gate-only runs just the error-model header gate (the CI step's
# single source of truth for that grep) and exits.
#
# Usage: tools/verify.sh [--format-only|--no-format|--gate-only] [--simd-off|--trace-off]
set -euo pipefail

cd "$(dirname "$0")/.."

run_format=1
run_build=1
build_dir=build
cmake_args=()
for arg in "$@"; do
    case "${arg}" in
        --format-only) run_build=0 ;;
        --no-format)   run_format=0 ;;
        --gate-only)   run_build=0; run_format=0 ;;
        --simd-off)
            build_dir=build-scalar
            cmake_args+=(-DPATDNN_ENABLE_SIMD=OFF)
            ;;
        --trace-off)
            build_dir=build-notrace
            cmake_args+=(-DPATDNN_ENABLE_TRACING=OFF)
            ;;
        *)
            echo "usage: tools/verify.sh [--format-only|--no-format|--gate-only] [--simd-off|--trace-off]" >&2
            exit 2
            ;;
    esac
done

# Error-model gate: the v1 public API returns patdnn::Status /
# Result<T> (src/util/status.h); the pre-v1 `std::string* error`
# out-param idiom must not creep back into any public header.
echo "== error-model gate: no std::string* error out-params in src/ headers =="
if grep -rnE 'std::string\s*\*\s*error' src --include='*.h'; then
    echo "error: public headers must return patdnn::Status / Result<T>" \
         "instead of bool/nullptr + std::string* error out-params" >&2
    exit 1
fi
echo "error-model gate OK"

if [[ ${run_format} -eq 1 ]]; then
    if command -v clang-format >/dev/null 2>&1; then
        echo "== clang-format check =="
        mapfile -t files < <(git ls-files 'src/*.cc' 'src/*.h' 'tests/*.cc' 'bench/*.cc' 'bench/*.h' 'examples/*.cpp' 'tools/*.cpp')
        clang-format --dry-run --Werror "${files[@]}"
        echo "format OK (${#files[@]} files)"
    else
        echo "== clang-format not installed, skipping format check =="
    fi
fi

if [[ ${run_build} -eq 1 ]]; then
    echo "== tier-1: configure + build + ctest (${build_dir}) =="
    # Per-test timeout so a hung suite (e.g. a deadlocked server test)
    # fails fast instead of stalling the whole job.
    cmake -B "${build_dir}" -S . "${cmake_args[@]}" \
        && cmake --build "${build_dir}" -j && cd "${build_dir}" \
        && ctest --output-on-failure -j --timeout 300
fi
