#!/usr/bin/env python3
"""Check relative markdown links and heading anchors in the repo docs.

Scans the given markdown files (default: README.md, CHANGES.md,
EXPERIMENTS.md, ROADMAP.md, PAPER.md, docs/*.md) for inline links
`[text](target)` and validates every *relative* target:

  * a path target (`docs/KERNELS.md`, `src/rt/tuner.h`) must exist on
    disk, resolved against the linking file's directory;
  * an anchor suffix (`docs/CI.md#bench-gate`) must match a heading in
    the target file, using GitHub's slug rules (lowercase, spaces to
    dashes, punctuation stripped);
  * a bare fragment (`#how-to-add-an-isa`) must match a heading in the
    linking file itself.

External targets (http/https/mailto) are skipped — CI must not depend
on network reachability. Link syntax inside fenced code blocks is
ignored. Exit status 1 if any link is broken; the CI format job runs
this (docs/CI.md).

Usage:
    tools/check_links.py [FILE.md ...]
"""

import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
FENCE_RE = re.compile(r"^(```|~~~)")

DEFAULT_FILES = [
    "README.md",
    "CHANGES.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "PAPER.md",
    "PAPERS.md",
]


def default_files(root):
    files = [f for f in DEFAULT_FILES if os.path.isfile(os.path.join(root, f))]
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        files += sorted(
            os.path.join("docs", f) for f in os.listdir(docs) if f.endswith(".md")
        )
    return files


def strip_fences(lines):
    """Yield (lineno, line) outside fenced code blocks."""
    in_fence = False
    for i, line in enumerate(lines, start=1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield i, line


def github_slug(heading):
    """GitHub's anchor slug: lowercase, strip punctuation, dashes."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading).strip()
    heading = heading.lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchors_of(path):
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    slugs = set()
    for _, line in strip_fences(lines):
        m = HEADING_RE.match(line)
        if m:
            slugs.add(github_slug(m.group(1)))
    return slugs


def check_file(root, relpath, anchor_cache):
    errors = []
    abspath = os.path.join(root, relpath)
    with open(abspath, encoding="utf-8") as f:
        lines = f.read().splitlines()
    for lineno, line in strip_fences(lines):
        for target in LINK_RE.findall(line):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
                continue
            path_part, _, fragment = target.partition("#")
            if path_part:
                dest = os.path.normpath(
                    os.path.join(root, os.path.dirname(relpath), path_part)
                )
                if not os.path.exists(dest):
                    errors.append(
                        f"{relpath}:{lineno}: broken link '{target}' "
                        f"(no such file: {os.path.relpath(dest, root)})"
                    )
                    continue
            else:
                dest = abspath
            if fragment:
                if os.path.isdir(dest) or not dest.endswith(".md"):
                    continue  # only .md targets carry heading anchors
                if dest not in anchor_cache:
                    anchor_cache[dest] = anchors_of(dest)
                if fragment.lower() not in anchor_cache[dest]:
                    errors.append(
                        f"{relpath}:{lineno}: broken anchor '{target}' "
                        f"(no heading '#{fragment}' in "
                        f"{os.path.relpath(dest, root)})"
                    )
    return errors


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    files = sys.argv[1:] or default_files(root)
    anchor_cache = {}
    errors = []
    for relpath in files:
        if not os.path.isfile(os.path.join(root, relpath)):
            errors.append(f"{relpath}: no such file")
            continue
        errors += check_file(root, relpath, anchor_cache)
    for e in errors:
        print(e)
    print(
        f"check_links: {len(files)} files, "
        f"{'FAILED, ' + str(len(errors)) + ' broken' if errors else 'all links ok'}"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
