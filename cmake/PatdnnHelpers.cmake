# Helper functions shared by every subsystem CMakeLists.
#
# The repo uses repo-root-relative includes ("util/logging.h"), so every
# target publishes ${PROJECT_SOURCE_DIR}/src as its public include root.

# Warning set applied to all first-party targets (never to vendored gtest).
function(patdnn_apply_warnings target)
    target_compile_options(${target} PRIVATE -Wall -Wextra)
    if(PATDNN_WERROR)
        target_compile_options(${target} PRIVATE -Werror)
    endif()
endfunction()

# patdnn_add_library(<name> SOURCES <srcs...> [DEPS <targets...>])
#
# Defines a static library `patdnn_<name>` with the repo-wide include
# root and PUBLIC dependency edges, mirroring the include graph — a
# target may only include headers of subsystems it lists in DEPS.
function(patdnn_add_library name)
    cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
    set(target patdnn_${name})
    add_library(${target} STATIC ${ARG_SOURCES})
    add_library(patdnn::${name} ALIAS ${target})
    target_include_directories(${target} PUBLIC ${PROJECT_SOURCE_DIR}/src)
    if(ARG_DEPS)
        target_link_libraries(${target} PUBLIC ${ARG_DEPS})
    endif()
    patdnn_apply_warnings(${target})
endfunction()

# patdnn_add_test(<name>)  — builds tests/<name>.cc against the full
# stack + gtest_main and registers one ctest entry per suite binary.
function(patdnn_add_test name)
    add_executable(${name} ${name}.cc)
    target_link_libraries(${name} PRIVATE patdnn::core GTest::gtest_main)
    patdnn_apply_warnings(${name})
    add_test(NAME ${name} COMMAND ${name})
endfunction()

# patdnn_add_binary(<name> <source>) — bench/example executable.
function(patdnn_add_binary name source)
    add_executable(${name} ${source})
    target_link_libraries(${name} PRIVATE patdnn::core)
    patdnn_apply_warnings(${name})
endfunction()
