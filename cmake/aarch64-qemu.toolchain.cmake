# Cross-compile for aarch64-linux-gnu and run binaries under qemu-user
# (the ci neon-cross job): CMAKE_SYSTEM_PROCESSOR=aarch64 selects the
# NEON kernel table in src/rt/CMakeLists.txt, and the emulator line
# makes every ctest entry execute through qemu-aarch64 transparently —
# so kernels_neon.cc is compiled AND its bit-exactness suites actually
# run on every push, with no ARM hardware in the loop.
#
#   cmake -B build-aarch64 -S . \
#     -DCMAKE_TOOLCHAIN_FILE=cmake/aarch64-qemu.toolchain.cmake
#
# Needs: g++-aarch64-linux-gnu, qemu-user (Debian/Ubuntu package names).
# GoogleTest is built from /usr/src/googletest sources with this same
# toolchain (cmake/PatdnnGTest.cmake), so no cross-built gtest package
# is required.
set(CMAKE_SYSTEM_NAME Linux)
set(CMAKE_SYSTEM_PROCESSOR aarch64)

set(CMAKE_C_COMPILER aarch64-linux-gnu-gcc)
set(CMAKE_CXX_COMPILER aarch64-linux-gnu-g++)

# -L: qemu's guest sysroot, where the target ld.so and libs live.
set(CMAKE_CROSSCOMPILING_EMULATOR "qemu-aarch64;-L;/usr/aarch64-linux-gnu")

# Resolve headers/libs in the target sysroot only; host tools stay host.
set(CMAKE_FIND_ROOT_PATH /usr/aarch64-linux-gnu)
set(CMAKE_FIND_ROOT_PATH_MODE_PROGRAM NEVER)
set(CMAKE_FIND_ROOT_PATH_MODE_LIBRARY ONLY)
set(CMAKE_FIND_ROOT_PATH_MODE_INCLUDE ONLY)
set(CMAKE_FIND_ROOT_PATH_MODE_PACKAGE ONLY)
