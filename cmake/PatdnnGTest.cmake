# Resolve GoogleTest, preferring offline sources so the build works in
# sandboxed/air-gapped environments:
#
#   1. a system source tree (Debian/Ubuntu `libgtest-dev` ships
#      /usr/src/googletest) built with our own flags/ABI;
#   2. an installed GTest CMake package;
#   3. FetchContent from GitHub as the online last resort.
#
# All paths yield the GTest::gtest_main imported/alias target.

if(TARGET GTest::gtest_main)
    return()
endif()

set(PATDNN_SYSTEM_GTEST_SRC "/usr/src/googletest" CACHE PATH
    "System GoogleTest source tree used before trying find_package/FetchContent")

if(EXISTS "${PATDNN_SYSTEM_GTEST_SRC}/CMakeLists.txt")
    message(STATUS "PatDNN: using system GoogleTest sources at ${PATDNN_SYSTEM_GTEST_SRC}")
    set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
    set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
    add_subdirectory(${PATDNN_SYSTEM_GTEST_SRC} ${CMAKE_BINARY_DIR}/_deps/system-googletest EXCLUDE_FROM_ALL)
    if(NOT TARGET GTest::gtest_main)
        add_library(GTest::gtest_main ALIAS gtest_main)
        add_library(GTest::gtest ALIAS gtest)
    endif()
    return()
endif()

find_package(GTest CONFIG QUIET)
if(GTest_FOUND)
    message(STATUS "PatDNN: using installed GTest package")
    return()
endif()

message(STATUS "PatDNN: no offline GoogleTest found, falling back to FetchContent")
include(FetchContent)
FetchContent_Declare(
    googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
)
set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
FetchContent_MakeAvailable(googletest)
