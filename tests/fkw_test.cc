/** @file FKW compressed storage tests: round trips, overhead, corruption. */
#include <gtest/gtest.h>

#include "sparse/csr.h"
#include "sparse/fkw.h"

namespace patdnn {
namespace {

struct Packed
{
    Tensor weights;
    FkwLayer fkw;
};

Packed
makePacked(int64_t filters, int64_t channels, int64_t alpha, int npat, uint64_t seed,
           FkrOptions fkr_opts = {})
{
    Rng rng(seed);
    Packed out;
    out.weights = Tensor(Shape{filters, channels, 3, 3});
    out.weights.fillNormal(rng);
    PatternSet set = canonicalPatternSet(npat);
    PatternAssignment asg = projectJoint(out.weights, set, alpha);
    FkrResult fkr = filterKernelReorder(asg, fkr_opts);
    out.fkw = buildFkw(out.weights, set, asg, fkr);
    return out;
}

TEST(Fkw, TightFormatRoundTrip)
{
    Packed p = makePacked(12, 10, 45, 8, 1);
    std::string err;
    ASSERT_TRUE(validateFkw(p.fkw, &err)) << err;
    EXPECT_TRUE(p.fkw.kernel_pattern.empty());  // Tight format.
    Tensor back = fkwToDense(p.fkw);
    EXPECT_EQ(Tensor::maxAbsDiff(p.weights, back), 0.0);
}

TEST(Fkw, LooseFormatRoundTrip)
{
    FkrOptions no_reorder;
    no_reorder.reorder_filters = false;
    no_reorder.similarity_within_group = false;
    no_reorder.reorder_kernels = false;
    Packed p = makePacked(12, 10, 45, 8, 2, no_reorder);
    std::string err;
    ASSERT_TRUE(validateFkw(p.fkw, &err)) << err;
    EXPECT_FALSE(p.fkw.kernel_pattern.empty());  // Loose format.
    Tensor back = fkwToDense(p.fkw);
    EXPECT_EQ(Tensor::maxAbsDiff(p.weights, back), 0.0);
}

TEST(Fkw, KernelCountMatchesConnectivityAlpha)
{
    Packed p = makePacked(16, 16, 71, 8, 3);
    EXPECT_EQ(p.fkw.kernelCount(), 71);
    EXPECT_EQ(static_cast<int64_t>(p.fkw.weights.size()), 71 * 4);
}

TEST(Fkw, IndexOverheadFarBelowCsr)
{
    // Fig. 16: FKW saves ~90% of CSR's extra structure bytes.
    Packed p = makePacked(64, 64, 1138, 8, 4);  // ~3.6x connectivity.
    CsrWeights csr = buildCsr(p.weights);
    EXPECT_LT(static_cast<double>(p.fkw.indexBytes()),
              0.45 * static_cast<double>(csr.indexBytes()));
}

TEST(Fkw, StrideSegmentsPartitionKernels)
{
    Packed p = makePacked(10, 12, 50, 6, 5);
    for (int64_t f = 0; f < p.fkw.filters; ++f) {
        int32_t prev = 0;
        for (int b = 0; b <= 6; ++b) {
            int32_t s = p.fkw.strideAt(f, b);
            EXPECT_GE(s, prev - (b == 0 ? 0 : 0));
            if (b > 0) {
                EXPECT_GE(s, p.fkw.strideAt(f, b - 1));
            }
            prev = s;
        }
    }
}

TEST(FkwFailureInjection, DetectsBrokenOffset)
{
    Packed p = makePacked(8, 8, 30, 6, 6);
    p.fkw.offset[2] = p.fkw.offset[5];
    std::string err;
    EXPECT_FALSE(validateFkw(p.fkw, &err));
}

TEST(FkwFailureInjection, DetectsBadReorderPermutation)
{
    Packed p = makePacked(8, 8, 30, 6, 7);
    p.fkw.reorder[0] = p.fkw.reorder[1];
    std::string err;
    EXPECT_FALSE(validateFkw(p.fkw, &err));
    EXPECT_NE(err.find("permutation"), std::string::npos);
}

TEST(FkwFailureInjection, DetectsIndexOutOfRange)
{
    Packed p = makePacked(8, 8, 30, 6, 8);
    p.fkw.index[0] = static_cast<int32_t>(p.fkw.in_channels + 1);
    std::string err;
    EXPECT_FALSE(validateFkw(p.fkw, &err));
}

TEST(FkwFailureInjection, DetectsWeightTruncation)
{
    Packed p = makePacked(8, 8, 30, 6, 9);
    p.fkw.weights.pop_back();
    std::string err;
    EXPECT_FALSE(validateFkw(p.fkw, &err));
    EXPECT_NE(err.find("weight array"), std::string::npos);
}

TEST(FkwFailureInjection, DetectsNonMonotonicStride)
{
    Packed p = makePacked(8, 8, 30, 6, 10);
    // Corrupt a middle boundary of filter 0 upward past the next one.
    p.fkw.stride[2] = p.fkw.stride[6] + 5;
    std::string err;
    EXPECT_FALSE(validateFkw(p.fkw, &err));
}

TEST(Fkw, PruneAndPackConvenience)
{
    Rng rng(11);
    Tensor w(Shape{10, 10, 3, 3});
    w.fillNormal(rng);
    PatternSet set = canonicalPatternSet(8);
    FkwLayer fkw = pruneAndPack(w, set, 28);
    std::string err;
    EXPECT_TRUE(validateFkw(fkw, &err)) << err;
    EXPECT_EQ(fkw.kernelCount(), 28);
    // The in-place pruned dense tensor matches the unpacked FKW.
    EXPECT_EQ(Tensor::maxAbsDiff(w, fkwToDense(fkw)), 0.0);
}

}  // namespace
}  // namespace patdnn
