/** @file FKW compressed storage tests: round trips, overhead, corruption. */
#include <gtest/gtest.h>

#include "sparse/csr.h"
#include "sparse/fkw.h"

namespace patdnn {
namespace {

struct Packed
{
    Tensor weights;
    FkwLayer fkw;
};

Packed
makePacked(int64_t filters, int64_t channels, int64_t alpha, int npat, uint64_t seed,
           FkrOptions fkr_opts = {})
{
    Rng rng(seed);
    Packed out;
    out.weights = Tensor(Shape{filters, channels, 3, 3});
    out.weights.fillNormal(rng);
    PatternSet set = canonicalPatternSet(npat);
    PatternAssignment asg = projectJoint(out.weights, set, alpha);
    FkrResult fkr = filterKernelReorder(asg, fkr_opts);
    out.fkw = buildFkw(out.weights, set, asg, fkr);
    return out;
}

TEST(Fkw, TightFormatRoundTrip)
{
    Packed p = makePacked(12, 10, 45, 8, 1);
    Status valid = validateFkw(p.fkw);
    ASSERT_TRUE(valid.ok()) << valid.toString();
    EXPECT_TRUE(p.fkw.kernel_pattern.empty());  // Tight format.
    Tensor back = fkwToDense(p.fkw);
    EXPECT_EQ(Tensor::maxAbsDiff(p.weights, back), 0.0);
}

TEST(Fkw, LooseFormatRoundTrip)
{
    FkrOptions no_reorder;
    no_reorder.reorder_filters = false;
    no_reorder.similarity_within_group = false;
    no_reorder.reorder_kernels = false;
    Packed p = makePacked(12, 10, 45, 8, 2, no_reorder);
    Status valid = validateFkw(p.fkw);
    ASSERT_TRUE(valid.ok()) << valid.toString();
    EXPECT_FALSE(p.fkw.kernel_pattern.empty());  // Loose format.
    Tensor back = fkwToDense(p.fkw);
    EXPECT_EQ(Tensor::maxAbsDiff(p.weights, back), 0.0);
}

TEST(Fkw, KernelCountMatchesConnectivityAlpha)
{
    Packed p = makePacked(16, 16, 71, 8, 3);
    EXPECT_EQ(p.fkw.kernelCount(), 71);
    EXPECT_EQ(static_cast<int64_t>(p.fkw.weights.size()), 71 * 4);
}

TEST(Fkw, IndexOverheadFarBelowCsr)
{
    // Fig. 16: FKW saves ~90% of CSR's extra structure bytes.
    Packed p = makePacked(64, 64, 1138, 8, 4);  // ~3.6x connectivity.
    CsrWeights csr = buildCsr(p.weights);
    EXPECT_LT(static_cast<double>(p.fkw.indexBytes()),
              0.45 * static_cast<double>(csr.indexBytes()));
}

TEST(Fkw, StrideSegmentsPartitionKernels)
{
    Packed p = makePacked(10, 12, 50, 6, 5);
    for (int64_t f = 0; f < p.fkw.filters; ++f) {
        int32_t prev = 0;
        for (int b = 0; b <= 6; ++b) {
            int32_t s = p.fkw.strideAt(f, b);
            EXPECT_GE(s, prev - (b == 0 ? 0 : 0));
            if (b > 0) {
                EXPECT_GE(s, p.fkw.strideAt(f, b - 1));
            }
            prev = s;
        }
    }
}

TEST(FkwFailureInjection, DetectsBrokenOffset)
{
    Packed p = makePacked(8, 8, 30, 6, 6);
    p.fkw.offset[2] = p.fkw.offset[5];
    Status bad = validateFkw(p.fkw);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.code(), ErrorCode::kDataLoss);
}

TEST(FkwFailureInjection, DetectsBadReorderPermutation)
{
    Packed p = makePacked(8, 8, 30, 6, 7);
    p.fkw.reorder[0] = p.fkw.reorder[1];
    Status bad = validateFkw(p.fkw);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.code(), ErrorCode::kDataLoss);
    EXPECT_NE(bad.message().find("permutation"), std::string::npos);
}

TEST(FkwFailureInjection, DetectsIndexOutOfRange)
{
    Packed p = makePacked(8, 8, 30, 6, 8);
    p.fkw.index[0] = static_cast<int32_t>(p.fkw.in_channels + 1);
    Status bad = validateFkw(p.fkw);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.code(), ErrorCode::kDataLoss);
}

TEST(FkwFailureInjection, DetectsWeightTruncation)
{
    Packed p = makePacked(8, 8, 30, 6, 9);
    p.fkw.weights.pop_back();
    Status bad = validateFkw(p.fkw);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.code(), ErrorCode::kDataLoss);
    EXPECT_NE(bad.message().find("weight array"), std::string::npos);
}

TEST(FkwFailureInjection, DetectsNonMonotonicStride)
{
    Packed p = makePacked(8, 8, 30, 6, 10);
    // Corrupt a middle boundary of filter 0 upward past the next one.
    p.fkw.stride[2] = p.fkw.stride[6] + 5;
    Status bad = validateFkw(p.fkw);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.code(), ErrorCode::kDataLoss);
}

TEST(FkwSerialization, ByteRoundTripTightAndLoose)
{
    FkrOptions no_reorder;
    no_reorder.reorder_filters = false;
    no_reorder.similarity_within_group = false;
    no_reorder.reorder_kernels = false;
    for (bool loose : {false, true}) {
        Packed p = makePacked(12, 10, 45, 8, 21, loose ? no_reorder : FkrOptions{});
        std::vector<uint8_t> bytes;
        serializeFkw(p.fkw, bytes);
        FkwLayer back;
        size_t consumed = 0;
        Status parsed = deserializeFkw(bytes.data(), bytes.size(), &consumed,
                                       &back);
        ASSERT_TRUE(parsed.ok()) << parsed.toString();
        EXPECT_EQ(consumed, bytes.size());
        Status valid = validateFkw(back);
        ASSERT_TRUE(valid.ok()) << valid.toString();
        EXPECT_EQ(back.offset, p.fkw.offset);
        EXPECT_EQ(back.reorder, p.fkw.reorder);
        EXPECT_EQ(back.index, p.fkw.index);
        EXPECT_EQ(back.stride, p.fkw.stride);
        EXPECT_EQ(back.kernel_pattern, p.fkw.kernel_pattern);
        EXPECT_EQ(back.weights, p.fkw.weights);
        // Bit-identical dense reconstruction through the byte format.
        EXPECT_EQ(Tensor::maxAbsDiff(fkwToDense(back), fkwToDense(p.fkw)), 0.0);
    }
}

TEST(FkwSerialization, SizeMatchesIndexBytesAccounting)
{
    // The byte format stores the index arrays at exactly the minimal
    // widths indexBytes() accounts for (plus fixed framing overhead).
    Packed p = makePacked(64, 64, 1138, 8, 22);
    std::vector<uint8_t> bytes;
    serializeFkw(p.fkw, bytes);
    size_t payload = p.fkw.indexBytes() + p.fkw.weights.size() * sizeof(float) +
                     p.fkw.patterns.size() * sizeof(uint32_t);
    EXPECT_GE(bytes.size(), payload);
    // Framing: header + per-array width/count prefixes + group table.
    size_t framing = bytes.size() - payload;
    EXPECT_LT(framing, 256 + p.fkw.groups.size() * 12);
}

TEST(FkwSerialization, RejectsTruncatedBytes)
{
    Packed p = makePacked(12, 10, 45, 8, 23);
    std::vector<uint8_t> bytes;
    serializeFkw(p.fkw, bytes);
    for (size_t keep : {size_t(0), size_t(7), size_t(40), bytes.size() - 1}) {
        FkwLayer back;
        size_t consumed = 0;
        Status truncated = deserializeFkw(bytes.data(), keep, &consumed, &back);
        ASSERT_FALSE(truncated.ok()) << keep;
        EXPECT_EQ(truncated.code(), ErrorCode::kDataLoss) << keep;
    }
}

TEST(FkwSerialization, RejectsImplausibleGeometry)
{
    Packed p = makePacked(8, 8, 30, 6, 24);
    std::vector<uint8_t> bytes;
    serializeFkw(p.fkw, bytes);
    bytes[16] = 0xFF;  // kh low byte -> absurd kernel height.
    FkwLayer back;
    size_t consumed = 0;
    Status bad = deserializeFkw(bytes.data(), bytes.size(), &consumed, &back);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.code(), ErrorCode::kDataLoss);
    EXPECT_NE(bad.message().find("geometry"), std::string::npos);
}

TEST(Fkw, PruneAndPackConvenience)
{
    Rng rng(11);
    Tensor w(Shape{10, 10, 3, 3});
    w.fillNormal(rng);
    PatternSet set = canonicalPatternSet(8);
    FkwLayer fkw = pruneAndPack(w, set, 28);
    Status valid = validateFkw(fkw);
    EXPECT_TRUE(valid.ok()) << valid.toString();
    EXPECT_EQ(fkw.kernelCount(), 28);
    // The in-place pruned dense tensor matches the unpacked FKW.
    EXPECT_EQ(Tensor::maxAbsDiff(w, fkwToDense(fkw)), 0.0);
}

}  // namespace
}  // namespace patdnn
