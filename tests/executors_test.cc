/**
 * @file
 * Cross-engine equivalence: every executor must match the reference
 * convolution over a parameterized sweep of geometries. This is the
 * core correctness property of the runtime — the pattern engine's
 * FKR/FKW/LRE transformations must be observationally invisible.
 */
#include <gtest/gtest.h>

#include "prune/pattern_set.h"
#include "prune/projections.h"
#include "rt/conv_csr.h"
#include "rt/conv_im2col.h"
#include "rt/conv_naive.h"
#include "rt/conv_pattern.h"
#include "rt/conv_ref.h"
#include "rt/conv_winograd.h"
#include "sparse/fkw.h"

namespace patdnn {
namespace {

struct ConvCase
{
    int64_t cin, cout, k, h, w, stride, pad;
};

std::ostream&
operator<<(std::ostream& os, const ConvCase& c)
{
    return os << "cin" << c.cin << "_cout" << c.cout << "_k" << c.k << "_h" << c.h
              << "_w" << c.w << "_s" << c.stride << "_p" << c.pad;
}

class DenseExecutorSweep : public ::testing::TestWithParam<ConvCase>
{
};

ConvDesc
makeDesc(const ConvCase& c)
{
    return ConvDesc{"t", c.cin, c.cout, c.k, c.k, c.h, c.w, c.stride, c.pad, 1, 1};
}

TEST_P(DenseExecutorSweep, AllDenseEnginesMatchReference)
{
    ConvCase c = GetParam();
    ConvDesc d = makeDesc(c);
    Rng rng(42);
    Tensor w(Shape{d.cout, d.cin, d.kh, d.kw});
    w.fillNormal(rng, 0.0f, 0.5f);
    Tensor bias(Shape{d.cout});
    bias.fillNormal(rng, 0.0f, 0.1f);
    Tensor in(Shape{1, d.cin, d.h, d.w});
    in.fillUniform(rng, -1.0f, 1.0f);
    Epilogue ep;
    ep.bias = &bias;

    Tensor expect = makeConvOutput(d, 1);
    convReference(d, w, in, expect, ep);

    DeviceSpec dev = makeCpuDevice(4);

    Tensor got = makeConvOutput(d, 1);
    NaiveConv(d, &w, dev).run(in, got, ep);
    EXPECT_LT(Tensor::maxAbsDiff(expect, got), 1e-3) << "naive";

    got.fill(0.0f);
    Im2colConv(d, &w, dev).run(in, got, ep);
    EXPECT_LT(Tensor::maxAbsDiff(expect, got), 1e-3) << "im2col";

    got.fill(0.0f);
    WinogradConv wino(d, &w, dev);
    wino.run(in, got, ep);
    EXPECT_LT(Tensor::maxAbsDiff(expect, got), 2e-3) << "winograd";

    got.fill(0.0f);
    CsrConv(d, buildCsr(w), dev).run(in, got, ep);
    EXPECT_LT(Tensor::maxAbsDiff(expect, got), 1e-3) << "csr";
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DenseExecutorSweep,
    ::testing::Values(ConvCase{3, 8, 3, 16, 16, 1, 1}, ConvCase{8, 16, 3, 15, 17, 1, 1},
                      ConvCase{4, 4, 3, 9, 9, 2, 1}, ConvCase{16, 8, 1, 12, 12, 1, 0},
                      ConvCase{8, 8, 5, 14, 14, 1, 2}, ConvCase{6, 10, 3, 8, 8, 1, 0},
                      ConvCase{12, 12, 3, 20, 10, 2, 1},
                      ConvCase{5, 7, 3, 11, 13, 1, 1}));

/** Pattern engine vs reference across every optimization combination. */
struct PatternCase
{
    bool reorder, lre, blocked;
    LoopPermutation perm;
    bool gpu;
};

class PatternEngineSweep : public ::testing::TestWithParam<PatternCase>
{
};

TEST_P(PatternEngineSweep, MatchesReferenceOnPrunedWeights)
{
    PatternCase pc = GetParam();
    ConvDesc d{"t", 10, 24, 3, 3, 18, 14, 1, 1, 1, 1};
    Rng rng(7);
    Tensor w(Shape{d.cout, d.cin, d.kh, d.kw});
    w.fillNormal(rng, 0.0f, 0.5f);
    Tensor bias(Shape{d.cout});
    bias.fillNormal(rng, 0.0f, 0.1f);

    PatternSet set = canonicalPatternSet(8);
    int64_t kernels = d.cout * d.cin;
    int64_t alpha = kernels * 10 / 36;  // ~3.6x connectivity pruning.
    PatternAssignment asg = projectJoint(w, set, alpha);

    FkrOptions fkr_opts;
    fkr_opts.reorder_filters = pc.reorder;
    fkr_opts.similarity_within_group = pc.reorder;
    fkr_opts.reorder_kernels = pc.reorder;
    FkrResult fkr = filterKernelReorder(asg, fkr_opts);
    FkwLayer fkw = buildFkw(w, set, asg, fkr);
    Status valid = validateFkw(fkw);
    ASSERT_TRUE(valid.ok()) << valid.toString();

    LayerwiseRep lr;
    lr.conv = d;
    lr.opts.reorder = pc.reorder;
    lr.opts.lre = pc.lre;
    lr.tuning.blocked = pc.blocked;
    lr.tuning.permute = pc.perm;
    lr.tuning.tile_oh = 4;
    lr.tuning.unroll_oc = 4;
    lr.tuning.filters_per_task = 5;

    DeviceSpec dev = pc.gpu ? makeGpuDevice() : makeCpuDevice(4);
    PatternConv engine(d, &fkw, lr, dev);

    Tensor in(Shape{1, d.cin, d.h, d.w});
    in.fillUniform(rng, -1.0f, 1.0f);
    Epilogue ep;
    ep.bias = &bias;
    ep.relu = true;

    Tensor expect = makeConvOutput(d, 1);
    convReference(d, w, in, expect, ep);
    Tensor got = makeConvOutput(d, 1);
    engine.run(in, got, ep);
    EXPECT_LT(Tensor::maxAbsDiff(expect, got), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    OptCombos, PatternEngineSweep,
    ::testing::Values(
        PatternCase{false, false, false, LoopPermutation::kCoCiHW, false},
        PatternCase{true, false, false, LoopPermutation::kCoCiHW, false},
        PatternCase{true, true, false, LoopPermutation::kCoCiHW, false},
        PatternCase{true, true, true, LoopPermutation::kCoCiHW, false},
        PatternCase{true, true, true, LoopPermutation::kCoHWCi, false},
        PatternCase{false, true, true, LoopPermutation::kCoHWCi, false},
        PatternCase{true, false, true, LoopPermutation::kCoHWCi, false},
        PatternCase{true, true, true, LoopPermutation::kCoHWCi, true},
        PatternCase{false, false, true, LoopPermutation::kCoHWCi, false}));

TEST(PatternEngineBatch, BatchedInputMatchesReference)
{
    ConvDesc d{"t", 6, 12, 3, 3, 10, 10, 1, 1, 1, 1};
    Rng rng(9);
    Tensor w(Shape{d.cout, d.cin, 3, 3});
    w.fillNormal(rng, 0.0f, 0.5f);
    PatternSet set = canonicalPatternSet(6);
    PatternAssignment asg = projectJoint(w, set, 40);
    FkrResult fkr = filterKernelReorder(asg);
    FkwLayer fkw = buildFkw(w, set, asg, fkr);
    LayerwiseRep lr;
    lr.conv = d;
    DeviceSpec dev = makeCpuDevice(2);
    PatternConv engine(d, &fkw, lr, dev);

    Tensor in(Shape{3, d.cin, d.h, d.w});
    in.fillUniform(rng, -1.0f, 1.0f);
    Tensor expect = makeConvOutput(d, 3);
    convReference(d, w, in, expect);
    Tensor got = makeConvOutput(d, 3);
    engine.run(in, got);
    EXPECT_LT(Tensor::maxAbsDiff(expect, got), 1e-3);
}

TEST(PatternEngineStride, Stride2Geometry)
{
    ConvDesc d{"t", 4, 8, 3, 3, 12, 12, 2, 1, 1, 1};
    Rng rng(11);
    Tensor w(Shape{d.cout, d.cin, 3, 3});
    w.fillNormal(rng, 0.0f, 0.5f);
    PatternSet set = canonicalPatternSet(4);
    PatternAssignment asg = projectJoint(w, set, 16);
    FkrResult fkr = filterKernelReorder(asg);
    FkwLayer fkw = buildFkw(w, set, asg, fkr);
    LayerwiseRep lr;
    lr.conv = d;
    PatternConv engine(d, &fkw, lr, makeCpuDevice(2));
    Tensor in(Shape{1, d.cin, d.h, d.w});
    in.fillUniform(rng, -1.0f, 1.0f);
    Tensor expect = makeConvOutput(d, 1);
    convReference(d, w, in, expect);
    Tensor got = makeConvOutput(d, 1);
    engine.run(in, got);
    EXPECT_LT(Tensor::maxAbsDiff(expect, got), 1e-3);
}

}  // namespace
}  // namespace patdnn
