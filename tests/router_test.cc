/** @file ShardRouter tests: consistent-hash stickiness and minimal
 * remap on scale-out, least-loaded routing, transparent failover with
 * slug preservation, FakeClock health ejection + timed probation
 * reinstatement, and bit-exact failover reconciliation against a
 * direct InferenceSession over real local replicas. */
#include <gtest/gtest.h>

#include <future>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/patdnn.h"

namespace patdnn {
namespace {

Model
tinyModel()
{
    Model m("tiny-router", "test");
    Layer conv;
    conv.kind = OpKind::kConv;
    conv.name = "c1";
    conv.conv = ConvDesc{"c1", 3, 8, 3, 3, 8, 8, 1, 1, 1, 1};
    m.addLayer(std::move(conv));
    Layer relu;
    relu.kind = OpKind::kReLU;
    relu.name = "c1_relu";
    m.addLayer(std::move(relu));
    Layer fl;
    fl.kind = OpKind::kFlatten;
    fl.name = "flatten";
    m.addLayer(std::move(fl));
    Layer fc;
    fc.kind = OpKind::kFullyConnected;
    fc.name = "fc";
    fc.in_features = 8 * 8 * 8;
    fc.out_features = 4;
    m.addLayer(std::move(fc));
    m.randomizeWeights(11);
    return m;
}

std::shared_ptr<const CompiledModel>
compiledTiny()
{
    static std::shared_ptr<const CompiledModel> model = [] {
        Model m = tinyModel();
        DeviceSpec dev = makeFixedWidthCpuDevice(2);
        return std::make_shared<const CompiledModel>(
            m, FrameworkKind::kPatDnnDense, dev);
    }();
    return model;
}

Tensor
makeInput(uint64_t seed, int64_t n = 1)
{
    Tensor in(Shape{n, 3, 8, 8});
    Rng rng(seed);
    in.fillUniform(rng, -1.0f, 1.0f);
    return in;
}

/**
 * Scriptable in-process endpoint: accepts (echoing the input through
 * the future) or refuses with a configured typed Status. Lets the
 * routing/health/failover logic be tested without servers, threads, or
 * model execution. Tests drive the router single-threaded here, so
 * plain members suffice.
 */
class FakeEndpoint : public ReplicaEndpoint
{
  public:
    explicit FakeEndpoint(std::string name) : name_(std::move(name)) {}

    /** kOk = accept; anything else refuses with that code + detail. */
    void
    refuseWith(ErrorCode code, const char* detail = "")
    {
        refuse_ = code;
        detail_ = detail;
    }
    void accept() { refuse_ = ErrorCode::kOk; }
    void setQueueDepth(size_t depth) { depth_ = depth; }
    int attempts() const { return attempts_; }

    Result<RequestId>
    trySubmit(Tensor input, std::future<Tensor>* result,
              SubmitOptions) override
    {
        ++attempts_;
        if (refuse_ != ErrorCode::kOk)
            return Status(refuse_, "fake '" + name_ + "' refuses", detail_);
        if (result != nullptr) {
            std::promise<Tensor> p;
            *result = p.get_future();
            p.set_value(std::move(input));
        }
        return RequestId{++next_id_};
    }

    ServerStats
    stats() const override
    {
        ServerStats s;
        s.queue_depth = depth_;
        return s;
    }

    std::string describe() const override { return name_; }

  private:
    std::string name_;
    ErrorCode refuse_ = ErrorCode::kOk;
    const char* detail_ = "";
    size_t depth_ = 0;
    int attempts_ = 0;
    RequestId next_id_ = 0;
};

/** Route `key` once and return the replica index that accepted. */
int
routeOnce(ShardRouter& router, const std::string& model, uint64_t key)
{
    int replica = -1;
    std::future<Tensor> f;
    Result<RequestId> r =
        router.trySubmit(model, key, makeInput(key), &f, {}, &replica);
    EXPECT_TRUE(r.ok()) << r.status().toString();
    return replica;
}

TEST(Router, ConsistentHashIsStickyAndSpreads)
{
    ShardRouter router;
    auto a = std::make_shared<FakeEndpoint>("a");
    auto b = std::make_shared<FakeEndpoint>("b");
    auto c = std::make_shared<FakeEndpoint>("c");
    EXPECT_EQ(router.addReplica("m", a), 0);
    EXPECT_EQ(router.addReplica("m", b), 1);
    EXPECT_EQ(router.addReplica("m", c), 2);
    EXPECT_EQ(router.replicaCount("m"), 3u);

    constexpr uint64_t kKeys = 64;
    std::map<uint64_t, int> home;
    std::set<int> used;
    for (uint64_t key = 0; key < kKeys; ++key) {
        home[key] = routeOnce(router, "m", key);
        used.insert(home[key]);
    }
    // Same key, same replica — every time.
    for (uint64_t key = 0; key < kKeys; ++key)
        EXPECT_EQ(routeOnce(router, "m", key), home[key]) << key;
    // With 64 vnodes per replica, 64 keys land on all three.
    EXPECT_EQ(used.size(), 3u);

    RouterStats s = router.stats("m");
    EXPECT_EQ(s.routed, 2 * kKeys);
    EXPECT_EQ(s.failovers, 0);
    EXPECT_EQ(s.shed, 0);
    EXPECT_EQ(s.replicas[0].routed + s.replicas[1].routed +
                  s.replicas[2].routed,
              2 * kKeys);
}

TEST(Router, ConsistentHashRemapsMinimallyOnScaleOut)
{
    // Two routers over the same replica set, the second with one extra
    // replica: every key either keeps its old home or moves to the NEW
    // replica — scale-out never reshuffles keys between old replicas.
    ShardRouter before, after;
    for (ShardRouter* r : {&before, &after}) {
        r->addReplica("m", std::make_shared<FakeEndpoint>("a"));
        r->addReplica("m", std::make_shared<FakeEndpoint>("b"));
    }
    after.addReplica("m", std::make_shared<FakeEndpoint>("c"));

    constexpr uint64_t kKeys = 200;
    uint64_t moved = 0;
    for (uint64_t key = 0; key < kKeys; ++key) {
        const int old_home = routeOnce(before, "m", key);
        const int new_home = routeOnce(after, "m", key);
        if (new_home != old_home) {
            EXPECT_EQ(new_home, 2) << "key " << key
                                   << " moved between OLD replicas";
            ++moved;
        }
    }
    // ~1/3 of the key space should move; well under half in any case.
    EXPECT_GT(moved, 0u);
    EXPECT_LT(moved, kKeys / 2);
}

TEST(Router, LeastLoadedRoutesToShallowestQueue)
{
    RouterOptions opts;
    opts.policy = RoutePolicy::kLeastLoaded;
    ShardRouter router(opts);
    auto a = std::make_shared<FakeEndpoint>("a");
    auto b = std::make_shared<FakeEndpoint>("b");
    auto c = std::make_shared<FakeEndpoint>("c");
    router.addReplica("m", a);
    router.addReplica("m", b);
    router.addReplica("m", c);

    a->setQueueDepth(5);
    b->setQueueDepth(0);
    c->setQueueDepth(2);
    // The key is ignored: any key goes to the shallowest queue.
    EXPECT_EQ(routeOnce(router, "m", 1), 1);
    EXPECT_EQ(routeOnce(router, "m", 999), 1);

    a->setQueueDepth(1);
    b->setQueueDepth(4);
    c->setQueueDepth(9);
    EXPECT_EQ(routeOnce(router, "m", 1), 0);

    RouterStats s = router.stats("m");
    EXPECT_EQ(s.routed, 3);
    EXPECT_EQ(s.replicas[0].queue_depth, 1u);
    EXPECT_EQ(s.replicas[2].queue_depth, 9u);
}

TEST(Router, FailoverMovesLoadAndShedKeepsAdmissionSlug)
{
    ShardRouter router;
    auto a = std::make_shared<FakeEndpoint>("a");
    auto b = std::make_shared<FakeEndpoint>("b");
    router.addReplica("m", a);
    router.addReplica("m", b);

    // Discover a key's home while both replicas are healthy.
    const uint64_t key = 42;
    const int home = routeOnce(router, "m", key);
    const int other = 1 - home;
    FakeEndpoint& home_ep = home == 0 ? *a : *b;
    const RouterStats base = router.stats("m");

    // Refusal at the home replica: the request transparently lands on
    // the other one.
    home_ep.refuseWith(ErrorCode::kResourceExhausted,
                       admission_detail::kOverFairShare);
    int replica = -1;
    std::future<Tensor> f;
    Result<RequestId> r =
        router.trySubmit("m", key, makeInput(key), &f, {}, &replica);
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_EQ(replica, other);
    RouterStats s = router.stats("m");
    EXPECT_EQ(s.failovers - base.failovers, 1);
    EXPECT_EQ(s.shed - base.shed, 0);
    EXPECT_EQ(s.replicas[static_cast<size_t>(home)].refusals, 1);

    // Every replica refusing = a shed, and the returned status is the
    // LAST refusal — an admission shed keeps its admission_detail slug
    // through the router.
    (home == 0 ? *b : *a)
        .refuseWith(ErrorCode::kResourceExhausted,
                    admission_detail::kOverFairShare);
    replica = -1;
    r = router.trySubmit("m", key, makeInput(key), &f, {}, &replica);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(replica, -1);
    EXPECT_EQ(r.code(), ErrorCode::kResourceExhausted);
    EXPECT_STREQ(r.status().detail(), admission_detail::kOverFairShare);
    EXPECT_EQ(router.stats("m").shed - base.shed, 1);

    // The future wrapper surfaces the same code + slug as a ServeError.
    std::future<Tensor> failed = router.submit("m", key, makeInput(key));
    try {
        failed.get();
        FAIL() << "expected ServeError";
    } catch (const ServeError& e) {
        EXPECT_EQ(e.code(), ErrorCode::kResourceExhausted);
        EXPECT_STREQ(e.detail(), admission_detail::kOverFairShare);
    }
}

TEST(Router, InvalidArgumentPropagatesWithoutFailoverOrPenalty)
{
    ShardRouter router;
    auto a = std::make_shared<FakeEndpoint>("a");
    auto b = std::make_shared<FakeEndpoint>("b");
    router.addReplica("m", a);
    router.addReplica("m", b);

    const uint64_t key = 7;
    const int home = routeOnce(router, "m", key);
    FakeEndpoint& home_ep = home == 0 ? *a : *b;
    FakeEndpoint& other_ep = home == 0 ? *b : *a;
    const int other_attempts = other_ep.attempts();

    // A malformed request is the caller's fault: no retry on a healthy
    // replica, no health penalty for the refusing one.
    home_ep.refuseWith(ErrorCode::kInvalidArgument);
    std::future<Tensor> f;
    Result<RequestId> r = router.trySubmit("m", key, makeInput(key), &f);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), ErrorCode::kInvalidArgument);
    EXPECT_EQ(other_ep.attempts(), other_attempts);
    RouterStats s = router.stats("m");
    EXPECT_EQ(s.failovers, 0);
    EXPECT_EQ(s.shed, 0);
    EXPECT_EQ(s.replicas[static_cast<size_t>(home)].refusals, 0);
    EXPECT_FALSE(s.replicas[static_cast<size_t>(home)].ejected);
}

TEST(Router, EjectionAndTimedProbationReinstatement)
{
    auto clock = std::make_shared<FakeClock>();
    RouterOptions opts;
    opts.eject_after_failures = 2;
    opts.reinstate_after_ms = 100.0;
    opts.clock = clock;
    ShardRouter router(opts);
    auto a = std::make_shared<FakeEndpoint>("a");
    auto b = std::make_shared<FakeEndpoint>("b");
    router.addReplica("m", a);
    router.addReplica("m", b);

    const uint64_t key = 13;
    const int home = routeOnce(router, "m", key);
    const int other = 1 - home;
    FakeEndpoint& home_ep = home == 0 ? *a : *b;
    const RouterStats base = router.stats("m");
    const int base_attempts = home_ep.attempts();

    // Two consecutive refusals eject the home replica; both requests
    // still succeed on the other one.
    home_ep.refuseWith(ErrorCode::kUnavailable);
    EXPECT_EQ(routeOnce(router, "m", key), other);
    EXPECT_FALSE(router.stats("m").replicas[static_cast<size_t>(home)].ejected);
    EXPECT_EQ(routeOnce(router, "m", key), other);
    RouterStats s = router.stats("m");
    EXPECT_TRUE(s.replicas[static_cast<size_t>(home)].ejected);
    EXPECT_EQ(s.ejections - base.ejections, 1);
    EXPECT_EQ(s.failovers - base.failovers, 2);
    EXPECT_EQ(home_ep.attempts(), base_attempts + 2);

    // While ejected the replica is not even attempted.
    EXPECT_EQ(routeOnce(router, "m", key), other);
    EXPECT_EQ(home_ep.attempts(), base_attempts + 2);
    clock->advanceMs(50.0);  // Window not elapsed yet.
    EXPECT_EQ(routeOnce(router, "m", key), other);
    EXPECT_EQ(home_ep.attempts(), base_attempts + 2);

    // Past the window: probation. Still refusing, so the one probe
    // re-ejects it immediately (threshold - 1 carry-over).
    clock->advanceMs(60.0);
    EXPECT_EQ(routeOnce(router, "m", key), other);
    s = router.stats("m");
    EXPECT_EQ(home_ep.attempts(), base_attempts + 3);
    EXPECT_TRUE(s.replicas[static_cast<size_t>(home)].ejected);
    EXPECT_EQ(s.reinstatements - base.reinstatements, 1);
    EXPECT_EQ(s.ejections - base.ejections, 2);

    // Healed: the next probation probe succeeds and fully reinstates.
    home_ep.accept();
    clock->advanceMs(110.0);
    EXPECT_EQ(routeOnce(router, "m", key), home);
    s = router.stats("m");
    EXPECT_FALSE(s.replicas[static_cast<size_t>(home)].ejected);
    EXPECT_EQ(s.reinstatements - base.reinstatements, 2);
    EXPECT_EQ(s.ejections - base.ejections, 2);
}

TEST(Router, AllReplicasEjectedShedsUnavailable)
{
    auto clock = std::make_shared<FakeClock>();
    RouterOptions opts;
    opts.eject_after_failures = 1;
    opts.reinstate_after_ms = 1000.0;
    opts.clock = clock;
    ShardRouter router(opts);
    auto only = std::make_shared<FakeEndpoint>("only");
    only->refuseWith(ErrorCode::kUnavailable);
    router.addReplica("m", only);

    // First submit: attempted, refused, ejected on the spot.
    std::future<Tensor> f;
    Result<RequestId> r = router.trySubmit("m", 1, makeInput(1), &f);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), ErrorCode::kUnavailable);
    EXPECT_EQ(only->attempts(), 1);

    // Second submit: no candidates at all — shed without an attempt.
    r = router.trySubmit("m", 1, makeInput(1), &f);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), ErrorCode::kUnavailable);
    EXPECT_EQ(only->attempts(), 1);
    RouterStats s = router.stats("m");
    EXPECT_EQ(s.shed, 2);
    EXPECT_EQ(s.ejections, 1);
    EXPECT_EQ(s.routed, 0);
}

TEST(Router, UnknownModelIsNotFound)
{
    ShardRouter router;
    std::future<Tensor> f;
    Result<RequestId> r = router.trySubmit("nope", 1, makeInput(1), &f);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), ErrorCode::kNotFound);
    std::future<Tensor> failed = router.submit("nope", 1, makeInput(1));
    try {
        failed.get();
        FAIL() << "expected ServeError";
    } catch (const ServeError& e) {
        EXPECT_EQ(e.code(), ErrorCode::kNotFound);
    }
    EXPECT_TRUE(router.models().empty());
}

TEST(Router, LocalReplicaFailoverReconciliationBitExact)
{
    // Two REAL server replicas over one shared compiled model. Phase 1
    // routes a key set across both; phase 2 shuts one replica down and
    // routes the keys that were homed there — every output, routed or
    // failed over, must be bit-exact against a direct session.
    auto model = compiledTiny();
    InferenceSession reference(model);

    ServerOptions sopts;
    sopts.workers = 1;
    sopts.max_queue = 64;
    auto s0 = std::make_shared<InferenceServer>(model, sopts);
    auto s1 = std::make_shared<InferenceServer>(model, sopts);
    ShardRouter router;
    router.addReplica("m", std::make_shared<LocalReplica>(s0));
    router.addReplica("m", std::make_shared<LocalReplica>(s1));

    // Phase 1: route keys 0..31, record each key's home replica.
    std::vector<uint64_t> homed_at_0;
    for (uint64_t key = 0; key < 32; ++key) {
        int replica = -1;
        std::future<Tensor> f;
        Result<RequestId> r =
            router.trySubmit("m", key, makeInput(key), &f, {}, &replica);
        ASSERT_TRUE(r.ok()) << r.status().toString();
        if (replica == 0)
            homed_at_0.push_back(key);
        EXPECT_EQ(Tensor::maxAbsDiff(f.get(), reference.run(makeInput(key))),
                  0.0)
            << "key " << key;
    }
    ASSERT_FALSE(homed_at_0.empty());
    EXPECT_EQ(router.stats("m").failovers, 0);

    // Phase 2: kill replica 0. Its keys must fail over to replica 1 and
    // reconcile bit-exact; nothing is shed, and after enough refusals
    // the dead replica is ejected from the candidate set.
    s0->shutdown();
    for (uint64_t key : homed_at_0) {
        int replica = -1;
        std::future<Tensor> f;
        Result<RequestId> r =
            router.trySubmit("m", key, makeInput(key), &f, {}, &replica);
        ASSERT_TRUE(r.ok()) << "key " << key << ": " << r.status().toString();
        EXPECT_EQ(replica, 1) << "key " << key;
        EXPECT_EQ(Tensor::maxAbsDiff(f.get(), reference.run(makeInput(key))),
                  0.0)
            << "key " << key;
    }
    RouterStats s = router.stats("m");
    EXPECT_EQ(s.shed, 0);
    EXPECT_EQ(s.routed, 32 + static_cast<int64_t>(homed_at_0.size()));
    EXPECT_GE(s.failovers, 1);
    if (homed_at_0.size() >= 3) {  // Default eject_after_failures.
        EXPECT_TRUE(s.replicas[0].ejected);
    }
    router.shutdownAll();
}

TEST(Router, AddLocalReplicasChargesSharedAdmissionUnderModelName)
{
    AdmissionOptions aopts;
    aopts.max_queued_samples = 1;
    auto admission = std::make_shared<AdmissionController>(aopts);

    ServerOptions sopts;
    sopts.workers = 1;
    sopts.max_queue = 16;
    sopts.start_paused = true;  // Requests stage: the budget stays full.
    sopts.admission = admission;
    ShardRouter router;
    Status added = router.addLocalReplicas("m", compiledTiny(), 2, sopts);
    ASSERT_TRUE(added.ok()) << added.toString();
    EXPECT_EQ(router.replicaCount("m"), 2u);
    // Both replicas charge under the model's name.
    EXPECT_EQ(admission->stats().models.count("m"), 1u);

    // First request takes the whole budget on its home replica.
    std::future<Tensor> f1;
    ASSERT_TRUE(router.trySubmit("m", 1, makeInput(1), &f1).ok());
    EXPECT_EQ(admission->stats().queued_samples, 1);

    // Second request: home replica sheds on admission, failover finds
    // the OTHER replica shed by the SAME shared budget — the router
    // reports a shed that keeps the admission slug.
    std::future<Tensor> f2;
    Result<RequestId> r = router.trySubmit("m", 2, makeInput(2), &f2);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), ErrorCode::kResourceExhausted);
    EXPECT_STREQ(r.status().detail(), admission_detail::kOverFairShare);
    RouterStats s = router.stats("m");
    EXPECT_EQ(s.shed, 1);
    EXPECT_EQ(s.failovers, 1);

    // Shutdown drops the staged request and returns its charge.
    router.shutdownAll();
    EXPECT_EQ(admission->stats().queued_samples, 0);

    // Null model / bad counts are typed errors.
    EXPECT_EQ(router.addLocalReplicas("x", nullptr, 1).code(),
              ErrorCode::kInvalidArgument);
    EXPECT_EQ(router.addLocalReplicas("x", compiledTiny(), 0).code(),
              ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace patdnn
