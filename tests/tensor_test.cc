/** @file Tensor unit tests. */
#include <gtest/gtest.h>

#include <cstdint>

#include "tensor/tensor.h"

namespace patdnn {
namespace {

TEST(Tensor, ZeroInitialized)
{
    Tensor t(Shape{3, 4});
    for (int64_t i = 0; i < t.numel(); ++i)
        EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, InitFromValues)
{
    Tensor t(Shape{2, 2}, {1, 2, 3, 4});
    EXPECT_EQ(t.at2(0, 1), 2.0f);
    EXPECT_EQ(t.at2(1, 0), 3.0f);
}

TEST(Tensor, At4Indexing)
{
    Tensor t(Shape{2, 3, 4, 5});
    t.at4(1, 2, 3, 4) = 7.0f;
    EXPECT_EQ(t[1 * 60 + 2 * 20 + 3 * 5 + 4], 7.0f);
}

TEST(Tensor, AlignedStorage)
{
    Tensor t(Shape{17});
    EXPECT_EQ(reinterpret_cast<uintptr_t>(t.data()) % 64, 0u);
}

TEST(Tensor, FillAndCountNonZero)
{
    Tensor t(Shape{10});
    EXPECT_EQ(t.countNonZero(), 0);
    t.fill(2.0f);
    EXPECT_EQ(t.countNonZero(), 10);
    t[3] = 0.0f;
    EXPECT_EQ(t.countNonZero(), 9);
}

TEST(Tensor, NormSq)
{
    Tensor t(Shape{3}, {1, 2, 2});
    EXPECT_DOUBLE_EQ(t.normSq(), 9.0);
}

TEST(Tensor, MaxAbsDiff)
{
    Tensor a(Shape{3}, {1, 2, 3});
    Tensor b(Shape{3}, {1, 2.5f, 3});
    EXPECT_FLOAT_EQ(static_cast<float>(Tensor::maxAbsDiff(a, b)), 0.5f);
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor t(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
    t.reshape(Shape{3, 2});
    EXPECT_EQ(t.at2(2, 1), 6.0f);
}

TEST(Tensor, DeterministicRandomFill)
{
    Rng a(5), b(5);
    Tensor x(Shape{32}), y(Shape{32});
    x.fillNormal(a);
    y.fillNormal(b);
    EXPECT_EQ(Tensor::maxAbsDiff(x, y), 0.0);
}

TEST(Tensor, HeInitVariance)
{
    Rng rng(1);
    Tensor t(Shape{40000});
    t.fillHe(rng, 100);
    double var = t.normSq() / static_cast<double>(t.numel());
    EXPECT_NEAR(var, 2.0 / 100.0, 0.002);
}

TEST(TensorDeath, ReshapeMustPreserveNumel)
{
    Tensor t(Shape{4});
    EXPECT_DEATH(t.reshape(Shape{5}), "preserve numel");
}

TEST(TensorDeath, MaxAbsDiffShapeMismatch)
{
    Tensor a(Shape{2}), b(Shape{3});
    EXPECT_DEATH(Tensor::maxAbsDiff(a, b), "shape mismatch");
}

}  // namespace
}  // namespace patdnn
