/** @file Computational-graph and pass tests. */
#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/passes.h"
#include "nn/zoo.h"
#include "rt/framework.h"

namespace patdnn {
namespace {

TEST(GraphBuilder, VggGraphShape)
{
    Model m = buildVGG16(Dataset::kCifar10);
    Graph g = buildGraph(m);
    EXPECT_EQ(static_cast<size_t>(g.nodes().size()), m.layers().size());
    EXPECT_EQ(g.outputNode(), static_cast<int>(m.layers().size()) - 1);
    g.check();
}

TEST(GraphBuilder, ResidualAddHasTwoInputs)
{
    Model m = buildResNet50(Dataset::kCifar10);
    Graph g = buildGraph(m);
    bool found = false;
    for (const auto& n : g.nodes())
        if (n.kind == OpKind::kAdd) {
            EXPECT_EQ(n.inputs.size(), 2u);
            found = true;
        }
    EXPECT_TRUE(found);
}

TEST(GraphPasses, BnFoldingRemovesBnNodes)
{
    Model m = buildVGG16(Dataset::kCifar10);
    Graph g = buildGraph(m);
    int64_t bn_before = 0;
    for (const auto& n : g.nodes())
        if (!n.dead && n.kind == OpKind::kBatchNorm)
            ++bn_before;
    EXPECT_GT(bn_before, 0);
    PassStats s = foldBatchNorm(g);
    EXPECT_EQ(s.nodes_affected, bn_before);
    for (const auto& n : g.nodes()) {
        if (!n.dead) {
            EXPECT_NE(n.kind, OpKind::kBatchNorm);
        }
    }
}

TEST(GraphPasses, BnFoldingScalesWeights)
{
    Model m("tiny", "test");
    Layer conv;
    conv.kind = OpKind::kConv;
    conv.name = "c";
    conv.conv = ConvDesc{"c", 1, 2, 3, 3, 4, 4, 1, 1, 1, 1};
    conv.weight = Tensor(Shape{2, 1, 3, 3});
    conv.weight.fill(1.0f);
    conv.bias = Tensor(Shape{2});
    conv.bias.fill(1.0f);
    m.addLayer(std::move(conv));
    Layer bn;
    bn.kind = OpKind::kBatchNorm;
    bn.name = "bn";
    bn.bn_scale = Tensor(Shape{2}, {2.0f, 3.0f});
    bn.bn_shift = Tensor(Shape{2}, {0.5f, -0.5f});
    m.addLayer(std::move(bn));
    Graph g = buildGraph(m);
    foldBatchNorm(g);
    const GraphNode& c = g.nodes()[0];
    EXPECT_TRUE(c.fused_bn);
    EXPECT_EQ(c.weight[0], 2.0f);
    EXPECT_EQ(c.weight[9], 3.0f);
    EXPECT_FLOAT_EQ(c.bias[0], 2.5f);
    EXPECT_FLOAT_EQ(c.bias[1], 2.5f);
}

TEST(GraphPasses, ConvReluFusion)
{
    Model m = buildVGG16(Dataset::kCifar10);
    Graph g = buildGraph(m);
    foldBatchNorm(g);
    PassStats s = fuseConvRelu(g);
    EXPECT_GT(s.nodes_affected, 0);
    for (const auto& n : g.nodes()) {
        if (!n.dead && n.kind == OpKind::kConv) {
            EXPECT_TRUE(n.fused_relu) << n.name;
        }
    }
}

TEST(GraphPasses, FlattenFolded)
{
    Model m = buildVGG16(Dataset::kCifar10);
    Graph g = buildGraph(m);
    PassStats s = foldConstants(g);
    EXPECT_EQ(s.nodes_affected, 1);
}

TEST(GraphPasses, DeadNodeElimination)
{
    Model m = buildVGG16(Dataset::kCifar10);
    Graph g = buildGraph(m);
    // Orphan a node by rewiring output past it: mark the last FC's
    // input chain live only.
    foldBatchNorm(g);
    fuseConvRelu(g);
    foldConstants(g);
    PassStats s = eliminateDeadNodes(g);
    EXPECT_EQ(s.nodes_affected, 0);  // Chain graphs have no dead nodes.
    g.check();
}

TEST(GraphPasses, OptimizedGraphPreservesModelOutput)
{
    // Numerical equivalence: the same model with and without graph
    // passes (BN folding, fusion, constant folding) must produce the
    // same logits through the dense framework.
    Model m = buildVGG16(Dataset::kCifar10);
    // Give batchnorms non-trivial parameters so folding is exercised.
    Rng rng(3);
    for (auto& l : m.layers()) {
        if (l.kind == OpKind::kBatchNorm) {
            l.bn_scale.fillUniform(rng, 0.5f, 1.5f);
            l.bn_shift.fillUniform(rng, -0.2f, 0.2f);
        }
    }
    DeviceSpec dev = makeCpuDevice(4);
    CompileOptions with;
    CompileOptions without;
    without.run_graph_passes = false;
    CompiledModel a(m, FrameworkKind::kPatDnnDense, dev, with);
    CompiledModel b(m, FrameworkKind::kPatDnnDense, dev, without);
    Tensor in(Shape{1, 3, 32, 32});
    in.fillUniform(rng, 0.0f, 1.0f);
    Tensor ya = a.run(in);
    Tensor yb = b.run(in);
    EXPECT_LT(Tensor::maxAbsDiff(ya, yb), 5e-2);
}

}  // namespace
}  // namespace patdnn
