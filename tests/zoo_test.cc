/** @file Model zoo structure tests against the paper's Tables 5 and 6. */
#include <gtest/gtest.h>

#include "nn/zoo.h"

namespace patdnn {
namespace {

// Structure-only tests skip the He weight fill: ImageNet-scale random
// init dominated this suite's runtime (~30 s) while every assertion
// below reads only geometry-derived metadata.
TEST(Zoo, Vgg16HasThirteenConvAndThreeFc)
{
    Model m = buildVGG16(Dataset::kImageNet, ZooWeights::kStructureOnly);
    EXPECT_EQ(m.countKind(OpKind::kConv), 13);
    EXPECT_EQ(m.countKind(OpKind::kFullyConnected), 3);
    EXPECT_EQ(m.countKind(OpKind::kMaxPool), 5);
}

TEST(Zoo, Vgg16ImageNetSizeMatchesPaper)
{
    // Paper Table 5: VGG-16 ImageNet = 553.5 MB (serialized file);
    // raw fp32 parameters are ~528 MB (138.4M params).
    Model m = buildVGG16(Dataset::kImageNet, ZooWeights::kStructureOnly);
    EXPECT_NEAR(m.sizeMB(), 528.0, 8.0);
}

TEST(Zoo, Vgg16Cifar10IsSmall)
{
    Model m = buildVGG16(Dataset::kCifar10, ZooWeights::kStructureOnly);
    EXPECT_LT(m.sizeMB(), 80.0);
    EXPECT_GT(m.sizeMB(), 30.0);
}

TEST(Zoo, ResNet50MainPathConvCount)
{
    // Paper Table 5 counts 49 conv layers (main path).
    Model m = buildResNet50(Dataset::kImageNet, ZooWeights::kStructureOnly);
    EXPECT_EQ(mainPathConvCount(m), 49);
    EXPECT_NEAR(m.sizeMB(), 102.5, 10.0);
}

TEST(Zoo, MobileNetV2Structure)
{
    Model m = buildMobileNetV2(Dataset::kImageNet, ZooWeights::kStructureOnly);
    // Paper Table 5: 52 conv layers, ~14.2 MB.
    EXPECT_NEAR(static_cast<double>(m.countKind(OpKind::kConv)), 52.0, 3.0);
    EXPECT_NEAR(m.sizeMB(), 14.2, 3.0);
    // Depthwise blocks present.
    bool has_dw = false;
    for (const auto& l : m.layers())
        if (l.kind == OpKind::kConv && l.conv.groups > 1)
            has_dw = true;
    EXPECT_TRUE(has_dw);
}

TEST(Zoo, VggUniqueLayersMatchTable6)
{
    auto layers = vggUniqueLayers();
    ASSERT_EQ(layers.size(), 9u);
    EXPECT_EQ(layers[0].filterShapeStr(), "[64,3,3,3]");
    EXPECT_EQ(layers[3].filterShapeStr(), "[128,128,3,3]");
    EXPECT_EQ(layers[8].filterShapeStr(), "[512,512,3,3]");
    EXPECT_EQ(layers[0].h, 224);
    EXPECT_EQ(layers[4].h, 56);
    EXPECT_EQ(layers[8].h, 14);
}

TEST(Zoo, VggUniqueLayersSpatialDivisor)
{
    auto layers = vggUniqueLayers(4);
    EXPECT_EQ(layers[0].h, 56);
    EXPECT_EQ(layers[8].h, 4);  // Clamped at 4.
}

TEST(Zoo, OutputShapesChainCorrectly)
{
    for (Dataset ds : {Dataset::kImageNet, Dataset::kCifar10}) {
        for (const char* name : {"VGG", "RNT", "MBNT"}) {
            Model m = buildByShortName(name, ds, ZooWeights::kStructureOnly);
            for (const auto& l : m.layers())
                if (l.kind == OpKind::kConv)
                    l.conv.check();
        }
    }
}

TEST(Zoo, WeightsAreInitialized)
{
    Model m = buildVGG16(Dataset::kCifar10);
    for (const auto& l : m.layers()) {
        if (l.kind == OpKind::kConv) {
            EXPECT_GT(l.weight.countNonZero(), 0) << l.name;
        }
    }
}

TEST(ZooDeath, UnknownShortName)
{
    EXPECT_DEATH(buildByShortName("NOPE", Dataset::kCifar10, ZooWeights::kStructureOnly),
                 "unknown model");
}

}  // namespace
}  // namespace patdnn
