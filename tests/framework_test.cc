/** @file End-to-end framework facade tests. */
#include <gtest/gtest.h>

#include "rt/framework.h"

namespace patdnn {
namespace {

Model
tinyModel()
{
    // A small VGG-flavored model that runs in milliseconds.
    Model m("tiny-vgg", "test");
    auto add_conv = [&](const std::string& name, int64_t cin, int64_t cout,
                        int64_t res) {
        Layer conv;
        conv.kind = OpKind::kConv;
        conv.name = name;
        conv.conv = ConvDesc{name, cin, cout, 3, 3, res, res, 1, 1, 1, 1};
        m.addLayer(std::move(conv));
        Layer relu;
        relu.kind = OpKind::kReLU;
        relu.name = name + "_relu";
        m.addLayer(std::move(relu));
    };
    add_conv("c1", 3, 16, 16);
    add_conv("c2", 16, 16, 16);
    Layer pool;
    pool.kind = OpKind::kMaxPool;
    pool.name = "p1";
    m.addLayer(std::move(pool));
    add_conv("c3", 16, 32, 8);
    Layer fl;
    fl.kind = OpKind::kFlatten;
    fl.name = "flatten";
    m.addLayer(std::move(fl));
    Layer fc;
    fc.kind = OpKind::kFullyConnected;
    fc.name = "fc";
    fc.in_features = 32 * 8 * 8;
    fc.out_features = 10;
    m.addLayer(std::move(fc));
    m.randomizeWeights(77);
    return m;
}

TEST(Framework, DenseEnginesAgree)
{
    Model m = tinyModel();
    DeviceSpec dev = makeCpuDevice(4);
    Tensor in(Shape{1, 3, 16, 16});
    Rng rng(1);
    in.fillUniform(rng, 0.0f, 1.0f);
    CompiledModel tflite(m, FrameworkKind::kTfliteLike, dev);
    CompiledModel tvm(m, FrameworkKind::kTvmLike, dev);
    CompiledModel mnn(m, FrameworkKind::kMnnLike, dev);
    CompiledModel ours(m, FrameworkKind::kPatDnnDense, dev);
    Tensor y0 = tflite.run(in);
    Tensor y1 = tvm.run(in);
    Tensor y2 = mnn.run(in);
    Tensor y3 = ours.run(in);
    EXPECT_LT(Tensor::maxAbsDiff(y0, y1), 1e-2);
    EXPECT_LT(Tensor::maxAbsDiff(y0, y2), 1e-2);
    EXPECT_LT(Tensor::maxAbsDiff(y0, y3), 1e-2);
}

TEST(Framework, SparseEnginesAgreeWithEachOther)
{
    // CSR-sparse and PatDNN prune with identical options, so their
    // outputs must match exactly (same surviving weights).
    Model m = tinyModel();
    DeviceSpec dev = makeCpuDevice(4);
    Tensor in(Shape{1, 3, 16, 16});
    Rng rng(2);
    in.fillUniform(rng, 0.0f, 1.0f);
    CompileOptions opts;
    CompiledModel csr(m, FrameworkKind::kCsrSparse, dev, opts);
    CompiledModel pat(m, FrameworkKind::kPatDnn, dev, opts);
    Tensor a = csr.run(in);
    Tensor b = pat.run(in);
    EXPECT_LT(Tensor::maxAbsDiff(a, b), 1e-3);
}

TEST(Framework, SparseKindsActuallyPrune)
{
    Model m = tinyModel();
    DeviceSpec dev = makeCpuDevice(2);
    CompiledModel dense(m, FrameworkKind::kPatDnnDense, dev);
    CompiledModel sparse(m, FrameworkKind::kPatDnn, dev);
    EXPECT_EQ(dense.convNonZeros(), dense.convDense());
    EXPECT_LT(sparse.convNonZeros(), dense.convDense() / 3);
}

TEST(Framework, GpuDeviceRuns)
{
    Model m = tinyModel();
    DeviceSpec dev = makeGpuDevice();
    CompiledModel pat(m, FrameworkKind::kPatDnn, dev);
    Tensor in(Shape{1, 3, 16, 16});
    Rng rng(3);
    in.fillUniform(rng, 0.0f, 1.0f);
    Tensor y = pat.run(in);
    EXPECT_EQ(y.shape(), Shape({1, 10}));
}

TEST(Framework, ResidualModelRunsEndToEnd)
{
    Model m = buildResNet50(Dataset::kCifar10);
    DeviceSpec dev = makeCpuDevice(4);
    CompiledModel dense(m, FrameworkKind::kPatDnnDense, dev);
    Tensor in(Shape{1, 3, 32, 32});
    Rng rng(4);
    in.fillUniform(rng, 0.0f, 1.0f);
    Tensor y = dense.run(in);
    EXPECT_EQ(y.shape(), Shape({1, 10}));
}

TEST(Framework, DepthwiseModelRunsEndToEnd)
{
    Model m = buildMobileNetV2(Dataset::kCifar10);
    DeviceSpec dev = makeCpuDevice(4);
    CompiledModel sparse(m, FrameworkKind::kPatDnn, dev);
    Tensor in(Shape{1, 3, 32, 32});
    Rng rng(5);
    in.fillUniform(rng, 0.0f, 1.0f);
    Tensor y = sparse.run(in);
    EXPECT_EQ(y.shape(), Shape({1, 10}));
}

TEST(Framework, TimingReturnsPositiveMs)
{
    Model m = tinyModel();
    DeviceSpec dev = makeCpuDevice(2);
    CompiledModel eng(m, FrameworkKind::kPatDnn, dev);
    Tensor in(Shape{1, 3, 16, 16});
    Rng rng(6);
    in.fillUniform(rng, 0.0f, 1.0f);
    EXPECT_GT(eng.timeMs(in, 1, 2), 0.0);
    EXPECT_GT(eng.convOnlyTimeMs(in, 1, 2), 0.0);
}

TEST(FrameworkNames, AllDistinct)
{
    std::vector<FrameworkKind> kinds = {
        FrameworkKind::kTfliteLike, FrameworkKind::kTvmLike,
        FrameworkKind::kMnnLike,    FrameworkKind::kPatDnnDense,
        FrameworkKind::kCsrSparse,  FrameworkKind::kPatDnn};
    for (size_t i = 0; i < kinds.size(); ++i)
        for (size_t j = i + 1; j < kinds.size(); ++j)
            EXPECT_NE(frameworkName(kinds[i]), frameworkName(kinds[j]));
}

TEST(CompiledConvLayerTest, SingleLayerKindsRun)
{
    ConvDesc d{"L", 16, 32, 3, 3, 14, 14, 1, 1, 1, 1};
    DeviceSpec dev = makeCpuDevice(2);
    for (auto kind : {FrameworkKind::kTfliteLike, FrameworkKind::kTvmLike,
                      FrameworkKind::kMnnLike, FrameworkKind::kPatDnnDense,
                      FrameworkKind::kCsrSparse, FrameworkKind::kPatDnn}) {
        CompiledConvLayer layer(d, kind, dev);
        double ms = layer.timeMs(0, 1);
        EXPECT_GT(ms, 0.0) << frameworkName(kind);
        EXPECT_GT(layer.gflops(ms), 0.0);
        EXPECT_GT(layer.effectiveMacs(), 0);
    }
}

TEST(CompiledConvLayerTest, SparseHasFewerEffectiveMacs)
{
    ConvDesc d{"L", 16, 32, 3, 3, 14, 14, 1, 1, 1, 1};
    DeviceSpec dev = makeCpuDevice(2);
    CompiledConvLayer dense(d, FrameworkKind::kPatDnnDense, dev);
    CompiledConvLayer sparse(d, FrameworkKind::kPatDnn, dev);
    EXPECT_LT(sparse.effectiveMacs(), dense.effectiveMacs() / 3);
}

}  // namespace
}  // namespace patdnn
