/** @file High-level pruning scheme tests (Table 2 / Table 4 machinery). */
#include <gtest/gtest.h>

#include "prune/pruners.h"

namespace patdnn {
namespace {

/**
 * Every test here used to retrain an identical net (same seeds, same
 * config) from scratch, which dominated the suite's runtime. Train the
 * master once per process and hand each test a deep clone to mutate.
 */
struct TrainedNet
{
    SyntheticShapes data{4, 12, 1, 128, 64, 777};
    Net net = master().clone();

  private:
    static const Net&
    master()
    {
        static const Net trained = [] {
            Net net = buildVggStyleNet(4, 12, 1, 8, 21);
            SyntheticShapes data{4, 12, 1, 128, 64, 777};
            TrainConfig cfg;
            cfg.epochs = 5;
            cfg.batch_size = 16;
            cfg.lr = 2e-3f;
            trainNet(net, data, cfg);
            return net;
        }();
        return trained;
    }
};

PruneOptions
fastOpts()
{
    PruneOptions opts;
    opts.retrain_epochs = 3;
    opts.admm.admm_iterations = 2;
    opts.admm.epochs_per_iteration = 2;
    opts.admm.retrain_epochs = 3;
    return opts;
}

TEST(Pruners, SchemeNamesAreDistinct)
{
    EXPECT_EQ(pruneSchemeName(PruneScheme::kPattern), "pattern");
    EXPECT_EQ(pruneSchemeName(PruneScheme::kPatternConnectivity),
              "pattern+connectivity");
    EXPECT_NE(pruneSchemeName(PruneScheme::kFilter),
              pruneSchemeName(PruneScheme::kChannel));
}

TEST(Pruners, DenseSchemeIsIdentity)
{
    TrainedNet t;
    PruneReport r = pruneWithScheme(t.net, t.data, PruneScheme::kNone, fastOpts());
    EXPECT_DOUBLE_EQ(r.conv_compression, 1.0);
    EXPECT_DOUBLE_EQ(r.pruned_accuracy, r.dense_accuracy);
}

TEST(Pruners, NonStructuredHitsCompressionTarget)
{
    TrainedNet t;
    PruneOptions opts = fastOpts();
    opts.target_compression = 8.0;
    PruneReport r =
        pruneWithScheme(t.net, t.data, PruneScheme::kNonStructured, opts);
    EXPECT_NEAR(r.conv_compression, 8.0, 0.5);
}

TEST(Pruners, FilterPruningZeroesFilters)
{
    TrainedNet t;
    PruneOptions opts = fastOpts();
    opts.target_compression = 4.0;
    PruneReport r = pruneWithScheme(t.net, t.data, PruneScheme::kFilter, opts);
    EXPECT_GT(r.conv_compression, 3.0);
}

TEST(Pruners, PatternSchemeGivesFixedCompression)
{
    TrainedNet t;
    PruneReport r = pruneWithScheme(t.net, t.data, PruneScheme::kPattern, fastOpts());
    // 4-of-9 entries kept = 2.25x on 3x3 layers.
    EXPECT_NEAR(r.conv_compression, 2.25, 0.3);
    EXPECT_FALSE(r.assignments.empty());
}

TEST(Pruners, JointSchemeCompressesHardest)
{
    TrainedNet t;
    PruneReport joint =
        pruneWithScheme(t.net, t.data, PruneScheme::kPatternConnectivity, fastOpts());
    EXPECT_GT(joint.conv_compression, 4.0);
}

TEST(Pruners, StructuredLosesMoreAccuracyThanPattern)
{
    // The design-space claim of Table 2: at the SAME pruning rate,
    // coarse-grained structured pruning hurts accuracy more than
    // fine-grained pattern pruning. Compare filter pruning at 2.25x
    // against kernel-pattern pruning (4-of-9 kept = 2.25x).
    TrainedNet a;
    PruneOptions opts = fastOpts();
    opts.target_compression = 2.25;
    PruneReport filter = pruneWithScheme(a.net, a.data, PruneScheme::kFilter, opts);

    TrainedNet b;
    PruneReport pattern = pruneWithScheme(b.net, b.data, PruneScheme::kPattern,
                                          fastOpts());

    double filter_drop = filter.dense_accuracy - filter.pruned_accuracy;
    double pattern_drop = pattern.dense_accuracy - pattern.pruned_accuracy;
    EXPECT_LE(pattern_drop, filter_drop + 0.05)
        << "filter drop " << filter_drop << " pattern drop " << pattern_drop;
}

}  // namespace
}  // namespace patdnn
