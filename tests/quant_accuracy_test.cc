/**
 * @file
 * Differential accuracy harness for the int8 path: the quantized model
 * is a *different numerics* for the same function, so the gate is
 * Table-3-style top-1 agreement against the f32 compile of the same
 * zoo model over a sampled input batch — not bitwise equality. Also
 * pins that quantization actually engages (layers flip to i8), that
 * the quantized compile is deterministic, and that the RunProfile
 * attributes precision per layer.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/patdnn.h"
#include "nn/zoo.h"

namespace patdnn {
namespace {

/** Per-sample argmax over a [batch, classes] logit tensor. */
std::vector<int64_t>
topOne(const Tensor& logits)
{
    const Shape& s = logits.shape();
    EXPECT_EQ(s.rank(), 2);
    std::vector<int64_t> out(static_cast<size_t>(s.dim(0)));
    const float* d = logits.data();
    for (int64_t b = 0; b < s.dim(0); ++b) {
        int64_t best = 0;
        for (int64_t c = 1; c < s.dim(1); ++c)
            if (d[b * s.dim(1) + c] > d[b * s.dim(1) + best])
                best = c;
        out[static_cast<size_t>(b)] = best;
    }
    return out;
}

int64_t
countQuantizedLayers(const CompiledModel& m)
{
    int64_t n = 0;
    for (const CompiledLayerState& st : m.exportState())
        if (st.live && st.quantized)
            ++n;
    return n;
}

TEST(QuantAccuracy, VggTopOneAgreementAtLeast99Percent)
{
    // VGG-16 on CIFAR-10 geometry: all 13 convs are groups==1 dense
    // layers, so the whole conv stack runs quantized. 100 samples make
    // the >= 99% gate allow exactly one argmax flip.
    Model m = buildVGG16(Dataset::kCifar10);
    DeviceSpec dev = makeCpuDevice(4);
    CompileOptions f32_opts;
    CompiledModel f32(m, FrameworkKind::kPatDnnDense, dev, f32_opts);

    CompileOptions i8_opts;
    i8_opts.precision = Precision::kInt8;
    CompiledModel i8(m, FrameworkKind::kPatDnnDense, dev, i8_opts);
    EXPECT_EQ(countQuantizedLayers(f32), 0);
    EXPECT_EQ(countQuantizedLayers(i8), 13)
        << "every VGG conv layer should run quantized";

    const int64_t samples = 100;
    Tensor in(Shape{samples, 3, 32, 32});
    Rng rng(2024);
    in.fillUniform(rng, 0.0f, 1.0f);

    std::vector<int64_t> want = topOne(f32.run(in));
    std::vector<int64_t> got = topOne(i8.run(in));
    ASSERT_EQ(want.size(), static_cast<size_t>(samples));
    int64_t agree = 0;
    for (size_t i = 0; i < want.size(); ++i)
        agree += want[i] == got[i] ? 1 : 0;
    EXPECT_GE(agree, 99)
        << "top-1 agreement " << agree << "/" << samples
        << " fell below the 99% accuracy-delta gate";
}

TEST(QuantAccuracy, QuantizedCompileAndRunAreDeterministic)
{
    Model m = buildVGG16(Dataset::kCifar10);
    DeviceSpec dev = makeCpuDevice(2);
    CompileOptions opts;
    opts.precision = Precision::kInt8;
    CompiledModel a(m, FrameworkKind::kPatDnnDense, dev, opts);
    CompiledModel b(m, FrameworkKind::kPatDnnDense, dev, opts);

    Tensor in(Shape{2, 3, 32, 32});
    Rng rng(7);
    in.fillUniform(rng, 0.0f, 1.0f);
    Tensor ya = a.run(in);
    Tensor yb = b.run(in);
    ASSERT_EQ(ya.shape(), yb.shape());
    EXPECT_EQ(std::memcmp(ya.data(), yb.data(),
                          static_cast<size_t>(ya.numel()) * sizeof(float)),
              0)
        << "two identical int8 compiles must run bit-identically "
           "(calibration and quantization are deterministic)";

    // The calibrated scales themselves must match layer for layer.
    std::vector<CompiledLayerState> sa = a.exportState();
    std::vector<CompiledLayerState> sb = b.exportState();
    ASSERT_EQ(sa.size(), sb.size());
    for (size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(sa[i].quantized, sb[i].quantized);
        EXPECT_EQ(sa[i].act_scale, sb[i].act_scale);
        EXPECT_EQ(sa[i].weight_scales, sb[i].weight_scales);
    }
}

TEST(QuantAccuracy, PercentileCalibrationAlsoClearsTheGate)
{
    Model m = buildVGG16(Dataset::kCifar10);
    DeviceSpec dev = makeCpuDevice(4);
    CompiledModel f32(m, FrameworkKind::kPatDnnDense, dev);

    CompileOptions opts;
    opts.precision = Precision::kInt8;
    opts.calibration.method = CalibrationMethod::kPercentile;
    opts.calibration.percentile = 99.9;
    CompiledModel i8(m, FrameworkKind::kPatDnnDense, dev, opts);
    ASSERT_GT(countQuantizedLayers(i8), 0);

    const int64_t samples = 50;
    Tensor in(Shape{samples, 3, 32, 32});
    Rng rng(11);
    in.fillUniform(rng, 0.0f, 1.0f);
    std::vector<int64_t> want = topOne(f32.run(in));
    std::vector<int64_t> got = topOne(i8.run(in));
    int64_t agree = 0;
    for (size_t i = 0; i < want.size(); ++i)
        agree += want[i] == got[i] ? 1 : 0;
    EXPECT_GE(agree, (samples * 98) / 100);
}

TEST(QuantAccuracy, SparseKindsIgnoreThePrecisionKnob)
{
    // Pattern-pruned FKW layers have no i8 engine; asking for int8 on a
    // sparse kind must be a no-op, not an error or a silent wrong path.
    Model m = buildVGG16(Dataset::kCifar10);
    DeviceSpec dev = makeCpuDevice(2);
    CompileOptions opts;
    opts.precision = Precision::kInt8;
    CompiledModel sparse(m, FrameworkKind::kPatDnn, dev, opts);
    EXPECT_EQ(countQuantizedLayers(sparse), 0);
    Tensor in(Shape{1, 3, 32, 32});
    Rng rng(5);
    in.fillUniform(rng, 0.0f, 1.0f);
    EXPECT_EQ(sparse.run(in).shape(), Shape({1, 10}));
}

TEST(QuantAccuracy, RunProfileAttributesPrecisionPerLayer)
{
    Model m = buildVGG16(Dataset::kCifar10);
    DeviceSpec dev = makeCpuDevice(2);
    CompileOptions opts;
    opts.precision = Precision::kInt8;
    CompiledModel i8(m, FrameworkKind::kPatDnnDense, dev, opts);

    Tensor in(Shape{1, 3, 32, 32});
    Rng rng(9);
    in.fillUniform(rng, 0.0f, 1.0f);
    Workspace ws;
    RunProfile profile;
    i8.run(in, ws, &profile);

    int64_t i8_layers = 0, f32_layers = 0;
    for (const RunProfileEntry& e : profile.entries) {
        if (e.calls == 0)
            continue;
        if (e.prec == "i8")
            ++i8_layers;
        else if (e.prec == "f32")
            ++f32_layers;
    }
    EXPECT_EQ(i8_layers, 13) << "all conv layers attribute as i8";
    EXPECT_GT(f32_layers, 0) << "fc/pool layers stay f32";
    EXPECT_NE(profile.renderTable().find("i8"), std::string::npos);
}

}  // namespace
}  // namespace patdnn
