/** @file Shape unit tests. */
#include <gtest/gtest.h>

#include "tensor/shape.h"

namespace patdnn {
namespace {

TEST(Shape, RankAndDims)
{
    Shape s{2, 3, 4};
    EXPECT_EQ(s.rank(), 3);
    EXPECT_EQ(s.dim(0), 2);
    EXPECT_EQ(s.dim(2), 4);
    EXPECT_EQ(s[1], 3);
}

TEST(Shape, Numel)
{
    EXPECT_EQ(Shape({2, 3, 4}).numel(), 24);
    EXPECT_EQ(Shape({7}).numel(), 7);
    EXPECT_EQ(Shape{}.numel(), 1);
}

TEST(Shape, StridesRowMajor)
{
    auto s = Shape{2, 3, 4}.strides();
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(s[0], 12);
    EXPECT_EQ(s[1], 4);
    EXPECT_EQ(s[2], 1);
}

TEST(Shape, Equality)
{
    EXPECT_EQ(Shape({1, 2}), Shape({1, 2}));
    EXPECT_NE(Shape({1, 2}), Shape({2, 1}));
}

TEST(Shape, Str)
{
    EXPECT_EQ(Shape({64, 3, 3, 3}).str(), "[64, 3, 3, 3]");
    EXPECT_EQ(Shape{}.str(), "[]");
}

TEST(ShapeDeath, OutOfRangeDimAborts)
{
    Shape s{2, 3};
    EXPECT_DEATH(s.dim(2), "out of range");
    EXPECT_DEATH(s.dim(-1), "out of range");
}

}  // namespace
}  // namespace patdnn
