/**
 * @file
 * Packed tiled GEMM backend: pack/unpack layout invariants, bit-exact
 * agreement across ISAs and blocking choices (the dispatch.h contract
 * extended to gemm_tile), differential correctness of the rebuilt
 * im2col executor against the reference convolution, and the dense
 * auto-tune path (TuneCache memoization, parallel-GA determinism).
 */
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/compiler.h"
#include "rt/conv_im2col.h"
#include "rt/conv_ref.h"
#include "rt/gemm_packed.h"
#include "rt/simd/dispatch.h"
#include "rt/tuner.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace patdnn {
namespace {

/** The contract's accumulation chain: acc starts from C, sequential in
 * k, multiply then add. Any bit-exact tile kernel must match this. */
void
refGemmAccum(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n)
{
    for (int64_t i = 0; i < m; ++i)
        for (int64_t j = 0; j < n; ++j) {
            float acc = c[i * n + j];
            for (int64_t kk = 0; kk < k; ++kk)
                acc += a[i * k + kk] * b[kk * n + j];
            c[i * n + j] = acc;
        }
}

std::vector<float>
randomMatrix(int64_t rows, int64_t cols, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> m(static_cast<size_t>(rows * cols));
    for (float& v : m)
        v = rng.uniform(-1.0f, 1.0f);
    return m;
}

TEST(GemmPack, LhsTilePanelsHoldRowsColumnMajorWithZeroPad)
{
    const int64_t m = 6, k = 5;
    const int mr = 4;
    std::vector<float> a = randomMatrix(m, k, 11);
    std::vector<float> packed(static_cast<size_t>(packedLhsElems(m, k, mr)),
                              -1.0f);
    packLhsTiles(a.data(), m, k, /*lda=*/k, mr, packed.data());

    // Tile i, depth kk, lane r holds A[i*mr + r][kk]; lanes past M are 0.
    const int64_t tiles = (m + mr - 1) / mr;
    ASSERT_EQ(static_cast<int64_t>(packed.size()), tiles * k * mr);
    for (int64_t i = 0; i < tiles; ++i)
        for (int64_t kk = 0; kk < k; ++kk)
            for (int r = 0; r < mr; ++r) {
                int64_t row = i * mr + r;
                float want = row < m ? a[static_cast<size_t>(row * k + kk)] : 0.0f;
                EXPECT_EQ(packed[static_cast<size_t>((i * k + kk) * mr + r)], want)
                    << "tile " << i << " depth " << kk << " lane " << r;
            }
}

TEST(GemmPack, RhsTilePanelsHoldColumnsRowMajorWithZeroPad)
{
    const int64_t k = 7, n = 10;
    const int nr = 8;
    std::vector<float> b = randomMatrix(k, n, 12);
    std::vector<float> packed(static_cast<size_t>(packedRhsElems(k, n, nr)),
                              -1.0f);
    packRhsTiles(b.data(), k, n, /*ldb=*/n, nr, packed.data());

    const int64_t tiles = (n + nr - 1) / nr;
    ASSERT_EQ(static_cast<int64_t>(packed.size()), tiles * k * nr);
    for (int64_t j = 0; j < tiles; ++j)
        for (int64_t kk = 0; kk < k; ++kk)
            for (int c = 0; c < nr; ++c) {
                int64_t col = j * nr + c;
                float want = col < n ? b[static_cast<size_t>(kk * n + col)] : 0.0f;
                EXPECT_EQ(packed[static_cast<size_t>((j * k + kk) * nr + c)], want)
                    << "tile " << j << " depth " << kk << " lane " << c;
            }
}

TEST(GemmPack, I8LhsPanelsAreKPairInterleavedWithZeroPad)
{
    const int64_t m = 6, k = 5;  // Odd k: the tail pair is zero-padded.
    const int mr = 4;
    Rng rng(41);
    std::vector<int8_t> a(static_cast<size_t>(m * k));
    for (auto& v : a)
        v = static_cast<int8_t>(rng.uniformInt(-127, 127));
    std::vector<int16_t> packed(
        static_cast<size_t>(packedLhsElemsI8(m, k, mr)), -1);
    packLhsTilesI8(a.data(), m, k, /*lda=*/k, mr, packed.data());

    const int64_t tiles = (m + mr - 1) / mr;
    const int64_t kp = (k + 1) / 2;
    ASSERT_EQ(static_cast<int64_t>(packed.size()), tiles * kp * mr * 2);
    // Tile i, pair p, lane r, slot s holds A[i*mr + r][2p + s]; lanes
    // past M and the odd-k tail slot hold 0.
    for (int64_t i = 0; i < tiles; ++i)
        for (int64_t p = 0; p < kp; ++p)
            for (int r = 0; r < mr; ++r)
                for (int s = 0; s < 2; ++s) {
                    int64_t row = i * mr + r;
                    int64_t kk = 2 * p + s;
                    // The pack widens i8 values to i16 verbatim.
                    int16_t want =
                        (row < m && kk < k)
                            ? static_cast<int16_t>(
                                  a[static_cast<size_t>(row * k + kk)])
                            : static_cast<int16_t>(0);
                    EXPECT_EQ(packed[static_cast<size_t>(
                                  ((i * kp + p) * mr + r) * 2 + s)],
                              want)
                        << "tile " << i << " pair " << p << " lane " << r
                        << " slot " << s;
                }
}

TEST(GemmPack, I8RhsPanelsAreKPairInterleavedWithZeroPad)
{
    const int64_t k = 7, n = 10;
    const int nr = 8;
    Rng rng(42);
    std::vector<int8_t> b(static_cast<size_t>(k * n));
    for (auto& v : b)
        v = static_cast<int8_t>(rng.uniformInt(-127, 127));
    std::vector<int8_t> packed(
        static_cast<size_t>(packedRhsElemsI8(k, n, nr)), -1);
    packRhsTilesI8(b.data(), k, n, /*ldb=*/n, nr, packed.data());

    const int64_t tiles = (n + nr - 1) / nr;
    const int64_t kp = (k + 1) / 2;
    ASSERT_EQ(static_cast<int64_t>(packed.size()), tiles * kp * nr * 2);
    for (int64_t j = 0; j < tiles; ++j)
        for (int64_t p = 0; p < kp; ++p)
            for (int c = 0; c < nr; ++c)
                for (int s = 0; s < 2; ++s) {
                    int64_t col = j * nr + c;
                    int64_t kk = 2 * p + s;
                    int8_t want =
                        (col < n && kk < k)
                            ? b[static_cast<size_t>(kk * n + col)]
                            : static_cast<int8_t>(0);
                    EXPECT_EQ(packed[static_cast<size_t>(
                                  ((j * kp + p) * nr + c) * 2 + s)],
                              want)
                        << "tile " << j << " pair " << p << " lane " << c
                        << " slot " << s;
                }
}

/** The i8 packed GEMM agrees exactly with a naive i32 loop on every
 * available ISA and under every blocking choice — integer accumulation
 * is exact, so this is plain equality, not a chain-matching argument. */
TEST(GemmPacked, I8ExactAgainstNaiveOnEveryIsaAndBlocking)
{
    const int64_t m = 13, k = 37, n = 29;  // Odd: ragged edges everywhere.
    Rng rng(43);
    std::vector<int8_t> a(static_cast<size_t>(m * k));
    std::vector<int8_t> b(static_cast<size_t>(k * n));
    for (auto& v : a)
        v = static_cast<int8_t>(rng.uniformInt(-127, 127));
    for (auto& v : b)
        v = static_cast<int8_t>(rng.uniformInt(-127, 127));

    std::vector<int32_t> want(static_cast<size_t>(m * n), 0);
    for (int64_t i = 0; i < m; ++i)
        for (int64_t j = 0; j < n; ++j) {
            int32_t acc = 0;
            for (int64_t kk = 0; kk < k; ++kk)
                acc += static_cast<int32_t>(a[static_cast<size_t>(i * k + kk)]) *
                       static_cast<int32_t>(b[static_cast<size_t>(kk * n + j)]);
            want[static_cast<size_t>(i * n + j)] = acc;
        }

    for (SimdIsa isa : availableSimdIsas()) {
        const SimdOps& ops = resolveSimdOps(isa);
        std::vector<int16_t> lhs(
            static_cast<size_t>(packedLhsElemsI8(m, k, ops.gemm_i8_mr)));
        std::vector<int8_t> rhs(
            static_cast<size_t>(packedRhsElemsI8(k, n, ops.gemm_i8_nr)));
        packLhsTilesI8(a.data(), m, k, k, ops.gemm_i8_mr, lhs.data());
        packRhsTilesI8(b.data(), k, n, n, ops.gemm_i8_nr, rhs.data());
        int64_t tiles = (m + ops.gemm_i8_mr - 1) / ops.gemm_i8_mr;

        for (auto [kc, nc] : std::vector<std::pair<int64_t, int64_t>>{
                 {0, 0},
                 {16, ops.gemm_i8_nr},
                 {17, 2 * ops.gemm_i8_nr},  // Odd kc: rounded to even inside.
                 {64, 1024}}) {
            GemmBlocking blocking = gemmBlockingForI8(ops, k, n, 32, kc, nc);
            EXPECT_EQ(blocking.kc % 2, 0)
                << ops.name << ": kc blocks must never split a k pair";
            std::vector<int32_t> got(static_cast<size_t>(m * n), 0);
            packedGemmRowTilesI8(ops, lhs.data(), rhs.data(), m, k, n,
                                 got.data(), n, 0, tiles, blocking);
            EXPECT_EQ(std::memcmp(got.data(), want.data(),
                                  got.size() * sizeof(int32_t)),
                      0)
                << "ISA " << ops.name << " kc=" << kc << " nc=" << nc
                << " diverges from the naive i32 loop";
        }
    }
}

/** Every available ISA's packed GEMM is bit-identical to the reference
 * accumulation chain, including ragged edges and non-trivial bias-like
 * C pre-initialization. */
TEST(GemmPacked, BitExactAgainstReferenceChainOnEveryIsa)
{
    // Odd extents so every ISA hits partial tiles in both m and n.
    const int64_t m = 13, k = 37, n = 29;
    std::vector<float> a = randomMatrix(m, k, 21);
    std::vector<float> b = randomMatrix(k, n, 22);
    std::vector<float> c0 = randomMatrix(m, n, 23);

    std::vector<float> want = c0;
    refGemmAccum(a.data(), b.data(), want.data(), m, k, n);

    for (SimdIsa isa : availableSimdIsas()) {
        const SimdOps& ops = resolveSimdOps(isa);
        std::vector<float> lhs(
            static_cast<size_t>(packedLhsElems(m, k, ops.gemm_mr)));
        std::vector<float> rhs(
            static_cast<size_t>(packedRhsElems(k, n, ops.gemm_nr)));
        packLhsTiles(a.data(), m, k, k, ops.gemm_mr, lhs.data());
        packRhsTiles(b.data(), k, n, n, ops.gemm_nr, rhs.data());

        GemmBlocking blocking = gemmBlockingFor(ops, k, n, /*budget_kb=*/32);
        std::vector<float> got = c0;
        int64_t tiles = (m + ops.gemm_mr - 1) / ops.gemm_mr;
        packedGemmRowTiles(ops, lhs.data(), rhs.data(), m, k, n, got.data(), n,
                           0, tiles, blocking);
        EXPECT_EQ(std::memcmp(got.data(), want.data(),
                              got.size() * sizeof(float)),
                  0)
            << "ISA " << ops.name << " diverges from the reference chain";
    }
}

/** kc/nc blocking partitions the loop order without reassociating the
 * per-element chain, so every blocking choice is bit-neutral. */
TEST(GemmPacked, BlockingChoicesAreBitNeutral)
{
    const int64_t m = 9, k = 64, n = 33;
    std::vector<float> a = randomMatrix(m, k, 31);
    std::vector<float> b = randomMatrix(k, n, 32);
    std::vector<float> c0 = randomMatrix(m, n, 33);

    for (SimdIsa isa : availableSimdIsas()) {
        const SimdOps& ops = resolveSimdOps(isa);
        std::vector<float> lhs(
            static_cast<size_t>(packedLhsElems(m, k, ops.gemm_mr)));
        std::vector<float> rhs(
            static_cast<size_t>(packedRhsElems(k, n, ops.gemm_nr)));
        packLhsTiles(a.data(), m, k, k, ops.gemm_mr, lhs.data());
        packRhsTiles(b.data(), k, n, n, ops.gemm_nr, rhs.data());
        int64_t tiles = (m + ops.gemm_mr - 1) / ops.gemm_mr;

        std::vector<float> baseline;
        for (auto [kc, nc] : std::vector<std::pair<int64_t, int64_t>>{
                 {0, 0}, {16, ops.gemm_nr}, {17, 2 * ops.gemm_nr}, {64, 1024}}) {
            GemmBlocking blocking = gemmBlockingFor(ops, k, n, 32, kc, nc);
            std::vector<float> got = c0;
            packedGemmRowTiles(ops, lhs.data(), rhs.data(), m, k, n, got.data(),
                               n, 0, tiles, blocking);
            if (baseline.empty()) {
                baseline = got;
            } else {
                EXPECT_EQ(std::memcmp(got.data(), baseline.data(),
                                      got.size() * sizeof(float)),
                          0)
                    << ops.name << " kc=" << kc << " nc=" << nc;
            }
        }
    }
}

struct DiffCase
{
    int64_t cin, cout, k, h, w, stride, pad, groups, batch;
    bool relu;
};

std::ostream&
operator<<(std::ostream& os, const DiffCase& c)
{
    return os << "cin" << c.cin << "_cout" << c.cout << "_k" << c.k << "_h"
              << c.h << "_w" << c.w << "_s" << c.stride << "_p" << c.pad
              << "_g" << c.groups << "_b" << c.batch << (c.relu ? "_relu" : "");
}

class PackedIm2colSweep : public ::testing::TestWithParam<DiffCase>
{
};

/** The rebuilt executor against the reference oracle across
 * shapes x strides x pads x batch (and groups / fused ReLU), plus
 * agreement with the retained naive GEMM it replaced. */
TEST_P(PackedIm2colSweep, MatchesReferenceAndNaive)
{
    DiffCase c = GetParam();
    ConvDesc d{"t", c.cin, c.cout, c.k,      c.k, c.h, c.w,
               c.stride, c.pad,  1 /*dil*/, c.groups};
    Rng rng(51);
    Tensor w(Shape{d.cout, d.cinPerGroup(), d.kh, d.kw});
    w.fillNormal(rng, 0.0f, 0.5f);
    Tensor bias(Shape{d.cout});
    bias.fillNormal(rng, 0.0f, 0.1f);
    Tensor in(Shape{c.batch, d.cin, d.h, d.w});
    in.fillUniform(rng, -1.0f, 1.0f);
    Epilogue ep;
    ep.bias = &bias;
    ep.relu = c.relu;

    Tensor expect = makeConvOutput(d, c.batch);
    convReference(d, w, in, expect, ep);

    DeviceSpec dev = makeCpuDevice(4);
    Im2colConv engine(d, &w, dev);

    Tensor got = makeConvOutput(d, c.batch);
    engine.run(in, got, ep);
    EXPECT_LT(Tensor::maxAbsDiff(expect, got), 1e-3) << "packed";

    Tensor naive = makeConvOutput(d, c.batch);
    engine.runNaive(in, naive, ep);
    EXPECT_LT(Tensor::maxAbsDiff(naive, got), 1e-3) << "packed vs naive";
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PackedIm2colSweep,
    ::testing::Values(
        DiffCase{3, 16, 3, 16, 16, 1, 1, 1, 1, false},   // first-conv shape
        DiffCase{8, 16, 3, 15, 17, 1, 1, 1, 2, false},   // ragged + batch
        DiffCase{4, 4, 3, 9, 9, 2, 1, 1, 1, false},      // stride 2
        DiffCase{16, 8, 1, 12, 12, 1, 0, 1, 3, true},    // 1x1 FC-like
        DiffCase{8, 8, 5, 14, 14, 1, 2, 1, 1, true},     // 5x5, wide pad
        DiffCase{12, 12, 3, 20, 10, 2, 1, 1, 2, false},  // stride + batch
        DiffCase{8, 8, 3, 10, 10, 1, 1, 2, 1, false},    // grouped
        DiffCase{6, 10, 3, 8, 8, 1, 0, 1, 1, true}));    // no pad + relu

/** One conv, every available ISA table, byte-identical outputs — the
 * cross-ISA contract holds end-to-end through im2col + packed GEMM. */
TEST(PackedIm2col, BitIdenticalAcrossAvailableIsas)
{
    ConvDesc d{"x", 6, 9, 3, 3, 13, 11, 1, 1, 1, 1};
    Rng rng(61);
    Tensor w(Shape{d.cout, d.cin, d.kh, d.kw});
    w.fillNormal(rng, 0.0f, 0.5f);
    Tensor bias(Shape{d.cout});
    bias.fillNormal(rng, 0.0f, 0.1f);
    Tensor in(Shape{2, d.cin, d.h, d.w});
    in.fillUniform(rng, -1.0f, 1.0f);
    Epilogue ep;
    ep.bias = &bias;
    ep.relu = true;

    Tensor baseline;
    bool have_baseline = false;
    for (SimdIsa isa : availableSimdIsas()) {
        DeviceSpec dev = makeCpuDevice(3);
        dev.simd_isa = isa;
        Tensor got = makeConvOutput(d, 2);
        Im2colConv(d, &w, dev).run(in, got, ep);
        if (!have_baseline) {
            baseline = std::move(got);
            have_baseline = true;
        } else {
            EXPECT_EQ(std::memcmp(got.data(), baseline.data(),
                                  static_cast<size_t>(got.numel()) *
                                      sizeof(float)),
                      0)
                << "ISA " << isaName(isa);
        }
    }
}

/** Tuned blocking overrides reach the executor and stay bit-neutral. */
TEST(PackedIm2col, TunedBlockingOverridesApplyAndMatch)
{
    ConvDesc d{"x", 5, 8, 3, 3, 12, 12, 1, 1, 1, 1};
    Rng rng(71);
    Tensor w(Shape{d.cout, d.cin, d.kh, d.kw});
    w.fillNormal(rng, 0.0f, 0.5f);
    Tensor in(Shape{1, d.cin, d.h, d.w});
    in.fillUniform(rng, -1.0f, 1.0f);
    DeviceSpec dev = makeCpuDevice(2);

    Tensor base = makeConvOutput(d, 1);
    Im2colConv(d, &w, dev).run(in, base);

    TuneParams tuned;
    tuned.gemm_kc = 16;
    tuned.gemm_nc = 8;
    Im2colConv engine(d, &w, dev, tuned);
    EXPECT_EQ(engine.blocking().kc, 16);
    Tensor got = makeConvOutput(d, 1);
    engine.run(in, got);
    EXPECT_EQ(std::memcmp(got.data(), base.data(),
                          static_cast<size_t>(got.numel()) * sizeof(float)),
              0);
}

/** tuneDenseLayer memoizes under the dense (0.0-rate) key: the second
 * call is a cache hit returning the identical parameters. */
TEST(DenseTuning, TuneDenseLayerIsMemoizedInTuneCache)
{
    TuneCache::instance().clear();
    Compiler compiler(makeCpuDevice(2));
    ConvDesc d{"dense", 3, 8, 3, 3, 12, 12, 1, 1, 1, 1};

    auto first = compiler.tuneDenseLayer(d);
    ASSERT_TRUE(first.ok()) << first.status().toString();
    EXPECT_EQ(TuneCache::instance().hits(), 0);
    EXPECT_EQ(TuneCache::instance().size(), 1u);

    auto second = compiler.tuneDenseLayer(d);
    ASSERT_TRUE(second.ok()) << second.status().toString();
    EXPECT_EQ(TuneCache::instance().hits(), 1);
    EXPECT_EQ(first.value().gemm_kc, second.value().gemm_kc);
    EXPECT_EQ(first.value().gemm_nc, second.value().gemm_nc);
    TuneCache::instance().clear();
}

/** Parallel candidate evaluation explores the identical search: same
 * candidates, same order, same best as the serial schedule. */
TEST(DenseTuning, ParallelGaMatchesSerialSearch)
{
    // Deterministic synthetic cost (no timing noise): the GA's choices
    // depend only on these values, so serial and parallel must agree
    // bit-for-bit on every explored configuration.
    std::function<double(const TuneParams&)> measure =
        [](const TuneParams& p) -> double {
        return static_cast<double>(p.tile_oh) + 0.1 * p.unroll_w +
               0.01 * static_cast<double>(p.gemm_kc % 97) +
               0.001 * static_cast<double>(p.gemm_nc % 89);
    };
    TunerConfig serial;
    serial.population = 8;
    serial.generations = 3;
    serial.measure_reps = 1;
    TunerConfig parallel = serial;
    parallel.eval_pool = &ThreadPool::global();

    TuneResult a = tuneLayer(measure, TuneSpace{}, serial);
    TuneResult b = tuneLayer(measure, TuneSpace{}, parallel);

    EXPECT_EQ(a.best_ms, b.best_ms);
    EXPECT_EQ(a.evaluations, b.evaluations);
    ASSERT_EQ(a.history.size(), b.history.size());
    for (size_t i = 0; i < a.history.size(); ++i) {
        EXPECT_EQ(a.history[i].time_ms, b.history[i].time_ms) << i;
        EXPECT_EQ(a.history[i].params.gemm_kc, b.history[i].params.gemm_kc) << i;
        EXPECT_EQ(a.history[i].params.gemm_nc, b.history[i].params.gemm_nc) << i;
        EXPECT_EQ(a.history[i].params.tile_oh, b.history[i].params.tile_oh) << i;
    }
}

}  // namespace
}  // namespace patdnn
