/**
 * @file
 * Property suite for the int8 quantization front-end (prune/quant.h):
 * round-trip error bounds, exact-zero preservation, saturation pins,
 * scale-override semantics, and calibration determinism — driven over
 * 1000+ randomized per-channel tensors rather than a handful of
 * hand-picked cases, since the quantizer sits under every i8 layer.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "prune/quant.h"
#include "util/rng.h"

namespace patdnn {
namespace {

// ---------------------------------------------------------------------------
// quantizeValue / symmetricScaleFor pins
// ---------------------------------------------------------------------------

TEST(Quant, ScaleForZeroRangeIsOne)
{
    EXPECT_EQ(symmetricScaleFor(0.0f), 1.0f);
    EXPECT_FLOAT_EQ(symmetricScaleFor(127.0f), 1.0f);
    EXPECT_FLOAT_EQ(symmetricScaleFor(1.0f), 1.0f / 127.0f);
}

TEST(Quant, QuantizeValuePins)
{
    // scale = 1 → inv_scale = 1: the mapping is plain round+clamp.
    EXPECT_EQ(quantizeValue(0.0f, 1.0f), 0);
    EXPECT_EQ(quantizeValue(1.0f, 1.0f), 1);
    EXPECT_EQ(quantizeValue(-1.0f, 1.0f), -1);
    // Ties round away from zero, symmetric in sign.
    EXPECT_EQ(quantizeValue(0.5f, 1.0f), 1);
    EXPECT_EQ(quantizeValue(-0.5f, 1.0f), -1);
    EXPECT_EQ(quantizeValue(1.5f, 1.0f), 2);
    EXPECT_EQ(quantizeValue(-1.5f, 1.0f), -2);
    // Saturation pins: the symmetric range never produces -128.
    EXPECT_EQ(quantizeValue(127.0f, 1.0f), 127);
    EXPECT_EQ(quantizeValue(1000.0f, 1.0f), 127);
    EXPECT_EQ(quantizeValue(-127.0f, 1.0f), -127);
    EXPECT_EQ(quantizeValue(-1000.0f, 1.0f), -127);
    EXPECT_EQ(quantizeValue(-128.0f, 1.0f), -127);
}

TEST(Quant, QuantizeValueNeverProducesMinus128)
{
    Rng rng(7);
    for (int i = 0; i < 100000; ++i) {
        float v = (rng.uniform() * 2.0f - 1.0f) * 300.0f;
        int8_t q = quantizeValue(v, 1.0f);
        EXPECT_GE(q, -127);
        EXPECT_LE(q, 127);
    }
}

// ---------------------------------------------------------------------------
// Per-channel weight quantization properties (randomized)
// ---------------------------------------------------------------------------

/** One randomized round-trip check; returns the tensor's channel count
 * so the caller can keep a running tally of checked channels. */
void
checkRoundTrip(Rng& rng, int64_t cout, int64_t celems, float amplitude)
{
    Tensor w(Shape{cout, celems});
    w.fillUniform(rng, -amplitude, amplitude);
    float* wd = w.data();
    // Plant exact zeros (the pattern-pruned positions) in every channel.
    for (int64_t c = 0; c < cout; ++c)
        wd[c * celems + static_cast<int64_t>(rng.uniform() *
                                             static_cast<float>(celems)) %
                            celems] = 0.0f;

    QuantizedWeights q = quantizeWeightsPerChannel(w);
    ASSERT_EQ(q.scales.size(), static_cast<size_t>(cout));
    ASSERT_EQ(q.data.size(), static_cast<size_t>(w.numel()));
    ASSERT_EQ(q.channel_elems, celems);

    Tensor back = dequantizeWeights(q, w.shape());
    const float* bd = back.data();
    for (int64_t c = 0; c < cout; ++c) {
        float absmax = 0.0f;
        for (int64_t i = 0; i < celems; ++i)
            absmax = std::max(absmax, std::fabs(wd[c * celems + i]));
        float scale = q.scales[c];
        EXPECT_FLOAT_EQ(scale, symmetricScaleFor(absmax));
        for (int64_t i = 0; i < celems; ++i) {
            int64_t at = c * celems + i;
            // Round-trip error of an in-range value is at most scale/2
            // (round-to-nearest at step `scale`); the relative slack
            // covers the f32 rounding of q * scale itself.
            EXPECT_LE(std::fabs(bd[at] - wd[at]), scale * 0.5f * (1.0f + 1e-5f))
                << "channel " << c << " elem " << i;
            // Exact zero must survive exactly (sparsity preservation).
            if (wd[at] == 0.0f)
                EXPECT_EQ(bd[at], 0.0f);
            // The channel absmax maps to ±127 (full range used).
            if (std::fabs(wd[at]) == absmax && absmax > 0.0f)
                EXPECT_EQ(std::abs(static_cast<int>(q.data[at])), 127);
        }
    }
}

TEST(Quant, RoundTripPropertyOverThousandTensors)
{
    Rng rng(42);
    // 1040 randomized tensors across shapes and amplitudes, including
    // tiny (1-elem channels) and denormal-ish amplitude extremes.
    const int64_t couts[] = {1, 2, 3, 8, 16};
    const int64_t elems[] = {1, 3, 9, 27, 64};
    const float amps[] = {1e-4f, 0.1f, 1.0f, 100.0f};
    int tensors = 0;
    for (int rep = 0; rep < 13; ++rep)
        for (int64_t cout : couts)
            for (int64_t ce : elems)
                for (float amp : amps) {
                    checkRoundTrip(rng, cout, ce, amp);
                    ++tensors;
                }
    EXPECT_GE(tensors, 1000);
}

TEST(Quant, AllZeroChannelQuantizesToZerosWithScaleOne)
{
    Tensor w(Shape{2, 5});
    float* wd = w.data();
    for (int i = 0; i < 5; ++i)
        wd[i] = 0.0f;               // Channel 0: all zero.
    for (int i = 5; i < 10; ++i)
        wd[i] = static_cast<float>(i);  // Channel 1: nonzero.
    QuantizedWeights q = quantizeWeightsPerChannel(w);
    EXPECT_EQ(q.scales[0], 1.0f);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(q.data[static_cast<size_t>(i)], 0);
    Tensor back = dequantizeWeights(q, w.shape());
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(back.data()[i], 0.0f);
}

TEST(Quant, ScaleOverrideIsAuthoritative)
{
    Rng rng(9);
    Tensor w(Shape{3, 16});
    w.fillUniform(rng, -2.0f, 2.0f);
    std::vector<float> forced = {0.5f, 0.25f, 1.0f};
    QuantizedWeights q = quantizeWeightsPerChannel(w, forced);
    EXPECT_EQ(q.scales, forced);
    // Re-quantizing with the derived scales of a restored tensor must
    // reproduce the same bytes: this is the artifact-restore contract.
    QuantizedWeights q2 = quantizeWeightsPerChannel(w, q.scales);
    EXPECT_EQ(q.data, q2.data);
}

TEST(Quant, QuantizationIsDeterministic)
{
    Rng rng(11);
    Tensor w(Shape{4, 32});
    w.fillUniform(rng, -1.0f, 1.0f);
    QuantizedWeights a = quantizeWeightsPerChannel(w);
    QuantizedWeights b = quantizeWeightsPerChannel(w);
    EXPECT_EQ(a.data, b.data);
    EXPECT_EQ(a.scales, b.scales);
}

// ---------------------------------------------------------------------------
// Activation calibration
// ---------------------------------------------------------------------------

TEST(Quant, CalibratorAbsMaxMatchesTrueMax)
{
    Rng rng(3);
    std::vector<float> xs(4096);
    float truth = 0.0f;
    for (float& x : xs) {
        x = (rng.uniform() * 2.0f - 1.0f) * 5.0f;
        truth = std::max(truth, std::fabs(x));
    }
    ActivationCalibrator cal(CalibrationMethod::kAbsMax);
    cal.observe(xs.data(), static_cast<int64_t>(xs.size()));
    EXPECT_FLOAT_EQ(cal.effectiveAbsMax(), truth);
    EXPECT_FLOAT_EQ(cal.scale(), symmetricScaleFor(truth));
    EXPECT_EQ(cal.observedCount(), static_cast<int64_t>(xs.size()));
}

TEST(Quant, CalibratorScaleBeforeDataIsOne)
{
    ActivationCalibrator a(CalibrationMethod::kAbsMax);
    ActivationCalibrator p(CalibrationMethod::kPercentile, 99.0);
    EXPECT_EQ(a.scale(), 1.0f);
    EXPECT_EQ(p.scale(), 1.0f);
}

TEST(Quant, CalibratorPercentileClipsOutliers)
{
    // 10k small values plus a handful of huge outliers: the 99th
    // percentile scale must sit near the bulk, far below the outlier.
    Rng rng(5);
    ActivationCalibrator p(CalibrationMethod::kPercentile, 99.0);
    ActivationCalibrator a(CalibrationMethod::kAbsMax);
    std::vector<float> xs;
    for (int i = 0; i < 10000; ++i)
        xs.push_back((rng.uniform() * 2.0f - 1.0f) * 1.0f);
    for (int i = 0; i < 5; ++i)
        xs.push_back(1000.0f);
    p.observe(xs.data(), static_cast<int64_t>(xs.size()));
    a.observe(xs.data(), static_cast<int64_t>(xs.size()));
    EXPECT_FLOAT_EQ(a.effectiveAbsMax(), 1000.0f);
    EXPECT_LT(p.effectiveAbsMax(), 10.0f);
    EXPECT_GE(p.effectiveAbsMax(), 0.9f);  // Still covers the bulk.
}

TEST(Quant, CalibratorPercentile100TracksMax)
{
    // percentile == 100 keeps every observation inside the range, so
    // the effective absmax is within one histogram bin of the true max.
    Rng rng(6);
    ActivationCalibrator p(CalibrationMethod::kPercentile, 100.0);
    float truth = 0.0f;
    std::vector<float> xs(8192);
    for (float& x : xs) {
        x = (rng.uniform() * 2.0f - 1.0f) * 3.0f;
        truth = std::max(truth, std::fabs(x));
    }
    p.observe(xs.data(), static_cast<int64_t>(xs.size()));
    EXPECT_GE(p.effectiveAbsMax(), truth);
    EXPECT_LE(p.effectiveAbsMax(), truth * 1.01f + 0.01f);
}

TEST(Quant, CalibratorIsDeterministicAcrossChunking)
{
    // The scale must be a pure function of the observed stream, not of
    // how the stream was split into observe() calls.
    Rng rng(8);
    std::vector<float> xs(10000);
    for (float& x : xs)
        x = (rng.uniform() * 2.0f - 1.0f) * 7.0f;
    for (CalibrationMethod m :
         {CalibrationMethod::kAbsMax, CalibrationMethod::kPercentile}) {
        ActivationCalibrator one(m, 99.9);
        one.observe(xs.data(), static_cast<int64_t>(xs.size()));
        ActivationCalibrator chunked(m, 99.9);
        int64_t pos = 0;
        for (int64_t sz : {1, 7, 100, 1000, 8892}) {
            chunked.observe(xs.data() + pos, sz);
            pos += sz;
        }
        ASSERT_EQ(pos, static_cast<int64_t>(xs.size()));
        EXPECT_EQ(one.scale(), chunked.scale()) << calibrationMethodName(m);
        EXPECT_EQ(one.effectiveAbsMax(), chunked.effectiveAbsMax());
    }
}

TEST(Quant, CalibratorPercentileDropsNonFinite)
{
    ActivationCalibrator p(CalibrationMethod::kPercentile, 99.0);
    std::vector<float> xs(1000, 0.5f);
    xs[10] = std::numeric_limits<float>::infinity();
    xs[20] = std::numeric_limits<float>::quiet_NaN();
    p.observe(xs.data(), static_cast<int64_t>(xs.size()));
    EXPECT_TRUE(std::isfinite(p.scale()));
    EXPECT_LT(p.effectiveAbsMax(), 1.0f);
}

TEST(Quant, CalibrationMethodNames)
{
    EXPECT_STREQ(calibrationMethodName(CalibrationMethod::kAbsMax), "absmax");
    EXPECT_STREQ(calibrationMethodName(CalibrationMethod::kPercentile),
                 "percentile");
}

}  // namespace
}  // namespace patdnn
