/** @file Thread pool, stats, table and RNG tests. */
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace patdnn {
namespace {

TEST(ThreadPool, ParallelForCoversAllIndices)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(1000, [&](int64_t i) { hits[static_cast<size_t>(i)]++; });
    for (auto& h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelChunksPartitionIsExact)
{
    ThreadPool pool(3);
    std::mutex m;
    std::vector<std::pair<int64_t, int64_t>> ranges;
    pool.parallelChunks(100, [&](int64_t b, int64_t e) {
        std::lock_guard<std::mutex> lk(m);
        ranges.emplace_back(b, e);
    });
    int64_t covered = 0;
    for (auto [b, e] : ranges)
        covered += e - b;
    EXPECT_EQ(covered, 100);
}

TEST(ThreadPool, ReusableAcrossCalls)
{
    ThreadPool pool(4);
    for (int round = 0; round < 20; ++round) {
        std::atomic<int64_t> sum{0};
        pool.parallelFor(64, [&](int64_t i) { sum += i; });
        EXPECT_EQ(sum.load(), 64 * 63 / 2);
    }
}

TEST(ThreadPool, SingleThreadRunsInline)
{
    ThreadPool pool(1);
    int64_t sum = 0;
    pool.parallelFor(10, [&](int64_t i) { sum += i; });
    EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, EmptyRangeIsNoop)
{
    ThreadPool pool(2);
    bool called = false;
    pool.parallelFor(0, [&](int64_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(Stats, SummarizeBasics)
{
    Summary s = summarize({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(s.mean, 2.5);
    EXPECT_DOUBLE_EQ(s.median, 2.5);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Stats, SummarizeEmpty)
{
    Summary s = summarize({});
    EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, TimeRunsReturnsRequestedReps)
{
    auto times = timeRuns([] {}, 1, 5);
    EXPECT_EQ(times.size(), 5u);
    for (double t : times)
        EXPECT_GE(t, 0.0);
}

// Pins the interpolation contract documented in util/stats.h: linear
// interpolation between closest ranks, never nearest-rank truncation.
TEST(Stats, PercentileInterpolatesBetweenRanks)
{
    EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 75.0), 3.25);
    EXPECT_DOUBLE_EQ(percentile({1.0, 3.0}, 50.0), 2.0);
    EXPECT_DOUBLE_EQ(percentile({4.0, 2.0, 1.0, 3.0}, 75.0), 3.25);  // Unsorted.
    EXPECT_DOUBLE_EQ(percentile({5.0}, 99.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile({1.0, 2.0}, 100.0), 2.0);
    EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(Stats, ComputePercentilesMatchesSingleCalls)
{
    std::vector<double> samples;
    for (int i = 1; i <= 100; ++i)
        samples.push_back(static_cast<double>(i));
    Percentiles q = computePercentiles(samples);
    EXPECT_DOUBLE_EQ(q.p50, 50.5);
    EXPECT_DOUBLE_EQ(q.p90, 90.1);
    EXPECT_DOUBLE_EQ(q.p99, 99.01);
    EXPECT_NEAR(q.p999, 99.901, 1e-9);
    // The quad must agree with the one-shot percentile() calls.
    EXPECT_DOUBLE_EQ(q.p50, percentile(samples, 50.0));
    EXPECT_DOUBLE_EQ(q.p90, percentile(samples, 90.0));
    EXPECT_DOUBLE_EQ(q.p99, percentile(samples, 99.0));
    EXPECT_DOUBLE_EQ(q.p999, percentile(samples, 99.9));

    Percentiles empty = computePercentiles({});
    EXPECT_DOUBLE_EQ(empty.p50, 0.0);
    EXPECT_DOUBLE_EQ(empty.p999, 0.0);
}

TEST(Rng, Deterministic)
{
    Rng a(3), b(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1000), b.uniformInt(0, 1000));
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        int64_t v = rng.uniformInt(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(5);
    std::vector<int> v(50);
    std::iota(v.begin(), v.end(), 0);
    rng.shuffle(v);
    std::vector<int> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(Table, RendersAlignedRows)
{
    Table t({"name", "ms"});
    t.addRow({"L1", "12.5"});
    t.addRow({"longer-name", "3.0"});
    std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(TableDeath, RowWidthMismatchAborts)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "width mismatch");
}

}  // namespace
}  // namespace patdnn
