/**
 * @file
 * Build-graph sanity guard: the public umbrella header must compile
 * standalone (this TU includes nothing before it) and everything it
 * re-exports must link. Catches include-graph rot — a subsystem header
 * that stops being self-contained, or a facade symbol that loses its
 * definition — before any behavioural suite runs.
 */
#include "core/patdnn.h"

#include <gtest/gtest.h>

#include <type_traits>

namespace patdnn {
namespace {

TEST(BuildSanity, UmbrellaHeaderExposesPipelineTypes)
{
    // Stage 1 (compress), stage 2 (compile), and execution types must
    // all be visible from the single public include.
    static_assert(std::is_default_constructible_v<AdmmConfig>);
    static_assert(std::is_default_constructible_v<DeviceSpec>);
    static_assert(std::is_move_constructible_v<CompiledLayer>,
                  "CompiledLayer must at least be movable");
    SUCCEED();
}

TEST(BuildSanity, FacadeSymbolsLink)
{
    // Odr-use the facade entry points so a missing definition in
    // src/core/api.cc becomes a link error in this suite.
    auto compress_fn = &compress;
    auto compile_fn = &compileLayer;
    EXPECT_NE(compress_fn, nullptr);
    EXPECT_NE(compile_fn, nullptr);
}

TEST(BuildSanity, SubsystemLibrariesAreUsable)
{
    // Touch one symbol per subsystem library reachable from the
    // umbrella header, so every static library participates in the
    // link of this binary.
    DeviceSpec dev;                                     // rt
    (void)dev;
    PatternSet set = canonicalPatternSet(4);            // prune
    EXPECT_EQ(set.size(), 4);
}

}  // namespace
}  // namespace patdnn
