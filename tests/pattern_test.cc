/** @file Pattern representation tests. */
#include <gtest/gtest.h>

#include "prune/pattern.h"
#include "util/rng.h"

namespace patdnn {
namespace {

TEST(Pattern, MaskAndPositionsRoundTrip)
{
    Pattern p(3, 3, std::vector<int>{4, 0, 1, 3});
    EXPECT_EQ(p.popcount(), 4);
    EXPECT_TRUE(p.keeps(1, 1));
    EXPECT_TRUE(p.keeps(0, 0));
    EXPECT_FALSE(p.keeps(2, 2));
    auto pos = p.keptPositions();
    EXPECT_EQ(pos, (std::vector<int>{0, 1, 3, 4}));
}

TEST(Pattern, KeepsCenter)
{
    EXPECT_TRUE(Pattern(3, 3, std::vector<int>{4, 0, 1, 2}).keepsCenter());
    EXPECT_FALSE(Pattern(3, 3, std::vector<int>{0, 1, 2, 3}).keepsCenter());
}

TEST(Pattern, KeptEnergy)
{
    float kernel[9] = {1, 0, 0, 0, 2, 0, 0, 0, 3};
    Pattern p(3, 3, std::vector<int>{0, 4});
    EXPECT_DOUBLE_EQ(p.keptEnergy(kernel), 5.0);
}

TEST(Pattern, ApplyZeroesPrunedPositions)
{
    float kernel[9];
    for (int i = 0; i < 9; ++i)
        kernel[i] = static_cast<float>(i + 1);
    Pattern p(3, 3, std::vector<int>{4, 0, 1, 3});
    p.apply(kernel);
    EXPECT_EQ(kernel[0], 1.0f);
    EXPECT_EQ(kernel[4], 5.0f);
    EXPECT_EQ(kernel[2], 0.0f);
    EXPECT_EQ(kernel[8], 0.0f);
}

TEST(Pattern, StrRendering)
{
    Pattern p(3, 3, std::vector<int>{4, 0, 1, 3});
    EXPECT_EQ(p.str(), "xx.\nxx.\n...");
}

TEST(Pattern, FiftySixNaturalPatterns)
{
    auto all = allNaturalPatterns3x3();
    EXPECT_EQ(all.size(), 56u);
    for (const auto& p : all) {
        EXPECT_EQ(p.popcount(), 4);
        EXPECT_TRUE(p.keepsCenter());
    }
    // All distinct.
    for (size_t i = 0; i < all.size(); ++i)
        for (size_t j = i + 1; j < all.size(); ++j)
            EXPECT_FALSE(all[i] == all[j]);
}

TEST(Pattern, NaturalPatternPicksLargestMagnitudes)
{
    float kernel[9] = {0.1f, 9.0f, 0.2f, 8.0f, 0.0f, 0.3f, 7.0f, 0.1f, 0.2f};
    Pattern nat = naturalPatternOf(kernel, 3, 3, 4);
    EXPECT_TRUE(nat.keepsCenter());  // Center always kept even when small.
    EXPECT_TRUE(nat.keeps(0, 1));
    EXPECT_TRUE(nat.keeps(1, 0));
    EXPECT_TRUE(nat.keeps(2, 0));
}

TEST(Pattern, NaturalPatternIsOneOfTheFiftySix)
{
    Rng rng(3);
    auto all = allNaturalPatterns3x3();
    for (int trial = 0; trial < 50; ++trial) {
        float kernel[9];
        for (auto& v : kernel)
            v = rng.normal();
        Pattern nat = naturalPatternOf(kernel, 3, 3, 4);
        bool found = false;
        for (const auto& p : all)
            if (p == nat)
                found = true;
        EXPECT_TRUE(found);
    }
}

TEST(PatternDeath, OversizedMaskRejected)
{
    EXPECT_DEATH(Pattern(7, 7, 0u), "32 positions");
}

}  // namespace
}  // namespace patdnn
