/** @file Observability tests: metrics registry identity and kinds,
 * histogram percentiles + exchange-drained resets under concurrency,
 * trace span nesting / ring bounds / Chrome JSON export, the compile-out
 * contract of PATDNN_ENABLE_TRACING=OFF builds, and the per-layer
 * RunProfile surfaced by InferenceSession. */
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "core/patdnn.h"

namespace patdnn {
namespace {

// ---------------------------------------------------------------------------
// Metrics: registry
// ---------------------------------------------------------------------------

TEST(Metrics, RegistryHandsOutStableIdenticalReferences)
{
    MetricsRegistry reg;
    Counter& a = reg.counter("requests");
    Counter& b = reg.counter("requests");
    EXPECT_EQ(&a, &b);  // Same name -> same object, forever.
    a.inc();
    a.inc(4);
    EXPECT_EQ(b.value(), 5);

    Gauge& g = reg.gauge("depth");
    g.set(3.0);
    g.setMax(1.0);  // Lower: no effect.
    EXPECT_DOUBLE_EQ(g.value(), 3.0);
    g.setMax(7.5);
    EXPECT_DOUBLE_EQ(g.value(), 7.5);

    // resetAllForTest zeroes values but keeps registrations/addresses.
    reg.resetAllForTest();
    EXPECT_EQ(&reg.counter("requests"), &a);
    EXPECT_EQ(a.value(), 0);
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(MetricsDeath, KindMismatchAborts)
{
    MetricsRegistry reg;
    reg.counter("x");
    EXPECT_DEATH(reg.gauge("x"), "registered as a different kind");
    EXPECT_DEATH(reg.histogram("x"), "registered as a different kind");
}

TEST(Metrics, RenderTextAndJson)
{
    MetricsRegistry reg;
    reg.counter("runs").inc(3);
    reg.gauge("hwm").set(42.0);
    reg.histogram("lat").record(1.0);
    reg.histogram("lat").record(2.0);

    std::string text = reg.renderText();
    EXPECT_NE(text.find("counter runs 3"), std::string::npos);
    EXPECT_NE(text.find("gauge hwm 42"), std::string::npos);
    EXPECT_NE(text.find("histogram lat count 2"), std::string::npos);

    std::string json = reg.renderJson();
    EXPECT_NE(json.find("\"counters\":{\"runs\":3}"), std::string::npos);
    EXPECT_NE(json.find("\"hwm\":42"), std::string::npos);
    EXPECT_NE(json.find("\"count\":2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics: histogram
// ---------------------------------------------------------------------------

TEST(Histogram, CountSumMinMaxAreExact)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.record(static_cast<double>(i));
    HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, 100);
    EXPECT_DOUBLE_EQ(s.sum, 5050.0);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 100.0);
    EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Histogram, PercentileAccuracyBoundedByBucketGrowth)
{
    Histogram h;
    for (int i = 1; i <= 1000; ++i)
        h.record(static_cast<double>(i) / 100.0);  // 0.01 .. 10.0.
    HistogramSnapshot s = h.snapshot();
    Percentiles q = s.percentiles();
    // Bucketed estimates: within one growth factor of the exact value.
    EXPECT_NEAR(q.p50, 5.0, 5.0 * (kHistogramGrowth - 1.0));
    EXPECT_NEAR(q.p99, 9.9, 9.9 * (kHistogramGrowth - 1.0));
    EXPECT_GE(q.p999, q.p99);
    EXPECT_GE(q.p99, q.p90);
    EXPECT_GE(q.p90, q.p50);
    // Clamped to the observed range.
    EXPECT_LE(q.p999, s.max);
    EXPECT_GE(q.p50, s.min);
}

TEST(Histogram, EmptySnapshotIsAllZero)
{
    Histogram h;
    HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, 0);
    EXPECT_DOUBLE_EQ(s.percentile(50.0), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, MergeAccumulates)
{
    Histogram a, b;
    a.record(1.0);
    a.record(2.0);
    b.record(10.0);
    HistogramSnapshot sa = a.snapshot();
    sa.merge(b.snapshot());
    EXPECT_EQ(sa.count, 3);
    EXPECT_DOUBLE_EQ(sa.sum, 13.0);
    EXPECT_DOUBLE_EQ(sa.min, 1.0);
    EXPECT_DOUBLE_EQ(sa.max, 10.0);
    // Merging an empty snapshot changes nothing.
    sa.merge(HistogramSnapshot{});
    EXPECT_EQ(sa.count, 3);
}

TEST(Histogram, CollectAndResetDrains)
{
    Histogram h;
    h.record(1.0);
    h.record(5.0);
    HistogramSnapshot first = h.collectAndReset();
    EXPECT_EQ(first.count, 2);
    EXPECT_DOUBLE_EQ(first.sum, 6.0);
    HistogramSnapshot second = h.collectAndReset();
    EXPECT_EQ(second.count, 0);
    EXPECT_DOUBLE_EQ(second.sum, 0.0);
    // The histogram keeps working after a drain.
    h.record(2.0);
    EXPECT_EQ(h.snapshot().count, 1);
    EXPECT_DOUBLE_EQ(h.snapshot().min, 2.0);
}

// Counts are conserved under writers racing the collector: every
// recorded sample lands in exactly one drained snapshot (or the final
// sweep), never zero or two. This is the exchange-drain contract.
TEST(HistogramStress, ConcurrentRecordAndCollectConservesCounts)
{
    Histogram h;
    constexpr int kWriters = 4;
    constexpr int kPerWriter = 50000;
    std::atomic<bool> done{false};
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w)
        writers.emplace_back([&h, w] {
            for (int i = 0; i < kPerWriter; ++i)
                h.record(0.5 + 0.001 * static_cast<double>((w + i) % 100));
        });

    int64_t collected = 0;
    double collected_sum = 0.0;
    std::thread collector([&] {
        while (!done.load(std::memory_order_acquire)) {
            HistogramSnapshot s = h.collectAndReset();
            collected += s.count;
            collected_sum += s.sum;
        }
    });
    for (auto& t : writers)
        t.join();
    done.store(true, std::memory_order_release);
    collector.join();

    HistogramSnapshot tail = h.collectAndReset();
    EXPECT_EQ(collected + tail.count,
              static_cast<int64_t>(kWriters) * kPerWriter);
    // All samples are in [0.5, 0.6]: the summed sums must agree too.
    EXPECT_NEAR(collected_sum + tail.sum,
                0.5 * kWriters * kPerWriter, 0.1 * kWriters * kPerWriter + 1.0);
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

/**
 * Minimal JSON reader used to prove the Chrome trace export is
 * well-formed (structure + escaping), without a JSON dependency.
 * Returns true iff the whole string is exactly one valid JSON value.
 */
class JsonChecker
{
  public:
    static bool valid(const std::string& s)
    {
        JsonChecker c(s);
        c.skipWs();
        if (!c.value())
            return false;
        c.skipWs();
        return c.pos_ == s.size();
    }

  private:
    explicit JsonChecker(const std::string& s) : s_(s) {}

    bool value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool object()
    {
        ++pos_;  // '{'
        skipWs();
        if (peek() == '}') { ++pos_; return true; }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }

    bool array()
    {
        ++pos_;  // '['
        skipWs();
        if (peek() == ']') { ++pos_; return true; }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }

    bool string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
                char e = s_[pos_];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= s_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(s_[pos_])))
                            return false;
                    }
                } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
                    return false;
                }
            } else if (static_cast<unsigned char>(s_[pos_]) < 0x20) {
                return false;  // Raw control characters are invalid.
            }
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_;  // Closing quote.
        return true;
    }

    bool number()
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (peek() == '.') {
            ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        return pos_ > start;
    }

    bool literal(const char* lit)
    {
        size_t n = std::strlen(lit);
        if (s_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    void skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    const std::string& s_;
    size_t pos_ = 0;
};

TEST(JsonCheckerSelfTest, AcceptsValidRejectsInvalid)
{
    EXPECT_TRUE(JsonChecker::valid("{\"a\":[1,2.5,-3e2],\"b\":\"x\\\"y\"}"));
    EXPECT_TRUE(JsonChecker::valid("{}"));
    EXPECT_FALSE(JsonChecker::valid("{\"a\":}"));
    EXPECT_FALSE(JsonChecker::valid("{\"a\":1} trailing"));
    EXPECT_FALSE(JsonChecker::valid("{\"a\\:1}"));  // Bad string escape.
}

/** Scoped enable/clear so trace tests never see each other's spans. */
struct TraceCapture
{
    TraceCapture()
    {
        Tracer::clear();
        Tracer::setEnabled(true);
    }
    ~TraceCapture()
    {
        Tracer::setEnabled(false);
        Tracer::clear();
    }
};

#if PATDNN_TRACING_ENABLED

TEST(Trace, SpansNestProperlyPerThread)
{
    TraceCapture capture;
    {
        TraceSpan outer("outer", "test");
        {
            TraceSpan inner("inner", "test");
        }
    }
    std::vector<TraceEvent> events = Tracer::collect();
    const TraceEvent* outer = nullptr;
    const TraceEvent* inner = nullptr;
    for (const TraceEvent& e : events) {
        if (std::strcmp(e.name, "outer") == 0)
            outer = &e;
        if (std::strcmp(e.name, "inner") == 0)
            inner = &e;
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->tid, inner->tid);  // Same thread, same ring.
    // Proper nesting: inner's interval inside outer's.
    EXPECT_GE(inner->ts_ns, outer->ts_ns);
    EXPECT_LE(inner->ts_ns + inner->dur_ns, outer->ts_ns + outer->dur_ns);
    // collect() sorts parents before children.
    EXPECT_LT(outer - events.data(), inner - events.data());
}

TEST(Trace, ThreadsGetDistinctTids)
{
    TraceCapture capture;
    {
        TraceSpan main_span("main.span", "test");
    }
    std::thread t([] { TraceSpan other("other.span", "test"); });
    t.join();
    uint32_t main_tid = 0, other_tid = 0;
    for (const TraceEvent& e : Tracer::collect()) {
        if (std::strcmp(e.name, "main.span") == 0)
            main_tid = e.tid;
        if (std::strcmp(e.name, "other.span") == 0)
            other_tid = e.tid;  // Ring outlives the thread.
    }
    ASSERT_NE(main_tid, 0u);
    ASSERT_NE(other_tid, 0u);
    EXPECT_NE(main_tid, other_tid);
}

TEST(Trace, RingCapacityBoundsEventsKeepingNewest)
{
    TraceCapture capture;
    Tracer::setRingCapacity(16);
    uint32_t ring_tid = 0;
    // A fresh thread gets a fresh (16-slot) ring.
    std::thread t([&ring_tid] {
        for (int i = 0; i < 40; ++i) {
            std::string name = "span" + std::to_string(i);
            Tracer::emitSpan(name.c_str(), "test", i, 1);
        }
        for (const TraceEvent& e : Tracer::collect())
            if (std::strncmp(e.name, "span", 4) == 0)
                ring_tid = e.tid;
    });
    t.join();
    Tracer::setRingCapacity(Tracer::kDefaultRingCapacity);

    std::vector<const TraceEvent*> mine;
    std::vector<TraceEvent> events = Tracer::collect();
    for (const TraceEvent& e : events)
        if (e.tid == ring_tid)
            mine.push_back(&e);
    ASSERT_EQ(mine.size(), 16u);
    // Oldest overwritten: only span24..span39 survive, in order.
    for (size_t i = 0; i < mine.size(); ++i)
        EXPECT_EQ(std::string(mine[i]->name),
                  "span" + std::to_string(24 + i));
}

TEST(Trace, DisabledEmitsNothingAndClearDrops)
{
    Tracer::clear();
    Tracer::setEnabled(false);
    {
        TraceSpan span("should.not.appear", "test");
        Tracer::emitSpan("nor.this", "test", 0, 1);
    }
    for (const TraceEvent& e : Tracer::collect()) {
        EXPECT_STRNE(e.name, "should.not.appear");
        EXPECT_STRNE(e.name, "nor.this");
    }

    TraceCapture capture;
    Tracer::emitSpan("pre.clear", "test", 0, 1);
    Tracer::clear();
    for (const TraceEvent& e : Tracer::collect())
        EXPECT_STRNE(e.name, "pre.clear");
}

TEST(Trace, ChromeTraceJsonIsValidAndEscaped)
{
    TraceCapture capture;
    Tracer::emitSpan("quote\"back\\slash", "test", 1000, 2000, "rows", 4);
    {
        TraceSpan span("plain", "test");
    }
    std::ostringstream os;
    Tracer::writeChromeTrace(os);
    std::string json = os.str();
    EXPECT_TRUE(JsonChecker::valid(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"rows\":4}"), std::string::npos);
    // ts/dur are microseconds: 1000 ns -> 1 us, 2000 ns -> 2 us.
    EXPECT_NE(json.find("\"ts\":1,\"dur\":2"), std::string::npos);
}

TEST(Trace, LongNamesAreTruncatedNotOverflowed)
{
    TraceCapture capture;
    std::string long_name(200, 'x');
    Tracer::emitSpan(long_name.c_str(), "test", 0, 1);
    bool found = false;
    for (const TraceEvent& e : Tracer::collect()) {
        if (std::strncmp(e.name, "xxxx", 4) == 0) {
            found = true;
            EXPECT_LT(std::strlen(e.name), TraceEvent::kMaxName);
        }
    }
    EXPECT_TRUE(found);
}

#else  // !PATDNN_TRACING_ENABLED

// The compile-out contract: spans are empty objects and the runtime
// collects nothing, so traced and untraced builds behave identically.
static_assert(std::is_empty_v<TraceSpan>,
              "tracing-off TraceSpan must compile to an empty object");
static_assert(!Tracer::compiledIn());

TEST(Trace, CompiledOutCollectsNothing)
{
    Tracer::setEnabled(true);  // Must be a no-op.
    {
        TraceSpan span("invisible", "test");
        Tracer::emitSpan("invisible.manual", "test", 0, 1);
    }
    EXPECT_FALSE(Tracer::enabled());
    for (const TraceEvent& e : Tracer::collect()) {
        EXPECT_STRNE(e.name, "invisible");
        EXPECT_STRNE(e.name, "invisible.manual");
    }
}

#endif  // PATDNN_TRACING_ENABLED

// ---------------------------------------------------------------------------
// RunProfile + session surfacing
// ---------------------------------------------------------------------------

TEST(RunProfile, ResetKeepsLabelsAndMergeAccumulates)
{
    RunProfile p;
    p.prepare(2);
    p.entries[0] = {"conv1", "pattern", "avx2", "f32", 100, 1, 1000, 1000};
    p.entries[1] = {"fc", "fc", "-", "f32", 50, 1, 500, 500};
    p.runs = 1;
    p.wall_ns = 1600;
    EXPECT_EQ(p.totalNs(), 1500);

    RunProfile other;
    other.merge(p);
    other.merge(p);
    EXPECT_EQ(other.runs, 2);
    EXPECT_EQ(other.entries[0].calls, 2);
    EXPECT_EQ(other.entries[0].total_ns, 2000);
    EXPECT_EQ(other.entries[0].max_ns, 1000);
    EXPECT_EQ(other.entries[0].name, "conv1");

    p.reset();
    EXPECT_EQ(p.entries[0].name, "conv1");  // Labels survive reset.
    EXPECT_EQ(p.entries[0].calls, 0);
    EXPECT_EQ(p.totalNs(), 0);
    EXPECT_EQ(p.runs, 0);

    std::string table = other.renderTable();
    EXPECT_NE(table.find("conv1"), std::string::npos);
    EXPECT_NE(table.find("pattern"), std::string::npos);
    EXPECT_NE(table.find("avx2"), std::string::npos);
}

Model
tinyObsModel()
{
    Model m("tiny-obs", "test");
    Layer conv;
    conv.kind = OpKind::kConv;
    conv.name = "c1";
    conv.conv = ConvDesc{"c1", 3, 8, 3, 3, 8, 8, 1, 1, 1, 1};
    m.addLayer(std::move(conv));
    Layer relu;
    relu.kind = OpKind::kReLU;
    relu.name = "r1";
    m.addLayer(std::move(relu));
    Layer fl;
    fl.kind = OpKind::kFlatten;
    fl.name = "flatten";
    m.addLayer(std::move(fl));
    Layer fc;
    fc.kind = OpKind::kFullyConnected;
    fc.name = "fc";
    fc.in_features = 8 * 8 * 8;
    fc.out_features = 4;
    m.addLayer(std::move(fc));
    m.randomizeWeights(77);
    return m;
}

TEST(SessionProfile, LastRunProfileDescribesTheMostRecentRun)
{
    Model m = tinyObsModel();
    auto model = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnnDense, makeFixedWidthCpuDevice(1));
    InferenceSession session(model);
    EXPECT_TRUE(session.lastRunProfile().empty());

    Tensor in(Shape{1, 3, 8, 8});
    Rng rng(3);
    in.fillUniform(rng, -1.0f, 1.0f);
    session.run(in);
    const RunProfile& p = session.lastRunProfile();
    ASSERT_FALSE(p.empty());
    EXPECT_EQ(p.runs, 1);
    EXPECT_GT(p.totalNs(), 0);
    EXPECT_GE(p.wall_ns, p.totalNs());  // Wall covers the per-node sum.

    // Every live node appears exactly once with its attribution.
    int live = 0;
    bool saw_conv = false, saw_fc = false;
    for (const RunProfileEntry& e : p.entries) {
        if (e.calls == 0)
            continue;
        ++live;
        EXPECT_EQ(e.calls, 1);  // Profile resets per run.
        EXPECT_GT(e.bytes, 0);
        if (e.name == "c1") {
            saw_conv = true;
            EXPECT_TRUE(e.kind == "winograd" || e.kind == "im2col") << e.kind;
        }
        if (e.kind == "fc")
            saw_fc = true;
    }
    EXPECT_TRUE(saw_conv);
    EXPECT_TRUE(saw_fc);
    EXPECT_GE(live, 2);  // conv (+fused relu) and fc; glue ops may fold away.

    // A second run replaces the profile instead of accumulating.
    session.run(in);
    EXPECT_EQ(session.lastRunProfile().runs, 1);

    // The table renders the layer rows.
    std::string table = session.lastRunProfile().renderTable();
    EXPECT_NE(table.find("c1"), std::string::npos);
}

TEST(SessionProfile, ProfilingCanBeDisabled)
{
    Model m = tinyObsModel();
    auto model = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnnDense, makeFixedWidthCpuDevice(1));
    InferenceSession session(model);
    session.setProfilingEnabled(false);
    Tensor in(Shape{1, 3, 8, 8});
    Rng rng(4);
    in.fillUniform(rng, -1.0f, 1.0f);
    session.run(in);
    EXPECT_TRUE(session.lastRunProfile().empty());
}

TEST(SessionProfile, CompileRegistersMemplanGaugesAndRunsCount)
{
    int64_t runs_before =
        MetricsRegistry::global().counter("rt.model_runs").value();
    Model m = tinyObsModel();
    auto model = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnnDense, makeFixedWidthCpuDevice(1));
    ASSERT_TRUE(model->hasMemoryPlan());
    // The compile published the planner-quality gauges.
    EXPECT_GT(MetricsRegistry::global().gauge("memplan.arena_kb_per_sample")
                  .value(),
              0.0);
    EXPECT_GE(MetricsRegistry::global().gauge("memplan.reuse_x").value(), 1.0);

    InferenceSession session(model);
    ASSERT_TRUE(session.usesPlannedArena());
    Tensor in(Shape{1, 3, 8, 8});
    Rng rng(5);
    in.fillUniform(rng, -1.0f, 1.0f);
    session.run(in);
    EXPECT_EQ(MetricsRegistry::global().counter("rt.model_runs").value(),
              runs_before + 1);
    // The planned arena recorded its high-water mark.
    EXPECT_GE(MetricsRegistry::global().gauge("rt.arena_hwm_bytes").value(),
              static_cast<double>(session.activationBytes()));
}

}  // namespace
}  // namespace patdnn
