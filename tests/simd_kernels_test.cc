/**
 * @file
 * SIMD kernel-table conformance: every compiled ISA table must produce
 * bit-identical results to the scalar reference (the dispatch.h
 * exactness contract) across the primitives and the whole micro-kernels
 * — pattern shapes x strides x paddings x widths, including widths
 * below one vector — plus dispatch-layer behaviour when each ISA level
 * is forced.
 */
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/patdnn.h"

namespace patdnn {
namespace {

std::vector<const SimdOps*>
allTables()
{
    std::vector<const SimdOps*> tables;
    for (SimdIsa isa : availableSimdIsas())
        tables.push_back(simdOpsFor(isa));
    return tables;
}

std::vector<float>
randomVec(Rng& rng, size_t n)
{
    std::vector<float> v(n);
    for (auto& x : v)
        x = rng.normal();
    return v;
}

// n == 0 is skipped: empty vectors hand memcmp a null pointer, which
// is UB even for zero lengths.
#define EXPECT_BITWISE_EQ(a, b, n, label)                                     \
    EXPECT_TRUE((n) == 0 || std::memcmp((a), (b), (n) * sizeof(float)) == 0)  \
        << label

// ---------------------------------------------------------------------------
// Dispatch layer
// ---------------------------------------------------------------------------

TEST(SimdDispatch, ScalarAlwaysAvailable)
{
    const SimdOps* scalar = simdOpsFor(SimdIsa::kScalar);
    ASSERT_NE(scalar, nullptr);
    EXPECT_EQ(scalar->isa, SimdIsa::kScalar);
    EXPECT_EQ(scalar->width, 1);
    EXPECT_EQ(&scalarSimdOps(), scalar);
}

TEST(SimdDispatch, DetectedIsaIsAvailable)
{
    SimdIsa best = detectSimdIsa();
    const SimdOps* ops = simdOpsFor(best);
    ASSERT_NE(ops, nullptr);
    EXPECT_EQ(ops->isa, best);
    // The detected table is the widest available one.
    for (SimdIsa isa : availableSimdIsas())
        EXPECT_LE(simdOpsFor(isa)->width, ops->width);
}

TEST(SimdDispatch, ResolveFallsBackToScalar)
{
    // Force every ISA level: available levels resolve to themselves,
    // unavailable ones degrade to scalar instead of crashing.
    for (SimdIsa isa : {SimdIsa::kScalar, SimdIsa::kAvx2, SimdIsa::kNeon}) {
        const SimdOps& ops = resolveSimdOps(isa);
        if (simdOpsFor(isa) != nullptr)
            EXPECT_EQ(ops.isa, isa) << isaName(isa);
        else
            EXPECT_EQ(ops.isa, SimdIsa::kScalar) << isaName(isa);
    }
}

TEST(SimdDispatch, IsaNamesRoundTrip)
{
    for (SimdIsa isa : {SimdIsa::kScalar, SimdIsa::kAvx2, SimdIsa::kNeon}) {
        SimdIsa parsed;
        ASSERT_TRUE(parseIsaName(isaName(isa), &parsed));
        EXPECT_EQ(parsed, isa);
    }
    SimdIsa parsed;
    EXPECT_FALSE(parseIsaName("sse42", &parsed));
}

TEST(SimdDispatch, DeviceSpecReportsIsa)
{
    DeviceSpec dev = makeCpuDevice(2);
    EXPECT_EQ(dev.simd_isa, detectSimdIsa());
    EXPECT_STREQ(dev.simdName(), isaName(resolveSimdOps(dev.simd_isa).isa));
    dev.simd_isa = SimdIsa::kScalar;
    EXPECT_STREQ(dev.simdName(), "scalar");
}

// ---------------------------------------------------------------------------
// Primitive conformance vs the scalar reference
// ---------------------------------------------------------------------------

TEST(SimdKernels, AccumRowsMatchesScalar)
{
    Rng rng(7);
    const SimdOps& ref = scalarSimdOps();
    for (const SimdOps* ops : allTables()) {
        for (int live = 1; live <= 9; ++live) {
            for (int64_t n : {0, 1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 31, 33, 64,
                              100}) {
                for (int unroll : {1, 4, 8, 16, 32}) {
                    std::vector<std::vector<float>> storage;
                    std::vector<const float*> rows;
                    for (int e = 0; e < live; ++e) {
                        storage.push_back(randomVec(rng, static_cast<size_t>(n)));
                        rows.push_back(storage.back().data());
                    }
                    std::vector<float> w = randomVec(rng, 9);
                    std::vector<float> base =
                        randomVec(rng, static_cast<size_t>(n));
                    std::vector<float> got = base, want = base;
                    ref.accum_rows(rows.data(), w.data(), live, want.data(), n,
                                   unroll);
                    ops->accum_rows(rows.data(), w.data(), live, got.data(), n,
                                    unroll);
                    EXPECT_BITWISE_EQ(got.data(), want.data(),
                                      static_cast<size_t>(n),
                                      ops->name << " live=" << live
                                                << " n=" << n
                                                << " unroll=" << unroll);
                }
            }
        }
    }
}

TEST(SimdKernels, AccumRowsMultiMatchesScalar)
{
    Rng rng(11);
    const SimdOps& ref = scalarSimdOps();
    for (const SimdOps* ops : allTables()) {
        for (int live : {1, 2, 3, 4, 7, 9}) {
            for (int count : {1, 2, 3, 7, 16}) {
                for (int64_t n : {0, 1, 3, 7, 8, 9, 17, 33, 64}) {
                    std::vector<std::vector<float>> row_storage;
                    std::vector<const float*> rows;
                    for (int e = 0; e < live; ++e) {
                        row_storage.push_back(
                            randomVec(rng, static_cast<size_t>(n)));
                        rows.push_back(row_storage.back().data());
                    }
                    // wsel indexes into each filter's 9-entry kernel.
                    std::vector<int> wsel;
                    for (int e = 0; e < live; ++e)
                        wsel.push_back((e * 2) % 9);
                    std::vector<std::vector<float>> w_storage;
                    std::vector<const float*> weights;
                    for (int f = 0; f < count; ++f) {
                        w_storage.push_back(randomVec(rng, 9));
                        weights.push_back(w_storage.back().data());
                    }
                    std::vector<std::vector<float>> want_storage, got_storage;
                    for (int f = 0; f < count; ++f) {
                        auto base = randomVec(rng, static_cast<size_t>(n));
                        want_storage.push_back(base);
                        got_storage.push_back(base);
                    }
                    std::vector<float*> want_ptrs, got_ptrs;
                    for (int f = 0; f < count; ++f) {
                        want_ptrs.push_back(want_storage[static_cast<size_t>(f)]
                                                .data());
                        got_ptrs.push_back(
                            got_storage[static_cast<size_t>(f)].data());
                    }
                    ref.accum_rows_multi(rows.data(), live, wsel.data(),
                                         weights.data(), want_ptrs.data(),
                                         count, n);
                    ops->accum_rows_multi(rows.data(), live, wsel.data(),
                                          weights.data(), got_ptrs.data(),
                                          count, n);
                    for (int f = 0; f < count; ++f)
                        EXPECT_BITWISE_EQ(got_ptrs[static_cast<size_t>(f)],
                                          want_ptrs[static_cast<size_t>(f)],
                                          static_cast<size_t>(n),
                                          ops->name << " live=" << live
                                                    << " count=" << count
                                                    << " n=" << n << " f="
                                                    << f);
                }
            }
        }
    }
}

TEST(SimdKernels, AxpyMatchesScalar)
{
    Rng rng(13);
    const SimdOps& ref = scalarSimdOps();
    for (const SimdOps* ops : allTables()) {
        for (int64_t n : {0, 1, 3, 7, 8, 9, 15, 16, 17, 31, 64, 100}) {
            std::vector<float> x = randomVec(rng, static_cast<size_t>(n));
            std::vector<float> base = randomVec(rng, static_cast<size_t>(n));
            float a = rng.normal();
            std::vector<float> got = base, want = base;
            ref.axpy(a, x.data(), want.data(), n);
            ops->axpy(a, x.data(), got.data(), n);
            EXPECT_BITWISE_EQ(got.data(), want.data(), static_cast<size_t>(n),
                              ops->name << " n=" << n);
        }
    }
}

TEST(SimdKernels, GemmTileMatchesDocumentedChain)
{
    // The gemm_tile contract (dispatch.h): per output element, the
    // accumulation chain starts from C, walks k sequentially, IEEE
    // multiply then add. Each table is checked against that chain at
    // its own MR x NR footprint, over full tiles and ragged edges.
    Rng rng(14);
    for (const SimdOps* ops : allTables()) {
        const int mr = ops->gemm_mr;
        const int nr = ops->gemm_nr;
        ASSERT_GE(mr, 1);
        ASSERT_GE(nr, 1);
        for (int64_t kc : {1, 2, 7, 16, 33}) {
            std::vector<float> a =
                randomVec(rng, static_cast<size_t>(kc * mr));
            std::vector<float> b =
                randomVec(rng, static_cast<size_t>(kc * nr));
            for (int live_m : {1, mr / 2 > 0 ? mr / 2 : 1, mr}) {
                for (int live_n : {1, nr / 2 > 0 ? nr / 2 : 1, nr}) {
                    const int64_t ldc = nr + 3;  // sub-row stores only
                    std::vector<float> c0 =
                        randomVec(rng, static_cast<size_t>(mr * ldc));
                    std::vector<float> want = c0, got = c0;
                    for (int m = 0; m < live_m; ++m)
                        for (int n = 0; n < live_n; ++n) {
                            float acc = want[static_cast<size_t>(m * ldc + n)];
                            for (int64_t k = 0; k < kc; ++k)
                                acc += a[static_cast<size_t>(k * mr + m)] *
                                       b[static_cast<size_t>(k * nr + n)];
                            want[static_cast<size_t>(m * ldc + n)] = acc;
                        }
                    ops->gemm_tile(a.data(), b.data(), got.data(), ldc, kc,
                                   live_m, live_n);
                    EXPECT_BITWISE_EQ(got.data(), want.data(),
                                      static_cast<size_t>(mr * ldc),
                                      ops->name << " kc=" << kc << " m="
                                                << live_m << " n=" << live_n);
                }
            }
        }
    }
}

TEST(SimdKernels, GemmTileI8MatchesScalarReferenceExactly)
{
    // The gemm_tile_i8 contract (dispatch.h): k-pair interleaved
    // panels (LHS pre-widened to i16 by the pack, RHS i8), i32
    // accumulation starting from C. Integer accumulation is
    // exact, so every table must agree with a plain reference loop to
    // the bit, with no ordering caveat — stronger than the f32 chain.
    Rng rng(15);
    for (const SimdOps* ops : allTables()) {
        const int mr = ops->gemm_i8_mr;
        const int nr = ops->gemm_i8_nr;
        ASSERT_GE(mr, 1) << ops->name;
        ASSERT_GE(nr, 1) << ops->name;
        ASSERT_NE(ops->gemm_tile_i8, nullptr) << ops->name;
        for (int64_t kc : {1, 2, 3, 7, 16, 33, 64}) {
            const int64_t kp = (kc + 1) / 2;
            std::vector<int16_t> a(static_cast<size_t>(kp * mr * 2));
            std::vector<int8_t> b(static_cast<size_t>(kp * nr * 2));
            for (auto& v : a)
                v = static_cast<int16_t>(rng.uniformInt(-127, 127));
            for (auto& v : b)
                v = static_cast<int8_t>(rng.uniformInt(-127, 127));
            if (kc % 2 != 0) {
                // The pack layer zero-pads the odd tail pair; mirror it
                // so saturating-madd ISAs see what they see in vivo.
                for (int m = 0; m < mr; ++m)
                    a[static_cast<size_t>((kp - 1) * mr * 2 + m * 2 + 1)] = 0;
                for (int n = 0; n < nr; ++n)
                    b[static_cast<size_t>((kp - 1) * nr * 2 + n * 2 + 1)] = 0;
            }
            for (int live_m : {1, mr / 2 > 0 ? mr / 2 : 1, mr}) {
                for (int live_n : {1, nr / 2 > 0 ? nr / 2 : 1, nr}) {
                    const int64_t ldc = nr + 3;  // sub-row stores only
                    std::vector<int32_t> c0(static_cast<size_t>(mr * ldc));
                    for (auto& v : c0)
                        v = static_cast<int32_t>(rng.uniformInt(-1000, 1000));
                    std::vector<int32_t> want = c0, got = c0;
                    for (int m = 0; m < live_m; ++m)
                        for (int n = 0; n < live_n; ++n) {
                            int32_t acc = want[static_cast<size_t>(m * ldc + n)];
                            for (int64_t p = 0; p < kp; ++p) {
                                int32_t a0 = a[static_cast<size_t>(
                                    p * mr * 2 + m * 2)];
                                int32_t a1 = a[static_cast<size_t>(
                                    p * mr * 2 + m * 2 + 1)];
                                int32_t b0 = b[static_cast<size_t>(
                                    p * nr * 2 + n * 2)];
                                int32_t b1 = b[static_cast<size_t>(
                                    p * nr * 2 + n * 2 + 1)];
                                acc += a0 * b0 + a1 * b1;
                            }
                            want[static_cast<size_t>(m * ldc + n)] = acc;
                        }
                    ops->gemm_tile_i8(a.data(), b.data(), got.data(), ldc, kc,
                                      live_m, live_n);
                    // Exact agreement on live lanes AND untouched bytes
                    // everywhere else (no out-of-tile stores).
                    EXPECT_TRUE(std::memcmp(got.data(), want.data(),
                                            static_cast<size_t>(mr * ldc) *
                                                sizeof(int32_t)) == 0)
                        << ops->name << " kc=" << kc << " m=" << live_m
                        << " n=" << live_n;
                }
            }
        }
    }
}

TEST(SimdKernels, GemmTileI8SaturationStress)
{
    // Worst-case magnitudes: every product is 127*127 and signs align
    // within each k-pair, the adversarial input for any ISA that pairs
    // products in 16-bit lanes before widening. The scalar reference
    // accumulates in i32, so agreement proves no intermediate overflow.
    for (const SimdOps* ops : allTables()) {
        const int mr = ops->gemm_i8_mr;
        const int nr = ops->gemm_i8_nr;
        const int64_t kc = 64;
        const int64_t kp = (kc + 1) / 2;
        std::vector<int16_t> a(static_cast<size_t>(kp * mr * 2), 127);
        std::vector<int8_t> b(static_cast<size_t>(kp * nr * 2), -127);
        const int64_t ldc = nr;
        std::vector<int32_t> got(static_cast<size_t>(mr * ldc), 0);
        ops->gemm_tile_i8(a.data(), b.data(), got.data(), ldc, kc, mr, nr);
        for (int32_t v : got)
            EXPECT_EQ(v, static_cast<int32_t>(kc) * 127 * -127) << ops->name;
    }
}

TEST(SimdKernels, QuantizeRowI8MatchesScalarReferenceExactly)
{
    // quantize_row_i8 is bit-identical across tables (dispatch.h): same
    // f32 multiply, clamp and sign-matched rounding in every lane. Mix
    // in-range values, saturating magnitudes, exact half-steps and
    // signed zeros, and every vector-body/scalar-tail split.
    Rng rng(23);
    const SimdOps& ref = scalarSimdOps();
    for (const SimdOps* ops : allTables()) {
        ASSERT_NE(ops->quantize_row_i8, nullptr) << ops->name;
        for (int64_t n : {0, 1, 7, 16, 31, 32, 33, 64, 100, 257}) {
            std::vector<float> x(static_cast<size_t>(n));
            for (int64_t i = 0; i < n; ++i) {
                switch (i % 6) {
                  case 0: x[static_cast<size_t>(i)] = rng.uniform(-2.f, 2.f); break;
                  case 1: x[static_cast<size_t>(i)] = rng.uniform(-500.f, 500.f); break;
                  case 2: x[static_cast<size_t>(i)] = 0.25f * static_cast<float>(rng.uniformInt(-520, 520)); break;  // exact +-k/4 incl. half-steps
                  case 3: x[static_cast<size_t>(i)] = -0.0f; break;
                  case 4: x[static_cast<size_t>(i)] = 0.0f; break;
                  case 5: x[static_cast<size_t>(i)] = rng.uniform(-1e-3f, 1e-3f); break;
                }
            }
            for (float inv_scale : {0.5f, 1.0f, 64.0f, 0.0f}) {
                std::vector<int8_t> want(static_cast<size_t>(n) + 1, 99);
                std::vector<int8_t> got = want;
                ref.quantize_row_i8(x.data(), n, inv_scale, want.data());
                ops->quantize_row_i8(x.data(), n, inv_scale, got.data());
                EXPECT_EQ(std::memcmp(got.data(), want.data(), want.size()), 0)
                    << ops->name << " n=" << n << " inv=" << inv_scale;
                // And the reference itself matches quantizeValue.
                for (int64_t i = 0; i < n; ++i)
                    EXPECT_EQ(want[static_cast<size_t>(i)],
                              quantizeValue(x[static_cast<size_t>(i)],
                                            inv_scale))
                        << "x=" << x[static_cast<size_t>(i)];
                EXPECT_EQ(got[static_cast<size_t>(n)], 99)
                    << ops->name << ": wrote past n";
            }
        }
    }
}

TEST(SimdKernels, ReluMatchesScalarIncludingSpecials)
{
    const SimdOps& ref = scalarSimdOps();
    for (const SimdOps* ops : allTables()) {
        for (int64_t n : {0, 1, 3, 7, 8, 9, 17, 33}) {
            std::vector<float> base(static_cast<size_t>(n));
            for (int64_t i = 0; i < n; ++i) {
                switch (i % 5) {
                  case 0: base[static_cast<size_t>(i)] = -1.5f; break;
                  case 1: base[static_cast<size_t>(i)] = 2.25f; break;
                  case 2: base[static_cast<size_t>(i)] = 0.0f; break;
                  case 3: base[static_cast<size_t>(i)] = -0.0f; break;
                  case 4:
                    base[static_cast<size_t>(i)] =
                        std::numeric_limits<float>::quiet_NaN();
                    break;
                }
            }
            std::vector<float> got = base, want = base;
            ref.relu(want.data(), n);
            ops->relu(got.data(), n);
            for (int64_t i = 0; i < n; ++i)
                EXPECT_EQ(got[static_cast<size_t>(i)],
                          want[static_cast<size_t>(i)])
                    << ops->name << " n=" << n << " i=" << i;
        }
    }
}

// ---------------------------------------------------------------------------
// Whole micro-kernel conformance across geometries
// ---------------------------------------------------------------------------

TEST(SimdKernels, KernelAccumulateLreMatchesScalarAcrossGeometries)
{
    const std::vector<std::vector<int>> shapes = {
        {4},                          // single entry
        {0, 8},                       // opposite corners
        {4, 1, 3, 5},                 // the canonical cross
        {0, 2, 4, 6, 8},              // X shape
        {0, 1, 2, 3, 4, 5, 6, 7, 8},  // dense 3x3
    };
    Rng rng(17);
    const SimdOps& ref = scalarSimdOps();
    for (const SimdOps* ops : allTables()) {
        for (const auto& kept : shapes) {
            PatternKernel pk = lowerPattern(Pattern(3, 3, kept));
            std::vector<float> w = randomVec(rng, kept.size());
            for (int64_t stride : {1, 2}) {
                for (int64_t pad : {0, 1, 2}) {
                    // Widths below one vector (1..7), around one vector
                    // and spanning several.
                    for (int64_t in_w : {1, 2, 3, 5, 7, 8, 9, 17, 33}) {
                        for (int64_t in_h : {1, 3, 7}) {
                            int64_t ow = (in_w + 2 * pad - 3) / stride + 1;
                            int64_t oh = (in_h + 2 * pad - 3) / stride + 1;
                            if (ow < 1 || oh < 1)
                                continue;
                            for (int unroll : {1, 8, 16}) {
                                auto in = randomVec(
                                    rng, static_cast<size_t>(in_h * in_w));
                                auto base = randomVec(
                                    rng, static_cast<size_t>(oh * ow));
                                PlaneGeom g;
                                g.h = in_h;
                                g.w = in_w;
                                g.oh = oh;
                                g.ow = ow;
                                g.pad = pad;
                                g.stride = stride;
                                g.y0 = 0;
                                g.y1 = oh;
                                g.x0 = 0;
                                g.x1 = ow;
                                auto want = base;
                                auto got = base;
                                kernelAccumulateLre(pk, w.data(), in.data(),
                                                    want.data(), g, unroll,
                                                    &ref);
                                kernelAccumulateLre(pk, w.data(), in.data(),
                                                    got.data(), g, unroll,
                                                    ops);
                                EXPECT_BITWISE_EQ(
                                    got.data(), want.data(),
                                    static_cast<size_t>(oh * ow),
                                    ops->name << " entries=" << pk.entries
                                              << " stride=" << stride
                                              << " pad=" << pad << " w="
                                              << in_w << " h=" << in_h
                                              << " unroll=" << unroll);
                            }
                        }
                    }
                }
            }
        }
    }
}

TEST(SimdKernels, KernelAccumulateMultiFilterMatchesScalar)
{
    Rng rng(19);
    const SimdOps& ref = scalarSimdOps();
    PatternKernel pk = lowerPattern(Pattern(3, 3, std::vector<int>{4, 1, 3, 5}));
    for (const SimdOps* ops : allTables()) {
        for (int count : {2, 5, 16}) {
            for (int64_t stride : {1, 2}) {
                for (int64_t pad : {0, 1}) {
                    for (int64_t in_w : {5, 8, 20, 33}) {
                        int64_t in_h = 9;
                        int64_t ow = (in_w + 2 * pad - 3) / stride + 1;
                        int64_t oh = (in_h + 2 * pad - 3) / stride + 1;
                        if (ow < 1 || oh < 1)
                            continue;
                        auto in =
                            randomVec(rng, static_cast<size_t>(in_h * in_w));
                        std::vector<std::vector<float>> w_storage;
                        std::vector<const float*> weights;
                        for (int f = 0; f < count; ++f) {
                            w_storage.push_back(randomVec(rng, 4));
                            weights.push_back(w_storage.back().data());
                        }
                        std::vector<std::vector<float>> want_storage,
                            got_storage;
                        std::vector<float*> want_ptrs, got_ptrs;
                        for (int f = 0; f < count; ++f) {
                            auto base =
                                randomVec(rng, static_cast<size_t>(oh * ow));
                            want_storage.push_back(base);
                            got_storage.push_back(base);
                        }
                        for (int f = 0; f < count; ++f) {
                            want_ptrs.push_back(
                                want_storage[static_cast<size_t>(f)].data());
                            got_ptrs.push_back(
                                got_storage[static_cast<size_t>(f)].data());
                        }
                        PlaneGeom g;
                        g.h = in_h;
                        g.w = in_w;
                        g.oh = oh;
                        g.ow = ow;
                        g.pad = pad;
                        g.stride = stride;
                        g.y0 = 0;
                        g.y1 = oh;
                        g.x0 = 0;
                        g.x1 = ow;
                        kernelAccumulateMultiFilter(pk, weights.data(),
                                                    in.data(), want_ptrs.data(),
                                                    count, g, &ref);
                        kernelAccumulateMultiFilter(pk, weights.data(),
                                                    in.data(), got_ptrs.data(),
                                                    count, g, ops);
                        for (int f = 0; f < count; ++f)
                            EXPECT_BITWISE_EQ(
                                got_ptrs[static_cast<size_t>(f)],
                                want_ptrs[static_cast<size_t>(f)],
                                static_cast<size_t>(oh * ow),
                                ops->name << " count=" << count << " stride="
                                          << stride << " pad=" << pad
                                          << " w=" << in_w << " f=" << f);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Executor-level: forcing each ISA on a device yields identical outputs
// ---------------------------------------------------------------------------

TEST(SimdExecutors, PatternConvIdenticalAcrossForcedIsas)
{
    ConvDesc d{"simd", 8, 12, 3, 3, 19, 23, 1, 1, 1, 1};
    Tensor in(Shape{1, d.cin, d.h, d.w});
    Rng rng(23);
    in.fillUniform(rng, -1.0f, 1.0f);

    DeviceSpec ref_dev = makeCpuDevice(2);
    ref_dev.simd_isa = SimdIsa::kScalar;
    CompileOptions opts;
    opts.seed = 23;
    CompiledConvLayer ref_layer(d, FrameworkKind::kPatDnn, ref_dev, opts);
    Tensor ref_out = makeConvOutput(d, 1);
    ref_layer.run(in, ref_out);

    for (SimdIsa isa : availableSimdIsas()) {
        DeviceSpec dev = makeCpuDevice(2);
        dev.simd_isa = isa;
        CompiledConvLayer layer(d, FrameworkKind::kPatDnn, dev, opts);
        Tensor out = makeConvOutput(d, 1);
        layer.run(in, out);
        ASSERT_EQ(out.numel(), ref_out.numel());
        EXPECT_BITWISE_EQ(out.data(), ref_out.data(),
                          static_cast<size_t>(out.numel()), isaName(isa));
    }
}

TEST(SimdExecutors, CsrConvIdenticalAcrossForcedIsas)
{
    for (int64_t stride : {1, 2}) {
        ConvDesc d{"csr", 6, 10, 3, 3, 17, 21, stride, 1, 1, 1};
        Tensor in(Shape{1, d.cin, d.h, d.w});
        Rng rng(29);
        in.fillUniform(rng, -1.0f, 1.0f);

        DeviceSpec ref_dev = makeCpuDevice(2);
        ref_dev.simd_isa = SimdIsa::kScalar;
        CompileOptions opts;
        opts.seed = 29;
        CompiledConvLayer ref_layer(d, FrameworkKind::kCsrSparse, ref_dev, opts);
        Tensor ref_out = makeConvOutput(d, 1);
        ref_layer.run(in, ref_out);

        for (SimdIsa isa : availableSimdIsas()) {
            DeviceSpec dev = makeCpuDevice(2);
            dev.simd_isa = isa;
            CompiledConvLayer layer(d, FrameworkKind::kCsrSparse, dev, opts);
            Tensor out = makeConvOutput(d, 1);
            layer.run(in, out);
            EXPECT_BITWISE_EQ(out.data(), ref_out.data(),
                              static_cast<size_t>(out.numel()),
                              isaName(isa) << " stride=" << stride);
        }
    }
}

TEST(SimdExecutors, OversizedUnrollOcClampsToBundleCap)
{
    // unroll_oc beyond the 16-filter bundle cap (hand-written tuning
    // or a crafted artifact) must clamp at plan time — same plan, same
    // bits as 16 — not silently drop filters 17+ at run time.
    ConvDesc d{"clamp", 8, 48, 3, 3, 15, 17, 1, 1, 1, 1};
    Tensor in(Shape{1, d.cin, d.h, d.w});
    Rng rng(37);
    in.fillUniform(rng, -1.0f, 1.0f);
    DeviceSpec dev = makeCpuDevice(2);
    CompileOptions opts;
    opts.seed = 37;
    opts.default_tuning.unroll_oc = 16;
    CompiledConvLayer capped(d, FrameworkKind::kPatDnn, dev, opts);
    opts.default_tuning.unroll_oc = 64;
    CompiledConvLayer oversized(d, FrameworkKind::kPatDnn, dev, opts);
    Tensor out_capped = makeConvOutput(d, 1);
    Tensor out_oversized = makeConvOutput(d, 1);
    capped.run(in, out_capped);
    oversized.run(in, out_oversized);
    EXPECT_BITWISE_EQ(out_oversized.data(), out_capped.data(),
                      static_cast<size_t>(out_capped.numel()), "unroll_oc=64");
}

TEST(SimdExecutors, TuneSpaceScalesWithVectorWidth)
{
    TuneSpace scalar_space = tuneSpaceFor(SimdIsa::kScalar);
    EXPECT_EQ(scalar_space.unroll_w, TuneSpace{}.unroll_w);
    for (SimdIsa isa : availableSimdIsas()) {
        const SimdOps& ops = *simdOpsFor(isa);
        if (ops.width <= 1)
            continue;
        TuneSpace space = tuneSpaceFor(isa);
        for (int uw : space.unroll_w)
            EXPECT_EQ(uw % ops.width, 0)
                << isaName(isa) << " unroll_w=" << uw;
        for (int64_t tow : space.tile_ow)
            EXPECT_EQ(tow % ops.width, 0)
                << isaName(isa) << " tile_ow=" << tow;
    }
}

TEST(SimdExecutors, ArtifactRecordsTunedIsa)
{
    Model m("tiny-simd", "test");
    Layer conv;
    conv.kind = OpKind::kConv;
    conv.name = "c1";
    conv.conv = ConvDesc{"c1", 3, 8, 3, 3, 12, 12, 1, 1, 1, 1};
    m.addLayer(std::move(conv));
    m.randomizeWeights(31);
    DeviceSpec dev = makeCpuDevice(2);
    CompiledModel model(m, FrameworkKind::kPatDnn, dev);
    EXPECT_EQ(model.tunedIsa(), resolveSimdOps(dev.simd_isa).isa);

    std::vector<uint8_t> bytes = serializeModel(model);
    auto restored = deserializeModel(bytes, dev);
    ASSERT_TRUE(restored.ok()) << restored.status().toString();
    EXPECT_EQ(restored.value()->tunedIsa(), model.tunedIsa());

    // A host with a different forced ISA still loads (params are
    // valid, just tuned for another vector width).
    DeviceSpec scalar_dev = makeCpuDevice(2);
    scalar_dev.simd_isa = SimdIsa::kScalar;
    auto cross = deserializeModel(bytes, scalar_dev);
    ASSERT_TRUE(cross.ok()) << cross.status().toString();
    EXPECT_EQ(cross.value()->tunedIsa(), model.tunedIsa());
}

}  // namespace
}  // namespace patdnn
