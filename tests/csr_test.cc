/** @file CSR storage tests including failure injection. */
#include <gtest/gtest.h>

#include "sparse/csr.h"
#include "prune/projections.h"

namespace patdnn {
namespace {

TEST(Csr, RoundTripDense)
{
    Rng rng(1);
    Tensor w(Shape{6, 4, 3, 3});
    w.fillNormal(rng);
    projectMagnitude(w, 50);
    CsrWeights csr = buildCsr(w);
    EXPECT_EQ(csr.nnz(), 50);
    Tensor back = csrToDense(csr, w.shape());
    EXPECT_EQ(Tensor::maxAbsDiff(w, back), 0.0);
}

TEST(Csr, EmptyMatrix)
{
    Tensor w(Shape{3, 2, 3, 3});  // All zeros.
    CsrWeights csr = buildCsr(w);
    EXPECT_EQ(csr.nnz(), 0);
    Status valid = validateCsr(csr);
    EXPECT_TRUE(valid.ok()) << valid.toString();
}

TEST(Csr, IndexBytesAccounting)
{
    Rng rng(2);
    Tensor w(Shape{4, 4, 3, 3});
    w.fillNormal(rng);
    projectMagnitude(w, 30);
    CsrWeights csr = buildCsr(w);
    EXPECT_EQ(csr.indexBytes(), (4 + 1 + 30) * sizeof(int32_t));
    EXPECT_EQ(csr.totalBytes(), csr.indexBytes() + 30 * sizeof(float));
}

TEST(Csr, ValidatorAcceptsWellFormed)
{
    Rng rng(3);
    Tensor w(Shape{5, 3, 3, 3});
    w.fillNormal(rng);
    CsrWeights csr = buildCsr(w);
    Status valid = validateCsr(csr);
    EXPECT_TRUE(valid.ok()) << valid.toString();
}

TEST(CsrFailureInjection, DetectsNonMonotonicRowPtr)
{
    Rng rng(4);
    Tensor w(Shape{5, 3, 3, 3});
    w.fillNormal(rng);
    CsrWeights csr = buildCsr(w);
    std::swap(csr.row_ptr[1], csr.row_ptr[3]);
    Status bad = validateCsr(csr);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.code(), ErrorCode::kDataLoss);
    EXPECT_NE(bad.message().find("monotonic"), std::string::npos);
}

TEST(CsrFailureInjection, DetectsOutOfRangeColumn)
{
    Rng rng(5);
    Tensor w(Shape{5, 3, 3, 3});
    w.fillNormal(rng);
    CsrWeights csr = buildCsr(w);
    csr.col_idx[0] = static_cast<int32_t>(csr.cols + 7);
    Status bad = validateCsr(csr);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.code(), ErrorCode::kDataLoss);
    EXPECT_NE(bad.message().find("out of range"), std::string::npos);
}

TEST(CsrFailureInjection, DetectsTruncatedValues)
{
    Rng rng(6);
    Tensor w(Shape{5, 3, 3, 3});
    w.fillNormal(rng);
    CsrWeights csr = buildCsr(w);
    csr.values.pop_back();
    Status bad = validateCsr(csr);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.code(), ErrorCode::kDataLoss);
}

TEST(CsrFailureInjection, DetectsBadLeadingOffset)
{
    Rng rng(7);
    Tensor w(Shape{3, 3, 3, 3});
    w.fillNormal(rng);
    CsrWeights csr = buildCsr(w);
    csr.row_ptr[0] = 1;
    Status bad = validateCsr(csr);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.code(), ErrorCode::kDataLoss);
}

}  // namespace
}  // namespace patdnn
