/** @file ConvDesc geometry tests. */
#include <gtest/gtest.h>

#include "nn/conv_desc.h"

namespace patdnn {
namespace {

TEST(ConvDesc, SamePaddingOutput)
{
    ConvDesc d{"c", 3, 8, 3, 3, 32, 32, 1, 1, 1, 1};
    EXPECT_EQ(d.outH(), 32);
    EXPECT_EQ(d.outW(), 32);
}

TEST(ConvDesc, StridedOutput)
{
    ConvDesc d{"c", 3, 8, 3, 3, 224, 224, 2, 1, 1, 1};
    EXPECT_EQ(d.outH(), 112);
}

TEST(ConvDesc, SevenBySevenStem)
{
    ConvDesc d{"c", 3, 64, 7, 7, 224, 224, 2, 3, 1, 1};
    EXPECT_EQ(d.outH(), 112);
    EXPECT_EQ(d.outW(), 112);
}

TEST(ConvDesc, DilationShrinksOutput)
{
    ConvDesc d{"c", 1, 1, 3, 3, 10, 10, 1, 0, 2, 1};
    EXPECT_EQ(d.outH(), 6);  // Effective kernel 5.
}

TEST(ConvDesc, WeightCountAndMacs)
{
    ConvDesc d{"c", 64, 128, 3, 3, 56, 56, 1, 1, 1, 1};
    EXPECT_EQ(d.weightCount(), 128 * 64 * 9);
    EXPECT_EQ(d.macs(), 56 * 56 * 128 * 64 * 9);
    EXPECT_EQ(d.flops(), 2 * d.macs());
}

TEST(ConvDesc, GroupedWeights)
{
    ConvDesc d{"dw", 32, 32, 3, 3, 14, 14, 1, 1, 1, 32};
    EXPECT_EQ(d.cinPerGroup(), 1);
    EXPECT_EQ(d.weightCount(), 32 * 1 * 9);
}

TEST(ConvDesc, FilterShapeStr)
{
    ConvDesc d{"c", 3, 64, 3, 3, 224, 224, 1, 1, 1, 1};
    EXPECT_EQ(d.filterShapeStr(), "[64,3,3,3]");
}

TEST(ConvDescDeath, InvalidGeometryAborts)
{
    ConvDesc d{"c", 3, 8, 3, 3, 1, 1, 1, 0, 1, 1};  // Output would be <= 0.
    EXPECT_DEATH(d.check(), "output height");
    ConvDesc g{"c", 3, 8, 3, 3, 8, 8, 1, 1, 1, 2};  // 3 % 2 != 0.
    EXPECT_DEATH(g.check(), "divisible");
}

}  // namespace
}  // namespace patdnn
