/** @file Pattern-set mining and selection tests. */
#include <gtest/gtest.h>

#include "prune/pattern_set.h"

namespace patdnn {
namespace {

Tensor
makeWeights(int64_t filters, int64_t channels, Rng& rng)
{
    Tensor w(Shape{filters, channels, 3, 3});
    w.fillNormal(rng, 0.0f, 1.0f);
    return w;
}

TEST(PatternSet, BestForMaximizesKeptEnergy)
{
    PatternSet set = canonicalPatternSet(8);
    Rng rng(2);
    for (int trial = 0; trial < 30; ++trial) {
        float kernel[9];
        for (auto& v : kernel)
            v = rng.normal();
        int best = set.bestFor(kernel);
        double best_e = set.patterns[static_cast<size_t>(best)].keptEnergy(kernel);
        for (const auto& p : set.patterns)
            EXPECT_LE(p.keptEnergy(kernel), best_e + 1e-9);
    }
}

TEST(PatternSet, MiningCountsKernels)
{
    Rng rng(4);
    Tensor w = makeWeights(8, 6, rng);
    auto freqs = minePatternFrequencies({&w});
    int64_t total = 0;
    for (const auto& f : freqs)
        total += f.count;
    EXPECT_EQ(total, 48);  // 8 * 6 kernels.
    // Frequencies sorted descending.
    for (size_t i = 1; i < freqs.size(); ++i)
        EXPECT_GE(freqs[i - 1].count, freqs[i].count);
}

TEST(PatternSet, MiningSkipsNon3x3)
{
    Rng rng(4);
    Tensor w1(Shape{4, 4, 1, 1});
    w1.fillNormal(rng);
    auto freqs = minePatternFrequencies({&w1});
    EXPECT_TRUE(freqs.empty());
}

TEST(PatternSet, SelectTopKSizes)
{
    Rng rng(5);
    Tensor w = makeWeights(32, 16, rng);
    for (int k : {4, 6, 8, 12}) {
        PatternSet set = designPatternSet({&w}, k);
        EXPECT_EQ(set.size(), k);
        for (const auto& p : set.patterns)
            EXPECT_EQ(p.popcount(), 4);
    }
}

TEST(PatternSet, TopKAreMostFrequent)
{
    Rng rng(6);
    Tensor w = makeWeights(16, 16, rng);
    auto freqs = minePatternFrequencies({&w});
    PatternSet set = selectTopK(freqs, 6);
    for (int i = 0; i < 6 && i < static_cast<int>(freqs.size()); ++i)
        EXPECT_TRUE(set.patterns[static_cast<size_t>(i)] ==
                    freqs[static_cast<size_t>(i)].pattern);
}

TEST(PatternSet, CanonicalSetsAreDistinctCenterKeeping)
{
    for (int k : {4, 6, 8, 12, 16, 56}) {
        PatternSet set = canonicalPatternSet(k);
        EXPECT_EQ(set.size(), k);
        for (size_t i = 0; i < set.patterns.size(); ++i) {
            EXPECT_TRUE(set.patterns[i].keepsCenter());
            for (size_t j = i + 1; j < set.patterns.size(); ++j)
                EXPECT_FALSE(set.patterns[i] == set.patterns[j]);
        }
    }
}

TEST(PatternSet, PadsWithCanonicalWhenModelTooSmall)
{
    // A tiny model may exhibit < k distinct natural patterns.
    Rng rng(7);
    Tensor w = makeWeights(1, 2, rng);
    PatternSet set = designPatternSet({&w}, 12);
    EXPECT_EQ(set.size(), 12);
}

TEST(PatternSetDeath, EmptySetRejected)
{
    PatternSet set;
    float kernel[9] = {0};
    EXPECT_DEATH(set.bestFor(kernel), "empty pattern set");
}

}  // namespace
}  // namespace patdnn
