/** @file Serving subsystem tests: artifacts, sessions, async server. */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "core/patdnn.h"

namespace patdnn {
namespace {

Model
tinyModel()
{
    Model m("tiny-serve", "test");
    auto add_conv = [&](const std::string& name, int64_t cin, int64_t cout,
                        int64_t res) {
        Layer conv;
        conv.kind = OpKind::kConv;
        conv.name = name;
        conv.conv = ConvDesc{name, cin, cout, 3, 3, res, res, 1, 1, 1, 1};
        m.addLayer(std::move(conv));
        Layer relu;
        relu.kind = OpKind::kReLU;
        relu.name = name + "_relu";
        m.addLayer(std::move(relu));
    };
    add_conv("c1", 3, 16, 16);
    add_conv("c2", 16, 16, 16);
    Layer pool;
    pool.kind = OpKind::kMaxPool;
    pool.name = "p1";
    m.addLayer(std::move(pool));
    add_conv("c3", 16, 32, 8);
    Layer fl;
    fl.kind = OpKind::kFlatten;
    fl.name = "flatten";
    m.addLayer(std::move(fl));
    Layer fc;
    fc.kind = OpKind::kFullyConnected;
    fc.name = "fc";
    fc.in_features = 32 * 8 * 8;
    fc.out_features = 10;
    m.addLayer(std::move(fc));
    m.randomizeWeights(123);
    return m;
}

Tensor
makeInput(uint64_t seed, int64_t n = 1)
{
    Tensor in(Shape{n, 3, 16, 16});
    Rng rng(seed);
    in.fillUniform(rng, -1.0f, 1.0f);
    return in;
}

std::string
tempArtifactPath(const char* tag)
{
    return std::string(::testing::TempDir()) + "patdnn_" + tag + ".pdnn";
}

TEST(Artifact, RoundTripBitIdenticalOutputs)
{
    Model m = tinyModel();
    DeviceSpec dev = makeCpuDevice(2);
    CompiledModel compiled(m, FrameworkKind::kPatDnn, dev);
    Tensor in = makeInput(9);
    Tensor expect = compiled.run(in);

    std::vector<uint8_t> bytes = serializeModel(compiled);
    std::string error;
    std::shared_ptr<CompiledModel> loaded = deserializeModel(bytes, dev, &error);
    ASSERT_NE(loaded, nullptr) << error;
    EXPECT_EQ(loaded->kind(), FrameworkKind::kPatDnn);
    EXPECT_EQ(loaded->nodeCount(), compiled.nodeCount());
    EXPECT_EQ(loaded->convNonZeros(), compiled.convNonZeros());

    // Same FKW arrays + same engine configuration => bit-identical.
    Tensor got = loaded->run(in);
    EXPECT_EQ(got.shape(), expect.shape());
    EXPECT_EQ(Tensor::maxAbsDiff(got, expect), 0.0);
}

TEST(Artifact, RoundTripAllFrameworkKinds)
{
    Model m = tinyModel();
    DeviceSpec dev = makeCpuDevice(2);
    Tensor in = makeInput(10);
    for (auto kind : {FrameworkKind::kTfliteLike, FrameworkKind::kTvmLike,
                      FrameworkKind::kMnnLike, FrameworkKind::kPatDnnDense,
                      FrameworkKind::kCsrSparse, FrameworkKind::kPatDnn}) {
        CompiledModel compiled(m, kind, dev);
        Tensor expect = compiled.run(in);
        std::string error;
        auto loaded = deserializeModel(serializeModel(compiled), dev, &error);
        ASSERT_NE(loaded, nullptr) << frameworkName(kind) << ": " << error;
        EXPECT_EQ(Tensor::maxAbsDiff(loaded->run(in), expect), 0.0)
            << frameworkName(kind);
    }
}

TEST(Artifact, SaveLoadFileRoundTrip)
{
    Model m = tinyModel();
    DeviceSpec dev = makeCpuDevice(2);
    CompiledModel compiled(m, FrameworkKind::kPatDnn, dev);
    std::string path = tempArtifactPath("roundtrip");
    std::string error;
    ASSERT_TRUE(saveModel(compiled, path, &error)) << error;
    std::shared_ptr<CompiledModel> loaded = loadModel(path, dev, &error);
    ASSERT_NE(loaded, nullptr) << error;
    Tensor in = makeInput(11);
    EXPECT_EQ(Tensor::maxAbsDiff(loaded->run(in), compiled.run(in)), 0.0);
    std::remove(path.c_str());
}

TEST(Artifact, PatternArtifactSmallerThanDense)
{
    // FKW replaces the dense weight view in the artifact, so a pruned
    // model must serialize smaller than its dense compilation.
    Model m = tinyModel();
    DeviceSpec dev = makeCpuDevice(2);
    CompiledModel sparse(m, FrameworkKind::kPatDnn, dev);
    CompiledModel dense(m, FrameworkKind::kPatDnnDense, dev);
    EXPECT_LT(serializeModel(sparse).size(), serializeModel(dense).size());
}

TEST(Artifact, RejectsCorruptedAndTruncatedBytes)
{
    Model m = tinyModel();
    DeviceSpec dev = makeCpuDevice(2);
    CompiledModel compiled(m, FrameworkKind::kPatDnn, dev);
    std::vector<uint8_t> bytes = serializeModel(compiled);

    std::string error;
    // Bad magic.
    {
        std::vector<uint8_t> bad = bytes;
        bad[0] ^= 0xFF;
        EXPECT_EQ(deserializeModel(bad, dev, &error), nullptr);
        EXPECT_NE(error.find("magic"), std::string::npos) << error;
    }
    // Unsupported version.
    {
        std::vector<uint8_t> bad = bytes;
        bad[4] = 0xEE;
        EXPECT_EQ(deserializeModel(bad, dev, &error), nullptr);
        EXPECT_NE(error.find("version"), std::string::npos) << error;
    }
    // Truncation at several depths.
    for (size_t keep : {size_t(3), size_t(15), bytes.size() / 2, bytes.size() - 1}) {
        std::vector<uint8_t> bad(bytes.begin(),
                                 bytes.begin() + static_cast<long>(keep));
        EXPECT_EQ(deserializeModel(bad, dev, &error), nullptr) << keep;
    }
    // Payload bit flips must fail the checksum.
    for (size_t at : {size_t(20), bytes.size() / 2, bytes.size() - 9}) {
        std::vector<uint8_t> bad = bytes;
        bad[at] ^= 0x01;
        EXPECT_EQ(deserializeModel(bad, dev, &error), nullptr) << at;
        EXPECT_NE(error.find("checksum"), std::string::npos) << error;
    }
    // Missing file.
    EXPECT_EQ(loadModel(tempArtifactPath("does_not_exist"), dev, &error), nullptr);
}

TEST(Session, SharedModelConcurrentSessionsMatchSerial)
{
    Model m = tinyModel();
    DeviceSpec dev = makeCpuDevice(2);
    auto model = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnn, dev);

    constexpr int kSessions = 4;
    constexpr int kRequests = 6;
    // Serial references from a fresh session per stream.
    std::vector<std::vector<Tensor>> expect(kSessions);
    for (int s = 0; s < kSessions; ++s) {
        InferenceSession session(model);
        for (int r = 0; r < kRequests; ++r)
            expect[static_cast<size_t>(s)].push_back(
                session.run(makeInput(100 + static_cast<uint64_t>(s * 31 + r))));
    }

    // Same streams, all sessions running concurrently.
    std::vector<std::vector<Tensor>> got(kSessions);
    std::vector<std::thread> threads;
    for (int s = 0; s < kSessions; ++s)
        threads.emplace_back([&, s] {
            InferenceSession session(model);
            for (int r = 0; r < kRequests; ++r)
                got[static_cast<size_t>(s)].push_back(
                    session.run(makeInput(100 + static_cast<uint64_t>(s * 31 + r))));
        });
    for (auto& t : threads)
        t.join();

    for (int s = 0; s < kSessions; ++s)
        for (int r = 0; r < kRequests; ++r)
            EXPECT_EQ(Tensor::maxAbsDiff(got[static_cast<size_t>(s)][static_cast<size_t>(r)],
                                         expect[static_cast<size_t>(s)][static_cast<size_t>(r)]),
                      0.0)
                << "session " << s << " request " << r;
}

TEST(Session, SingleElementOutputReusesWorkspaceSafely)
{
    // Regression: a fresh Workspace slot is rank-0 with numel() == 1
    // but no storage; a 1-element output (e.g. a scalar regression
    // head) must allocate it rather than reshape it.
    Model m("scalar-head", "test");
    Layer fl;
    fl.kind = OpKind::kFlatten;
    fl.name = "flatten";
    m.addLayer(std::move(fl));
    Layer fc;
    fc.kind = OpKind::kFullyConnected;
    fc.name = "fc";
    fc.in_features = 3 * 4 * 4;
    fc.out_features = 1;
    m.addLayer(std::move(fc));
    m.randomizeWeights(5);

    DeviceSpec dev = makeCpuDevice(2);
    auto model = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnnDense, dev);
    InferenceSession session(model);
    Tensor in(Shape{1, 3, 4, 4});
    Rng rng(6);
    in.fillUniform(rng, -1.0f, 1.0f);
    Tensor a = session.run(in);
    Tensor b = session.run(in);
    EXPECT_EQ(a.shape(), Shape({1, 1}));
    EXPECT_EQ(Tensor::maxAbsDiff(a, b), 0.0);
}

TEST(Session, TracksStats)
{
    Model m = tinyModel();
    DeviceSpec dev = makeCpuDevice(2);
    auto model = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnnDense, dev);
    InferenceSession session(model);
    session.run(makeInput(1));
    session.run(makeInput(2, /*n=*/3));
    EXPECT_EQ(session.stats().requests, 2);
    EXPECT_EQ(session.stats().samples, 4);
    EXPECT_GT(session.stats().total_ms, 0.0);
}

TEST(Server, DrainsBurstWithCorrectResultsAndStats)
{
    Model m = tinyModel();
    DeviceSpec dev = makeCpuDevice(2);
    auto model = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnn, dev);

    constexpr int kBurst = 40;
    std::vector<Tensor> inputs;
    std::vector<Tensor> expect;
    {
        InferenceSession reference(model);
        for (int i = 0; i < kBurst; ++i) {
            inputs.push_back(makeInput(500 + static_cast<uint64_t>(i)));
            expect.push_back(reference.run(inputs.back()));
        }
    }

    ServerOptions opts;
    opts.workers = 3;
    opts.max_batch = 4;
    opts.max_queue = kBurst;
    InferenceServer server(model, opts);
    std::vector<std::future<Tensor>> futures;
    for (int i = 0; i < kBurst; ++i)
        futures.push_back(server.submit(inputs[static_cast<size_t>(i)]));
    for (int i = 0; i < kBurst; ++i) {
        Tensor out = futures[static_cast<size_t>(i)].get();
        EXPECT_EQ(Tensor::maxAbsDiff(out, expect[static_cast<size_t>(i)]), 0.0)
            << "request " << i;
    }
    server.drain();

    ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed, kBurst);
    EXPECT_EQ(stats.queue_depth, 0u);
    EXPECT_GT(stats.p50_ms, 0.0);
    EXPECT_GE(stats.p99_ms, stats.p50_ms);
    EXPECT_GT(stats.throughput_rps, 0.0);
    EXPECT_GT(stats.batches, 0);
    EXPECT_LE(stats.batches, kBurst);
    EXPECT_GE(stats.avg_batch, 1.0);
    server.shutdown();
}

TEST(Server, MicroBatchesMultiSampleRequests)
{
    Model m = tinyModel();
    DeviceSpec dev = makeCpuDevice(2);
    auto model = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnnDense, dev);

    InferenceSession reference(model);
    Tensor a = makeInput(71, 2), b = makeInput(72, 3), c = makeInput(73, 1);
    Tensor ea = reference.run(a), eb = reference.run(b), ec = reference.run(c);

    ServerOptions opts;
    opts.workers = 1;
    opts.max_batch = 8;
    opts.start_paused = true;  // Queue everything, then serve: one batch.
    InferenceServer server(model, opts);
    auto fa = server.submit(a);
    auto fb = server.submit(b);
    auto fc = server.submit(c);
    server.start();
    EXPECT_EQ(Tensor::maxAbsDiff(fa.get(), ea), 0.0);
    EXPECT_EQ(Tensor::maxAbsDiff(fb.get(), eb), 0.0);
    EXPECT_EQ(Tensor::maxAbsDiff(fc.get(), ec), 0.0);
    server.drain();
    ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed, 3);
    EXPECT_EQ(stats.batches, 1);          // 2+3+1 samples fit one batch.
    EXPECT_DOUBLE_EQ(stats.avg_batch, 6.0);
    server.shutdown();
}

TEST(Server, BoundedQueueRejectsWhenFull)
{
    Model m = tinyModel();
    DeviceSpec dev = makeCpuDevice(2);
    auto model = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnnDense, dev);

    ServerOptions opts;
    opts.workers = 1;
    opts.max_queue = 4;
    opts.start_paused = true;  // No draining: the bound must bite.
    InferenceServer server(model, opts);
    std::vector<std::future<Tensor>> accepted;
    for (size_t i = 0; i < opts.max_queue; ++i) {
        std::future<Tensor> f;
        ASSERT_TRUE(server.trySubmit(makeInput(i), &f)) << i;
        accepted.push_back(std::move(f));
    }
    std::future<Tensor> overflow;
    EXPECT_FALSE(server.trySubmit(makeInput(99), &overflow));
    EXPECT_EQ(server.stats().rejected, 1);
    EXPECT_EQ(server.stats().queue_depth, opts.max_queue);

    server.start();
    for (auto& f : accepted)
        EXPECT_EQ(f.get().shape(), Shape({1, 10}));
    server.drain();
    EXPECT_EQ(server.stats().completed, static_cast<int64_t>(opts.max_queue));
    server.shutdown();
}

TEST(Server, MalformedInputFailsOnlyThatRequest)
{
    Model m = tinyModel();
    DeviceSpec dev = makeCpuDevice(2);
    auto model = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnnDense, dev);
    InferenceServer server(model);

    // Rank-0 and zero-sample tensors are rejected per-request.
    EXPECT_THROW(server.submit(Tensor()).get(), std::invalid_argument);
    EXPECT_THROW(server.submit(Tensor(Shape{0, 3, 16, 16})).get(),
                 std::invalid_argument);
    std::future<Tensor> f;
    EXPECT_FALSE(server.trySubmit(Tensor(), &f));
    EXPECT_EQ(server.stats().rejected, 1);

    // The server keeps serving well-formed requests afterwards.
    Tensor in = makeInput(77);
    EXPECT_EQ(server.submit(in).get().shape(), Shape({1, 10}));
}

TEST(Server, SubmitAfterShutdownFails)
{
    Model m = tinyModel();
    DeviceSpec dev = makeCpuDevice(2);
    auto model = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnnDense, dev);
    InferenceServer server(model);
    server.shutdown();
    std::future<Tensor> f;
    EXPECT_FALSE(server.trySubmit(makeInput(1), &f));
    EXPECT_THROW(server.submit(makeInput(2)).get(), std::runtime_error);
}

TEST(Server, LoadedArtifactServesBurst)
{
    // The full deployment path: compile -> save -> load -> serve.
    Model m = tinyModel();
    DeviceSpec dev = makeCpuDevice(2);
    CompiledModel compiled(m, FrameworkKind::kPatDnn, dev);
    std::string path = tempArtifactPath("serve_e2e");
    std::string error;
    ASSERT_TRUE(saveModel(compiled, path, &error)) << error;
    std::shared_ptr<CompiledModel> loaded = loadModel(path, dev, &error);
    ASSERT_NE(loaded, nullptr) << error;
    std::remove(path.c_str());

    auto server = serve(loaded);
    std::vector<std::future<Tensor>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(server->submit(makeInput(300 + static_cast<uint64_t>(i))));
    InferenceSession reference(loaded);
    for (int i = 0; i < 32; ++i) {
        Tensor expect = reference.run(makeInput(300 + static_cast<uint64_t>(i)));
        EXPECT_EQ(Tensor::maxAbsDiff(futures[static_cast<size_t>(i)].get(), expect),
                  0.0);
    }
    server->drain();
    EXPECT_EQ(server->stats().completed, 32);
    EXPECT_GT(server->stats().p99_ms, 0.0);
}

}  // namespace
}  // namespace patdnn
