/** @file Serving subsystem tests: artifacts, sessions, async server,
 * deadlines/cancellation, fake-clock linger batching, and the
 * multi-model registry. */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "core/patdnn.h"

namespace patdnn {
namespace {

Model
tinyModel()
{
    Model m("tiny-serve", "test");
    auto add_conv = [&](const std::string& name, int64_t cin, int64_t cout,
                        int64_t res) {
        Layer conv;
        conv.kind = OpKind::kConv;
        conv.name = name;
        conv.conv = ConvDesc{name, cin, cout, 3, 3, res, res, 1, 1, 1, 1};
        m.addLayer(std::move(conv));
        Layer relu;
        relu.kind = OpKind::kReLU;
        relu.name = name + "_relu";
        m.addLayer(std::move(relu));
    };
    add_conv("c1", 3, 16, 16);
    add_conv("c2", 16, 16, 16);
    Layer pool;
    pool.kind = OpKind::kMaxPool;
    pool.name = "p1";
    m.addLayer(std::move(pool));
    add_conv("c3", 16, 32, 8);
    Layer fl;
    fl.kind = OpKind::kFlatten;
    fl.name = "flatten";
    m.addLayer(std::move(fl));
    Layer fc;
    fc.kind = OpKind::kFullyConnected;
    fc.name = "fc";
    fc.in_features = 32 * 8 * 8;
    fc.out_features = 10;
    m.addLayer(std::move(fc));
    m.randomizeWeights(123);
    return m;
}

Tensor
makeInput(uint64_t seed, int64_t n = 1)
{
    Tensor in(Shape{n, 3, 16, 16});
    Rng rng(seed);
    in.fillUniform(rng, -1.0f, 1.0f);
    return in;
}

std::string
tempArtifactPath(const char* tag)
{
    return std::string(::testing::TempDir()) + "patdnn_" + tag + ".pdnn";
}

/** The ErrorCode a serving future failed with (kOk if it resolved). */
ErrorCode
futureErrorCode(std::future<Tensor>& f)
{
    try {
        f.get();
    } catch (const ServeError& e) {
        return e.code();
    }
    return ErrorCode::kOk;
}

TEST(Artifact, RoundTripBitIdenticalOutputs)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    CompiledModel compiled(m, FrameworkKind::kPatDnn, dev);
    Tensor in = makeInput(9);
    Tensor expect = compiled.run(in);

    std::vector<uint8_t> bytes = serializeModel(compiled);
    Result<std::shared_ptr<CompiledModel>> loaded = deserializeModel(bytes, dev);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    EXPECT_EQ(loaded.value()->kind(), FrameworkKind::kPatDnn);
    EXPECT_EQ(loaded.value()->nodeCount(), compiled.nodeCount());
    EXPECT_EQ(loaded.value()->convNonZeros(), compiled.convNonZeros());

    // Same FKW arrays + same engine configuration => bit-identical.
    Tensor got = loaded.value()->run(in);
    EXPECT_EQ(got.shape(), expect.shape());
    EXPECT_EQ(Tensor::maxAbsDiff(got, expect), 0.0);
}

TEST(Artifact, RoundTripAllFrameworkKinds)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    Tensor in = makeInput(10);
    for (auto kind : {FrameworkKind::kTfliteLike, FrameworkKind::kTvmLike,
                      FrameworkKind::kMnnLike, FrameworkKind::kPatDnnDense,
                      FrameworkKind::kCsrSparse, FrameworkKind::kPatDnn}) {
        CompiledModel compiled(m, kind, dev);
        Tensor expect = compiled.run(in);
        auto loaded = deserializeModel(serializeModel(compiled), dev);
        ASSERT_TRUE(loaded.ok())
            << frameworkName(kind) << ": " << loaded.status().toString();
        EXPECT_EQ(Tensor::maxAbsDiff(loaded.value()->run(in), expect), 0.0)
            << frameworkName(kind);
    }
}

TEST(Artifact, SaveLoadFileRoundTrip)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    CompiledModel compiled(m, FrameworkKind::kPatDnn, dev);
    std::string path = tempArtifactPath("roundtrip");
    Status saved = saveModel(compiled, path);
    ASSERT_TRUE(saved.ok()) << saved.toString();
    Result<std::shared_ptr<CompiledModel>> loaded = loadModel(path, dev);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    Tensor in = makeInput(11);
    EXPECT_EQ(Tensor::maxAbsDiff(loaded.value()->run(in), compiled.run(in)), 0.0);
    std::remove(path.c_str());
}

TEST(Artifact, PatternArtifactSmallerThanDense)
{
    // FKW replaces the dense weight view in the artifact, so a pruned
    // model must serialize smaller than its dense compilation.
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    CompiledModel sparse(m, FrameworkKind::kPatDnn, dev);
    CompiledModel dense(m, FrameworkKind::kPatDnnDense, dev);
    EXPECT_LT(serializeModel(sparse).size(), serializeModel(dense).size());
}

TEST(Artifact, RejectsCorruptedAndTruncatedBytes)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    CompiledModel compiled(m, FrameworkKind::kPatDnn, dev);
    std::vector<uint8_t> bytes = serializeModel(compiled);

    // Every rejection carries a typed code + stable detail slug — the
    // assertions here never match message prose.
    // Bad magic.
    {
        std::vector<uint8_t> bad = bytes;
        bad[0] ^= 0xFF;
        auto r = deserializeModel(bad, dev);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.status().code(), ErrorCode::kDataLoss);
        EXPECT_STREQ(r.status().detail(), artifact_detail::kBadMagic);
    }
    // Unsupported version.
    {
        std::vector<uint8_t> bad = bytes;
        bad[4] = 0xEE;
        auto r = deserializeModel(bad, dev);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.status().code(), ErrorCode::kInvalidArgument);
        EXPECT_STREQ(r.status().detail(), artifact_detail::kUnsupportedVersion);
    }
    // Truncation at several depths.
    for (size_t keep : {size_t(3), size_t(15), bytes.size() / 2, bytes.size() - 1}) {
        std::vector<uint8_t> bad(bytes.begin(),
                                 bytes.begin() + static_cast<long>(keep));
        auto r = deserializeModel(bad, dev);
        ASSERT_FALSE(r.ok()) << keep;
        EXPECT_EQ(r.status().code(), ErrorCode::kDataLoss) << keep;
    }
    // Payload bit flips must fail the checksum.
    for (size_t at : {size_t(20), bytes.size() / 2, bytes.size() - 9}) {
        std::vector<uint8_t> bad = bytes;
        bad[at] ^= 0x01;
        auto r = deserializeModel(bad, dev);
        ASSERT_FALSE(r.ok()) << at;
        EXPECT_EQ(r.status().code(), ErrorCode::kDataLoss) << at;
        EXPECT_STREQ(r.status().detail(), artifact_detail::kChecksumMismatch)
            << at;
    }
    // Missing file.
    auto missing = loadModel(tempArtifactPath("does_not_exist"), dev);
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.status().code(), ErrorCode::kNotFound);
}

TEST(Session, SharedModelConcurrentSessionsMatchSerial)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    auto model = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnn, dev);

    constexpr int kSessions = 4;
    constexpr int kRequests = 6;
    // Serial references from a fresh session per stream.
    std::vector<std::vector<Tensor>> expect(kSessions);
    for (int s = 0; s < kSessions; ++s) {
        InferenceSession session(model);
        for (int r = 0; r < kRequests; ++r)
            expect[static_cast<size_t>(s)].push_back(
                session.run(makeInput(100 + static_cast<uint64_t>(s * 31 + r))));
    }

    // Same streams, all sessions running concurrently.
    std::vector<std::vector<Tensor>> got(kSessions);
    std::vector<std::thread> threads;
    for (int s = 0; s < kSessions; ++s)
        threads.emplace_back([&, s] {
            InferenceSession session(model);
            for (int r = 0; r < kRequests; ++r)
                got[static_cast<size_t>(s)].push_back(
                    session.run(makeInput(100 + static_cast<uint64_t>(s * 31 + r))));
        });
    for (auto& t : threads)
        t.join();

    for (int s = 0; s < kSessions; ++s)
        for (int r = 0; r < kRequests; ++r)
            EXPECT_EQ(Tensor::maxAbsDiff(got[static_cast<size_t>(s)][static_cast<size_t>(r)],
                                         expect[static_cast<size_t>(s)][static_cast<size_t>(r)]),
                      0.0)
                << "session " << s << " request " << r;
}

TEST(Session, SingleElementOutputReusesWorkspaceSafely)
{
    // Regression: a fresh Workspace slot is rank-0 with numel() == 1
    // but no storage; a 1-element output (e.g. a scalar regression
    // head) must allocate it rather than reshape it.
    Model m("scalar-head", "test");
    Layer fl;
    fl.kind = OpKind::kFlatten;
    fl.name = "flatten";
    m.addLayer(std::move(fl));
    Layer fc;
    fc.kind = OpKind::kFullyConnected;
    fc.name = "fc";
    fc.in_features = 3 * 4 * 4;
    fc.out_features = 1;
    m.addLayer(std::move(fc));
    m.randomizeWeights(5);

    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    auto model = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnnDense, dev);
    InferenceSession session(model);
    Tensor in(Shape{1, 3, 4, 4});
    Rng rng(6);
    in.fillUniform(rng, -1.0f, 1.0f);
    Tensor a = session.run(in);
    Tensor b = session.run(in);
    EXPECT_EQ(a.shape(), Shape({1, 1}));
    EXPECT_EQ(Tensor::maxAbsDiff(a, b), 0.0);
}

TEST(Session, TracksStats)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    auto model = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnnDense, dev);
    InferenceSession session(model);
    session.run(makeInput(1));
    session.run(makeInput(2, /*n=*/3));
    EXPECT_EQ(session.stats().requests, 2);
    EXPECT_EQ(session.stats().samples, 4);
    EXPECT_GT(session.stats().total_ms, 0.0);
}

TEST(Server, DrainsBurstWithCorrectResultsAndStats)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    auto model = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnn, dev);

    constexpr int kBurst = 40;
    std::vector<Tensor> inputs;
    std::vector<Tensor> expect;
    {
        InferenceSession reference(model);
        for (int i = 0; i < kBurst; ++i) {
            inputs.push_back(makeInput(500 + static_cast<uint64_t>(i)));
            expect.push_back(reference.run(inputs.back()));
        }
    }

    ServerOptions opts;
    opts.workers = 3;
    opts.max_batch = 4;
    opts.max_queue = kBurst;
    InferenceServer server(model, opts);
    std::vector<std::future<Tensor>> futures;
    for (int i = 0; i < kBurst; ++i)
        futures.push_back(server.submit(inputs[static_cast<size_t>(i)]));
    for (int i = 0; i < kBurst; ++i) {
        Tensor out = futures[static_cast<size_t>(i)].get();
        EXPECT_EQ(Tensor::maxAbsDiff(out, expect[static_cast<size_t>(i)]), 0.0)
            << "request " << i;
    }
    server.drain();

    ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed, kBurst);
    EXPECT_EQ(stats.queue_depth, 0u);
    EXPECT_GT(stats.p50_ms, 0.0);
    EXPECT_GE(stats.p99_ms, stats.p50_ms);
    EXPECT_GT(stats.throughput_rps, 0.0);
    EXPECT_GT(stats.batches, 0);
    EXPECT_LE(stats.batches, kBurst);
    EXPECT_GE(stats.avg_batch, 1.0);
    server.shutdown();
}

TEST(Server, MicroBatchesMultiSampleRequests)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    auto model = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnnDense, dev);

    InferenceSession reference(model);
    Tensor a = makeInput(71, 2), b = makeInput(72, 3), c = makeInput(73, 1);
    Tensor ea = reference.run(a), eb = reference.run(b), ec = reference.run(c);

    ServerOptions opts;
    opts.workers = 1;
    opts.max_batch = 8;
    opts.start_paused = true;  // Queue everything, then serve: one batch.
    InferenceServer server(model, opts);
    auto fa = server.submit(a);
    auto fb = server.submit(b);
    auto fc = server.submit(c);
    server.start();
    EXPECT_EQ(Tensor::maxAbsDiff(fa.get(), ea), 0.0);
    EXPECT_EQ(Tensor::maxAbsDiff(fb.get(), eb), 0.0);
    EXPECT_EQ(Tensor::maxAbsDiff(fc.get(), ec), 0.0);
    server.drain();
    ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed, 3);
    EXPECT_EQ(stats.batches, 1);          // 2+3+1 samples fit one batch.
    EXPECT_DOUBLE_EQ(stats.avg_batch, 6.0);
    server.shutdown();
}

TEST(Server, BoundedQueueRejectsWhenFull)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    auto model = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnnDense, dev);

    ServerOptions opts;
    opts.workers = 1;
    opts.max_queue = 4;
    opts.start_paused = true;  // No draining: the bound must bite.
    InferenceServer server(model, opts);
    std::vector<std::future<Tensor>> accepted;
    for (size_t i = 0; i < opts.max_queue; ++i) {
        std::future<Tensor> f;
        Result<RequestId> admitted = server.trySubmit(makeInput(i), &f);
        ASSERT_TRUE(admitted.ok()) << i << ": " << admitted.status().toString();
        EXPECT_NE(admitted.value(), 0u);
        accepted.push_back(std::move(f));
    }
    std::future<Tensor> overflow;
    Result<RequestId> refused = server.trySubmit(makeInput(99), &overflow);
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), ErrorCode::kResourceExhausted);
    EXPECT_EQ(server.stats().rejected, 1);
    EXPECT_EQ(server.stats().queue_depth, opts.max_queue);

    server.start();
    for (auto& f : accepted)
        EXPECT_EQ(f.get().shape(), Shape({1, 10}));
    server.drain();
    EXPECT_EQ(server.stats().completed, static_cast<int64_t>(opts.max_queue));
    server.shutdown();
}

TEST(Server, MalformedInputFailsOnlyThatRequest)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    auto model = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnnDense, dev);
    InferenceServer server(model);

    // Rank-0 and zero-sample tensors are rejected per-request with a
    // typed kInvalidArgument.
    std::future<Tensor> bad1 = server.submit(Tensor());
    EXPECT_EQ(futureErrorCode(bad1), ErrorCode::kInvalidArgument);
    std::future<Tensor> bad2 = server.submit(Tensor(Shape{0, 3, 16, 16}));
    EXPECT_EQ(futureErrorCode(bad2), ErrorCode::kInvalidArgument);
    std::future<Tensor> f;
    Result<RequestId> refused = server.trySubmit(Tensor(), &f);
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), ErrorCode::kInvalidArgument);
    EXPECT_EQ(server.stats().rejected, 1);

    // The server keeps serving well-formed requests afterwards.
    Tensor in = makeInput(77);
    EXPECT_EQ(server.submit(in).get().shape(), Shape({1, 10}));
}

TEST(Server, SubmitAfterShutdownFails)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    auto model = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnnDense, dev);
    InferenceServer server(model);
    server.shutdown();
    std::future<Tensor> f;
    Result<RequestId> refused = server.trySubmit(makeInput(1), &f);
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), ErrorCode::kUnavailable);
    std::future<Tensor> late = server.submit(makeInput(2));
    EXPECT_EQ(futureErrorCode(late), ErrorCode::kUnavailable);
}

TEST(Server, LoadedArtifactServesBurst)
{
    // The full deployment path: compile -> save -> load -> serve,
    // driven end-to-end through the Compiler + Result facade.
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    Result<std::shared_ptr<CompiledModel>> built = Compiler(dev).compile(m);
    ASSERT_TRUE(built.ok()) << built.status().toString();
    std::string path = tempArtifactPath("serve_e2e");
    Status saved = saveModel(*built.value(), path);
    ASSERT_TRUE(saved.ok()) << saved.toString();
    Result<std::shared_ptr<CompiledModel>> load_result = loadModel(path, dev);
    ASSERT_TRUE(load_result.ok()) << load_result.status().toString();
    std::shared_ptr<CompiledModel> loaded = std::move(load_result).value();
    std::remove(path.c_str());

    auto server = serve(loaded);
    std::vector<std::future<Tensor>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(server->submit(makeInput(300 + static_cast<uint64_t>(i))));
    InferenceSession reference(loaded);
    for (int i = 0; i < 32; ++i) {
        Tensor expect = reference.run(makeInput(300 + static_cast<uint64_t>(i)));
        EXPECT_EQ(Tensor::maxAbsDiff(futures[static_cast<size_t>(i)].get(), expect),
                  0.0);
    }
    server->drain();
    EXPECT_EQ(server->stats().completed, 32);
    EXPECT_GT(server->stats().p99_ms, 0.0);
}

// ---------------------------------------------------------------------------
// Deadlines & cancellation
// ---------------------------------------------------------------------------

TEST(Server, ExpiredDeadlineIsShedBeforeDispatch)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    auto model = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnnDense, dev);

    auto clock = std::make_shared<FakeClock>();
    ServerOptions opts;
    opts.workers = 1;
    opts.start_paused = true;  // Stage both requests before serving.
    opts.clock = clock;
    InferenceServer server(model, opts);

    SubmitOptions expired;
    expired.deadline = clock->now();  // Already due when a worker looks.
    std::future<Tensor> dead = server.submit(makeInput(1), expired);
    std::future<Tensor> alive = server.submit(makeInput(2));
    server.start();

    EXPECT_EQ(futureErrorCode(dead), ErrorCode::kDeadlineExceeded);
    EXPECT_EQ(alive.get().shape(), Shape({1, 10}));
    server.drain();

    ServerStats stats = server.stats();
    EXPECT_EQ(stats.accepted, 2);
    EXPECT_EQ(stats.completed, 1);
    EXPECT_EQ(stats.deadline_exceeded, 1);
    EXPECT_EQ(stats.cancelled, 0);
    server.shutdown();
}

TEST(Server, CancelRemovesOnlyQueuedRequests)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    auto model = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnnDense, dev);

    ServerOptions opts;
    opts.workers = 1;
    opts.start_paused = true;
    InferenceServer server(model, opts);

    RequestId id = 0;
    std::future<Tensor> f = server.submit(makeInput(1), {}, &id);
    ASSERT_NE(id, 0u);
    EXPECT_TRUE(server.cancel(id));
    EXPECT_FALSE(server.cancel(id));   // Already removed.
    EXPECT_FALSE(server.cancel(999));  // Never issued.
    EXPECT_EQ(futureErrorCode(f), ErrorCode::kCancelled);

    server.start();
    RequestId id2 = 0;
    std::future<Tensor> g = server.submit(makeInput(2), {}, &id2);
    EXPECT_EQ(g.get().shape(), Shape({1, 10}));
    server.drain();
    EXPECT_FALSE(server.cancel(id2));  // Completed: too late to cancel.

    ServerStats stats = server.stats();
    EXPECT_EQ(stats.cancelled, 1);
    EXPECT_EQ(stats.completed, 1);
    EXPECT_EQ(stats.accepted, 2);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Linger batching under a fake clock (deterministic, no sleeps)
// ---------------------------------------------------------------------------

TEST(Server, LingerFlushesAtExactlyMaxLinger)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    auto model = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnnDense, dev);

    auto clock = std::make_shared<FakeClock>();
    ServerOptions opts;
    opts.workers = 1;
    opts.max_batch = 4;
    opts.max_linger_ms = 10.0;
    opts.clock = clock;
    InferenceServer server(model, opts);

    std::future<Tensor> f = server.submit(makeInput(1));
    // The worker popped the request and armed the linger wait.
    clock->waitForRegistrations(1);
    int64_t r = clock->registrations();
    clock->advanceMs(9.0);  // One ms short of the window...
    clock->waitForRegistrations(r + 1);  // ...worker re-evaluated, re-armed.
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::timeout);
    EXPECT_EQ(server.stats().batches, 0);

    clock->advanceMs(1.0);  // Exactly max_linger: the batch must flush.
    EXPECT_EQ(f.get().shape(), Shape({1, 10}));
    server.drain();
    ServerStats stats = server.stats();
    EXPECT_EQ(stats.batches, 1);
    EXPECT_DOUBLE_EQ(stats.avg_batch, 1.0);
    server.shutdown();
}

// The serve spans are stamped from the server's injectable clock, so
// under a FakeClock the batch_form span must cover the linger window
// EXACTLY — not approximately — from first pop to flush.
TEST(Server, BatchFormSpanCoversExactlyTheLingerWindow)
{
    if (!Tracer::compiledIn())
        GTEST_SKIP() << "built with PATDNN_ENABLE_TRACING=OFF";

    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    auto model = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnnDense, dev);

    auto clock = std::make_shared<FakeClock>();
    ServerOptions opts;
    opts.workers = 1;
    opts.max_batch = 4;
    opts.max_linger_ms = 10.0;
    opts.clock = clock;
    InferenceServer server(model, opts);

    Tracer::clear();
    Tracer::setEnabled(true);  // Before submit: stamps the admission time.
    std::future<Tensor> f = server.submit(makeInput(1));
    clock->waitForRegistrations(1);
    int64_t r = clock->registrations();
    clock->advanceMs(9.0);
    clock->waitForRegistrations(r + 1);
    clock->advanceMs(1.0);  // Exactly max_linger: flush.
    EXPECT_EQ(f.get().shape(), Shape({1, 10}));
    server.drain();
    Tracer::setEnabled(false);
    server.shutdown();

    const TraceEvent* batch_form = nullptr;
    const TraceEvent* queue_wait = nullptr;
    std::vector<TraceEvent> events = Tracer::collect();
    for (const TraceEvent& e : events) {
        if (std::strcmp(e.name, "batch_form") == 0)
            batch_form = &e;
        if (std::strcmp(e.name, "queue_wait") == 0)
            queue_wait = &e;
    }
    ASSERT_NE(batch_form, nullptr);
    // First pop to flush is the whole 10 ms linger window, on the dot:
    // 9 ms advance + 1 ms advance, and the fake clock never moves
    // otherwise.
    EXPECT_EQ(batch_form->dur_ns, 10'000'000);
    EXPECT_STREQ(batch_form->arg_name, "rows");
    EXPECT_EQ(batch_form->arg_value, 1);
    // The request's queue wait is also clock-stamped and can only be
    // the same window or less (popped at or after admission).
    ASSERT_NE(queue_wait, nullptr);
    EXPECT_GE(queue_wait->dur_ns, 0);
    EXPECT_LE(queue_wait->dur_ns, 10'000'000);
    Tracer::clear();
}

// ServerStats latencies come from a lock-free histogram now; the
// legacy p50_ms/p99_ms fields must stay aliases of the new quad.
TEST(Server, StatsLatencyHistogramCountsEveryCompletion)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    auto model = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnnDense, dev);

    ServerOptions opts;
    opts.workers = 2;
    opts.max_batch = 4;
    opts.max_linger_ms = 0.5;
    InferenceServer server(model, opts);

    constexpr int kBurst = 12;
    std::vector<std::future<Tensor>> futures;
    for (int i = 0; i < kBurst; ++i)
        futures.push_back(server.submit(makeInput(static_cast<uint64_t>(i))));
    for (auto& f : futures)
        EXPECT_EQ(f.get().shape(), Shape({1, 10}));
    server.drain();

    ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed, kBurst);
    EXPECT_EQ(stats.latency_hist.count, kBurst);
    EXPECT_GT(stats.latency_hist.min, 0.0);
    EXPECT_GE(stats.latency_hist.max, stats.latency_hist.min);
    // The legacy fields alias the histogram quad.
    EXPECT_DOUBLE_EQ(stats.p50_ms, stats.latency.p50);
    EXPECT_DOUBLE_EQ(stats.p99_ms, stats.latency.p99);
    EXPECT_GE(stats.latency.p99, stats.latency.p50);
    EXPECT_GE(stats.latency.p999, stats.latency.p99);
    EXPECT_GT(stats.mean_ms, 0.0);
    server.shutdown();
}

TEST(Server, FullBatchPreemptsLingerAndBurstFormsFullBatches)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    auto model = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnnDense, dev);

    auto clock = std::make_shared<FakeClock>();
    ServerOptions opts;
    opts.workers = 1;
    opts.max_batch = 4;
    opts.max_linger_ms = 1000.0;  // Would stall forever if linger decided.
    opts.start_paused = true;
    opts.clock = clock;
    InferenceServer server(model, opts);

    // A burst of 2 x max_batch requests staged before serving starts.
    std::vector<std::future<Tensor>> futures;
    for (int i = 0; i < 8; ++i)
        futures.push_back(server.submit(makeInput(static_cast<uint64_t>(i))));
    server.start();
    for (auto& f : futures)
        EXPECT_EQ(f.get().shape(), Shape({1, 10}));
    server.drain();

    // Full batches dispatched without a single timed wait: max_batch
    // preempts the linger window.
    EXPECT_EQ(clock->registrations(), 0);
    ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed, 8);
    EXPECT_EQ(stats.batches, 2);  // >= 2 full batches from the burst.
    EXPECT_DOUBLE_EQ(stats.avg_batch, 4.0);
    server.shutdown();
}

TEST(Server, SparseStreamLingersToSingletonBatches)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    auto model = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnnDense, dev);

    auto clock = std::make_shared<FakeClock>();
    ServerOptions opts;
    opts.workers = 1;
    opts.max_batch = 4;
    opts.max_linger_ms = 10.0;
    opts.clock = clock;
    InferenceServer server(model, opts);

    // One request per 2 x linger window: every batch must flush at the
    // window with exactly one sample (sparse streams still make
    // progress; they just never find a batchmate).
    constexpr int kRequests = 4;
    for (int i = 0; i < kRequests; ++i) {
        int64_t r = clock->registrations();
        std::future<Tensor> f =
            server.submit(makeInput(static_cast<uint64_t>(100 + i)));
        clock->waitForRegistrations(r + 1);
        clock->advanceMs(20.0);  // 2 x max_linger between arrivals.
        EXPECT_EQ(f.get().shape(), Shape({1, 10}));
    }
    server.drain();
    ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed, kRequests);
    EXPECT_EQ(stats.batches, kRequests);  // Batch size 1 throughout.
    EXPECT_DOUBLE_EQ(stats.avg_batch, 1.0);
    server.shutdown();
}

TEST(Server, ZeroLingerReproducesImmediateDispatch)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    auto model = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnnDense, dev);

    auto clock = std::make_shared<FakeClock>();
    ServerOptions opts;
    opts.workers = 1;
    opts.max_batch = 4;
    opts.max_linger_ms = 0.0;  // Legacy behaviour: serve what is queued.
    opts.clock = clock;
    InferenceServer server(model, opts);

    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(server.submit(makeInput(static_cast<uint64_t>(i))).get().shape(),
                  Shape({1, 10}));
    server.drain();
    // The fake clock never advanced and the server never armed a timed
    // wait: zero linger cannot stall a request stream.
    EXPECT_EQ(clock->registrations(), 0);
    EXPECT_EQ(server.stats().completed, 5);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Artifact provenance (header v3) + streamed-load negative paths
// ---------------------------------------------------------------------------

TEST(Artifact, V1V2HeadersLoadWithProvenanceWarning)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    CompiledModel compiled(m, FrameworkKind::kPatDnn, dev);
    Tensor in = makeInput(21);
    Tensor expect = compiled.run(in);

    for (uint32_t version : {1u, 2u}) {
        std::vector<uint8_t> bytes = serializeModel(compiled, version);
        ArtifactInfo info;
        auto loaded = deserializeModel(bytes, dev, ArtifactLoadOptions{}, &info);
        ASSERT_TRUE(loaded.ok())
            << "v" << version << ": " << loaded.status().toString();
        EXPECT_EQ(info.version, version);
        EXPECT_FALSE(info.has_fingerprint);
        EXPECT_FALSE(info.has_compile_opts);
        // The specific pre-v3 diagnostic, not a crash.
        bool warned = false;
        for (const std::string& w : info.warnings)
            warned = warned || w.find("pre-v3 header (version " +
                                      std::to_string(version) + ")") !=
                                   std::string::npos;
        EXPECT_TRUE(warned) << "v" << version;
        EXPECT_EQ(Tensor::maxAbsDiff(loaded.value()->run(in), expect), 0.0);
    }
    // v1 predates the ISA record entirely.
    ArtifactInfo info;
    auto v1 = deserializeModel(serializeModel(compiled, 1), dev,
                               ArtifactLoadOptions{}, &info);
    ASSERT_TRUE(v1.ok()) << v1.status().toString();
    EXPECT_EQ(v1.value()->tunedIsa(), SimdIsa::kScalar);
}

TEST(Artifact, RecordsCompileOptionsAndFingerprint)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    CompileOptions copts;
    copts.pattern_count = 6;
    copts.connectivity_rate = 4.25;
    copts.seed = 77;
    CompiledModel compiled(m, FrameworkKind::kPatDnn, dev, copts);

    ArtifactInfo info;
    auto loaded = deserializeModel(serializeModel(compiled), dev,
                                   ArtifactLoadOptions{}, &info);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    EXPECT_EQ(info.version, kModelArtifactVersion);
    ASSERT_TRUE(info.has_fingerprint);
    EXPECT_EQ(info.pool_width, dev.threads);
    EXPECT_FALSE(info.gpu_like);
    EXPECT_EQ(info.tile_budget_kb, dev.tile_budget_kb);
    ASSERT_TRUE(info.has_compile_opts);
    EXPECT_EQ(info.compile_opts.pattern_count, 6);
    EXPECT_DOUBLE_EQ(info.compile_opts.connectivity_rate, 4.25);
    EXPECT_EQ(info.compile_opts.seed, 77u);
    EXPECT_EQ(loaded.value()->compileOptions().pattern_count, 6);
    EXPECT_TRUE(info.warnings.empty()) << info.warnings.front();
}

TEST(Artifact, DeviceFingerprintMismatchDiagnostics)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    CompiledModel compiled(m, FrameworkKind::kPatDnn, dev);
    std::vector<uint8_t> bytes = serializeModel(compiled);

    // Scheduling-model mismatch is always an error: the tuned plan does
    // not transfer between CPU and GPU-like block scheduling. The
    // rejection carries a typed code + slug, no message matching.
    DeviceSpec gpuish = makeFixedWidthCpuDevice(2);
    gpuish.gpu_like = true;
    auto rejected = deserializeModel(bytes, gpuish);
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), ErrorCode::kDeviceMismatch);
    EXPECT_STREQ(rejected.status().detail(),
                 artifact_detail::kFingerprintMismatch);

    // Pool-width mismatch: diagnostic warning by default...
    DeviceSpec wide = makeFixedWidthCpuDevice(dev.threads + 2);
    ArtifactInfo info;
    auto loaded = deserializeModel(bytes, wide, ArtifactLoadOptions{}, &info);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    bool warned = false;
    for (const std::string& w : info.warnings)
        warned = warned ||
                 w.find("compiled for pool width " +
                        std::to_string(dev.threads)) != std::string::npos;
    EXPECT_TRUE(warned);

    // ...and a typed kDeviceMismatch rejection under strict loading.
    ArtifactLoadOptions strict;
    strict.require_matching_fingerprint = true;
    auto strict_rejected = deserializeModel(bytes, wide, strict);
    ASSERT_FALSE(strict_rejected.ok());
    EXPECT_EQ(strict_rejected.status().code(), ErrorCode::kDeviceMismatch);
    EXPECT_STREQ(strict_rejected.status().detail(),
                 artifact_detail::kFingerprintMismatch);
}

TEST(Artifact, TruncatedStreamAndFlippedChecksumOnDisk)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    CompiledModel compiled(m, FrameworkKind::kPatDnn, dev);
    std::string path = tempArtifactPath("negative");
    Status saved = saveModelArtifact(compiled, path);
    ASSERT_TRUE(saved.ok()) << saved.toString();

    // Pull the on-disk bytes so corrupted variants can be written back.
    std::vector<uint8_t> bytes;
    {
        std::FILE* f = std::fopen(path.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 0, SEEK_END);
        bytes.resize(static_cast<size_t>(std::ftell(f)));
        std::fseek(f, 0, SEEK_SET);
        ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
        std::fclose(f);
    }
    auto write_variant = [&](const std::vector<uint8_t>& v) {
        std::FILE* f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(v.data(), 1, v.size(), f), v.size());
        std::fclose(f);
    };

    // The streamed loader round-trips the pristine file.
    {
        auto pristine = loadModelArtifact(path, dev);
        ASSERT_TRUE(pristine.ok()) << pristine.status().toString();
    }

    // Truncated stream at several depths: the typed truncation slug on
    // a kDataLoss status — distinguishable from a checksum failure
    // without reading the message.
    for (size_t keep : {size_t(3), size_t(20), bytes.size() / 2, bytes.size() - 1}) {
        write_variant({bytes.begin(), bytes.begin() + static_cast<long>(keep)});
        auto r = loadModelArtifact(path, dev);
        ASSERT_FALSE(r.ok()) << keep;
        EXPECT_EQ(r.status().code(), ErrorCode::kDataLoss) << keep;
        EXPECT_STREQ(r.status().detail(), artifact_detail::kTruncatedStream)
            << keep;
    }

    // One flipped checksum byte (and one flipped payload byte) fail the
    // incremental checksum with the checksum slug.
    for (size_t at : {bytes.size() - 1, bytes.size() / 2}) {
        std::vector<uint8_t> bad = bytes;
        bad[at] ^= 0x01;
        write_variant(bad);
        auto r = loadModelArtifact(path, dev);
        ASSERT_FALSE(r.ok()) << at;
        EXPECT_EQ(r.status().code(), ErrorCode::kDataLoss) << at;
        EXPECT_STREQ(r.status().detail(), artifact_detail::kChecksumMismatch)
            << at;
    }
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Artifact v4: the memory-plan record
// ---------------------------------------------------------------------------

/** Recompute the payload checksum after a deliberate payload mutation,
 * so negatives exercise the *plan* validation path rather than tripping
 * the earlier checksum gate. Layout constants are part of the artifact
 * format contract (artifact.h). */
std::vector<uint8_t>
resealArtifact(std::vector<uint8_t> bytes)
{
    constexpr size_t kHeader = 4 + 4 + 8;
    uint64_t h = 0xcbf29ce484222325ULL;
    for (size_t i = kHeader; i + 8 < bytes.size(); ++i) {
        h ^= bytes[i];
        h *= 0x100000001b3ULL;
    }
    // Backpatch the payload size (the plan-truncation variant shortens
    // the payload) and the trailing checksum.
    uint64_t payload_size = bytes.size() - kHeader - 8;
    for (int i = 0; i < 8; ++i)
        bytes[8 + static_cast<size_t>(i)] =
            static_cast<uint8_t>(payload_size >> (8 * i));
    for (int i = 0; i < 8; ++i)
        bytes[bytes.size() - 8 + static_cast<size_t>(i)] =
            static_cast<uint8_t>(h >> (8 * i));
    return bytes;
}

TEST(Artifact, V4RoundTripRestoresMemoryPlan)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    CompiledModel compiled(m, FrameworkKind::kPatDnn, dev);
    ASSERT_TRUE(compiled.hasMemoryPlan());

    ArtifactInfo info;
    auto loaded = deserializeModel(serializeModel(compiled), dev,
                                   ArtifactLoadOptions{}, &info);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    EXPECT_EQ(info.version, kModelArtifactVersion);
    EXPECT_TRUE(info.compile_opts.enable_memory_plan);
    ASSERT_TRUE(loaded.value()->hasMemoryPlan());

    // The restored plan is the compiled plan, slot for slot.
    const MemoryPlan& want = compiled.memoryPlan();
    const MemoryPlan& got = loaded.value()->memoryPlan();
    ASSERT_EQ(got.slotCount(), want.slotCount());
    EXPECT_EQ(got.arenaElemsPerSample(), want.arenaElemsPerSample());
    EXPECT_EQ(got.sumElemsPerSample(), want.sumElemsPerSample());
    EXPECT_EQ(got.alignElems(), want.alignElems());
    for (size_t i = 0; i < want.slotCount(); ++i) {
        EXPECT_EQ(got.slot(i).planned, want.slot(i).planned) << i;
        EXPECT_EQ(got.slot(i).offset_elems, want.slot(i).offset_elems) << i;
        EXPECT_EQ(got.slot(i).size_elems, want.slot(i).size_elems) << i;
        EXPECT_EQ(got.slot(i).last_use, want.slot(i).last_use) << i;
    }

    // A planned-arena session over the restored model runs bit-exact
    // against the original compile.
    Tensor in = makeInput(41, 2);
    Tensor expect = compiled.run(in);
    InferenceSession session(loaded.value(), SessionMemory::kPlannedArena);
    Tensor out = session.run(in);
    ASSERT_EQ(out.shape(), expect.shape());
    EXPECT_EQ(std::memcmp(out.data(), expect.data(),
                          static_cast<size_t>(out.numel()) * sizeof(float)),
              0);
}

TEST(Artifact, PreV4ArtifactsLoadPlanLess)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    CompiledModel compiled(m, FrameworkKind::kPatDnn, dev);
    ASSERT_TRUE(compiled.hasMemoryPlan());
    Tensor in = makeInput(42);
    Tensor expect = compiled.run(in);

    for (uint32_t version : {1u, 2u, 3u}) {
        auto loaded = deserializeModel(serializeModel(compiled, version), dev);
        ASSERT_TRUE(loaded.ok())
            << "v" << version << ": " << loaded.status().toString();
        // Pre-v4 layouts carry no plan; the model must not invent one,
        // and the recorded options must say planning was absent.
        EXPECT_FALSE(loaded.value()->hasMemoryPlan()) << "v" << version;
        EXPECT_FALSE(loaded.value()->compileOptions().enable_memory_plan)
            << "v" << version;
        // kAuto sessions fall back to the per-layer workspace and still
        // compute the same outputs.
        InferenceSession session(loaded.value());
        EXPECT_FALSE(session.usesPlannedArena()) << "v" << version;
        EXPECT_EQ(Tensor::maxAbsDiff(session.run(in), expect), 0.0)
            << "v" << version;
    }
}

TEST(Artifact, V5RoundTripRestoresGemmBlocking)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    CompileOptions opts;
    opts.default_tuning.gemm_kc = 96;
    opts.default_tuning.gemm_nc = 48;
    CompiledModel compiled(m, FrameworkKind::kPatDnn, dev, opts);

    // v5 carries the dense packed-GEMM blocking through the artifact.
    auto loaded = deserializeModel(serializeModel(compiled), dev);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    int checked = 0;
    for (const CompiledLayerState& st : loaded.value()->exportState()) {
        if (!st.live || st.kind != OpKind::kConv)
            continue;
        EXPECT_EQ(st.tuning.gemm_kc, 96);
        EXPECT_EQ(st.tuning.gemm_nc, 48);
        ++checked;
    }
    EXPECT_GT(checked, 0);

    // A v4 serialization has no slot for the fields: the load falls
    // back to 0 (= blocking re-derived from the device budget).
    auto v4 = deserializeModel(serializeModel(compiled, 4), dev);
    ASSERT_TRUE(v4.ok()) << v4.status().toString();
    for (const CompiledLayerState& st : v4.value()->exportState()) {
        if (!st.live || st.kind != OpKind::kConv)
            continue;
        EXPECT_EQ(st.tuning.gemm_kc, 0);
        EXPECT_EQ(st.tuning.gemm_nc, 0);
    }
}

// ---------------------------------------------------------------------------
// Artifact v6: quantization records
// ---------------------------------------------------------------------------

TEST(Artifact, V6RoundTripRestoresQuantizationBitExactly)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    CompileOptions opts;
    opts.precision = Precision::kInt8;
    opts.calibration.method = CalibrationMethod::kPercentile;
    opts.calibration.percentile = 99.5;
    opts.calibration.samples = 3;
    opts.calibration.seed = 777;
    CompiledModel compiled(m, FrameworkKind::kPatDnnDense, dev, opts);

    ArtifactInfo info;
    auto loaded = deserializeModel(serializeModel(compiled), dev,
                                   ArtifactLoadOptions{}, &info);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    EXPECT_EQ(info.version, kModelArtifactVersion);
    // Quantization provenance survives the header round trip.
    EXPECT_EQ(info.compile_opts.precision, Precision::kInt8);
    EXPECT_EQ(info.compile_opts.calibration.method,
              CalibrationMethod::kPercentile);
    EXPECT_EQ(info.compile_opts.calibration.percentile, 99.5);
    EXPECT_EQ(info.compile_opts.calibration.samples, 3);
    EXPECT_EQ(info.compile_opts.calibration.seed, 777u);

    // Per-layer scales restore exactly: the stored f32 weights are
    // re-quantized against them, so restored execution is bit-exact.
    std::vector<CompiledLayerState> want = compiled.exportState();
    std::vector<CompiledLayerState> got = loaded.value()->exportState();
    ASSERT_EQ(want.size(), got.size());
    int quantized = 0;
    for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].quantized, want[i].quantized) << i;
        EXPECT_EQ(got[i].act_scale, want[i].act_scale) << i;
        EXPECT_EQ(got[i].weight_scales, want[i].weight_scales) << i;
        quantized += got[i].quantized ? 1 : 0;
    }
    EXPECT_EQ(quantized, 3) << "all three tiny-model convs quantize";

    Tensor in = makeInput(51, 2);
    Tensor expect = compiled.run(in);
    Tensor out = loaded.value()->run(in);
    ASSERT_EQ(out.shape(), expect.shape());
    EXPECT_EQ(std::memcmp(out.data(), expect.data(),
                          static_cast<size_t>(out.numel()) * sizeof(float)),
              0)
        << "restored quantized model diverges from the in-memory compile";
}

TEST(Artifact, V5SerializationOfQuantizedModelLoadsAsF32)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    CompileOptions i8_opts;
    i8_opts.precision = Precision::kInt8;
    CompiledModel quantized(m, FrameworkKind::kPatDnnDense, dev, i8_opts);
    CompiledModel f32(m, FrameworkKind::kPatDnnDense, dev);

    // Pre-v6 layouts have no quant-record slot, and the weights are
    // stored as f32 either way — so an old reader (simulated by an old
    // serialization) gets exactly the plain f32 model.
    auto loaded = deserializeModel(serializeModel(quantized, 5), dev);
    ASSERT_TRUE(loaded.ok()) << loaded.status().toString();
    for (const CompiledLayerState& st : loaded.value()->exportState())
        EXPECT_FALSE(st.quantized);
    EXPECT_EQ(loaded.value()->compileOptions().precision, Precision::kF32);

    Tensor in = makeInput(52);
    Tensor expect = f32.run(in);
    Tensor out = loaded.value()->run(in);
    EXPECT_EQ(std::memcmp(out.data(), expect.data(),
                          static_cast<size_t>(out.numel()) * sizeof(float)),
              0)
        << "v5 load of a quantized model must run as the plain f32 compile";
}

TEST(Artifact, CorruptQuantRecordIsDataLossWithQuantSlug)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    CompileOptions opts;
    opts.precision = Precision::kInt8;
    CompiledModel compiled(m, FrameworkKind::kPatDnnDense, dev, opts);
    std::vector<uint8_t> bytes = serializeModel(compiled);

    // Locate the first quantized layer's act_scale by its f64 byte
    // pattern (unique in the payload with overwhelming probability);
    // the scale count and scale list follow it by the format contract.
    float act_scale = 0.0f;
    for (const CompiledLayerState& st : compiled.exportState())
        if (st.quantized) {
            act_scale = st.act_scale;
            break;
        }
    ASSERT_GT(act_scale, 0.0f);
    double as64 = static_cast<double>(act_scale);
    uint8_t pat[8];
    std::memcpy(pat, &as64, 8);
    size_t at = 0;
    for (at = 16; at + 8 < bytes.size(); ++at)
        if (std::memcmp(bytes.data() + at, pat, 8) == 0)
            break;
    ASSERT_LT(at + 8, bytes.size()) << "act_scale bytes not found";

    auto expect_quant_slug = [&](std::vector<uint8_t> bad, const char* what) {
        auto r = deserializeModel(resealArtifact(std::move(bad)), dev);
        ASSERT_FALSE(r.ok()) << what;
        EXPECT_EQ(r.status().code(), ErrorCode::kDataLoss) << what;
        EXPECT_STREQ(r.status().detail(), artifact_detail::kBadQuantRecord)
            << what;
    };
    {
        // Negative activation scale: sign bit of the f64.
        std::vector<uint8_t> bad = bytes;
        bad[at + 7] |= 0x80;
        expect_quant_slug(std::move(bad), "negative act_scale");
    }
    {
        // Zero activation scale.
        std::vector<uint8_t> bad = bytes;
        std::memset(bad.data() + at, 0, 8);
        expect_quant_slug(std::move(bad), "zero act_scale");
    }
    {
        // Implausible scale count (the u32 right after act_scale):
        // parses as a truncated quant record.
        std::vector<uint8_t> bad = bytes;
        std::memset(bad.data() + at + 8, 0xFF, 4);
        expect_quant_slug(std::move(bad), "huge scale count");
    }
    {
        // Negative per-channel weight scale (first scale follows the
        // count u32).
        std::vector<uint8_t> bad = bytes;
        bad[at + 8 + 4 + 7] |= 0x80;
        expect_quant_slug(std::move(bad), "negative weight scale");
    }
}

TEST(Artifact, CorruptMemoryPlanIsDataLossWithPlanSlug)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    CompiledModel compiled(m, FrameworkKind::kPatDnn, dev);
    std::vector<uint8_t> bytes = serializeModel(compiled);

    // The plan record sits at the payload tail; the final four bytes
    // before the checksum are the last planned slot's last_use. Mutate
    // it and reseal the checksum: the bytes are well-framed and
    // checksum-valid, so only the plan validation gate can refuse them.
    {
        std::vector<uint8_t> bad = bytes;
        bad[bad.size() - 9] ^= 0x04;  // last_use high bits.
        auto r = deserializeModel(resealArtifact(std::move(bad)), dev);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.status().code(), ErrorCode::kDataLoss);
        EXPECT_STREQ(r.status().detail(), artifact_detail::kBadMemoryPlan);
    }
    // An offset mutation that breaks alignment / aliasing is refused
    // the same way (never reaches a session).
    {
        std::vector<uint8_t> bad = bytes;
        bad[bad.size() - 9 - 4 - 4 - 8] ^= 0x01;  // offset_elems low byte.
        auto r = deserializeModel(resealArtifact(std::move(bad)), dev);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.status().code(), ErrorCode::kDataLoss);
        EXPECT_STREQ(r.status().detail(), artifact_detail::kBadMemoryPlan);
    }
}

TEST(Artifact, TruncatedMemoryPlanRecordIsDataLoss)
{
    Model m = tinyModel();
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    CompiledModel compiled(m, FrameworkKind::kPatDnn, dev);
    std::vector<uint8_t> bytes = serializeModel(compiled);

    // Drop the tail of the plan record but keep the framing honest
    // (payload size backpatched, checksum recomputed): a mid-plan EOF
    // is a malformed payload, not a checksum or stream error.
    for (size_t cut : {size_t(1), size_t(5), size_t(17)}) {
        std::vector<uint8_t> bad = bytes;
        bad.erase(bad.end() - 8 - static_cast<long>(cut), bad.end() - 8);
        auto r = deserializeModel(resealArtifact(std::move(bad)), dev);
        ASSERT_FALSE(r.ok()) << cut;
        EXPECT_EQ(r.status().code(), ErrorCode::kDataLoss) << cut;
        EXPECT_STREQ(r.status().detail(), artifact_detail::kMalformedPayload)
            << cut;
    }
}

// ---------------------------------------------------------------------------
// Multi-model registry
// ---------------------------------------------------------------------------

TEST(Registry, RoutesByNameSharesPoolAndEvicts)
{
    Model m = tinyModel();
    RegistryOptions ropts;
    ropts.device = makeFixedWidthCpuDevice(2);
    ropts.server.workers = 1;
    ModelRegistry reg(ropts);

    auto sparse = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnn, reg.device());
    auto dense = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnnDense, reg.device());
    Status added = reg.add("sparse", sparse);
    ASSERT_TRUE(added.ok()) << added.toString();
    added = reg.add("dense", dense);
    ASSERT_TRUE(added.ok()) << added.toString();
    Status taken = reg.add("dense", sparse);  // Name taken.
    ASSERT_FALSE(taken.ok());
    EXPECT_EQ(taken.code(), ErrorCode::kInvalidArgument);
    EXPECT_EQ(reg.names(), (std::vector<std::string>{"dense", "sparse"}));

    // Every model in the registry executes on ONE shared compute pool.
    EXPECT_EQ(&reg.model("sparse")->device().pool(), &reg.device().pool());
    EXPECT_EQ(&reg.model("dense")->device().pool(), &reg.device().pool());

    Tensor in = makeInput(55);
    InferenceSession ref_sparse(sparse), ref_dense(dense);
    EXPECT_EQ(Tensor::maxAbsDiff(reg.submit("sparse", in).get(),
                                 ref_sparse.run(in)),
              0.0);
    EXPECT_EQ(Tensor::maxAbsDiff(reg.submit("dense", in).get(),
                                 ref_dense.run(in)),
              0.0);
    std::future<Tensor> unknown = reg.submit("missing", in);
    EXPECT_EQ(futureErrorCode(unknown), ErrorCode::kNotFound);
    reg.drainAll();
    EXPECT_EQ(reg.stats("sparse").completed, 1);
    EXPECT_EQ(reg.stats("dense").completed, 1);

    EXPECT_TRUE(reg.evict("sparse"));
    EXPECT_FALSE(reg.evict("sparse"));
    std::future<Tensor> evicted = reg.submit("sparse", in);
    EXPECT_EQ(futureErrorCode(evicted), ErrorCode::kNotFound);
    EXPECT_EQ(reg.size(), 1u);
    reg.shutdownAll();
}

TEST(Registry, LoadsArtifactsFromDisk)
{
    Model m = tinyModel();
    RegistryOptions ropts;
    ropts.device = makeFixedWidthCpuDevice(2);
    ModelRegistry reg(ropts);

    CompiledModel compiled(m, FrameworkKind::kPatDnn, reg.device());
    std::string path = tempArtifactPath("registry");
    Status saved = saveModel(compiled, path);
    ASSERT_TRUE(saved.ok()) << saved.toString();
    Status loaded = reg.load("vgg", path);
    ASSERT_TRUE(loaded.ok()) << loaded.toString();
    std::remove(path.c_str());

    Tensor in = makeInput(77);
    EXPECT_EQ(Tensor::maxAbsDiff(reg.submit("vgg", in).get(), compiled.run(in)),
              0.0);
    Status missing = reg.load("other", path);  // File already gone.
    ASSERT_FALSE(missing.ok());
    // The loader's typed code propagates through the registry.
    EXPECT_EQ(missing.code(), ErrorCode::kNotFound);
    reg.shutdownAll();
}

}  // namespace
}  // namespace patdnn
