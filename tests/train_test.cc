/** @file Training substrate tests: numerical gradients + learning. */
#include <gtest/gtest.h>

#include <cmath>

#include "train/trainer.h"

namespace patdnn {
namespace {

/**
 * Numerical gradient check harness: compares the analytic weight
 * gradient of one layer against central finite differences through a
 * scalar loss L = sum(out * probe).
 */
double
checkLayerGradients(TrainLayer& layer, const Tensor& in, float eps = 1e-3f)
{
    Tensor out = layer.forward(in, /*training=*/true);
    Rng rng(77);
    Tensor probe(out.shape());
    probe.fillUniform(rng, -1.0f, 1.0f);
    layer.zeroGrads();
    layer.backward(probe);

    double worst = 0.0;
    for (auto& p : layer.params()) {
        Tensor& w = *p.value;
        Tensor& g = *p.grad;
        // Sample a handful of coordinates to keep the test fast.
        Rng pick(13);
        int64_t samples = std::min<int64_t>(w.numel(), 12);
        for (int64_t s = 0; s < samples; ++s) {
            int64_t i = pick.uniformInt(0, w.numel() - 1);
            float orig = w[i];
            auto loss_at = [&](float v) {
                w[i] = v;
                Tensor o = layer.forward(in, false);
                double l = 0.0;
                for (int64_t j = 0; j < o.numel(); ++j)
                    l += static_cast<double>(o[j]) * probe[j];
                return l;
            };
            double lp = loss_at(orig + eps);
            double lm = loss_at(orig - eps);
            w[i] = orig;
            double numeric = (lp - lm) / (2.0 * eps);
            double analytic = g[i];
            double denom = std::max(1.0, std::fabs(numeric) + std::fabs(analytic));
            worst = std::max(worst, std::fabs(numeric - analytic) / denom);
        }
    }
    return worst;
}

TEST(TrainGradients, Conv2dMatchesNumerical)
{
    Rng rng(1);
    ConvDesc d{"c", 3, 4, 3, 3, 6, 6, 1, 1, 1, 1};
    Conv2dLayer layer(d, rng);
    Tensor in(Shape{2, 3, 6, 6});
    in.fillUniform(rng, -1.0f, 1.0f);
    EXPECT_LT(checkLayerGradients(layer, in), 2e-2);
}

TEST(TrainGradients, Conv2dStride2MatchesNumerical)
{
    Rng rng(2);
    ConvDesc d{"c", 2, 3, 3, 3, 8, 8, 2, 1, 1, 1};
    Conv2dLayer layer(d, rng);
    Tensor in(Shape{1, 2, 8, 8});
    in.fillUniform(rng, -1.0f, 1.0f);
    EXPECT_LT(checkLayerGradients(layer, in), 2e-2);
}

TEST(TrainGradients, FcMatchesNumerical)
{
    Rng rng(3);
    FcLayer layer("fc", 10, 7, rng);
    Tensor in(Shape{3, 10});
    in.fillUniform(rng, -1.0f, 1.0f);
    EXPECT_LT(checkLayerGradients(layer, in), 2e-2);
}

TEST(TrainGradients, BatchNormMatchesNumerical)
{
    Rng rng(4);
    BatchNormLayer layer("bn", 3);
    Tensor in(Shape{4, 3, 5, 5});
    in.fillUniform(rng, -2.0f, 2.0f);
    // fp32 central differences through batch statistics are noisy; the
    // bound is looser than for the linear layers.
    EXPECT_LT(checkLayerGradients(layer, in), 6e-2);
}

TEST(TrainGradients, ConvInputGradientMatchesNumerical)
{
    Rng rng(5);
    ConvDesc d{"c", 2, 2, 3, 3, 5, 5, 1, 1, 1, 1};
    Conv2dLayer layer(d, rng);
    Tensor in(Shape{1, 2, 5, 5});
    in.fillUniform(rng, -1.0f, 1.0f);
    Tensor out = layer.forward(in, true);
    Rng prng(6);
    Tensor probe(out.shape());
    probe.fillUniform(prng, -1.0f, 1.0f);
    layer.zeroGrads();
    Tensor gin = layer.backward(probe);
    float eps = 1e-3f;
    Rng pick(7);
    for (int s = 0; s < 10; ++s) {
        int64_t i = pick.uniformInt(0, in.numel() - 1);
        Tensor in2 = in;
        in2[i] += eps;
        Tensor op = layer.forward(in2, false);
        in2[i] -= 2 * eps;
        Tensor om = layer.forward(in2, false);
        double lp = 0.0, lm = 0.0;
        for (int64_t j = 0; j < op.numel(); ++j) {
            lp += static_cast<double>(op[j]) * probe[j];
            lm += static_cast<double>(om[j]) * probe[j];
        }
        double numeric = (lp - lm) / (2.0 * eps);
        EXPECT_NEAR(gin[i], numeric, 2e-2);
    }
}

TEST(TrainLoss, SoftmaxCrossEntropyGradientSumsToZero)
{
    Rng rng(8);
    Tensor logits(Shape{4, 5});
    logits.fillUniform(rng, -2.0f, 2.0f);
    std::vector<int> labels = {0, 2, 4, 1};
    Tensor grad;
    double loss = softmaxCrossEntropy(logits, labels, grad);
    EXPECT_GT(loss, 0.0);
    for (int64_t b = 0; b < 4; ++b) {
        double s = 0.0;
        for (int64_t k = 0; k < 5; ++k)
            s += grad[b * 5 + k];
        EXPECT_NEAR(s, 0.0, 1e-6);
    }
}

TEST(TrainLoss, PerfectLogitsGiveLowLoss)
{
    Tensor logits(Shape{2, 3});
    logits.fill(-10.0f);
    logits[0 * 3 + 1] = 10.0f;
    logits[1 * 3 + 2] = 10.0f;
    Tensor grad;
    double loss = softmaxCrossEntropy(logits, {1, 2}, grad);
    EXPECT_LT(loss, 1e-6);
}

TEST(TrainPooling, MaxPoolForwardAndRouting)
{
    MaxPoolLayer pool("p", 2, 2);
    Tensor in(Shape{1, 1, 4, 4},
              {1, 5, 2, 0, 3, 4, 1, 1, 0, 0, 9, 2, 0, 0, 3, 8});
    Tensor out = pool.forward(in, true);
    EXPECT_EQ(out.shape(), Shape({1, 1, 2, 2}));
    EXPECT_EQ(out[0], 5.0f);
    EXPECT_EQ(out[3], 9.0f);
    Tensor g(out.shape(), {1, 1, 1, 1});
    Tensor gin = pool.backward(g);
    EXPECT_EQ(gin[1], 1.0f);   // Position of 5.
    EXPECT_EQ(gin[10], 1.0f);  // Position of 9.
    EXPECT_EQ(gin[0], 0.0f);
}

TEST(TrainEndToEnd, SmallNetLearnsSyntheticShapes)
{
    SyntheticShapes data(4, 12, 1, 160, 64, 123);
    Net net = buildVggStyleNet(4, 12, 1, 8, 42);
    TrainConfig cfg;
    cfg.epochs = 6;
    cfg.batch_size = 16;
    cfg.lr = 2e-3f;
    TrainResult res = trainNet(net, data, cfg);
    // Chance is 25%; the tiny CNN must do far better.
    EXPECT_GT(res.test_accuracy, 0.6) << "loss=" << res.final_loss;
}

TEST(TrainMasking, MasksFreezePrunedWeights)
{
    SyntheticShapes data(2, 8, 1, 32, 16, 5);
    Net net = buildVggStyleNet(2, 8, 1, 4, 43);
    // Zero half the first conv's weights and freeze.
    auto convs = net.convLayers();
    Tensor& w = convs[0]->weight();
    for (int64_t i = 0; i < w.numel(); i += 2)
        w[i] = 0.0f;
    auto masks = captureMasks(net);
    TrainConfig cfg;
    cfg.epochs = 1;
    cfg.batch_size = 16;
    cfg.grad_hook = [&](Net& n) { applyMaskToGrads(n, masks); };
    cfg.post_step_hook = [&](Net& n) { applyMaskToWeights(n, masks); };
    trainNet(net, data, cfg);
    for (int64_t i = 0; i < w.numel(); i += 2)
        EXPECT_EQ(w[i], 0.0f);
}

TEST(TrainOptimizer, AdamConvergesOnQuadratic)
{
    // Minimize (w - 3)^2 with Adam through the ParamRef interface.
    Tensor w(Shape{1}, {0.0f});
    Tensor g(Shape{1});
    Adam opt({{&w, &g, "w"}}, 0.1f);
    for (int i = 0; i < 300; ++i) {
        g[0] = 2.0f * (w[0] - 3.0f);
        opt.step();
    }
    EXPECT_NEAR(w[0], 3.0f, 0.05f);
}

TEST(TrainOptimizer, SgdMomentumConverges)
{
    Tensor w(Shape{1}, {0.0f});
    Tensor g(Shape{1});
    Sgd opt({{&w, &g, "w"}}, 0.05f, 0.9f);
    for (int i = 0; i < 200; ++i) {
        g[0] = 2.0f * (w[0] - 3.0f);
        opt.step();
    }
    EXPECT_NEAR(w[0], 3.0f, 0.05f);
}

}  // namespace
}  // namespace patdnn
