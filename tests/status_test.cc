/** @file Error-model tests: ErrorCode exhaustiveness, Status/Result
 * semantics, and the stable artifact detail slugs. */
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "serve/artifact.h"
#include "util/status.h"

namespace patdnn {
namespace {

TEST(ErrorCode, EveryCodeHasAStableUniqueName)
{
    // Exhaustive over the enum: each code maps to a non-empty,
    // distinct snake_case name. kErrorCodeCount pins the enum size so
    // adding a code without a name fails here.
    std::set<std::string> names;
    for (int i = 0; i < kErrorCodeCount; ++i) {
        const char* name = errorCodeName(static_cast<ErrorCode>(i));
        ASSERT_NE(name, nullptr) << i;
        EXPECT_STRNE(name, "") << i;
        EXPECT_STRNE(name, "unknown") << i;
        EXPECT_TRUE(names.insert(name).second)
            << "duplicate errorCodeName: " << name;
    }
    // The names are a stable API surface: spot-pin the full mapping.
    EXPECT_STREQ(errorCodeName(ErrorCode::kOk), "ok");
    EXPECT_STREQ(errorCodeName(ErrorCode::kInvalidArgument),
                 "invalid_argument");
    EXPECT_STREQ(errorCodeName(ErrorCode::kNotFound), "not_found");
    EXPECT_STREQ(errorCodeName(ErrorCode::kDataLoss), "data_loss");
    EXPECT_STREQ(errorCodeName(ErrorCode::kDeviceMismatch), "device_mismatch");
    EXPECT_STREQ(errorCodeName(ErrorCode::kDeadlineExceeded),
                 "deadline_exceeded");
    EXPECT_STREQ(errorCodeName(ErrorCode::kCancelled), "cancelled");
    EXPECT_STREQ(errorCodeName(ErrorCode::kResourceExhausted),
                 "resource_exhausted");
    EXPECT_STREQ(errorCodeName(ErrorCode::kUnavailable), "unavailable");
    EXPECT_STREQ(errorCodeName(ErrorCode::kInternal), "internal");
    // Out-of-range casts degrade to "unknown" rather than crashing.
    EXPECT_STREQ(errorCodeName(static_cast<ErrorCode>(kErrorCodeCount + 7)),
                 "unknown");
}

TEST(Status, DefaultIsOkErrorCarriesCodeMessageDetail)
{
    Status ok;
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.code(), ErrorCode::kOk);
    EXPECT_EQ(ok.toString(), "ok");
    EXPECT_STREQ(ok.detail(), "");
    EXPECT_TRUE(Status::OK().ok());

    Status err(ErrorCode::kNotFound, "no such model", "registry/miss");
    EXPECT_FALSE(err.ok());
    EXPECT_EQ(err.code(), ErrorCode::kNotFound);
    EXPECT_EQ(err.message(), "no such model");
    EXPECT_STREQ(err.detail(), "registry/miss");
    EXPECT_EQ(err.toString(), "not_found: no such model");
}

TEST(Result, HoldsValueOrStatusIncludingMoveOnlyTypes)
{
    Result<int> value(42);
    ASSERT_TRUE(value.ok());
    EXPECT_TRUE(static_cast<bool>(value));
    EXPECT_EQ(value.value(), 42);
    EXPECT_EQ(*value, 42);
    EXPECT_EQ(value.valueOr(-1), 42);
    EXPECT_TRUE(value.status().ok());

    Result<int> error(Status(ErrorCode::kResourceExhausted, "queue full"));
    ASSERT_FALSE(error.ok());
    EXPECT_EQ(error.code(), ErrorCode::kResourceExhausted);
    EXPECT_EQ(error.status().message(), "queue full");
    EXPECT_EQ(error.valueOr(-1), -1);

    // Move-only payloads (the facade returns unique_ptr-bearing
    // CompiledLayer values through Result).
    Result<std::unique_ptr<int>> boxed(std::make_unique<int>(7));
    ASSERT_TRUE(boxed.ok());
    EXPECT_EQ(*boxed.value(), 7);
    std::unique_ptr<int> taken = std::move(boxed).value();
    EXPECT_EQ(*taken, 7);
}

TEST(Result, StatusReturningFunctionsCompose)
{
    // The Result(T) / Result(Status) implicit constructors make both
    // `return value;` and `return status;` work in one function.
    auto parse = [](int x) -> Result<int> {
        if (x < 0)
            return Status(ErrorCode::kInvalidArgument, "negative");
        return x * 2;
    };
    EXPECT_EQ(parse(4).value(), 8);
    EXPECT_EQ(parse(-1).code(), ErrorCode::kInvalidArgument);
}

TEST(ArtifactDetail, SlugsAreDistinctStableStrings)
{
    // The slugs distinguish kDataLoss failure modes without message
    // matching; pin them as API.
    EXPECT_STREQ(artifact_detail::kBadMagic, "artifact/bad-magic");
    EXPECT_STREQ(artifact_detail::kUnsupportedVersion,
                 "artifact/unsupported-version");
    EXPECT_STREQ(artifact_detail::kTruncatedStream,
                 "artifact/truncated-stream");
    EXPECT_STREQ(artifact_detail::kChecksumMismatch,
                 "artifact/checksum-mismatch");
    EXPECT_STREQ(artifact_detail::kMalformedPayload,
                 "artifact/malformed-payload");
    EXPECT_STREQ(artifact_detail::kFingerprintMismatch,
                 "artifact/fingerprint-mismatch");
}

}  // namespace
}  // namespace patdnn
