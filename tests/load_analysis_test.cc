/** @file Register-load analysis tests (Fig. 14b machinery). */
#include <gtest/gtest.h>

#include "prune/projections.h"
#include "rt/load_analysis.h"

namespace patdnn {
namespace {

struct Built
{
    ConvDesc desc{"t", 16, 32, 3, 3, 14, 14, 1, 1, 1, 1};
    Tensor weight;
    PatternSet set = canonicalPatternSet(8);
    FkwLayer fkw;

    Built()
    {
        Rng rng(1);
        weight = Tensor(Shape{desc.cout, desc.cin, 3, 3});
        weight.fillNormal(rng);
        PatternAssignment asg = projectJoint(weight, set, 142);
        FkrResult fkr = filterKernelReorder(asg);
        fkw = buildFkw(weight, set, asg, fkr);
    }
};

TEST(LoadAnalysis, LreReducesTotalLoads)
{
    Built b;
    LayerwiseRep with;
    with.conv = b.desc;
    with.opts.lre = true;
    LayerwiseRep without = with;
    without.opts.lre = false;
    DeviceSpec dev = makeCpuDevice(4);
    LoadCounts on = analyzeLoads(b.desc, b.fkw, with, dev);
    LoadCounts off = analyzeLoads(b.desc, b.fkw, without, dev);
    EXPECT_LT(on.total(), off.total());
    // With 4-entry patterns the single-pass LRE kernel cuts output
    // loads 4x and shares input loads across bundles: >= ~1.6x total.
    EXPECT_GT(static_cast<double>(off.total()) / static_cast<double>(on.total()),
              1.5);
    EXPECT_EQ(off.output_loads, 4 * on.output_loads);
}

TEST(LoadAnalysis, NoLreCountsMatchClosedForm)
{
    Built b;
    LayerwiseRep lr;
    lr.conv = b.desc;
    lr.opts.lre = false;
    LoadCounts c = analyzeLoads(b.desc, b.fkw, lr, makeCpuDevice(4));
    int64_t pixels = b.desc.outH() * b.desc.outW();
    int64_t kernels = b.fkw.kernelCount();
    // Without LRE each kernel performs entries passes: one output load
    // and one input load per pixel per entry.
    EXPECT_EQ(c.output_loads, kernels * pixels * 4);
    EXPECT_EQ(c.input_loads, kernels * pixels * 4);
    EXPECT_EQ(c.weight_loads, kernels * 4);
}

TEST(LoadAnalysis, BundlingReducesInputLoads)
{
    Built b;
    LayerwiseRep bundled;
    bundled.conv = b.desc;
    bundled.tuning.unroll_oc = 8;
    LayerwiseRep unbundled = bundled;
    unbundled.tuning.unroll_oc = 1;
    DeviceSpec dev = makeCpuDevice(4);
    LoadCounts wide = analyzeLoads(b.desc, b.fkw, bundled, dev);
    LoadCounts narrow = analyzeLoads(b.desc, b.fkw, unbundled, dev);
    EXPECT_LE(wide.input_loads, narrow.input_loads);
    // Output loads identical: every output element still accumulated.
    EXPECT_EQ(wide.output_loads, narrow.output_loads);
}

TEST(LoadAnalysis, OutputLoadsScaleWithKernelCount)
{
    Built b;
    LayerwiseRep lr;
    lr.conv = b.desc;
    LoadCounts c = analyzeLoads(b.desc, b.fkw, lr, makeCpuDevice(4));
    int64_t pixels = b.desc.outH() * b.desc.outW();
    EXPECT_EQ(c.output_loads, b.fkw.kernelCount() * pixels);
}

}  // namespace
}  // namespace patdnn
