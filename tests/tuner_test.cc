/** @file Auto-tuner (GA + performance estimator) tests. */
#include <gtest/gtest.h>

#include <cmath>

#include "rt/tuner.h"

namespace patdnn {
namespace {

/** Synthetic cost surface with a known optimum inside the space. */
double
syntheticCost(const TuneParams& p)
{
    double cost = 1.0;
    cost += std::fabs(std::log2(static_cast<double>(p.tile_oh)) - 3.0);   // Best 8.
    cost += 0.5 * std::fabs(std::log2(static_cast<double>(p.unroll_w)) - 2.0);
    cost += p.permute == LoopPermutation::kCoHWCi ? 0.0 : 1.0;
    cost += p.blocked ? 0.0 : 0.7;
    return cost;
}

TEST(Tuner, ReturnsLegalConfiguration)
{
    TuneSpace space;
    TunerConfig cfg;
    cfg.population = 8;
    cfg.generations = 3;
    cfg.measure_reps = 1;
    TuneResult r = tuneLayer(syntheticCost, space, cfg);
    auto contains = [](const auto& v, auto x) {
        for (const auto& e : v)
            if (e == x)
                return true;
        return false;
    };
    EXPECT_TRUE(contains(space.tile_oh, r.best.tile_oh));
    EXPECT_TRUE(contains(space.tile_ow, r.best.tile_ow));
    EXPECT_TRUE(contains(space.unroll_w, r.best.unroll_w));
    EXPECT_TRUE(contains(space.filters_per_task, r.best.filters_per_task));
}

TEST(Tuner, FindsNearOptimalOnSyntheticSurface)
{
    TunerConfig cfg;
    cfg.population = 12;
    cfg.generations = 6;
    cfg.measure_reps = 1;
    TuneResult r = tuneLayer(syntheticCost, TuneSpace{}, cfg);
    EXPECT_EQ(r.best.tile_oh, 8);
    EXPECT_EQ(r.best.permute, LoopPermutation::kCoHWCi);
    EXPECT_TRUE(r.best.blocked);
    EXPECT_LT(r.best_ms, 1.6);
}

TEST(Tuner, BestNeverWorseThanFirstGeneration)
{
    TunerConfig cfg;
    cfg.population = 6;
    cfg.generations = 4;
    cfg.measure_reps = 1;
    TuneResult r = tuneLayer(syntheticCost, TuneSpace{}, cfg);
    double first_gen_best = 1e30;
    for (int i = 0; i < cfg.population && i < static_cast<int>(r.history.size()); ++i)
        first_gen_best = std::min(first_gen_best, r.history[static_cast<size_t>(i)].time_ms);
    EXPECT_LE(r.best_ms, first_gen_best);
}

TEST(Tuner, HistoryRecordsEveryEvaluation)
{
    TunerConfig cfg;
    cfg.population = 5;
    cfg.generations = 2;
    cfg.measure_reps = 1;
    TuneResult r = tuneLayer(syntheticCost, TuneSpace{}, cfg);
    EXPECT_EQ(static_cast<int>(r.history.size()), r.evaluations);
    EXPECT_GE(r.evaluations, cfg.population);
}

TEST(Tuner, DeterministicGivenSeed)
{
    TunerConfig cfg;
    cfg.population = 6;
    cfg.generations = 3;
    cfg.measure_reps = 1;
    cfg.seed = 41;
    TuneResult a = tuneLayer(syntheticCost, TuneSpace{}, cfg);
    TuneResult b = tuneLayer(syntheticCost, TuneSpace{}, cfg);
    EXPECT_EQ(a.best_ms, b.best_ms);
    EXPECT_EQ(a.best.tile_oh, b.best.tile_oh);
}

TEST(PerfEstimator, LearnsTheSurfaceShape)
{
    // Train on GA history, then check the model ranks a good config
    // ahead of a bad one.
    TunerConfig cfg;
    cfg.population = 16;
    cfg.generations = 5;
    cfg.measure_reps = 1;
    TuneResult r = tuneLayer(syntheticCost, TuneSpace{}, cfg);
    PerfEstimator est;
    est.fit(r.history);
    ASSERT_TRUE(est.trained());
    TuneParams good = r.best;
    TuneParams bad;
    bad.tile_oh = 32;
    bad.unroll_w = 2;
    bad.permute = LoopPermutation::kCoCiHW;
    bad.blocked = false;
    EXPECT_LT(est.predict(good), est.predict(bad));
}

TEST(PerfEstimator, ArgminPicksLowPredictedCost)
{
    TunerConfig cfg;
    cfg.population = 16;
    cfg.generations = 5;
    cfg.measure_reps = 1;
    TuneResult r = tuneLayer(syntheticCost, TuneSpace{}, cfg);
    PerfEstimator est;
    est.fit(r.history);
    TuneSpace space;
    TuneParams pick = est.argminOver(space);
    // The linear model approximates a non-convex surface; its pick
    // must still land in the cheap region (worst corner costs > 5).
    EXPECT_LT(syntheticCost(pick), 3.0);
}

TEST(PerfEstimator, UntrainedOnTinyHistory)
{
    PerfEstimator est;
    est.fit({});
    EXPECT_FALSE(est.trained());
}

}  // namespace
}  // namespace patdnn
