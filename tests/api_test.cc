/** @file Public API (core/patdnn.h) end-to-end pipeline tests. */
#include <gtest/gtest.h>

#include "core/patdnn.h"

namespace patdnn {
namespace {

TEST(Api, CompressThenCompileThenExecute)
{
    // Stage 1: train + compress a small net.
    SyntheticShapes data(4, 12, 1, 96, 48, 55);
    Net net = buildVggStyleNet(4, 12, 1, 8, 31);
    TrainConfig tc;
    tc.epochs = 4;
    tc.batch_size = 16;
    tc.lr = 2e-3f;
    trainNet(net, data, tc);

    AdmmConfig admm;
    admm.admm_iterations = 1;
    admm.epochs_per_iteration = 1;
    admm.retrain_epochs = 1;
    CompressResult comp = compress(net, data, 8, 3.6, admm);
    EXPECT_EQ(comp.pattern_set.size(), 8);
    EXPECT_GT(comp.admm.conv_compression, 4.0);

    // Stage 2: compile the first conv layer for the simulated device.
    auto convs = net.convLayers();
    const ConvDesc& d = convs[1]->desc();
    Tensor weight = convs[1]->weight();
    Tensor original = weight;
    DeviceSpec dev = makeCpuDevice(4);
    CompiledLayer layer = compileLayer(d, weight, comp.pattern_set, 3.6, dev);
    ASSERT_NE(layer.engine, nullptr);
    std::string err;
    EXPECT_TRUE(validateFkw(*layer.fkw, &err)) << err;

    // Stage 3: execute and compare against the reference conv on the
    // same (pruned) weights.
    Tensor pruned = fkwToDense(*layer.fkw);
    Tensor in(Shape{1, d.cin, d.h, d.w});
    Rng rng(3);
    in.fillUniform(rng, -1.0f, 1.0f);
    Tensor expect = makeConvOutput(d, 1);
    convReference(d, pruned, in, expect);
    Tensor got = makeConvOutput(d, 1);
    layer.engine->run(in, got);
    EXPECT_LT(Tensor::maxAbsDiff(expect, got), 1e-3);
}

TEST(Api, CompileLayerWithAutoTune)
{
    Rng rng(9);
    ConvDesc d{"t", 8, 16, 3, 3, 12, 12, 1, 1, 1, 1};
    Tensor weight(Shape{d.cout, d.cin, 3, 3});
    weight.fillNormal(rng);
    PatternSet set = canonicalPatternSet(8);
    DeviceSpec dev = makeCpuDevice(2);
    CompiledLayer layer = compileLayer(d, weight, set, 3.6, dev, /*auto_tune=*/true);
    ASSERT_NE(layer.engine, nullptr);
    // The tuned LR must carry a legal configuration.
    EXPECT_GT(layer.lr.tuning.tile_oh, 0);
    EXPECT_GT(layer.lr.tuning.unroll_w, 0);
}

TEST(Api, LrReportsDeviceKind)
{
    Rng rng(10);
    ConvDesc d{"t", 6, 12, 3, 3, 10, 10, 1, 1, 1, 1};
    Tensor w(Shape{d.cout, d.cin, 3, 3});
    w.fillNormal(rng);
    PatternSet set = canonicalPatternSet(6);
    CompiledLayer cpu = compileLayer(d, w, set, 3.6, makeCpuDevice(2));
    Tensor w2(Shape{d.cout, d.cin, 3, 3});
    w2.fillNormal(rng);
    CompiledLayer gpu = compileLayer(d, w2, set, 3.6, makeGpuDevice());
    EXPECT_EQ(cpu.lr.device, "CPU");
    EXPECT_EQ(gpu.lr.device, "GPU");
}

}  // namespace
}  // namespace patdnn
