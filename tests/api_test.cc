/** @file Public API (core/patdnn.h) end-to-end pipeline tests. */
#include <gtest/gtest.h>

#include "core/patdnn.h"

namespace patdnn {
namespace {

TEST(Api, CompressThenCompileThenExecute)
{
    // Stage 1: train + compress a small net.
    SyntheticShapes data(4, 12, 1, 96, 48, 55);
    Net net = buildVggStyleNet(4, 12, 1, 8, 31);
    TrainConfig tc;
    tc.epochs = 4;
    tc.batch_size = 16;
    tc.lr = 2e-3f;
    trainNet(net, data, tc);

    AdmmConfig admm;
    admm.admm_iterations = 1;
    admm.epochs_per_iteration = 1;
    admm.retrain_epochs = 1;
    CompressResult comp = compress(net, data, 8, 3.6, admm);
    EXPECT_EQ(comp.pattern_set.size(), 8);
    EXPECT_GT(comp.admm.conv_compression, 4.0);

    // Stage 2: compile the first conv layer for the simulated device.
    auto convs = net.convLayers();
    const ConvDesc& d = convs[1]->desc();
    Tensor weight = convs[1]->weight();
    Tensor original = weight;
    DeviceSpec dev = makeCpuDevice(4);
    CompiledLayer layer = compileLayer(d, weight, comp.pattern_set, 3.6, dev);
    ASSERT_NE(layer.engine, nullptr);
    Status valid = validateFkw(*layer.fkw);
    EXPECT_TRUE(valid.ok()) << valid.toString();

    // Stage 3: execute and compare against the reference conv on the
    // same (pruned) weights.
    Tensor pruned = fkwToDense(*layer.fkw);
    Tensor in(Shape{1, d.cin, d.h, d.w});
    Rng rng(3);
    in.fillUniform(rng, -1.0f, 1.0f);
    Tensor expect = makeConvOutput(d, 1);
    convReference(d, pruned, in, expect);
    Tensor got = makeConvOutput(d, 1);
    layer.engine->run(in, got);
    EXPECT_LT(Tensor::maxAbsDiff(expect, got), 1e-3);
}

TEST(Api, CompileLayerWithAutoTune)
{
    Rng rng(9);
    ConvDesc d{"t", 8, 16, 3, 3, 12, 12, 1, 1, 1, 1};
    Tensor weight(Shape{d.cout, d.cin, 3, 3});
    weight.fillNormal(rng);
    PatternSet set = canonicalPatternSet(8);
    DeviceSpec dev = makeCpuDevice(2);
    CompiledLayer layer = compileLayer(d, weight, set, 3.6, dev, /*auto_tune=*/true);
    ASSERT_NE(layer.engine, nullptr);
    // The tuned LR must carry a legal configuration.
    EXPECT_GT(layer.lr.tuning.tile_oh, 0);
    EXPECT_GT(layer.lr.tuning.unroll_w, 0);
}

TEST(Compiler, CompileLayerMatchesFreeFunction)
{
    Rng rng(21);
    ConvDesc d{"c", 8, 16, 3, 3, 12, 12, 1, 1, 1, 1};
    Tensor weight(Shape{d.cout, d.cin, 3, 3});
    weight.fillNormal(rng);
    PatternSet set = canonicalPatternSet(8);
    DeviceSpec dev = makeCpuDevice(2);

    Compiler compiler(dev);
    Result<CompiledLayer> result = compiler.compileLayer(d, weight, set);
    ASSERT_TRUE(result.ok()) << result.status().toString();
    CompiledLayer& layer = result.value();
    ASSERT_NE(layer.engine, nullptr);
    Status valid = validateFkw(*layer.fkw);
    EXPECT_TRUE(valid.ok()) << valid.toString();

    // Same deterministic pipeline as the free function.
    CompiledLayer free_layer = compileLayer(d, weight, set, 3.6, dev);
    EXPECT_EQ(layer.fkw->weights, free_layer.fkw->weights);
    EXPECT_EQ(layer.fkw->index, free_layer.fkw->index);
}

TEST(Compiler, TypedErrorsInsteadOfAborts)
{
    DeviceSpec dev = makeCpuDevice(2);
    Compiler compiler(dev);
    PatternSet set = canonicalPatternSet(6);
    Rng rng(5);

    // Malformed descriptor: zero input channels.
    ConvDesc bad_desc{"bad", 0, 8, 3, 3, 10, 10, 1, 1, 1, 1};
    Tensor w(Shape{8, 1, 3, 3});
    auto r1 = compiler.compileLayer(bad_desc, w, set);
    ASSERT_FALSE(r1.ok());
    EXPECT_EQ(r1.status().code(), ErrorCode::kInvalidArgument);

    // Weight tensor that does not match the descriptor.
    ConvDesc d{"ok", 6, 8, 3, 3, 10, 10, 1, 1, 1, 1};
    Tensor wrong(Shape{8, 6, 5, 5});
    auto r2 = compiler.compileLayer(d, wrong, set);
    ASSERT_FALSE(r2.ok());
    EXPECT_EQ(r2.status().code(), ErrorCode::kInvalidArgument);

    // Empty pattern set.
    Tensor good(Shape{d.cout, d.cin, 3, 3});
    good.fillNormal(rng);
    auto r3 = compiler.compileLayer(d, good, PatternSet{});
    ASSERT_FALSE(r3.ok());
    EXPECT_EQ(r3.status().code(), ErrorCode::kInvalidArgument);

    // Pattern geometry mismatched against a 5x5 layer.
    ConvDesc five{"five", 6, 8, 5, 5, 12, 12, 1, 2, 1, 1};
    Tensor w5(Shape{8, 6, 5, 5});
    w5.fillNormal(rng);
    auto r4 = compiler.compileLayer(five, w5, set);
    ASSERT_FALSE(r4.ok());
    EXPECT_EQ(r4.status().code(), ErrorCode::kInvalidArgument);

    // Nonsense options.
    CompileOptions bad_opts;
    bad_opts.connectivity_rate = -1.0;
    auto r5 = Compiler(dev, bad_opts).compileLayer(d, good, set);
    ASSERT_FALSE(r5.ok());
    EXPECT_EQ(r5.status().code(), ErrorCode::kInvalidArgument);
}

TEST(Compiler, CompileWholeModelRunsAndValidates)
{
    Model m("compiler-e2e", "test");
    Layer conv;
    conv.kind = OpKind::kConv;
    conv.name = "c1";
    conv.conv = ConvDesc{"c1", 3, 8, 3, 3, 8, 8, 1, 1, 1, 1};
    m.addLayer(std::move(conv));
    Layer fl;
    fl.kind = OpKind::kFlatten;
    fl.name = "flatten";
    m.addLayer(std::move(fl));
    Layer fc;
    fc.kind = OpKind::kFullyConnected;
    fc.name = "fc";
    fc.in_features = 8 * 8 * 8;
    fc.out_features = 4;
    m.addLayer(std::move(fc));
    m.randomizeWeights(7);

    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    Compiler compiler(dev);
    auto compiled = compiler.compile(m);
    ASSERT_TRUE(compiled.ok()) << compiled.status().toString();
    Tensor in(Shape{1, 3, 8, 8});
    Rng rng(3);
    in.fillUniform(rng, -1.0f, 1.0f);
    EXPECT_EQ(compiled.value()->run(in).shape(), Shape({1, 4}));

    // A malformed conv layer comes back typed instead of aborting.
    Model bad = m;
    bad.layers()[0].conv.groups = 5;  // 3 % 5 != 0.
    auto rejected = compiler.compile(bad);
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), ErrorCode::kInvalidArgument);
}

TEST(Compiler, TuneCacheSkipsRepeatGaRuns)
{
    TuneCache::instance().clear();
    Rng rng(17);
    ConvDesc d{"cached", 8, 16, 3, 3, 12, 12, 1, 1, 1, 1};
    Tensor w(Shape{d.cout, d.cin, 3, 3});
    w.fillNormal(rng);
    PatternSet set = canonicalPatternSet(8);
    DeviceSpec dev = makeFixedWidthCpuDevice(2);
    Compiler compiler(dev);

    // First auto-tuned compile pays for the GA and populates the cache.
    auto first = compiler.compileLayer(d, w, set, /*auto_tune=*/true);
    ASSERT_TRUE(first.ok()) << first.status().toString();
    EXPECT_EQ(TuneCache::instance().size(), 1u);
    int64_t hits_before = TuneCache::instance().hits();

    // Repeat compile of the same shape: a cache hit, the GA skipped,
    // and the same tuned parameters applied.
    auto second = compiler.compileLayer(d, w, set, /*auto_tune=*/true);
    ASSERT_TRUE(second.ok()) << second.status().toString();
    EXPECT_EQ(TuneCache::instance().hits(), hits_before + 1);
    EXPECT_EQ(TuneCache::instance().size(), 1u);
    EXPECT_EQ(second.value().lr.tuning.tile_oh, first.value().lr.tuning.tile_oh);
    EXPECT_EQ(second.value().lr.tuning.unroll_w, first.value().lr.tuning.unroll_w);

    // A different shape misses (no false sharing between geometries).
    ConvDesc other{"other", 8, 16, 3, 3, 16, 16, 1, 1, 1, 1};
    Tensor w2(Shape{other.cout, other.cin, 3, 3});
    w2.fillNormal(rng);
    auto third = compiler.compileLayer(other, w2, set, /*auto_tune=*/true);
    ASSERT_TRUE(third.ok()) << third.status().toString();
    EXPECT_EQ(TuneCache::instance().size(), 2u);

    // A different device fingerprint misses too: a tuning measured on
    // a 2-wide pool is never silently applied to a 4-wide one.
    Compiler wide(makeFixedWidthCpuDevice(4));
    auto fourth = wide.compileLayer(d, w, set, /*auto_tune=*/true);
    ASSERT_TRUE(fourth.ok()) << fourth.status().toString();
    EXPECT_EQ(TuneCache::instance().size(), 3u);

    // Whole-model compiles consult the cache through the tune_lookup
    // plumbing: a model containing the cached shape picks up its tuned
    // parameters without re-running the GA.
    Model m("cache-consumer", "test");
    Layer conv;
    conv.kind = OpKind::kConv;
    conv.name = "cached";
    conv.conv = d;
    m.addLayer(std::move(conv));
    m.randomizeWeights(9);
    int64_t hits_before_model = TuneCache::instance().hits();
    auto model = compiler.compile(m);
    ASSERT_TRUE(model.ok()) << model.status().toString();
    EXPECT_GT(TuneCache::instance().hits(), hits_before_model);
    TuneCache::instance().clear();
}

TEST(Api, LrReportsDeviceKind)
{
    Rng rng(10);
    ConvDesc d{"t", 6, 12, 3, 3, 10, 10, 1, 1, 1, 1};
    Tensor w(Shape{d.cout, d.cin, 3, 3});
    w.fillNormal(rng);
    PatternSet set = canonicalPatternSet(6);
    CompiledLayer cpu = compileLayer(d, w, set, 3.6, makeCpuDevice(2));
    Tensor w2(Shape{d.cout, d.cin, 3, 3});
    w2.fillNormal(rng);
    CompiledLayer gpu = compileLayer(d, w2, set, 3.6, makeGpuDevice());
    EXPECT_EQ(cpu.lr.device, "CPU");
    EXPECT_EQ(gpu.lr.device, "GPU");
}

}  // namespace
}  // namespace patdnn
