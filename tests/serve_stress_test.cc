/**
 * @file
 * Serving concurrency stress suite: N producer threads x M models
 * against one ModelRegistry, with randomized deadlines and
 * cancellations. The assertions are the serving subsystem's core
 * contracts under contention:
 *
 *  - no lost responses: after drainAll() every accepted request's
 *    future is ready (value or a typed serving error);
 *  - no duplicated / corrupted responses: every fulfilled future is
 *    bit-identical to a single-threaded reference run of the same
 *    input on the same model;
 *  - stats are monotonic while serving and reconcile exactly
 *    afterwards: accepted == completed + deadline_exceeded + cancelled
 *    per model, with an empty queue.
 *
 * Runs under the CI ASan/UBSan job like every ctest suite, which is
 * where the locking and promise-handoff bugs this hunts would surface.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/patdnn.h"

namespace patdnn {
namespace {

/** A tiny conv->relu->fc model; `width` varies the hidden channels so
 * each registry entry has distinct weights AND output values. */
Model
stressModel(int64_t width, uint64_t seed)
{
    Model m("stress-" + std::to_string(width), "test");
    Layer conv;
    conv.kind = OpKind::kConv;
    conv.name = "c1";
    conv.conv = ConvDesc{"c1", 3, width, 3, 3, 8, 8, 1, 1, 1, 1};
    m.addLayer(std::move(conv));
    Layer relu;
    relu.kind = OpKind::kReLU;
    relu.name = "c1_relu";
    m.addLayer(std::move(relu));
    Layer fl;
    fl.kind = OpKind::kFlatten;
    fl.name = "flatten";
    m.addLayer(std::move(fl));
    Layer fc;
    fc.kind = OpKind::kFullyConnected;
    fc.name = "fc";
    fc.in_features = width * 8 * 8;
    fc.out_features = 10;
    m.addLayer(std::move(fc));
    m.randomizeWeights(seed);
    return m;
}

Tensor
stressInput(uint64_t seed)
{
    Tensor in(Shape{1, 3, 8, 8});
    Rng rng(seed);
    in.fillUniform(rng, -1.0f, 1.0f);
    return in;
}

TEST(ServeStress, MultiModelProducersWithDeadlinesAndCancellations)
{
    constexpr int kModels = 3;
    constexpr int kProducers = 4;
    constexpr int kRequestsPerProducer = 40;
    constexpr int kDistinctInputs = 6;
    const std::string names[kModels] = {"m12", "m16", "m20"};
    const int64_t widths[kModels] = {12, 16, 20};

    RegistryOptions ropts;
    ropts.device = makeFixedWidthCpuDevice(2);
    ropts.server.workers = 2;
    ropts.server.max_batch = 4;
    ropts.server.max_queue = 32;
    ropts.server.max_linger_ms = 0.2;  // Exercise the linger path too.
    ModelRegistry reg(ropts);

    std::vector<std::shared_ptr<const CompiledModel>> models;
    for (int i = 0; i < kModels; ++i) {
        models.push_back(std::make_shared<const CompiledModel>(
            stressModel(widths[i], 1000 + static_cast<uint64_t>(i)),
            FrameworkKind::kPatDnn, reg.device()));
        Status added = reg.add(names[i], models.back());
        ASSERT_TRUE(added.ok()) << added.toString();
    }

    // Single-threaded references for every (model, input) pair the
    // producers can request.
    Tensor refs[kModels][kDistinctInputs];
    for (int mi = 0; mi < kModels; ++mi) {
        InferenceSession session(models[static_cast<size_t>(mi)]);
        for (int ii = 0; ii < kDistinctInputs; ++ii)
            refs[mi][ii] = session.run(stressInput(static_cast<uint64_t>(ii)));
    }

    struct Pending
    {
        int model = 0;
        int input = 0;
        std::future<Tensor> future;
        bool cancel_won = false;  ///< cancel() returned true for this id.
    };
    std::vector<std::vector<Pending>> per_thread(kProducers);

    // Stats monitor: serving counters must be monotonic while the
    // producers hammer the registry.
    std::atomic<bool> done{false};
    std::thread monitor([&] {
        int64_t prev_completed[kModels] = {};
        int64_t prev_accepted[kModels] = {};
        int64_t prev_deadline[kModels] = {};
        int64_t prev_cancelled[kModels] = {};
        int64_t prev_batches[kModels] = {};
        while (!done.load(std::memory_order_relaxed)) {
            for (int mi = 0; mi < kModels; ++mi) {
                ServerStats s = reg.stats(names[mi]);
                EXPECT_GE(s.completed, prev_completed[mi]);
                EXPECT_GE(s.accepted, prev_accepted[mi]);
                EXPECT_GE(s.deadline_exceeded, prev_deadline[mi]);
                EXPECT_GE(s.cancelled, prev_cancelled[mi]);
                EXPECT_GE(s.batches, prev_batches[mi]);
                EXPECT_GE(s.accepted,
                          s.completed + s.deadline_exceeded + s.cancelled);
                prev_completed[mi] = s.completed;
                prev_accepted[mi] = s.accepted;
                prev_deadline[mi] = s.deadline_exceeded;
                prev_cancelled[mi] = s.cancelled;
                prev_batches[mi] = s.batches;
            }
            std::this_thread::yield();
        }
    });

    std::vector<std::thread> producers;
    for (int t = 0; t < kProducers; ++t)
        producers.emplace_back([&, t] {
            Rng rng(static_cast<uint64_t>(7000 + t));
            auto roll = [&](uint64_t n) {
                return static_cast<uint64_t>(rng.uniformInt(
                    0, static_cast<int64_t>(n) - 1));
            };
            for (int r = 0; r < kRequestsPerProducer; ++r) {
                Pending p;
                p.model = static_cast<int>(roll(kModels));
                p.input = static_cast<int>(roll(kDistinctInputs));
                SubmitOptions sopts;
                uint64_t fate = roll(10);
                if (fate == 0)
                    sopts.deadline = reg.deadlineIn(0.0);  // Due on arrival.
                else if (fate == 1)
                    sopts.deadline = reg.deadlineIn(0.05);  // Tight race.
                RequestId id = 0;
                p.future =
                    reg.submit(names[p.model],
                               stressInput(static_cast<uint64_t>(p.input)),
                               sopts, &id);
                if (roll(8) == 0 && id != 0)
                    p.cancel_won = reg.cancel(names[p.model], id);
                per_thread[static_cast<size_t>(t)].push_back(std::move(p));
            }
        });
    for (auto& t : producers)
        t.join();
    reg.drainAll();
    done.store(true, std::memory_order_relaxed);
    monitor.join();

    // Tally every future exactly once; no response may be lost,
    // mis-typed, or numerically different from the reference.
    int64_t completed[kModels] = {};
    int64_t deadline[kModels] = {};
    int64_t cancelled[kModels] = {};
    for (auto& thread_requests : per_thread)
        for (Pending& p : thread_requests) {
            ASSERT_EQ(p.future.wait_for(std::chrono::seconds(0)),
                      std::future_status::ready)
                << "lost response for model " << names[p.model];
            try {
                Tensor out = p.future.get();
                EXPECT_EQ(Tensor::maxAbsDiff(out, refs[p.model][p.input]), 0.0)
                    << names[p.model] << " input " << p.input;
                EXPECT_FALSE(p.cancel_won)
                    << "cancel() won but the request completed";
                ++completed[p.model];
            } catch (const ServeError& e) {
                if (e.code() == ErrorCode::kDeadlineExceeded) {
                    EXPECT_FALSE(p.cancel_won)
                        << "cancel() won but the request expired";
                    ++deadline[p.model];
                } else if (e.code() == ErrorCode::kCancelled) {
                    EXPECT_TRUE(p.cancel_won)
                        << "request cancelled without a winning cancel()";
                    ++cancelled[p.model];
                } else {
                    throw;  // Unexpected code: fail the test.
                }
            }
            // Any other exception type escapes and fails the test.
        }

    // Exact reconciliation against the servers' own counters.
    int64_t total = 0;
    for (int mi = 0; mi < kModels; ++mi) {
        ServerStats s = reg.stats(names[mi]);
        EXPECT_EQ(s.completed, completed[mi]) << names[mi];
        EXPECT_EQ(s.deadline_exceeded, deadline[mi]) << names[mi];
        EXPECT_EQ(s.cancelled, cancelled[mi]) << names[mi];
        EXPECT_EQ(s.accepted, s.completed + s.deadline_exceeded + s.cancelled)
            << names[mi];
        EXPECT_EQ(s.queue_depth, 0u) << names[mi];
        EXPECT_EQ(s.rejected, 0) << names[mi];  // submit() blocks, never drops.
        total += s.accepted;
    }
    EXPECT_EQ(total, int64_t{kProducers} * kRequestsPerProducer);
    reg.shutdownAll();
}

TEST(ServeStress, EvictionRacesSubmissions)
{
    // Producers keep routing to a model while another thread evicts and
    // re-adds it: every future must resolve (value or a typed error),
    // never hang or crash.
    RegistryOptions ropts;
    ropts.device = makeFixedWidthCpuDevice(2);
    ropts.server.workers = 1;
    ModelRegistry reg(ropts);
    auto model = std::make_shared<const CompiledModel>(
        stressModel(12, 5), FrameworkKind::kPatDnnDense, reg.device());
    Status added = reg.add("hot", model);
    ASSERT_TRUE(added.ok()) << added.toString();

    std::atomic<bool> stop{false};
    std::thread flipper([&] {
        for (int i = 0; i < 6; ++i) {
            reg.evict("hot");
            (void)reg.add("hot", model);
        }
        stop.store(true, std::memory_order_relaxed);
    });

    int resolved = 0;
    Tensor in = stressInput(3);
    InferenceSession ref(model);
    Tensor expect = ref.run(in);
    // do-while: at least one submit even if the flipper (whose final
    // action is a re-add) finishes before this thread gets scheduled.
    do {
        std::future<Tensor> f = reg.submit("hot", in);
        try {
            EXPECT_EQ(Tensor::maxAbsDiff(f.get(), expect), 0.0);
        } catch (const ServeError& e) {
            // kNotFound: raced the evict window. kUnavailable:
            // submitted to a server already shutting down.
            EXPECT_TRUE(e.code() == ErrorCode::kNotFound ||
                        e.code() == ErrorCode::kUnavailable)
                << errorCodeName(e.code());
        }
        ++resolved;
    } while (!stop.load(std::memory_order_relaxed));
    flipper.join();
    EXPECT_GT(resolved, 0);
    reg.shutdownAll();
}

}  // namespace
}  // namespace patdnn
