/**
 * @file
 * End-to-end property sweeps: for a grid of (pattern-set size,
 * connectivity rate, geometry) the full compress->pack->execute
 * pipeline must preserve three invariants:
 *
 *   1. storage round-trip — FKW unpacks to exactly the pruned weights;
 *   2. execution equivalence — the pattern engine matches the dense
 *      reference on the pruned weights;
 *   3. sparsity accounting — kernel count and non-zeros match the
 *      requested constraints exactly.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "core/patdnn.h"

namespace patdnn {
namespace {

struct SweepCase
{
    int patterns;
    double connectivity_rate;
    int64_t cin, cout, h, w;
};

std::ostream&
operator<<(std::ostream& os, const SweepCase& c)
{
    return os << "p" << c.patterns << "_r" << static_cast<int>(c.connectivity_rate * 10)
              << "_c" << c.cin << "x" << c.cout << "_s" << c.h << "x" << c.w;
}

class PipelineSweep : public ::testing::TestWithParam<SweepCase>
{
};

TEST_P(PipelineSweep, PipelineInvariantsHold)
{
    SweepCase c = GetParam();
    ConvDesc d{"sweep", c.cin, c.cout, 3, 3, c.h, c.w, 1, 1, 1, 1};
    Rng rng(static_cast<uint64_t>(c.patterns * 1000 + c.cin));
    Tensor weight(Shape{d.cout, d.cin, 3, 3});
    weight.fillNormal(rng);

    PatternSet set = canonicalPatternSet(c.patterns);
    int64_t kernels = d.cout * d.cin;
    int64_t alpha = std::max<int64_t>(
        1, static_cast<int64_t>(std::ceil(kernels / c.connectivity_rate)));

    Tensor pruned = weight;
    FkwLayer fkw = pruneAndPack(pruned, set, alpha);

    // (3) sparsity accounting.
    EXPECT_EQ(fkw.kernelCount(), alpha);
    EXPECT_EQ(pruned.countNonZero(), alpha * 4);
    Status valid = validateFkw(fkw);
    ASSERT_TRUE(valid.ok()) << valid.toString();

    // (1) storage round trip.
    EXPECT_EQ(Tensor::maxAbsDiff(pruned, fkwToDense(fkw)), 0.0);

    // (2) execution equivalence on both device kinds.
    Tensor in(Shape{1, d.cin, d.h, d.w});
    in.fillUniform(rng, -1.0f, 1.0f);
    Tensor expect = makeConvOutput(d, 1);
    convReference(d, pruned, in, expect);
    for (bool gpu : {false, true}) {
        LayerwiseRep lr;
        lr.conv = d;
        DeviceSpec dev = gpu ? makeGpuDevice() : makeCpuDevice(4);
        PatternConv engine(d, &fkw, lr, dev);
        Tensor got = makeConvOutput(d, 1);
        engine.run(in, got);
        EXPECT_LT(Tensor::maxAbsDiff(expect, got), 1e-3)
            << (gpu ? "gpu" : "cpu");
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PipelineSweep,
    ::testing::Values(SweepCase{4, 2.0, 8, 8, 10, 10},
                      SweepCase{6, 3.6, 8, 16, 12, 8},
                      SweepCase{8, 3.6, 16, 16, 9, 9},
                      SweepCase{8, 8.0, 16, 32, 14, 14},
                      SweepCase{12, 3.6, 12, 24, 8, 12},
                      SweepCase{12, 5.3, 24, 12, 7, 7},
                      SweepCase{16, 2.0, 10, 10, 16, 6},
                      SweepCase{8, 1.0, 6, 6, 8, 8}));

/** The load model must be monotone in the bundling knob. */
class BundleSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(BundleSweep, InputLoadsMonotoneInUnrollOc)
{
    ConvDesc d{"b", 16, 32, 3, 3, 12, 12, 1, 1, 1, 1};
    Rng rng(2);
    Tensor w(Shape{d.cout, d.cin, 3, 3});
    w.fillNormal(rng);
    PatternSet set = canonicalPatternSet(4);  // Few patterns -> many bundles.
    Tensor pruned = w;
    FkwLayer fkw = pruneAndPack(pruned, set, 142);
    DeviceSpec dev = makeCpuDevice(4);
    LayerwiseRep narrow;
    narrow.conv = d;
    narrow.tuning.unroll_oc = 1;
    LayerwiseRep wide = narrow;
    wide.tuning.unroll_oc = GetParam();
    LoadCounts a = analyzeLoads(d, fkw, narrow, dev);
    LoadCounts b = analyzeLoads(d, fkw, wide, dev);
    EXPECT_LE(b.input_loads, a.input_loads);
    EXPECT_EQ(a.output_loads, b.output_loads);
}

INSTANTIATE_TEST_SUITE_P(Widths, BundleSweep, ::testing::Values(2, 4, 8, 16));

/** Compression ratio follows the closed form across connectivity rates. */
class CompressionSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(CompressionSweep, RatioMatchesClosedForm)
{
    double rate = GetParam();
    ConvDesc d{"c", 24, 24, 3, 3, 8, 8, 1, 1, 1, 1};
    Rng rng(3);
    Tensor w(Shape{d.cout, d.cin, 3, 3});
    w.fillNormal(rng);
    PatternSet set = canonicalPatternSet(8);
    int64_t kernels = d.cout * d.cin;
    int64_t alpha = static_cast<int64_t>(std::ceil(kernels / rate));
    projectJoint(w, set, alpha);
    double measured = static_cast<double>(w.numel()) /
                      static_cast<double>(w.countNonZero());
    double expected = 9.0 / 4.0 * static_cast<double>(kernels) /
                      static_cast<double>(alpha);
    EXPECT_NEAR(measured, expected, expected * 0.01);
}

INSTANTIATE_TEST_SUITE_P(Rates, CompressionSweep,
                         ::testing::Values(1.5, 2.0, 3.6, 5.3, 8.0));

}  // namespace
}  // namespace patdnn
