/** @file Extended-ADMM framework tests. */
#include <gtest/gtest.h>

#include "prune/admm.h"

namespace patdnn {
namespace {

struct AdmmFixture
{
    SyntheticShapes data{4, 12, 1, 192, 96, 321};
    Net net = buildVggStyleNet(4, 12, 1, 8, 9);
    PatternSet set;

    AdmmFixture()
    {
        TrainConfig cfg;
        cfg.epochs = 5;
        cfg.batch_size = 16;
        cfg.lr = 2e-3f;
        trainNet(net, data, cfg);
        std::vector<const Tensor*> ws;
        for (Tensor* w : net.convWeights())
            ws.push_back(w);
        set = designPatternSet(ws, 8);
    }
};

TEST(Admm, ConstraintsSatisfiedAfterPruning)
{
    AdmmFixture fx;
    AdmmConfig cfg;
    cfg.admm_iterations = 2;
    cfg.epochs_per_iteration = 1;
    cfg.retrain_epochs = 1;
    cfg.connectivity_rate = 3.6;
    AdmmResult res = admmPrune(fx.net, fx.data, fx.set, cfg);

    auto convs = fx.net.convLayers();
    ASSERT_EQ(res.assignments.size(), convs.size());
    for (size_t li = 0; li < convs.size(); ++li) {
        Tensor& w = convs[li]->weight();
        const PatternAssignment& asg = res.assignments[li];
        int64_t kernels = w.shape().dim(0) * w.shape().dim(1);
        int64_t live = countNonZeroKernels(w);
        double rate = li == 0 ? cfg.first_layer_rate : cfg.connectivity_rate;
        int64_t alpha = static_cast<int64_t>(
            std::ceil(static_cast<double>(kernels) / rate));
        EXPECT_LE(live, alpha);
        // Every surviving kernel obeys its assigned pattern.
        for (int64_t k = 0; k < kernels; ++k) {
            int pid = asg.pattern_of_kernel[static_cast<size_t>(k)];
            const float* kp = w.data() + k * 9;
            if (pid < 0) {
                for (int j = 0; j < 9; ++j)
                    EXPECT_EQ(kp[j], 0.0f);
            } else {
                const Pattern& p = fx.set.patterns[static_cast<size_t>(pid)];
                for (int j = 0; j < 9; ++j) {
                    if (!((p.mask() >> j) & 1u)) {
                        EXPECT_EQ(kp[j], 0.0f);
                    }
                }
            }
        }
    }
}

TEST(Admm, CompressionNearTarget)
{
    AdmmFixture fx;
    AdmmConfig cfg;
    cfg.admm_iterations = 1;
    cfg.epochs_per_iteration = 1;
    cfg.retrain_epochs = 1;
    AdmmResult res = admmPrune(fx.net, fx.data, fx.set, cfg);
    // Pattern (2.25x) * connectivity (~3.6x, milder first layer) should
    // land well above 4x and below the 8.1x hard ceiling.
    EXPECT_GT(res.conv_compression, 4.0);
    EXPECT_LT(res.conv_compression, 8.5);
}

TEST(Admm, ResidualsShrinkAcrossIterations)
{
    AdmmFixture fx;
    AdmmConfig cfg;
    cfg.admm_iterations = 4;
    cfg.epochs_per_iteration = 2;
    cfg.retrain_epochs = 0;
    AdmmResult res = admmPrune(fx.net, fx.data, fx.set, cfg);
    ASSERT_EQ(res.trace.pattern_residual.size(), 4u);
    // ADMM regularization must pull W toward the constraint sets
    // (relative residuals decline across iterations).
    EXPECT_LT(res.trace.pattern_residual.back(),
              res.trace.pattern_residual.front());
    EXPECT_LT(res.trace.connectivity_residual.back(),
              res.trace.connectivity_residual.front());
}

TEST(Admm, RetainsMostAccuracy)
{
    AdmmFixture fx;
    AdmmConfig cfg;
    cfg.admm_iterations = 3;
    cfg.epochs_per_iteration = 2;
    cfg.retrain_epochs = 6;
    AdmmResult res = admmPrune(fx.net, fx.data, fx.set, cfg);
    EXPECT_GT(res.dense_accuracy, 0.55);
    // The paper's headline: pattern+connectivity pruning does not lose
    // accuracy. Allow slack at this tiny (128-sample, width-8) scale —
    // the full-scale claim is exercised by bench_table4_compression.
    EXPECT_GT(res.test_accuracy, res.dense_accuracy - 0.25);
}

TEST(Admm, PatternOnlyModeLeavesAllKernelsAlive)
{
    AdmmFixture fx;
    AdmmConfig cfg;
    cfg.admm_iterations = 1;
    cfg.epochs_per_iteration = 1;
    cfg.retrain_epochs = 0;
    cfg.enable_connectivity = false;
    admmPrune(fx.net, fx.data, fx.set, cfg);
    auto convs = fx.net.convLayers();
    for (auto* c : convs) {
        Tensor& w = c->weight();
        int64_t kernels = w.shape().dim(0) * w.shape().dim(1);
        EXPECT_EQ(countNonZeroKernels(w), kernels);
        // Exactly 4-entry kernels -> compression 2.25x.
    }
    EXPECT_NEAR(convCompressionRatio(fx.net), 2.25, 0.3);
}

}  // namespace
}  // namespace patdnn
