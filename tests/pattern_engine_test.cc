/** @file Pattern engine internals: plans, bundles, LR rendering. */
#include <gtest/gtest.h>

#include "prune/projections.h"
#include "rt/conv_pattern.h"
#include "sparse/fkw.h"

namespace patdnn {
namespace {

struct Built
{
    ConvDesc desc{"t", 8, 16, 3, 3, 12, 12, 1, 1, 1, 1};
    Tensor weight;
    PatternSet set = canonicalPatternSet(6);
    FkwLayer fkw;

    explicit Built(uint64_t seed, bool reorder = true, int64_t alpha = 48)
    {
        Rng rng(seed);
        weight = Tensor(Shape{desc.cout, desc.cin, 3, 3});
        weight.fillNormal(rng);
        PatternAssignment asg = projectJoint(weight, set, alpha);
        FkrOptions opts;
        opts.reorder_filters = reorder;
        opts.similarity_within_group = reorder;
        opts.reorder_kernels = reorder;
        FkrResult fkr = filterKernelReorder(asg, opts);
        fkw = buildFkw(weight, set, asg, fkr);
    }
};

TEST(PatternPlan, CoversEveryKernelExactlyOnce)
{
    Built b(1);
    LayerwiseRep lr;
    lr.conv = b.desc;
    PatternPlan plan = preparePatternPlan(b.fkw, lr, makeCpuDevice(4));
    std::vector<int> seen(static_cast<size_t>(b.fkw.kernelCount()), 0);
    for (const auto& item : plan.items)
        for (const auto& op : item.ops)
            for (int32_t gk : op.kernel_index)
                seen[static_cast<size_t>(gk)] += 1;
    for (int v : seen)
        EXPECT_EQ(v, 1);
}

TEST(PatternPlan, BundlesOnlyFormWithLreAndMatchingKernels)
{
    Built b(2);
    LayerwiseRep lr;
    lr.conv = b.desc;
    lr.opts.lre = false;
    PatternPlan no_lre = preparePatternPlan(b.fkw, lr, makeCpuDevice(4));
    for (const auto& item : no_lre.items)
        for (const auto& op : item.ops)
            EXPECT_EQ(op.filter_count, 1);

    lr.opts.lre = true;
    PatternPlan with_lre = preparePatternPlan(b.fkw, lr, makeCpuDevice(4));
    for (const auto& item : with_lre.items)
        for (const auto& op : item.ops) {
            // Bundled kernels must agree on pattern and input channel.
            for (size_t i = 0; i < op.kernel_index.size(); ++i)
                EXPECT_EQ(b.fkw.index[static_cast<size_t>(
                              op.kernel_index[i])],
                          op.input_channel);
        }
}

TEST(PatternPlan, GpuDeviceMapsGroupsToSingleItems)
{
    Built b(3);
    LayerwiseRep lr;
    lr.conv = b.desc;
    PatternPlan plan = preparePatternPlan(b.fkw, lr, makeGpuDevice());
    EXPECT_EQ(plan.items.size(), b.fkw.groups.size());
}

TEST(PatternPlan, CpuSplitsLargeGroups)
{
    Built b(4);
    LayerwiseRep lr;
    lr.conv = b.desc;
    lr.tuning.filters_per_task = 2;
    PatternPlan plan = preparePatternPlan(b.fkw, lr, makeCpuDevice(4));
    EXPECT_GE(plan.items.size(), b.fkw.groups.size());
    for (const auto& item : plan.items)
        EXPECT_LE(item.filter_end - item.filter_begin, 2);
}

TEST(PatternPlan, LooseFormatFallsBackToPerKernelDispatch)
{
    Built b(5, /*reorder=*/false);
    ASSERT_FALSE(b.fkw.kernel_pattern.empty());
    LayerwiseRep lr;
    lr.conv = b.desc;
    lr.opts.reorder = false;
    PatternPlan plan = preparePatternPlan(b.fkw, lr, makeCpuDevice(4));
    int64_t ops = 0;
    for (const auto& item : plan.items) {
        for (const auto& op : item.ops)
            EXPECT_EQ(op.filter_count, 1);
        ops += static_cast<int64_t>(item.ops.size());
    }
    EXPECT_EQ(ops, b.fkw.kernelCount());
}

TEST(MicroKernels, LoweredPatternOffsetsMatchMask)
{
    Pattern p(3, 3, std::vector<int>{4, 0, 5, 7});
    PatternKernel pk = lowerPattern(p);
    EXPECT_EQ(pk.entries, 4);
    // Positions ascending: 0 -> (0,0), 4 -> (1,1), 5 -> (1,2), 7 -> (2,1).
    EXPECT_EQ(pk.dy[0], 0);
    EXPECT_EQ(pk.dx[0], 0);
    EXPECT_EQ(pk.dy[1], 1);
    EXPECT_EQ(pk.dx[1], 1);
    EXPECT_EQ(pk.dy[3], 2);
    EXPECT_EQ(pk.dx[3], 1);
}

TEST(MicroKernels, LreAndNoLreProduceIdenticalResults)
{
    Rng rng(6);
    Pattern p(3, 3, std::vector<int>{4, 1, 3, 5});
    PatternKernel pk = lowerPattern(p);
    float weights[4];
    for (auto& w : weights)
        w = rng.normal();
    int64_t h = 9, w_ = 11;
    Tensor in(Shape{h, w_});
    in.fillUniform(rng, -1.0f, 1.0f);
    PlaneGeom g;
    g.h = h;
    g.w = w_;
    g.oh = h;
    g.ow = w_;
    g.pad = 1;
    g.stride = 1;
    g.y0 = 0;
    g.y1 = h;
    g.x0 = 0;
    g.x1 = w_;
    Tensor out_a(Shape{h, w_}), out_b(Shape{h, w_});
    kernelAccumulateLre(pk, weights, in.data(), out_a.data(), g, 8);
    kernelAccumulateNoLre(pk, weights, in.data(), out_b.data(), g);
    EXPECT_LT(Tensor::maxAbsDiff(out_a, out_b), 1e-5);
}

TEST(MicroKernels, MultiFilterMatchesRepeatedSingle)
{
    Rng rng(7);
    Pattern p(3, 3, std::vector<int>{4, 0, 2, 6});
    PatternKernel pk = lowerPattern(p);
    float w0[4], w1[4];
    for (int i = 0; i < 4; ++i) {
        w0[i] = rng.normal();
        w1[i] = rng.normal();
    }
    int64_t h = 7, w_ = 8;
    Tensor in(Shape{h, w_});
    in.fillUniform(rng, -1.0f, 1.0f);
    PlaneGeom g{h, w_, h, w_, 1, 1, 0, h, 0, w_};
    Tensor a0(Shape{h, w_}), a1(Shape{h, w_});
    Tensor b0(Shape{h, w_}), b1(Shape{h, w_});
    const float* ws[2] = {w0, w1};
    float* outs[2] = {a0.data(), a1.data()};
    kernelAccumulateMultiFilter(pk, ws, in.data(), outs, 2, g);
    kernelAccumulateLre(pk, w0, in.data(), b0.data(), g, 4);
    kernelAccumulateLre(pk, w1, in.data(), b1.data(), g, 4);
    EXPECT_LT(Tensor::maxAbsDiff(a0, b0), 1e-5);
    EXPECT_LT(Tensor::maxAbsDiff(a1, b1), 1e-5);
}

TEST(LayerwiseRepStr, RendersFig8Fields)
{
    LayerwiseRep lr;
    lr.conv = ConvDesc{"conv_op1", 8, 16, 3, 3, 12, 12, 1, 1, 1, 1};
    lr.pattern_types = {1, 2};
    std::string s = lr.str();
    EXPECT_NE(s.find("conv_op1"), std::string::npos);
    EXPECT_NE(s.find("\"type\": [1, 2]"), std::string::npos);
    EXPECT_NE(s.find("FKW"), std::string::npos);
    EXPECT_NE(s.find("cohwci_b"), std::string::npos);
    EXPECT_NE(s.find("strides"), std::string::npos);
}

}  // namespace
}  // namespace patdnn
