/** @file Admission-control tests: the weighted fair-share policy in
 * isolation, the InferenceServer budget wiring (charge at admission,
 * release on completion/deadline/cancel/shutdown), conservation under
 * concurrent multi-model submitters, and the registry-owned
 * controller end to end. */
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/patdnn.h"

namespace patdnn {
namespace {

Model
tinyModel()
{
    Model m("tiny-admission", "test");
    Layer conv;
    conv.kind = OpKind::kConv;
    conv.name = "c1";
    conv.conv = ConvDesc{"c1", 3, 8, 3, 3, 8, 8, 1, 1, 1, 1};
    m.addLayer(std::move(conv));
    Layer relu;
    relu.kind = OpKind::kReLU;
    relu.name = "c1_relu";
    m.addLayer(std::move(relu));
    Layer fl;
    fl.kind = OpKind::kFlatten;
    fl.name = "flatten";
    m.addLayer(std::move(fl));
    Layer fc;
    fc.kind = OpKind::kFullyConnected;
    fc.name = "fc";
    fc.in_features = 8 * 8 * 8;
    fc.out_features = 4;
    m.addLayer(std::move(fc));
    m.randomizeWeights(7);
    return m;
}

std::shared_ptr<const CompiledModel>
compiledTiny()
{
    static std::shared_ptr<const CompiledModel> model = [] {
        Model m = tinyModel();
        DeviceSpec dev = makeFixedWidthCpuDevice(2);
        return std::make_shared<const CompiledModel>(
            m, FrameworkKind::kPatDnnDense, dev);
    }();
    return model;
}

Tensor
makeInput(uint64_t seed, int64_t n = 1)
{
    Tensor in(Shape{n, 3, 8, 8});
    Rng rng(seed);
    in.fillUniform(rng, -1.0f, 1.0f);
    return in;
}

/** The ErrorCode a serving future failed with (kOk if it resolved). */
ErrorCode
futureErrorCode(std::future<Tensor>& f)
{
    try {
        f.get();
    } catch (const ServeError& e) {
        return e.code();
    }
    return ErrorCode::kOk;
}

/** Samples admitted for `name` before the first refusal, one at a
 * time; stops after `limit` admits. */
int64_t
fillOneByOne(AdmissionController& ctl, const std::string& name, int64_t limit)
{
    for (int64_t i = 0; i < limit; ++i)
        if (!ctl.tryAdmit(name, 1, 0).ok())
            return i;
    return limit;
}

TEST(AdmissionPolicy, DisabledAdmitsEverything)
{
    AdmissionController ctl;  // Both budgets 0 = unlimited.
    EXPECT_FALSE(ctl.enabled());
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(ctl.tryAdmit("any", 1 << 20, 1 << 30).ok());
    AdmissionStats s = ctl.stats();
    EXPECT_EQ(s.admitted, 100);
    EXPECT_EQ(s.shed_over_fair_share + s.shed_global_budget, 0);
}

TEST(AdmissionPolicy, WeightedFairShareCapsUnderPressure)
{
    AdmissionOptions opts;
    opts.max_queued_samples = 100;
    opts.fair_share_pressure = 0.5;
    AdmissionController ctl(opts);
    ctl.registerModel("hot", 3.0);   // Fair share: 75 samples.
    ctl.registerModel("cold", 1.0);  // Fair share: 25 samples.

    // The hot model bursts freely below the pressure line, then caps
    // at exactly its weighted share.
    EXPECT_EQ(fillOneByOne(ctl, "hot", 200), 75);
    Status refused = ctl.tryAdmit("hot", 1, 0);
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.code(), ErrorCode::kResourceExhausted);
    EXPECT_STREQ(refused.detail(), admission_detail::kOverFairShare);

    // The cold model still gets its whole share — the hot model could
    // not starve it.
    EXPECT_EQ(fillOneByOne(ctl, "cold", 200), 25);
    EXPECT_STREQ(ctl.tryAdmit("cold", 1, 0).detail(),
                 admission_detail::kOverFairShare);

    AdmissionStats s = ctl.stats();
    EXPECT_EQ(s.queued_samples, 100);
    EXPECT_EQ(s.models.at("hot").queued_samples, 75);
    EXPECT_EQ(s.models.at("cold").queued_samples, 25);
    EXPECT_EQ(s.shed_global_budget, 0);
}

TEST(AdmissionPolicy, BurstsPastShareBelowPressureLine)
{
    AdmissionOptions opts;
    opts.max_queued_samples = 100;
    opts.fair_share_pressure = 0.5;
    AdmissionController ctl(opts);
    ctl.registerModel("small", 1.0);  // Fair share: 25.
    ctl.registerModel("big", 3.0);    // Fair share: 75 (idle).

    // Work conservation: with the pool idle, the small model runs past
    // its 25-sample share all the way to the 50-sample pressure line.
    EXPECT_EQ(fillOneByOne(ctl, "small", 200), 50);
    EXPECT_STREQ(ctl.tryAdmit("small", 1, 0).detail(),
                 admission_detail::kOverFairShare);
}

TEST(AdmissionPolicy, GlobalBudgetSlugWhenUnderShareMeetsFullPool)
{
    // pressure 1.0 = pure global budget with blame attribution: the
    // fair-share cap only ever binds at the full-pool boundary, so one
    // model may fill the whole budget — and the *other* model's
    // refusal then names the true cause.
    AdmissionOptions opts;
    opts.max_queued_samples = 100;
    opts.fair_share_pressure = 1.0;
    AdmissionController ctl(opts);
    ctl.registerModel("a", 1.0);
    ctl.registerModel("b", 1.0);

    EXPECT_EQ(fillOneByOne(ctl, "a", 200), 100);
    Status refused = ctl.tryAdmit("b", 1, 0);
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.code(), ErrorCode::kResourceExhausted);
    EXPECT_STREQ(refused.detail(), admission_detail::kGlobalBudget);
    // The full-pool model itself is over its share — blamed correctly.
    EXPECT_STREQ(ctl.tryAdmit("a", 1, 0).detail(),
                 admission_detail::kOverFairShare);
    AdmissionStats s = ctl.stats();
    EXPECT_EQ(s.models.at("b").shed_global_budget, 1);
    // a's refusals: one ending fillOneByOne, one explicit above.
    EXPECT_EQ(s.models.at("a").shed_over_fair_share, 2);
}

TEST(AdmissionPolicy, BytesBudgetIsIndependent)
{
    AdmissionOptions opts;
    opts.max_queued_bytes = 1000;
    AdmissionController ctl(opts);
    ctl.registerModel("m", 1.0);
    // Samples unlimited; bytes capped.
    EXPECT_TRUE(ctl.tryAdmit("m", 1 << 20, 400).ok());
    EXPECT_TRUE(ctl.tryAdmit("m", 1 << 20, 400).ok());
    Status refused = ctl.tryAdmit("m", 1, 400);
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.code(), ErrorCode::kResourceExhausted);
    // A fitting request still admits — the refusal charged nothing.
    EXPECT_TRUE(ctl.tryAdmit("m", 1, 200).ok());
    EXPECT_EQ(ctl.stats().queued_bytes, 1000);
}

TEST(AdmissionPolicy, ReleaseRestoresCapacityAndGauges)
{
    AdmissionOptions opts;
    opts.max_queued_samples = 10;
    AdmissionController ctl(opts);
    ctl.registerModel("m", 1.0);
    EXPECT_EQ(fillOneByOne(ctl, "m", 100), 10);
    EXPECT_FALSE(ctl.tryAdmit("m", 1, 0).ok());
    for (int i = 0; i < 10; ++i)
        ctl.release("m", 1, 0);
    EXPECT_EQ(ctl.stats().queued_samples, 0);
    EXPECT_TRUE(ctl.tryAdmit("m", 1, 0).ok());
    ctl.release("m", 1, 0);
    // The process-wide gauges track this controller's last change.
    EXPECT_EQ(MetricsRegistry::global()
                  .gauge("serve.admission.queued_samples")
                  .value(),
              0.0);
}

TEST(AdmissionPolicy, ReregisterRebalancesSharesAndKeepsCounters)
{
    AdmissionOptions opts;
    opts.max_queued_samples = 100;
    opts.fair_share_pressure = 0.0;  // Shares always bind.
    AdmissionController ctl(opts);
    ctl.registerModel("a", 1.0);
    ctl.registerModel("b", 1.0);
    EXPECT_EQ(fillOneByOne(ctl, "a", 200), 50);
    // Re-register with triple weight: the share grows to 75
    // immediately, and the admitted counter carries over.
    ctl.registerModel("a", 3.0);
    EXPECT_EQ(fillOneByOne(ctl, "a", 200), 25);
    EXPECT_EQ(ctl.stats().models.at("a").admitted, 75);
    // Deregistering b hands its share back to a (sole weight = the
    // full budget).
    ctl.deregisterModel("b");
    EXPECT_EQ(fillOneByOne(ctl, "a", 200), 25);
    EXPECT_EQ(ctl.stats().queued_samples, 100);
    EXPECT_EQ(ctl.stats().models.count("b"), 0u);
}

TEST(AdmissionServer, TrySubmitShedsWithSlugAndReleasesOnShutdown)
{
    AdmissionOptions aopts;
    aopts.max_queued_samples = 2;
    auto admission = std::make_shared<AdmissionController>(aopts);

    ServerOptions sopts;
    sopts.workers = 1;
    sopts.max_queue = 16;
    sopts.start_paused = true;  // Requests stage; nothing dequeues.
    sopts.admission = admission;
    sopts.admission_name = "m";
    InferenceServer server(compiledTiny(), sopts);

    std::future<Tensor> f1, f2, f3;
    EXPECT_TRUE(server.trySubmit(makeInput(1), &f1).ok());
    EXPECT_TRUE(server.trySubmit(makeInput(2), &f2).ok());
    Result<RequestId> refused = server.trySubmit(makeInput(3), &f3);
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.code(), ErrorCode::kResourceExhausted);
    EXPECT_STREQ(refused.status().detail(), admission_detail::kOverFairShare);
    EXPECT_EQ(server.stats().rejected, 1);
    EXPECT_EQ(admission->stats().queued_samples, 2);
    EXPECT_EQ(admission->stats().queued_bytes,
              2 * 3 * 8 * 8 * static_cast<int64_t>(sizeof(float)));

    // Dropping the staged queue at shutdown must return the charges.
    server.shutdown();
    EXPECT_EQ(admission->stats().queued_samples, 0);
    EXPECT_EQ(admission->stats().queued_bytes, 0);
}

TEST(AdmissionServer, BlockingSubmitShedSurfacesSlugThroughFuture)
{
    AdmissionOptions aopts;
    aopts.max_queued_samples = 1;
    auto admission = std::make_shared<AdmissionController>(aopts);

    ServerOptions sopts;
    sopts.workers = 1;
    sopts.max_queue = 16;
    sopts.start_paused = true;
    sopts.admission = admission;
    sopts.admission_name = "m";
    InferenceServer server(compiledTiny(), sopts);

    std::future<Tensor> ok = server.submit(makeInput(1));
    std::future<Tensor> shed = server.submit(makeInput(2));
    try {
        shed.get();
        FAIL() << "expected ServeError";
    } catch (const ServeError& e) {
        EXPECT_EQ(e.code(), ErrorCode::kResourceExhausted);
        EXPECT_STREQ(e.detail(), admission_detail::kOverFairShare);
    }
    server.shutdown();
}

TEST(AdmissionServer, DeadlineShedAndCancelReleaseBudget)
{
    auto clock = std::make_shared<FakeClock>();
    AdmissionOptions aopts;
    aopts.max_queued_samples = 10;
    auto admission = std::make_shared<AdmissionController>(aopts);

    ServerOptions sopts;
    sopts.workers = 1;
    sopts.max_queue = 16;
    sopts.start_paused = true;
    sopts.clock = clock;
    sopts.admission = admission;
    sopts.admission_name = "m";
    InferenceServer server(compiledTiny(), sopts);

    SubmitOptions expiring;
    expiring.deadline = server.deadlineIn(5.0);
    std::future<Tensor> f1 = server.submit(makeInput(1), expiring);
    std::future<Tensor> f2 = server.submit(makeInput(2), expiring);
    RequestId cancel_id = 0;
    std::future<Tensor> f3 = server.submit(makeInput(3), {}, &cancel_id);
    EXPECT_EQ(admission->stats().queued_samples, 3);

    // Cancel returns its charge immediately.
    EXPECT_TRUE(server.cancel(cancel_id));
    EXPECT_EQ(admission->stats().queued_samples, 2);

    // Past the deadline, the worker sheds both expired requests at pop
    // — and their charges flow back.
    clock->advanceMs(10.0);
    server.start();
    server.drain();
    EXPECT_EQ(futureErrorCode(f1), ErrorCode::kDeadlineExceeded);
    EXPECT_EQ(futureErrorCode(f2), ErrorCode::kDeadlineExceeded);
    EXPECT_EQ(futureErrorCode(f3), ErrorCode::kCancelled);
    EXPECT_EQ(admission->stats().queued_samples, 0);
    ServerStats s = server.stats();
    EXPECT_EQ(s.deadline_exceeded, 2);
    EXPECT_EQ(s.cancelled, 1);
    EXPECT_EQ(s.completed, 0);
    server.shutdown();
}

TEST(AdmissionServer, ConcurrentMultiModelConservation)
{
    AdmissionOptions aopts;
    aopts.max_queued_samples = 16;
    auto admission = std::make_shared<AdmissionController>(aopts);

    auto makeServer = [&](const std::string& name, double weight) {
        ServerOptions sopts;
        sopts.workers = 1;
        sopts.max_queue = 64;  // Larger than the budget: the only
                               // refusals here are admission sheds.
        sopts.admission = admission;
        sopts.admission_name = name;
        sopts.admission_weight = weight;
        return std::make_unique<InferenceServer>(compiledTiny(), sopts);
    };
    auto hot = makeServer("hot", 3.0);
    auto cold = makeServer("cold", 1.0);

    constexpr int kThreadsPerModel = 2;
    constexpr int kAttempts = 120;
    std::atomic<int64_t> accepted_hot{0}, shed_hot{0};
    std::atomic<int64_t> accepted_cold{0}, shed_cold{0};
    auto submitter = [&](InferenceServer& server,
                         std::atomic<int64_t>& accepted,
                         std::atomic<int64_t>& shed, uint64_t seed0) {
        std::vector<std::future<Tensor>> futures;
        for (int i = 0; i < kAttempts; ++i) {
            std::future<Tensor> f;
            Result<RequestId> r = server.trySubmit(
                makeInput(seed0 + static_cast<uint64_t>(i)), &f);
            if (r.ok()) {
                ++accepted;
                futures.push_back(std::move(f));
            } else {
                EXPECT_EQ(r.code(), ErrorCode::kResourceExhausted);
                ++shed;
            }
        }
        for (auto& f : futures)
            f.wait();
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreadsPerModel; ++t) {
        threads.emplace_back([&, t] {
            submitter(*hot, accepted_hot, shed_hot,
                      1000 + static_cast<uint64_t>(t) * kAttempts);
        });
        threads.emplace_back([&, t] {
            submitter(*cold, accepted_cold, shed_cold,
                      9000 + static_cast<uint64_t>(t) * kAttempts);
        });
    }
    for (auto& th : threads)
        th.join();
    hot->drain();
    cold->drain();
    const int64_t ah = accepted_hot, sh = shed_hot;
    const int64_t ac = accepted_cold, sc = shed_cold;

    // Client-side conservation: every attempt was accepted or shed.
    EXPECT_EQ(ah + sh, kThreadsPerModel * kAttempts);
    EXPECT_EQ(ac + sc, kThreadsPerModel * kAttempts);
    EXPECT_GT(ah, 0);
    EXPECT_GT(ac, 0);

    // Controller-side conservation: admitted matches the client view,
    // sheds match, and every charge was released.
    AdmissionStats a = admission->stats();
    EXPECT_EQ(a.queued_samples, 0);
    EXPECT_EQ(a.queued_bytes, 0);
    EXPECT_EQ(a.admitted, ah + ac);
    EXPECT_EQ(a.shed_over_fair_share + a.shed_global_budget, sh + sc);
    EXPECT_EQ(a.models.at("hot").admitted, ah);
    EXPECT_EQ(a.models.at("cold").admitted, ac);
    EXPECT_EQ(a.models.at("hot").admitted +
                  a.models.at("hot").shed_over_fair_share +
                  a.models.at("hot").shed_global_budget,
              kThreadsPerModel * kAttempts);

    // Server-side: accepted requests all completed (nothing lost).
    EXPECT_EQ(hot->stats().completed, ah);
    EXPECT_EQ(cold->stats().completed, ac);
    EXPECT_EQ(hot->stats().rejected, sh);
    EXPECT_EQ(cold->stats().rejected, sc);
    hot->shutdown();
    cold->shutdown();
}

TEST(AdmissionRegistry, OwnsControllerRoutesWeightsAndEvicts)
{
    RegistryOptions ropts;
    ropts.device = makeFixedWidthCpuDevice(2);
    ropts.server.workers = 1;
    ropts.server.max_queue = 64;
    ropts.admission.max_queued_samples = 8;
    auto registry = serveRegistry(ropts);
    ASSERT_NE(registry->admission(), nullptr);

    Model m = tinyModel();
    Result<std::shared_ptr<CompiledModel>> compiled =
        Compiler(registry->device()).compile(m, FrameworkKind::kPatDnnDense);
    ASSERT_TRUE(compiled.ok()) << compiled.status().toString();

    ServerOptions heavy = ropts.server;
    heavy.admission_weight = 3.0;
    Status added = registry->add("heavy", compiled.value(), heavy);
    ASSERT_TRUE(added.ok()) << added.toString();
    added = registry->add("light", compiled.value());
    ASSERT_TRUE(added.ok()) << added.toString();

    AdmissionStats before = registry->admission()->stats();
    EXPECT_EQ(before.models.at("heavy").weight, 3.0);
    EXPECT_EQ(before.models.at("light").weight, 1.0);

    // Route a burst through the registry's typed admission path.
    int64_t accepted = 0, shed = 0;
    std::vector<std::future<Tensor>> futures;
    for (int i = 0; i < 64; ++i) {
        std::future<Tensor> f;
        Result<RequestId> r = registry->trySubmit(
            i % 2 == 0 ? "heavy" : "light",
            makeInput(300 + static_cast<uint64_t>(i)), &f);
        if (r.ok()) {
            ++accepted;
            futures.push_back(std::move(f));
        } else {
            EXPECT_EQ(r.code(), ErrorCode::kResourceExhausted);
            ++shed;
        }
    }
    for (auto& f : futures)
        f.wait();
    registry->drainAll();
    EXPECT_EQ(accepted + shed, 64);
    EXPECT_GT(accepted, 0);
    AdmissionStats after = registry->admission()->stats();
    EXPECT_EQ(after.admitted, accepted);
    EXPECT_EQ(after.queued_samples, 0);

    // Unknown names are routing errors, not admission errors.
    std::future<Tensor> f;
    EXPECT_EQ(registry->trySubmit("missing", makeInput(1), &f).code(),
              ErrorCode::kNotFound);

    // Evicting a model deregisters its admission identity.
    EXPECT_TRUE(registry->evict("heavy"));
    EXPECT_EQ(registry->admission()->stats().models.count("heavy"), 0u);
    registry->shutdownAll();
}

}  // namespace
}  // namespace patdnn
