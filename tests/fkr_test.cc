/** @file Filter Kernel Reorder property tests. */
#include <gtest/gtest.h>

#include <algorithm>

#include "prune/projections.h"
#include "sparse/fkr.h"

namespace patdnn {
namespace {

PatternAssignment
makeAssignment(int64_t filters, int64_t channels, int64_t alpha, int npat,
               uint64_t seed, Tensor* out_w = nullptr)
{
    Rng rng(seed);
    Tensor w(Shape{filters, channels, 3, 3});
    w.fillNormal(rng);
    PatternSet set = canonicalPatternSet(npat);
    PatternAssignment asg = projectJoint(w, set, alpha);
    if (out_w != nullptr)
        *out_w = w;
    return asg;
}

TEST(Fkr, ReorderIsPermutation)
{
    auto asg = makeAssignment(16, 12, 60, 8, 1);
    FkrResult fkr = filterKernelReorder(asg);
    std::vector<int32_t> sorted = fkr.reorder;
    std::sort(sorted.begin(), sorted.end());
    for (int32_t i = 0; i < 16; ++i)
        EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(Fkr, KernelsSortedByPatternInsideFilters)
{
    auto asg = makeAssignment(12, 12, 50, 8, 2);
    FkrResult fkr = filterKernelReorder(asg);
    for (const auto& f : fkr.filters)
        for (size_t i = 1; i < f.size(); ++i)
            EXPECT_GE(f[i].pattern_id, f[i - 1].pattern_id);
}

TEST(Fkr, GroupsHaveEqualLengthsAndCoverAllFilters)
{
    auto asg = makeAssignment(20, 10, 70, 6, 3);
    FkrResult fkr = filterKernelReorder(asg);
    int32_t covered = 0;
    for (const auto& g : fkr.groups) {
        EXPECT_LT(g.begin, g.end);
        for (int32_t f = g.begin; f < g.end; ++f)
            EXPECT_EQ(static_cast<int32_t>(fkr.filters[static_cast<size_t>(f)].size()),
                      g.length);
        covered += g.end - g.begin;
    }
    EXPECT_EQ(covered, 20);
}

TEST(Fkr, LengthsAreNonIncreasing)
{
    auto asg = makeAssignment(24, 12, 90, 8, 4);
    FkrResult fkr = filterKernelReorder(asg);
    auto lengths = filterLengths(fkr);
    for (size_t i = 1; i < lengths.size(); ++i)
        EXPECT_GE(lengths[i - 1], lengths[i]);
}

TEST(Fkr, DisabledReorderKeepsOriginalOrder)
{
    auto asg = makeAssignment(10, 10, 40, 6, 5);
    FkrOptions opts;
    opts.reorder_filters = false;
    opts.similarity_within_group = false;
    opts.reorder_kernels = false;
    FkrResult fkr = filterKernelReorder(asg, opts);
    for (int32_t i = 0; i < 10; ++i)
        EXPECT_EQ(fkr.reorder[static_cast<size_t>(i)], i);
    // Kernels keep ascending input-channel order (projection order).
    for (const auto& f : fkr.filters)
        for (size_t i = 1; i < f.size(); ++i)
            EXPECT_GT(f[i].input_channel, f[i - 1].input_channel);
}

TEST(Fkr, SimilarityMetricCountsMatchingPositions)
{
    std::vector<ReorderedKernel> a = {{0, 1}, {1, 2}, {2, 2}};
    std::vector<ReorderedKernel> b = {{3, 1}, {4, 2}, {5, 3}};
    EXPECT_EQ(filterSimilarity(a, b), 2);
}

TEST(Fkr, SimilarityOrderingImprovesAdjacentSimilarity)
{
    // Greedy chaining should produce at least as much total adjacent
    // similarity as the unordered (length-only) layout.
    auto asg = makeAssignment(32, 16, 200, 8, 6);
    FkrOptions with;
    FkrOptions without;
    without.similarity_within_group = false;
    FkrResult a = filterKernelReorder(asg, with);
    FkrResult b = filterKernelReorder(asg, without);
    auto total_sim = [](const FkrResult& r) {
        int64_t s = 0;
        for (size_t i = 1; i < r.filters.size(); ++i)
            if (r.filters[i].size() == r.filters[i - 1].size())
                s += filterSimilarity(r.filters[i], r.filters[i - 1]);
        return s;
    };
    EXPECT_GE(total_sim(a), total_sim(b));
}

TEST(Fkr, EmptyFiltersLandInTrailingGroup)
{
    // Prune so aggressively that some filters lose every kernel.
    auto asg = makeAssignment(16, 8, 12, 6, 7);
    FkrResult fkr = filterKernelReorder(asg);
    auto lengths = filterLengths(fkr);
    EXPECT_EQ(lengths.back(), 0);
    EXPECT_GT(lengths.front(), 0);
}

}  // namespace
}  // namespace patdnn
