/** @file Memory-plan execution conformance.
 *
 * The planner's static invariants (tests/memplan_test.cc) say nothing
 * about whether the *runtime* honors them — an executor that caches a
 * pointer, reads an input after writing its output's aliased range, or
 * sizes a view wrong would pass every static check and still corrupt
 * activations. So this suite runs every zoo model through a planned
 * (single-arena) session and a legacy per-layer session on identical
 * inputs and requires bit-exact (memcmp) agreement — at batch 1 and a
 * multi-sample batch, under the vector and forced-scalar kernel paths,
 * and with the NaN poison canary filling freed arena ranges between
 * layers (any executor touching recycled memory surfaces as a NaN in
 * the diff). Also pins the headline footprint win: peak-live arena vs
 * per-layer sum on the ResNet-class model.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/patdnn.h"

namespace patdnn {
namespace {

Tensor
cifarInput(uint64_t seed, int64_t n)
{
    Tensor in(Shape{n, 3, 32, 32});
    Rng rng(seed);
    in.fillUniform(rng, -1.0f, 1.0f);
    return in;
}

/** Bit-exact: memcmp, not a tolerance — planned execution must be the
 * SAME computation, only at different addresses. */
void
expectBitExact(const Tensor& got, const Tensor& want, const std::string& what)
{
    ASSERT_EQ(got.shape(), want.shape()) << what;
    EXPECT_EQ(std::memcmp(got.data(), want.data(),
                          static_cast<size_t>(want.numel()) * sizeof(float)),
              0)
        << what << ": planned output differs from per-layer output "
        << "(maxAbsDiff=" << Tensor::maxAbsDiff(got, want) << ")";
}

/** Compile each (model, kind, ISA) once per process: the zoo compiles
 * (pattern pruning + packing) dominate suite wall-clock — especially
 * under the sanitizer CI cell — and every test reads the shared model
 * immutably, which is the serving contract anyway. */
std::shared_ptr<const CompiledModel>
compileZoo(const std::string& short_name, FrameworkKind kind,
           const DeviceSpec& dev)
{
    static std::map<std::string, std::shared_ptr<const CompiledModel>> cache;
    std::string key = short_name + "/" + std::to_string(static_cast<int>(kind)) +
                      "/" + std::to_string(static_cast<int>(dev.simd_isa));
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    Model m = buildByShortName(short_name, Dataset::kCifar10);
    auto compiled = std::make_shared<const CompiledModel>(m, kind, dev);
    cache.emplace(std::move(key), compiled);
    return compiled;
}

/** Planned vs per-layer differential over one shared model. */
void
runDifferential(std::shared_ptr<const CompiledModel> model,
                const std::string& what)
{
    ASSERT_TRUE(model->hasMemoryPlan()) << what;
    InferenceSession legacy(model, SessionMemory::kPerLayer);
    InferenceSession planned(model, SessionMemory::kPlannedArena);
    EXPECT_FALSE(legacy.usesPlannedArena());
    EXPECT_TRUE(planned.usesPlannedArena());

    for (int64_t batch : {int64_t{1}, int64_t{3}}) {
        Tensor in = cifarInput(77 + static_cast<uint64_t>(batch), batch);
        Tensor want = legacy.run(in);
        Tensor got = planned.run(in);
        expectBitExact(got, want,
                       what + " batch " + std::to_string(batch));
    }
    // The arena really is one allocation of plan size, scaled by the
    // largest batch run so far.
    EXPECT_EQ(planned.activationBytes(), model->memoryPlan().arenaBytes(3));
    EXPECT_LE(planned.activationBytes(), legacy.activationBytes());
}

TEST(MemPlanExec, VggPatternBitExact)
{
    runDifferential(compileZoo("VGG", FrameworkKind::kPatDnn, makeCpuDevice(2)),
                    "VGG/kPatDnn");
}

TEST(MemPlanExec, VggDenseBitExact)
{
    runDifferential(
        compileZoo("VGG", FrameworkKind::kPatDnnDense, makeCpuDevice(2)),
        "VGG/kPatDnnDense");
}

TEST(MemPlanExec, ResNetPatternBitExact)
{
    runDifferential(compileZoo("RNT", FrameworkKind::kPatDnn, makeCpuDevice(2)),
                    "RNT/kPatDnn");
}

TEST(MemPlanExec, MobileNetPatternBitExact)
{
    runDifferential(compileZoo("MBNT", FrameworkKind::kPatDnn, makeCpuDevice(2)),
                    "MBNT/kPatDnn");
}

TEST(MemPlanExec, ScalarKernelsBitExact)
{
    // Force the scalar kernel table: the planned path must be exact on
    // both SIMD cells, not just whichever this host dispatches to.
    DeviceSpec dev = makeCpuDevice(2);
    dev.simd_isa = SimdIsa::kScalar;
    runDifferential(compileZoo("VGG", FrameworkKind::kPatDnn, dev),
                    "VGG/kPatDnn/scalar");
}

TEST(MemPlanExec, PoisonCanaryFindsNoStaleReads)
{
    // NaN-fill every freed arena range between layers: an executor that
    // reads a value past its last_use consumes NaN, which propagates to
    // the output and breaks the memcmp. Bit-exact here means no
    // executor touches recycled memory. (Runs under the ASan/UBSan CI
    // job too, where the poison writes also exercise range bounds.)
    auto model = compileZoo("RNT", FrameworkKind::kPatDnn, makeCpuDevice(2));
    ASSERT_TRUE(model->hasMemoryPlan());
    InferenceSession legacy(model, SessionMemory::kPerLayer);
    InferenceSession canary(model, SessionMemory::kPlannedArena);
    canary.setDebugPoisonFreed(true);
    for (int64_t batch : {int64_t{1}, int64_t{2}}) {
        Tensor in = cifarInput(31 + static_cast<uint64_t>(batch), batch);
        expectBitExact(canary.run(in), legacy.run(in),
                       "RNT poison canary batch " + std::to_string(batch));
    }
}

TEST(MemPlanExec, ArenaIsAtMost60PercentOfPerLayerOnResNet)
{
    // The acceptance bar from the planner's reason to exist: deep nets
    // with short-lived intermediates should pack into well under the
    // per-layer sum. ResNet-50's 100+ activations reuse a handful of
    // arena ranges.
    auto model = compileZoo("RNT", FrameworkKind::kPatDnn, makeCpuDevice(2));
    ASSERT_TRUE(model->hasMemoryPlan());
    const MemoryPlan& plan = model->memoryPlan();
    EXPECT_LE(plan.arenaBytes(1), plan.sumBytes(1) * 6 / 10)
        << "arena " << plan.arenaBytes(1) << " B vs per-layer "
        << plan.sumBytes(1) << " B";
}

TEST(MemPlanExec, AutoModePicksArenaWhenPlanExists)
{
    auto model = compileZoo("MBNT", FrameworkKind::kPatDnn, makeCpuDevice(2));
    InferenceSession auto_session(model);  // kAuto default.
    EXPECT_TRUE(auto_session.usesPlannedArena());

    // Planning disabled at compile time -> kAuto falls back per-layer.
    Model m = buildByShortName("MBNT", Dataset::kCifar10);
    CompileOptions no_plan;
    no_plan.enable_memory_plan = false;
    auto unplanned = std::make_shared<const CompiledModel>(
        m, FrameworkKind::kPatDnn, makeCpuDevice(2), no_plan);
    EXPECT_FALSE(unplanned->hasMemoryPlan());
    InferenceSession fallback(unplanned);
    Tensor out = fallback.run(cifarInput(5, 1));
    EXPECT_FALSE(fallback.usesPlannedArena());
    EXPECT_EQ(out.shape(), Shape({1, 10}));
}

TEST(MemPlanExec, ConcurrentPlannedSessionsAreIndependent)
{
    // Sessions share the model but each owns its arena; concurrent
    // planned runs must not interfere (the serving workers' shape).
    auto model = compileZoo("VGG", FrameworkKind::kPatDnn, makeCpuDevice(2));
    InferenceSession reference(model, SessionMemory::kPerLayer);
    std::vector<Tensor> inputs, expected;
    for (uint64_t s = 0; s < 4; ++s) {
        inputs.push_back(cifarInput(100 + s, 1));
        expected.push_back(reference.run(inputs.back()));
    }
    std::vector<Tensor> got(inputs.size());
    std::vector<std::thread> threads;
    for (size_t i = 0; i < inputs.size(); ++i)
        threads.emplace_back([&, i] {
            InferenceSession session(model, SessionMemory::kPlannedArena);
            got[i] = session.run(inputs[i]);
        });
    for (std::thread& t : threads)
        t.join();
    for (size_t i = 0; i < inputs.size(); ++i)
        expectBitExact(got[i], expected[i],
                       "concurrent session " + std::to_string(i));
}

TEST(MemPlanExec, OutputSurvivesNextRun)
{
    // The returned tensor must be an owning copy, not a view into the
    // arena the next run overwrites.
    auto model = compileZoo("MBNT", FrameworkKind::kPatDnn, makeCpuDevice(2));
    InferenceSession planned(model, SessionMemory::kPlannedArena);
    InferenceSession legacy(model, SessionMemory::kPerLayer);
    Tensor in_a = cifarInput(1, 1);
    Tensor in_b = cifarInput(2, 1);
    Tensor out_a = planned.run(in_a);
    Tensor out_a_copy = out_a;  // Snapshot before the arena is reused.
    Tensor out_b = planned.run(in_b);
    expectBitExact(out_a, out_a_copy, "first output after second run");
    // Both outputs stay individually correct: neither is a live view
    // into the (now twice-recycled) arena.
    expectBitExact(out_a, legacy.run(in_a), "first output vs per-layer");
    expectBitExact(out_b, legacy.run(in_b), "second output vs per-layer");
}

}  // namespace
}  // namespace patdnn
