/** @file Memory-planner property tests.
 *
 * A plan's correctness is an aliasing property: no pair of values with
 * overlapping lifetimes may overlap in the arena, for any graph the
 * compiler can produce. Unit cases can't cover that space, so the core
 * suite here generates 1000+ seeded random layer graphs (chains with
 * extra long-range edges, dead slots, varying extents) and asserts the
 * planner invariants hold on every one — plus targeted shapes (chain,
 * diamond, dead output predecessors) where the expected packing is
 * known, and negative cases proving validateAgainst() rejects every
 * class of corrupted plan the artifact loader must refuse.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "rt/memplan.h"
#include "util/rng.h"

namespace patdnn {
namespace {

int64_t
alignUp(int64_t v, int64_t a)
{
    return (v + a - 1) / a * a;
}

bool
livesOverlap(const PlanSlot& a, const PlanSlot& b)
{
    return a.def <= b.last_use && b.def <= a.last_use;
}

bool
addressesOverlap(const PlanSlot& a, const PlanSlot& b)
{
    return a.offset_elems < b.offset_elems + b.size_elems &&
           b.offset_elems < a.offset_elems + a.size_elems;
}

/**
 * A random compiled-graph shape: mostly a chain (each live node reads
 * the previous live node), with occasional extra edges back to earlier
 * live nodes (extending their lifetimes past the chain step) and
 * occasional dead slots (the compiler leaves these behind after fusion
 * passes). Node 0 always reads the model input (-1).
 */
std::vector<PlanNode>
randomGraph(Rng& rng, int* output_node)
{
    int n = static_cast<int>(rng.uniformInt(2, 40));
    std::vector<PlanNode> nodes(static_cast<size_t>(n));
    int prev_live = -1;
    for (int id = 0; id < n; ++id) {
        PlanNode& nd = nodes[static_cast<size_t>(id)];
        // ~10% dead slots, but keep at least the first and last alive
        // so the graph has an input-reader and an output.
        bool dead = id != 0 && id != n - 1 && rng.bernoulli(0.1);
        if (dead)
            continue;
        nd.live = true;
        nd.inputs.push_back(prev_live);  // -1 for the first live node.
        // ~25% of nodes also read a random earlier live node (residual
        // style edge): stretches that value's lifetime.
        if (prev_live >= 0 && rng.bernoulli(0.25)) {
            int extra = static_cast<int>(rng.uniformInt(0, prev_live));
            while (!nodes[static_cast<size_t>(extra)].live)
                --extra;  // Node 0 is always live.
            nd.inputs.push_back(extra);
        }
        nd.elems_per_sample = rng.uniformInt(1, 5000);
        prev_live = id;
    }
    *output_node = prev_live;
    return nodes;
}

/** The invariants every plan must satisfy, checked from first
 * principles (independent of validateAgainst's implementation). */
void
checkPlanInvariants(const MemoryPlan& plan, const std::vector<PlanNode>& nodes,
                    int output_node)
{
    ASSERT_FALSE(plan.empty());
    ASSERT_EQ(plan.slotCount(), nodes.size());
    const int64_t align = plan.alignElems();
    ASSERT_GT(align, 0);

    int64_t sum = 0;
    int64_t high_water = 0;
    for (size_t id = 0; id < nodes.size(); ++id) {
        const PlanSlot& s = plan.slot(id);
        ASSERT_EQ(s.planned, nodes[id].live) << "slot " << id;
        if (!s.planned)
            continue;
        EXPECT_EQ(s.size_elems, nodes[id].elems_per_sample) << "slot " << id;
        EXPECT_EQ(s.offset_elems % align, 0) << "slot " << id;
        EXPECT_EQ(s.def, static_cast<int>(id));
        EXPECT_GE(s.last_use, s.def);
        sum += alignUp(s.size_elems, align);
        high_water = std::max(high_water, s.offset_elems + s.size_elems);
    }
    // The output value must outlive the whole run loop.
    EXPECT_EQ(plan.slot(static_cast<size_t>(output_node)).last_use,
              static_cast<int>(nodes.size()));

    // Arena is tight (exactly the high-water mark) and never worse than
    // the per-layer sum — the headline guarantee of the pass.
    EXPECT_EQ(plan.arenaElemsPerSample(), high_water);
    EXPECT_EQ(plan.sumElemsPerSample(), sum);
    EXPECT_LE(plan.arenaElemsPerSample(), plan.sumElemsPerSample());

    // The aliasing property: concurrently-live buffers are disjoint.
    for (size_t i = 0; i < nodes.size(); ++i) {
        const PlanSlot& a = plan.slot(i);
        if (!a.planned)
            continue;
        for (size_t j = i + 1; j < nodes.size(); ++j) {
            const PlanSlot& b = plan.slot(j);
            if (!b.planned)
                continue;
            if (livesOverlap(a, b))
                EXPECT_FALSE(addressesOverlap(a, b))
                    << "slots " << i << " and " << j << " are live together "
                    << "but share arena addresses";
        }
    }
}

TEST(MemPlan, RandomGraphPropertySweep)
{
    // 1200 seeded graphs; every invariant checked on each. A planner
    // bug that only shows on a rare graph shape has ~1200 chances to
    // surface, and any failure reproduces from its seed.
    for (uint64_t seed = 1; seed <= 1200; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Rng rng(seed);
        int output_node = -1;
        std::vector<PlanNode> nodes = randomGraph(rng, &output_node);
        MemoryPlan plan = planActivations(nodes, output_node);
        checkPlanInvariants(plan, nodes, output_node);
        EXPECT_TRUE(plan.validateAgainst(nodes, output_node).ok());
    }
}

TEST(MemPlan, DeterministicAcrossRuns)
{
    for (uint64_t seed = 1; seed <= 50; ++seed) {
        Rng rng_a(seed), rng_b(seed);
        int out_a = -1, out_b = -1;
        std::vector<PlanNode> na = randomGraph(rng_a, &out_a);
        std::vector<PlanNode> nb = randomGraph(rng_b, &out_b);
        MemoryPlan pa = planActivations(na, out_a);
        MemoryPlan pb = planActivations(nb, out_b);
        ASSERT_EQ(pa.slotCount(), pb.slotCount());
        EXPECT_EQ(pa.arenaElemsPerSample(), pb.arenaElemsPerSample());
        for (size_t i = 0; i < pa.slotCount(); ++i) {
            EXPECT_EQ(pa.slot(i).offset_elems, pb.slot(i).offset_elems);
            EXPECT_EQ(pa.slot(i).size_elems, pb.slot(i).size_elems);
            EXPECT_EQ(pa.slot(i).last_use, pb.slot(i).last_use);
        }
    }
}

/** Chain a->b->c->d: at any step only producer + consumer are live, so
 * the arena needs just the two largest adjacent buffers — far less
 * than the sum. Buffers reuse freed ranges alternately. */
TEST(MemPlan, ChainReusesFreedRanges)
{
    std::vector<PlanNode> nodes(4);
    int64_t sizes[] = {1000, 1000, 1000, 10};
    for (int id = 0; id < 4; ++id) {
        nodes[static_cast<size_t>(id)].live = true;
        nodes[static_cast<size_t>(id)].inputs = {id - 1};
        nodes[static_cast<size_t>(id)].elems_per_sample = sizes[id];
    }
    MemoryPlan plan = planActivations(nodes, 3);
    checkPlanInvariants(plan, nodes, 3);
    // Peak live = two adjacent 1000-elem buffers (the lower one rounded
    // up so the upper one starts aligned), not the 3010-elem sum.
    EXPECT_EQ(plan.arenaElemsPerSample(),
              alignUp(1000, plan.alignElems()) + 1000);
    // a and c are never live together: c must reuse a's range.
    EXPECT_EQ(plan.slot(0).offset_elems, plan.slot(2).offset_elems);
}

/** Diamond: b and c both read a, d reads both. a stays live until c
 * runs; b and c are live together and must not alias. */
TEST(MemPlan, DiamondKeepsBranchesDisjoint)
{
    std::vector<PlanNode> nodes(4);
    nodes[0] = {true, {-1}, 500};
    nodes[1] = {true, {0}, 600};
    nodes[2] = {true, {0}, 700};
    nodes[3] = {true, {1, 2}, 100};
    MemoryPlan plan = planActivations(nodes, 3);
    checkPlanInvariants(plan, nodes, 3);
    EXPECT_EQ(plan.slot(0).last_use, 2);
    EXPECT_EQ(plan.slot(1).last_use, 3);
    EXPECT_FALSE(addressesOverlap(plan.slot(1), plan.slot(2)));
    EXPECT_FALSE(addressesOverlap(plan.slot(0), plan.slot(1)));
    EXPECT_FALSE(addressesOverlap(plan.slot(0), plan.slot(2)));
}

TEST(MemPlan, DeadSlotsStayUnplanned)
{
    std::vector<PlanNode> nodes(5);
    nodes[0] = {true, {-1}, 128};
    nodes[1] = {};  // Dead (e.g. fused away).
    nodes[2] = {true, {0}, 256};
    nodes[3] = {};  // Dead.
    nodes[4] = {true, {2}, 64};
    MemoryPlan plan = planActivations(nodes, 4);
    checkPlanInvariants(plan, nodes, 4);
    EXPECT_FALSE(plan.slot(1).planned);
    EXPECT_FALSE(plan.slot(3).planned);
}

TEST(MemPlan, BatchScalingOfArenaAndSumBytes)
{
    std::vector<PlanNode> nodes(2);
    nodes[0] = {true, {-1}, 100};
    nodes[1] = {true, {0}, 50};
    MemoryPlan plan = planActivations(nodes, 1);
    // Per-sample units: batch N scales both measures linearly.
    EXPECT_EQ(plan.arenaBytes(3), 3 * plan.arenaBytes(1));
    EXPECT_EQ(plan.sumBytes(3), 3 * plan.sumBytes(1));
    EXPECT_EQ(plan.arenaBytes(1),
              static_cast<size_t>(plan.arenaElemsPerSample()) * sizeof(float));
}

TEST(MemPlan, LifetimesOutputSurvivesRunLoop)
{
    std::vector<PlanNode> nodes(3);
    nodes[0] = {true, {-1}, 10};
    nodes[1] = {true, {0}, 10};
    nodes[2] = {true, {1}, 10};
    std::vector<PlanSlot> lives = computeLifetimes(nodes, 2);
    EXPECT_EQ(lives[0].last_use, 1);
    EXPECT_EQ(lives[1].last_use, 2);
    EXPECT_EQ(lives[2].last_use, 3);  // == node count: read after the loop.
}

/** validateAgainst must refuse every corruption class a hostile v4
 * artifact could carry — these are the load-time safety net. */
class MemPlanValidate : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        nodes_.resize(4);
        nodes_[0] = {true, {-1}, 500};
        nodes_[1] = {true, {0}, 600};
        nodes_[2] = {true, {0}, 700};
        nodes_[3] = {true, {1, 2}, 100};
        plan_ = planActivations(nodes_, 3);
        ASSERT_TRUE(plan_.validateAgainst(nodes_, 3).ok());
    }

    /** Rebuild a plan from mutated slots, keeping the claimed arena /
     * sum unless overridden. */
    MemoryPlan
    mutated(std::vector<PlanSlot> slots, int64_t arena = -1, int64_t sum = -1)
    {
        return MemoryPlan(std::move(slots),
                          arena >= 0 ? arena : plan_.arenaElemsPerSample(),
                          sum >= 0 ? sum : plan_.sumElemsPerSample(),
                          plan_.alignElems());
    }

    std::vector<PlanNode> nodes_;
    MemoryPlan plan_;
};

TEST_F(MemPlanValidate, RejectsAliasedLiveBuffers)
{
    std::vector<PlanSlot> slots = plan_.slots();
    slots[2].offset_elems = slots[1].offset_elems;  // b and c live together.
    int64_t arena = 0;
    for (const PlanSlot& s : slots)
        arena = std::max(arena, s.offset_elems + s.size_elems);
    EXPECT_FALSE(mutated(std::move(slots), arena).validateAgainst(nodes_, 3).ok());
}

TEST_F(MemPlanValidate, RejectsMisalignedOffset)
{
    std::vector<PlanSlot> slots = plan_.slots();
    slots[3].offset_elems += 1;
    int64_t arena = 0;
    for (const PlanSlot& s : slots)
        arena = std::max(arena, s.offset_elems + s.size_elems);
    EXPECT_FALSE(mutated(std::move(slots), arena).validateAgainst(nodes_, 3).ok());
}

TEST_F(MemPlanValidate, RejectsWrongSize)
{
    std::vector<PlanSlot> slots = plan_.slots();
    slots[1].size_elems -= 1;  // Claims less than the node produces.
    EXPECT_FALSE(mutated(std::move(slots)).validateAgainst(nodes_, 3).ok());
}

TEST_F(MemPlanValidate, RejectsWrongLifetime)
{
    std::vector<PlanSlot> slots = plan_.slots();
    slots[0].last_use = 1;  // Truth: node 2 still reads it.
    EXPECT_FALSE(mutated(std::move(slots)).validateAgainst(nodes_, 3).ok());
}

TEST_F(MemPlanValidate, RejectsSlotOutsideArena)
{
    std::vector<PlanSlot> slots = plan_.slots();
    // Shrink the claimed arena below the high-water mark.
    EXPECT_FALSE(mutated(std::move(slots), plan_.alignElems())
                     .validateAgainst(nodes_, 3)
                     .ok());
}

TEST_F(MemPlanValidate, RejectsSlotCountMismatch)
{
    std::vector<PlanSlot> slots = plan_.slots();
    slots.pop_back();
    EXPECT_FALSE(mutated(std::move(slots)).validateAgainst(nodes_, 3).ok());
}

TEST_F(MemPlanValidate, RejectsPlannednessMismatch)
{
    std::vector<PlanSlot> slots = plan_.slots();
    slots[1].planned = false;  // Live node claimed dead.
    EXPECT_FALSE(mutated(std::move(slots)).validateAgainst(nodes_, 3).ok());
}

}  // namespace
}  // namespace patdnn
