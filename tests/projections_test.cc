/** @file Euclidean projection property tests. */
#include <gtest/gtest.h>

#include "prune/projections.h"

namespace patdnn {
namespace {

Tensor
randomWeights(int64_t f, int64_t c, Rng& rng)
{
    Tensor w(Shape{f, c, 3, 3});
    w.fillNormal(rng, 0.0f, 1.0f);
    return w;
}

TEST(Projections, PatternProjectionSatisfiesConstraint)
{
    Rng rng(1);
    Tensor w = randomWeights(8, 8, rng);
    PatternSet set = canonicalPatternSet(8);
    PatternAssignment asg = projectPattern(w, set);
    for (int64_t i = 0; i < 64; ++i) {
        int pid = asg.pattern_of_kernel[static_cast<size_t>(i)];
        ASSERT_GE(pid, 0);
        const float* kp = w.data() + i * 9;
        const Pattern& p = set.patterns[static_cast<size_t>(pid)];
        for (int pos = 0; pos < 9; ++pos) {
            if (!((p.mask() >> pos) & 1u)) {
                EXPECT_EQ(kp[pos], 0.0f);
            }
        }
    }
}

TEST(Projections, PatternProjectionIsIdempotent)
{
    Rng rng(2);
    Tensor w = randomWeights(6, 6, rng);
    PatternSet set = canonicalPatternSet(6);
    projectPattern(w, set);
    Tensor once = w;
    projectPattern(w, set);
    EXPECT_EQ(Tensor::maxAbsDiff(once, w), 0.0);
}

TEST(Projections, PatternProjectionMinimizesDistortion)
{
    // The projection keeps the pattern with max kept energy, which is
    // the Euclidean projection onto the union of pattern subspaces.
    Rng rng(3);
    Tensor w = randomWeights(4, 4, rng);
    Tensor original = w;
    PatternSet set = canonicalPatternSet(8);
    PatternAssignment asg = projectPattern(w, set);
    for (int64_t i = 0; i < 16; ++i) {
        const float* orig = original.data() + i * 9;
        double kept =
            set.patterns[static_cast<size_t>(
                             asg.pattern_of_kernel[static_cast<size_t>(i)])]
                .keptEnergy(orig);
        for (const auto& p : set.patterns)
            EXPECT_LE(p.keptEnergy(orig), kept + 1e-9);
    }
}

TEST(Projections, PatternLeavesNon3x3Dense)
{
    Rng rng(4);
    Tensor w(Shape{4, 8, 1, 1});
    w.fillNormal(rng);
    PatternSet set = canonicalPatternSet(8);
    PatternAssignment asg = projectPattern(w, set);
    EXPECT_EQ(w.countNonZero(), 32);
    for (int pid : asg.pattern_of_kernel)
        EXPECT_EQ(pid, -1);
}

TEST(Projections, ConnectivityKeepsExactlyAlphaKernels)
{
    Rng rng(5);
    Tensor w = randomWeights(10, 10, rng);
    auto keep = projectConnectivity(w, 30);
    EXPECT_EQ(countNonZeroKernels(w), 30);
    int64_t kept = 0;
    for (uint8_t k : keep)
        kept += k;
    EXPECT_EQ(kept, 30);
}

TEST(Projections, ConnectivityKeepsLargestNorms)
{
    Rng rng(6);
    Tensor w = randomWeights(6, 6, rng);
    auto norms = kernelNorms(w);
    projectConnectivity(w, 10);
    auto after = kernelNorms(w);
    // The 10 surviving kernels must be the 10 largest by original norm.
    std::vector<double> sorted = norms;
    std::sort(sorted.rbegin(), sorted.rend());
    double threshold = sorted[9];
    for (size_t i = 0; i < norms.size(); ++i) {
        if (after[i] > 0.0) {
            EXPECT_GE(norms[i], threshold - 1e-9);
        }
    }
}

TEST(Projections, JointSatisfiesBothConstraints)
{
    Rng rng(7);
    Tensor w = randomWeights(8, 8, rng);
    PatternSet set = canonicalPatternSet(8);
    PatternAssignment asg = projectJoint(w, set, 20);
    EXPECT_EQ(countNonZeroKernels(w), 20);
    int64_t assigned = 0;
    for (int pid : asg.pattern_of_kernel)
        if (pid >= 0)
            ++assigned;
    EXPECT_EQ(assigned, 20);
    // Every surviving kernel has exactly <= 4 non-zeros.
    for (int64_t i = 0; i < 64; ++i) {
        const float* kp = w.data() + i * 9;
        int nnz = 0;
        for (int j = 0; j < 9; ++j)
            if (kp[j] != 0.0f)
                ++nnz;
        EXPECT_LE(nnz, 4);
    }
}

TEST(Projections, MagnitudeKeepsExactCount)
{
    Rng rng(8);
    Tensor w = randomWeights(4, 4, rng);
    projectMagnitude(w, 37);
    EXPECT_EQ(w.countNonZero(), 37);
}

TEST(Projections, MagnitudeKeepsLargest)
{
    Tensor w(Shape{1, 1, 3, 3}, {1, -9, 2, -8, 3, 7, 0.5f, -0.1f, 6});
    projectMagnitude(w, 4);
    EXPECT_EQ(w[1], -9.0f);
    EXPECT_EQ(w[3], -8.0f);
    EXPECT_EQ(w[5], 7.0f);
    EXPECT_EQ(w[8], 6.0f);
    EXPECT_EQ(w.countNonZero(), 4);
}

TEST(Projections, FilterPruningZeroesWholeFilters)
{
    Rng rng(9);
    Tensor w = randomWeights(8, 4, rng);
    projectFilters(w, 3);
    int64_t live_filters = 0;
    for (int64_t f = 0; f < 8; ++f) {
        const float* p = w.data() + f * 36;
        bool any = false;
        for (int64_t i = 0; i < 36; ++i)
            if (p[i] != 0.0f)
                any = true;
        live_filters += any;
    }
    EXPECT_EQ(live_filters, 3);
}

TEST(Projections, ChannelPruningZeroesWholeChannels)
{
    Rng rng(10);
    Tensor w = randomWeights(4, 8, rng);
    projectChannels(w, 2);
    int64_t live_channels = 0;
    for (int64_t c = 0; c < 8; ++c) {
        bool any = false;
        for (int64_t f = 0; f < 4; ++f) {
            const float* kp = w.data() + (f * 8 + c) * 9;
            for (int j = 0; j < 9; ++j)
                if (kp[j] != 0.0f)
                    any = true;
        }
        live_channels += any;
    }
    EXPECT_EQ(live_channels, 2);
}

class ConnectivitySweep : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(ConnectivitySweep, AlphaRespectedAcrossRates)
{
    Rng rng(11);
    Tensor w = randomWeights(12, 12, rng);
    int64_t alpha = GetParam();
    projectConnectivity(w, alpha);
    EXPECT_EQ(countNonZeroKernels(w), alpha);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ConnectivitySweep,
                         ::testing::Values(0, 1, 10, 40, 100, 144));

}  // namespace
}  // namespace patdnn
