#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace patdnn {

void
logMessage(LogLevel level, const std::string& msg)
{
    const char* prefix = "INFO";
    switch (level) {
      case LogLevel::kInfo: prefix = "INFO"; break;
      case LogLevel::kWarn: prefix = "WARN"; break;
      case LogLevel::kError: prefix = "ERROR"; break;
    }
    std::fprintf(stderr, "[patdnn %s] %s\n", prefix, msg.c_str());
}

void
fatalError(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "[patdnn FATAL] %s:%d: %s\n", file, line, msg.c_str());
    std::abort();
}

}  // namespace patdnn
