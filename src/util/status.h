/**
 * @file
 * The library-wide typed error model: `Status` for operations that
 * either succeed or fail, `Result<T>` for operations that produce a
 * value or fail — the v1 public-API error contract.
 *
 * Every public entry point that can fail for a reason the caller must
 * handle (artifact I/O, serializer validation, serving admission, the
 * Compiler pipeline) returns one of these instead of the pre-v1 mix of
 * bool-plus-string-out-param, nullptr-plus-string-out-param and
 * ad-hoc exception types. PATDNN_CHECK stays what it always was: an
 * abort on violated *internal* invariants (library bugs), never on
 * inputs a caller could plausibly get wrong.
 *
 * A Status carries three fields:
 *   - code():    the ErrorCode category, the primary dispatch key;
 *   - message(): a human-readable diagnostic (never for matching);
 *   - detail():  an optional *stable machine-readable slug* ("" when
 *     unset) distinguishing failure modes that share a category — e.g.
 *     artifact loading reports kDataLoss for both a truncated stream
 *     and a checksum mismatch, with detail() telling them apart (see
 *     serve/artifact.h for the published slugs). Slugs are part of the
 *     API contract; messages are not.
 */
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "util/logging.h"

namespace patdnn {

/** Failure categories of the public API. */
enum class ErrorCode
{
    kOk = 0,            ///< Not an error; Status::ok() is true.
    kInvalidArgument,   ///< Malformed descriptor, option or input.
    kNotFound,          ///< Missing file, unknown model name or id.
    kDataLoss,          ///< Truncated / corrupted serialized bytes.
    kDeviceMismatch,    ///< Artifact fingerprint incompatible with host.
    kDeadlineExceeded,  ///< Request shed: deadline passed before dispatch.
    kCancelled,         ///< Request removed by an explicit cancel().
    kResourceExhausted, ///< Bounded queue / budget refused admission.
    kUnavailable,       ///< Target shut down or I/O target unreachable.
    kInternal,          ///< Library bug surfaced as an error.
};

/** Number of ErrorCode values (kOk included); the exhaustiveness tests
 * iterate [0, kErrorCodeCount). */
inline constexpr int kErrorCodeCount = 10;

/** Stable snake_case name of a code ("data_loss", ...). Part of the
 * API contract: log scrapers and tests may match on these. Unknown
 * values (casts from bad ints) map to "unknown". */
inline const char*
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::kOk:
        return "ok";
      case ErrorCode::kInvalidArgument:
        return "invalid_argument";
      case ErrorCode::kNotFound:
        return "not_found";
      case ErrorCode::kDataLoss:
        return "data_loss";
      case ErrorCode::kDeviceMismatch:
        return "device_mismatch";
      case ErrorCode::kDeadlineExceeded:
        return "deadline_exceeded";
      case ErrorCode::kCancelled:
        return "cancelled";
      case ErrorCode::kResourceExhausted:
        return "resource_exhausted";
      case ErrorCode::kUnavailable:
        return "unavailable";
      case ErrorCode::kInternal:
        return "internal";
    }
    return "unknown";
}

/** Success-or-typed-failure of one operation. Default-constructed =
 * OK. Cheap to move; the message is empty on the OK path. */
class [[nodiscard]] Status
{
  public:
    Status() = default;

    /** An error status. `code` must not be kOk (use OK()); `detail`,
     * when given, must point at storage with static lifetime (string
     * literals / the published slug constants). */
    Status(ErrorCode code, std::string message, const char* detail = "")
        : code_(code), message_(std::move(message)), detail_(detail)
    {
        PATDNN_CHECK(code != ErrorCode::kOk,
                     "error Status constructed with kOk: " << message_);
    }

    static Status OK() { return Status(); }

    bool ok() const { return code_ == ErrorCode::kOk; }
    ErrorCode code() const { return code_; }
    const std::string& message() const { return message_; }

    /** Stable machine-readable slug ("" when none was attached). */
    const char* detail() const { return detail_; }

    /** "ok" or "<code name>: <message>" for logs and test output. */
    std::string
    toString() const
    {
        if (ok())
            return "ok";
        return std::string(errorCodeName(code_)) + ": " + message_;
    }

  private:
    ErrorCode code_ = ErrorCode::kOk;
    std::string message_;
    const char* detail_ = "";
};

/**
 * Value-or-Status of one operation (expected-style). Implicitly
 * constructible from a T (success) or a non-OK Status (failure), so
 * `return someStatus;` and `return someValue;` both work in a
 * Result-returning function. Accessing value() on an error aborts —
 * callers check ok() (or use valueOr) first.
 */
template <typename T>
class [[nodiscard]] Result
{
  public:
    Result(T value) : value_(std::move(value)) {}
    Result(Status status) : status_(std::move(status))
    {
        PATDNN_CHECK(!status_.ok(), "Result constructed from an OK Status "
                                    "without a value");
    }

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    /** OK() when a value is present. */
    const Status& status() const { return status_; }
    ErrorCode code() const { return status_.code(); }

    T&
    value() &
    {
        PATDNN_CHECK(ok(), "Result::value() on error: " << status_.toString());
        return *value_;
    }
    const T&
    value() const&
    {
        PATDNN_CHECK(ok(), "Result::value() on error: " << status_.toString());
        return *value_;
    }
    T&&
    value() &&
    {
        PATDNN_CHECK(ok(), "Result::value() on error: " << status_.toString());
        return *std::move(value_);
    }

    T& operator*() & { return value(); }
    const T& operator*() const& { return value(); }
    T* operator->() { return &value(); }
    const T* operator->() const { return &value(); }

    /** The value, or `fallback` on error (copying T). */
    T
    valueOr(T fallback) const&
    {
        return ok() ? *value_ : std::move(fallback);
    }

  private:
    Status status_;  ///< OK() iff value_ holds the value.
    std::optional<T> value_;
};

}  // namespace patdnn

/** Propagate a non-OK Status out of a Status/Result-returning function. */
#define PATDNN_RETURN_IF_ERROR(expr)                                           \
    do {                                                                       \
        ::patdnn::Status status_tmp_ = (expr);                                 \
        if (!status_tmp_.ok())                                                 \
            return status_tmp_;                                                \
    } while (0)
