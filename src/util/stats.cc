#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace patdnn {

double
Timer::elapsedMs() const
{
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(now - start_).count();
}

double
Timer::elapsedUs() const
{
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(now - start_).count();
}

namespace {
double sortedPercentile(const std::vector<double>& sorted, double p);
}  // namespace

double
percentile(std::vector<double> samples, double p)
{
    std::sort(samples.begin(), samples.end());
    return sortedPercentile(samples, p);
}

namespace {

/** percentile() over an already-sorted sample (shared by the quad). */
double
sortedPercentile(const std::vector<double>& sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    if (p <= 0.0)
        return sorted.front();
    if (p >= 100.0)
        return sorted.back();
    double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted.size())
        return sorted.back();
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

}  // namespace

Percentiles
computePercentiles(std::vector<double> samples)
{
    Percentiles q;
    if (samples.empty())
        return q;
    std::sort(samples.begin(), samples.end());
    q.p50 = sortedPercentile(samples, 50.0);
    q.p90 = sortedPercentile(samples, 90.0);
    q.p99 = sortedPercentile(samples, 99.0);
    q.p999 = sortedPercentile(samples, 99.9);
    return q;
}

Summary
summarize(std::vector<double> samples)
{
    Summary s;
    if (samples.empty())
        return s;
    std::sort(samples.begin(), samples.end());
    s.min = samples.front();
    s.max = samples.back();
    size_t n = samples.size();
    s.median = (n % 2 == 1) ? samples[n / 2]
                            : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
    double sum = 0.0;
    for (double v : samples)
        sum += v;
    s.mean = sum / static_cast<double>(n);
    double var = 0.0;
    for (double v : samples)
        var += (v - s.mean) * (v - s.mean);
    s.stddev = n > 1 ? std::sqrt(var / static_cast<double>(n - 1)) : 0.0;
    return s;
}

std::vector<double>
timeRuns(const std::function<void()>& fn, int warmup, int reps)
{
    for (int i = 0; i < warmup; ++i)
        fn();
    std::vector<double> times;
    times.reserve(static_cast<size_t>(reps));
    for (int i = 0; i < reps; ++i) {
        Timer t;
        fn();
        times.push_back(t.elapsedMs());
    }
    return times;
}

double
medianTimeMs(const std::function<void()>& fn, int warmup, int reps)
{
    return summarize(timeRuns(fn, warmup, reps)).median;
}

}  // namespace patdnn
