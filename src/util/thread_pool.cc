#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace patdnn {

ThreadPool::ThreadPool(int n_threads) : n_threads_(std::max(1, n_threads))
{
    // Worker 0 is the calling thread; spawn the rest.
    for (int i = 1; i < n_threads_; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stop_ = true;
    }
    cv_start_.notify_all();
    for (auto& w : workers_)
        w.join();
}

void
ThreadPool::runTask(const Task& task, int worker_id)
{
    int64_t chunk = (task.count + n_threads_ - 1) / n_threads_;
    int64_t begin = std::min<int64_t>(task.count, worker_id * chunk);
    int64_t end = std::min<int64_t>(task.count, begin + chunk);
    if (begin < end)
        (*task.body)(begin, end);
}

void
ThreadPool::workerLoop(int worker_id)
{
    uint64_t seen = 0;
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lk(mutex_);
            cv_start_.wait(lk, [&] { return stop_ || generation_ != seen; });
            if (stop_)
                return;
            seen = generation_;
            task = task_;
        }
        runTask(task, worker_id);
        {
            std::lock_guard<std::mutex> lk(mutex_);
            if (--pending_ == 0)
                cv_done_.notify_one();
        }
    }
}

void
ThreadPool::parallelChunks(
    int64_t count, const std::function<void(int64_t, int64_t)>& body)
{
    if (count <= 0)
        return;
    if (n_threads_ == 1 || count == 1) {
        body(0, count);
        return;
    }
    // One fork-join at a time: the generation/pending protocol below
    // assumes a single submitter, so concurrent callers take turns.
    std::lock_guard<std::mutex> submit_lk(submit_mutex_);
    Task task;
    task.body = &body;
    task.count = count;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        task_ = task;
        pending_ = n_threads_ - 1;
        ++generation_;
    }
    cv_start_.notify_all();
    runTask(task, 0);
    {
        std::unique_lock<std::mutex> lk(mutex_);
        cv_done_.wait(lk, [&] { return pending_ == 0; });
    }
}

void
ThreadPool::parallelFor(int64_t count, const std::function<void(int64_t)>& body)
{
    parallelChunks(count, [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i)
            body(i);
    });
}

ThreadPool&
ThreadPool::global()
{
    static ThreadPool pool(static_cast<int>(std::thread::hardware_concurrency()));
    return pool;
}

}  // namespace patdnn
