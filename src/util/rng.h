/**
 * @file
 * Deterministic random number generation.
 *
 * All stochastic components (weight init, dataset synthesis, the genetic
 * tuner, ADMM SGD shuffling) draw from a seeded Rng so every experiment
 * in EXPERIMENTS.md is exactly reproducible.
 */
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace patdnn {

/** A seeded wrapper around std::mt19937_64 with convenience samplers. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

    /** Uniform float in [lo, hi). */
    float uniform(float lo = 0.0f, float hi = 1.0f);

    /** Standard normal (mean 0, std 1) scaled by std. */
    float normal(float mean = 0.0f, float stddev = 1.0f);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Bernoulli draw with probability p of true. */
    bool bernoulli(double p);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T>& v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = static_cast<size_t>(uniformInt(0, static_cast<int64_t>(i) - 1));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Access the underlying engine for std distributions. */
    std::mt19937_64& engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

}  // namespace patdnn
