#include "util/rng.h"

namespace patdnn {

float
Rng::uniform(float lo, float hi)
{
    std::uniform_real_distribution<float> dist(lo, hi);
    return dist(engine_);
}

float
Rng::normal(float mean, float stddev)
{
    std::normal_distribution<float> dist(mean, stddev);
    return dist(engine_);
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
}

bool
Rng::bernoulli(double p)
{
    std::bernoulli_distribution dist(p);
    return dist(engine_);
}

}  // namespace patdnn
