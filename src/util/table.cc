#include "util/table.h"

#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace patdnn {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void
Table::addRow(std::vector<std::string> cells)
{
    PATDNN_CHECK_EQ(cells.size(), headers_.size(), "table row width mismatch");
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::render() const
{
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size())
                out << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        out << "\n";
    };
    emit_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out << std::string(total, '-') << "\n";
    for (const auto& row : rows_)
        emit_row(row);
    return out.str();
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fflush(stdout);
}

}  // namespace patdnn
