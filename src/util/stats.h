/**
 * @file
 * Timing and summary-statistics helpers used by the benchmark harnesses.
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

namespace patdnn {

/** Monotonic wall-clock timer with millisecond/microsecond readouts. */
class Timer
{
  public:
    Timer() { reset(); }

    /** Restart the timer. */
    void reset() { start_ = std::chrono::steady_clock::now(); }

    /** Elapsed time in milliseconds since construction/reset. */
    double elapsedMs() const;

    /** Elapsed time in microseconds since construction/reset. */
    double elapsedUs() const;

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Summary statistics over a sample of measurements. */
struct Summary
{
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    double median = 0.0;
};

/** Compute summary statistics of a sample (empty sample -> all zeros). */
Summary summarize(std::vector<double> samples);

/**
 * The p-th percentile (p in [0, 100]) of a sample using linear
 * interpolation between closest ranks (NOT nearest-rank truncation:
 * percentile({1,2,3,4}, 75) == 3.25, pinned by util_test); 0 for an
 * empty sample. Used by the serving layer for p50/p99 latency
 * reporting.
 */
double percentile(std::vector<double> samples, double p);

/**
 * The standard latency-reporting percentile quad. Produced from exact
 * samples by computePercentiles() and from bucketed data by
 * HistogramSnapshot::percentiles() (obs/metrics.h), so the serving
 * stats and the metrics exporters publish the same shape.
 */
struct Percentiles
{
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
};

/** All four percentiles of a sample with one sort (empty -> zeros). */
Percentiles computePercentiles(std::vector<double> samples);

/**
 * Time fn over repeated runs.
 *
 * Runs `warmup` untimed iterations followed by `reps` timed ones and
 * returns the per-iteration times in milliseconds.
 */
std::vector<double> timeRuns(const std::function<void()>& fn, int warmup, int reps);

/** Median time in ms of fn over reps runs after warmup. */
double medianTimeMs(const std::function<void()>& fn, int warmup, int reps);

}  // namespace patdnn
