/**
 * @file
 * Fixed-width text table printer used by every benchmark harness to emit
 * the rows/series the paper's tables and figures report.
 */
#pragma once

#include <string>
#include <vector>

namespace patdnn {

/** Collects rows of string cells and renders an aligned text table. */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Render with column alignment, header rule, and 2-space gutters. */
    std::string render() const;

    /** Render to stdout. */
    void print() const;

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 2);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace patdnn
