/**
 * @file
 * A fixed-size worker thread pool with a parallel-for primitive.
 *
 * This is the substrate standing in for the paper's mobile execution
 * backends: the CPU path maps filter groups onto pool workers (the
 * paper's "8 threads on CPU"), and the GPU-like device preset maps each
 * filter group to a "thread block" by scheduling groups as indivisible
 * chunks. Static chunked scheduling is used deliberately so that load
 * imbalance between filters of different lengths is visible end-to-end,
 * which is the effect Filter Kernel Reorder exists to fix (Fig. 14a).
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace patdnn {

/** Fixed-size thread pool executing [begin, end) index ranges. */
class ThreadPool
{
  public:
    /** Create a pool with n workers (n >= 1; 1 means run inline). */
    explicit ThreadPool(int n_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of workers (including the calling thread's share). */
    int numThreads() const { return n_threads_; }

    /**
     * Run body(i) for every i in [0, count) across the pool.
     *
     * Iterations are divided into numThreads() contiguous static chunks.
     * Blocks until all iterations finish. Safe to call repeatedly and
     * from multiple threads concurrently (concurrent submitters are
     * serialized, one fork-join at a time); not reentrant from inside a
     * body.
     */
    void parallelFor(int64_t count, const std::function<void(int64_t)>& body);

    /**
     * Run body(chunk_begin, chunk_end) once per worker over [0, count).
     *
     * Lower overhead than parallelFor when the body can iterate its own
     * range; chunking is static and contiguous. Same concurrency
     * contract as parallelFor.
     */
    void parallelChunks(
        int64_t count,
        const std::function<void(int64_t, int64_t)>& body);

    /** Process-wide pool sized to the hardware concurrency. */
    static ThreadPool& global();

  private:
    struct Task
    {
        const std::function<void(int64_t, int64_t)>* body = nullptr;
        int64_t count = 0;
    };

    void workerLoop(int worker_id);
    void runTask(const Task& task, int worker_id);

    int n_threads_;
    std::vector<std::thread> workers_;
    /// Serializes whole fork-joins so independent threads (e.g. several
    /// inference sessions sharing one device) may submit concurrently.
    std::mutex submit_mutex_;
    std::mutex mutex_;
    std::condition_variable cv_start_;
    std::condition_variable cv_done_;
    Task task_;
    uint64_t generation_ = 0;
    int pending_ = 0;
    bool stop_ = false;
};

}  // namespace patdnn
