/**
 * @file
 * Logging and invariant-checking helpers used across the PatDNN library.
 *
 * Conventions follow the paper's split between user errors and internal
 * bugs: PATDNN_CHECK aborts on violated invariants (library bug or
 * malformed input the caller promised not to pass), while warn() keeps
 * running.
 */
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace patdnn {

/** Severity levels for log messages. */
enum class LogLevel { kInfo, kWarn, kError };

/** Emit a log line to stderr with a severity prefix. */
void logMessage(LogLevel level, const std::string& msg);

/** Abort the process after printing a fatal message with location info. */
[[noreturn]] void fatalError(const char* file, int line, const std::string& msg);

namespace detail {

/** Stream-collecting helper so CHECK macros can use << syntax. */
class MessageCollector
{
  public:
    template <typename T>
    MessageCollector&
    operator<<(const T& v)
    {
        stream_ << v;
        return *this;
    }

    std::string str() const { return stream_.str(); }

  private:
    std::ostringstream stream_;
};

}  // namespace detail

}  // namespace patdnn

/** Abort with a message if the condition does not hold. */
#define PATDNN_CHECK(cond, msg)                                               \
    do {                                                                       \
        if (!(cond)) {                                                         \
            ::patdnn::detail::MessageCollector mc_;                            \
            mc_ << "CHECK failed: " #cond " — " << msg;                        \
            ::patdnn::fatalError(__FILE__, __LINE__, mc_.str());               \
        }                                                                      \
    } while (0)

/** Convenience comparison checks that print both operands. */
#define PATDNN_CHECK_EQ(a, b, msg) \
    PATDNN_CHECK((a) == (b), msg << " (" << (a) << " vs " << (b) << ")")
#define PATDNN_CHECK_LE(a, b, msg) \
    PATDNN_CHECK((a) <= (b), msg << " (" << (a) << " vs " << (b) << ")")
#define PATDNN_CHECK_LT(a, b, msg) \
    PATDNN_CHECK((a) < (b), msg << " (" << (a) << " vs " << (b) << ")")
#define PATDNN_CHECK_GE(a, b, msg) \
    PATDNN_CHECK((a) >= (b), msg << " (" << (a) << " vs " << (b) << ")")
#define PATDNN_CHECK_GT(a, b, msg) \
    PATDNN_CHECK((a) > (b), msg << " (" << (a) << " vs " << (b) << ")")
