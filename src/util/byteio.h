/**
 * @file
 * Little-endian byte-stream primitives shared by the binary
 * serializers (FKW records in src/sparse/fkw.cc, model artifacts in
 * src/serve/artifact.cc). Writers append to a byte vector; the Reader
 * is bounds-checked and latches `ok = false` on the first overrun so
 * callers can parse a whole record and test once.
 */
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace patdnn {
namespace bytes {

inline void
putU32(std::vector<uint8_t>& out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

inline void
putU64(std::vector<uint8_t>& out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

inline void
putI64(std::vector<uint8_t>& out, int64_t v)
{
    putU64(out, static_cast<uint64_t>(v));
}

inline void
putF64(std::vector<uint8_t>& out, double v)
{
    putU64(out, std::bit_cast<uint64_t>(v));
}

/** Bounds-checked little-endian reader over [data, data + size). */
struct Reader
{
    const uint8_t* data;
    size_t size;
    size_t pos = 0;
    bool ok = true;

    /** True iff n more bytes are available; latches ok on failure. */
    bool
    need(size_t n)
    {
        if (!ok || size - pos < n)
            ok = false;
        return ok;
    }

    uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return data[pos++];
    }

    uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(data[pos + static_cast<size_t>(i)])
                 << (8 * i);
        pos += 4;
        return v;
    }

    uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(data[pos + static_cast<size_t>(i)])
                 << (8 * i);
        pos += 8;
        return v;
    }

    int64_t
    i64()
    {
        return static_cast<int64_t>(u64());
    }

    double
    f64()
    {
        return std::bit_cast<double>(u64());
    }
};

}  // namespace bytes
}  // namespace patdnn
