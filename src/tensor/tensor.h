/**
 * @file
 * Dense float32 tensor with 64-byte-aligned storage.
 *
 * Layout is row-major over the Shape. Activations use NCHW and conv
 * weights use OIHW throughout the library (the paper's W in
 * R^{P x Q x C x C_{k+1}} stored filter-major).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/shape.h"
#include "util/rng.h"

namespace patdnn {

/** Owning dense float tensor. Copyable (deep) and movable.
 *
 * A Tensor can also be a non-owning *view* over caller-managed storage
 * (Tensor::view()): same API, no allocation. Views exist for planned
 * workspaces, whose activation slots alias one session arena
 * (rt/memplan.h). Copying a view materializes an owning deep copy, so
 * a value copied out of an arena-backed workspace never dangles when
 * the arena is reused. */
class Tensor
{
  public:
    Tensor() = default;

    /** Allocate a zero-initialized tensor of the given shape. */
    explicit Tensor(Shape shape);

    /** Allocate and fill from values (size must match shape.numel()). */
    Tensor(Shape shape, std::vector<float> values);

    Tensor(const Tensor& other);             ///< Deep copy (views materialize).
    Tensor& operator=(const Tensor& other);  ///< Deep copy (views materialize).
    Tensor(Tensor&&) noexcept = default;
    Tensor& operator=(Tensor&&) noexcept = default;
    ~Tensor() = default;

    /**
     * Non-owning view of shape.numel() floats at `data`, which must
     * outlive the view and every move of it. The caller is responsible
     * for alignment (arena views are 64-byte aligned by construction).
     */
    static Tensor view(float* data, Shape shape);

    /** True when this tensor aliases external storage. */
    bool isView() const { return ext_ != nullptr; }

    const Shape& shape() const { return shape_; }
    int64_t numel() const { return shape_.numel(); }

    float* data() { return ext_ != nullptr ? ext_ : data_.data(); }
    const float* data() const { return ext_ != nullptr ? ext_ : data_.data(); }

    float& operator[](int64_t i) { return data()[static_cast<size_t>(i)]; }
    float operator[](int64_t i) const { return data()[static_cast<size_t>(i)]; }

    /** Element access for rank-4 tensors (bounds unchecked in release). */
    float&
    at4(int64_t a, int64_t b, int64_t c, int64_t d)
    {
        return data()[static_cast<size_t>(
            ((a * shape_.dim(1) + b) * shape_.dim(2) + c) * shape_.dim(3) + d)];
    }

    float
    at4(int64_t a, int64_t b, int64_t c, int64_t d) const
    {
        return data()[static_cast<size_t>(
            ((a * shape_.dim(1) + b) * shape_.dim(2) + c) * shape_.dim(3) + d)];
    }

    /** Element access for rank-2 tensors. */
    float& at2(int64_t r, int64_t c) { return data()[static_cast<size_t>(r * shape_.dim(1) + c)]; }
    float at2(int64_t r, int64_t c) const
    {
        return data()[static_cast<size_t>(r * shape_.dim(1) + c)];
    }

    /** Set every element to v. */
    void fill(float v);

    /** Fill with N(mean, stddev) draws from rng. */
    void fillNormal(Rng& rng, float mean = 0.0f, float stddev = 1.0f);

    /** Fill with U[lo, hi) draws from rng. */
    void fillUniform(Rng& rng, float lo = 0.0f, float hi = 1.0f);

    /** Kaiming/He-style init for a conv/fc weight with fan_in inputs. */
    void fillHe(Rng& rng, int64_t fan_in);

    /** Number of non-zero elements. */
    int64_t countNonZero() const;

    /** Squared L2 norm of all elements. */
    double normSq() const;

    /** Max |a - b| over elements; shapes must match. */
    static double maxAbsDiff(const Tensor& a, const Tensor& b);

    /** Reshape in place; numel must be preserved. */
    void reshape(Shape shape);

  private:
    /** Elements actually backed by storage: a default (rank-0) tensor
     * reports numel() == 1 but owns nothing, so fills and reductions
     * must size themselves off the storage, not the shape. */
    size_t storageElems() const
    {
        return ext_ != nullptr ? static_cast<size_t>(shape_.numel())
                               : data_.size();
    }

    Shape shape_;
    float* ext_ = nullptr;  ///< Non-null: view over external storage.
    // 64-byte alignment keeps SIMD loads in the microkernels aligned.
    struct AlignedAllocator
    {
        using value_type = float;
        AlignedAllocator() = default;
        template <typename U>
        AlignedAllocator(const AlignedAllocator&)
        {
        }
        float* allocate(size_t n);
        void deallocate(float* p, size_t n) noexcept;
        bool operator==(const AlignedAllocator&) const { return true; }
        bool operator!=(const AlignedAllocator&) const { return false; }
        template <typename U>
        struct rebind
        {
            using other = AlignedAllocator;
        };
    };
    std::vector<float, AlignedAllocator> data_;
};

}  // namespace patdnn
