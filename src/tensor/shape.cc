#include "tensor/shape.h"

#include <sstream>

#include "util/logging.h"

namespace patdnn {

int64_t
Shape::dim(int i) const
{
    PATDNN_CHECK(i >= 0 && i < rank(), "shape dim " << i << " out of range for " << str());
    return dims_[static_cast<size_t>(i)];
}

int64_t
Shape::numel() const
{
    int64_t n = 1;
    for (int64_t d : dims_)
        n *= d;
    return n;
}

std::vector<int64_t>
Shape::strides() const
{
    std::vector<int64_t> s(dims_.size(), 1);
    for (int i = static_cast<int>(dims_.size()) - 2; i >= 0; --i)
        s[static_cast<size_t>(i)] =
            s[static_cast<size_t>(i) + 1] * dims_[static_cast<size_t>(i) + 1];
    return s;
}

std::string
Shape::str() const
{
    std::ostringstream out;
    out << "[";
    for (size_t i = 0; i < dims_.size(); ++i) {
        out << dims_[i];
        if (i + 1 < dims_.size())
            out << ", ";
    }
    out << "]";
    return out.str();
}

}  // namespace patdnn
