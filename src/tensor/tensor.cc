#include "tensor/tensor.h"

#include <cmath>
#include <cstdlib>
#include <new>

#include "util/logging.h"

namespace patdnn {

float*
Tensor::AlignedAllocator::allocate(size_t n)
{
    size_t bytes = ((n * sizeof(float) + 63) / 64) * 64;
    void* p = std::aligned_alloc(64, bytes);
    if (p == nullptr)
        throw std::bad_alloc();
    return static_cast<float*>(p);
}

void
Tensor::AlignedAllocator::deallocate(float* p, size_t) noexcept
{
    std::free(p);
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape))
{
    data_.assign(static_cast<size_t>(shape_.numel()), 0.0f);
}

Tensor::Tensor(Shape shape, std::vector<float> values) : shape_(std::move(shape))
{
    PATDNN_CHECK_EQ(static_cast<int64_t>(values.size()), shape_.numel(),
                    "tensor init size mismatch for " << shape_.str());
    data_.assign(values.begin(), values.end());
}

Tensor::Tensor(const Tensor& other) : shape_(other.shape_)
{
    // Copying a view materializes owned storage: values handed out of
    // an arena-backed workspace must survive the arena's next reuse.
    if (other.ext_ != nullptr)
        data_.assign(other.ext_, other.ext_ + other.numel());
    else
        data_ = other.data_;
}

Tensor&
Tensor::operator=(const Tensor& other)
{
    if (this == &other)
        return *this;
    shape_ = other.shape_;
    ext_ = nullptr;
    if (other.ext_ != nullptr)
        data_.assign(other.ext_, other.ext_ + other.numel());
    else
        data_ = other.data_;
    return *this;
}

Tensor
Tensor::view(float* data, Shape shape)
{
    PATDNN_CHECK(data != nullptr, "tensor view needs storage");
    PATDNN_CHECK_GT(shape.rank(), 0, "tensor view needs a shaped extent");
    Tensor t;
    t.shape_ = std::move(shape);
    t.ext_ = data;
    return t;
}

void
Tensor::fill(float v)
{
    float* p = data();
    for (size_t i = 0, n = storageElems(); i < n; ++i)
        p[i] = v;
}

void
Tensor::fillNormal(Rng& rng, float mean, float stddev)
{
    float* p = data();
    for (size_t i = 0, n = storageElems(); i < n; ++i)
        p[i] = rng.normal(mean, stddev);
}

void
Tensor::fillUniform(Rng& rng, float lo, float hi)
{
    float* p = data();
    for (size_t i = 0, n = storageElems(); i < n; ++i)
        p[i] = rng.uniform(lo, hi);
}

void
Tensor::fillHe(Rng& rng, int64_t fan_in)
{
    PATDNN_CHECK_GT(fan_in, 0, "fan_in must be positive");
    float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
    fillNormal(rng, 0.0f, stddev);
}

int64_t
Tensor::countNonZero() const
{
    const float* p = data();
    int64_t n = 0;
    for (size_t i = 0, e = storageElems(); i < e; ++i)
        if (p[i] != 0.0f)
            ++n;
    return n;
}

double
Tensor::normSq() const
{
    const float* p = data();
    double s = 0.0;
    for (size_t i = 0, e = storageElems(); i < e; ++i)
        s += static_cast<double>(p[i]) * p[i];
    return s;
}

double
Tensor::maxAbsDiff(const Tensor& a, const Tensor& b)
{
    PATDNN_CHECK(a.shape() == b.shape(),
                 "shape mismatch " << a.shape().str() << " vs " << b.shape().str());
    double m = 0.0;
    for (int64_t i = 0; i < a.numel(); ++i) {
        double d = std::fabs(static_cast<double>(a[i]) - b[i]);
        if (d > m)
            m = d;
    }
    return m;
}

void
Tensor::reshape(Shape shape)
{
    PATDNN_CHECK_EQ(shape.numel(), shape_.numel(), "reshape must preserve numel");
    shape_ = std::move(shape);
}

}  // namespace patdnn
