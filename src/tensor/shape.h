/**
 * @file
 * Tensor shape: a small vector of dimension extents with stride helpers.
 */
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace patdnn {

/** Dimension extents of a dense tensor, outermost dimension first. */
class Shape
{
  public:
    Shape() = default;
    Shape(std::initializer_list<int64_t> dims) : dims_(dims) {}
    explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

    /** Number of dimensions. */
    int rank() const { return static_cast<int>(dims_.size()); }

    /** Extent of dimension i (0-based, bounds-checked). */
    int64_t dim(int i) const;

    int64_t operator[](int i) const { return dim(i); }

    /** Total number of elements (1 for rank-0). */
    int64_t numel() const;

    /** Row-major strides, in elements. */
    std::vector<int64_t> strides() const;

    /** Render as e.g. "[64, 3, 3, 3]". */
    std::string str() const;

    bool operator==(const Shape& o) const { return dims_ == o.dims_; }
    bool operator!=(const Shape& o) const { return !(*this == o); }

    const std::vector<int64_t>& dims() const { return dims_; }

  private:
    std::vector<int64_t> dims_;
};

}  // namespace patdnn
