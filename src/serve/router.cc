#include "serve/router.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"

namespace patdnn {

namespace {

/** Process-global routing metrics (stable references; see
 * obs/metrics.h registry contract). */
struct RouterMetrics
{
    Counter& routed = MetricsRegistry::global().counter("serve.router.routed");
    Counter& failovers =
        MetricsRegistry::global().counter("serve.router.failovers");
    Counter& shed = MetricsRegistry::global().counter("serve.router.shed");
    Counter& ejections =
        MetricsRegistry::global().counter("serve.router.ejections");
    Counter& reinstatements =
        MetricsRegistry::global().counter("serve.router.reinstatements");
};

RouterMetrics&
metrics()
{
    static RouterMetrics m;
    return m;
}

/** splitmix64: cheap, well-mixed 64-bit hash for ring points and
 * request keys (deterministic across platforms and runs). */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** A refusal the router retries elsewhere (vs. a caller error it
 * propagates as-is). */
bool
failoverWorthy(ErrorCode code)
{
    return code != ErrorCode::kInvalidArgument;
}

}  // namespace

// ---------------------------------------------------------------------------
// LocalReplica
// ---------------------------------------------------------------------------

LocalReplica::LocalReplica(std::shared_ptr<InferenceServer> server)
    : server_(std::move(server))
{
    PATDNN_CHECK(server_ != nullptr, "LocalReplica needs a server");
}

Result<RequestId>
LocalReplica::trySubmit(Tensor input, std::future<Tensor>* result,
                        SubmitOptions sopts)
{
    return server_->trySubmit(std::move(input), result, sopts);
}

ServerStats
LocalReplica::stats() const
{
    return server_->stats();
}

std::string
LocalReplica::describe() const
{
    return "local";
}

void
LocalReplica::drain()
{
    server_->drain();
}

void
LocalReplica::shutdown()
{
    server_->shutdown();
}

// ---------------------------------------------------------------------------
// ShardRouter
// ---------------------------------------------------------------------------

const char*
routePolicyName(RoutePolicy policy)
{
    switch (policy) {
      case RoutePolicy::kConsistentHash:
        return "consistent-hash";
      case RoutePolicy::kLeastLoaded:
        return "least-loaded";
    }
    return "unknown";
}

ShardRouter::ShardRouter(RouterOptions opts)
    : opts_(opts), clock_(opts.clock ? opts.clock : systemServeClock())
{
    opts_.eject_after_failures = std::max(1, opts_.eject_after_failures);
    opts_.reinstate_after_ms = std::max(0.0, opts_.reinstate_after_ms);
    opts_.vnodes = std::max(1, opts_.vnodes);
}

ShardRouter::~ShardRouter()
{
    shutdownAll();
}

int
ShardRouter::addReplica(const std::string& model,
                        std::shared_ptr<ReplicaEndpoint> endpoint)
{
    PATDNN_CHECK(endpoint != nullptr, "router replica endpoint is null");
    std::lock_guard<std::mutex> lk(mutex_);
    Group& group = groups_[model];
    const int idx = static_cast<int>(group.replicas.size());
    Replica replica;
    replica.endpoint = std::move(endpoint);
    group.replicas.push_back(std::move(replica));
    // Rebuild the ring with the new replica's virtual nodes. Points mix
    // the replica index with the vnode counter, double-hashed so the
    // ring lives in a different domain than the single-hashed request
    // keys — otherwise small integer keys would alias replica 0's
    // vnodes exactly (mix64(key) == ring point mix64(v)) and the walk
    // would start on replica 0 for every such key.
    for (int v = 0; v < opts_.vnodes; ++v)
        group.ring.emplace_back(
            mix64(mix64((static_cast<uint64_t>(idx) << 32) |
                        static_cast<uint64_t>(v))),
            idx);
    std::sort(group.ring.begin(), group.ring.end());
    return idx;
}

Status
ShardRouter::addLocalReplicas(const std::string& model,
                              std::shared_ptr<const CompiledModel> compiled,
                              int n, ServerOptions server_opts)
{
    if (!compiled)
        return Status(ErrorCode::kInvalidArgument,
                      "router: null model for '" + model + "'");
    if (n < 1)
        return Status(ErrorCode::kInvalidArgument,
                      "router: replica count must be >= 1");
    if (server_opts.admission && server_opts.admission_name.empty())
        server_opts.admission_name = model;
    for (int i = 0; i < n; ++i)
        addReplica(model, std::make_shared<LocalReplica>(
                              std::make_shared<InferenceServer>(compiled,
                                                                server_opts)));
    return Status::OK();
}

size_t
ShardRouter::replicaCount(const std::string& model) const
{
    std::lock_guard<std::mutex> lk(mutex_);
    auto it = groups_.find(model);
    return it == groups_.end() ? 0 : it->second.replicas.size();
}

std::vector<int>
ShardRouter::candidatesLocked(Group& group, uint64_t key)
{
    // Probation pass: an ejection window that has elapsed on the
    // router's clock reinstates the replica — one refusal away from
    // re-ejection, one success away from full health.
    const ServeClock::TimePoint now = clock_->now();
    for (Replica& r : group.replicas) {
        if (r.ejected && now >= r.eject_until) {
            r.ejected = false;
            r.consecutive_failures = opts_.eject_after_failures - 1;
            ++r.reinstatements;
            ++group.reinstatements;
            metrics().reinstatements.inc();
        }
    }
    std::vector<int> order;
    order.reserve(group.replicas.size());
    if (opts_.policy == RoutePolicy::kConsistentHash && !group.ring.empty()) {
        // Walk the ring from the key's point, collecting each distinct
        // replica the first time it appears: the head is the key's
        // home replica, the tail the stable failover order.
        const uint64_t h = mix64(key);
        const size_t start = static_cast<size_t>(
            std::lower_bound(group.ring.begin(), group.ring.end(),
                             std::make_pair(h, std::numeric_limits<int>::min())) -
            group.ring.begin());
        std::vector<bool> seen(group.replicas.size(), false);
        for (size_t step = 0; step < group.ring.size(); ++step) {
            const size_t pos = (start + step) % group.ring.size();
            const int idx = group.ring[pos].second;
            if (seen[static_cast<size_t>(idx)])
                continue;
            seen[static_cast<size_t>(idx)] = true;
            if (!group.replicas[static_cast<size_t>(idx)].ejected)
                order.push_back(idx);
        }
    } else {
        for (int idx = 0; idx < static_cast<int>(group.replicas.size()); ++idx)
            if (!group.replicas[static_cast<size_t>(idx)].ejected)
                order.push_back(idx);
    }
    return order;
}

void
ShardRouter::recordSuccessLocked(Group& group, int idx)
{
    Replica& r = group.replicas[static_cast<size_t>(idx)];
    r.consecutive_failures = 0;
    ++r.routed;
    ++group.routed;
    metrics().routed.inc();
}

void
ShardRouter::recordFailureLocked(Group& group, int idx)
{
    Replica& r = group.replicas[static_cast<size_t>(idx)];
    ++r.refusals;
    if (++r.consecutive_failures >= opts_.eject_after_failures && !r.ejected) {
        r.ejected = true;
        r.eject_until = clock_->now() +
                        std::chrono::duration_cast<ServeClock::Duration>(
                            std::chrono::duration<double, std::milli>(
                                opts_.reinstate_after_ms));
        ++r.ejections;
        ++group.ejections;
        metrics().ejections.inc();
    }
}

Result<RequestId>
ShardRouter::trySubmit(const std::string& model, uint64_t key, Tensor input,
                       std::future<Tensor>* result, SubmitOptions sopts,
                       int* replica)
{
    if (replica != nullptr)
        *replica = -1;
    std::vector<int> order;
    std::vector<std::shared_ptr<ReplicaEndpoint>> endpoints;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        auto it = groups_.find(model);
        if (it == groups_.end() || it->second.replicas.empty())
            return Status(ErrorCode::kNotFound,
                          "router: no replicas for model '" + model + "'");
        order = candidatesLocked(it->second, key);
        if (order.empty()) {
            ++it->second.shed;
            metrics().shed.inc();
            return Status(ErrorCode::kUnavailable,
                          "router: every replica of '" + model +
                              "' is ejected");
        }
        endpoints.reserve(order.size());
        for (int idx : order)
            endpoints.push_back(
                it->second.replicas[static_cast<size_t>(idx)].endpoint);
    }
    if (opts_.policy == RoutePolicy::kLeastLoaded && order.size() > 1) {
        // Queue depths come from the endpoints (outside the router
        // lock — a slow replica must not block routing); re-sort the
        // candidate list shallowest-first, index as the tie-break.
        std::vector<std::pair<size_t, int>> by_depth;
        by_depth.reserve(order.size());
        for (size_t i = 0; i < order.size(); ++i)
            by_depth.emplace_back(endpoints[i]->stats().queue_depth, order[i]);
        std::vector<std::shared_ptr<ReplicaEndpoint>> sorted_eps;
        std::vector<int> sorted_order;
        std::vector<size_t> perm(order.size());
        for (size_t i = 0; i < perm.size(); ++i)
            perm[i] = i;
        std::sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
            return by_depth[a] < by_depth[b];
        });
        for (size_t i : perm) {
            sorted_eps.push_back(endpoints[i]);
            sorted_order.push_back(order[i]);
        }
        endpoints = std::move(sorted_eps);
        order = std::move(sorted_order);
    }

    Status last(ErrorCode::kUnavailable, "router: no replica accepted");
    for (size_t attempt = 0; attempt < order.size(); ++attempt) {
        const int idx = order[attempt];
        const bool final_attempt = attempt + 1 == order.size();
        if (attempt > 0) {
            std::lock_guard<std::mutex> lk(mutex_);
            ++groups_[model].failovers;
            metrics().failovers.inc();
        }
        // Retries need the tensor back after a refusal, so every
        // non-final attempt submits a copy and only the last moves.
        Result<RequestId> r = endpoints[attempt]->trySubmit(
            final_attempt ? std::move(input) : Tensor(input), result, sopts);
        std::lock_guard<std::mutex> lk(mutex_);
        Group& group = groups_[model];
        if (r.ok()) {
            recordSuccessLocked(group, idx);
            if (replica != nullptr)
                *replica = idx;
            return r;
        }
        if (!failoverWorthy(r.code()))
            return r;  // The request's own fault; no health penalty.
        recordFailureLocked(group, idx);
        last = r.status();
    }
    {
        std::lock_guard<std::mutex> lk(mutex_);
        ++groups_[model].shed;
        metrics().shed.inc();
    }
    return last;
}

std::future<Tensor>
ShardRouter::submit(const std::string& model, uint64_t key, Tensor input,
                    SubmitOptions sopts, int* replica)
{
    std::future<Tensor> result;
    Result<RequestId> r =
        trySubmit(model, key, std::move(input), &result, sopts, replica);
    if (r.ok())
        return result;
    std::promise<Tensor> p;
    p.set_exception(std::make_exception_ptr(ServeError(
        r.code(), r.status().message(), r.status().detail())));
    return p.get_future();
}

RouterStats
ShardRouter::stats(const std::string& model) const
{
    RouterStats s;
    std::vector<std::shared_ptr<ReplicaEndpoint>> endpoints;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        auto it = groups_.find(model);
        if (it == groups_.end())
            return s;
        const Group& group = it->second;
        s.routed = group.routed;
        s.failovers = group.failovers;
        s.shed = group.shed;
        s.ejections = group.ejections;
        s.reinstatements = group.reinstatements;
        s.replicas.reserve(group.replicas.size());
        for (const Replica& r : group.replicas) {
            RouterReplicaStats rs;
            rs.describe = r.endpoint->describe();
            rs.ejected = r.ejected;
            rs.routed = r.routed;
            rs.refusals = r.refusals;
            rs.ejections = r.ejections;
            rs.reinstatements = r.reinstatements;
            s.replicas.push_back(std::move(rs));
            endpoints.push_back(r.endpoint);
        }
    }
    // Queue depths outside the lock (each is a replica-local snapshot).
    for (size_t i = 0; i < endpoints.size(); ++i)
        s.replicas[i].queue_depth = endpoints[i]->stats().queue_depth;
    return s;
}

std::vector<std::string>
ShardRouter::models() const
{
    std::vector<std::string> out;
    std::lock_guard<std::mutex> lk(mutex_);
    out.reserve(groups_.size());
    for (const auto& [name, group] : groups_)
        out.push_back(name);
    return out;
}

void
ShardRouter::drainAll()
{
    std::vector<std::shared_ptr<ReplicaEndpoint>> endpoints;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        for (const auto& [name, group] : groups_)
            for (const Replica& r : group.replicas)
                endpoints.push_back(r.endpoint);
    }
    for (const auto& e : endpoints)
        e->drain();
}

void
ShardRouter::shutdownAll()
{
    std::vector<std::shared_ptr<ReplicaEndpoint>> endpoints;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        for (const auto& [name, group] : groups_)
            for (const Replica& r : group.replicas)
                endpoints.push_back(r.endpoint);
    }
    for (const auto& e : endpoints)
        e->shutdown();
}

}  // namespace patdnn
