#include "serve/clock.h"

#include <algorithm>
#include <cmath>

namespace patdnn {

ServeClock::TimePoint
ServeClock::after(double ms) const
{
    if (ms <= 0.0)
        return now();
    // Saturate: a huge relative timeout must not overflow past max().
    Duration d = std::chrono::duration_cast<Duration>(
        std::chrono::duration<double, std::milli>(ms));
    TimePoint t = now();
    if (d >= TimePoint::max() - t)
        return TimePoint::max();
    return t + d;
}

namespace {

class SystemClock : public ServeClock
{
  public:
    TimePoint now() const override { return std::chrono::steady_clock::now(); }

    void
    waitUntil(std::condition_variable& cv, std::unique_lock<std::mutex>& lk,
              TimePoint deadline) override
    {
        if (deadline == TimePoint::max())
            cv.wait(lk);
        else
            cv.wait_until(lk, deadline);
    }
};

}  // namespace

const std::shared_ptr<ServeClock>&
systemServeClock()
{
    static const std::shared_ptr<ServeClock> clock =
        std::make_shared<SystemClock>();
    return clock;
}

ServeClock::TimePoint
FakeClock::now() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return now_;
}

void
FakeClock::waitUntil(std::condition_variable& cv, std::unique_lock<std::mutex>& lk,
                     TimePoint deadline)
{
    // The caller holds lk (its own mutex); the clock mutex nests inside
    // it here, and advance() never takes them in the opposite order.
    {
        std::lock_guard<std::mutex> g(mutex_);
        ++registrations_;
        sync_cv_.notify_all();
        if (now_ >= deadline)
            return;  // Already due by fake time; never block.
        waiters_.push_back(Waiter{&cv, lk.mutex()});
    }
    cv.wait(lk);
    {
        std::lock_guard<std::mutex> g(mutex_);
        auto it = std::find_if(waiters_.begin(), waiters_.end(),
                               [&](const Waiter& w) { return w.cv == &cv; });
        if (it != waiters_.end())
            waiters_.erase(it);
    }
}

void
FakeClock::advance(Duration d)
{
    std::vector<Waiter> waiters;
    {
        std::lock_guard<std::mutex> g(mutex_);
        now_ += d;
        waiters = waiters_;
    }
    // Acquire-then-release each waiter's mutex before notifying: a
    // waiter that has registered but not yet entered cv.wait still
    // holds its mutex, so this handshake guarantees the notify cannot
    // be lost between registration and wait. (The clock mutex is NOT
    // held here, so there is no lock-order inversion with waitUntil.)
    for (const Waiter& w : waiters) {
        { std::lock_guard<std::mutex> barrier(*w.mutex); }
        w.cv->notify_all();
    }
}

void
FakeClock::advanceMs(double ms)
{
    advance(std::chrono::duration_cast<Duration>(
        std::chrono::duration<double, std::milli>(ms)));
}

int64_t
FakeClock::registrations() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return registrations_;
}

void
FakeClock::waitForRegistrations(int64_t n)
{
    std::unique_lock<std::mutex> lk(mutex_);
    sync_cv_.wait(lk, [&] { return registrations_ >= n; });
}

}  // namespace patdnn
