#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>

#include "obs/trace.h"
#include "util/logging.h"

namespace patdnn {

namespace {

/**
 * Serve-layer spans are stamped from the server's injectable ServeClock
 * rather than TraceSpan's steady clock, so FakeClock tests can assert
 * exact span extents (e.g. batch_form covering precisely the linger
 * window). The system ServeClock is the same steady clock the rt spans
 * use, so in production both layers share one timebase.
 */
int64_t
nsOf(ServeClock::TimePoint tp)
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               tp.time_since_epoch())
        .count();
}

/**
 * A servable request: leading batch dimension with at least one
 * non-empty sample. (Agreement of the per-sample dims with the model's
 * compiled input geometry remains the caller's contract, as with
 * CompiledModel::run.) Malformed tensors would otherwise break the
 * batching arithmetic for everyone sharing the worker.
 */
bool
validRequestInput(const Tensor& t)
{
    return t.shape().rank() >= 1 && t.shape().dim(0) >= 1 && t.numel() > 0;
}

/** Batchable = identical rank and per-sample dims (dim 0 is free). */
bool
sameSampleShape(const Shape& a, const Shape& b)
{
    if (a.rank() != b.rank())
        return false;
    for (int i = 1; i < a.rank(); ++i)
        if (a.dim(i) != b.dim(i))
            return false;
    return true;
}

}  // namespace

InferenceServer::InferenceServer(std::shared_ptr<const CompiledModel> model,
                                 ServerOptions opts)
    : model_(std::move(model)), opts_(opts),
      clock_(opts.clock ? opts.clock : systemServeClock()),
      pool_(std::max(1, opts.workers))
{
    PATDNN_CHECK(model_ != nullptr, "server needs a model");
    opts_.workers = std::max(1, opts_.workers);
    opts_.max_batch = std::max<int64_t>(1, opts_.max_batch);
    opts_.max_queue = std::max<size_t>(1, opts_.max_queue);
    opts_.max_linger_ms = std::max(0.0, opts_.max_linger_ms);
    if (opts_.admission) {
        if (opts_.admission_name.empty())
            opts_.admission_name = "default";
        opts_.admission->registerModel(opts_.admission_name,
                                       opts_.admission_weight);
    }
    if (!opts_.start_paused)
        start();
}

InferenceServer::~InferenceServer()
{
    shutdown();
}

void
InferenceServer::start()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (started_ || stopping_)
            return;
        started_ = true;
        serving_clock_.reset();
    }
    // The launcher thread becomes pool worker 0, so all opts_.workers
    // serving loops run on the util::ThreadPool.
    launcher_ = std::thread([this] {
        pool_.parallelFor(opts_.workers, [this](int64_t) { workerLoop(); });
    });
}

Status
InferenceServer::admitRequest(Request& req)
{
    if (!opts_.admission)
        return Status::OK();
    const int64_t samples = req.input.shape().dim(0);
    const int64_t bytes =
        req.input.numel() * static_cast<int64_t>(sizeof(float));
    PATDNN_RETURN_IF_ERROR(
        opts_.admission->tryAdmit(opts_.admission_name, samples, bytes));
    req.samples = samples;
    req.bytes = bytes;
    return Status::OK();
}

void
InferenceServer::releaseAdmission(const Request& req)
{
    if (opts_.admission && (req.samples > 0 || req.bytes > 0))
        opts_.admission->release(opts_.admission_name, req.samples, req.bytes);
}

RequestId
InferenceServer::enqueueLocked(Request& req)
{
    req.id = next_id_++;
    if (Tracer::enabled())
        req.submit_ns = nsOf(clock_->now());
    ++accepted_;
    queue_.push_back(std::move(req));
    return queue_.back().id;
}

std::future<Tensor>
InferenceServer::submit(Tensor input, SubmitOptions sopts, RequestId* id)
{
    if (id != nullptr)
        *id = 0;
    Request req;
    req.input = std::move(input);
    req.deadline = sopts.deadline;
    std::future<Tensor> result = req.promise.get_future();
    if (!validRequestInput(req.input)) {
        req.promise.set_exception(std::make_exception_ptr(
            ServeError(ErrorCode::kInvalidArgument,
                       "inference request needs a non-empty leading batch "
                       "dimension")));
        return result;
    }
    {
        std::unique_lock<std::mutex> lk(mutex_);
        cv_space_.wait(lk, [&] {
            return queue_.size() < opts_.max_queue || stopping_;
        });
        if (stopping_) {
            req.promise.set_exception(std::make_exception_ptr(ServeError(
                ErrorCode::kUnavailable, "inference server is shut down")));
            return result;
        }
        // The queue has room, but the process-wide budget may still
        // refuse: a shed here is this model's backpressure, not a full
        // queue, so it fails fast instead of blocking the producer.
        Status admitted = admitRequest(req);
        if (!admitted.ok()) {
            ++rejected_;
            req.promise.set_exception(std::make_exception_ptr(
                ServeError(admitted.code(), admitted.message(),
                           admitted.detail())));
            return result;
        }
        RequestId assigned = enqueueLocked(req);
        if (id != nullptr)
            *id = assigned;
    }
    // With a linger window the woken worker may be mid-batch and not
    // take this request; wake everyone so an idle worker can.
    if (opts_.max_linger_ms > 0.0)
        cv_request_.notify_all();
    else
        cv_request_.notify_one();
    return result;
}

Result<RequestId>
InferenceServer::trySubmit(Tensor input, std::future<Tensor>* result,
                           SubmitOptions sopts)
{
    Request req;
    req.input = std::move(input);
    req.deadline = sopts.deadline;
    if (!validRequestInput(req.input)) {
        std::lock_guard<std::mutex> lk(mutex_);
        ++rejected_;
        return Status(ErrorCode::kInvalidArgument,
                      "inference request needs a non-empty leading batch "
                      "dimension");
    }
    RequestId assigned = 0;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (stopping_) {
            ++rejected_;
            return Status(ErrorCode::kUnavailable,
                          "inference server is shut down");
        }
        if (queue_.size() >= opts_.max_queue) {
            ++rejected_;
            return Status(ErrorCode::kResourceExhausted,
                          "inference queue is full (" +
                              std::to_string(opts_.max_queue) + " pending)");
        }
        Status admitted = admitRequest(req);
        if (!admitted.ok()) {
            ++rejected_;
            return admitted;  // kResourceExhausted + admission_detail slug.
        }
        if (result != nullptr)
            *result = req.promise.get_future();
        assigned = enqueueLocked(req);
    }
    if (opts_.max_linger_ms > 0.0)
        cv_request_.notify_all();
    else
        cv_request_.notify_one();
    return assigned;
}

bool
InferenceServer::cancel(RequestId id)
{
    if (id == 0)
        return false;
    Request victim;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        auto it = std::find_if(queue_.begin(), queue_.end(),
                               [&](const Request& r) { return r.id == id; });
        if (it == queue_.end())
            return false;  // Unknown, already dispatched, or completed.
        victim = std::move(*it);
        queue_.erase(it);
        ++cancelled_;
        if (queue_.empty() && in_flight_ == 0)
            cv_idle_.notify_all();
    }
    cv_space_.notify_all();
    releaseAdmission(victim);
    victim.promise.set_exception(std::make_exception_ptr(
        ServeError(ErrorCode::kCancelled,
                   "inference request cancelled before dispatch")));
    return true;
}

void
InferenceServer::expireLocked(Request& req)
{
    releaseAdmission(req);
    req.promise.set_exception(std::make_exception_ptr(
        ServeError(ErrorCode::kDeadlineExceeded,
                   "inference request deadline exceeded before dispatch")));
    ++deadline_exceeded_;
}

size_t
InferenceServer::shedExpiredLocked()
{
    if (queue_.empty())
        return 0;
    ServeClock::TimePoint now = clock_->now();
    size_t shed = 0;
    for (auto it = queue_.begin(); it != queue_.end();) {
        if (it->deadline != ServeClock::TimePoint::max() && now >= it->deadline) {
            expireLocked(*it);
            it = queue_.erase(it);
            ++shed;
        } else {
            ++it;
        }
    }
    return shed;
}

std::vector<InferenceServer::Request>
InferenceServer::popBatch()
{
    std::vector<Request> batch;
    std::unique_lock<std::mutex> lk(mutex_);
    while (batch.empty()) {
        cv_request_.wait(lk, [&] { return !queue_.empty() || stopping_; });
        if (queue_.empty())
            break;  // Stopping and fully drained.
        // Shed expired work before dispatch: no model time for answers
        // nobody is waiting for.
        if (shedExpiredLocked() > 0) {
            cv_space_.notify_all();
            if (queue_.empty()) {
                if (in_flight_ == 0)
                    cv_idle_.notify_all();
                continue;
            }
        }
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
        ++in_flight_;  // Counted immediately so drain() sees lingering work.
        // batch_form: first pop through linger-loop exit (== the linger
        // window exactly when nothing preempts it; pinned by tests).
        const int64_t form_start_ns =
            Tracer::enabled() ? nsOf(clock_->now()) : 0;
        int64_t rows = batch.front().input.shape().dim(0);
        // By value: push_back below reallocates batch's storage.
        const Shape sample = batch.front().input.shape();
        const bool linger = opts_.max_linger_ms > 0.0;
        ServeClock::TimePoint flush_at =
            linger ? clock_->after(opts_.max_linger_ms)
                   : ServeClock::TimePoint::min();
        for (;;) {
            while (!queue_.empty() && rows < opts_.max_batch) {
                Request& next = queue_.front();
                if (next.deadline != ServeClock::TimePoint::max() &&
                    clock_->now() >= next.deadline) {
                    expireLocked(next);
                    queue_.pop_front();
                    continue;
                }
                if (!sameSampleShape(next.input.shape(), sample) ||
                    rows + next.input.shape().dim(0) > opts_.max_batch)
                    break;
                rows += next.input.shape().dim(0);
                batch.push_back(std::move(next));
                queue_.pop_front();
                ++in_flight_;
            }
            cv_space_.notify_all();
            // A full batch always preempts the linger window; zero
            // linger dispatches whatever was queued.
            if (rows >= opts_.max_batch || !linger || stopping_)
                break;
            if (clock_->now() >= flush_at)
                break;
            clock_->waitUntil(cv_request_, lk, flush_at);
        }
        // Batch members whose deadline passed during the linger are
        // shed too: the queue is swept at pop, the batch here.
        for (auto it = batch.begin(); it != batch.end();) {
            if (it->deadline != ServeClock::TimePoint::max() &&
                clock_->now() >= it->deadline) {
                expireLocked(*it);
                it = batch.erase(it);
                --in_flight_;
            } else {
                ++it;
            }
        }
        if (batch.empty() && queue_.empty() && in_flight_ == 0)
            cv_idle_.notify_all();
        if (!batch.empty() && Tracer::enabled()) {
            int64_t dispatched = 0;
            for (const Request& r : batch)
                dispatched += r.input.shape().dim(0);
            Tracer::emitSpan("batch_form", "serve", form_start_ns,
                             nsOf(clock_->now()) - form_start_ns, "rows",
                             dispatched);
        }
    }
    return batch;
}

void
InferenceServer::workerLoop()
{
    InferenceSession session(model_, opts_.session_memory);
    for (;;) {
        std::vector<Request> batch = popBatch();
        if (batch.empty())
            return;

        if (Tracer::enabled()) {
            // queue_wait: admission through batch formation, one span
            // per request, stamped from the serve clock.
            int64_t now_ns = nsOf(clock_->now());
            for (const Request& r : batch)
                Tracer::emitSpan("queue_wait", "serve", r.submit_ns,
                                 now_ns - r.submit_ns, "request",
                                 static_cast<int64_t>(r.id));
        }

        int64_t rows = 0;
        for (const Request& r : batch)
            rows += r.input.shape().dim(0);

        const int64_t dispatch_ns =
            Tracer::enabled() ? nsOf(clock_->now()) : 0;
        Tensor out;
        if (batch.size() == 1) {
            out = session.run(batch.front().input);
        } else {
            // Transparent micro-batching: stack the inputs along N, run
            // once, and hand each request back exactly its rows.
            const Shape& s0 = batch.front().input.shape();
            std::vector<int64_t> dims = s0.dims();
            dims[0] = rows;
            Tensor stacked{Shape{std::move(dims)}};
            int64_t offset = 0;
            for (const Request& r : batch) {
                std::memcpy(stacked.data() + offset, r.input.data(),
                            static_cast<size_t>(r.input.numel()) * sizeof(float));
                offset += r.input.numel();
            }
            out = session.run(stacked);
        }
        if (Tracer::enabled())
            Tracer::emitSpan("dispatch", "serve", dispatch_ns,
                             nsOf(clock_->now()) - dispatch_ns, "rows", rows);

        const int64_t epilogue_ns =
            Tracer::enabled() ? nsOf(clock_->now()) : 0;
        std::vector<double> lat;
        lat.reserve(batch.size());
        if (batch.size() == 1) {
            lat.push_back(batch.front().queued.elapsedMs());
            batch.front().promise.set_value(std::move(out));
        } else {
            int64_t per_sample = out.numel() / rows;
            std::vector<int64_t> odims = out.shape().dims();
            int64_t row = 0;
            for (Request& r : batch) {
                int64_t n = r.input.shape().dim(0);
                odims[0] = n;
                Tensor slice{Shape{odims}};
                std::memcpy(slice.data(), out.data() + row * per_sample,
                            static_cast<size_t>(n * per_sample) * sizeof(float));
                row += n;
                lat.push_back(r.queued.elapsedMs());
                r.promise.set_value(std::move(slice));
            }
        }
        if (Tracer::enabled())
            Tracer::emitSpan("epilogue", "serve", epilogue_ns,
                             nsOf(clock_->now()) - epilogue_ns);

        for (const Request& r : batch)
            releaseAdmission(r);
        for (double ms : lat)
            latency_hist_.record(ms);  // Lock-free; no mutex_ needed.
        {
            std::lock_guard<std::mutex> lk(mutex_);
            completed_ += static_cast<int64_t>(batch.size());
            ++batches_;
            batched_samples_ += rows;
            in_flight_ -= static_cast<int>(batch.size());
            if (queue_.empty() && in_flight_ == 0)
                cv_idle_.notify_all();
        }
    }
}

void
InferenceServer::drain()
{
    std::unique_lock<std::mutex> lk(mutex_);
    cv_idle_.wait(lk, [&] { return queue_.empty() && in_flight_ == 0; });
}

void
InferenceServer::shutdown()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (stopping_)
            return;
        stopping_ = true;
    }
    cv_request_.notify_all();
    cv_space_.notify_all();
    if (launcher_.joinable())
        launcher_.join();
    // Never-started servers may still hold staged requests; dropping
    // them breaks their promises, which is the documented contract —
    // but their admission charges must still flow back to the budget.
    std::lock_guard<std::mutex> lk(mutex_);
    for (const Request& r : queue_)
        releaseAdmission(r);
    queue_.clear();
}

ServerStats
InferenceServer::stats() const
{
    ServerStats s;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        s.accepted = accepted_;
        s.completed = completed_;
        s.rejected = rejected_;
        s.deadline_exceeded = deadline_exceeded_;
        s.cancelled = cancelled_;
        s.batches = batches_;
        s.queue_depth = queue_.size();
        s.avg_batch = batches_ > 0
                          ? static_cast<double>(batched_samples_) /
                                static_cast<double>(batches_)
                          : 0.0;
        if (started_) {
            double sec = serving_clock_.elapsedMs() / 1000.0;
            if (sec > 0.0)
                s.throughput_rps = static_cast<double>(completed_) / sec;
        }
    }
    s.latency_hist = latency_hist_.snapshot();
    s.latency = s.latency_hist.percentiles();
    s.mean_ms = s.latency_hist.mean();
    s.p50_ms = s.latency.p50;
    s.p99_ms = s.latency.p99;
    return s;
}

}  // namespace patdnn
