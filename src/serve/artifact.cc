#include "serve/artifact.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>

#include "util/byteio.h"
#include "util/logging.h"

namespace patdnn {

namespace {

constexpr char kMagic[4] = {'P', 'D', 'N', 'N'};
constexpr size_t kHeaderSize = 4 + 4 + 8;  ///< magic + version + payload size.
constexpr size_t kIoChunk = 256 * 1024;    ///< Streamed-load read granularity.

/** Incremental FNV-1a 64-bit (the artifact integrity check). */
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

uint64_t
fnv1aUpdate(uint64_t h, const uint8_t* data, size_t size)
{
    for (size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

using bytes::putF64;
using bytes::putI64;
using bytes::putU32;
using bytes::putU64;

void
putTensor(std::vector<uint8_t>& out, const Tensor& t)
{
    // Rank-0 = "no tensor" (a default Tensor reports numel() == 1 but
    // owns no storage); serialized as a bare zero rank.
    const auto& dims = t.shape().dims();
    putU32(out, static_cast<uint32_t>(dims.size()));
    if (dims.empty())
        return;
    for (int64_t d : dims)
        putI64(out, d);
    size_t old = out.size();
    out.resize(old + static_cast<size_t>(t.numel()) * sizeof(float));
    if (t.numel() > 0)
        std::memcpy(out.data() + old, t.data(),
                    static_cast<size_t>(t.numel()) * sizeof(float));
}

void
putTuning(std::vector<uint8_t>& out, const TuneParams& p, uint32_t version)
{
    putU32(out, p.permute == LoopPermutation::kCoCiHW ? 0u : 1u);
    putU32(out, p.blocked ? 1u : 0u);
    putI64(out, p.tile_oh);
    putI64(out, p.tile_ow);
    putU32(out, static_cast<uint32_t>(p.unroll_w));
    putU32(out, static_cast<uint32_t>(p.unroll_oc));
    putU32(out, static_cast<uint32_t>(p.filters_per_task));
    if (version >= 5) {
        putI64(out, p.gemm_kc);
        putI64(out, p.gemm_nc);
    }
}

/** Artifact-specific records (framing only; structural checks stay
 * with validateFkw / the CompiledModel constructor) on top of the
 * shared bounds-checked reader. */
struct Reader : bytes::Reader
{
    bool
    tensor(Tensor& t)
    {
        uint32_t rank = u32();
        if (!ok || rank > 8)
            return ok = false;
        if (rank == 0) {
            t = Tensor();  // "No tensor" marker, not a 1-element scalar.
            return true;
        }
        std::vector<int64_t> dims(rank);
        int64_t numel = 1;
        for (uint32_t i = 0; i < rank; ++i) {
            dims[i] = i64();
            if (!ok || dims[i] < 0 || (numel != 0 && dims[i] > (1LL << 40) / numel))
                return ok = false;
            numel *= dims[i];
        }
        if (static_cast<uint64_t>(numel) > (size - pos) / sizeof(float))
            return ok = false;
        t = Tensor(Shape{std::move(dims)});
        if (numel > 0)
            std::memcpy(t.data(), data + pos,
                        static_cast<size_t>(numel) * sizeof(float));
        pos += static_cast<size_t>(numel) * sizeof(float);
        return ok;
    }

    bool
    tuning(TuneParams& p, uint32_t version)
    {
        p.permute = u32() == 0 ? LoopPermutation::kCoCiHW : LoopPermutation::kCoHWCi;
        p.blocked = u32() != 0;
        p.tile_oh = i64();
        p.tile_ow = i64();
        p.unroll_w = static_cast<int>(u32());
        p.unroll_oc = static_cast<int>(u32());
        p.filters_per_task = static_cast<int>(u32());
        if (version >= 5) {
            // Dense packed-GEMM blocking; pre-v5 artifacts keep the 0
            // defaults (blocking re-derived from the device budget).
            p.gemm_kc = i64();
            p.gemm_nc = i64();
        }
        return ok;
    }
};

void
putConvDesc(std::vector<uint8_t>& out, const ConvDesc& d)
{
    putU32(out, static_cast<uint32_t>(d.name.size()));
    out.insert(out.end(), d.name.begin(), d.name.end());
    for (int64_t v : {d.cin, d.cout, d.kh, d.kw, d.h, d.w, d.stride, d.pad,
                      d.dilation, d.groups})
        putI64(out, v);
}

/**
 * Plausibility of a deserialized layer's scalar fields. ConvDesc::check()
 * aborts on bad geometry, and the executors divide by groups/stride, so
 * a crafted-but-well-framed artifact must be refused here to keep the
 * typed-Status load contract.
 */
bool
plausibleLayer(const CompiledLayerState& st)
{
    if (st.kind == OpKind::kConv) {
        const ConvDesc& d = st.conv;
        if (d.cin < 1 || d.cout < 1 || d.kh < 1 || d.kw < 1 || d.h < 1 ||
            d.w < 1 || d.stride < 1 || d.pad < 0 || d.dilation < 1 ||
            d.groups < 1 || d.cin % d.groups != 0 || d.cout % d.groups != 0)
            return false;
        if (d.outH() < 1 || d.outW() < 1)
            return false;
    }
    if ((st.kind == OpKind::kMaxPool || st.kind == OpKind::kAvgPool) &&
        (st.pool_k < 1 || st.pool_stride < 1))
        return false;
    if (st.kind == OpKind::kFullyConnected &&
        (st.in_features < 1 || st.out_features < 1))
        return false;
    return true;
}

bool
readConvDesc(Reader& r, ConvDesc& d)
{
    uint32_t len = r.u32();
    if (!r.ok || len > 4096 || !r.need(len))
        return false;
    d.name.assign(reinterpret_cast<const char*>(r.data + r.pos), len);
    r.pos += len;
    d.cin = r.i64();
    d.cout = r.i64();
    d.kh = r.i64();
    d.kw = r.i64();
    d.h = r.i64();
    d.w = r.i64();
    d.stride = r.i64();
    d.pad = r.i64();
    d.dilation = r.i64();
    d.groups = r.i64();
    return r.ok;
}

/** Byte consumer for the streaming payload serializer. */
using Emit = std::function<void(const uint8_t*, size_t)>;

void
emitBuf(const Emit& emit, std::vector<uint8_t>& buf)
{
    if (!buf.empty())
        emit(buf.data(), buf.size());
    buf.clear();
}

/**
 * Serialize the payload one record at a time through `emit` (bounded
 * scratch: header fields, then one layer record per call). Both the
 * in-memory serializer and the streaming file writer share this.
 */
void
emitPayload(const CompiledModel& model, uint32_t version, const Emit& emit)
{
    std::vector<CompiledLayerState> layers = model.exportState();
    std::vector<uint8_t> buf;

    putU32(buf, static_cast<uint32_t>(model.kind()));
    if (version >= 2)
        putU32(buf, static_cast<uint32_t>(model.tunedIsa()));
    if (version >= 3) {
        // Device fingerprint: what the artifact was compiled against.
        const DeviceSpec& dev = model.device();
        putU32(buf, static_cast<uint32_t>(dev.threads));
        buf.push_back(dev.gpu_like ? 1 : 0);
        putI64(buf, dev.tile_budget_kb);
        // Compile-option record (provenance; per-layer tuning is stored
        // with each layer, so default_tuning is not repeated here).
        const CompileOptions& co = model.compileOptions();
        putU32(buf, static_cast<uint32_t>(co.pattern_count));
        putF64(buf, co.connectivity_rate);
        putF64(buf, co.first_layer_rate);
        buf.push_back(co.opts.reorder ? 1 : 0);
        buf.push_back(co.opts.lre ? 1 : 0);
        buf.push_back(co.opts.tuned ? 1 : 0);
        buf.push_back(co.run_graph_passes ? 1 : 0);
        putU64(buf, co.seed);
        if (version >= 4)
            buf.push_back(co.enable_memory_plan ? 1 : 0);
        if (version >= 6) {
            // Quantization provenance: the precision knob and the
            // calibration settings the activation scales came from.
            buf.push_back(static_cast<uint8_t>(co.precision));
            buf.push_back(static_cast<uint8_t>(co.calibration.method));
            putF64(buf, co.calibration.percentile);
            putU32(buf, static_cast<uint32_t>(co.calibration.samples));
            putU64(buf, co.calibration.seed);
        }
    }
    putU32(buf, static_cast<uint32_t>(model.outputNode()));
    putU32(buf, static_cast<uint32_t>(layers.size()));
    emitBuf(emit, buf);

    for (CompiledLayerState& st : layers) {
        buf.push_back(st.live ? 1 : 0);
        if (st.live) {
            putU32(buf, static_cast<uint32_t>(st.kind));
            putConvDesc(buf, st.conv);
            putU32(buf, static_cast<uint32_t>(st.inputs.size()));
            for (int in : st.inputs)
                putU32(buf, static_cast<uint32_t>(in));
            buf.push_back(st.fused_relu ? 1 : 0);
            putI64(buf, st.pool_k);
            putI64(buf, st.pool_stride);
            putI64(buf, st.in_features);
            putI64(buf, st.out_features);
            putTuning(buf, st.tuning, version);
            buf.push_back(st.opts.reorder ? 1 : 0);
            buf.push_back(st.opts.lre ? 1 : 0);
            buf.push_back(st.opts.tuned ? 1 : 0);
            if (version >= 6) {
                // Quant record: scales only. The weight tensor below
                // stays f32 and is re-quantized deterministically on
                // load, so pre-v6 serializations (which drop this
                // record) load as plain f32.
                buf.push_back(st.quantized ? 1 : 0);
                if (st.quantized) {
                    putF64(buf, st.act_scale);
                    putU32(buf, static_cast<uint32_t>(st.weight_scales.size()));
                    for (float s : st.weight_scales)
                        putF64(buf, s);
                }
            }
            putTensor(buf, st.weight);
            putTensor(buf, st.bias);
            buf.push_back(st.fkw ? 1 : 0);
            if (st.fkw)
                serializeFkw(*st.fkw, buf);
            // Release this layer's copy as soon as it is emitted so the
            // streaming save never holds state + bytes for the whole
            // model at once.
            st.fkw.reset();
            st.weight = Tensor();
            st.bias = Tensor();
        }
        emitBuf(emit, buf);
    }

    // Memory-plan record (version >= 4): per-slot arena placement in
    // per-sample elements, so serving hosts skip lifetime analysis.
    if (version >= 4) {
        bool has_plan = model.hasMemoryPlan();
        buf.push_back(has_plan ? 1 : 0);
        if (has_plan) {
            const MemoryPlan& plan = model.memoryPlan();
            putI64(buf, plan.alignElems());
            putI64(buf, plan.arenaElemsPerSample());
            putI64(buf, plan.sumElemsPerSample());
            putU32(buf, static_cast<uint32_t>(plan.slotCount()));
            for (const PlanSlot& s : plan.slots()) {
                buf.push_back(s.planned ? 1 : 0);
                if (!s.planned)
                    continue;
                putI64(buf, s.offset_elems);
                putI64(buf, s.size_elems);
                putU32(buf, static_cast<uint32_t>(s.def));
                putU32(buf, static_cast<uint32_t>(s.last_use));
            }
        }
        emitBuf(emit, buf);
    }
}

void
warn(ArtifactInfo* info, const std::string& msg)
{
    logMessage(LogLevel::kWarn, msg);
    if (info != nullptr)
        info->warnings.push_back(msg);
}

/**
 * Parse + validate a payload (any supported version) and rebuild the
 * model for `device`. Shared by the in-memory and file loaders, which
 * have already verified framing and checksum — so parse failures here
 * mean a corrupted-but-well-framed payload (kDataLoss) or a provenance
 * record the host cannot satisfy (kDeviceMismatch).
 */
Result<std::shared_ptr<CompiledModel>>
deserializePayload(const uint8_t* payload, size_t payload_size, uint32_t version,
                   const DeviceSpec& device, const ArtifactLoadOptions& opts,
                   ArtifactInfo* info)
{
    auto fail = [](std::string msg) {
        return Status(ErrorCode::kDataLoss, std::move(msg),
                      artifact_detail::kMalformedPayload);
    };
    if (info != nullptr)
        info->version = version;

    Reader r{{payload, payload_size}};
    uint32_t kind_raw = r.u32();
    if (kind_raw > static_cast<uint32_t>(FrameworkKind::kPatDnn))
        return fail("artifact: unknown framework kind");
    FrameworkKind kind = static_cast<FrameworkKind>(kind_raw);
    if (info != nullptr)
        info->kind = kind;

    // Version 1 predates the tuned-ISA record; those artifacts were
    // tuned by scalar-only builds.
    SimdIsa tuned_isa = SimdIsa::kScalar;
    if (version >= 2) {
        uint32_t isa_raw = r.u32();
        if (isa_raw > static_cast<uint32_t>(SimdIsa::kNeon))
            return fail("artifact: unknown kernel ISA");
        tuned_isa = static_cast<SimdIsa>(isa_raw);
    }
    if (info != nullptr)
        info->tuned_isa = tuned_isa;

    CompileOptions compile_opts;
    // Pre-v4 artifacts were produced before memory planning existed;
    // record that honestly rather than inheriting the modern default.
    compile_opts.enable_memory_plan = false;
    if (version < 3) {
        warn(info, "artifact: pre-v3 header (version " + std::to_string(version) +
                       "): no device fingerprint or compile-option record; "
                       "host compatibility cannot be verified");
    } else {
        int pool_width = static_cast<int>(r.u32());
        bool gpu_like = r.u8() != 0;
        int64_t tile_budget_kb = r.i64();
        compile_opts.pattern_count = static_cast<int>(r.u32());
        compile_opts.connectivity_rate = r.f64();
        compile_opts.first_layer_rate = r.f64();
        compile_opts.opts.reorder = r.u8() != 0;
        compile_opts.opts.lre = r.u8() != 0;
        compile_opts.opts.tuned = r.u8() != 0;
        compile_opts.run_graph_passes = r.u8() != 0;
        compile_opts.seed = r.u64();
        if (version >= 4)
            compile_opts.enable_memory_plan = r.u8() != 0;
        uint8_t precision_raw = 0;
        uint8_t calib_method_raw = 0;
        if (version >= 6) {
            precision_raw = r.u8();
            calib_method_raw = r.u8();
            compile_opts.calibration.percentile = r.f64();
            compile_opts.calibration.samples = static_cast<int>(r.u32());
            compile_opts.calibration.seed = r.u64();
        }
        if (!r.ok)
            return fail("artifact: truncated provenance record");
        if (pool_width < 1 || pool_width > 4096 ||
            compile_opts.pattern_count < 0 ||
            compile_opts.pattern_count > (1 << 16))
            return fail("artifact: implausible provenance record");
        if (version >= 6) {
            if (precision_raw > static_cast<uint8_t>(Precision::kInt8) ||
                calib_method_raw >
                    static_cast<uint8_t>(CalibrationMethod::kPercentile) ||
                !(compile_opts.calibration.percentile > 0.0 &&
                  compile_opts.calibration.percentile <= 100.0) ||
                compile_opts.calibration.samples < 1)
                return fail("artifact: implausible quantization options");
            compile_opts.precision = static_cast<Precision>(precision_raw);
            compile_opts.calibration.method =
                static_cast<CalibrationMethod>(calib_method_raw);
        }
        if (info != nullptr) {
            info->has_fingerprint = true;
            info->pool_width = pool_width;
            info->gpu_like = gpu_like;
            info->tile_budget_kb = tile_budget_kb;
            info->has_compile_opts = true;
            info->compile_opts = compile_opts;
        }
        if (gpu_like != device.gpu_like)
            return Status(ErrorCode::kDeviceMismatch,
                          std::string("artifact: device fingerprint mismatch: "
                                      "compiled for a ") +
                              (gpu_like ? "GPU-like (block-scheduled)" : "CPU") +
                              " device but this host device is " +
                              (device.gpu_like ? "GPU-like (block-scheduled)"
                                               : "a CPU") +
                              "; the tuned execution plan does not transfer "
                              "across scheduling models",
                          artifact_detail::kFingerprintMismatch);
        if (pool_width != device.threads || tile_budget_kb != device.tile_budget_kb) {
            std::string msg =
                "artifact: device fingerprint mismatch: compiled for pool "
                "width " +
                std::to_string(pool_width) + ", tile budget " +
                std::to_string(tile_budget_kb) + " KB but this host runs pool "
                "width " +
                std::to_string(device.threads) + ", tile budget " +
                std::to_string(device.tile_budget_kb) +
                " KB; execution is exact, tuned parameters may be off-width";
            if (opts.require_matching_fingerprint)
                return Status(ErrorCode::kDeviceMismatch,
                              msg + " (rejected: matching fingerprint required)",
                              artifact_detail::kFingerprintMismatch);
            warn(info, msg);
        }
    }

    SimdIsa host_isa = resolveSimdOps(device.simd_isa).isa;
    if (tuned_isa != host_isa)
        warn(info, std::string("artifact: tuned parameters were searched on ") +
                       isaName(tuned_isa) + " kernels but this host runs " +
                       isaName(host_isa) +
                       "; execution is exact, tuning may be off-width");

    int output_node = static_cast<int>(r.u32());
    uint32_t n_layers = r.u32();
    if (!r.ok || n_layers > 1u << 20 || output_node < 0 ||
        output_node >= static_cast<int>(n_layers))
        return fail("artifact: bad layer table");

    std::vector<CompiledLayerState> layers(n_layers);
    for (uint32_t id = 0; id < n_layers; ++id) {
        CompiledLayerState& st = layers[id];
        st.live = r.u8() != 0;
        if (!st.live)
            continue;
        st.kind = static_cast<OpKind>(r.u32());
        if (static_cast<uint32_t>(st.kind) >
            static_cast<uint32_t>(OpKind::kFlatten))
            return fail("artifact: unknown op kind");
        if (!readConvDesc(r, st.conv))
            return fail("artifact: truncated conv descriptor");
        uint32_t n_inputs = r.u32();
        if (!r.ok || n_inputs > 8)
            return fail("artifact: bad input list");
        st.inputs.resize(n_inputs);
        for (uint32_t i = 0; i < n_inputs; ++i) {
            st.inputs[i] = static_cast<int>(r.u32());
            if (st.inputs[i] >= static_cast<int>(id))
                return fail("artifact: forward edge in layer inputs");
        }
        st.fused_relu = r.u8() != 0;
        st.pool_k = r.i64();
        st.pool_stride = r.i64();
        st.in_features = r.i64();
        st.out_features = r.i64();
        if (!r.tuning(st.tuning, version))
            return fail("artifact: truncated tuning block");
        st.opts.reorder = r.u8() != 0;
        st.opts.lre = r.u8() != 0;
        st.opts.tuned = r.u8() != 0;
        if (version >= 6) {
            auto fail_quant = [](std::string msg) {
                return Status(ErrorCode::kDataLoss, std::move(msg),
                              artifact_detail::kBadQuantRecord);
            };
            st.quantized = r.u8() != 0;
            if (st.quantized) {
                st.act_scale = static_cast<float>(r.f64());
                uint32_t n_scales = r.u32();
                if (!r.ok || n_scales > 1u << 20)
                    return fail_quant("artifact: truncated quant record");
                st.weight_scales.resize(n_scales);
                for (uint32_t i = 0; i < n_scales; ++i)
                    st.weight_scales[i] = static_cast<float>(r.f64());
                if (!r.ok)
                    return fail_quant("artifact: truncated quant record");
                // The scales drive the load-time re-quantization, so a
                // corrupted-but-well-framed record must be refused here:
                // only a groups==1 dense conv can carry one, the scale
                // count must match the layer's output channels, and
                // every scale must be finite and positive.
                if (st.kind != OpKind::kConv || st.conv.groups != 1)
                    return fail_quant(
                        "artifact: quant record on an unquantizable layer");
                if (static_cast<int64_t>(n_scales) != st.conv.cout)
                    return fail_quant(
                        "artifact: quant record scale count disagrees with "
                        "layer output channels");
                if (!(std::isfinite(st.act_scale) && st.act_scale > 0.0f))
                    return fail_quant(
                        "artifact: quant record activation scale is not "
                        "finite and positive");
                for (float s : st.weight_scales)
                    if (!(std::isfinite(s) && s > 0.0f))
                        return fail_quant(
                            "artifact: quant record weight scale is not "
                            "finite and positive");
            }
        }
        if (!r.tensor(st.weight) || !r.tensor(st.bias))
            return fail("artifact: truncated tensor");
        bool has_fkw = r.u8() != 0;
        if (has_fkw) {
            auto fkw = std::make_unique<FkwLayer>();
            size_t consumed = 0;
            Status fkw_status = deserializeFkw(r.data + r.pos, r.size - r.pos,
                                               &consumed, fkw.get());
            if (!fkw_status.ok())
                return fail("artifact: " + fkw_status.message());
            r.pos += consumed;
            // Re-check the structural invariants so a corrupted-but-
            // well-framed record cannot reach an executor.
            Status invariants = validateFkw(*fkw);
            if (!invariants.ok())
                return fail("artifact: invalid FKW layer: " +
                            invariants.message());
            st.fkw = std::move(fkw);
        }
        if (st.quantized && st.fkw)
            return Status(ErrorCode::kDataLoss,
                          "artifact: quant record on an FKW (pattern) layer",
                          artifact_detail::kBadQuantRecord);
        if (st.quantized && st.weight.shape().rank() == 0)
            return Status(ErrorCode::kDataLoss,
                          "artifact: quant record without a dense weight "
                          "tensor to re-quantize",
                          artifact_detail::kBadQuantRecord);
        if (!r.ok)
            return fail("artifact: truncated layer record");
        if (!plausibleLayer(st))
            return fail("artifact: implausible layer geometry");
    }
    // Memory-plan record (version >= 4). Framing plausibility here;
    // the aliasing-safety validation happens against the restored graph
    // below, once the model exists.
    bool has_plan = false;
    MemoryPlan plan;
    if (version >= 4) {
        has_plan = r.u8() != 0;
        if (has_plan) {
            int64_t align_elems = r.i64();
            int64_t arena_elems = r.i64();
            int64_t sum_elems = r.i64();
            uint32_t n_slots = r.u32();
            if (!r.ok || align_elems < 1 || align_elems > 4096 ||
                arena_elems < 0 || sum_elems < 0 || n_slots != n_layers)
                return fail("artifact: bad memory-plan header");
            std::vector<PlanSlot> slots(n_slots);
            for (uint32_t id = 0; id < n_slots; ++id) {
                PlanSlot& s = slots[id];
                s.planned = r.u8() != 0;
                if (!s.planned)
                    continue;
                s.offset_elems = r.i64();
                s.size_elems = r.i64();
                s.def = static_cast<int>(r.u32());
                s.last_use = static_cast<int>(r.u32());
            }
            if (!r.ok)
                return fail("artifact: truncated memory-plan record");
            plan = MemoryPlan(std::move(slots), arena_elems, sum_elems,
                              align_elems);
        }
    }
    if (r.pos != r.size)
        return fail("artifact: trailing bytes in payload");
    if (!layers[static_cast<size_t>(output_node)].live)
        return fail("artifact: output node is not a live layer");

    auto model = std::make_shared<CompiledModel>(kind, device, std::move(layers),
                                                 output_node, tuned_isa,
                                                 std::move(compile_opts));
    if (has_plan) {
        Status adopted = model->adoptMemoryPlan(std::move(plan));
        if (!adopted.ok())
            return Status(ErrorCode::kDataLoss,
                          "artifact: invalid memory plan: " + adopted.message(),
                          artifact_detail::kBadMemoryPlan);
    }
    return model;
}

Status
unsupportedVersion(uint32_t version)
{
    return Status(ErrorCode::kInvalidArgument,
                  "artifact: unsupported version " + std::to_string(version),
                  artifact_detail::kUnsupportedVersion);
}

Status
truncatedStream(const std::string& what)
{
    return Status(ErrorCode::kDataLoss, "artifact: truncated stream (" + what + ")",
                  artifact_detail::kTruncatedStream);
}

Status
checksumMismatch()
{
    return Status(ErrorCode::kDataLoss, "artifact: checksum mismatch",
                  artifact_detail::kChecksumMismatch);
}

Status
badMagic()
{
    return Status(ErrorCode::kDataLoss, "artifact: bad magic",
                  artifact_detail::kBadMagic);
}

void
putHeaderPrefix(std::vector<uint8_t>& out, uint32_t version)
{
    for (char c : kMagic)
        out.push_back(static_cast<uint8_t>(c));
    putU32(out, version);
    putU64(out, 0);  // Payload size placeholder, backpatched.
}

}  // namespace

std::vector<uint8_t>
serializeModel(const CompiledModel& model, uint32_t version)
{
    PATDNN_CHECK(version >= 1 && version <= kModelArtifactVersion,
                 "unsupported artifact serialization version " << version);
    std::vector<uint8_t> out;
    putHeaderPrefix(out, version);
    size_t payload_begin = out.size();
    uint64_t h = kFnvOffset;
    emitPayload(model, version, [&](const uint8_t* p, size_t n) {
        h = fnv1aUpdate(h, p, n);
        out.insert(out.end(), p, p + n);
    });
    uint64_t payload_size = out.size() - payload_begin;
    for (int i = 0; i < 8; ++i)
        out[payload_begin - 8 + static_cast<size_t>(i)] =
            static_cast<uint8_t>(payload_size >> (8 * i));
    putU64(out, h);
    return out;
}

std::vector<uint8_t>
serializeModel(const CompiledModel& model)
{
    return serializeModel(model, kModelArtifactVersion);
}

Result<std::shared_ptr<CompiledModel>>
deserializeModel(const std::vector<uint8_t>& bytes, const DeviceSpec& device,
                 const ArtifactLoadOptions& opts, ArtifactInfo* info)
{
    // Size before magic: a truncated-but-valid prefix must diagnose as
    // truncation, matching the streamed file loader's slug.
    if (bytes.size() < kHeaderSize + 8)
        return truncatedStream(std::to_string(bytes.size()) +
                               " bytes is smaller than the fixed header");
    if (std::memcmp(bytes.data(), kMagic, 4) != 0)
        return badMagic();
    Reader hdr{{bytes.data() + 4, bytes.size() - 4}};
    uint32_t version = hdr.u32();
    if (version < 1 || version > kModelArtifactVersion)
        return unsupportedVersion(version);
    uint64_t payload_size = hdr.u64();
    if (!hdr.ok || payload_size != bytes.size() - kHeaderSize - 8)
        return truncatedStream("payload size mismatch");
    const uint8_t* payload = bytes.data() + kHeaderSize;
    Reader tail{{payload + payload_size, 8}};
    if (fnv1aUpdate(kFnvOffset, payload, static_cast<size_t>(payload_size)) !=
        tail.u64())
        return checksumMismatch();
    return deserializePayload(payload, static_cast<size_t>(payload_size), version,
                              device, opts, info);
}

Status
saveModelArtifact(const CompiledModel& model, const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        return Status(ErrorCode::kUnavailable,
                      "cannot open " + path + " for writing");
    std::vector<uint8_t> header;
    putHeaderPrefix(header, kModelArtifactVersion);
    bool ok = std::fwrite(header.data(), 1, header.size(), f) == header.size();
    // Stream the payload record-by-record: the checksum and size are
    // accumulated as bytes pass through, never materializing the whole
    // serialized model in memory.
    uint64_t h = kFnvOffset;
    uint64_t payload_size = 0;
    emitPayload(model, kModelArtifactVersion, [&](const uint8_t* p, size_t n) {
        if (!ok)
            return;
        h = fnv1aUpdate(h, p, n);
        payload_size += n;
        ok = std::fwrite(p, 1, n, f) == n;
    });
    std::vector<uint8_t> trailer;
    putU64(trailer, h);
    ok = ok && std::fwrite(trailer.data(), 1, trailer.size(), f) == trailer.size();
    // Backpatch the payload size in the fixed header.
    ok = ok && std::fseek(f, 4 + 4, SEEK_SET) == 0;
    std::vector<uint8_t> size_bytes;
    putU64(size_bytes, payload_size);
    ok = ok &&
         std::fwrite(size_bytes.data(), 1, size_bytes.size(), f) == size_bytes.size();
    ok = std::fclose(f) == 0 && ok;
    if (!ok)
        return Status(ErrorCode::kUnavailable, "short write to " + path);
    return Status::OK();
}

Result<std::shared_ptr<CompiledModel>>
loadModelArtifact(const std::string& path, const DeviceSpec& device,
                  const ArtifactLoadOptions& opts, ArtifactInfo* info)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return Status(ErrorCode::kNotFound, "cannot open " + path);
    std::fseek(f, 0, SEEK_END);
    long len = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (len < static_cast<long>(kHeaderSize + 8)) {
        std::fclose(f);
        return truncatedStream(std::to_string(len < 0 ? 0 : len) +
                               " bytes is smaller than the fixed header");
    }
    uint8_t header[kHeaderSize];
    if (std::fread(header, 1, kHeaderSize, f) != kHeaderSize) {
        std::fclose(f);
        return truncatedStream("short header read");
    }
    if (std::memcmp(header, kMagic, 4) != 0) {
        std::fclose(f);
        return badMagic();
    }
    Reader hdr{{header + 4, kHeaderSize - 4}};
    uint32_t version = hdr.u32();
    if (version < 1 || version > kModelArtifactVersion) {
        std::fclose(f);
        return unsupportedVersion(version);
    }
    uint64_t payload_size = hdr.u64();
    if (payload_size != static_cast<uint64_t>(len) - kHeaderSize - 8) {
        std::fclose(f);
        return truncatedStream(
            "header claims " + std::to_string(payload_size) +
            " payload bytes, file holds " +
            std::to_string(static_cast<uint64_t>(len) - kHeaderSize - 8));
    }
    // Chunked read with incremental checksum: bounded I/O granularity,
    // one payload allocation (which the model needs anyway).
    std::vector<uint8_t> payload(static_cast<size_t>(payload_size));
    uint64_t h = kFnvOffset;
    size_t got = 0;
    while (got < payload.size()) {
        size_t want = std::min(kIoChunk, payload.size() - got);
        size_t n = std::fread(payload.data() + got, 1, want, f);
        if (n == 0) {
            std::fclose(f);
            return truncatedStream("short payload read");
        }
        h = fnv1aUpdate(h, payload.data() + got, n);
        got += n;
    }
    uint8_t trailer[8];
    if (std::fread(trailer, 1, 8, f) != 8) {
        std::fclose(f);
        return truncatedStream("missing checksum");
    }
    std::fclose(f);
    Reader tail{{trailer, 8}};
    if (h != tail.u64())
        return checksumMismatch();
    return deserializePayload(payload.data(), payload.size(), version, device,
                              opts, info);
}

}  // namespace patdnn
