#include "serve/artifact.h"

#include <cstdio>
#include <cstring>

#include "util/byteio.h"
#include "util/logging.h"

namespace patdnn {

namespace {

constexpr char kMagic[4] = {'P', 'D', 'N', 'N'};

/** FNV-1a 64-bit over a byte range (the artifact integrity check). */
uint64_t
fnv1a(const uint8_t* data, size_t size)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

using bytes::putI64;
using bytes::putU32;
using bytes::putU64;

void
putTensor(std::vector<uint8_t>& out, const Tensor& t)
{
    // Rank-0 = "no tensor" (a default Tensor reports numel() == 1 but
    // owns no storage); serialized as a bare zero rank.
    const auto& dims = t.shape().dims();
    putU32(out, static_cast<uint32_t>(dims.size()));
    if (dims.empty())
        return;
    for (int64_t d : dims)
        putI64(out, d);
    size_t old = out.size();
    out.resize(old + static_cast<size_t>(t.numel()) * sizeof(float));
    if (t.numel() > 0)
        std::memcpy(out.data() + old, t.data(),
                    static_cast<size_t>(t.numel()) * sizeof(float));
}

void
putTuning(std::vector<uint8_t>& out, const TuneParams& p)
{
    putU32(out, p.permute == LoopPermutation::kCoCiHW ? 0u : 1u);
    putU32(out, p.blocked ? 1u : 0u);
    putI64(out, p.tile_oh);
    putI64(out, p.tile_ow);
    putU32(out, static_cast<uint32_t>(p.unroll_w));
    putU32(out, static_cast<uint32_t>(p.unroll_oc));
    putU32(out, static_cast<uint32_t>(p.filters_per_task));
}

/** Artifact-specific records (framing only; structural checks stay
 * with validateFkw / the CompiledModel constructor) on top of the
 * shared bounds-checked reader. */
struct Reader : bytes::Reader
{
    bool
    tensor(Tensor& t)
    {
        uint32_t rank = u32();
        if (!ok || rank > 8)
            return ok = false;
        if (rank == 0) {
            t = Tensor();  // "No tensor" marker, not a 1-element scalar.
            return true;
        }
        std::vector<int64_t> dims(rank);
        int64_t numel = 1;
        for (uint32_t i = 0; i < rank; ++i) {
            dims[i] = i64();
            if (!ok || dims[i] < 0 || (numel != 0 && dims[i] > (1LL << 40) / numel))
                return ok = false;
            numel *= dims[i];
        }
        if (static_cast<uint64_t>(numel) > (size - pos) / sizeof(float))
            return ok = false;
        t = Tensor(Shape{std::move(dims)});
        if (numel > 0)
            std::memcpy(t.data(), data + pos,
                        static_cast<size_t>(numel) * sizeof(float));
        pos += static_cast<size_t>(numel) * sizeof(float);
        return ok;
    }

    bool
    tuning(TuneParams& p)
    {
        p.permute = u32() == 0 ? LoopPermutation::kCoCiHW : LoopPermutation::kCoHWCi;
        p.blocked = u32() != 0;
        p.tile_oh = i64();
        p.tile_ow = i64();
        p.unroll_w = static_cast<int>(u32());
        p.unroll_oc = static_cast<int>(u32());
        p.filters_per_task = static_cast<int>(u32());
        return ok;
    }
};

void
putConvDesc(std::vector<uint8_t>& out, const ConvDesc& d)
{
    putU32(out, static_cast<uint32_t>(d.name.size()));
    out.insert(out.end(), d.name.begin(), d.name.end());
    for (int64_t v : {d.cin, d.cout, d.kh, d.kw, d.h, d.w, d.stride, d.pad,
                      d.dilation, d.groups})
        putI64(out, v);
}

/**
 * Plausibility of a deserialized layer's scalar fields. ConvDesc::check()
 * aborts on bad geometry, and the executors divide by groups/stride, so
 * a crafted-but-well-framed artifact must be refused here to keep the
 * "null + *error" load contract.
 */
bool
plausibleLayer(const CompiledLayerState& st)
{
    if (st.kind == OpKind::kConv) {
        const ConvDesc& d = st.conv;
        if (d.cin < 1 || d.cout < 1 || d.kh < 1 || d.kw < 1 || d.h < 1 ||
            d.w < 1 || d.stride < 1 || d.pad < 0 || d.dilation < 1 ||
            d.groups < 1 || d.cin % d.groups != 0 || d.cout % d.groups != 0)
            return false;
        if (d.outH() < 1 || d.outW() < 1)
            return false;
    }
    if ((st.kind == OpKind::kMaxPool || st.kind == OpKind::kAvgPool) &&
        (st.pool_k < 1 || st.pool_stride < 1))
        return false;
    if (st.kind == OpKind::kFullyConnected &&
        (st.in_features < 1 || st.out_features < 1))
        return false;
    return true;
}

bool
readConvDesc(Reader& r, ConvDesc& d)
{
    uint32_t len = r.u32();
    if (!r.ok || len > 4096 || !r.need(len))
        return false;
    d.name.assign(reinterpret_cast<const char*>(r.data + r.pos), len);
    r.pos += len;
    d.cin = r.i64();
    d.cout = r.i64();
    d.kh = r.i64();
    d.kw = r.i64();
    d.h = r.i64();
    d.w = r.i64();
    d.stride = r.i64();
    d.pad = r.i64();
    d.dilation = r.i64();
    d.groups = r.i64();
    return r.ok;
}

}  // namespace

std::vector<uint8_t>
serializeModel(const CompiledModel& model)
{
    std::vector<CompiledLayerState> layers = model.exportState();

    // Serialize straight into the final buffer (the payload size is
    // backpatched) so large models are not copied an extra time.
    std::vector<uint8_t> out;
    for (char c : kMagic)
        out.push_back(static_cast<uint8_t>(c));
    putU32(out, kModelArtifactVersion);
    size_t size_at = out.size();
    putU64(out, 0);  // Payload size placeholder.
    size_t payload_begin = out.size();

    putU32(out, static_cast<uint32_t>(model.kind()));
    putU32(out, static_cast<uint32_t>(model.tunedIsa()));
    putU32(out, static_cast<uint32_t>(model.outputNode()));
    putU32(out, static_cast<uint32_t>(layers.size()));
    for (const CompiledLayerState& st : layers) {
        out.push_back(st.live ? 1 : 0);
        if (!st.live)
            continue;
        putU32(out, static_cast<uint32_t>(st.kind));
        putConvDesc(out, st.conv);
        putU32(out, static_cast<uint32_t>(st.inputs.size()));
        for (int in : st.inputs)
            putU32(out, static_cast<uint32_t>(in));
        out.push_back(st.fused_relu ? 1 : 0);
        putI64(out, st.pool_k);
        putI64(out, st.pool_stride);
        putI64(out, st.in_features);
        putI64(out, st.out_features);
        putTuning(out, st.tuning);
        out.push_back(st.opts.reorder ? 1 : 0);
        out.push_back(st.opts.lre ? 1 : 0);
        out.push_back(st.opts.tuned ? 1 : 0);
        putTensor(out, st.weight);
        putTensor(out, st.bias);
        out.push_back(st.fkw ? 1 : 0);
        if (st.fkw)
            serializeFkw(*st.fkw, out);
    }

    uint64_t payload_size = out.size() - payload_begin;
    for (int i = 0; i < 8; ++i)
        out[size_at + static_cast<size_t>(i)] =
            static_cast<uint8_t>(payload_size >> (8 * i));
    putU64(out, fnv1a(out.data() + payload_begin,
                      static_cast<size_t>(payload_size)));
    return out;
}

std::shared_ptr<CompiledModel>
deserializeModel(const std::vector<uint8_t>& bytes, const DeviceSpec& device,
                 std::string* error)
{
    auto fail = [&](const std::string& msg) {
        if (error != nullptr)
            *error = msg;
        return nullptr;
    };
    if (bytes.size() < 4 + 4 + 8 + 8 || std::memcmp(bytes.data(), kMagic, 4) != 0)
        return fail("artifact: bad magic");
    Reader hdr{{bytes.data() + 4, bytes.size() - 4}};
    uint32_t version = hdr.u32();
    if (version < 1 || version > kModelArtifactVersion)
        return fail("artifact: unsupported version " + std::to_string(version));
    uint64_t payload_size = hdr.u64();
    if (!hdr.ok || payload_size != bytes.size() - 4 - 4 - 8 - 8)
        return fail("artifact: truncated (payload size mismatch)");
    const uint8_t* payload = bytes.data() + 4 + 4 + 8;
    Reader tail{{payload + payload_size, 8}};
    if (fnv1a(payload, static_cast<size_t>(payload_size)) != tail.u64())
        return fail("artifact: checksum mismatch");

    Reader r{{payload, static_cast<size_t>(payload_size)}};
    uint32_t kind_raw = r.u32();
    if (kind_raw > static_cast<uint32_t>(FrameworkKind::kPatDnn))
        return fail("artifact: unknown framework kind");
    FrameworkKind kind = static_cast<FrameworkKind>(kind_raw);
    // Version 1 predates the tuned-ISA record; those artifacts were
    // tuned by scalar-only builds.
    SimdIsa tuned_isa = SimdIsa::kScalar;
    if (version >= 2) {
        uint32_t isa_raw = r.u32();
        if (isa_raw > static_cast<uint32_t>(SimdIsa::kNeon))
            return fail("artifact: unknown kernel ISA");
        tuned_isa = static_cast<SimdIsa>(isa_raw);
    }
    SimdIsa host_isa = resolveSimdOps(device.simd_isa).isa;
    if (tuned_isa != host_isa)
        logMessage(LogLevel::kWarn,
                   std::string("artifact: tuned parameters were searched on ") +
                       isaName(tuned_isa) + " kernels but this host runs " +
                       isaName(host_isa) +
                       "; execution is exact, tuning may be off-width");
    int output_node = static_cast<int>(r.u32());
    uint32_t n_layers = r.u32();
    if (!r.ok || n_layers > 1u << 20 || output_node < 0 ||
        output_node >= static_cast<int>(n_layers))
        return fail("artifact: bad layer table");

    std::vector<CompiledLayerState> layers(n_layers);
    for (uint32_t id = 0; id < n_layers; ++id) {
        CompiledLayerState& st = layers[id];
        st.live = r.u8() != 0;
        if (!st.live)
            continue;
        st.kind = static_cast<OpKind>(r.u32());
        if (static_cast<uint32_t>(st.kind) >
            static_cast<uint32_t>(OpKind::kFlatten))
            return fail("artifact: unknown op kind");
        if (!readConvDesc(r, st.conv))
            return fail("artifact: truncated conv descriptor");
        uint32_t n_inputs = r.u32();
        if (!r.ok || n_inputs > 8)
            return fail("artifact: bad input list");
        st.inputs.resize(n_inputs);
        for (uint32_t i = 0; i < n_inputs; ++i) {
            st.inputs[i] = static_cast<int>(r.u32());
            if (st.inputs[i] >= static_cast<int>(id))
                return fail("artifact: forward edge in layer inputs");
        }
        st.fused_relu = r.u8() != 0;
        st.pool_k = r.i64();
        st.pool_stride = r.i64();
        st.in_features = r.i64();
        st.out_features = r.i64();
        if (!r.tuning(st.tuning))
            return fail("artifact: truncated tuning block");
        st.opts.reorder = r.u8() != 0;
        st.opts.lre = r.u8() != 0;
        st.opts.tuned = r.u8() != 0;
        if (!r.tensor(st.weight) || !r.tensor(st.bias))
            return fail("artifact: truncated tensor");
        bool has_fkw = r.u8() != 0;
        if (has_fkw) {
            auto fkw = std::make_unique<FkwLayer>();
            size_t consumed = 0;
            std::string fkw_error;
            if (!deserializeFkw(r.data + r.pos, r.size - r.pos, &consumed,
                                fkw.get(), &fkw_error))
                return fail("artifact: " + fkw_error);
            r.pos += consumed;
            // Re-check the structural invariants so a corrupted-but-
            // well-framed record cannot reach an executor.
            std::string invariant_error;
            if (!validateFkw(*fkw, &invariant_error))
                return fail("artifact: invalid FKW layer: " + invariant_error);
            st.fkw = std::move(fkw);
        }
        if (!r.ok)
            return fail("artifact: truncated layer record");
        if (!plausibleLayer(st))
            return fail("artifact: implausible layer geometry");
    }
    if (r.pos != r.size)
        return fail("artifact: trailing bytes in payload");
    if (!layers[static_cast<size_t>(output_node)].live)
        return fail("artifact: output node is not a live layer");

    return std::make_shared<CompiledModel>(kind, device, std::move(layers),
                                           output_node, tuned_isa);
}

bool
saveModelArtifact(const CompiledModel& model, const std::string& path,
                  std::string* error)
{
    std::vector<uint8_t> bytes = serializeModel(model);
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        if (error != nullptr)
            *error = "cannot open " + path + " for writing";
        return false;
    }
    size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
    bool ok = std::fclose(f) == 0 && written == bytes.size();
    if (!ok && error != nullptr)
        *error = "short write to " + path;
    return ok;
}

std::shared_ptr<CompiledModel>
loadModelArtifact(const std::string& path, const DeviceSpec& device,
                  std::string* error)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        if (error != nullptr)
            *error = "cannot open " + path;
        return nullptr;
    }
    std::fseek(f, 0, SEEK_END);
    long len = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<uint8_t> bytes(len > 0 ? static_cast<size_t>(len) : 0);
    size_t got = bytes.empty() ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (got != bytes.size()) {
        if (error != nullptr)
            *error = "short read from " + path;
        return nullptr;
    }
    return deserializeModel(bytes, device, error);
}

}  // namespace patdnn
