/**
 * @file
 * Injectable time source for the serving subsystem.
 *
 * The server's batching linger window and per-request deadlines are
 * time-driven behaviours, and time-driven behaviour is untestable
 * against the wall clock without sleeps. Every time decision in
 * src/serve/ therefore goes through a ServeClock: production servers
 * use the process-wide steady-clock implementation, tests inject a
 * FakeClock whose now() only moves when the test calls advance(), so
 * "the batch flushes at max_linger exactly" is a deterministic
 * assertion instead of a race.
 */
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace patdnn {

/**
 * A monotonic time source the server reads and waits against.
 *
 * waitUntil() releases `lk` and blocks the caller until `deadline` (as
 * measured by *this clock*), a notification on `cv`, or a spurious
 * wake; the caller re-checks its predicate and deadline in a loop, as
 * with any condition-variable wait.
 */
class ServeClock
{
  public:
    using TimePoint = std::chrono::steady_clock::time_point;
    using Duration = std::chrono::steady_clock::duration;

    virtual ~ServeClock() = default;

    virtual TimePoint now() const = 0;

    virtual void waitUntil(std::condition_variable& cv,
                           std::unique_lock<std::mutex>& lk,
                           TimePoint deadline) = 0;

    /** now() + ms, saturating at TimePoint::max(). ms <= 0 returns
     * now() — an already-due deadline, NOT "no deadline"; callers that
     * mean "no deadline" should pass TimePoint::max() directly. */
    TimePoint after(double ms) const;
};

/** The process-wide steady-clock implementation. */
const std::shared_ptr<ServeClock>& systemServeClock();

/**
 * A manually advanced clock for deterministic serving tests.
 *
 * now() starts at an arbitrary epoch and only moves on advance(),
 * which also wakes every thread currently blocked in waitUntil() so
 * the woken waiter re-evaluates its deadline against the new time.
 *
 * Synchronization protocol for tests (no sleeps, no polling):
 * every waitUntil() entry bumps a registration counter before
 * blocking, so a test can (1) act, (2) waitForRegistrations(n) to know
 * the worker it is steering has re-entered its timed wait, and only
 * then (3) assert on externally visible state.
 */
class FakeClock : public ServeClock
{
  public:
    TimePoint now() const override;
    void waitUntil(std::condition_variable& cv, std::unique_lock<std::mutex>& lk,
                   TimePoint deadline) override;

    /** Move now() forward and wake all current waitUntil() waiters. */
    void advance(Duration d);
    void advanceMs(double ms);

    /** Total waitUntil() entries since construction (monotonic). */
    int64_t registrations() const;

    /** Block (on real time) until registrations() >= n. */
    void waitForRegistrations(int64_t n);

  private:
    struct Waiter
    {
        std::condition_variable* cv;
        std::mutex* mutex;
    };

    mutable std::mutex mutex_;
    std::condition_variable sync_cv_;  ///< waitForRegistrations wakeups.
    TimePoint now_ = TimePoint{} + std::chrono::hours(1);
    std::vector<Waiter> waiters_;
    int64_t registrations_ = 0;
};

}  // namespace patdnn
