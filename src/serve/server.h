/**
 * @file
 * Asynchronous batched inference server.
 *
 * The north-star deployment serves heavy traffic from one compiled
 * model: requests enter a bounded queue, serving workers (scheduled on
 * a util::ThreadPool) pop them, transparently micro-batch compatible
 * inputs along N, run their private InferenceSession over the shared
 * artifact, and fulfill per-request futures. Per-model serving stats
 * (latency percentiles from an obs/metrics.h histogram, throughput,
 * queue depth) are exposed via stats(); when tracing is enabled the
 * whole request path — queue wait, batch formation, dispatch,
 * per-layer execution, epilogue — emits spans (obs/trace.h) stamped
 * from the server's injectable clock.
 *
 * Four behaviours make the server production-shaped rather than a
 * queue demo:
 *
 *  - Deadlines: a request may carry an absolute deadline (SubmitOptions,
 *    measured against the server's ServeClock). Expired requests are
 *    shed from the queue before dispatch — their futures fail with
 *    ServeError(kDeadlineExceeded) and they count in
 *    stats().deadline_exceeded, separately from rejections — so a
 *    backlogged server spends no model time on answers nobody is
 *    waiting for.
 *  - Cancellation: submit hands back a RequestId; cancel() removes a
 *    still-queued request (future fails with ServeError(kCancelled)).
 *  - Admission control: a server wired to a shared AdmissionController
 *    (serve/admission.h) charges every accepted request against the
 *    process-wide queued-samples/queued-bytes budget under its model
 *    name, and sheds with kResourceExhausted (admission_detail slug)
 *    when the weighted fair-share policy refuses — so one hot model
 *    backs off at its own front door instead of starving the pool.
 *    Charges are released when a request leaves the queue for any
 *    reason (completion, deadline shed, cancel, shutdown drop).
 *  - Linger batching: with max_linger_ms > 0 a worker that popped a
 *    partial batch waits up to the linger window for more compatible
 *    requests instead of dispatching immediately, so a *sparse* request
 *    stream still coalesces. A full batch (max_batch samples) always
 *    preempts the linger; max_linger_ms == 0 dispatches whatever is
 *    queued (the pre-linger behaviour). All waits go through the
 *    injected ServeClock, so linger timing is testable with a
 *    FakeClock and no sleeps.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/admission.h"
#include "serve/clock.h"
#include "serve/session.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace patdnn {

/**
 * The one exception type a serving future can fail with: carries the
 * same ErrorCode vocabulary as Status, so async (future) and sync
 * (Status/Result) failures dispatch on one enum. Codes thrown by the
 * serving layer: kDeadlineExceeded (shed before dispatch), kCancelled
 * (removed by cancel()), kNotFound (registry routing to an unknown
 * model name), kInvalidArgument (malformed request input) and
 * kUnavailable (submit raced a shutdown).
 */
class ServeError : public std::runtime_error
{
  public:
    /** `detail`, when given, must be a stable slug constant (same
     * contract as Status::detail) — e.g. the admission_detail slugs on
     * kResourceExhausted refusals surfaced through futures. */
    ServeError(ErrorCode code, const std::string& what, const char* detail = "")
        : std::runtime_error(what), code_(code), detail_(detail)
    {
    }

    ErrorCode code() const { return code_; }

    /** Stable machine-readable slug ("" when none was attached). */
    const char* detail() const { return detail_; }

  private:
    ErrorCode code_;
    const char* detail_;
};

/** Serving knobs. */
struct ServerOptions
{
    int workers = 2;        ///< Serving threads (each owns one session).
    int64_t max_batch = 8;  ///< Micro-batch cap in samples along N.
    size_t max_queue = 64;  ///< Bounded pending-request queue depth.
    /// Batching linger window in ms: a worker holding a partial batch
    /// waits up to this long for more compatible requests. 0 = dispatch
    /// what is already queued (no timed waits at all).
    double max_linger_ms = 0.0;
    /// Construct paused; call start() to begin serving. Lets callers
    /// (and the queue-bound tests) stage a burst before any worker runs.
    bool start_paused = false;
    /// Activation memory for each worker's private session: kAuto uses
    /// the model's MemoryPlan arena when present (one peak-live-sized
    /// allocation per worker instead of one per layer).
    SessionMemory session_memory = SessionMemory::kAuto;
    /// Time source for deadlines and the linger window; null = the
    /// process steady clock. Tests inject a FakeClock here.
    std::shared_ptr<ServeClock> clock;
    /// Process-wide queued-work budget (serve/admission.h) this server
    /// charges against; null = no admission control beyond max_queue.
    /// Admission refusals are kResourceExhausted with an
    /// admission_detail slug — from trySubmit as a typed Status, from
    /// submit via the request's future (ServeError carries the slug).
    std::shared_ptr<AdmissionController> admission;
    /// Name this server charges the budget under (its fair-share
    /// identity; the registry sets it to the model's registered name).
    /// Empty with `admission` set charges under "default".
    std::string admission_name;
    /// Fair-share weight registered for admission_name at construction.
    double admission_weight = 1.0;
};

/** Identifies an accepted request for cancel(); 0 = invalid/none. */
using RequestId = uint64_t;

/** Per-request submission options. */
struct SubmitOptions
{
    /// Absolute deadline on the server's clock; max() = no deadline.
    /// Use InferenceServer::deadlineIn() for relative timeouts.
    ServeClock::TimePoint deadline = ServeClock::TimePoint::max();
};

/** Snapshot of a server's serving statistics. */
struct ServerStats
{
    int64_t accepted = 0;          ///< Requests admitted to the queue.
    int64_t completed = 0;         ///< Requests fulfilled.
    int64_t rejected = 0;          ///< trySubmit calls refused (queue full).
    int64_t deadline_exceeded = 0; ///< Shed before dispatch (deadline passed).
    int64_t cancelled = 0;         ///< Removed from the queue by cancel().
    int64_t batches = 0;           ///< Model invocations.
    size_t queue_depth = 0;        ///< Requests currently waiting.
    /// Full submit-to-completion latency distribution (obs/metrics.h
    /// fixed-bucket histogram, ms): constant memory for any lifetime,
    /// every completed request counted.
    HistogramSnapshot latency_hist;
    /// p50/p90/p99/p999 of latency_hist.
    Percentiles latency;
    /// Convenience aliases of the quad above (kept for existing
    /// callers; same numbers as latency.p50 / latency.p99).
    double p50_ms = 0.0;           ///< Median submit-to-completion latency.
    double p99_ms = 0.0;           ///< Tail submit-to-completion latency.
    double mean_ms = 0.0;
    double throughput_rps = 0.0;   ///< Completed requests / serving wall-clock.
    double avg_batch = 0.0;        ///< Mean samples per model invocation.
};

/**
 * Async inference server over one shared compiled model.
 *
 * submit() is safe from any number of producer threads. Workers run on
 * an owned util::ThreadPool for the lifetime of the server; shutdown
 * (or destruction) stops intake, drains the queue and joins them.
 */
class InferenceServer
{
  public:
    explicit InferenceServer(std::shared_ptr<const CompiledModel> model,
                             ServerOptions opts = {});
    ~InferenceServer();

    InferenceServer(const InferenceServer&) = delete;
    InferenceServer& operator=(const InferenceServer&) = delete;

    /**
     * Enqueue one NCHW input (its dim-0 may already hold several
     * samples); blocks while the queue is full. The future resolves to
     * the model output rows for exactly this input, or fails with a
     * ServeError exposing its code: kDeadlineExceeded / kCancelled for
     * shed work, kInvalidArgument for a malformed input (no leading
     * batch dim / zero samples — fails only this request's future),
     * kUnavailable when intake already stopped. `id`, when non-null,
     * receives the accepted request's id (0 if not enqueued).
     */
    std::future<Tensor> submit(Tensor input, SubmitOptions sopts = {},
                               RequestId* id = nullptr);

    /**
     * Non-throwing, non-blocking admission path: the RequestId on
     * acceptance (with *result holding the future), or a typed refusal
     * (and ++rejected) — kInvalidArgument for a malformed input,
     * kResourceExhausted when the queue is full, kUnavailable when
     * intake has stopped.
     */
    Result<RequestId> trySubmit(Tensor input, std::future<Tensor>* result,
                                SubmitOptions sopts = {});

    /**
     * Remove a still-queued request: its future fails with
     * ServeError(kCancelled) and stats().cancelled increments. False
     * if the id is unknown, already dispatched, or already completed.
     */
    bool cancel(RequestId id);

    /** Absolute deadline `ms` from now on this server's clock. */
    ServeClock::TimePoint deadlineIn(double ms) const { return clock_->after(ms); }

    /** This server's time source (shared with its tests). */
    const std::shared_ptr<ServeClock>& clock() const { return clock_; }

    /** Begin serving (no-op unless constructed with start_paused). */
    void start();

    /** Block until every accepted request has been fulfilled or shed. */
    void drain();

    /** Stop intake, drain, and join the serving workers. Idempotent. */
    void shutdown();

    ServerStats stats() const;

    const ServerOptions& options() const { return opts_; }

  private:
    struct Request
    {
        Tensor input;
        std::promise<Tensor> promise;
        Timer queued;  ///< Started at submit; read at completion.
        ServeClock::TimePoint deadline = ServeClock::TimePoint::max();
        RequestId id = 0;
        int64_t submit_ns = 0;  ///< clock_ ns at admission (queue_wait span).
        int64_t samples = 0;    ///< Admission charge (released on exit).
        int64_t bytes = 0;
    };

    void workerLoop();
    /** Pop a shape-compatible micro-batch, lingering per opts_; empty
     * only when stopping and fully drained. */
    std::vector<Request> popBatch();
    /** Shed queued requests whose deadline has passed: fail their
     * futures with ServeError(kDeadlineExceeded) and count them (mutex_ held;
     * set_exception only stores state, no user code runs under the
     * lock). Returns how many were shed. */
    size_t shedExpiredLocked();
    /** Fail one request as deadline-exceeded and release its admission
     * charge (mutex_ held; the controller only takes its own lock). */
    void expireLocked(Request& req);
    /** Assign an id and queue the request (mutex_ held); returns the
     * assigned id. */
    RequestId enqueueLocked(Request& req);
    /** Charge the admission budget for `req` (no-op without a
     * controller). OK = charge recorded in req.samples/req.bytes. */
    Status admitRequest(Request& req);
    /** Return `req`'s admission charge (no-op when never charged). */
    void releaseAdmission(const Request& req);

    std::shared_ptr<const CompiledModel> model_;
    ServerOptions opts_;
    std::shared_ptr<ServeClock> clock_;

    mutable std::mutex mutex_;
    std::condition_variable cv_request_;  ///< Workers: queue non-empty/stop.
    std::condition_variable cv_space_;    ///< Producers: queue has room.
    std::condition_variable cv_idle_;     ///< drain(): all work finished.
    std::deque<Request> queue_;
    RequestId next_id_ = 1;
    int in_flight_ = 0;      ///< Requests popped but not yet fulfilled.
    bool started_ = false;
    bool stopping_ = false;  ///< Intake closed; workers exit when drained.

    // Serving statistics (guarded by mutex_, except the histogram,
    // whose record() is lock-free). Per-server (not in the global
    // MetricsRegistry) so concurrent servers/tests never share state.
    Histogram latency_hist_;  ///< Submit-to-completion ms.
    int64_t accepted_ = 0;
    int64_t completed_ = 0;
    int64_t rejected_ = 0;
    int64_t deadline_exceeded_ = 0;
    int64_t cancelled_ = 0;
    int64_t batches_ = 0;
    int64_t batched_samples_ = 0;
    Timer serving_clock_;    ///< Reset at start().

    ThreadPool pool_;        ///< The serving workers.
    std::thread launcher_;   ///< Drives pool_.parallelFor(workers, loop).
};

}  // namespace patdnn
