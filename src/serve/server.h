/**
 * @file
 * Asynchronous batched inference server.
 *
 * The north-star deployment serves heavy traffic from one compiled
 * model: requests enter a bounded queue, serving workers (scheduled on
 * a util::ThreadPool) pop them, transparently micro-batch compatible
 * inputs along N, run their private InferenceSession over the shared
 * artifact, and fulfill per-request futures. Per-model serving stats
 * (p50/p99 latency, throughput, queue depth) come from util/stats.h.
 */
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/session.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace patdnn {

/** Serving knobs. */
struct ServerOptions
{
    int workers = 2;        ///< Serving threads (each owns one session).
    int64_t max_batch = 8;  ///< Micro-batch cap in samples along N.
    size_t max_queue = 64;  ///< Bounded pending-request queue depth.
    /// Construct paused; call start() to begin serving. Lets callers
    /// (and the queue-bound tests) stage a burst before any worker runs.
    bool start_paused = false;
};

/** Snapshot of a server's serving statistics. */
struct ServerStats
{
    int64_t completed = 0;       ///< Requests fulfilled.
    int64_t rejected = 0;        ///< trySubmit calls refused (queue full).
    int64_t batches = 0;         ///< Model invocations.
    size_t queue_depth = 0;      ///< Requests currently waiting.
    /// Latency percentiles are computed over a sliding window of the
    /// most recent requests (InferenceServer::kLatencyWindow), so a
    /// long-running server's stats stay bounded and current.
    double p50_ms = 0.0;         ///< Median submit-to-completion latency.
    double p99_ms = 0.0;         ///< Tail submit-to-completion latency.
    double mean_ms = 0.0;
    double throughput_rps = 0.0; ///< Completed requests / serving wall-clock.
    double avg_batch = 0.0;      ///< Mean samples per model invocation.
};

/**
 * Async inference server over one shared compiled model.
 *
 * submit() is safe from any number of producer threads. Workers run on
 * an owned util::ThreadPool for the lifetime of the server; shutdown
 * (or destruction) stops intake, drains the queue and joins them.
 */
class InferenceServer
{
  public:
    explicit InferenceServer(std::shared_ptr<const CompiledModel> model,
                             ServerOptions opts = {});
    ~InferenceServer();

    InferenceServer(const InferenceServer&) = delete;
    InferenceServer& operator=(const InferenceServer&) = delete;

    /**
     * Enqueue one NCHW input (its dim-0 may already hold several
     * samples); blocks while the queue is full. The future resolves to
     * the model output rows for exactly this input. A malformed input
     * (no leading batch dim / zero samples) fails only this request's
     * future with std::invalid_argument.
     */
    std::future<Tensor> submit(Tensor input);

    /** Non-blocking submit; false (and ++rejected) when the input is
     * malformed, the queue is full, or intake has stopped. */
    bool trySubmit(Tensor input, std::future<Tensor>* result);

    /** Begin serving (no-op unless constructed with start_paused). */
    void start();

    /** Block until every accepted request has been fulfilled. */
    void drain();

    /** Stop intake, drain, and join the serving workers. Idempotent. */
    void shutdown();

    ServerStats stats() const;

    const ServerOptions& options() const { return opts_; }

    /// Latency samples retained for the stats percentiles (ring buffer;
    /// bounds memory and stats() cost on long-running servers).
    static constexpr size_t kLatencyWindow = 4096;

  private:
    struct Request
    {
        Tensor input;
        std::promise<Tensor> promise;
        Timer queued;  ///< Started at submit; read at completion.
    };

    void workerLoop();
    /** Pop a shape-compatible micro-batch; empty when stopping. */
    std::vector<Request> popBatch();

    std::shared_ptr<const CompiledModel> model_;
    ServerOptions opts_;

    mutable std::mutex mutex_;
    std::condition_variable cv_request_;  ///< Workers: queue non-empty/stop.
    std::condition_variable cv_space_;    ///< Producers: queue has room.
    std::condition_variable cv_idle_;     ///< drain(): all work finished.
    std::deque<Request> queue_;
    int in_flight_ = 0;      ///< Requests popped but not yet fulfilled.
    bool started_ = false;
    bool stopping_ = false;  ///< Intake closed; workers exit when drained.

    // Serving statistics (guarded by mutex_).
    std::vector<double> latencies_ms_;  ///< Ring of <= kLatencyWindow samples.
    size_t latency_cursor_ = 0;         ///< Overwrite position once full.
    int64_t completed_ = 0;
    int64_t rejected_ = 0;
    int64_t batches_ = 0;
    int64_t batched_samples_ = 0;
    Timer serving_clock_;    ///< Reset at start().

    ThreadPool pool_;        ///< The serving workers.
    std::thread launcher_;   ///< Drives pool_.parallelFor(workers, loop).
};

}  // namespace patdnn
