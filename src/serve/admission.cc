#include "serve/admission.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/logging.h"

namespace patdnn {

namespace {

/** Process-global admission metrics (stable references; see
 * obs/metrics.h registry contract). Multiple controllers in one
 * process share these — they describe the process, not one pool. */
struct AdmissionMetrics
{
    Counter& admitted =
        MetricsRegistry::global().counter("serve.admission.admitted");
    Counter& shed_fair =
        MetricsRegistry::global().counter("serve.admission.shed_over_fair_share");
    Counter& shed_global =
        MetricsRegistry::global().counter("serve.admission.shed_global_budget");
    Gauge& queued_samples =
        MetricsRegistry::global().gauge("serve.admission.queued_samples");
    Gauge& queued_bytes =
        MetricsRegistry::global().gauge("serve.admission.queued_bytes");
};

AdmissionMetrics&
metrics()
{
    static AdmissionMetrics m;
    return m;
}

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions opts) : opts_(opts)
{
    opts_.max_queued_samples = std::max<int64_t>(0, opts_.max_queued_samples);
    opts_.max_queued_bytes = std::max<int64_t>(0, opts_.max_queued_bytes);
    opts_.fair_share_pressure =
        std::clamp(opts_.fair_share_pressure, 0.0, 1.0);
}

bool
AdmissionController::enabled() const
{
    return opts_.max_queued_samples > 0 || opts_.max_queued_bytes > 0;
}

void
AdmissionController::registerModel(const std::string& name, double weight)
{
    std::lock_guard<std::mutex> lk(mutex_);
    ModelEntry& entry = models_[name];
    entry.registered = true;
    entry.stats.weight = weight > 0.0 ? weight : 1.0;
}

void
AdmissionController::deregisterModel(const std::string& name)
{
    std::lock_guard<std::mutex> lk(mutex_);
    auto it = models_.find(name);
    if (it == models_.end())
        return;
    // Keep the entry while charges are outstanding (release() still
    // needs the bookkeeping); just stop counting its weight.
    it->second.registered = false;
    if (it->second.stats.queued_samples == 0 &&
        it->second.stats.queued_bytes == 0)
        models_.erase(it);
}

double
AdmissionController::totalWeightLocked() const
{
    double total = 0.0;
    for (const auto& [name, entry] : models_)
        if (entry.registered)
            total += entry.stats.weight;
    return total;
}

Status
AdmissionController::checkDimLocked(const ModelEntry& entry, int64_t model_queued,
                                    int64_t total_queued, int64_t request,
                                    int64_t budget, const char* what) const
{
    if (budget <= 0)
        return Status::OK();  // Dimension unlimited.
    const int64_t total_after = total_queued + request;
    const int64_t model_after = model_queued + request;
    const double total_weight = totalWeightLocked();
    const double share =
        total_weight > 0.0
            ? entry.stats.weight / total_weight * static_cast<double>(budget)
            : static_cast<double>(budget);
    const bool over_share = static_cast<double>(model_after) > share;
    if (total_after > budget) {
        // Pool full. Attribute the refusal: a model over its weighted
        // share is the one being shed by policy; a model under it met
        // a genuinely exhausted budget.
        if (over_share)
            return Status(ErrorCode::kResourceExhausted,
                          std::string("admission: model over weighted fair "
                                      "share of queued ") +
                              what + " budget",
                          admission_detail::kOverFairShare);
        return Status(ErrorCode::kResourceExhausted,
                      std::string("admission: global queued ") + what +
                          " budget exhausted",
                      admission_detail::kGlobalBudget);
    }
    const double pressure_line =
        opts_.fair_share_pressure * static_cast<double>(budget);
    if (over_share && static_cast<double>(total_after) > pressure_line)
        return Status(ErrorCode::kResourceExhausted,
                      std::string("admission: model over weighted fair share "
                                  "of queued ") +
                          what + " budget under pressure",
                      admission_detail::kOverFairShare);
    return Status::OK();
}

Status
AdmissionController::tryAdmit(const std::string& name, int64_t samples,
                              int64_t bytes)
{
    PATDNN_CHECK(samples >= 0 && bytes >= 0,
                 "admission charge must be non-negative");
    std::lock_guard<std::mutex> lk(mutex_);
    ModelEntry& entry = models_[name];
    if (!entry.registered) {
        entry.registered = true;
        if (entry.stats.weight <= 0.0)
            entry.stats.weight = 1.0;
    }
    if (enabled()) {
        Status st = checkDimLocked(entry, entry.stats.queued_samples,
                                   queued_samples_, samples,
                                   opts_.max_queued_samples, "samples");
        if (st.ok())
            st = checkDimLocked(entry, entry.stats.queued_bytes, queued_bytes_,
                                bytes, opts_.max_queued_bytes, "bytes");
        if (!st.ok()) {
            if (st.detail() == admission_detail::kOverFairShare) {
                ++entry.stats.shed_over_fair_share;
                ++shed_over_fair_share_;
                metrics().shed_fair.inc();
            } else {
                ++entry.stats.shed_global_budget;
                ++shed_global_budget_;
                metrics().shed_global.inc();
            }
            return st;
        }
    }
    entry.stats.queued_samples += samples;
    entry.stats.queued_bytes += bytes;
    ++entry.stats.admitted;
    queued_samples_ += samples;
    queued_bytes_ += bytes;
    ++admitted_;
    metrics().admitted.inc();
    exportGaugesLocked();
    return Status::OK();
}

void
AdmissionController::release(const std::string& name, int64_t samples,
                             int64_t bytes)
{
    std::lock_guard<std::mutex> lk(mutex_);
    auto it = models_.find(name);
    PATDNN_CHECK(it != models_.end(),
                 "admission release for unknown model '" << name << "'");
    ModelEntry& entry = it->second;
    PATDNN_CHECK(entry.stats.queued_samples >= samples &&
                     entry.stats.queued_bytes >= bytes,
                 "admission release exceeds outstanding charge for '"
                     << name << "'");
    entry.stats.queued_samples -= samples;
    entry.stats.queued_bytes -= bytes;
    queued_samples_ -= samples;
    queued_bytes_ -= bytes;
    if (!entry.registered && entry.stats.queued_samples == 0 &&
        entry.stats.queued_bytes == 0)
        models_.erase(it);
    exportGaugesLocked();
}

void
AdmissionController::exportGaugesLocked() const
{
    metrics().queued_samples.set(static_cast<double>(queued_samples_));
    metrics().queued_bytes.set(static_cast<double>(queued_bytes_));
}

AdmissionStats
AdmissionController::stats() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    AdmissionStats s;
    s.queued_samples = queued_samples_;
    s.queued_bytes = queued_bytes_;
    s.admitted = admitted_;
    s.shed_over_fair_share = shed_over_fair_share_;
    s.shed_global_budget = shed_global_budget_;
    for (const auto& [name, entry] : models_)
        s.models[name] = entry.stats;
    return s;
}

}  // namespace patdnn
