/**
 * @file
 * Shard router: the horizontal-scale frontend of the serving tier.
 *
 * One InferenceServer is one replica — a queue, a set of serving
 * workers, and private sessions over one shared compiled model. The
 * ShardRouter spreads the traffic for a named model across N such
 * replicas and gives callers a single front door:
 *
 *   - Routing policies (RouterOptions::policy):
 *       kConsistentHash — a hash ring with `vnodes` virtual nodes per
 *         replica over the caller's request key, so one key lands on
 *         one replica (cache/session affinity) and adding or removing
 *         a replica only remaps ~1/N of the key space;
 *       kLeastLoaded — route to the replica with the smallest queue
 *         depth (from ReplicaEndpoint::stats(), i.e. the same
 *         histogram-backed ServerStats the obs layer exports).
 *   - Per-replica health: `eject_after_failures` consecutive refusals
 *     (kUnavailable / kResourceExhausted / kInternal) eject a replica
 *     from routing; after `reinstate_after_ms` on the router's
 *     ServeClock it is reinstated on probation — the next refusal
 *     re-ejects it immediately, the next success fully heals it. All
 *     timing goes through the injectable clock, so ejection windows
 *     are FakeClock-testable with no sleeps.
 *   - Transparent failover: a refusal from the policy-chosen replica
 *     (its queue is full, admission shed it, or it is shut down)
 *     retries the remaining healthy replicas in policy order before
 *     the request is reported shed — the client sees one submit and
 *     the admission controller's backpressure becomes load *movement*
 *     before it becomes load *shedding*.
 *
 * Replicas are ReplicaEndpoint instances. LocalReplica wraps an
 * in-process InferenceServer (this PR's deployment shape); the
 * interface is the seam where a cross-process transport (RPC stub
 * with the same trySubmit/stats contract) plugs in later without
 * touching routing, health, or failover.
 *
 * Exported obs counters: serve.router.routed / .failovers / .shed /
 * .ejections / .reinstatements.
 */
#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/server.h"

namespace patdnn {

/**
 * One replica the router can submit to. Implementations must be
 * thread-safe (the router calls from any submitting thread) and must
 * express refusals through trySubmit's typed Status — never by
 * throwing — so the router can classify them for health and failover.
 */
class ReplicaEndpoint
{
  public:
    virtual ~ReplicaEndpoint() = default;

    /** InferenceServer::trySubmit contract: the accepted RequestId
     * (with *result holding the future) or a typed refusal. */
    virtual Result<RequestId> trySubmit(Tensor input,
                                        std::future<Tensor>* result,
                                        SubmitOptions sopts) = 0;

    /** Serving stats (queue_depth drives kLeastLoaded routing). */
    virtual ServerStats stats() const = 0;

    /** Human-readable identity for stats/diagnostics. */
    virtual std::string describe() const = 0;

    /** Block until accepted work is fulfilled or shed (no-op default
     * for endpoints that cannot wait remotely). */
    virtual void drain() {}

    /** Stop intake and release serving resources (no-op default). */
    virtual void shutdown() {}
};

/** In-process replica: one InferenceServer behind the endpoint seam. */
class LocalReplica : public ReplicaEndpoint
{
  public:
    explicit LocalReplica(std::shared_ptr<InferenceServer> server);

    Result<RequestId> trySubmit(Tensor input, std::future<Tensor>* result,
                                SubmitOptions sopts) override;
    ServerStats stats() const override;
    std::string describe() const override;
    void drain() override;
    void shutdown() override;

    const std::shared_ptr<InferenceServer>& server() const { return server_; }

  private:
    std::shared_ptr<InferenceServer> server_;
};

/** How the router picks a replica for a request. */
enum class RoutePolicy
{
    kConsistentHash,  ///< Stable key -> replica mapping on a hash ring.
    kLeastLoaded,     ///< Smallest queue depth wins; key is ignored.
};

const char* routePolicyName(RoutePolicy policy);

/** Router-wide knobs. */
struct RouterOptions
{
    RoutePolicy policy = RoutePolicy::kConsistentHash;
    /// Consecutive refusals that eject a replica from routing.
    int eject_after_failures = 3;
    /// Ejection window on the router's clock; after it the replica is
    /// reinstated on probation (one refusal re-ejects immediately).
    double reinstate_after_ms = 1000.0;
    /// Virtual nodes per replica on the consistent-hash ring.
    int vnodes = 64;
    /// Health/ejection time source; null = the process steady clock.
    /// Tests inject a FakeClock here.
    std::shared_ptr<ServeClock> clock;
};

/** Per-replica slice of a RouterStats snapshot. */
struct RouterReplicaStats
{
    std::string describe;
    bool ejected = false;
    int64_t routed = 0;        ///< Requests this replica accepted.
    int64_t refusals = 0;      ///< Typed refusals (health-relevant).
    int64_t ejections = 0;
    int64_t reinstatements = 0;
    size_t queue_depth = 0;    ///< From the endpoint's last stats().
};

/** Snapshot of one model's routing state. */
struct RouterStats
{
    int64_t routed = 0;      ///< Requests accepted by some replica.
    int64_t failovers = 0;   ///< Retry hops after a refusal.
    int64_t shed = 0;        ///< Requests no replica accepted.
    int64_t ejections = 0;
    int64_t reinstatements = 0;
    std::vector<RouterReplicaStats> replicas;
};

/**
 * Routes named-model traffic across replica sets. Thread-safe:
 * submissions, replica management and stats may race freely; endpoint
 * calls happen outside the router lock, so one slow replica never
 * blocks routing to the others.
 */
class ShardRouter
{
  public:
    explicit ShardRouter(RouterOptions opts = {});
    ~ShardRouter();

    ShardRouter(const ShardRouter&) = delete;
    ShardRouter& operator=(const ShardRouter&) = delete;

    /** Attach a replica to `model`'s set; returns its replica index. */
    int addReplica(const std::string& model,
                   std::shared_ptr<ReplicaEndpoint> endpoint);

    /**
     * Convenience: stand up `n` LocalReplica InferenceServers over one
     * shared compiled model (each gets its own queue/workers/sessions;
     * `server_opts.admission`, when set, makes every replica charge
     * the shared budget under `model`). kInvalidArgument on a null
     * model or n < 1.
     */
    Status addLocalReplicas(const std::string& model,
                            std::shared_ptr<const CompiledModel> compiled,
                            int n, ServerOptions server_opts = {});

    size_t replicaCount(const std::string& model) const;

    /**
     * Route one request. `key` is the caller's affinity key (user id,
     * session id...) — consistent-hash routes on it, least-loaded
     * ignores it. On refusal the router fails over per the policy
     * order; when every live replica refuses, the LAST refusal is
     * returned (so an admission shed keeps its admission_detail slug).
     * kNotFound for an unknown model, kUnavailable when every replica
     * of the model is ejected. `replica`, when non-null, receives the
     * accepting replica's index (-1 if none).
     */
    Result<RequestId> trySubmit(const std::string& model, uint64_t key,
                                Tensor input, std::future<Tensor>* result,
                                SubmitOptions sopts = {},
                                int* replica = nullptr);

    /** Future-returning wrapper: refusals surface as a future failing
     * with ServeError carrying the same code + detail slug. */
    std::future<Tensor> submit(const std::string& model, uint64_t key,
                               Tensor input, SubmitOptions sopts = {},
                               int* replica = nullptr);

    RouterStats stats(const std::string& model) const;

    /** Model names with at least one replica, sorted. */
    std::vector<std::string> models() const;

    /** Drain every replica of every model. */
    void drainAll();

    /** Shut down every replica of every model. Idempotent. */
    void shutdownAll();

    const RouterOptions& options() const { return opts_; }

  private:
    struct Replica
    {
        std::shared_ptr<ReplicaEndpoint> endpoint;
        int consecutive_failures = 0;
        bool ejected = false;
        ServeClock::TimePoint eject_until = ServeClock::TimePoint::min();
        int64_t routed = 0;
        int64_t refusals = 0;
        int64_t ejections = 0;
        int64_t reinstatements = 0;
    };

    struct Group
    {
        std::vector<Replica> replicas;
        /// Consistent-hash ring: (point, replica index), sorted by
        /// point. Rebuilt on addReplica.
        std::vector<std::pair<uint64_t, int>> ring;
        int64_t routed = 0;
        int64_t failovers = 0;
        int64_t shed = 0;
        int64_t ejections = 0;
        int64_t reinstatements = 0;
    };

    /** mutex_ held. Candidate replica indices for one submission, in
     * policy order, healthy (or probation-reinstated) only. Probation
     * transitions (reinstatements) are applied here. */
    std::vector<int> candidatesLocked(Group& group, uint64_t key);

    /** mutex_ held. Health bookkeeping after an attempt. */
    void recordSuccessLocked(Group& group, int idx);
    void recordFailureLocked(Group& group, int idx);

    RouterOptions opts_;
    std::shared_ptr<ServeClock> clock_;
    mutable std::mutex mutex_;
    std::map<std::string, Group> groups_;
};

}  // namespace patdnn
