/**
 * @file
 * Multi-model serving registry.
 *
 * One serving process, several named compiled models: the registry
 * loads (or adopts) artifacts under caller-chosen names, fronts each
 * with its own micro-batching InferenceServer, and routes requests by
 * model name. All models share ONE compute thread pool — the
 * registry's DeviceSpec materializes its lazy util::ThreadPool once at
 * construction and every loaded model is compiled/restored against a
 * copy of that spec, so N models cost one set of compute workers
 * instead of N (the per-server *serving* workers are cheap: they
 * block in the queue, the compute pool does the math). Each worker's
 * session follows ServerOptions::session_memory — models restored
 * from v4 artifacts run out of a planned activation arena, so the
 * per-worker memory cost of holding many models stays at peak-live
 * size rather than sum-of-layers.
 *
 * Eviction shuts the model's server down (outstanding futures resolve
 * or fail per the server's shutdown contract) and drops the registry's
 * reference; in-flight submit() calls racing an evict hold their own
 * shared_ptr, so nothing dangles.
 */
#pragma once

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/artifact.h"
#include "serve/server.h"

namespace patdnn {

/** Registry-wide knobs. */
struct RegistryOptions
{
    /// Execution device shared by every model in this registry; its
    /// compute pool is created once and shared. Defaults to a host CPU
    /// device (DeviceSpec{} width).
    DeviceSpec device;
    /// Server options applied to each model's InferenceServer (the
    /// clock, linger window, batch and queue bounds are per-registry
    /// policy; per-model overrides go through add()).
    ServerOptions server;
    /// Process-wide queued-work budget (serve/admission.h). With any
    /// limit set, the registry owns one AdmissionController shared by
    /// every server it fronts: each model charges under its registered
    /// name with ServerOptions::admission_weight as its fair-share
    /// weight, so one hot model sheds (kResourceExhausted +
    /// admission_detail slug) instead of starving the pool. Both
    /// limits 0 (the default) = no admission control.
    AdmissionOptions admission;
};

/**
 * Named multi-model serving front end.
 *
 * Thread-safe: load/add/evict/submit/stats may race freely. The
 * registry never blocks one model's producers on another model's
 * queue — per-model servers are resolved under a short lock, then
 * released before any blocking call.
 */
class ModelRegistry
{
  public:
    explicit ModelRegistry(RegistryOptions opts = {});
    ~ModelRegistry();

    ModelRegistry(const ModelRegistry&) = delete;
    ModelRegistry& operator=(const ModelRegistry&) = delete;

    /**
     * Load an artifact from `path` and serve it as `name`. Propagates
     * the artifact loader's Status (code + detail slug, see artifact.h)
     * when the artifact is rejected; kInvalidArgument when the name is
     * already taken.
     */
    Status load(const std::string& name, const std::string& path);

    /** Serve an already-compiled model as `name`; per-model server
     * options override the registry defaults. kInvalidArgument when
     * the model is null or the name is taken. */
    Status add(const std::string& name,
               std::shared_ptr<const CompiledModel> model);
    Status add(const std::string& name,
               std::shared_ptr<const CompiledModel> model,
               const ServerOptions& server_opts);

    /** Shut down `name`'s server and drop it. False if absent. */
    bool evict(const std::string& name);

    /** Loaded model names, sorted. */
    std::vector<std::string> names() const;
    size_t size() const;

    /** The shared model under `name`; null if absent. */
    std::shared_ptr<const CompiledModel> model(const std::string& name) const;

    /**
     * Route one request to `name`'s server (blocking submit semantics).
     * An unknown name fails only this request's future with
     * ServeError(kNotFound).
     */
    std::future<Tensor> submit(const std::string& name, Tensor input,
                               SubmitOptions sopts = {}, RequestId* id = nullptr);

    /** Non-throwing, non-blocking admission path to `name`'s server
     * (InferenceServer::trySubmit semantics — admission-control
     * refusals surface here as kResourceExhausted with their
     * admission_detail slug); kNotFound for an unknown name. */
    Result<RequestId> trySubmit(const std::string& name, Tensor input,
                                std::future<Tensor>* result,
                                SubmitOptions sopts = {});

    /** Cancel a queued request on `name`'s server. */
    bool cancel(const std::string& name, RequestId id);

    /** Stats snapshot for `name` (default-constructed if absent). */
    ServerStats stats(const std::string& name) const;

    /** Absolute deadline `ms` from now on the registry's clock. */
    ServeClock::TimePoint deadlineIn(double ms) const;

    /** Block until every model's accepted work is fulfilled or shed. */
    void drainAll();

    /** Stop intake and join every model's workers. Idempotent. */
    void shutdownAll();

    /** The shared execution device (and compute pool). */
    const DeviceSpec& device() const { return opts_.device; }

    /** The registry-owned admission controller; null when
     * RegistryOptions::admission set no budget. */
    const std::shared_ptr<AdmissionController>& admission() const
    {
        return admission_;
    }

  private:
    struct Entry
    {
        std::shared_ptr<const CompiledModel> model;
        std::shared_ptr<InferenceServer> server;
    };

    std::shared_ptr<InferenceServer> serverFor(const std::string& name) const;

    RegistryOptions opts_;
    std::shared_ptr<ServeClock> clock_;
    std::shared_ptr<AdmissionController> admission_;  ///< Null = disabled.
    mutable std::mutex mutex_;
    std::map<std::string, Entry> entries_;
};

}  // namespace patdnn
