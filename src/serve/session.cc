#include "serve/session.h"

#include "obs/trace.h"
#include "util/logging.h"
#include "util/stats.h"

namespace patdnn {

InferenceSession::InferenceSession(std::shared_ptr<const CompiledModel> model,
                                   SessionMemory memory)
    : model_(std::move(model))
{
    PATDNN_CHECK(model_ != nullptr, "session needs a model");
    if (memory == SessionMemory::kPlannedArena)
        PATDNN_CHECK(model_->hasMemoryPlan(),
                     "planned-arena session requires a model memory plan");
    if (memory != SessionMemory::kPerLayer && model_->hasMemoryPlan())
        workspace_.bindPlan(&model_->memoryPlan());
}

Tensor
InferenceSession::run(const Tensor& input)
{
    TraceSpan span("session.run", "serve", "batch", input.shape().dim(0));
    if (profiling_)
        profile_.reset();  // lastRunProfile() == the most recent run.
    Timer t;
    Tensor out =
        model_->run(input, workspace_, profiling_ ? &profile_ : nullptr);
    stats_.total_ms += t.elapsedMs();
    ++stats_.requests;
    stats_.samples += input.shape().dim(0);
    return out;
}

}  // namespace patdnn
