/**
 * @file
 * Shared-weight inference sessions.
 *
 * One compiled model (weights, FKW storage, LR, tuned parameters) is an
 * immutable artifact that many concurrent sessions share through a
 * shared_ptr; each session owns only its activation Workspace plus its
 * latency bookkeeping. This is the serving-side answer to model-size
 * pressure: N concurrent streams cost one copy of the weights and N
 * copies of the (much smaller) activations.
 */
#pragma once

#include <cstdint>
#include <memory>

#include "rt/framework.h"

namespace patdnn {

/** Per-session request counters. */
struct SessionStats
{
    int64_t requests = 0;      ///< run() calls completed.
    int64_t samples = 0;       ///< Total N across all inputs.
    double total_ms = 0.0;     ///< Wall-clock summed over run() calls.
};

/**
 * A single inference stream over a shared compiled model. Not
 * thread-safe itself (one stream = one caller), but any number of
 * sessions may run concurrently against the same model.
 */
class InferenceSession
{
  public:
    explicit InferenceSession(std::shared_ptr<const CompiledModel> model);

    /** Run one NCHW batch through the shared model. */
    Tensor run(const Tensor& input);

    const SessionStats& stats() const { return stats_; }
    const CompiledModel& model() const { return *model_; }

  private:
    std::shared_ptr<const CompiledModel> model_;
    Workspace workspace_;  ///< This session's private activation scratch.
    SessionStats stats_;
};

}  // namespace patdnn
