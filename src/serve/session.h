/**
 * @file
 * Shared-weight inference sessions.
 *
 * One compiled model (weights, FKW storage, LR, tuned parameters) is an
 * immutable artifact that many concurrent sessions share through a
 * shared_ptr; each session owns only its activation Workspace plus its
 * latency bookkeeping. This is the serving-side answer to model-size
 * pressure: N concurrent streams cost one copy of the weights and N
 * copies of the (much smaller) activations.
 *
 * When the model carries an activation MemoryPlan (rt/memplan.h —
 * compiled with CompileOptions::enable_memory_plan, or restored from a
 * v4 artifact), a session's activations collapse further: one arena of
 * plan.arenaBytes(batch) sized by peak LIVE memory instead of one
 * allocation per layer, which is what lets a host hold many more
 * concurrent sessions per GB. Planned and per-layer execution are
 * bit-exact against each other (tests/memplan_exec_test.cc).
 */
#pragma once

#include <cstdint>
#include <memory>

#include "rt/framework.h"

namespace patdnn {

/** Per-session request counters. */
struct SessionStats
{
    int64_t requests = 0;      ///< run() calls completed.
    int64_t samples = 0;       ///< Total N across all inputs.
    double total_ms = 0.0;     ///< Wall-clock summed over run() calls.
};

/** Activation-memory strategy for a session. */
enum class SessionMemory
{
    /// Planned arena when the model carries a MemoryPlan, else
    /// per-layer. The default: artifacts with plans get the small
    /// footprint, everything else keeps working.
    kAuto,
    /// Require the model's plan (CHECK-aborts when absent).
    kPlannedArena,
    /// Legacy per-layer Workspace allocations, even when a plan exists.
    kPerLayer,
};

/**
 * A single inference stream over a shared compiled model. Not
 * thread-safe itself (one stream = one caller), but any number of
 * sessions may run concurrently against the same model.
 */
class InferenceSession
{
  public:
    explicit InferenceSession(std::shared_ptr<const CompiledModel> model,
                              SessionMemory memory = SessionMemory::kAuto);

    /** Run one NCHW batch through the shared model. */
    Tensor run(const Tensor& input);

    /**
     * Per-layer breakdown of the MOST RECENT run() (empty before the
     * first run or when profiling is disabled): layer name, engine
     * kind, kernel ISA, bytes touched, call count, total/max time.
     * RunProfile::renderTable() prints it as a Fig. 14-style table.
     */
    const RunProfile& lastRunProfile() const { return profile_; }

    /** Per-layer profiling on/off (on by default; the per-node clock
     * reads cost well under a percent of a model run). */
    void setProfilingEnabled(bool on) { profiling_ = on; }
    bool profilingEnabled() const { return profiling_; }

    /** True when activations live in a single planned arena. */
    bool usesPlannedArena() const { return workspace_.planned(); }

    /** Bytes currently backing this session's activations (0 before
     * the first run). Planned sessions report the arena; per-layer
     * sessions the sum of their slot allocations. */
    size_t activationBytes() const { return workspace_.activationBytes(); }

    /** Debug canary (tests): NaN-poison freed arena ranges between
     * layers to surface any executor reading recycled memory. */
    void setDebugPoisonFreed(bool on) { workspace_.setPoisonFreed(on); }

    const SessionStats& stats() const { return stats_; }
    const CompiledModel& model() const { return *model_; }

  private:
    std::shared_ptr<const CompiledModel> model_;
    Workspace workspace_;  ///< This session's private activation scratch.
    SessionStats stats_;
    RunProfile profile_;   ///< Most recent run's per-layer breakdown.
    bool profiling_ = true;
};

}  // namespace patdnn
