/**
 * @file
 * Versioned binary model artifacts: the distribution format for
 * compiled models.
 *
 * PatDNN's deployment story (Fig. 5) ends at execution code
 * generation; an artifact captures that stage's entire output — every
 * layer's FKW-packed weights, ConvDesc, tuned parameters and graph
 * wiring — so a model can be compiled (pruned, reordered, tuned) once
 * and then distributed to serving hosts that only deserialize and run.
 *
 * On-disk layout (little-endian):
 *
 *   [magic "PDNN"] [u32 version] [u64 payload_size] [payload bytes]
 *   [u64 FNV-1a checksum of payload]
 *
 * The payload holds the framework kind, the kernel ISA the embedded
 * TuneParams were searched on (version >= 2), a device fingerprint +
 * compile-option record (version >= 3), the output-node id and one
 * record per graph-node slot; pattern-compiled conv layers embed their
 * FKW storage via sparse/fkw.h's byte-level serializer and are
 * re-validated with validateFkw() on load.
 *
 * Version 6 quantization: the compile-option record gains the
 * precision knob and calibration settings (method, percentile, sample
 * count, seed), and each quantized conv layer carries a quant record —
 * the calibrated activation scale and the per-output-channel weight
 * scales. Weights are still stored as f32 (the quantized bytes are
 * re-derived deterministically from tensor + scales on load), so a v5
 * serialization of a quantized model simply drops the record and loads
 * as plain f32. A quant record that is malformed — a scale that is not
 * finite and positive, a scale count that disagrees with the layer's
 * cout, or a record on a non-conv / FKW layer — is kDataLoss with the
 * kBadQuantRecord slug.
 *
 * Version 4 memory plan: the payload ends with the model's activation
 * MemoryPlan (rt/memplan.h) — per-slot arena offsets/sizes/lifetimes in
 * per-sample float elements — so a serving host gets the planned-arena
 * session footprint without re-running lifetime analysis. The restored
 * plan is re-validated against the restored graph on load
 * (CompiledModel::adoptMemoryPlan); an inconsistent plan is kDataLoss
 * with the kBadMemoryPlan slug. v1–v3 artifacts load plan-less and
 * sessions over them fall back to per-layer workspaces.
 *
 * Version 3 provenance: the header records what produced the artifact
 * (pool width, GPU-like scheduling flag, tile budget, pattern count,
 * connectivity rates, optimization switches, seed), so a serving host
 * can reject or warn about a mismatched artifact with a *diagnostic*
 * ("compiled for pool width 8, this host runs 1") instead of failing
 * an invariant deep inside an executor. Cross-ISA loads keep the v2
 * behaviour: execution is exact on any ISA, so a mismatch only warns
 * that the tuned widths were searched elsewhere. A GPU-like/CPU
 * scheduling mismatch is always an error; pool-width and tile-budget
 * differences warn unless ArtifactLoadOptions asks for strictness.
 *
 * I/O is streamed: saveModelArtifact() serializes one layer record at
 * a time straight into the file (checksum computed incrementally, the
 * payload size backpatched), and loadModelArtifact() verifies the
 * checksum in bounded chunks — neither path materializes a second
 * whole-model byte buffer next to the model itself.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rt/framework.h"
#include "util/status.h"

namespace patdnn {

/**
 * Stable machine-readable failure slugs the artifact loaders attach
 * via Status::detail(), so failure modes that share an ErrorCode are
 * distinguishable without matching message text: a truncated stream
 * and a flipped checksum are both kDataLoss, but carry different
 * slugs. These strings are part of the API contract.
 */
namespace artifact_detail {
inline constexpr char kBadMagic[] = "artifact/bad-magic";
inline constexpr char kUnsupportedVersion[] = "artifact/unsupported-version";
inline constexpr char kTruncatedStream[] = "artifact/truncated-stream";
inline constexpr char kChecksumMismatch[] = "artifact/checksum-mismatch";
inline constexpr char kMalformedPayload[] = "artifact/malformed-payload";
inline constexpr char kFingerprintMismatch[] = "artifact/fingerprint-mismatch";
inline constexpr char kBadMemoryPlan[] = "artifact/bad-memory-plan";
inline constexpr char kBadQuantRecord[] = "artifact/bad-quant-record";
}  // namespace artifact_detail

/** Artifact format version written by serializeModel. Version 2 added
 * the tuned-ISA field; version 3 the device fingerprint and compile
 * option record; version 4 the activation memory plan; version 5 the
 * dense packed-GEMM cache-blocking fields (gemm_kc / gemm_nc) in each
 * layer's tuning record; version 6 the precision/calibration options
 * and per-layer quantization records (activation + weight scales).
 * v1–v5 artifacts still load (as f32 pre-v6; plan-less pre-v4; with a
 * provenance warning pre-v3, ISA assumed scalar for v1; blocking
 * re-derived from the device budget pre-v5). */
constexpr uint32_t kModelArtifactVersion = 6;

/** Load-time strictness knobs. */
struct ArtifactLoadOptions
{
    /// Treat a pool-width / tile-budget fingerprint difference as an
    /// error instead of a warning. (A GPU-like vs CPU scheduling
    /// mismatch is always an error: the tuned plan is wrong for the
    /// other scheduling model, not just off-width.)
    bool require_matching_fingerprint = false;
};

/** Header provenance surfaced by the loaders (all versions; the v3
 * fields are defaulted and flagged absent for older artifacts). */
struct ArtifactInfo
{
    uint32_t version = 0;
    FrameworkKind kind = FrameworkKind::kPatDnn;
    SimdIsa tuned_isa = SimdIsa::kScalar;
    bool has_fingerprint = false;  ///< True for v3+ artifacts.
    int pool_width = 0;            ///< DeviceSpec.threads at compile time.
    bool gpu_like = false;
    int64_t tile_budget_kb = 0;
    bool has_compile_opts = false; ///< True for v3+ artifacts.
    CompileOptions compile_opts;
    /// Non-fatal diagnostics emitted during load (also logged at WARN):
    /// pre-v3 header, cross-ISA tuning, fingerprint differences.
    std::vector<std::string> warnings;
};

/** Serialize a compiled model into the artifact byte format
 * (kModelArtifactVersion). */
std::vector<uint8_t> serializeModel(const CompiledModel& model);

/** Serialize at an explicit format version in
 * [1, kModelArtifactVersion]: older layouts for compatibility tests
 * and for shipping to hosts that predate the v3 header. */
std::vector<uint8_t> serializeModel(const CompiledModel& model, uint32_t version);

/**
 * Reconstruct a compiled model for `device` from artifact bytes.
 * Validates magic, version, framing and checksum, the v3 provenance
 * record against `device`, then every embedded FKW layer's structural
 * invariants. Failure codes: kDataLoss for corrupted / truncated bytes
 * (detail() carries the artifact_detail slug), kInvalidArgument for an
 * unsupported format version, kDeviceMismatch for a fingerprint the
 * host cannot satisfy. `info`, when non-null, receives the header
 * provenance + any non-fatal warnings even for successfully loaded
 * artifacts.
 */
Result<std::shared_ptr<CompiledModel>> deserializeModel(
    const std::vector<uint8_t>& bytes, const DeviceSpec& device,
    const ArtifactLoadOptions& opts = {}, ArtifactInfo* info = nullptr);

/** Stream-serialize + write to `path` (one layer record in memory at a
 * time); kUnavailable on I/O failure. */
Status saveModelArtifact(const CompiledModel& model, const std::string& path);

/** Read `path` (chunked, checksum verified incrementally) +
 * deserialize. kNotFound when the file cannot be opened; otherwise the
 * deserializeModel() codes. */
Result<std::shared_ptr<CompiledModel>> loadModelArtifact(
    const std::string& path, const DeviceSpec& device,
    const ArtifactLoadOptions& opts = {}, ArtifactInfo* info = nullptr);

}  // namespace patdnn
