/**
 * @file
 * Versioned binary model artifacts: the distribution format for
 * compiled models.
 *
 * PatDNN's deployment story (Fig. 5) ends at execution code
 * generation; an artifact captures that stage's entire output — every
 * layer's FKW-packed weights, ConvDesc, tuned parameters and graph
 * wiring — so a model can be compiled (pruned, reordered, tuned) once
 * and then distributed to serving hosts that only deserialize and run.
 *
 * On-disk layout (little-endian):
 *
 *   [magic "PDNN"] [u32 version] [u64 payload_size] [payload bytes]
 *   [u64 FNV-1a checksum of payload]
 *
 * The payload holds the framework kind, the kernel ISA the embedded
 * TuneParams were searched on (version >= 2 — loading on a host with a
 * different active ISA still works, with a warning that the tuned
 * unroll/tile widths were chosen for another vector width), the
 * output-node id and one record per graph-node slot; pattern-compiled
 * conv layers embed their FKW storage via sparse/fkw.h's byte-level
 * serializer and are re-validated with validateFkw() on load.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rt/framework.h"

namespace patdnn {

/** Artifact format version written by serializeModel. Version 2 added
 * the tuned-ISA field; version-1 artifacts still load (ISA assumed
 * scalar). */
constexpr uint32_t kModelArtifactVersion = 2;

/** Serialize a compiled model into the artifact byte format. */
std::vector<uint8_t> serializeModel(const CompiledModel& model);

/**
 * Reconstruct a compiled model for `device` from artifact bytes.
 * Validates magic, version, framing and checksum, then every embedded
 * FKW layer's structural invariants; returns null with a message in
 * *error on any mismatch.
 */
std::shared_ptr<CompiledModel> deserializeModel(const std::vector<uint8_t>& bytes,
                                                const DeviceSpec& device,
                                                std::string* error = nullptr);

/** Serialize + write to `path`; false with *error on I/O failure. */
bool saveModelArtifact(const CompiledModel& model, const std::string& path,
                       std::string* error = nullptr);

/** Read `path` + deserialize; null with *error on failure. */
std::shared_ptr<CompiledModel> loadModelArtifact(const std::string& path,
                                                 const DeviceSpec& device,
                                                 std::string* error = nullptr);

}  // namespace patdnn
