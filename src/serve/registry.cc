#include "serve/registry.h"

#include <algorithm>

#include "util/logging.h"

namespace patdnn {

ModelRegistry::ModelRegistry(RegistryOptions opts)
    : opts_(std::move(opts)),
      clock_(opts_.server.clock ? opts_.server.clock : systemServeClock())
{
    // Materialize the shared compute pool once: every model loaded into
    // this registry executes on copies of opts_.device, which all hold
    // this same lazily created util::ThreadPool.
    opts_.device.pool();
    opts_.server.clock = clock_;
    if (opts_.admission.max_queued_samples > 0 ||
        opts_.admission.max_queued_bytes > 0)
        admission_ = std::make_shared<AdmissionController>(opts_.admission);
}

ModelRegistry::~ModelRegistry()
{
    shutdownAll();
}

Status
ModelRegistry::load(const std::string& name, const std::string& path)
{
    Result<std::shared_ptr<CompiledModel>> model =
        loadModelArtifact(path, opts_.device);
    if (!model.ok())
        // Keep the loader's code + detail slug; prefix the message so
        // the caller sees which name failed to come up.
        return Status(model.code(),
                      "registry: cannot load '" + name + "': " +
                          model.status().message(),
                      model.status().detail());
    return add(name, std::move(model).value());
}

Status
ModelRegistry::add(const std::string& name,
                   std::shared_ptr<const CompiledModel> model)
{
    return add(name, std::move(model), opts_.server);
}

Status
ModelRegistry::add(const std::string& name,
                   std::shared_ptr<const CompiledModel> model,
                   const ServerOptions& server_opts)
{
    if (!model)
        return Status(ErrorCode::kInvalidArgument,
                      "registry: null model for '" + name + "'");
    auto taken = [&] {
        return Status(ErrorCode::kInvalidArgument,
                      "registry: model name '" + name + "' already loaded");
    };
    {
        // Cheap pre-check: don't spin up a whole server (workers,
        // sessions) for a name that is already taken.
        std::lock_guard<std::mutex> lk(mutex_);
        if (entries_.count(name) != 0)
            return taken();
    }
    ServerOptions opts = server_opts;
    if (!opts.clock)
        opts.clock = clock_;
    if (admission_ && !opts.admission) {
        // Every registry-fronted server charges the shared budget under
        // its registered name (the server registers name + weight).
        opts.admission = admission_;
        opts.admission_name = name;
    }
    Entry entry;
    entry.model = std::move(model);
    entry.server = std::make_shared<InferenceServer>(entry.model, opts);
    {
        std::lock_guard<std::mutex> lk(mutex_);
        auto [it, inserted] = entries_.emplace(name, std::move(entry));
        if (!inserted) {
            // Lost a race to a concurrent add of the same name: the
            // freshly built server shuts down on destruction below and
            // the existing entry is untouched.
            return taken();
        }
    }
    return Status::OK();
}

bool
ModelRegistry::evict(const std::string& name)
{
    Entry victim;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        auto it = entries_.find(name);
        if (it == entries_.end())
            return false;
        victim = std::move(it->second);
        entries_.erase(it);
    }
    // Outside the lock: shutdown drains and joins, which must not block
    // other models' routing.
    victim.server->shutdown();
    if (admission_)
        admission_->deregisterModel(name);
    return true;
}

std::vector<std::string>
ModelRegistry::names() const
{
    std::vector<std::string> out;
    std::lock_guard<std::mutex> lk(mutex_);
    out.reserve(entries_.size());
    for (const auto& [name, entry] : entries_)
        out.push_back(name);
    return out;
}

size_t
ModelRegistry::size() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return entries_.size();
}

std::shared_ptr<const CompiledModel>
ModelRegistry::model(const std::string& name) const
{
    std::lock_guard<std::mutex> lk(mutex_);
    auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : it->second.model;
}

std::shared_ptr<InferenceServer>
ModelRegistry::serverFor(const std::string& name) const
{
    std::lock_guard<std::mutex> lk(mutex_);
    auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : it->second.server;
}

std::future<Tensor>
ModelRegistry::submit(const std::string& name, Tensor input, SubmitOptions sopts,
                      RequestId* id)
{
    if (id != nullptr)
        *id = 0;
    // Resolve under a short lock, then submit without it: one model's
    // full queue must not block another model's producers (or evict).
    std::shared_ptr<InferenceServer> server = serverFor(name);
    if (!server) {
        std::promise<Tensor> p;
        p.set_exception(std::make_exception_ptr(ServeError(
            ErrorCode::kNotFound, "registry: no model named '" + name + "'")));
        return p.get_future();
    }
    return server->submit(std::move(input), sopts, id);
}

Result<RequestId>
ModelRegistry::trySubmit(const std::string& name, Tensor input,
                         std::future<Tensor>* result, SubmitOptions sopts)
{
    std::shared_ptr<InferenceServer> server = serverFor(name);
    if (!server)
        return Status(ErrorCode::kNotFound,
                      "registry: no model named '" + name + "'");
    return server->trySubmit(std::move(input), result, sopts);
}

bool
ModelRegistry::cancel(const std::string& name, RequestId id)
{
    std::shared_ptr<InferenceServer> server = serverFor(name);
    return server ? server->cancel(id) : false;
}

ServerStats
ModelRegistry::stats(const std::string& name) const
{
    std::shared_ptr<InferenceServer> server = serverFor(name);
    return server ? server->stats() : ServerStats{};
}

ServeClock::TimePoint
ModelRegistry::deadlineIn(double ms) const
{
    return clock_->after(ms);
}

void
ModelRegistry::drainAll()
{
    std::vector<std::shared_ptr<InferenceServer>> servers;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        for (const auto& [name, entry] : entries_)
            servers.push_back(entry.server);
    }
    for (const auto& s : servers)
        s->drain();
}

void
ModelRegistry::shutdownAll()
{
    std::vector<std::shared_ptr<InferenceServer>> servers;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        for (const auto& [name, entry] : entries_)
            servers.push_back(entry.server);
    }
    for (const auto& s : servers)
        s->shutdown();
}

}  // namespace patdnn
