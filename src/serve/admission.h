/**
 * @file
 * Process-wide admission control for the serving tier.
 *
 * The registry's bounded per-server queues protect one model's workers
 * from one model's producers, but nothing protects the *pool*: a
 * single hot model can fill its queue, its sessions and the shared
 * compute pool while every other model's requests still get admitted
 * into queues that will never drain at their SLO. The
 * AdmissionController is the process-wide answer — one global
 * queued-samples / queued-bytes budget shared by every server wired to
 * it, with per-model weights and a weighted fair-share shedding policy,
 * so overload turns into typed kResourceExhausted refusals at the
 * front door (cheap, retryable, and visible to the ShardRouter's
 * failover) instead of unbounded latency in the back.
 *
 * Policy (per dimension — samples and bytes are budgeted
 * independently; a request must pass both):
 *
 *   fair_share(m) = weight(m) / sum(weights) * budget
 *
 *   admit(m, n) iff total + n <= budget
 *                AND (model(m) + n <= fair_share(m)
 *                     OR total + n <= fair_share_pressure * budget)
 *
 * Below the pressure line any model may burst past its share (the
 * budget is work-conserving when the pool is idle); above it a model
 * is capped at its weighted share, which leaves the remaining budget
 * for the cold models — a model under its fair share is only refused
 * when the global budget is genuinely full. The two refusal modes are
 * code-distinguishable via Status::detail():
 *
 *   admission/over-fair-share  — this model exceeded its weighted share
 *                                under pressure (shed *this* model);
 *   admission/global-budget    — the whole pool is full (shed anyone).
 *
 * Charges are taken at admission (InferenceServer::trySubmit / submit)
 * and released when the request leaves the queue for any reason —
 * completion, deadline shed, cancel, or shutdown drop — so
 * stats().queued_* always equals the work currently admitted
 * somewhere. The controller never calls back into a server and takes
 * only its own mutex, so servers may call it with their queue lock
 * held (lock order: server -> controller, never the reverse).
 *
 * Exported obs metrics (obs/metrics.h, process-global):
 *   counters serve.admission.admitted / .shed_over_fair_share /
 *   .shed_global_budget, gauges serve.admission.queued_samples /
 *   .queued_bytes.
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace patdnn {

/** Stable machine-readable slugs carried in Status::detail() by
 * admission refusals (API contract, like artifact_detail). */
namespace admission_detail {
inline constexpr char kOverFairShare[] = "admission/over-fair-share";
inline constexpr char kGlobalBudget[] = "admission/global-budget";
}  // namespace admission_detail

/** Process-wide admission budgets. 0 = that dimension is unlimited;
 * both 0 = admission control disabled (every tryAdmit admits). */
struct AdmissionOptions
{
    /// Global cap on samples queued across every wired server.
    int64_t max_queued_samples = 0;
    /// Global cap on input bytes queued across every wired server.
    int64_t max_queued_bytes = 0;
    /// Fraction of the budget above which the fair-share cap binds;
    /// below it any model may burst past its share (work conservation).
    double fair_share_pressure = 0.5;
};

/** Per-model admission accounting (one model = one registered name). */
struct AdmissionModelStats
{
    double weight = 1.0;
    int64_t queued_samples = 0;  ///< Currently admitted, not yet released.
    int64_t queued_bytes = 0;
    int64_t admitted = 0;        ///< Requests admitted (lifetime).
    int64_t shed_over_fair_share = 0;
    int64_t shed_global_budget = 0;
};

/** Snapshot of the controller's state. */
struct AdmissionStats
{
    int64_t queued_samples = 0;  ///< Sum over models; <= max_queued_samples.
    int64_t queued_bytes = 0;
    int64_t admitted = 0;
    int64_t shed_over_fair_share = 0;
    int64_t shed_global_budget = 0;
    std::map<std::string, AdmissionModelStats> models;
};

/**
 * The process-wide queued-work budget. Thread-safe; every method takes
 * the internal mutex and returns without calling user code, so callers
 * may hold their own locks across calls (see the lock-order note
 * above). Typically owned by a ModelRegistry
 * (RegistryOptions::admission) and shared with every server it fronts,
 * but any set of InferenceServers may share one directly
 * (ServerOptions::admission).
 */
class AdmissionController
{
  public:
    explicit AdmissionController(AdmissionOptions opts = {});

    /**
     * Register `name` with a fair-share `weight` (values <= 0 clamp to
     * 1.0). Re-registering updates the weight and keeps the counters —
     * fair shares of every model rebalance immediately.
     */
    void registerModel(const std::string& name, double weight = 1.0);

    /** Drop `name` from the weight table (remaining models' shares
     * rebalance). Outstanding charges under the name remain counted
     * against the global budget until released. */
    void deregisterModel(const std::string& name);

    /**
     * Try to admit `samples`/`bytes` of queued work for `name`
     * (registering it at weight 1.0 on first sight). OK = the charge
     * was taken and the caller MUST later release() exactly this
     * amount; otherwise kResourceExhausted with an admission_detail
     * slug and nothing charged.
     */
    Status tryAdmit(const std::string& name, int64_t samples, int64_t bytes);

    /** Return a charge taken by a successful tryAdmit. */
    void release(const std::string& name, int64_t samples, int64_t bytes);

    /** Whether any budget dimension is configured. */
    bool enabled() const;

    AdmissionStats stats() const;

    const AdmissionOptions& options() const { return opts_; }

  private:
    struct ModelEntry
    {
        AdmissionModelStats stats;
        bool registered = false;  ///< Counted in the weight sum.
    };

    /** mutex_ held. Admission test for one budget dimension. */
    Status checkDimLocked(const ModelEntry& entry, int64_t model_queued,
                          int64_t total_queued, int64_t request, int64_t budget,
                          const char* what) const;

    /** mutex_ held. Sum of registered weights (>= 0). */
    double totalWeightLocked() const;

    void exportGaugesLocked() const;

    AdmissionOptions opts_;
    mutable std::mutex mutex_;
    std::map<std::string, ModelEntry> models_;
    int64_t queued_samples_ = 0;
    int64_t queued_bytes_ = 0;
    int64_t admitted_ = 0;
    int64_t shed_over_fair_share_ = 0;
    int64_t shed_global_budget_ = 0;
};

}  // namespace patdnn
