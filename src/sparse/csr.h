/**
 * @file
 * CSR storage for pruned conv weights — the conventional compressed
 * format PatDNN compares against (Fig. 16) and the storage behind the
 * non-structured sparse baseline executor (clSPARSE-style, ref. [11]).
 *
 * A conv layer's weights form the matrix [cout] x [cin*kh*kw]; CSR keeps
 * a row-pointer array, a column-index per non-zero and the values.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace patdnn {

/** CSR matrix over a flattened OIHW conv weight. */
struct CsrWeights
{
    int64_t rows = 0;  ///< cout.
    int64_t cols = 0;  ///< cin * kh * kw.
    std::vector<int32_t> row_ptr;  ///< rows + 1.
    std::vector<int32_t> col_idx;  ///< nnz.
    std::vector<float> values;     ///< nnz.

    int64_t nnz() const { return static_cast<int64_t>(values.size()); }

    /** Bytes of index structures (row_ptr + col_idx), paper's "extra". */
    size_t indexBytes() const;

    /** Total bytes including values. */
    size_t totalBytes() const;
};

/** Build CSR from a (pruned) OIHW weight tensor. */
CsrWeights buildCsr(const Tensor& weight);

/** Reconstruct the dense OIHW tensor (for round-trip tests). */
Tensor csrToDense(const CsrWeights& csr, const Shape& oihw_shape);

/** Validate structural invariants; kDataLoss on corruption. */
Status validateCsr(const CsrWeights& csr);

}  // namespace patdnn
