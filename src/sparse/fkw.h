/**
 * @file
 * FKW (Filter-Kernel-Weight) compressed weight storage, paper
 * Section 5.3 / Fig. 10.
 *
 * Five arrays describe a pattern-pruned layer after FKR:
 *   - offset  (filter level): cumulative non-empty-kernel counts,
 *   - reorder (filter level): reordered position -> original filter,
 *   - index   (kernel level): input channel of each non-empty kernel,
 *   - stride  (kernel level): per filter, the boundaries of its
 *     same-pattern kernel runs (npatterns + 1 entries per filter),
 *   - weight  (weight level): `entries` floats per non-empty kernel.
 *
 * The pattern id of a kernel is implied by which stride segment it
 * falls into, so no per-kernel pattern array is stored — this is where
 * the index-overhead saving over CSR comes from (Fig. 16).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "prune/pattern_set.h"
#include "sparse/fkr.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace patdnn {

/** A conv layer's weights in FKW format. */
struct FkwLayer
{
    int64_t filters = 0;      ///< cout (original count).
    int64_t in_channels = 0;  ///< cin.
    int64_t kh = 0, kw = 0;
    int entries = 4;          ///< Non-zero weights per kernel.
    std::vector<Pattern> patterns;   ///< The candidate set (small).
    std::vector<int32_t> offset;     ///< filters + 1.
    std::vector<int32_t> reorder;    ///< filters.
    std::vector<int32_t> index;      ///< total non-empty kernels.
    std::vector<int32_t> stride;     ///< filters * (patterns.size() + 1).
    std::vector<float> weights;      ///< non-empty kernels * entries.
    std::vector<FilterGroup> groups; ///< Equal-length groups from FKR.
    /**
     * Loose-format fallback (paper footnote 2: "before reorder, a
     * relatively loose data format is used"): when kernels are NOT
     * sorted by pattern id the stride segments cannot encode pattern
     * membership, so a per-kernel pattern id array is stored instead.
     * Empty in the tight (post-FKR) format.
     */
    std::vector<int32_t> kernel_pattern;

    /** Non-empty kernel count. */
    int64_t kernelCount() const { return static_cast<int64_t>(index.size()); }

    /** Stride boundary b (0..npat) of reordered filter f. */
    int32_t
    strideAt(int64_t f, int64_t b) const
    {
        return stride[static_cast<size_t>(f * (static_cast<int64_t>(patterns.size()) + 1) + b)];
    }

    /**
     * Bytes of extra structure (offset+reorder+index+stride), Fig. 16.
     *
     * FKW is kernel-level, so every array's values are small (input
     * channel < cin, per-filter kernel counts < 256, ...); each array
     * is accounted at the minimal sufficient integer width (1/2/4
     * bytes), which is how the serialized format stores them. The CSR
     * comparison point keeps the standard 32-bit indices of clSPARSE-
     * class libraries (paper ref. [11]).
     */
    size_t indexBytes() const;

    /** Total bytes including the weight array and pattern table. */
    size_t totalBytes() const;
};

/**
 * Build FKW from a pruned OIHW weight tensor, its pattern assignment
 * and the FKR result computed from that assignment.
 *
 * Weights are gathered in reordered (filter, kernel) order; each kernel
 * contributes exactly `entries` values at its pattern's kept positions
 * (in ascending position order).
 */
FkwLayer buildFkw(const Tensor& weight, const PatternSet& set,
                  const PatternAssignment& assignment, const FkrResult& fkr);

/** Convenience: joint-project a dense weight, run FKR, build FKW. */
FkwLayer pruneAndPack(Tensor& weight, const PatternSet& set, int64_t alpha,
                      const FkrOptions& fkr_opts = {});

/** Reconstruct the dense OIHW weight (round-trip testing). */
Tensor fkwToDense(const FkwLayer& fkw);

/** Validate all structural invariants; kDataLoss on corruption. */
Status validateFkw(const FkwLayer& fkw);

/**
 * Append the layer's byte-level serialized form to `out`: the five FKW
 * arrays stored at the minimal sufficient integer width (1/2/4 bytes,
 * the Fig. 16 accounting of indexBytes()), plus the pattern table and
 * FKR groups. The model-artifact serializer (src/serve/) embeds one
 * such record per pattern-compiled conv layer.
 */
void serializeFkw(const FkwLayer& fkw, std::vector<uint8_t>& out);

/**
 * Parse one serialized layer from [data, data + size). On success
 * advances *consumed past the record; a truncated or malformed record
 * returns kDataLoss. The caller should still run validateFkw() on the
 * result (this routine only checks framing, not the structural
 * invariants).
 */
Status deserializeFkw(const uint8_t* data, size_t size, size_t* consumed,
                      FkwLayer* fkw);

}  // namespace patdnn
