#include "sparse/fkr.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace patdnn {

int
filterSimilarity(const std::vector<ReorderedKernel>& a,
                 const std::vector<ReorderedKernel>& b)
{
    size_t n = std::min(a.size(), b.size());
    int same = 0;
    for (size_t i = 0; i < n; ++i)
        if (a[i].pattern_id == b[i].pattern_id)
            ++same;
    return same;
}

FkrResult
filterKernelReorder(const PatternAssignment& assignment, const FkrOptions& opts)
{
    int64_t filters = assignment.filters;
    int64_t kernels = assignment.kernels_per_filter;
    PATDNN_CHECK_GT(filters, 0, "assignment has no filters");

    // Collect surviving kernels per filter.
    std::vector<std::vector<ReorderedKernel>> per_filter(
        static_cast<size_t>(filters));
    for (int64_t f = 0; f < filters; ++f) {
        for (int64_t k = 0; k < kernels; ++k) {
            int pid = assignment.at(f, k);
            if (pid < 0)
                continue;  // Removed by connectivity pruning.
            per_filter[static_cast<size_t>(f)].push_back(
                {static_cast<int32_t>(k), static_cast<int32_t>(pid)});
        }
    }

    // Step 2: kernel reorder — sort by pattern id (stable keeps input
    // channels ascending within a pattern, helping locality).
    if (opts.reorder_kernels) {
        for (auto& ks : per_filter)
            std::stable_sort(ks.begin(), ks.end(),
                             [](const ReorderedKernel& x, const ReorderedKernel& y) {
                                 if (x.pattern_id != y.pattern_id)
                                     return x.pattern_id < y.pattern_id;
                                 return x.input_channel < y.input_channel;
                             });
    }

    // Step 1: filter reorder.
    std::vector<int32_t> order(static_cast<size_t>(filters));
    std::iota(order.begin(), order.end(), 0);
    if (opts.reorder_filters) {
        // 1a: group by length (descending so heavy filters lead).
        std::stable_sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
            return per_filter[static_cast<size_t>(a)].size() >
                   per_filter[static_cast<size_t>(b)].size();
        });
        // 1b: greedy similarity chaining inside each equal-length run.
        if (opts.similarity_within_group) {
            size_t i = 0;
            while (i < order.size()) {
                size_t j = i + 1;
                while (j < order.size() &&
                       per_filter[static_cast<size_t>(order[j])].size() ==
                           per_filter[static_cast<size_t>(order[i])].size())
                    ++j;
                // Chain [i, j): repeatedly bring forward the most similar
                // filter to the last placed one.
                for (size_t p = i + 1; p < j; ++p) {
                    const auto& prev = per_filter[static_cast<size_t>(order[p - 1])];
                    size_t best = p;
                    int best_sim = -1;
                    for (size_t q = p; q < j; ++q) {
                        int sim = filterSimilarity(
                            prev, per_filter[static_cast<size_t>(order[q])]);
                        if (sim > best_sim) {
                            best_sim = sim;
                            best = q;
                        }
                    }
                    std::swap(order[p], order[best]);
                }
                i = j;
            }
        }
    }

    FkrResult result;
    result.reorder = order;
    result.filters.reserve(order.size());
    for (int32_t original : order)
        result.filters.push_back(per_filter[static_cast<size_t>(original)]);

    // Build equal-length groups over the final ordering.
    size_t i = 0;
    while (i < result.filters.size()) {
        size_t j = i + 1;
        while (j < result.filters.size() &&
               result.filters[j].size() == result.filters[i].size())
            ++j;
        result.groups.push_back({static_cast<int32_t>(i), static_cast<int32_t>(j),
                                 static_cast<int32_t>(result.filters[i].size())});
        i = j;
    }
    return result;
}

std::vector<int32_t>
filterLengths(const FkrResult& fkr)
{
    std::vector<int32_t> lengths;
    lengths.reserve(fkr.filters.size());
    for (const auto& f : fkr.filters)
        lengths.push_back(static_cast<int32_t>(f.size()));
    return lengths;
}

}  // namespace patdnn
