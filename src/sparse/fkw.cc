#include "sparse/fkw.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "util/byteio.h"
#include "util/logging.h"

namespace patdnn {

namespace {

/** Minimal integer width (bytes) needed to store values in [0, maxv]. */
size_t
bytesFor(int64_t maxv)
{
    if (maxv < (1 << 8))
        return 1;
    if (maxv < (1 << 16))
        return 2;
    return 4;
}

// --- byte-level encoding helpers (width-prefixed, over util/byteio) --------

/** Array of non-negative int32 values at the minimal sufficient width:
 *  [u8 width][u64 count][count * width bytes]. */
void
putIntArray(std::vector<uint8_t>& out, const std::vector<int32_t>& v)
{
    int32_t maxv = 0;
    for (int32_t x : v)
        maxv = std::max(maxv, x);
    size_t width = bytesFor(maxv);
    out.push_back(static_cast<uint8_t>(width));
    bytes::putU64(out, v.size());
    for (int32_t x : v) {
        uint32_t u = static_cast<uint32_t>(x);
        for (size_t i = 0; i < width; ++i)
            out.push_back(static_cast<uint8_t>(u >> (8 * i)));
    }
}

/** FKW-specific arrays on top of the shared bounds-checked reader. */
struct ByteReader : bytes::Reader
{
    bool
    intArray(std::vector<int32_t>& out)
    {
        if (!need(1))
            return false;
        size_t width = data[pos++];
        if (width != 1 && width != 2 && width != 4) {
            ok = false;
            return false;
        }
        uint64_t count = u64();
        // Reject counts the remaining bytes cannot possibly hold before
        // sizing the output (guards against overflow on corrupt input).
        if (!ok || count > (size - pos) / width) {
            ok = false;
            return false;
        }
        out.resize(static_cast<size_t>(count));
        for (uint64_t i = 0; i < count; ++i) {
            uint32_t v = 0;
            for (size_t b = 0; b < width; ++b)
                v |= static_cast<uint32_t>(data[pos + b]) << (8 * b);
            pos += width;
            out[static_cast<size_t>(i)] = static_cast<int32_t>(v);
        }
        return ok;
    }

    bool
    floatArray(std::vector<float>& out)
    {
        uint64_t count = u64();
        if (!ok || count > (size - pos) / sizeof(float)) {
            ok = false;
            return false;
        }
        out.resize(static_cast<size_t>(count));
        if (count > 0)
            std::memcpy(out.data(), data + pos,
                        static_cast<size_t>(count) * sizeof(float));
        pos += static_cast<size_t>(count) * sizeof(float);
        return ok;
    }
};

}  // namespace

size_t
FkwLayer::indexBytes() const
{
    // Offsets count kernels (<= kernelCount); reorder names filters;
    // index names input channels; stride holds per-filter kernel
    // counts (< 256 in practice); kernel_pattern holds pattern ids.
    int64_t max_per_filter = 0;
    for (size_t f = 0; f + 1 < offset.size(); ++f)
        max_per_filter =
            std::max<int64_t>(max_per_filter, offset[f + 1] - offset[f]);
    size_t bytes = 0;
    bytes += offset.size() * bytesFor(kernelCount());
    bytes += reorder.size() * bytesFor(filters - 1);
    bytes += index.size() * bytesFor(in_channels - 1);
    bytes += stride.size() * bytesFor(max_per_filter);
    bytes += kernel_pattern.size() *
             bytesFor(static_cast<int64_t>(patterns.size()));
    return bytes;
}

size_t
FkwLayer::totalBytes() const
{
    // Pattern table: one 32-bit mask per candidate pattern.
    return indexBytes() + weights.size() * sizeof(float) +
           patterns.size() * sizeof(uint32_t);
}

FkwLayer
buildFkw(const Tensor& weight, const PatternSet& set,
         const PatternAssignment& assignment, const FkrResult& fkr)
{
    PATDNN_CHECK_EQ(weight.shape().rank(), 4, "conv weight must be OIHW");
    FkwLayer fkw;
    fkw.filters = weight.shape().dim(0);
    fkw.in_channels = weight.shape().dim(1);
    fkw.kh = weight.shape().dim(2);
    fkw.kw = weight.shape().dim(3);
    fkw.patterns = set.patterns;
    fkw.groups = fkr.groups;
    fkw.reorder = fkr.reorder;
    PATDNN_CHECK_EQ(assignment.filters, fkw.filters, "assignment filters");
    PATDNN_CHECK_EQ(assignment.kernels_per_filter, fkw.in_channels,
                    "assignment kernels");

    int npat = set.size();
    fkw.entries = set.patterns.empty() ? 0 : set.patterns[0].popcount();
    int64_t ksz = fkw.kh * fkw.kw;

    // Tight (post-FKR) format requires EVERY filter's kernels sorted by
    // pattern id; otherwise the whole layer uses the loose format with a
    // per-kernel pattern array (paper footnote 2).
    bool sorted = true;
    for (const auto& kernels : fkr.filters)
        for (size_t i = 1; i < kernels.size(); ++i)
            if (kernels[i].pattern_id < kernels[i - 1].pattern_id)
                sorted = false;

    fkw.offset.reserve(static_cast<size_t>(fkw.filters) + 1);
    fkw.offset.push_back(0);
    for (size_t fpos = 0; fpos < fkr.filters.size(); ++fpos) {
        const auto& kernels = fkr.filters[fpos];
        int32_t original_f = fkr.reorder[fpos];
        // Stride boundaries: cumulative kernel count per pattern id.
        std::vector<int32_t> bounds(static_cast<size_t>(npat) + 1, 0);
        if (sorted) {
            size_t ki = 0;
            for (int p = 0; p < npat; ++p) {
                bounds[static_cast<size_t>(p)] = static_cast<int32_t>(ki);
                while (ki < kernels.size() && kernels[ki].pattern_id == p)
                    ++ki;
            }
            bounds[static_cast<size_t>(npat)] = static_cast<int32_t>(kernels.size());
            // Fill boundaries monotonically for patterns with no kernels.
            for (int p = npat - 1; p >= 0; --p)
                if (bounds[static_cast<size_t>(p)] > bounds[static_cast<size_t>(p) + 1])
                    bounds[static_cast<size_t>(p)] = bounds[static_cast<size_t>(p) + 1];
        } else {
            // Unsorted (no kernel reorder): single segment covering all;
            // per-kernel pattern ids go to the loose-format array.
            for (int p = 1; p <= npat; ++p)
                bounds[static_cast<size_t>(p)] = static_cast<int32_t>(kernels.size());
        }
        for (int32_t b : bounds)
            fkw.stride.push_back(b);

        for (const auto& k : kernels) {
            if (!sorted)
                fkw.kernel_pattern.push_back(k.pattern_id);
            fkw.index.push_back(k.input_channel);
            const float* kp =
                weight.data() + (static_cast<int64_t>(original_f) * fkw.in_channels +
                                 k.input_channel) * ksz;
            const Pattern& pat = set.patterns[static_cast<size_t>(k.pattern_id)];
            for (int pos : pat.keptPositions())
                fkw.weights.push_back(kp[pos]);
        }
        fkw.offset.push_back(static_cast<int32_t>(fkw.index.size()));
    }
    return fkw;
}

FkwLayer
pruneAndPack(Tensor& weight, const PatternSet& set, int64_t alpha,
             const FkrOptions& fkr_opts)
{
    PatternAssignment asg = projectJoint(weight, set, alpha);
    FkrResult fkr = filterKernelReorder(asg, fkr_opts);
    return buildFkw(weight, set, asg, fkr);
}

Tensor
fkwToDense(const FkwLayer& fkw)
{
    Tensor dense(Shape{fkw.filters, fkw.in_channels, fkw.kh, fkw.kw});
    int64_t ksz = fkw.kh * fkw.kw;
    int npat = static_cast<int>(fkw.patterns.size());
    bool loose = !fkw.kernel_pattern.empty();
    int64_t widx = 0;
    for (int64_t fpos = 0; fpos < fkw.filters; ++fpos) {
        int32_t original_f = fkw.reorder[static_cast<size_t>(fpos)];
        int32_t kb = fkw.offset[static_cast<size_t>(fpos)];
        int32_t ke = fkw.offset[static_cast<size_t>(fpos) + 1];
        for (int32_t gk = kb; gk < ke; ++gk) {
            int pid;
            if (loose) {
                pid = fkw.kernel_pattern[static_cast<size_t>(gk)];
            } else {
                pid = 0;
                int32_t k = gk - kb;
                for (int p = 0; p < npat; ++p) {
                    if (k >= fkw.strideAt(fpos, p) && k < fkw.strideAt(fpos, p + 1)) {
                        pid = p;
                        break;
                    }
                }
            }
            const Pattern& pat = fkw.patterns[static_cast<size_t>(pid)];
            int32_t ic = fkw.index[static_cast<size_t>(gk)];
            float* kp = dense.data() +
                        (static_cast<int64_t>(original_f) * fkw.in_channels + ic) * ksz;
            for (int pos : pat.keptPositions())
                kp[pos] = fkw.weights[static_cast<size_t>(widx++)];
        }
    }
    return dense;
}

Status
validateFkw(const FkwLayer& fkw)
{
    auto fail = [](std::string msg) {
        return Status(ErrorCode::kDataLoss, std::move(msg));
    };
    int npat = static_cast<int>(fkw.patterns.size());
    if (npat == 0)
        return fail("empty pattern table");
    for (const auto& p : fkw.patterns)
        if (p.kh() != fkw.kh || p.kw() != fkw.kw)
            return fail("pattern geometry mismatch");
    if (static_cast<int64_t>(fkw.offset.size()) != fkw.filters + 1)
        return fail("offset size != filters + 1");
    if (fkw.offset.front() != 0)
        return fail("offset[0] != 0");
    for (size_t i = 1; i < fkw.offset.size(); ++i)
        if (fkw.offset[i] < fkw.offset[i - 1])
            return fail("offset not monotonic");
    if (fkw.offset.back() != static_cast<int32_t>(fkw.index.size()))
        return fail("offset back != kernel count");
    if (static_cast<int64_t>(fkw.reorder.size()) != fkw.filters)
        return fail("reorder size != filters");
    std::vector<uint8_t> seen(static_cast<size_t>(fkw.filters), 0);
    for (int32_t r : fkw.reorder) {
        if (r < 0 || r >= fkw.filters)
            return fail("reorder entry out of range");
        if (seen[static_cast<size_t>(r)])
            return fail("reorder is not a permutation");
        seen[static_cast<size_t>(r)] = 1;
    }
    for (int32_t ic : fkw.index)
        if (ic < 0 || ic >= fkw.in_channels)
            return fail("index entry out of range");
    if (static_cast<int64_t>(fkw.stride.size()) !=
        fkw.filters * (static_cast<int64_t>(npat) + 1))
        return fail("stride size != filters * (npat + 1)");
    for (int64_t f = 0; f < fkw.filters; ++f) {
        int32_t fk = fkw.offset[static_cast<size_t>(f) + 1] -
                     fkw.offset[static_cast<size_t>(f)];
        if (fkw.strideAt(f, 0) != 0)
            return fail("stride run does not start at 0");
        for (int p = 0; p < npat; ++p)
            if (fkw.strideAt(f, p + 1) < fkw.strideAt(f, p))
                return fail("stride not monotonic");
        if (fkw.strideAt(f, npat) != fk)
            return fail("stride does not cover filter kernels");
    }
    if (!fkw.kernel_pattern.empty()) {
        // Loose format: per-kernel pattern array parallel to index.
        if (fkw.kernel_pattern.size() != fkw.index.size())
            return fail("kernel_pattern size mismatch");
        int64_t expect_weights = 0;
        for (int32_t pid : fkw.kernel_pattern) {
            if (pid < 0 || pid >= npat)
                return fail("kernel_pattern id out of range");
            expect_weights += fkw.patterns[static_cast<size_t>(pid)].popcount();
        }
        if (expect_weights != static_cast<int64_t>(fkw.weights.size()))
            return fail("weight array size mismatch (loose)");
        return Status::OK();
    }
    int64_t expect_weights = 0;
    for (int64_t f = 0; f < fkw.filters; ++f)
        for (int p = 0; p < npat; ++p)
            expect_weights += static_cast<int64_t>(
                                  fkw.strideAt(f, p + 1) - fkw.strideAt(f, p)) *
                              fkw.patterns[static_cast<size_t>(p)].popcount();
    if (expect_weights != static_cast<int64_t>(fkw.weights.size()))
        return fail("weight array size mismatch");
    return Status::OK();
}

void
serializeFkw(const FkwLayer& fkw, std::vector<uint8_t>& out)
{
    bytes::putU64(out, static_cast<uint64_t>(fkw.filters));
    bytes::putU64(out, static_cast<uint64_t>(fkw.in_channels));
    bytes::putU64(out, static_cast<uint64_t>(fkw.kh));
    bytes::putU64(out, static_cast<uint64_t>(fkw.kw));
    bytes::putU32(out, static_cast<uint32_t>(fkw.entries));

    // Pattern table: geometry lives in the header, one mask per entry.
    bytes::putU32(out, static_cast<uint32_t>(fkw.patterns.size()));
    for (const Pattern& p : fkw.patterns)
        bytes::putU32(out, p.mask());

    putIntArray(out, fkw.offset);
    putIntArray(out, fkw.reorder);
    putIntArray(out, fkw.index);
    putIntArray(out, fkw.stride);
    putIntArray(out, fkw.kernel_pattern);

    bytes::putU32(out, static_cast<uint32_t>(fkw.groups.size()));
    for (const FilterGroup& g : fkw.groups) {
        bytes::putU32(out, static_cast<uint32_t>(g.begin));
        bytes::putU32(out, static_cast<uint32_t>(g.end));
        bytes::putU32(out, static_cast<uint32_t>(g.length));
    }

    bytes::putU64(out, fkw.weights.size());
    size_t old = out.size();
    out.resize(old + fkw.weights.size() * sizeof(float));
    if (!fkw.weights.empty())
        std::memcpy(out.data() + old, fkw.weights.data(),
                    fkw.weights.size() * sizeof(float));
}

Status
deserializeFkw(const uint8_t* data, size_t size, size_t* consumed, FkwLayer* fkw)
{
    auto fail = [](const char* msg) {
        return Status(ErrorCode::kDataLoss, msg);
    };
    ByteReader r{{data, size}};
    FkwLayer out;
    out.filters = static_cast<int64_t>(r.u64());
    out.in_channels = static_cast<int64_t>(r.u64());
    out.kh = static_cast<int64_t>(r.u64());
    out.kw = static_cast<int64_t>(r.u64());
    out.entries = static_cast<int>(r.u32());
    if (!r.ok)
        return fail("fkw: truncated header");
    // Geometry sanity before any Pattern is built (the Pattern ctor
    // aborts on kh*kw > 32, which corrupt bytes must not trigger).
    if (out.filters < 0 || out.in_channels < 0 || out.kh <= 0 || out.kw <= 0 ||
        out.kh * out.kw > 32)
        return fail("fkw: implausible geometry");

    uint32_t npat = r.u32();
    if (!r.ok || npat > 1u << 20)
        return fail("fkw: bad pattern table");
    out.patterns.reserve(npat);
    for (uint32_t i = 0; i < npat; ++i) {
        uint32_t mask = r.u32();
        if (!r.ok)
            return fail("fkw: truncated pattern table");
        out.patterns.emplace_back(out.kh, out.kw, mask);
    }

    if (!r.intArray(out.offset) || !r.intArray(out.reorder) ||
        !r.intArray(out.index) || !r.intArray(out.stride) ||
        !r.intArray(out.kernel_pattern))
        return fail("fkw: truncated index arrays");

    uint32_t ngroups = r.u32();
    if (!r.ok || ngroups > 1u << 24)
        return fail("fkw: bad group table");
    out.groups.reserve(ngroups);
    for (uint32_t i = 0; i < ngroups; ++i) {
        FilterGroup g;
        g.begin = static_cast<int32_t>(r.u32());
        g.end = static_cast<int32_t>(r.u32());
        g.length = static_cast<int32_t>(r.u32());
        if (!r.ok)
            return fail("fkw: truncated group table");
        out.groups.push_back(g);
    }

    if (!r.floatArray(out.weights))
        return fail("fkw: truncated weight array");
    if (!r.ok)
        return fail("fkw: truncated record");

    if (consumed != nullptr)
        *consumed = r.pos;
    *fkw = std::move(out);
    return Status::OK();
}

}  // namespace patdnn
