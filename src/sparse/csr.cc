#include "sparse/csr.h"

#include <string>

#include "util/logging.h"

namespace patdnn {

size_t
CsrWeights::indexBytes() const
{
    return row_ptr.size() * sizeof(int32_t) + col_idx.size() * sizeof(int32_t);
}

size_t
CsrWeights::totalBytes() const
{
    return indexBytes() + values.size() * sizeof(float);
}

CsrWeights
buildCsr(const Tensor& weight)
{
    PATDNN_CHECK_EQ(weight.shape().rank(), 4, "conv weight must be OIHW");
    CsrWeights csr;
    csr.rows = weight.shape().dim(0);
    csr.cols = weight.shape().dim(1) * weight.shape().dim(2) * weight.shape().dim(3);
    csr.row_ptr.reserve(static_cast<size_t>(csr.rows) + 1);
    csr.row_ptr.push_back(0);
    for (int64_t r = 0; r < csr.rows; ++r) {
        const float* row = weight.data() + r * csr.cols;
        for (int64_t c = 0; c < csr.cols; ++c) {
            if (row[c] != 0.0f) {
                csr.col_idx.push_back(static_cast<int32_t>(c));
                csr.values.push_back(row[c]);
            }
        }
        csr.row_ptr.push_back(static_cast<int32_t>(csr.values.size()));
    }
    return csr;
}

Tensor
csrToDense(const CsrWeights& csr, const Shape& oihw_shape)
{
    PATDNN_CHECK_EQ(oihw_shape.dim(0), csr.rows, "csr rows mismatch");
    PATDNN_CHECK_EQ(oihw_shape.dim(1) * oihw_shape.dim(2) * oihw_shape.dim(3), csr.cols,
                    "csr cols mismatch");
    Tensor dense(oihw_shape);
    for (int64_t r = 0; r < csr.rows; ++r) {
        for (int32_t i = csr.row_ptr[static_cast<size_t>(r)];
             i < csr.row_ptr[static_cast<size_t>(r) + 1]; ++i) {
            dense[r * csr.cols + csr.col_idx[static_cast<size_t>(i)]] =
                csr.values[static_cast<size_t>(i)];
        }
    }
    return dense;
}

Status
validateCsr(const CsrWeights& csr)
{
    auto fail = [](std::string msg) {
        return Status(ErrorCode::kDataLoss, std::move(msg));
    };
    if (static_cast<int64_t>(csr.row_ptr.size()) != csr.rows + 1)
        return fail("row_ptr size != rows + 1");
    if (csr.row_ptr.front() != 0)
        return fail("row_ptr[0] != 0");
    for (size_t i = 1; i < csr.row_ptr.size(); ++i)
        if (csr.row_ptr[i] < csr.row_ptr[i - 1])
            return fail("row_ptr not monotonic");
    if (csr.row_ptr.back() != static_cast<int32_t>(csr.values.size()))
        return fail("row_ptr back != nnz");
    if (csr.col_idx.size() != csr.values.size())
        return fail("col_idx/values size mismatch");
    for (int32_t c : csr.col_idx)
        if (c < 0 || c >= csr.cols)
            return fail("col index out of range");
    return Status::OK();
}

}  // namespace patdnn
