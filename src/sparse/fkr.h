/**
 * @file
 * Filter Kernel Reorder (FKR), paper Section 5.2.
 *
 * Two steps operating on a pattern/connectivity-pruned layer:
 *
 *  1. *Filter reorder* — order filters by (a) their length (number of
 *     non-empty kernels) so equal-length filters are grouped (fixing
 *     thread-level load imbalance, Fig. 14a), and (b) within a length
 *     group, greedily by pattern-multiset similarity so the most
 *     similar filters sit next to each other.
 *  2. *Kernel reorder* — inside each filter, sort surviving kernels by
 *     pattern id so the execution loop visits one pattern at a time
 *     with no per-kernel branching (the paper's +Reorder code).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "prune/projections.h"

namespace patdnn {

/** One reordered kernel: original input channel + its pattern id. */
struct ReorderedKernel
{
    int32_t input_channel = 0;
    int32_t pattern_id = 0;
};

/** A contiguous range of equal-length filters (a "group"). */
struct FilterGroup
{
    int32_t begin = 0;  ///< First reordered filter position.
    int32_t end = 0;    ///< One past last.
    int32_t length = 0; ///< Non-empty kernels per filter in this group.
};

/** Result of FKR on one layer. */
struct FkrResult
{
    /// reorder[new_position] = original filter index (paper's reorder
    /// array, used to route outputs back to the right channel).
    std::vector<int32_t> reorder;
    /// Per reordered filter: its kernels sorted by pattern id.
    std::vector<std::vector<ReorderedKernel>> filters;
    /// Equal-length filter groups in reordered order.
    std::vector<FilterGroup> groups;
};

/** FKR knobs (the +Reorder ablation axes of Fig. 13 / Table 1). */
struct FkrOptions
{
    bool reorder_filters = true;   ///< Step 1 on/off.
    bool similarity_within_group = true;  ///< Greedy similarity ordering.
    bool reorder_kernels = true;   ///< Step 2 on/off.
};

/**
 * Run FKR given the per-kernel pattern assignment of a pruned layer
 * (entries of -1 mean the kernel was removed by connectivity pruning).
 * With all options disabled the result is the identity ordering, which
 * the no-opt executor and the ablation benches use.
 */
FkrResult filterKernelReorder(const PatternAssignment& assignment,
                              const FkrOptions& opts = {});

/**
 * Filter-length histogram helper for Fig. 14a: lengths[i] = non-empty
 * kernel count of the filter at position i (reordered order).
 */
std::vector<int32_t> filterLengths(const FkrResult& fkr);

/**
 * Similarity between two filters used by step 1b: number of positions
 * with identical pattern ids when both kernel lists are sorted by
 * pattern id (paper's definition).
 */
int filterSimilarity(const std::vector<ReorderedKernel>& a,
                     const std::vector<ReorderedKernel>& b);

}  // namespace patdnn
