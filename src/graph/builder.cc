#include "graph/builder.h"

#include "util/logging.h"

namespace patdnn {

Graph
buildGraph(const Model& model)
{
    Graph g;
    int prev = -1;
    std::vector<int> layer_to_node(model.layers().size(), -1);
    for (size_t li = 0; li < model.layers().size(); ++li) {
        const Layer& l = model.layers()[li];
        GraphNode n;
        n.kind = l.kind;
        n.name = l.name;
        n.conv = l.conv;
        n.pool_k = l.pool_k;
        n.pool_stride = l.pool_stride;
        n.in_features = l.in_features;
        n.out_features = l.out_features;
        n.weight = l.weight;
        n.bias = l.bias;
        n.bn_scale = l.bn_scale;
        n.bn_shift = l.bn_shift;
        PATDNN_CHECK(l.input_from >= -2,
                     "input_from below the -2 sentinel for " << l.name);
        if (l.input_from >= -1) {
            // Explicit producer (branch off the main chain, e.g. a
            // projection shortcut); -1 selects the model input.
            PATDNN_CHECK(l.input_from < static_cast<int>(li),
                         "input_from must reference an earlier layer for "
                             << l.name);
            n.inputs.push_back(
                l.input_from < 0
                    ? -1
                    : layer_to_node[static_cast<size_t>(l.input_from)]);
        } else {
            n.inputs.push_back(prev);
        }
        if (l.kind == OpKind::kAdd) {
            PATDNN_CHECK(l.residual_from >= 0 &&
                             l.residual_from < static_cast<int>(li),
                         "residual_from out of range for " << l.name);
            int res_node = l.residual_from < 0
                               ? -1
                               : layer_to_node[static_cast<size_t>(l.residual_from)];
            n.inputs.push_back(res_node);
        }
        prev = g.addNode(std::move(n));
        layer_to_node[li] = prev;
    }
    g.setOutputNode(prev);
    g.check();
    return g;
}

}  // namespace patdnn
