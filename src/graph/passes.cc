#include "graph/passes.h"

#include <vector>

#include "util/logging.h"

namespace patdnn {
namespace {

/** Redirect every consumer of `from` to `to`. */
void
rewire(Graph& g, int from, int to)
{
    for (auto& n : g.nodes())
        for (auto& in : n.inputs)
            if (in == from)
                in = to;
    if (g.outputNode() == from)
        g.setOutputNode(to);
}

}  // namespace

PassStats
foldBatchNorm(Graph& g)
{
    PassStats stats;
    for (auto& n : g.nodes()) {
        if (n.dead || n.kind != OpKind::kBatchNorm)
            continue;
        int producer_id = n.inputs.empty() ? -1 : n.inputs[0];
        if (producer_id < 0)
            continue;
        GraphNode& prod = g.nodes()[static_cast<size_t>(producer_id)];
        if (prod.kind != OpKind::kConv || prod.dead)
            continue;
        // Only safe if the conv has a single consumer (this BN).
        auto counts = g.consumerCounts();
        if (counts[static_cast<size_t>(producer_id)] != 1)
            continue;
        int64_t cout = prod.conv.cout;
        if (n.bn_scale.numel() != cout || prod.weight.numel() == 0)
            continue;
        int64_t per_filter = prod.weight.numel() / cout;
        for (int64_t oc = 0; oc < cout; ++oc) {
            float s = n.bn_scale[oc];
            float* wp = prod.weight.data() + oc * per_filter;
            for (int64_t i = 0; i < per_filter; ++i)
                wp[i] *= s;
            if (prod.bias.numel() == cout)
                prod.bias[oc] = prod.bias[oc] * s + n.bn_shift[oc];
        }
        prod.fused_bn = true;
        n.dead = true;
        rewire(g, n.id, producer_id);
        ++stats.nodes_affected;
    }
    return stats;
}

PassStats
fuseConvRelu(Graph& g)
{
    PassStats stats;
    for (auto& n : g.nodes()) {
        if (n.dead || n.kind != OpKind::kReLU)
            continue;
        int producer_id = n.inputs.empty() ? -1 : n.inputs[0];
        if (producer_id < 0)
            continue;
        GraphNode& prod = g.nodes()[static_cast<size_t>(producer_id)];
        if (prod.dead ||
            (prod.kind != OpKind::kConv && prod.kind != OpKind::kFullyConnected &&
             prod.kind != OpKind::kAdd))
            continue;
        auto counts = g.consumerCounts();
        if (counts[static_cast<size_t>(producer_id)] != 1)
            continue;
        prod.fused_relu = true;
        n.dead = true;
        rewire(g, n.id, producer_id);
        ++stats.nodes_affected;
    }
    return stats;
}

PassStats
foldConstants(Graph& g)
{
    // Flatten is pure metadata in our NCHW runtime; collapse it.
    PassStats stats;
    for (auto& n : g.nodes()) {
        if (n.dead || n.kind != OpKind::kFlatten)
            continue;
        int producer_id = n.inputs.empty() ? -1 : n.inputs[0];
        if (producer_id < 0)
            continue;
        n.dead = true;
        rewire(g, n.id, producer_id);
        ++stats.nodes_affected;
    }
    return stats;
}

PassStats
eliminateDeadNodes(Graph& g)
{
    PassStats stats;
    std::vector<uint8_t> reachable(g.nodes().size(), 0);
    std::vector<int> stack = {g.outputNode()};
    while (!stack.empty()) {
        int id = stack.back();
        stack.pop_back();
        if (id < 0 || reachable[static_cast<size_t>(id)])
            continue;
        reachable[static_cast<size_t>(id)] = 1;
        for (int in : g.nodes()[static_cast<size_t>(id)].inputs)
            stack.push_back(in);
    }
    for (auto& n : g.nodes()) {
        if (!n.dead && !reachable[static_cast<size_t>(n.id)]) {
            n.dead = true;
            ++stats.nodes_affected;
        }
    }
    return stats;
}

PassStats
optimizeGraph(Graph& g)
{
    PassStats total;
    total.nodes_affected += foldBatchNorm(g).nodes_affected;
    total.nodes_affected += fuseConvRelu(g).nodes_affected;
    total.nodes_affected += foldConstants(g).nodes_affected;
    total.nodes_affected += eliminateDeadNodes(g).nodes_affected;
    g.check();
    return total;
}

}  // namespace patdnn
