#include "graph/graph.h"

#include "util/logging.h"

namespace patdnn {

int
Graph::addNode(GraphNode node)
{
    node.id = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(node));
    return nodes_.back().id;
}

std::vector<int>
Graph::liveNodes() const
{
    std::vector<int> out;
    for (const auto& n : nodes_)
        if (!n.dead)
            out.push_back(n.id);
    return out;
}

std::vector<int>
Graph::consumerCounts() const
{
    std::vector<int> counts(nodes_.size(), 0);
    for (const auto& n : nodes_) {
        if (n.dead)
            continue;
        for (int in : n.inputs)
            if (in >= 0)
                ++counts[static_cast<size_t>(in)];
    }
    return counts;
}

void
Graph::check() const
{
    for (const auto& n : nodes_) {
        if (n.dead)
            continue;
        for (int in : n.inputs) {
            PATDNN_CHECK(in >= -1 && in < n.id,
                         "node " << n.name << " references invalid input " << in);
            if (in >= 0)
                PATDNN_CHECK(!nodes_[static_cast<size_t>(in)].dead,
                             "node " << n.name << " consumes dead node");
        }
    }
    PATDNN_CHECK(output_ >= 0 && output_ < static_cast<int>(nodes_.size()),
                 "graph output unset");
}

}  // namespace patdnn
