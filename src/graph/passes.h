/**
 * @file
 * Graph-level optimization passes (the Table 1 "computation graph
 * optimization" row): BN folding, conv+ReLU operator fusion, constant
 * folding, dead-node elimination and layout annotation. These run
 * before the layerwise stage that Sections 5.2-5.5 describe.
 */
#pragma once

#include "graph/graph.h"

namespace patdnn {

/** Statistics returned by each pass (how much it changed). */
struct PassStats
{
    int nodes_affected = 0;
};

/**
 * Fold each BatchNorm into its producer conv: w' = w * scale[oc],
 * b' = b * scale[oc] + shift[oc]; the BN node is rewired away.
 * Folding preserves zero weights, so it composes with pruning.
 */
PassStats foldBatchNorm(Graph& g);

/** Fuse ReLU nodes into their producer conv/fc (fused_relu flag). */
PassStats fuseConvRelu(Graph& g);

/**
 * Constant folding: flatten nodes following a constant-shape producer
 * chain collapse to metadata (flatten after pooling becomes a no-op
 * reshaping edge). Returns nodes removed.
 */
PassStats foldConstants(Graph& g);

/** Remove nodes not reachable from the output. */
PassStats eliminateDeadNodes(Graph& g);

/** Run all passes in the canonical order; returns total affected. */
PassStats optimizeGraph(Graph& g);

}  // namespace patdnn
