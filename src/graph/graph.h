/**
 * @file
 * Computational graph: PatDNN converts DNN models into computational
 * graphs and applies graph-level optimizations before the layerwise
 * stage (paper Section 5, "enhanced TVM-like approach"). Nodes are ops,
 * edges are tensors identified by producer node id.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/model.h"

namespace patdnn {

/** A node in the computational graph. */
struct GraphNode
{
    int id = -1;
    OpKind kind = OpKind::kConv;
    std::string name;
    std::vector<int> inputs;   ///< Producer node ids.
    ConvDesc conv;             ///< For kConv.
    int64_t pool_k = 2, pool_stride = 2;
    int64_t in_features = 0, out_features = 0;
    Tensor weight, bias;       ///< Owned constants (conv/fc).
    Tensor bn_scale, bn_shift; ///< For kBatchNorm.
    bool fused_relu = false;   ///< Conv+ReLU fusion flag.
    bool fused_bn = false;     ///< BN folded into the conv weights.
    bool dead = false;         ///< Marked by DCE.
};

/** A DAG of operators with one designated output node. */
class Graph
{
  public:
    /** Add a node; fills node.id and returns it. */
    int addNode(GraphNode node);

    std::vector<GraphNode>& nodes() { return nodes_; }
    const std::vector<GraphNode>& nodes() const { return nodes_; }

    int outputNode() const { return output_; }
    void setOutputNode(int id) { output_ = id; }

    /** Ids of live (non-dead) nodes in topological (insertion) order. */
    std::vector<int> liveNodes() const;

    /** Number of consumers of each node among live nodes. */
    std::vector<int> consumerCounts() const;

    /** Validate edges reference earlier live nodes. */
    void check() const;

  private:
    std::vector<GraphNode> nodes_;
    int output_ = -1;
};

}  // namespace patdnn
