/**
 * @file
 * Build a computational graph from a sequential nn::Model. Input is the
 * virtual node -1; residual adds reference the recorded producer layer.
 */
#pragma once

#include "graph/graph.h"
#include "nn/model.h"

namespace patdnn {

/** Convert a Model into a Graph (deep-copies constants). */
Graph buildGraph(const Model& model);

}  // namespace patdnn
