/**
 * @file
 * Model zoo: the three networks the paper evaluates (VGG-16, ResNet-50,
 * MobileNet-V2) instantiated with their exact layer geometry for both
 * ImageNet (224x224x3 inputs) and CIFAR-10 (32x32x3 inputs), plus the
 * nine unique VGG CONV layer shapes of Table 6.
 *
 * Weights are randomly initialized (deterministic seed): execution-speed
 * experiments depend only on geometry and sparsity structure, never on
 * weight values. Accuracy experiments use the trainable nets in
 * src/train instead.
 */
#pragma once

#include <string>
#include <vector>

#include "nn/model.h"

namespace patdnn {

/** Datasets the zoo knows how to shape models for. */
enum class Dataset { kImageNet, kCifar10 };

/** Dataset display name ("ImageNet" / "CIFAR-10"). */
std::string datasetName(Dataset ds);

/** Input spatial resolution for a dataset (224 or 32). */
int64_t datasetInputSize(Dataset ds);

/** Number of classes (1000 or 10). */
int64_t datasetClasses(Dataset ds);

/**
 * Weight handling when instantiating a zoo model. Structure-only
 * consumers (layer counts, sizeMB, shape chaining) should skip the He
 * fill: on ImageNet-scale models the ~138M random draws dominate build
 * time while the geometry-derived metrics never read a weight value.
 */
enum class ZooWeights
{
    kRandomized,  ///< He-initialized from the model's fixed seed.
    kStructureOnly,  ///< Weight tensors left unallocated (empty).
};

/** Build VGG-16 (13 conv + 3 fc) for the dataset. */
Model buildVGG16(Dataset ds, ZooWeights weights = ZooWeights::kRandomized);

/** Build ResNet-50 (49 main-path convs + projections + fc). */
Model buildResNet50(Dataset ds, ZooWeights weights = ZooWeights::kRandomized);

/** Build MobileNet-V2 (inverted residual bottlenecks). */
Model buildMobileNetV2(Dataset ds, ZooWeights weights = ZooWeights::kRandomized);

/** Build by the paper's short name: "VGG", "RNT" or "MBNT". */
Model buildByShortName(const std::string& short_name, Dataset ds,
                       ZooWeights weights = ZooWeights::kRandomized);

/**
 * The nine unique VGG-16 CONV layers of Table 6 (L1..L9) with their
 * ImageNet input resolutions, optionally spatially scaled down by
 * `spatial_divisor` (used by benches to keep host runtimes bounded;
 * divisor 1 reproduces the paper's exact shapes).
 */
std::vector<ConvDesc> vggUniqueLayers(int64_t spatial_divisor = 1);

/** Count of conv layers excluding ResNet projection shortcuts. */
int64_t mainPathConvCount(const Model& m);

}  // namespace patdnn
