/**
 * @file
 * Whole-model description: an ordered list of layer descriptors with
 * enough metadata to drive the graph builder, the pruners and the
 * per-layer executors. Weights live alongside the descriptors so a
 * Model is a complete, runnable artifact.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/conv_desc.h"
#include "tensor/tensor.h"

namespace patdnn {

/** Layer operator kinds understood by the graph and runtimes. */
enum class OpKind
{
    kConv,
    kFullyConnected,
    kReLU,
    kMaxPool,
    kAvgPool,
    kBatchNorm,
    kAdd,       ///< Residual add (ResNet / MobileNet shortcuts).
    kFlatten,
};

/** Human-readable operator name. */
std::string opKindName(OpKind kind);

/**
 * One layer of a model.
 *
 * Only the fields relevant to `kind` are meaningful: conv uses `conv`
 * and `weight`/`bias`; fc uses in/out features and `weight`/`bias`;
 * pools use pool_k/pool_stride; add uses `residual_from` (index of the
 * earlier layer whose output is added).
 *
 * Layers normally consume the previous layer's output; `input_from`
 * overrides that with an explicit earlier producer, which is how a
 * branch off the main chain (e.g. a ResNet projection shortcut) is
 * expressed.
 */
struct Layer
{
    OpKind kind = OpKind::kConv;
    std::string name;
    ConvDesc conv;           ///< For kConv.
    int64_t in_features = 0; ///< For kFullyConnected.
    int64_t out_features = 0;
    int64_t pool_k = 2;      ///< For pools.
    int64_t pool_stride = 2;
    int input_from = -2;     ///< Producer layer index; -2 = previous layer.
    int residual_from = -1;  ///< For kAdd: producer layer index.
    Tensor weight;           ///< OIHW conv weight or [out,in] fc weight.
    Tensor bias;             ///< Optional; empty if absent.
    Tensor bn_scale;         ///< For kBatchNorm: per-channel gamma/sqrt(var).
    Tensor bn_shift;         ///< For kBatchNorm: per-channel beta-mean*scale.
};

/** An ordered DNN model plus dataset bookkeeping. */
class Model
{
  public:
    Model() = default;
    Model(std::string name, std::string dataset)
        : name_(std::move(name)), dataset_(std::move(dataset))
    {
    }

    const std::string& name() const { return name_; }
    const std::string& dataset() const { return dataset_; }

    std::vector<Layer>& layers() { return layers_; }
    const std::vector<Layer>& layers() const { return layers_; }

    /** Append a layer and return its index. */
    int addLayer(Layer layer);

    /** Number of layers of the given kind. */
    int64_t countKind(OpKind kind) const;

    /** Total parameter count across conv + fc layers. */
    int64_t paramCount() const;

    /** Model size in MB at 32-bit floats (paper's Table 5 reports MB). */
    double sizeMB() const;

    /** Dense MACs over all conv layers for one input. */
    int64_t convMacs() const;

    /** Indices of all conv layers. */
    std::vector<int> convLayerIndices() const;

    /** Randomize all conv/fc weights with He init (deterministic seed). */
    void randomizeWeights(uint64_t seed);

  private:
    std::string name_;
    std::string dataset_;
    std::vector<Layer> layers_;
};

}  // namespace patdnn
