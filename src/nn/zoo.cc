#include "nn/zoo.h"

#include "util/logging.h"

namespace patdnn {
namespace {

/** Append conv (+bias) + batchnorm + relu; returns conv layer index. */
int
addConvBnRelu(Model& m, const std::string& name, int64_t cin, int64_t cout,
              int64_t k, int64_t h, int64_t w, int64_t stride, int64_t pad,
              int64_t groups = 1, bool relu = true)
{
    Layer conv;
    conv.kind = OpKind::kConv;
    conv.name = name;
    conv.conv = ConvDesc{name, cin, cout, k, k, h, w, stride, pad, 1, groups};
    int idx = m.addLayer(std::move(conv));

    Layer bn;
    bn.kind = OpKind::kBatchNorm;
    bn.name = name + "_bn";
    bn.bn_scale = Tensor(Shape{cout});
    bn.bn_scale.fill(1.0f);
    bn.bn_shift = Tensor(Shape{cout});
    m.addLayer(std::move(bn));

    if (relu) {
        Layer r;
        r.kind = OpKind::kReLU;
        r.name = name + "_relu";
        m.addLayer(std::move(r));
    }
    return idx;
}

void
addMaxPool(Model& m, const std::string& name, int64_t k = 2, int64_t stride = 2)
{
    Layer p;
    p.kind = OpKind::kMaxPool;
    p.name = name;
    p.pool_k = k;
    p.pool_stride = stride;
    m.addLayer(std::move(p));
}

void
addFc(Model& m, const std::string& name, int64_t in_features, int64_t out_features)
{
    Layer fc;
    fc.kind = OpKind::kFullyConnected;
    fc.name = name;
    fc.in_features = in_features;
    fc.out_features = out_features;
    m.addLayer(std::move(fc));
}

}  // namespace

std::string
datasetName(Dataset ds)
{
    return ds == Dataset::kImageNet ? "ImageNet" : "CIFAR-10";
}

int64_t
datasetInputSize(Dataset ds)
{
    return ds == Dataset::kImageNet ? 224 : 32;
}

int64_t
datasetClasses(Dataset ds)
{
    return ds == Dataset::kImageNet ? 1000 : 10;
}

Model
buildVGG16(Dataset ds, ZooWeights weights)
{
    Model m("VGG-16", datasetName(ds));
    int64_t s = datasetInputSize(ds);
    struct Stage { int64_t cout; int convs; };
    const Stage stages[] = {{64, 2}, {128, 2}, {256, 3}, {512, 3}, {512, 3}};
    int64_t cin = 3;
    int64_t res = s;
    int li = 0;
    for (int si = 0; si < 5; ++si) {
        for (int c = 0; c < stages[si].convs; ++c) {
            ++li;
            addConvBnRelu(m, "conv" + std::to_string(si + 1) + "_" + std::to_string(c + 1),
                          cin, stages[si].cout, 3, res, res, 1, 1);
            cin = stages[si].cout;
        }
        addMaxPool(m, "pool" + std::to_string(si + 1));
        res /= 2;
    }
    Layer fl;
    fl.kind = OpKind::kFlatten;
    fl.name = "flatten";
    m.addLayer(std::move(fl));
    int64_t feat = cin * res * res;
    int64_t hidden = ds == Dataset::kImageNet ? 4096 : 512;
    addFc(m, "fc6", feat, hidden);
    addFc(m, "fc7", hidden, hidden);
    addFc(m, "fc8", hidden, datasetClasses(ds));
    if (weights == ZooWeights::kRandomized)
        m.randomizeWeights(1);
    return m;
}

Model
buildResNet50(Dataset ds, ZooWeights weights)
{
    Model m("ResNet-50", datasetName(ds));
    int64_t res = datasetInputSize(ds);
    int64_t cin;
    if (ds == Dataset::kImageNet) {
        addConvBnRelu(m, "conv1", 3, 64, 7, res, res, 2, 3);
        res /= 2;
        addMaxPool(m, "pool1", 3, 2);
        res /= 2;
        cin = 64;
    } else {
        // CIFAR variant keeps resolution: 3x3 stem, no pool.
        addConvBnRelu(m, "conv1", 3, 64, 3, res, res, 1, 1);
        cin = 64;
    }
    const int blocks[4] = {3, 4, 6, 3};
    const int64_t widths[4] = {64, 128, 256, 512};
    for (int stage = 0; stage < 4; ++stage) {
        int64_t width = widths[stage];
        int64_t out = width * 4;
        for (int b = 0; b < blocks[stage]; ++b) {
            int64_t stride = (b == 0 && stage > 0) ? 2 : 1;
            std::string base =
                "res" + std::to_string(stage + 2) + char('a' + b);
            int last_input = static_cast<int>(m.layers().size()) - 1;
            addConvBnRelu(m, base + "_1x1a", cin, width, 1, res, res, stride, 0);
            int64_t inner_res = stride == 2 ? res / 2 : res;
            addConvBnRelu(m, base + "_3x3", width, width, 3, inner_res, inner_res, 1, 1);
            addConvBnRelu(m, base + "_1x1b", width, out, 1, inner_res, inner_res, 1, 0,
                          1, /*relu=*/false);
            int main_end = static_cast<int>(m.layers().size()) - 1;
            int shortcut = last_input;
            if (b == 0) {
                // Projection shortcut (tagged _proj, excluded from the
                // paper's main-path conv count). It branches off the
                // block input via input_from — not the main chain —
                // and the add then combines main path and projection.
                size_t proj_conv = m.layers().size();
                addConvBnRelu(m, base + "_proj", cin, out, 1, res, res, stride, 0,
                              1, /*relu=*/false);
                m.layers()[proj_conv].input_from = last_input;
                shortcut = static_cast<int>(m.layers().size()) - 1;
            }
            Layer add;
            add.kind = OpKind::kAdd;
            add.name = base + "_add";
            add.input_from = main_end;
            add.residual_from = shortcut;
            m.addLayer(std::move(add));
            Layer relu;
            relu.kind = OpKind::kReLU;
            relu.name = base + "_relu";
            m.addLayer(std::move(relu));
            cin = out;
            res = inner_res;
        }
    }
    Layer gp;
    gp.kind = OpKind::kAvgPool;
    gp.name = "global_pool";
    gp.pool_k = res;
    gp.pool_stride = res;
    m.addLayer(std::move(gp));
    Layer fl;
    fl.kind = OpKind::kFlatten;
    fl.name = "flatten";
    m.addLayer(std::move(fl));
    addFc(m, "fc", cin, datasetClasses(ds));
    if (weights == ZooWeights::kRandomized)
        m.randomizeWeights(2);
    return m;
}

Model
buildMobileNetV2(Dataset ds, ZooWeights weights)
{
    Model m("MobileNet-V2", datasetName(ds));
    int64_t res = datasetInputSize(ds);
    bool imagenet = ds == Dataset::kImageNet;
    int64_t stem_stride = imagenet ? 2 : 1;
    addConvBnRelu(m, "conv_stem", 3, 32, 3, res, res, stem_stride, 1);
    if (stem_stride == 2)
        res /= 2;
    int64_t cin = 32;
    struct BlockCfg { int64_t t, c, n, s; };
    // The paper's MobileNet-V2 configuration table.
    const BlockCfg cfg[] = {
        {1, 16, 1, 1},  {6, 24, 2, 2},  {6, 32, 3, 2}, {6, 64, 4, 2},
        {6, 96, 3, 1},  {6, 160, 3, 2}, {6, 320, 1, 1},
    };
    int block_id = 0;
    for (const auto& bc : cfg) {
        for (int64_t i = 0; i < bc.n; ++i) {
            ++block_id;
            // CIFAR variant: keep the first two downsamples at stride 1.
            int64_t s = (i == 0) ? bc.s : 1;
            if (!imagenet && block_id <= 3 && s == 2)
                s = 1;
            std::string base = "bneck" + std::to_string(block_id);
            int last_input = static_cast<int>(m.layers().size()) - 1;
            int64_t mid = cin * bc.t;
            if (bc.t != 1)
                addConvBnRelu(m, base + "_expand", cin, mid, 1, res, res, 1, 0);
            addConvBnRelu(m, base + "_dw", mid, mid, 3, res, res, s, 1, mid);
            int64_t inner_res = s == 2 ? res / 2 : res;
            addConvBnRelu(m, base + "_project", mid, bc.c, 1, inner_res, inner_res,
                          1, 0, 1, /*relu=*/false);
            if (s == 1 && cin == bc.c) {
                Layer add;
                add.kind = OpKind::kAdd;
                add.name = base + "_add";
                add.residual_from = last_input;
                m.addLayer(std::move(add));
            }
            cin = bc.c;
            res = inner_res;
        }
    }
    addConvBnRelu(m, "conv_head", cin, 1280, 1, res, res, 1, 0);
    Layer gp;
    gp.kind = OpKind::kAvgPool;
    gp.name = "global_pool";
    gp.pool_k = res;
    gp.pool_stride = res;
    m.addLayer(std::move(gp));
    Layer fl;
    fl.kind = OpKind::kFlatten;
    fl.name = "flatten";
    m.addLayer(std::move(fl));
    addFc(m, "fc", 1280, datasetClasses(ds));
    if (weights == ZooWeights::kRandomized)
        m.randomizeWeights(3);
    return m;
}

Model
buildByShortName(const std::string& short_name, Dataset ds, ZooWeights weights)
{
    if (short_name == "VGG")
        return buildVGG16(ds, weights);
    if (short_name == "RNT")
        return buildResNet50(ds, weights);
    if (short_name == "MBNT")
        return buildMobileNetV2(ds, weights);
    PATDNN_CHECK(false, "unknown model short name: " << short_name);
}

std::vector<ConvDesc>
vggUniqueLayers(int64_t spatial_divisor)
{
    PATDNN_CHECK_GE(spatial_divisor, 1, "spatial divisor");
    auto d = [&](int64_t v) {
        int64_t r = v / spatial_divisor;
        return r < 4 ? 4 : r;
    };
    std::vector<ConvDesc> layers = {
        {"L1", 3, 64, 3, 3, d(224), d(224), 1, 1, 1, 1},
        {"L2", 64, 64, 3, 3, d(224), d(224), 1, 1, 1, 1},
        {"L3", 64, 128, 3, 3, d(112), d(112), 1, 1, 1, 1},
        {"L4", 128, 128, 3, 3, d(112), d(112), 1, 1, 1, 1},
        {"L5", 128, 256, 3, 3, d(56), d(56), 1, 1, 1, 1},
        {"L6", 256, 256, 3, 3, d(56), d(56), 1, 1, 1, 1},
        {"L7", 256, 512, 3, 3, d(28), d(28), 1, 1, 1, 1},
        {"L8", 512, 512, 3, 3, d(28), d(28), 1, 1, 1, 1},
        {"L9", 512, 512, 3, 3, d(14), d(14), 1, 1, 1, 1},
    };
    for (auto& l : layers)
        l.check();
    return layers;
}

int64_t
mainPathConvCount(const Model& m)
{
    int64_t n = 0;
    for (const auto& l : m.layers()) {
        if (l.kind != OpKind::kConv)
            continue;
        if (l.name.size() >= 5 && l.name.substr(l.name.size() - 5) == "_proj")
            continue;
        ++n;
    }
    return n;
}

}  // namespace patdnn
