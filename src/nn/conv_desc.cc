#include "nn/conv_desc.h"

#include <sstream>

#include "util/logging.h"

namespace patdnn {

int64_t
ConvDesc::outH() const
{
    int64_t eff_k = dilation * (kh - 1) + 1;
    return (h + 2 * pad - eff_k) / stride + 1;
}

int64_t
ConvDesc::outW() const
{
    int64_t eff_k = dilation * (kw - 1) + 1;
    return (w + 2 * pad - eff_k) / stride + 1;
}

int64_t
ConvDesc::macs() const
{
    return outH() * outW() * cout * cinPerGroup() * kh * kw;
}

std::string
ConvDesc::filterShapeStr() const
{
    std::ostringstream out;
    out << "[" << cout << "," << cinPerGroup() << "," << kh << "," << kw << "]";
    return out.str();
}

Status
ConvDesc::validate() const
{
    auto fail = [&](const std::string& what) {
        return Status(ErrorCode::kInvalidArgument,
                      "conv descriptor '" + name + "': " + what);
    };
    if (cin < 1)
        return fail("cin must be positive");
    if (cout < 1)
        return fail("cout must be positive");
    if (kh < 1 || kw < 1)
        return fail("kernel dims must be positive");
    if (h < 1 || w < 1)
        return fail("input feature-map dims must be positive");
    if (stride < 1)
        return fail("stride must be positive");
    if (pad < 0)
        return fail("pad must be non-negative");
    if (dilation < 1)
        return fail("dilation must be positive");
    if (groups < 1)
        return fail("groups must be positive");
    if (cin % groups != 0 || cout % groups != 0)
        return fail("cin and cout must be divisible by groups");
    if (outH() < 1)
        return fail("output height collapses to zero for this geometry");
    if (outW() < 1)
        return fail("output width collapses to zero for this geometry");
    return Status::OK();
}

void
ConvDesc::check() const
{
    Status status = validate();
    PATDNN_CHECK(status.ok(), status.message());
}

}  // namespace patdnn
