#include "nn/conv_desc.h"

#include <sstream>

#include "util/logging.h"

namespace patdnn {

int64_t
ConvDesc::outH() const
{
    int64_t eff_k = dilation * (kh - 1) + 1;
    return (h + 2 * pad - eff_k) / stride + 1;
}

int64_t
ConvDesc::outW() const
{
    int64_t eff_k = dilation * (kw - 1) + 1;
    return (w + 2 * pad - eff_k) / stride + 1;
}

int64_t
ConvDesc::macs() const
{
    return outH() * outW() * cout * cinPerGroup() * kh * kw;
}

std::string
ConvDesc::filterShapeStr() const
{
    std::ostringstream out;
    out << "[" << cout << "," << cinPerGroup() << "," << kh << "," << kw << "]";
    return out.str();
}

void
ConvDesc::check() const
{
    PATDNN_CHECK_GT(cin, 0, "cin");
    PATDNN_CHECK_GT(cout, 0, "cout");
    PATDNN_CHECK_GT(kh, 0, "kh");
    PATDNN_CHECK_GT(kw, 0, "kw");
    PATDNN_CHECK_GT(h, 0, "h");
    PATDNN_CHECK_GT(w, 0, "w");
    PATDNN_CHECK_GT(stride, 0, "stride");
    PATDNN_CHECK_GE(pad, 0, "pad");
    PATDNN_CHECK_GT(dilation, 0, "dilation");
    PATDNN_CHECK_GT(groups, 0, "groups");
    PATDNN_CHECK_EQ(cin % groups, 0, "cin divisible by groups");
    PATDNN_CHECK_EQ(cout % groups, 0, "cout divisible by groups");
    PATDNN_CHECK_GT(outH(), 0, "output height for " << name);
    PATDNN_CHECK_GT(outW(), 0, "output width for " << name);
}

}  // namespace patdnn
