/**
 * @file
 * Convolution layer descriptor: the geometry every executor, pruner and
 * storage format in the library operates on.
 */
#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace patdnn {

/**
 * Geometry of a 2-D convolution.
 *
 * Activations are NCHW, weights OIHW. groups > 1 expresses grouped /
 * depthwise convolutions (MobileNet-V2): cin is the full input channel
 * count, and each group convolves cin/groups input channels into
 * cout/groups output channels.
 */
struct ConvDesc
{
    std::string name;   ///< Layer name, e.g. "conv1_1" or "L4".
    int64_t cin = 1;    ///< Input channels C_k.
    int64_t cout = 1;   ///< Output channels / filters C_{k+1}.
    int64_t kh = 3;     ///< Kernel height P_k.
    int64_t kw = 3;     ///< Kernel width Q_k.
    int64_t h = 1;      ///< Input feature-map height M_k.
    int64_t w = 1;      ///< Input feature-map width N_k.
    int64_t stride = 1; ///< Stride S_k (same in both spatial dims).
    int64_t pad = 1;    ///< Symmetric zero padding.
    int64_t dilation = 1; ///< Kernel dilation.
    int64_t groups = 1; ///< Group count (cin and cout divisible by it).

    /** Output feature-map height M_{k+1}. */
    int64_t outH() const;
    /** Output feature-map width N_{k+1}. */
    int64_t outW() const;

    /** Input channels seen by one filter (cin / groups). */
    int64_t cinPerGroup() const { return cin / groups; }
    /** Filters per group (cout / groups). */
    int64_t coutPerGroup() const { return cout / groups; }

    /** Number of weights (dense). */
    int64_t weightCount() const { return cout * cinPerGroup() * kh * kw; }

    /** Multiply-accumulate count for one input (dense). */
    int64_t macs() const;

    /** 2*macs, the FLOP convention used in the paper's GFLOPS plots. */
    int64_t flops() const { return 2 * macs(); }

    /** Filter shape in the paper's Table-6 notation. */
    std::string filterShapeStr() const;

    /** Validate invariants without aborting: kInvalidArgument naming
     * the offending field on nonsense geometry. The Compiler facade
     * uses this to turn malformed descriptors into typed errors. */
    Status validate() const;

    /** Validate invariants; aborts on nonsense geometry (internal
     * paths where a bad descriptor means a library bug). */
    void check() const;
};

}  // namespace patdnn
