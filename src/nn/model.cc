#include "nn/model.h"

#include "util/logging.h"

namespace patdnn {

std::string
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::kConv: return "conv";
      case OpKind::kFullyConnected: return "fc";
      case OpKind::kReLU: return "relu";
      case OpKind::kMaxPool: return "maxpool";
      case OpKind::kAvgPool: return "avgpool";
      case OpKind::kBatchNorm: return "batchnorm";
      case OpKind::kAdd: return "add";
      case OpKind::kFlatten: return "flatten";
    }
    return "unknown";
}

int
Model::addLayer(Layer layer)
{
    if (layer.kind == OpKind::kConv)
        layer.conv.check();
    layers_.push_back(std::move(layer));
    return static_cast<int>(layers_.size()) - 1;
}

int64_t
Model::countKind(OpKind kind) const
{
    int64_t n = 0;
    for (const auto& l : layers_)
        if (l.kind == kind)
            ++n;
    return n;
}

int64_t
Model::paramCount() const
{
    int64_t n = 0;
    for (const auto& l : layers_) {
        if (l.kind == OpKind::kConv)
            n += l.conv.weightCount() + l.conv.cout;
        else if (l.kind == OpKind::kFullyConnected)
            n += l.in_features * l.out_features + l.out_features;
    }
    return n;
}

double
Model::sizeMB() const
{
    return static_cast<double>(paramCount()) * 4.0 / (1024.0 * 1024.0);
}

int64_t
Model::convMacs() const
{
    int64_t n = 0;
    for (const auto& l : layers_)
        if (l.kind == OpKind::kConv)
            n += l.conv.macs();
    return n;
}

std::vector<int>
Model::convLayerIndices() const
{
    std::vector<int> idx;
    for (size_t i = 0; i < layers_.size(); ++i)
        if (layers_[i].kind == OpKind::kConv)
            idx.push_back(static_cast<int>(i));
    return idx;
}

void
Model::randomizeWeights(uint64_t seed)
{
    Rng rng(seed);
    for (auto& l : layers_) {
        if (l.kind == OpKind::kConv) {
            l.weight = Tensor(Shape{l.conv.cout, l.conv.cinPerGroup(), l.conv.kh, l.conv.kw});
            l.weight.fillHe(rng, l.conv.cinPerGroup() * l.conv.kh * l.conv.kw);
            l.bias = Tensor(Shape{l.conv.cout});
        } else if (l.kind == OpKind::kFullyConnected) {
            l.weight = Tensor(Shape{l.out_features, l.in_features});
            l.weight.fillHe(rng, l.in_features);
            l.bias = Tensor(Shape{l.out_features});
        }
    }
}

}  // namespace patdnn
