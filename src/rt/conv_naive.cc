#include "rt/conv_naive.h"

#include "util/logging.h"

namespace patdnn {

void
NaiveConv::run(const Tensor& in, Tensor& out, const Epilogue& ep) const
{
    const ConvDesc& d = desc_;
    int64_t n = in.shape().dim(0);
    int64_t oh = d.outH(), ow = d.outW();
    int64_t cpg = d.cinPerGroup();
    int64_t opg = d.coutPerGroup();
    const Tensor& weight = *weight_;

    device_.pool().parallelFor(n * d.cout, [&](int64_t job) {
        int64_t b = job / d.cout;
        int64_t oc = job % d.cout;
        int64_t g = oc / opg;
        const float* wbase = weight.data() + oc * cpg * d.kh * d.kw;
        float bias = ep.bias != nullptr ? (*ep.bias)[oc] : 0.0f;
        float* optr = out.data() + ((b * d.cout + oc) * oh) * ow;
        for (int64_t y = 0; y < oh; ++y) {
            for (int64_t x = 0; x < ow; ++x) {
                float acc = bias;
                for (int64_t ic = 0; ic < cpg; ++ic) {
                    const float* iptr =
                        in.data() + ((b * d.cin + g * cpg + ic) * d.h) * d.w;
                    const float* wk = wbase + ic * d.kh * d.kw;
                    for (int64_t r = 0; r < d.kh; ++r) {
                        int64_t iy = y * d.stride - d.pad + r * d.dilation;
                        if (iy < 0 || iy >= d.h)
                            continue;
                        for (int64_t c = 0; c < d.kw; ++c) {
                            int64_t ix = x * d.stride - d.pad + c * d.dilation;
                            if (ix < 0 || ix >= d.w)
                                continue;
                            acc += wk[r * d.kw + c] * iptr[iy * d.w + ix];
                        }
                    }
                }
                if (ep.relu && acc < 0.0f)
                    acc = 0.0f;
                optr[y * ow + x] = acc;
            }
        }
    });
}

}  // namespace patdnn
