#include "rt/conv_csr.h"

#include <algorithm>

#include "util/logging.h"

namespace patdnn {

void
CsrConv::run(const Tensor& in, Tensor& out, const Epilogue& ep) const
{
    const ConvDesc& d = desc_;
    PATDNN_CHECK_EQ(d.groups, 1, "CsrConv supports groups == 1");
    int64_t n = in.shape().dim(0);
    int64_t oh = d.outH(), ow = d.outW();
    int64_t ksz = d.kh * d.kw;

    device_.pool().parallelFor(n * d.cout, [&](int64_t job) {
        int64_t b = job / d.cout;
        int64_t oc = job % d.cout;
        float* optr = out.data() + ((b * d.cout + oc) * oh) * ow;
        float bias = ep.bias ? (*ep.bias)[oc] : 0.0f;
        std::fill(optr, optr + oh * ow, bias);
        int32_t begin = csr_.row_ptr[static_cast<size_t>(oc)];
        int32_t end = csr_.row_ptr[static_cast<size_t>(oc) + 1];
        for (int32_t i = begin; i < end; ++i) {
            // Indirect decode: flat column -> (ic, r, c). This is the
            // per-nonzero index arithmetic that throttles CSR execution.
            int64_t col = csr_.col_idx[static_cast<size_t>(i)];
            float wv = csr_.values[static_cast<size_t>(i)];
            int64_t ic = col / ksz;
            int64_t rem = col % ksz;
            int64_t r = rem / d.kw;
            int64_t c = rem % d.kw;
            const float* iptr = in.data() + ((b * d.cin + ic) * d.h) * d.w;
            // Stride-1 rows touch a contiguous input span: resolve the
            // guarded gather to one bounds computation + a vectorized
            // saxpy over the valid columns (the per-nonzero FKW/CSR
            // gather is where SIMD pays on this engine).
            bool contiguous = d.stride == 1 && d.dilation == 1;
            int64_t x_lo = contiguous ? std::max<int64_t>(0, d.pad - c) : 0;
            int64_t x_hi =
                contiguous ? std::min<int64_t>(ow, d.w + d.pad - c) : 0;
            for (int64_t y = 0; y < oh; ++y) {
                int64_t iy = y * d.stride - d.pad + r * d.dilation;
                if (iy < 0 || iy >= d.h)
                    continue;
                const float* irow = iptr + iy * d.w;
                float* orow = optr + y * ow;
                if (contiguous) {
                    if (x_hi > x_lo)
                        ops_->axpy(wv, irow + x_lo - d.pad + c, orow + x_lo,
                                   x_hi - x_lo);
                    continue;
                }
                for (int64_t x = 0; x < ow; ++x) {
                    int64_t ix = x * d.stride - d.pad + c * d.dilation;
                    if (ix < 0 || ix >= d.w)
                        continue;
                    orow[x] += wv * irow[ix];
                }
            }
        }
        if (ep.relu)
            ops_->relu(optr, oh * ow);
    });
}

}  // namespace patdnn
