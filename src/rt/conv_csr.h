/**
 * @file
 * CSR sparse convolution: the conventional sparse baseline the paper
 * implements to show that non-structured sparsity does not translate
 * into speedups ("almost the same speed to PatDNN's dense version",
 * Section 6.2). Every inner-loop step performs an indirect index
 * decode, exactly the irregular-memory-access behaviour Section 2.3
 * describes.
 */
#pragma once

#include "nn/conv_desc.h"
#include "rt/conv_ref.h"
#include "rt/device.h"
#include "sparse/csr.h"

namespace patdnn {

/** Direct sparse convolution over CSR weights. */
class CsrConv
{
  public:
    CsrConv(ConvDesc desc, CsrWeights csr, DeviceSpec device)
        : desc_(std::move(desc)), csr_(std::move(csr)),
          device_(std::move(device)), ops_(&resolveSimdOps(device_.simd_isa))
    {
    }

    void run(const Tensor& in, Tensor& out, const Epilogue& ep = {}) const;

    const CsrWeights& weights() const { return csr_; }

  private:
    ConvDesc desc_;
    CsrWeights csr_;
    DeviceSpec device_;
    const SimdOps* ops_;  ///< Resolved once from device_.simd_isa.
};

}  // namespace patdnn
