#include "rt/lr.h"

#include <sstream>

namespace patdnn {

std::string
permutationName(LoopPermutation p, bool blocked)
{
    std::string base = p == LoopPermutation::kCoCiHW ? "cocihw" : "cohwci";
    return blocked ? base + "_b" : base;
}

std::string
LayerwiseRep::str() const
{
    std::ostringstream out;
    out << "device: [" << device << "]\n";
    out << "layers:\n";
    out << "  - name: \"" << conv.name << "\"\n";
    out << "    storage: \"" << storage << "\"\n";
    out << "    pattern: {\"type\": [";
    for (size_t i = 0; i < pattern_types.size(); ++i) {
        out << pattern_types[i];
        if (i + 1 < pattern_types.size())
            out << ", ";
    }
    out << "], \"layout\": " << layout << "}\n";
    out << "    tuning:  {\"unroll\": [" << tuning.unroll_oc << ", "
        << tuning.unroll_w << "], \"tile\": [" << tuning.tile_oh << ", "
        << tuning.tile_ow << "], \"permute\": "
        << permutationName(tuning.permute, tuning.blocked) << "}\n";
    out << "    info:    {\"strides\": [" << conv.stride << ", " << conv.stride
        << "], \"dilations\": [" << conv.dilation << ", " << conv.dilation << "]}\n";
    return out.str();
}

}  // namespace patdnn
