/**
 * @file
 * Winograd F(2x2, 3x3) convolution: the hand-optimized dense path the
 * paper enables "for all dense runs" (Section 6.1) and the MNN-like
 * facade's fast 3x3 kernel. Falls back to im2col for non-3x3/stride>1.
 */
#pragma once

#include "nn/conv_desc.h"
#include "rt/conv_im2col.h"
#include "rt/conv_ref.h"
#include "rt/device.h"

namespace patdnn {

/** Winograd F(2x2,3x3) executor with dense-GEMM fallback. */
class WinogradConv
{
  public:
    WinogradConv(ConvDesc desc, const Tensor* weight, DeviceSpec device);

    void run(const Tensor& in, Tensor& out, const Epilogue& ep = {}) const;

    /** True if the geometry takes the Winograd fast path. */
    bool usesWinograd() const { return winograd_ok_; }

  private:
    void runWinograd(const Tensor& in, Tensor& out, const Epilogue& ep) const;

    ConvDesc desc_;
    const Tensor* weight_;
    DeviceSpec device_;
    bool winograd_ok_ = false;
    Tensor transformed_;  ///< [16, cout, cin] pre-transformed filters U.
};

}  // namespace patdnn
