/**
 * @file
 * Winograd F(2x2, 3x3) convolution: the hand-optimized dense path the
 * paper enables "for all dense runs" (Section 6.1) and the MNN-like
 * facade's fast 3x3 kernel. Falls back to im2col for non-3x3/stride>1.
 * The 16 per-tile-position stage-2 GEMMs run on the same packed
 * SimdOps::gemm_tile kernel as the im2col backend (rt/gemm_packed.h):
 * the transformed filters are packed once at construction, the
 * transformed input is packed per run.
 */
#pragma once

#include "nn/conv_desc.h"
#include "rt/conv_im2col.h"
#include "rt/conv_ref.h"
#include "rt/device.h"
#include "rt/gemm_packed.h"
#include "rt/lr.h"

namespace patdnn {

/** Winograd F(2x2,3x3) executor with dense-GEMM fallback. */
class WinogradConv
{
  public:
    WinogradConv(ConvDesc desc, const Tensor* weight, DeviceSpec device,
                 TuneParams tuning = {});

    void run(const Tensor& in, Tensor& out, const Epilogue& ep = {}) const;

    /** True if the geometry takes the Winograd fast path. */
    bool usesWinograd() const { return winograd_ok_; }

  private:
    void runWinograd(const Tensor& in, Tensor& out, const Epilogue& ep) const;

    ConvDesc desc_;
    const Tensor* weight_;
    DeviceSpec device_;
    TuneParams tuning_;
    bool winograd_ok_ = false;
    Tensor transformed_;  ///< [16, cout, cin] pre-transformed filters U.
    const SimdOps* ops_ = nullptr;  ///< Resolved kernel table.
    Tensor packed_u_;     ///< 16 packed LHS tile-panel sets of U.
    GemmBlocking blocking_;
    std::unique_ptr<Im2colConv> fallback_;  ///< Built once when !winograd_ok_.
};

}  // namespace patdnn
