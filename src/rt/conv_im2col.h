/**
 * @file
 * im2col + packed tiled GEMM convolution: the optimized dense baseline
 * standing in for TVM's scheduled dense kernels (Table 1's "tensor
 * optimization" row: packing, cache blocking, vectorized tile kernels,
 * threading). The filter matrix is packed once at construction; each
 * run packs the im2col patch matrix and dispatches the per-ISA
 * SimdOps::gemm_tile micro-kernel through rt/gemm_packed.h, so the
 * Fig. 17 pattern-vs-dense comparison runs against a competitive dense
 * baseline rather than a scalar loop.
 */
#pragma once

#include "nn/conv_desc.h"
#include "rt/conv_ref.h"
#include "rt/device.h"
#include "rt/gemm_packed.h"
#include "rt/lr.h"

namespace patdnn {

/** Dense conv via im2col and a packed, cache-blocked, tiled GEMM. */
class Im2colConv
{
  public:
    /**
     * Packs the filter matrix per group for `device`'s kernel ISA.
     * `tuning.gemm_kc` / `tuning.gemm_nc` override the cache-blocking
     * heuristic when > 0 (the auto-tuner's dense knobs).
     */
    Im2colConv(ConvDesc desc, const Tensor* weight, DeviceSpec device,
               TuneParams tuning = {});

    void run(const Tensor& in, Tensor& out, const Epilogue& ep = {}) const;

    /**
     * The pre-packing register-blocked GEMM this backend replaced.
     * Kept callable as the bench/test comparison point (bench_micro's
     * packed-vs-naive columns, the ≥2x acceptance gate) — not used on
     * any run path.
     */
    void runNaive(const Tensor& in, Tensor& out, const Epilogue& ep = {}) const;

    /** Expose im2col for testing: [cin*kh*kw, outH*outW] column matrix. */
    static Tensor im2col(const ConvDesc& d, const Tensor& in, int64_t batch_index,
                         int64_t group);

    /** The cache-blocking factors in effect (heuristic or tuned). */
    const GemmBlocking& blocking() const { return blocking_; }

  private:
    ConvDesc desc_;
    const Tensor* weight_;
    DeviceSpec device_;
    TuneParams tuning_;
    const SimdOps* ops_;   ///< Resolved kernel table (never null).
    Tensor packed_w_;      ///< [groups][lhs-tile panels] packed filters.
    GemmBlocking blocking_;
};

}  // namespace patdnn
