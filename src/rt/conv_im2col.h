/**
 * @file
 * im2col + packed tiled GEMM convolution: the optimized dense baseline
 * standing in for TVM's scheduled dense kernels (Table 1's "tensor
 * optimization" row: packing, cache blocking, vectorized tile kernels,
 * threading). The filter matrix is packed once at construction; each
 * run packs the im2col patch matrix and dispatches the per-ISA
 * SimdOps::gemm_tile micro-kernel through rt/gemm_packed.h, so the
 * Fig. 17 pattern-vs-dense comparison runs against a competitive dense
 * baseline rather than a scalar loop.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "nn/conv_desc.h"
#include "rt/conv_ref.h"
#include "rt/device.h"
#include "rt/gemm_packed.h"
#include "rt/lr.h"

namespace patdnn {

/** Dense conv via im2col and a packed, cache-blocked, tiled GEMM. */
class Im2colConv
{
  public:
    /**
     * Packs the filter matrix per group for `device`'s kernel ISA.
     * `tuning.gemm_kc` / `tuning.gemm_nc` override the cache-blocking
     * heuristic when > 0 (the auto-tuner's dense knobs).
     */
    Im2colConv(ConvDesc desc, const Tensor* weight, DeviceSpec device,
               TuneParams tuning = {});

    /**
     * Build in int8 quantized mode: the filter matrix is quantized per
     * output channel (prune/quant.h) and packed as k-pair i8 panels at
     * construction. Each run quantizes the im2col patch matrix at
     * `act_scale` (the calibrated input scale for this layer), runs the
     * exact i8×i8→i32 packed GEMM (SimdOps::gemm_tile_i8), and
     * requantizes to f32 with weight_scale[ch] * act_scale + bias
     * (+ fused ReLU). Non-empty `weight_scales` override the derived
     * per-channel scales (the artifact-restore path, where the stored
     * scales are authoritative); size must be desc.cout.
     */
    Im2colConv(ConvDesc desc, const Tensor* weight, DeviceSpec device,
               TuneParams tuning, float act_scale,
               std::vector<float> weight_scales = {});

    void run(const Tensor& in, Tensor& out, const Epilogue& ep = {}) const;

    /**
     * The pre-packing register-blocked GEMM this backend replaced.
     * Kept callable as the bench/test comparison point (bench_micro's
     * packed-vs-naive columns, the ≥2x acceptance gate) — not used on
     * any run path.
     */
    void runNaive(const Tensor& in, Tensor& out, const Epilogue& ep = {}) const;

    /** Expose im2col for testing: [cin*kh*kw, outH*outW] column matrix. */
    static Tensor im2col(const ConvDesc& d, const Tensor& in, int64_t batch_index,
                         int64_t group);

    /** The cache-blocking factors in effect (heuristic or tuned). */
    const GemmBlocking& blocking() const { return blocking_; }

    /** True when this engine runs the int8 GEMM path. */
    bool quantized() const { return quantized_; }

    /** Calibrated input scale (quantized mode; 0 otherwise). */
    float actScale() const { return act_scale_; }

    /** Per-output-channel weight scales (empty unless quantized). */
    const std::vector<float>& weightScales() const { return wscales_; }

  private:
    void runQuantized(const Tensor& in, Tensor& out, const Epilogue& ep) const;

    ConvDesc desc_;
    const Tensor* weight_;
    DeviceSpec device_;
    TuneParams tuning_;
    const SimdOps* ops_;   ///< Resolved kernel table (never null).
    Tensor packed_w_;      ///< [groups][lhs-tile panels] packed filters (f32).
    GemmBlocking blocking_;

    // Int8 mode (see the quantized constructor).
    bool quantized_ = false;
    float act_scale_ = 0.0f;
    std::vector<int16_t> packed_wq_;  ///< [groups][i16-widened k-pair panels].
    std::vector<float> wscales_;     ///< Per-cout weight scales.
};

}  // namespace patdnn
