/**
 * @file
 * im2col + blocked GEMM convolution: the tuned dense baseline standing
 * in for TVM's scheduled dense kernels (Table 1's "tensor optimization"
 * row: blocking, vector-friendly inner loops, threading).
 */
#pragma once

#include "nn/conv_desc.h"
#include "rt/conv_ref.h"
#include "rt/device.h"

namespace patdnn {

/** Tuned dense conv via im2col and a register-blocked GEMM. */
class Im2colConv
{
  public:
    Im2colConv(ConvDesc desc, const Tensor* weight, DeviceSpec device)
        : desc_(std::move(desc)), weight_(weight), device_(std::move(device))
    {
    }

    void run(const Tensor& in, Tensor& out, const Epilogue& ep = {}) const;

    /** Expose im2col for testing: [cin*kh*kw, outH*outW] column matrix. */
    static Tensor im2col(const ConvDesc& d, const Tensor& in, int64_t batch_index,
                         int64_t group);

  private:
    ConvDesc desc_;
    const Tensor* weight_;
    DeviceSpec device_;
};

}  // namespace patdnn
