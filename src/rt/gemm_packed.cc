#include "rt/gemm_packed.h"

#include <algorithm>

#include "util/logging.h"

namespace patdnn {

GemmBlocking
gemmBlockingFor(const SimdOps& ops, int64_t k, int64_t n,
                int64_t tile_budget_kb, int64_t kc_override,
                int64_t nc_override)
{
    GemmBlocking b;
    if (kc_override > 0) {
        b.kc = kc_override;
    } else {
        // One [kc x MR] LHS slice + one [kc x NR] RHS slice should fill
        // about half the L1 budget, leaving the rest for the C block
        // and the streaming write-back.
        int64_t budget_elems = std::max<int64_t>(1, tile_budget_kb) * 1024 / 4;
        int64_t per_k = ops.gemm_mr + ops.gemm_nr;
        b.kc = std::max<int64_t>(16, budget_elems / (2 * per_k));
    }
    b.kc = std::min(b.kc, std::max<int64_t>(1, k));
    if (nc_override > 0) {
        b.nc = nc_override;
    } else {
        // A handful of column tiles per C block: wide enough to amortize
        // the LHS panel reload, narrow enough that [MR x nc] stays hot.
        b.nc = static_cast<int64_t>(ops.gemm_nr) * 8;
    }
    // Round up to whole tiles so blocks never split a tile.
    int64_t nr = ops.gemm_nr;
    b.nc = std::max<int64_t>(nr, (b.nc / nr) * nr);
    b.nc = std::min(b.nc, std::max<int64_t>(1, n));
    return b;
}

int64_t
packedLhsElems(int64_t m, int64_t k, int mr)
{
    return ((m + mr - 1) / mr) * k * mr;
}

int64_t
packedRhsElems(int64_t k, int64_t n, int nr)
{
    return ((n + nr - 1) / nr) * k * nr;
}

void
packLhsTiles(const float* a, int64_t m, int64_t k, int64_t lda, int mr,
             float* dst)
{
    int64_t tiles = (m + mr - 1) / mr;
    for (int64_t i = 0; i < tiles; ++i) {
        int live = static_cast<int>(std::min<int64_t>(mr, m - i * mr));
        float* panel = dst + i * k * mr;
        for (int64_t kk = 0; kk < k; ++kk) {
            float* out = panel + kk * mr;
            const float* src = a + i * mr * lda + kk;
            int r = 0;
            for (; r < live; ++r)
                out[r] = src[r * lda];
            for (; r < mr; ++r)
                out[r] = 0.0f;
        }
    }
}

void
packRhsTiles(const float* b, int64_t k, int64_t n, int64_t ldb, int nr,
             float* dst)
{
    int64_t tiles = (n + nr - 1) / nr;
    for (int64_t j = 0; j < tiles; ++j) {
        int live = static_cast<int>(std::min<int64_t>(nr, n - j * nr));
        float* panel = dst + j * k * nr;
        const float* src_col = b + j * nr;
        for (int64_t kk = 0; kk < k; ++kk) {
            float* out = panel + kk * nr;
            const float* src = src_col + kk * ldb;
            int x = 0;
            for (; x < live; ++x)
                out[x] = src[x];
            for (; x < nr; ++x)
                out[x] = 0.0f;
        }
    }
}

void
packedGemmRowTiles(const SimdOps& ops, const float* packed_lhs,
                   const float* packed_rhs, int64_t m, int64_t k, int64_t n,
                   float* c, int64_t ldc, int64_t tile_begin, int64_t tile_end,
                   const GemmBlocking& blocking)
{
    PATDNN_CHECK(ops.gemm_tile != nullptr, "SimdOps table lacks gemm_tile");
    const int mr = ops.gemm_mr;
    const int nr = ops.gemm_nr;
    const int64_t kc = std::max<int64_t>(1, blocking.kc);
    const int64_t nc = std::max<int64_t>(nr, blocking.nc);
    for (int64_t i = tile_begin; i < tile_end; ++i) {
        const int live_m = static_cast<int>(std::min<int64_t>(mr, m - i * mr));
        const float* lhs_tile = packed_lhs + i * k * mr;
        float* c_rows = c + i * mr * ldc;
        for (int64_t n0 = 0; n0 < n; n0 += nc) {
            const int64_t n1 = std::min(n, n0 + nc);
            // K blocks accumulate through C, so this loop is bit-neutral
            // (dispatch.h): the [mr x (n1-n0)] C block stays resident
            // while K streams through it.
            for (int64_t k0 = 0; k0 < k; k0 += kc) {
                const int64_t kcur = std::min(kc, k - k0);
                const float* a_panel = lhs_tile + k0 * mr;
                for (int64_t jn = n0; jn < n1; jn += nr) {
                    const int64_t j = jn / nr;
                    const int live_n =
                        static_cast<int>(std::min<int64_t>(nr, n - jn));
                    const float* b_panel =
                        packed_rhs + (j * k + k0) * nr;
                    ops.gemm_tile(a_panel, b_panel, c_rows + jn, ldc, kcur,
                                  live_m, live_n);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Int8 variant
// ---------------------------------------------------------------------------

namespace {

/** K extent in interleaved pairs (odd K pads one zero lane). */
int64_t
kPairs(int64_t k)
{
    return (k + 1) / 2;
}

}  // namespace

GemmBlocking
gemmBlockingForI8(const SimdOps& ops, int64_t k, int64_t n,
                  int64_t tile_budget_kb, int64_t kc_override,
                  int64_t nc_override)
{
    GemmBlocking b;
    if (kc_override > 0) {
        b.kc = kc_override;
    } else {
        // i8 elements are 1 byte, so four times the f32 K depth fits the
        // same L1 budget.
        int64_t budget_elems = std::max<int64_t>(1, tile_budget_kb) * 1024;
        int64_t per_k = ops.gemm_i8_mr + ops.gemm_i8_nr;
        b.kc = std::max<int64_t>(16, budget_elems / (2 * per_k));
    }
    b.kc = std::min(b.kc, std::max<int64_t>(1, k));
    b.kc = ((b.kc + 1) / 2) * 2;  // Never split a k pair.
    if (nc_override > 0) {
        b.nc = nc_override;
    } else {
        b.nc = static_cast<int64_t>(ops.gemm_i8_nr) * 8;
    }
    int64_t nr = ops.gemm_i8_nr;
    b.nc = std::max<int64_t>(nr, (b.nc / nr) * nr);
    b.nc = std::min(b.nc, std::max<int64_t>(1, n));
    return b;
}

int64_t
packedLhsElemsI8(int64_t m, int64_t k, int mr)
{
    return ((m + mr - 1) / mr) * kPairs(k) * 2 * mr;
}

int64_t
packedRhsElemsI8(int64_t k, int64_t n, int nr)
{
    return ((n + nr - 1) / nr) * kPairs(k) * 2 * nr;
}

void
packLhsTilesI8(const int8_t* a, int64_t m, int64_t k, int64_t lda, int mr,
               int16_t* dst)
{
    int64_t tiles = (m + mr - 1) / mr;
    int64_t kp = kPairs(k);
    for (int64_t i = 0; i < tiles; ++i) {
        int live = static_cast<int>(std::min<int64_t>(mr, m - i * mr));
        int16_t* panel = dst + i * kp * 2 * mr;
        for (int64_t kk = 0; kk < kp; ++kk) {
            int16_t* out = panel + kk * mr * 2;
            const int8_t* src = a + i * mr * lda + kk * 2;
            bool has_k1 = kk * 2 + 1 < k;
            int r = 0;
            for (; r < live; ++r) {
                out[r * 2] = src[r * lda];
                out[r * 2 + 1] = has_k1 ? src[r * lda + 1] : 0;
            }
            for (; r < mr; ++r) {
                out[r * 2] = 0;
                out[r * 2 + 1] = 0;
            }
        }
    }
}

void
packRhsTilesI8(const int8_t* b, int64_t k, int64_t n, int64_t ldb, int nr,
               int8_t* dst)
{
    int64_t tiles = (n + nr - 1) / nr;
    int64_t kp = kPairs(k);
    for (int64_t j = 0; j < tiles; ++j) {
        int live = static_cast<int>(std::min<int64_t>(nr, n - j * nr));
        int8_t* panel = dst + j * kp * 2 * nr;
        const int8_t* src_col = b + j * nr;
        for (int64_t kk = 0; kk < kp; ++kk) {
            int8_t* out = panel + kk * nr * 2;
            const int8_t* src0 = src_col + kk * 2 * ldb;
            bool has_k1 = kk * 2 + 1 < k;
            int x = 0;
            for (; x < live; ++x) {
                out[x * 2] = src0[x];
                out[x * 2 + 1] = has_k1 ? src0[ldb + x] : 0;
            }
            for (; x < nr; ++x) {
                out[x * 2] = 0;
                out[x * 2 + 1] = 0;
            }
        }
    }
}

void
packedGemmRowTilesI8(const SimdOps& ops, const int16_t* packed_lhs,
                     const int8_t* packed_rhs, int64_t m, int64_t k, int64_t n,
                     int32_t* c, int64_t ldc, int64_t tile_begin,
                     int64_t tile_end, const GemmBlocking& blocking)
{
    PATDNN_CHECK(ops.gemm_tile_i8 != nullptr,
                 "SimdOps table lacks gemm_tile_i8");
    const int mr = ops.gemm_i8_mr;
    const int nr = ops.gemm_i8_nr;
    const int64_t kp = kPairs(k);
    // kc in whole pairs so a K block never splits one (the pair is the
    // panel's indexing unit).
    const int64_t kc = ((std::max<int64_t>(1, blocking.kc) + 1) / 2) * 2;
    const int64_t nc = std::max<int64_t>(nr, blocking.nc);
    for (int64_t i = tile_begin; i < tile_end; ++i) {
        const int live_m = static_cast<int>(std::min<int64_t>(mr, m - i * mr));
        const int16_t* lhs_tile = packed_lhs + i * kp * 2 * mr;
        int32_t* c_rows = c + i * mr * ldc;
        for (int64_t n0 = 0; n0 < n; n0 += nc) {
            const int64_t n1 = std::min(n, n0 + nc);
            for (int64_t k0 = 0; k0 < k; k0 += kc) {
                const int64_t kcur = std::min(kc, k - k0);
                const int16_t* a_panel = lhs_tile + (k0 / 2) * mr * 2;
                for (int64_t jn = n0; jn < n1; jn += nr) {
                    const int64_t j = jn / nr;
                    const int live_n =
                        static_cast<int>(std::min<int64_t>(nr, n - jn));
                    const int8_t* b_panel =
                        packed_rhs + (j * kp + k0 / 2) * nr * 2;
                    ops.gemm_tile_i8(a_panel, b_panel, c_rows + jn, ldc, kcur,
                                     live_m, live_n);
                }
            }
        }
    }
}

}  // namespace patdnn
