#include "rt/framework.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "prune/projections.h"
#include "util/logging.h"
#include "util/stats.h"

namespace patdnn {

std::string
frameworkName(FrameworkKind kind)
{
    switch (kind) {
      case FrameworkKind::kTfliteLike: return "TFLite-like";
      case FrameworkKind::kTvmLike: return "TVM-like";
      case FrameworkKind::kMnnLike: return "MNN-like";
      case FrameworkKind::kPatDnnDense: return "PatDNN-dense";
      case FrameworkKind::kCsrSparse: return "CSR-sparse";
      case FrameworkKind::kPatDnn: return "PatDNN";
    }
    return "unknown";
}

const char*
precisionName(Precision p)
{
    switch (p) {
      case Precision::kF32: return "f32";
      case Precision::kInt8: return "i8";
    }
    return "unknown";
}

namespace {

bool
isSparseKind(FrameworkKind kind)
{
    return kind == FrameworkKind::kCsrSparse || kind == FrameworkKind::kPatDnn;
}

/** Conv layers the kInt8 knob applies to: ungrouped dense-GEMM layers
 * of the packed-backend kinds. Pattern/CSR storage and grouped convs
 * (naive engine) stay f32 — the precision knob targets the dense GEMM
 * backend, not the sparse formats. */
bool
denseQuantEligible(FrameworkKind kind, bool has_fkw, const ConvDesc& conv)
{
    if (has_fkw || conv.groups != 1)
        return false;
    return kind == FrameworkKind::kTvmLike || kind == FrameworkKind::kMnnLike ||
           kind == FrameworkKind::kPatDnnDense;
}

/** Joint-prune a conv weight copy per the compile options. */
PatternAssignment
pruneWeightsForCompile(Tensor& weight, const PatternSet& set,
                       const CompileOptions& opts, bool first_layer)
{
    int64_t kernels = weight.shape().dim(0) * weight.shape().dim(1);
    double rate = first_layer ? opts.first_layer_rate : opts.connectivity_rate;
    int64_t alpha = std::max<int64_t>(
        1, static_cast<int64_t>(std::ceil(static_cast<double>(kernels) / rate)));
    return projectJoint(weight, set, alpha);
}

}  // namespace

// ---------------------------------------------------------------------------
// CompiledConvLayer
// ---------------------------------------------------------------------------

CompiledConvLayer::CompiledConvLayer(const ConvDesc& desc, FrameworkKind kind,
                                     DeviceSpec device, CompileOptions opts)
    : desc_(desc), kind_(kind), device_(std::move(device)), opts_(std::move(opts))
{
    desc_.check();
    Rng rng(opts_.seed + static_cast<uint64_t>(desc_.cout * 131 + desc_.cin));
    weight_ = Tensor(Shape{desc_.cout, desc_.cinPerGroup(), desc_.kh, desc_.kw});
    weight_.fillHe(rng, desc_.cinPerGroup() * desc_.kh * desc_.kw);
    input_ = Tensor(Shape{1, desc_.cin, desc_.h, desc_.w});
    input_.fillUniform(rng, -1.0f, 1.0f);

    if (isSparseKind(kind_)) {
        PatternSet set = canonicalPatternSet(opts_.pattern_count);
        // Refine with the layer's own natural-pattern statistics when
        // the kernels are 3x3, matching the training-stage pattern-set
        // design.
        if (desc_.kh == 3 && desc_.kw == 3) {
            std::vector<const Tensor*> ws = {&weight_};
            set = designPatternSet(ws, opts_.pattern_count);
        }
        PatternAssignment asg =
            pruneWeightsForCompile(weight_, set, opts_, /*first_layer=*/false);
        if (kind_ == FrameworkKind::kPatDnn) {
            FkrOptions fkr_opts;
            fkr_opts.reorder_filters = opts_.opts.reorder;
            fkr_opts.similarity_within_group = opts_.opts.reorder;
            fkr_opts.reorder_kernels = opts_.opts.reorder;
            FkrResult fkr = filterKernelReorder(asg, fkr_opts);
            fkw_ = std::make_unique<FkwLayer>(buildFkw(weight_, set, asg, fkr));
            LayerwiseRep lr;
            lr.device = device_.gpu_like ? "GPU" : "CPU";
            lr.conv = desc_;
            lr.opts = opts_.opts;
            lr.tuning = opts_.default_tuning;
            for (int p = 0; p < set.size(); ++p)
                lr.pattern_types.push_back(p);
            pattern_ = std::make_unique<PatternConv>(desc_, fkw_.get(), lr, device_);
        } else {
            csr_ = std::make_unique<CsrConv>(desc_, buildCsr(weight_), device_);
        }
        return;
    }

    switch (kind_) {
      case FrameworkKind::kTfliteLike:
        naive_ = std::make_unique<NaiveConv>(desc_, &weight_, device_);
        break;
      case FrameworkKind::kTvmLike:
        // TVM-like: scheduled im2col+GEMM (no hand-written Winograd).
        im2col_ = std::make_unique<Im2colConv>(desc_, &weight_, device_,
                                               opts_.default_tuning);
        break;
      case FrameworkKind::kMnnLike:
      case FrameworkKind::kPatDnnDense:
        winograd_ = std::make_unique<WinogradConv>(desc_, &weight_, device_,
                                                   opts_.default_tuning);
        if (!winograd_->usesWinograd()) {
            // Drop the non-applicable engine (it carries a packed
            // fallback of its own) instead of packing weights twice.
            winograd_.reset();
            im2col_ = std::make_unique<Im2colConv>(desc_, &weight_, device_,
                                                   opts_.default_tuning);
        }
        break;
      default:
        PATDNN_CHECK(false, "unsupported single-layer kind");
    }
}

void
CompiledConvLayer::run(const Tensor& in, Tensor& out) const
{
    if (pattern_) {
        pattern_->run(in, out);
    } else if (csr_) {
        csr_->run(in, out);
    } else if (naive_) {
        naive_->run(in, out);
    } else if (winograd_ && winograd_->usesWinograd()) {
        winograd_->run(in, out);
    } else {
        PATDNN_CHECK(im2col_ != nullptr, "no executor");
        im2col_->run(in, out);
    }
}

double
CompiledConvLayer::timeMs(int warmup, int reps) const
{
    Tensor out = makeConvOutput(desc_, 1);
    return medianTimeMs([&] { run(input_, out); }, warmup, reps);
}

int64_t
CompiledConvLayer::effectiveMacs() const
{
    int64_t nnz = weight_.countNonZero();
    return nnz * desc_.outH() * desc_.outW();
}

double
CompiledConvLayer::gflops(double time_ms) const
{
    if (time_ms <= 0.0)
        return 0.0;
    double flops = 2.0 * static_cast<double>(effectiveMacs());
    return flops / (time_ms * 1e6);
}

double
CompiledConvLayer::timeWithParams(const TuneParams& params, int reps) const
{
    PATDNN_CHECK(pattern_ != nullptr, "timeWithParams needs the pattern engine");
    LayerwiseRep lr = pattern_->lr();
    lr.tuning = params;
    PatternConv engine(desc_, fkw_.get(), lr, device_);
    Tensor out = makeConvOutput(desc_, 1);
    return medianTimeMs([&] { engine.run(input_, out); }, 1, reps);
}

// ---------------------------------------------------------------------------
// Workspace
// ---------------------------------------------------------------------------

void
Workspace::bindPlan(const MemoryPlan* plan)
{
    plan_ = plan;
    batch_ = 0;
    arena_ = Tensor();
    for (Tensor& v : values_)
        v = Tensor();
}

void
Workspace::beginRun(int64_t batch)
{
    if (plan_ == nullptr)
        return;
    PATDNN_CHECK_GT(batch, 0, "planned run needs a positive batch");
    PATDNN_CHECK_EQ(values_.size(), plan_->slotCount(),
                    "memory plan does not cover this graph");
    if (batch == batch_)
        return;
    batch_ = batch;
    int64_t needed = plan_->arenaElemsPerSample() * batch;
    if (arena_.shape().rank() == 0 || arena_.numel() < needed) {
        arena_ = Tensor(Shape{needed});
        // Reference cached: the registry lookup (mutex + map) must not
        // recur on the run path; registered metrics never move.
        static Gauge& arena_hwm =
            MetricsRegistry::global().gauge("rt.arena_hwm_bytes");
        arena_hwm.setMax(static_cast<double>(needed) * sizeof(float));
    }
    // Every offset scales with the batch, so stale views must go.
    for (Tensor& v : values_)
        v = Tensor();
}

void
Workspace::poisonFreedAfter(size_t id)
{
    if (!poisonFreed())
        return;
    constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
    for (size_t j = 0; j < plan_->slotCount(); ++j) {
        const PlanSlot& s = plan_->slot(j);
        if (!s.planned || s.last_use != static_cast<int>(id))
            continue;
        float* p = arena_.data() + s.offset_elems * batch_;
        std::fill(p, p + s.size_elems * batch_, kNan);
    }
}

size_t
Workspace::activationBytes() const
{
    if (plan_ != nullptr)
        return arena_.shape().rank() == 0
                   ? 0
                   : static_cast<size_t>(arena_.numel()) * sizeof(float);
    size_t total = 0;
    for (const Tensor& v : values_)
        if (v.shape().rank() != 0)
            total += static_cast<size_t>(v.numel()) * sizeof(float);
    return total;
}

Tensor&
Workspace::raw(size_t id, const Shape& shape)
{
    if (plan_ != nullptr && plan_->slot(id).planned) {
        const PlanSlot& s = plan_->slot(id);
        PATDNN_CHECK_GT(batch_, 0, "beginRun() must precede slot access");
        PATDNN_CHECK_EQ(shape.numel(), s.size_elems * batch_,
                        "planned slot extent mismatch for node " << id);
        Tensor& t = values_[id];
        if (!t.isView() || t.shape() != shape)
            t = Tensor::view(arena_.data() + s.offset_elems * batch_, shape);
        return t;
    }
    Tensor& t = values_[id];
    if (t.shape() != shape) {
        // A never-used slot is rank-0 with NO storage but numel() == 1,
        // so it must be allocated, not reshaped (a reshape would hand
        // out a 1-element view over an empty buffer).
        if (t.shape().rank() != 0 && t.numel() == shape.numel())
            t.reshape(shape);
        else
            t = Tensor(shape);
    }
    return t;
}

Tensor&
Workspace::fresh(size_t id, const Shape& shape)
{
    Tensor& t = raw(id, shape);
    t.fill(0.0f);  // Conv executors accumulate into their output.
    return t;
}

// ---------------------------------------------------------------------------
// CompiledModel
// ---------------------------------------------------------------------------

/** Per-node executor: owns pruned weights and the chosen engine. */
struct CompiledModel::Executor
{
    OpKind kind = OpKind::kConv;
    ConvDesc conv;
    Tensor weight;  ///< Conv/fc weights (pruned copy for sparse kinds).
    Tensor bias;
    Epilogue ep;
    int64_t pool_k = 2, pool_stride = 2;
    int64_t in_features = 0, out_features = 0;
    std::vector<int> inputs;
    bool fused_relu = false;
    std::unique_ptr<FkwLayer> fkw;
    TuneParams tuning;   ///< Pattern-engine tuned parameters.
    OptSwitches opts;    ///< Pattern-engine switches.
    bool quantized = false;            ///< Run the int8 dense path.
    float act_scale = 0.0f;            ///< Calibrated input scale.
    std::vector<float> weight_scales;  ///< Restore-path override scales.
    std::unique_ptr<PatternConv> pattern;
    std::unique_ptr<NaiveConv> naive;
    std::unique_ptr<Im2colConv> im2col;
    std::unique_ptr<WinogradConv> winograd;
    std::unique_ptr<CsrConv> csr;

    // Attribution strings for RunProfile rows and trace spans,
    // precomputed at compile/restore time (labelExecutor) so the run
    // loop never formats on the hot path.
    std::string label;             ///< "conv1_1" or "maxpool#4".
    const char* kind_name = "?";   ///< Engine actually executing.
    const char* isa_name = "-";    ///< Kernel-table ISA ("-": no table).
    const char* prec_name = "f32"; ///< Numeric path ("i8" when quantized).
};

CompiledModel::~CompiledModel() = default;

void
CompiledModel::attachConvEngines(Executor& ex) const
{
    ex.ep.bias = ex.bias.numel() > 0 ? &ex.bias : nullptr;
    ex.ep.relu = ex.fused_relu;
    if (ex.fkw) {
        LayerwiseRep lr;
        lr.device = device_.gpu_like ? "GPU" : "CPU";
        lr.conv = ex.conv;
        lr.opts = ex.opts;
        lr.tuning = ex.tuning;
        for (size_t p = 0; p < ex.fkw->patterns.size(); ++p)
            lr.pattern_types.push_back(static_cast<int>(p));
        ex.pattern =
            std::make_unique<PatternConv>(ex.conv, ex.fkw.get(), lr, device_);
        return;
    }
    if (kind_ == FrameworkKind::kCsrSparse && ex.conv.groups == 1) {
        ex.csr = std::make_unique<CsrConv>(ex.conv, buildCsr(ex.weight), device_);
        return;
    }
    if (ex.quantized && denseQuantEligible(kind_, false, ex.conv)) {
        // Int8 dense path: always the quantized im2col engine —
        // Winograd's transform-domain arithmetic does not survive int8,
        // so Winograd-eligible layers run quantized im2col too.
        ex.im2col = std::make_unique<Im2colConv>(
            ex.conv, &ex.weight, device_, ex.tuning, ex.act_scale,
            ex.weight_scales);
        return;
    }
    switch (kind_) {
      case FrameworkKind::kTfliteLike:
        ex.naive = std::make_unique<NaiveConv>(ex.conv, &ex.weight, device_);
        break;
      case FrameworkKind::kTvmLike:
        if (ex.conv.groups == 1)
            ex.im2col = std::make_unique<Im2colConv>(ex.conv, &ex.weight,
                                                     device_, ex.tuning);
        else
            ex.naive = std::make_unique<NaiveConv>(ex.conv, &ex.weight, device_);
        break;
      default:
        if (ex.conv.groups == 1) {
            ex.winograd = std::make_unique<WinogradConv>(ex.conv, &ex.weight,
                                                         device_, ex.tuning);
            if (!ex.winograd->usesWinograd()) {
                // Drop the non-applicable engine (it carries a packed
                // fallback of its own) instead of packing weights twice.
                ex.winograd.reset();
                ex.im2col = std::make_unique<Im2colConv>(ex.conv, &ex.weight,
                                                         device_, ex.tuning);
            }
        } else {
            ex.naive = std::make_unique<NaiveConv>(ex.conv, &ex.weight, device_);
        }
        break;
    }
}

void
CompiledModel::labelExecutor(Executor& ex, size_t id) const
{
    if (ex.kind == OpKind::kConv && !ex.conv.name.empty())
        ex.label = ex.conv.name;
    else
        ex.label = opKindName(ex.kind) + "#" + std::to_string(id);
    switch (ex.kind) {
      case OpKind::kConv:
        if (ex.pattern) {
            ex.kind_name = "pattern";
        } else if (ex.csr) {
            ex.kind_name = "csr";
        } else if (ex.naive) {
            ex.kind_name = "naive";
        } else if (ex.winograd && ex.winograd->usesWinograd()) {
            ex.kind_name = "winograd";
        } else if (ex.im2col) {
            ex.kind_name = "im2col";
        }
        // The sparse engines and the packed-GEMM dense engines
        // (im2col, winograd stage-2) dispatch through the SIMD kernel
        // tables; only the tflite-like naive baseline stays
        // engine-internal scalar code.
        if (ex.pattern || ex.csr || ex.im2col || ex.winograd)
            ex.isa_name = isaName(resolveSimdOps(device_.simd_isa).isa);
        if (ex.im2col && ex.im2col->quantized())
            ex.prec_name = precisionName(Precision::kInt8);
        break;
      case OpKind::kBatchNorm:      ex.kind_name = "bn"; break;
      case OpKind::kReLU:           ex.kind_name = "relu"; break;
      case OpKind::kMaxPool:
      case OpKind::kAvgPool:        ex.kind_name = "pool"; break;
      case OpKind::kAdd:            ex.kind_name = "add"; break;
      case OpKind::kFlatten:        ex.kind_name = "flatten"; break;
      case OpKind::kFullyConnected: ex.kind_name = "fc"; break;
    }
}

CompiledModel::CompiledModel(const Model& model, FrameworkKind kind, DeviceSpec device,
                             CompileOptions opts)
    : kind_(kind), device_(std::move(device)),
      tuned_isa_(resolveSimdOps(device_.simd_isa).isa), compile_opts_(opts)
{
    Graph graph = buildGraph(model);
    // Graph-level optimization (Table 1): all frameworks fold BN and
    // fuse ReLU; TFLite-like runs a reduced pass set ("less advanced").
    if (opts.run_graph_passes) {
        foldBatchNorm(graph);
        if (kind_ != FrameworkKind::kTfliteLike)
            fuseConvRelu(graph);
        foldConstants(graph);
        eliminateDeadNodes(graph);
    }
    output_node_ = graph.outputNode();

    // Shared pattern set mined from all 3x3 conv weights (training-stage
    // output in the real pipeline).
    PatternSet set;
    if (isSparseKind(kind_)) {
        std::vector<const Tensor*> ws;
        for (const auto& n : graph.nodes())
            if (!n.dead && n.kind == OpKind::kConv)
                ws.push_back(&n.weight);
        set = canonicalPatternSet(opts.pattern_count);
        auto freqs = minePatternFrequencies(ws);
        if (!freqs.empty())
            set = selectTopK(freqs, opts.pattern_count);
    }

    executors_.resize(graph.nodes().size());
    bool first_conv = true;
    for (const auto& n : graph.nodes()) {
        if (n.dead)
            continue;
        auto ex = std::make_unique<Executor>();
        ex->kind = n.kind;
        ex->conv = n.conv;
        ex->inputs = n.inputs;
        ex->fused_relu = n.fused_relu;
        ex->pool_k = n.pool_k;
        ex->pool_stride = n.pool_stride;
        ex->in_features = n.in_features;
        ex->out_features = n.out_features;
        ex->bias = n.bias;
        if (n.kind == OpKind::kConv) {
            ex->weight = n.weight;
            ex->tuning = opts.default_tuning;
            if (opts.tune_lookup) {
                TuneParams cached;
                if (opts.tune_lookup(n.conv, &cached))
                    ex->tuning = cached;
            }
            ex->opts = opts.opts;
            bool can_sparse = isSparseKind(kind_) && n.conv.groups == 1;
            if (can_sparse) {
                PatternAssignment asg = pruneWeightsForCompile(
                    ex->weight, set, opts, first_conv);
                if (kind_ == FrameworkKind::kPatDnn) {
                    FkrOptions fkr_opts;
                    fkr_opts.reorder_filters = opts.opts.reorder;
                    fkr_opts.similarity_within_group = opts.opts.reorder;
                    fkr_opts.reorder_kernels = opts.opts.reorder;
                    FkrResult fkr = filterKernelReorder(asg, fkr_opts);
                    ex->fkw = std::make_unique<FkwLayer>(
                        buildFkw(ex->weight, set, asg, fkr));
                }
            }
            attachConvEngines(*ex);
            first_conv = false;
        } else if (n.kind == OpKind::kFullyConnected) {
            ex->weight = n.weight;
        } else if (n.kind == OpKind::kBatchNorm) {
            ex->weight = n.bn_scale;
            ex->bias = n.bn_shift;
        }
        labelExecutor(*ex, static_cast<size_t>(n.id));
        executors_[static_cast<size_t>(n.id)] = std::move(ex);
    }

    if (opts.precision == Precision::kInt8)
        quantizeDenseConvLayers();

    if (opts.enable_memory_plan) {
        std::vector<PlanNode> plan_nodes = planNodes();
        if (!plan_nodes.empty())
            plan_ = planActivations(plan_nodes, output_node_);
    }
    if (!plan_.empty()) {
        // Most-recent-compile planner quality, for dashboards/tests.
        MetricsRegistry& reg = MetricsRegistry::global();
        reg.gauge("memplan.arena_kb_per_sample")
            .set(static_cast<double>(plan_.arenaBytes(1)) / 1024.0);
        reg.gauge("memplan.reuse_x")
            .set(static_cast<double>(plan_.sumElemsPerSample()) /
                 static_cast<double>(plan_.arenaElemsPerSample()));
    }
}

void
CompiledModel::quantizeDenseConvLayers()
{
    const Executor* first_conv = nullptr;
    bool any_eligible = false;
    for (const auto& exp : executors_) {
        if (!exp || exp->kind != OpKind::kConv)
            continue;
        if (first_conv == nullptr)
            first_conv = exp.get();
        if (denseQuantEligible(kind_, exp->fkw != nullptr, exp->conv))
            any_eligible = true;
    }
    if (first_conv == nullptr || !any_eligible)
        return;

    // Synthetic calibration batch shaped for the input conv, run
    // through the f32 engines with a per-layer workspace — per-layer
    // slots keep every node's value after the run, so each conv's
    // *input* distribution can be observed without new runtime hooks.
    const CalibrationOptions& cal = compile_opts_.calibration;
    int64_t samples = std::max(1, cal.samples);
    Tensor calib(Shape{samples, first_conv->conv.cin, first_conv->conv.h,
                       first_conv->conv.w});
    Rng rng(cal.seed);
    calib.fillUniform(rng, -1.0f, 1.0f);
    Workspace ws;
    runLayers(calib, ws, nullptr, nullptr);

    for (size_t id = 0; id < executors_.size(); ++id) {
        auto& exp = executors_[id];
        if (!exp || exp->kind != OpKind::kConv)
            continue;
        Executor& ex = *exp;
        if (!denseQuantEligible(kind_, ex.fkw != nullptr, ex.conv))
            continue;
        ActivationCalibrator calibrator(cal.method, cal.percentile);
        int src = ex.inputs.empty() ? -1 : ex.inputs[0];
        calibrator.observe(src < 0 ? calib
                                   : ws.value(static_cast<size_t>(src)));
        ex.quantized = true;
        ex.act_scale = calibrator.scale();
        ex.weight_scales.clear();  // Derived from the weights on attach.
        ex.winograd.reset();
        ex.im2col.reset();
        attachConvEngines(ex);
        labelExecutor(ex, id);
    }
}

CompiledModel::CompiledModel(FrameworkKind kind, DeviceSpec device,
                             std::vector<CompiledLayerState> layers, int output_node,
                             SimdIsa tuned_isa, CompileOptions compile_opts)
    : kind_(kind), device_(std::move(device)), tuned_isa_(tuned_isa),
      compile_opts_(std::move(compile_opts)), output_node_(output_node)
{
    PATDNN_CHECK(output_node_ >= 0 &&
                     static_cast<size_t>(output_node_) < layers.size(),
                 "output node out of range");
    executors_.resize(layers.size());
    for (size_t id = 0; id < layers.size(); ++id) {
        CompiledLayerState& st = layers[id];
        if (!st.live)
            continue;
        auto ex = std::make_unique<Executor>();
        ex->kind = st.kind;
        ex->conv = st.conv;
        ex->inputs = std::move(st.inputs);
        ex->fused_relu = st.fused_relu;
        ex->pool_k = st.pool_k;
        ex->pool_stride = st.pool_stride;
        ex->in_features = st.in_features;
        ex->out_features = st.out_features;
        ex->weight = std::move(st.weight);
        ex->bias = std::move(st.bias);
        ex->fkw = std::move(st.fkw);
        ex->tuning = st.tuning;
        ex->opts = st.opts;
        ex->quantized = st.quantized;
        ex->act_scale = st.act_scale;
        ex->weight_scales = std::move(st.weight_scales);
        if (ex->kind == OpKind::kConv) {
            // Pattern layers ship without the dense view; rebuild it for
            // the nonzero/compression accounting. (A rank-0 Tensor is
            // the "absent" marker — note numel() is 1 for rank 0.)
            if (ex->fkw && ex->weight.shape().rank() == 0)
                ex->weight = fkwToDense(*ex->fkw);
            attachConvEngines(*ex);
        }
        labelExecutor(*ex, id);
        executors_[id] = std::move(ex);
    }
}

std::vector<PlanNode>
CompiledModel::planNodes() const
{
    std::vector<PlanNode> nodes(executors_.size());
    // Per-sample output shapes (leading batch dim fixed at 1), inferred
    // in execution order. Only a conv knows the model-input geometry
    // (its ConvDesc carries cin/h/w); any other op reading the model
    // input directly makes shapes — and hence planning — uninferable.
    std::vector<Shape> shapes(executors_.size());
    for (size_t id = 0; id < executors_.size(); ++id) {
        const auto& exp = executors_[id];
        if (!exp)
            continue;
        const Executor& ex = *exp;
        auto input_shape = [&](size_t i) -> const Shape* {
            int src = ex.inputs[i];
            return src < 0 ? nullptr : &shapes[static_cast<size_t>(src)];
        };
        Shape out;
        switch (ex.kind) {
          case OpKind::kConv:
            out = Shape{1, ex.conv.cout, ex.conv.outH(), ex.conv.outW()};
            break;
          case OpKind::kBatchNorm:
          case OpKind::kReLU:
          case OpKind::kAdd: {
            const Shape* s = input_shape(0);
            if (s == nullptr)
                return {};
            out = *s;
            break;
          }
          case OpKind::kMaxPool:
          case OpKind::kAvgPool: {
            const Shape* s = input_shape(0);
            if (s == nullptr)
                return {};
            int64_t oh = (s->dim(2) - ex.pool_k) / ex.pool_stride + 1;
            int64_t ow = (s->dim(3) - ex.pool_k) / ex.pool_stride + 1;
            out = Shape{1, s->dim(1), oh, ow};
            break;
          }
          case OpKind::kFlatten: {
            const Shape* s = input_shape(0);
            if (s == nullptr)
                return {};
            out = Shape{1, s->numel()};
            break;
          }
          case OpKind::kFullyConnected:
            out = Shape{1, ex.out_features};
            break;
        }
        shapes[id] = out;
        nodes[id].live = true;
        nodes[id].inputs = ex.inputs;
        nodes[id].elems_per_sample = out.numel();
    }
    return nodes;
}

Status
CompiledModel::adoptMemoryPlan(MemoryPlan plan)
{
    std::vector<PlanNode> nodes = planNodes();
    if (nodes.empty())
        return Status(ErrorCode::kInvalidArgument,
                      "memory plan: model shapes cannot be inferred");
    PATDNN_RETURN_IF_ERROR(plan.validateAgainst(nodes, output_node_));
    plan_ = std::move(plan);
    return Status::OK();
}

std::vector<CompiledLayerState>
CompiledModel::exportState() const
{
    std::vector<CompiledLayerState> out(executors_.size());
    for (size_t id = 0; id < executors_.size(); ++id) {
        const auto& exp = executors_[id];
        if (!exp)
            continue;
        const Executor& ex = *exp;
        CompiledLayerState& st = out[id];
        st.live = true;
        st.kind = ex.kind;
        st.conv = ex.conv;
        st.inputs = ex.inputs;
        st.fused_relu = ex.fused_relu;
        st.pool_k = ex.pool_k;
        st.pool_stride = ex.pool_stride;
        st.in_features = ex.in_features;
        st.out_features = ex.out_features;
        st.bias = ex.bias;
        st.tuning = ex.tuning;
        st.opts = ex.opts;
        if (ex.im2col && ex.im2col->quantized()) {
            // Persist the calibrated scales, not the quantized bytes:
            // the f32 weights below re-quantize deterministically on
            // restore, so the artifact stays loadable as f32 by older
            // readers.
            st.quantized = true;
            st.act_scale = ex.im2col->actScale();
            st.weight_scales = ex.im2col->weightScales();
        }
        if (ex.fkw)
            st.fkw = std::make_unique<FkwLayer>(*ex.fkw);  // FKW replaces dense.
        else
            st.weight = ex.weight;
    }
    return out;
}

Tensor
CompiledModel::runLayers(const Tensor& input, Workspace& ws, double* conv_ms,
                         RunProfile* profile) const
{
    static Counter& model_runs =
        MetricsRegistry::global().counter("rt.model_runs");
    model_runs.inc();
    const int64_t batch = input.shape().dim(0);
    TraceSpan run_span("model.run", "rt", "batch", batch);
    // Per-node timing is paid only when someone is looking: a profile
    // was requested or the tracer is live.
    const bool timing = profile != nullptr || Tracer::enabled();
    const int64_t run_start_ns = timing ? Tracer::nowNs() : 0;
    if (profile != nullptr)
        profile->prepare(executors_.size());
    ws.resize(executors_.size());
    ws.beginRun(batch);
    auto input_of = [&](const Executor& ex, int i) -> const Tensor& {
        int id = ex.inputs[static_cast<size_t>(i)];
        return id < 0 ? input : ws.value(static_cast<size_t>(id));
    };
    double conv_total = 0.0;
    for (size_t id = 0; id < executors_.size(); ++id) {
        const auto& exp = executors_[id];
        if (!exp)
            continue;
        const Executor& ex = *exp;
        const Tensor& x = input_of(ex, 0);
        const int64_t node_start_ns = timing ? Tracer::nowNs() : 0;
        switch (ex.kind) {
          case OpKind::kConv: {
            Tensor& y = ws.fresh(
                id, Shape{x.shape().dim(0), ex.conv.cout, ex.conv.outH(),
                          ex.conv.outW()});
            Timer t;
            if (ex.pattern)
                ex.pattern->run(x, y, ex.ep);
            else if (ex.csr)
                ex.csr->run(x, y, ex.ep);
            else if (ex.naive)
                ex.naive->run(x, y, ex.ep);
            else if (ex.winograd && ex.winograd->usesWinograd())
                ex.winograd->run(x, y, ex.ep);
            else
                ex.im2col->run(x, y, ex.ep);
            conv_total += t.elapsedMs();
            break;
          }
          case OpKind::kBatchNorm: {
            Tensor& y = ws.raw(id, x.shape());
            int64_t c = ex.weight.numel();
            int64_t n = x.shape().dim(0);
            int64_t hw = x.numel() / (n * c);
            for (int64_t b = 0; b < n; ++b)
                for (int64_t ch = 0; ch < c; ++ch) {
                    float s = ex.weight[ch];
                    float sh = ex.bias[ch];
                    const float* p = x.data() + (b * c + ch) * hw;
                    float* q = y.data() + (b * c + ch) * hw;
                    for (int64_t i = 0; i < hw; ++i)
                        q[i] = p[i] * s + sh;
                }
            break;
          }
          case OpKind::kReLU: {
            Tensor& y = ws.raw(id, x.shape());
            for (int64_t i = 0; i < y.numel(); ++i)
                y[i] = std::max(0.0f, x[i]);
            break;
          }
          case OpKind::kMaxPool:
          case OpKind::kAvgPool: {
            int64_t n = x.shape().dim(0), c = x.shape().dim(1);
            int64_t h = x.shape().dim(2), w = x.shape().dim(3);
            int64_t k = ex.pool_k, s = ex.pool_stride;
            int64_t oh = (h - k) / s + 1, ow = (w - k) / s + 1;
            Tensor& y = ws.raw(id, Shape{n, c, oh, ow});
            bool is_max = ex.kind == OpKind::kMaxPool;
            for (int64_t bc = 0; bc < n * c; ++bc) {
                const float* ip = x.data() + bc * h * w;
                float* op = y.data() + bc * oh * ow;
                for (int64_t yy = 0; yy < oh; ++yy)
                    for (int64_t xx = 0; xx < ow; ++xx) {
                        float acc = is_max ? -1e30f : 0.0f;
                        for (int64_t r = 0; r < k; ++r)
                            for (int64_t cc = 0; cc < k; ++cc) {
                                float v = ip[(yy * s + r) * w + xx * s + cc];
                                acc = is_max ? std::max(acc, v) : acc + v;
                            }
                        op[yy * ow + xx] =
                            is_max ? acc : acc / static_cast<float>(k * k);
                    }
            }
            break;
          }
          case OpKind::kAdd: {
            const Tensor& r = input_of(ex, 1);
            PATDNN_CHECK(r.shape() == x.shape(),
                         "residual add operand shapes must match");
            Tensor& y = ws.raw(id, x.shape());
            for (int64_t i = 0; i < y.numel(); ++i)
                y[i] = x[i] + r[i];
            if (ex.fused_relu)
                for (int64_t i = 0; i < y.numel(); ++i)
                    y[i] = std::max(0.0f, y[i]);
            break;
          }
          case OpKind::kFlatten: {
            Tensor& y = ws.raw(
                id, Shape{x.shape().dim(0), x.numel() / x.shape().dim(0)});
            std::copy(x.data(), x.data() + x.numel(), y.data());
            break;
          }
          case OpKind::kFullyConnected: {
            // Row-major NCHW is already flat per batch row; read the
            // input in place instead of materializing a reshaped copy.
            int64_t n = x.shape().dim(0);
            Tensor& y = ws.raw(id, Shape{n, ex.out_features});
            device_.pool().parallelFor(ex.out_features, [&](int64_t o) {
                const float* wr = ex.weight.data() + o * ex.in_features;
                for (int64_t b = 0; b < n; ++b) {
                    const float* xr = x.data() + b * ex.in_features;
                    float acc = ex.bias.numel() > 0 ? ex.bias[o] : 0.0f;
                    for (int64_t i = 0; i < ex.in_features; ++i)
                        acc += wr[i] * xr[i];
                    if (ex.fused_relu && acc < 0.0f)
                        acc = 0.0f;
                    y[b * ex.out_features + o] = acc;
                }
            });
            break;
          }
        }
        if (timing) {
            const int64_t dur_ns = Tracer::nowNs() - node_start_ns;
            if (Tracer::enabled())
                Tracer::emitSpan(ex.label.c_str(), "layer", node_start_ns,
                                 dur_ns);
            if (profile != nullptr) {
                RunProfileEntry& e = profile->entries[id];
                if (e.name.empty()) {
                    e.name = ex.label;
                    e.kind = ex.kind_name;
                    e.isa = ex.isa_name;
                    e.prec = ex.prec_name;
                }
                int64_t elems = x.numel() + ws.value(id).numel();
                if (ex.weight.shape().rank() != 0)
                    elems += ex.weight.numel();
                if (ex.kind == OpKind::kAdd)
                    elems += input_of(ex, 1).numel();
                e.bytes += elems * static_cast<int64_t>(sizeof(float));
                e.calls += 1;
                e.total_ns += dur_ns;
                e.max_ns = std::max(e.max_ns, dur_ns);
            }
        }
        if (ws.poisonFreed())
            ws.poisonFreedAfter(id);
    }
    if (profile != nullptr) {
        profile->runs += 1;
        profile->wall_ns += Tracer::nowNs() - run_start_ns;
    }
    if (conv_ms != nullptr)
        *conv_ms = conv_total;
    // Deep-copy out of the workspace: the slot is reused by the next run.
    return ws.value(static_cast<size_t>(output_node_));
}

Tensor
CompiledModel::run(const Tensor& input) const
{
    Workspace ws;
    return runLayers(input, ws, nullptr, nullptr);
}

Tensor
CompiledModel::run(const Tensor& input, Workspace& ws) const
{
    return runLayers(input, ws, nullptr, nullptr);
}

Tensor
CompiledModel::run(const Tensor& input, Workspace& ws, RunProfile* profile) const
{
    return runLayers(input, ws, nullptr, profile);
}

double
CompiledModel::timeMs(const Tensor& input, int warmup, int reps) const
{
    Workspace ws;
    return medianTimeMs([&] { runLayers(input, ws, nullptr, nullptr); }, warmup,
                        reps);
}

double
CompiledModel::convOnlyTimeMs(const Tensor& input, int warmup, int reps) const
{
    Workspace ws;
    for (int i = 0; i < warmup; ++i)
        runLayers(input, ws, nullptr, nullptr);
    std::vector<double> times;
    for (int i = 0; i < reps; ++i) {
        double conv_ms = 0.0;
        runLayers(input, ws, &conv_ms, nullptr);
        times.push_back(conv_ms);
    }
    return summarize(times).median;
}

int64_t
CompiledModel::convNonZeros() const
{
    int64_t nnz = 0;
    for (const auto& ex : executors_)
        if (ex && ex->kind == OpKind::kConv)
            nnz += ex->weight.countNonZero();
    return nnz;
}

int64_t
CompiledModel::convDense() const
{
    int64_t n = 0;
    for (const auto& ex : executors_)
        if (ex && ex->kind == OpKind::kConv)
            n += ex->weight.numel();
    return n;
}

}  // namespace patdnn
