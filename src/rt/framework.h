/**
 * @file
 * End-to-end model execution facades.
 *
 * The paper compares PatDNN against TFLite, TVM and MNN. Those binaries
 * are closed/mobile-only, so this repo re-implements baseline engines
 * with each framework's documented optimization inventory (Table 1):
 *
 *  - kTfliteLike: dense direct conv, threaded, no auto-tuning;
 *  - kTvmLike:    dense im2col + blocked GEMM + Winograd for 3x3
 *                 (tensor-optimized, auto-tuned dense);
 *  - kMnnLike:    dense Winograd + hand-tuned tiling;
 *  - kPatDnnDense: our optimized dense baseline (Fig. 17a);
 *  - kCsrSparse:  pruned weights in CSR, conventional sparse execution;
 *  - kPatDnn:     the full pattern engine (FKR + FKW + LRE + tuning).
 *
 * Relative orderings between these engines — not absolute ms — are the
 * reproduction target (see docs/ARCHITECTURE.md, "Substitutions").
 */
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "graph/builder.h"
#include "graph/passes.h"
#include "nn/model.h"
#include "nn/zoo.h"
#include "obs/profile.h"
#include "prune/quant.h"
#include "rt/conv_csr.h"
#include "rt/conv_im2col.h"
#include "rt/conv_naive.h"
#include "rt/conv_pattern.h"
#include "rt/conv_winograd.h"
#include "rt/device.h"
#include "rt/memplan.h"
#include "util/status.h"

namespace patdnn {

/** Engine selection for a whole-model run. */
enum class FrameworkKind
{
    kTfliteLike,
    kTvmLike,
    kMnnLike,
    kPatDnnDense,
    kCsrSparse,
    kPatDnn,
};

/** Display name used in bench output. */
std::string frameworkName(FrameworkKind kind);

/** Numeric precision of the dense conv executors. */
enum class Precision : uint32_t
{
    kF32 = 0,   ///< f32 packed GEMM (the default).
    kInt8 = 1,  ///< i8×i8→i32 packed GEMM with f32 requant epilogue.
};

/** Display name ("f32" / "i8"), as shown in RunProfile tables. */
const char* precisionName(Precision p);

/** Activation-scale calibration knobs for Precision::kInt8 compiles.
 * Compilation first builds the f32 engines, runs a synthetic
 * calibration batch through them observing every dense conv layer's
 * *input*, then rebuilds those executors in quantized mode with the
 * calibrated scales (recorded per layer; see prune/quant.h). */
struct CalibrationOptions
{
    CalibrationMethod method = CalibrationMethod::kAbsMax;
    double percentile = 99.9;  ///< Used by kPercentile only.
    int samples = 2;           ///< Calibration batch size.
    uint64_t seed = 1234;      ///< Synthetic calibration input seed.
};

/** Options controlling sparse compilation for the sparse engines. */
struct CompileOptions
{
    int pattern_count = 8;
    double connectivity_rate = 3.6;
    double first_layer_rate = 1.5;
    OptSwitches opts;       ///< FKR / LRE / tuning switches.
    TuneParams default_tuning;
    bool run_graph_passes = true;
    uint64_t seed = 5;
    /**
     * Run the offline activation-lifetime pass (rt/memplan.h) after
     * compilation and attach the resulting single-arena MemoryPlan to
     * the CompiledModel. Planning is geometry-only and cheap; the plan
     * is recorded in v4 artifacts and lets sessions replace their
     * per-layer Workspace with one arena of plan.arenaBytes(batch)
     * (SessionMemory::kAuto picks this up automatically). Disable only
     * to reproduce pre-plan behaviour byte-for-byte.
     */
    bool enable_memory_plan = true;
    /**
     * Optional per-layer tuned-parameter source consulted for each
     * conv layer at compile time (the Compiler facade wires the
     * process TuneCache here, so whole-model compiles pick up layer
     * tunings the GA already paid for). Returns true and fills *params
     * on a hit; a miss falls back to default_tuning. Not recorded in
     * artifacts.
     */
    std::function<bool(const ConvDesc&, TuneParams*)> tune_lookup;
    /**
     * Dense-executor precision knob. kInt8 quantizes every groups==1
     * conv of the dense GEMM kinds (im2col and Winograd-eligible layers
     * both run the quantized im2col path — Winograd's transform-domain
     * arithmetic does not survive int8): weights per-output-channel
     * symmetric, activations per-layer via `calibration`. The sparse
     * engines (pattern / CSR) and grouped convs stay f32; layer
     * interchange stays f32 throughout. Recorded in v6 artifacts.
     */
    Precision precision = Precision::kF32;
    CalibrationOptions calibration;
};

/**
 * Serializable snapshot of one compiled graph node: everything needed
 * to rebuild its executor on a (possibly different) device without
 * re-running pruning, reordering or tuning. Produced by
 * CompiledModel::exportState() and consumed by the state-restoring
 * constructor and the serve/ model-artifact (de)serializer.
 *
 * For kPatDnn conv layers only the FKW storage plus tuned parameters
 * are carried (the dense weight view is reconstructed on restore); all
 * other layers carry their dense tensors.
 */
struct CompiledLayerState
{
    bool live = false;             ///< False for dead/eliminated node slots.
    OpKind kind = OpKind::kConv;
    ConvDesc conv;                 ///< For kConv.
    std::vector<int> inputs;       ///< Producer node ids (-1 = model input).
    bool fused_relu = false;
    int64_t pool_k = 2, pool_stride = 2;
    int64_t in_features = 0, out_features = 0;
    Tensor weight;                 ///< Dense weights (empty for pattern convs).
    Tensor bias;
    std::unique_ptr<FkwLayer> fkw; ///< Pattern-engine storage (kPatDnn convs).
    TuneParams tuning;             ///< Pattern-engine tuned parameters.
    OptSwitches opts;              ///< Pattern-engine switches.
    /// Int8 quantization record (conv layers compiled at kInt8). The
    /// weights stay f32 in `weight`; scales are stored so restore
    /// re-quantizes deterministically to the same i8 values.
    bool quantized = false;
    float act_scale = 0.0f;           ///< Calibrated input scale.
    std::vector<float> weight_scales; ///< Per-output-channel scales.
};

/**
 * Per-session activation scratch: one value slot per graph node, reused
 * across runs. Each InferenceSession owns its own Workspace so that
 * concurrent sessions sharing one immutable CompiledModel never share
 * intermediate buffers.
 *
 * Two backing modes:
 *  - per-layer (default): every slot owns its own allocation, sized on
 *    first touch and kept across runs;
 *  - planned (bindPlan()): slots are views into ONE 64-byte-aligned
 *    arena laid out by an offline MemoryPlan, so the whole session
 *    costs plan.arenaBytes(batch) — peak-live, not sum-of-layers.
 */
class Workspace
{
  public:
    void resize(size_t nodes) { values_.resize(nodes); }
    size_t size() const { return values_.size(); }

    /**
     * Back this workspace with an activation plan; nullptr restores
     * per-layer mode. The plan must outlive the workspace (sessions
     * point at their shared model's plan). Switching modes drops all
     * cached slots.
     */
    void bindPlan(const MemoryPlan* plan);

    /** True when slots alias a planned arena. */
    bool planned() const { return plan_ != nullptr; }

    /** Called by CompiledModel at the start of every run: sizes the
     * arena for this batch and rebuilds slot views when the batch (and
     * with it every scaled offset) changed. No-op in per-layer mode. */
    void beginRun(int64_t batch);

    /**
     * Debug canary for plan correctness (used by the memplan execution
     * tests, including under ASan/UBSan — intra-arena stale reads are
     * invisible to ASan): when enabled, every arena range whose
     * lifetime ends at node `id` is NaN-poisoned right after node `id`
     * executes, so an executor that reads a freed range corrupts its
     * output instead of silently consuming stale bytes. Planned mode
     * only.
     */
    void setPoisonFreed(bool on) { poison_freed_ = on; }
    bool poisonFreed() const { return poison_freed_ && plan_ != nullptr; }
    void poisonFreedAfter(size_t id);

    /** Bytes currently backing activations: the arena allocation in
     * planned mode, the sum of slot allocations in per-layer mode
     * (0 before the first run in either mode). */
    size_t activationBytes() const;

    /** Slot for node id shaped to `shape` and zero-filled (executors
     * accumulate into their outputs). Reallocates only on shape change. */
    Tensor& fresh(size_t id, const Shape& shape);

    /** Slot for node id shaped to `shape`, contents unspecified; for
     * ops that overwrite every element. */
    Tensor& raw(size_t id, const Shape& shape);

    /** Read access to a produced value. */
    const Tensor& value(size_t id) const { return values_[id]; }

  private:
    std::vector<Tensor> values_;
    const MemoryPlan* plan_ = nullptr;  ///< Null: per-layer mode.
    Tensor arena_;                      ///< Planned mode backing store.
    int64_t batch_ = 0;                 ///< Batch the views were built for.
    bool poison_freed_ = false;
};

/**
 * A compiled, runnable model: per-conv-layer executors plus the simple
 * non-conv ops (pool/add/fc) executed directly. Holds all storage.
 *
 * Immutable once constructed: run() is const and safe to call from
 * many threads at once (each call only touches its Workspace and the
 * device thread pool, which serializes concurrent submitters), which is
 * what the serving layer's shared-weight sessions rely on.
 */
class CompiledModel
{
  public:
    /** Compile `model` for `kind` on `device`. Prunes a copy of the
     * weights for sparse engines (pattern projection + connectivity). */
    CompiledModel(const Model& model, FrameworkKind kind, DeviceSpec device,
                  CompileOptions opts = {});

    /**
     * Rebuild a model from previously exported per-layer state (the
     * serve/ artifact load path). No pruning, reordering or tuning
     * runs; engines are instantiated directly from the stored FKW /
     * dense weights for `device`. `tuned_isa` is the kernel ISA the
     * stored TuneParams were searched on (artifact header); execution
     * always uses the ISA of `device`, so a mismatch only means the
     * parameters may be off-width for this host. `compile_opts` is the
     * option record from the artifact header (v3+; defaults for older
     * artifacts).
     */
    CompiledModel(FrameworkKind kind, DeviceSpec device,
                  std::vector<CompiledLayerState> layers, int output_node,
                  SimdIsa tuned_isa = SimdIsa::kScalar,
                  CompileOptions compile_opts = {});
    ~CompiledModel();

    /** Run one NCHW input through every layer; returns final output. */
    Tensor run(const Tensor& input) const;

    /** Run using caller-owned activation scratch (serving sessions). */
    Tensor run(const Tensor& input, Workspace& ws) const;

    /**
     * Run with per-layer attribution: when `profile` is non-null, every
     * executed node is timed and accumulated into it (prepare() is
     * called to size it; pass the same profile across runs to
     * accumulate, reset() it for per-run numbers). Timing uses the
     * steady clock directly, independent of tracing; when the Tracer is
     * enabled a span per layer (cat "layer") plus a whole-run
     * "model.run" span (cat "rt") are emitted too.
     */
    Tensor run(const Tensor& input, Workspace& ws, RunProfile* profile) const;

    /** Median wall-clock of `run` over reps (after warmup). */
    double timeMs(const Tensor& input, int warmup = 1, int reps = 3) const;

    /** Sum of conv-layer times only (the paper's reported metric). */
    double convOnlyTimeMs(const Tensor& input, int warmup = 1, int reps = 3) const;

    /** Total non-zero conv weights after compilation. */
    int64_t convNonZeros() const;

    /** Dense conv weight count. */
    int64_t convDense() const;

    /**
     * Snapshot every node's compiled state (deep copy). Slot order is
     * node-id order; dead slots have live == false.
     */
    std::vector<CompiledLayerState> exportState() const;

    /** Node-id of the output value. */
    int outputNode() const { return output_node_; }

    /** Number of node slots (live + dead). */
    size_t nodeCount() const { return executors_.size(); }

    FrameworkKind kind() const { return kind_; }
    const DeviceSpec& device() const { return device_; }

    /** Kernel ISA the model's TuneParams were searched on (compile
     * time: the compile device's resolved ISA; restored models: the
     * value recorded in the artifact header). */
    SimdIsa tunedIsa() const { return tuned_isa_; }

    /** Options this model was compiled with (restored models: the
     * record from the artifact header, defaults for pre-v3 artifacts).
     * Recorded so a serving host can diagnose what produced an
     * artifact without re-deriving it from the weights. */
    const CompileOptions& compileOptions() const { return compile_opts_; }

    /**
     * The activation MemoryPlan computed at compile time (or restored
     * from a v4 artifact). Empty when planning was disabled, the graph
     * shapes could not be inferred, or the model came from a pre-v4
     * artifact — sessions then fall back to per-layer workspaces.
     */
    bool hasMemoryPlan() const { return !plan_.empty(); }
    const MemoryPlan& memoryPlan() const { return plan_; }

    /**
     * Planner view of the compiled graph: per-node liveness, producer
     * edges and per-sample output extents, derived by static shape
     * inference over the executor list. Empty when shapes cannot be
     * inferred (a non-conv node reads the model input directly).
     */
    std::vector<PlanNode> planNodes() const;

    /**
     * Validate `plan` against this model's graph and adopt it
     * (artifact-restore path: the plan record is parsed after the
     * layers, so it is attached after construction but before the
     * model is shared). kInvalidArgument with a diagnostic when the
     * plan does not fit this graph; the model is left plan-less.
     */
    Status adoptMemoryPlan(MemoryPlan plan);

  private:
    struct Executor;
    Tensor runLayers(const Tensor& input, Workspace& ws, double* conv_ms,
                     RunProfile* profile) const;
    /** Instantiate engine objects for a conv executor whose state
     * fields (weight / fkw / tuning) are already populated. */
    void attachConvEngines(Executor& ex) const;
    /** The kInt8 compile pass: run a synthetic calibration batch
     * through the freshly built f32 engines, then rebuild every
     * eligible dense conv executor in quantized mode. */
    void quantizeDenseConvLayers();
    /** Fill the executor's display label / engine-kind / ISA strings
     * (profile + trace attribution), after engines are attached. */
    void labelExecutor(Executor& ex, size_t id) const;

    FrameworkKind kind_;
    DeviceSpec device_;
    SimdIsa tuned_isa_ = SimdIsa::kScalar;
    CompileOptions compile_opts_;
    int output_node_ = -1;
    std::vector<std::unique_ptr<Executor>> executors_;  ///< Per node id.
    MemoryPlan plan_;  ///< Activation arena plan; may be empty.
};

/**
 * Convenience: build a single-layer compiled conv for a ConvDesc (used
 * by the per-layer benches). Weights are generated, pruned and packed
 * internally with the given options.
 */
class CompiledConvLayer
{
  public:
    CompiledConvLayer(const ConvDesc& desc, FrameworkKind kind, DeviceSpec device,
                      CompileOptions opts = {});

    void run(const Tensor& in, Tensor& out) const;

    /** Median time over reps after warmup. */
    double timeMs(int warmup = 1, int reps = 3) const;

    /** Achieved GFLOPS counting actually-executed MACs. */
    double gflops(double time_ms) const;

    /** Effective (non-zero) MACs per run. */
    int64_t effectiveMacs() const;

    const FkwLayer* fkw() const { return fkw_.get(); }
    const ConvDesc& desc() const { return desc_; }

    /** Re-run with different tuning (used by the tuner's measure fn). */
    double timeWithParams(const TuneParams& params, int reps = 2) const;

  private:
    ConvDesc desc_;
    FrameworkKind kind_;
    DeviceSpec device_;
    CompileOptions opts_;
    Tensor weight_;  ///< Dense (possibly pruned) weights.
    std::unique_ptr<FkwLayer> fkw_;
    std::unique_ptr<PatternConv> pattern_;
    std::unique_ptr<NaiveConv> naive_;
    std::unique_ptr<Im2colConv> im2col_;
    std::unique_ptr<WinogradConv> winograd_;
    std::unique_ptr<CsrConv> csr_;
    Tensor input_;
};

}  // namespace patdnn
