/**
 * @file
 * End-to-end model execution facades.
 *
 * The paper compares PatDNN against TFLite, TVM and MNN. Those binaries
 * are closed/mobile-only, so this repo re-implements baseline engines
 * with each framework's documented optimization inventory (Table 1):
 *
 *  - kTfliteLike: dense direct conv, threaded, no auto-tuning;
 *  - kTvmLike:    dense im2col + blocked GEMM + Winograd for 3x3
 *                 (tensor-optimized, auto-tuned dense);
 *  - kMnnLike:    dense Winograd + hand-tuned tiling;
 *  - kPatDnnDense: our optimized dense baseline (Fig. 17a);
 *  - kCsrSparse:  pruned weights in CSR, conventional sparse execution;
 *  - kPatDnn:     the full pattern engine (FKR + FKW + LRE + tuning).
 *
 * Relative orderings between these engines — not absolute ms — are the
 * reproduction target (see docs/ARCHITECTURE.md, "Substitutions").
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/builder.h"
#include "graph/passes.h"
#include "nn/model.h"
#include "nn/zoo.h"
#include "rt/conv_csr.h"
#include "rt/conv_im2col.h"
#include "rt/conv_naive.h"
#include "rt/conv_pattern.h"
#include "rt/conv_winograd.h"
#include "rt/device.h"

namespace patdnn {

/** Engine selection for a whole-model run. */
enum class FrameworkKind
{
    kTfliteLike,
    kTvmLike,
    kMnnLike,
    kPatDnnDense,
    kCsrSparse,
    kPatDnn,
};

/** Display name used in bench output. */
std::string frameworkName(FrameworkKind kind);

/** Options controlling sparse compilation for the sparse engines. */
struct CompileOptions
{
    int pattern_count = 8;
    double connectivity_rate = 3.6;
    double first_layer_rate = 1.5;
    OptSwitches opts;       ///< FKR / LRE / tuning switches.
    TuneParams default_tuning;
    bool run_graph_passes = true;
    uint64_t seed = 5;
};

/**
 * A compiled, runnable model: per-conv-layer executors plus the simple
 * non-conv ops (pool/add/fc) executed directly. Holds all storage.
 */
class CompiledModel
{
  public:
    /** Compile `model` for `kind` on `device`. Prunes a copy of the
     * weights for sparse engines (pattern projection + connectivity). */
    CompiledModel(const Model& model, FrameworkKind kind, DeviceSpec device,
                  CompileOptions opts = {});
    ~CompiledModel();

    /** Run one NCHW input through every layer; returns final output. */
    Tensor run(const Tensor& input) const;

    /** Median wall-clock of `run` over reps (after warmup). */
    double timeMs(const Tensor& input, int warmup = 1, int reps = 3) const;

    /** Sum of conv-layer times only (the paper's reported metric). */
    double convOnlyTimeMs(const Tensor& input, int warmup = 1, int reps = 3) const;

    /** Total non-zero conv weights after compilation. */
    int64_t convNonZeros() const;

    /** Dense conv weight count. */
    int64_t convDense() const;

    FrameworkKind kind() const { return kind_; }
    const DeviceSpec& device() const { return device_; }

  private:
    struct Executor;
    Tensor runLayers(const Tensor& input, double* conv_ms) const;

    FrameworkKind kind_;
    DeviceSpec device_;
    Graph graph_;
    std::vector<std::unique_ptr<Executor>> executors_;  ///< Per node id.
};

/**
 * Convenience: build a single-layer compiled conv for a ConvDesc (used
 * by the per-layer benches). Weights are generated, pruned and packed
 * internally with the given options.
 */
class CompiledConvLayer
{
  public:
    CompiledConvLayer(const ConvDesc& desc, FrameworkKind kind, DeviceSpec device,
                      CompileOptions opts = {});

    void run(const Tensor& in, Tensor& out) const;

    /** Median time over reps after warmup. */
    double timeMs(int warmup = 1, int reps = 3) const;

    /** Achieved GFLOPS counting actually-executed MACs. */
    double gflops(double time_ms) const;

    /** Effective (non-zero) MACs per run. */
    int64_t effectiveMacs() const;

    const FkwLayer* fkw() const { return fkw_.get(); }
    const ConvDesc& desc() const { return desc_; }

    /** Re-run with different tuning (used by the tuner's measure fn). */
    double timeWithParams(const TuneParams& params, int reps = 2) const;

  private:
    ConvDesc desc_;
    FrameworkKind kind_;
    DeviceSpec device_;
    CompileOptions opts_;
    Tensor weight_;  ///< Dense (possibly pruned) weights.
    std::unique_ptr<FkwLayer> fkw_;
    std::unique_ptr<PatternConv> pattern_;
    std::unique_ptr<NaiveConv> naive_;
    std::unique_ptr<Im2colConv> im2col_;
    std::unique_ptr<WinogradConv> winograd_;
    std::unique_ptr<CsrConv> csr_;
    Tensor input_;
    mutable Tensor output_;
};

}  // namespace patdnn
