#include "rt/conv_pattern.h"

#include <algorithm>

#include "util/logging.h"

namespace patdnn {

PatternPlan
preparePatternPlan(const FkwLayer& fkw, const LayerwiseRep& lr,
                   const DeviceSpec& device)
{
    PatternPlan plan;
    plan.entries = fkw.entries;
    plan.lowered.reserve(fkw.patterns.size());
    for (const auto& p : fkw.patterns)
        plan.lowered.push_back(lowerPattern(p));

    int npat = static_cast<int>(fkw.patterns.size());
    bool loose = !fkw.kernel_pattern.empty();

    // Scheduling granularity: split FKR groups into work items. GPU-like
    // devices map one group to one "thread block"; CPUs split groups to
    // filters_per_task for finer balancing.
    int64_t per_task = lr.tuning.filters_per_task;
    if (device.gpu_like)
        per_task = 1 << 30;  // Whole group per item.
    for (const auto& grp : fkw.groups) {
        int32_t f = grp.begin;
        while (f < grp.end) {
            int32_t fe = static_cast<int32_t>(
                std::min<int64_t>(grp.end, f + per_task));
            WorkItem item;
            item.filter_begin = f;
            item.filter_end = fe;
            // Build ops. With LRE + the tight format we schedule the
            // item's kernels input-channel-major (the paper's cohwci
            // inner order): the input plane rows stay cache-hot while
            // every filter that touches that channel accumulates, and
            // kernels sharing (channel, pattern) across filters fuse
            // into multi-filter bundles (Fig. 11 filter-level LRE).
            int32_t length = grp.length;
            if (lr.opts.lre && !loose && length > 0) {
                struct KernelRef
                {
                    int32_t ic, pid, fpos, gk;
                };
                std::vector<KernelRef> refs;
                for (int32_t ff = f; ff < fe; ++ff) {
                    int32_t kb = fkw.offset[static_cast<size_t>(ff)];
                    for (int32_t k = 0; k < length; ++k) {
                        int pid = 0;
                        for (int p = 0; p < npat; ++p) {
                            if (k >= fkw.strideAt(ff, p) &&
                                k < fkw.strideAt(ff, p + 1)) {
                                pid = p;
                                break;
                            }
                        }
                        refs.push_back({fkw.index[static_cast<size_t>(kb + k)],
                                        static_cast<int32_t>(pid), ff, kb + k});
                    }
                }
                std::sort(refs.begin(), refs.end(),
                          [](const KernelRef& a, const KernelRef& b) {
                              if (a.ic != b.ic)
                                  return a.ic < b.ic;
                              if (a.pid != b.pid)
                                  return a.pid < b.pid;
                              return a.fpos < b.fpos;
                          });
                // Bundles are capped at 16 filters: the executor's
                // pointer tables and the multi-filter kernels size for
                // that, so an oversized tuning value (hand-written or
                // from an artifact) must be clamped here, where the
                // ops are built, not silently truncated at run time.
                int max_bundle = std::min(16, std::max(1, lr.tuning.unroll_oc));
                size_t i = 0;
                while (i < refs.size()) {
                    size_t j = i + 1;
                    while (j < refs.size() &&
                           static_cast<int>(j - i) < max_bundle &&
                           refs[j].ic == refs[i].ic && refs[j].pid == refs[i].pid)
                        ++j;
                    PatternOp op;
                    op.filter_begin = refs[i].fpos;
                    op.filter_count = static_cast<int32_t>(j - i);
                    op.pattern_id = refs[i].pid;
                    op.input_channel = refs[i].ic;
                    for (size_t r = i; r < j; ++r) {
                        op.kernel_index.push_back(refs[r].gk);
                        op.filter_pos.push_back(refs[r].fpos);
                    }
                    item.ops.push_back(std::move(op));
                    i = j;
                }
            } else {
                // Per-kernel ops (loose format dispatches per kernel —
                // the paper's branchy No-opt code path).
                for (int32_t ff = f; ff < fe; ++ff) {
                    int32_t kb = fkw.offset[static_cast<size_t>(ff)];
                    int32_t ke = fkw.offset[static_cast<size_t>(ff) + 1];
                    for (int32_t gk = kb; gk < ke; ++gk) {
                        PatternOp op;
                        op.filter_begin = ff;
                        op.filter_count = 1;
                        if (loose) {
                            op.pattern_id =
                                fkw.kernel_pattern[static_cast<size_t>(gk)];
                        } else {
                            int32_t k = gk - kb;
                            for (int p = 0; p < npat; ++p) {
                                if (k >= fkw.strideAt(ff, p) &&
                                    k < fkw.strideAt(ff, p + 1)) {
                                    op.pattern_id = p;
                                    break;
                                }
                            }
                        }
                        op.input_channel = fkw.index[static_cast<size_t>(gk)];
                        op.kernel_index.push_back(gk);
                        op.filter_pos.push_back(ff);
                        item.ops.push_back(std::move(op));
                    }
                }
            }
            for (const auto& op : item.ops)
                item.macs += static_cast<int64_t>(op.filter_count) * plan.entries;
            plan.items.push_back(std::move(item));
            f = fe;
        }
    }
    return plan;
}

PatternConv::PatternConv(ConvDesc desc, const FkwLayer* fkw, LayerwiseRep lr,
                         DeviceSpec device)
    : desc_(std::move(desc)), fkw_(fkw), lr_(std::move(lr)),
      device_(std::move(device)), ops_(&resolveSimdOps(device_.simd_isa))
{
    PATDNN_CHECK_EQ(desc_.groups, 1, "PatternConv supports groups == 1");
    PATDNN_CHECK_EQ(fkw_->in_channels, desc_.cin, "fkw channels");
    PATDNN_CHECK_EQ(fkw_->filters, desc_.cout, "fkw filters");
    plan_ = preparePatternPlan(*fkw_, lr_, device_);
}

void
PatternConv::runItem(const WorkItem& item, const float* in, float* out,
                     int64_t /*b*/) const
{
    const ConvDesc& d = desc_;
    int64_t oh = d.outH(), ow = d.outW();
    const TuneParams& t = lr_.tuning;
    bool tile_spatial = t.blocked && t.permute == LoopPermutation::kCoHWCi;
    int64_t tile_oh = tile_spatial ? std::max<int64_t>(1, t.tile_oh) : oh;

    // Resolve output plane pointers (original channel via reorder array).
    auto out_plane = [&](int32_t fpos) {
        int32_t oc = fkw_->reorder[static_cast<size_t>(fpos)];
        return out + static_cast<int64_t>(oc) * oh * ow;
    };

    PlaneGeom g;
    g.h = d.h;
    g.w = d.w;
    g.oh = oh;
    g.ow = ow;
    g.pad = d.pad;
    g.stride = d.stride;
    g.x0 = 0;
    g.x1 = ow;

    if (!lr_.opts.reorder && !lr_.opts.lre) {
        // No-opt execution (Fig. 7 left): pixel loops outside, a
        // per-kernel pattern dispatch inside — one non-inlined call
        // with full bounds checks per (pixel, kernel), plus the input-
        // channel indirection per step. This is the baseline the FKR
        // and LRE speedups in Fig. 13 are measured against.
        g.y0 = 0;
        g.y1 = oh;
        size_t i = 0;
        while (i < item.ops.size()) {
            int32_t f = item.ops[i].filter_begin;
            size_t j = i;
            while (j < item.ops.size() && item.ops[j].filter_begin == f)
                ++j;
            float* optr = out_plane(f);
            for (int64_t y = 0; y < oh; ++y) {
                for (int64_t x = 0; x < ow; ++x) {
                    float acc = 0.0f;
                    for (size_t k = i; k < j; ++k) {
                        const PatternOp& op = item.ops[k];
                        const PatternKernel& pk =
                            plan_.lowered[static_cast<size_t>(op.pattern_id)];
                        const float* in_plane =
                            in + static_cast<int64_t>(op.input_channel) * d.h * d.w;
                        const float* wptr =
                            fkw_->weights.data() +
                            static_cast<int64_t>(op.kernel_index[0]) * plan_.entries;
                        acc += guardedPatternDot(pk, wptr, in_plane, g, y, x);
                    }
                    optr[y * ow + x] += acc;
                }
            }
            i = j;
        }
        return;
    }

    auto run_op = [&](const PatternOp& op, int64_t y0, int64_t y1) {
        g.y0 = y0;
        g.y1 = y1;
        const PatternKernel& pk =
            plan_.lowered[static_cast<size_t>(op.pattern_id)];
        const float* in_plane =
            in + static_cast<int64_t>(op.input_channel) * d.h * d.w;
        if (op.filter_count > 1) {
            // Plan construction caps bundles at 16 (preparePatternPlan).
            PATDNN_CHECK_LE(op.filter_count, 16, "multi-filter bundle size");
            const float* wptrs[16];
            float* optrs[16];
            int count = op.filter_count;
            for (int f = 0; f < count; ++f) {
                wptrs[f] = fkw_->weights.data() +
                           static_cast<int64_t>(op.kernel_index[static_cast<size_t>(f)]) *
                               plan_.entries;
                optrs[f] = out_plane(op.filter_pos[static_cast<size_t>(f)]);
            }
            kernelAccumulateMultiFilter(pk, wptrs, in_plane, optrs, count, g,
                                        ops_);
        } else {
            const float* wptr = fkw_->weights.data() +
                                static_cast<int64_t>(op.kernel_index[0]) *
                                    plan_.entries;
            float* optr = out_plane(op.filter_begin);
            if (lr_.opts.lre)
                kernelAccumulateLre(pk, wptr, in_plane, optr, g, t.unroll_w,
                                    ops_);
            else
                kernelAccumulateNoLre(pk, wptr, in_plane, optr, g);
        }
    };

    if (t.permute == LoopPermutation::kCoHWCi) {
        // Spatial tile outer, kernels inner: inputs for the tile stay
        // cache-resident while every kernel of the item visits them.
        for (int64_t y0 = 0; y0 < oh; y0 += tile_oh) {
            int64_t y1 = std::min(oh, y0 + tile_oh);
            for (const auto& op : item.ops)
                run_op(op, y0, y1);
        }
    } else {
        // Kernel outer, full plane inner (weight-stationary). Blocked
        // variant still tiles rows inside each op for cache reuse.
        int64_t tile = t.blocked ? std::max<int64_t>(1, t.tile_oh) : oh;
        for (const auto& op : item.ops)
            for (int64_t y0 = 0; y0 < oh; y0 += tile)
                run_op(op, y0, std::min(oh, y0 + tile));
    }
}

void
PatternConv::run(const Tensor& in, Tensor& out, const Epilogue& ep) const
{
    const ConvDesc& d = desc_;
    int64_t n = in.shape().dim(0);
    int64_t oh = d.outH(), ow = d.outW();
    for (int64_t b = 0; b < n; ++b) {
        float* obase = out.data() + b * d.cout * oh * ow;
        const float* ibase = in.data() + b * d.cin * d.h * d.w;
        // Bias init.
        device_.pool().parallelFor(d.cout, [&](int64_t oc) {
            float bias = ep.bias ? (*ep.bias)[oc] : 0.0f;
            float* optr = obase + oc * oh * ow;
            std::fill(optr, optr + oh * ow, bias);
        });
        // Accumulate all work items.
        device_.pool().parallelChunks(
            static_cast<int64_t>(plan_.items.size()),
            [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i)
                    runItem(plan_.items[static_cast<size_t>(i)], ibase, obase, b);
            });
        if (ep.relu) {
            device_.pool().parallelFor(d.cout, [&](int64_t oc) {
                ops_->relu(obase + oc * oh * ow, oh * ow);
            });
        }
    }
}

}  // namespace patdnn
