/**
 * @file
 * Quantized-GEMM epilogues: the f32 <-> i8 boundary of the int8 dense
 * path. The quantized Im2colConv quantizes its im2col patch matrix with
 * the calibrated activation scale, runs the exact i8×i8→i32 packed GEMM
 * (rt/gemm_packed.h), then requantizes each output row here:
 *
 *   f32 out = i32 acc * (weight_scale[ch] * act_scale) + bias [, ReLU]
 *
 * An i8 output variant (saturating, for a future quantized interchange
 * format) is provided alongside. The requant loops are plain scalar
 * code — they touch each element once and are bandwidth-bound next to
 * the GEMM. The activation-side quantizeRowToI8 is different: it covers
 * the whole im2col patch matrix per call, so the run path uses the
 * per-ISA SimdOps::quantize_row_i8 kernel and the function here is the
 * portable wrapper over the scalar reference table (rounding pinned by
 * tests/quant_test.cc and cross-ISA by tests/simd_kernels_test.cc).
 */
#pragma once

#include <cstdint>

#include "prune/quant.h"

namespace patdnn {

/** out[i] = acc[i] * scale + bias, optionally clamped at 0 (ReLU). */
void requantRowToF32(const int32_t* acc, int64_t n, float scale, float bias,
                     bool relu, float* out);

/** Saturating i8 requant: the f32 result of requantRowToF32 quantized
 * at 1/out_scale (round-to-nearest, clamp to [-127, 127]). */
void requantRowToI8(const int32_t* acc, int64_t n, float scale, float bias,
                    bool relu, float out_scale, int8_t* out);

/** Quantize one f32 row at 1/scale (the activation-side entry into the
 * i8 GEMM): round-to-nearest, saturating clamp to [-127, 127]. */
void quantizeRowToI8(const float* x, int64_t n, float scale, int8_t* out);

}  // namespace patdnn
