#include "rt/tuner.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace patdnn {
namespace {

/** Chromosome: indices into each axis of the TuneSpace. */
struct Genes
{
    int tile_oh = 0, tile_ow = 0, unroll_w = 0, unroll_oc = 0;
    int filters_per_task = 0, permutation = 0, blocked = 0;
    int gemm_kc = 0, gemm_nc = 0;
};

TuneParams
decode(const Genes& g, const TuneSpace& s)
{
    TuneParams p;
    p.tile_oh = s.tile_oh[static_cast<size_t>(g.tile_oh)];
    p.tile_ow = s.tile_ow[static_cast<size_t>(g.tile_ow)];
    p.unroll_w = s.unroll_w[static_cast<size_t>(g.unroll_w)];
    p.unroll_oc = s.unroll_oc[static_cast<size_t>(g.unroll_oc)];
    p.filters_per_task = s.filters_per_task[static_cast<size_t>(g.filters_per_task)];
    p.permute = s.permutations[static_cast<size_t>(g.permutation)];
    p.blocked = s.blocked[static_cast<size_t>(g.blocked)];
    p.gemm_kc = s.gemm_kc[static_cast<size_t>(g.gemm_kc)];
    p.gemm_nc = s.gemm_nc[static_cast<size_t>(g.gemm_nc)];
    return p;
}

Genes
randomGenes(const TuneSpace& s, Rng& rng)
{
    auto pick = [&](size_t n) {
        return static_cast<int>(rng.uniformInt(0, static_cast<int64_t>(n) - 1));
    };
    Genes g;
    g.tile_oh = pick(s.tile_oh.size());
    g.tile_ow = pick(s.tile_ow.size());
    g.unroll_w = pick(s.unroll_w.size());
    g.unroll_oc = pick(s.unroll_oc.size());
    g.filters_per_task = pick(s.filters_per_task.size());
    g.permutation = pick(s.permutations.size());
    g.blocked = pick(s.blocked.size());
    g.gemm_kc = pick(s.gemm_kc.size());
    g.gemm_nc = pick(s.gemm_nc.size());
    return g;
}

Genes
crossover(const Genes& a, const Genes& b, Rng& rng)
{
    Genes c;
    c.tile_oh = rng.bernoulli(0.5) ? a.tile_oh : b.tile_oh;
    c.tile_ow = rng.bernoulli(0.5) ? a.tile_ow : b.tile_ow;
    c.unroll_w = rng.bernoulli(0.5) ? a.unroll_w : b.unroll_w;
    c.unroll_oc = rng.bernoulli(0.5) ? a.unroll_oc : b.unroll_oc;
    c.filters_per_task = rng.bernoulli(0.5) ? a.filters_per_task : b.filters_per_task;
    c.permutation = rng.bernoulli(0.5) ? a.permutation : b.permutation;
    c.blocked = rng.bernoulli(0.5) ? a.blocked : b.blocked;
    c.gemm_kc = rng.bernoulli(0.5) ? a.gemm_kc : b.gemm_kc;
    c.gemm_nc = rng.bernoulli(0.5) ? a.gemm_nc : b.gemm_nc;
    return c;
}

void
mutate(Genes& g, const TuneSpace& s, double rate, Rng& rng)
{
    auto maybe = [&](int& gene, size_t n) {
        if (rng.bernoulli(rate))
            gene = static_cast<int>(rng.uniformInt(0, static_cast<int64_t>(n) - 1));
    };
    maybe(g.tile_oh, s.tile_oh.size());
    maybe(g.tile_ow, s.tile_ow.size());
    maybe(g.unroll_w, s.unroll_w.size());
    maybe(g.unroll_oc, s.unroll_oc.size());
    maybe(g.filters_per_task, s.filters_per_task.size());
    maybe(g.permutation, s.permutations.size());
    maybe(g.blocked, s.blocked.size());
    maybe(g.gemm_kc, s.gemm_kc.size());
    maybe(g.gemm_nc, s.gemm_nc.size());
}

}  // namespace

TuneSpace
tuneSpaceFor(SimdIsa isa)
{
    TuneSpace s;
    const SimdOps& ops = resolveSimdOps(isa);
    if (ops.width > 1) {
        // One, two and four vectors per register block; column tiles
        // sized so every blocked step is a whole number of vectors.
        s.unroll_w = {ops.width, 2 * ops.width, 4 * ops.width};
        s.tile_ow = {8 * ops.width, 16 * ops.width, 32 * ops.width};
    }
    // GEMM N-blocks in whole tile widths of this ISA's gemm_nr (so a
    // block never splits a tile); 0 keeps the budget heuristic as a
    // candidate. kc candidates are ISA-independent (panel depth).
    int64_t nr = ops.gemm_nr;
    s.gemm_nc = {0, 4 * nr, 8 * nr, 16 * nr};
    return s;
}

TuneResult
tuneLayer(const std::function<double(const TuneParams&)>& measure,
          const TuneSpace& space, const TunerConfig& cfg)
{
    Rng rng(cfg.seed);
    TuneResult result;
    result.best_ms = 1e30;

    std::vector<Genes> population;
    for (int i = 0; i < cfg.population; ++i)
        population.push_back(randomGenes(space, rng));

    // Evaluate one batch of candidates (the initial population, then
    // each generation's brood). Breeding only depends on the *previous*
    // generation's fitness, so a whole batch can be measured at once —
    // in parallel on cfg.eval_pool when provided — while history order,
    // the RNG sequence and the explored candidates stay identical to
    // the serial schedule.
    auto evaluateBatch = [&](const std::vector<Genes>& batch) {
        std::vector<TuneRecord> records(batch.size());
        auto eval_one = [&](int64_t i) {
            TuneParams p = decode(batch[static_cast<size_t>(i)], space);
            double best = 1e30;
            for (int r = 0; r < cfg.measure_reps; ++r)
                best = std::min(best, measure(p));
            records[static_cast<size_t>(i)] = {p, best};
        };
        if (cfg.eval_pool != nullptr && batch.size() > 1)
            cfg.eval_pool->parallelFor(static_cast<int64_t>(batch.size()),
                                       eval_one);
        else
            for (int64_t i = 0; i < static_cast<int64_t>(batch.size()); ++i)
                eval_one(i);
        std::vector<double> fit(batch.size());
        for (size_t i = 0; i < batch.size(); ++i) {
            result.history.push_back(records[i]);
            ++result.evaluations;
            if (records[i].time_ms < result.best_ms) {
                result.best_ms = records[i].time_ms;
                result.best = records[i].params;
            }
            fit[i] = records[i].time_ms;
        }
        return fit;
    };

    std::vector<double> fitness = evaluateBatch(population);

    for (int gen = 0; gen < cfg.generations; ++gen) {
        std::vector<Genes> next;
        std::vector<double> next_fit;
        // Elitism: carry the best chromosome forward (not re-measured).
        size_t best_idx = 0;
        for (size_t i = 1; i < population.size(); ++i)
            if (fitness[i] < fitness[best_idx])
                best_idx = i;
        next.push_back(population[best_idx]);
        next_fit.push_back(fitness[best_idx]);
        std::vector<Genes> brood;
        while (next.size() + brood.size() < population.size()) {
            // Tournament selection of two parents.
            auto tournament = [&]() -> const Genes& {
                size_t a = static_cast<size_t>(
                    rng.uniformInt(0, static_cast<int64_t>(population.size()) - 1));
                size_t b = static_cast<size_t>(
                    rng.uniformInt(0, static_cast<int64_t>(population.size()) - 1));
                return fitness[a] <= fitness[b] ? population[a] : population[b];
            };
            Genes child = crossover(tournament(), tournament(), rng);
            mutate(child, space, cfg.mutation_rate, rng);
            brood.push_back(child);
        }
        std::vector<double> brood_fit = evaluateBatch(brood);
        for (size_t i = 0; i < brood.size(); ++i) {
            next.push_back(brood[i]);
            next_fit.push_back(brood_fit[i]);
        }
        population = std::move(next);
        fitness = std::move(next_fit);
    }
    return result;
}

std::vector<double>
PerfEstimator::features(const TuneParams& p)
{
    return {
        1.0,
        std::log2(static_cast<double>(std::max<int64_t>(1, p.tile_oh))),
        std::log2(static_cast<double>(std::max<int64_t>(1, p.tile_ow))),
        std::log2(static_cast<double>(std::max(1, p.unroll_w))),
        std::log2(static_cast<double>(std::max(1, p.unroll_oc))),
        std::log2(static_cast<double>(std::max(1, p.filters_per_task))),
        p.permute == LoopPermutation::kCoHWCi ? 1.0 : 0.0,
        p.blocked ? 1.0 : 0.0,
        // 0 = "heuristic blocking" decodes to log2(1) = 0, a neutral
        // baseline the fitted slope measures concrete blocks against.
        std::log2(static_cast<double>(std::max<int64_t>(1, p.gemm_kc))),
        std::log2(static_cast<double>(std::max<int64_t>(1, p.gemm_nc))),
    };
}

void
PerfEstimator::fit(const std::vector<TuneRecord>& history)
{
    if (history.size() < 4)
        return;
    size_t n = history.size();
    size_t d = features(history[0].params).size();
    // Normal equations with ridge regularization: (X'X + lI) c = X'y.
    std::vector<std::vector<double>> xtx(d, std::vector<double>(d, 0.0));
    std::vector<double> xty(d, 0.0);
    for (const auto& rec : history) {
        auto f = features(rec.params);
        for (size_t i = 0; i < d; ++i) {
            xty[i] += f[i] * rec.time_ms;
            for (size_t j = 0; j < d; ++j)
                xtx[i][j] += f[i] * f[j];
        }
    }
    double lambda = 1e-3 * static_cast<double>(n);
    for (size_t i = 0; i < d; ++i)
        xtx[i][i] += lambda;
    // Gaussian elimination with partial pivoting.
    std::vector<std::vector<double>> a = xtx;
    std::vector<double> b = xty;
    for (size_t col = 0; col < d; ++col) {
        size_t piv = col;
        for (size_t r = col + 1; r < d; ++r)
            if (std::fabs(a[r][col]) > std::fabs(a[piv][col]))
                piv = r;
        std::swap(a[col], a[piv]);
        std::swap(b[col], b[piv]);
        if (std::fabs(a[col][col]) < 1e-12)
            return;  // Singular; stay untrained.
        for (size_t r = 0; r < d; ++r) {
            if (r == col)
                continue;
            double factor = a[r][col] / a[col][col];
            for (size_t c2 = col; c2 < d; ++c2)
                a[r][c2] -= factor * a[col][c2];
            b[r] -= factor * b[col];
        }
    }
    coef_.assign(d, 0.0);
    for (size_t i = 0; i < d; ++i)
        coef_[i] = b[i] / a[i][i];
    trained_ = true;
}

double
PerfEstimator::predict(const TuneParams& params) const
{
    PATDNN_CHECK(trained_, "estimator not trained");
    auto f = features(params);
    double y = 0.0;
    for (size_t i = 0; i < f.size(); ++i)
        y += coef_[i] * f[i];
    return y;
}

TuneParams
PerfEstimator::argminOver(const TuneSpace& space) const
{
    PATDNN_CHECK(trained_, "estimator not trained");
    TuneParams best;
    double best_y = 1e30;
    for (int64_t toh : space.tile_oh)
        for (int64_t tow : space.tile_ow)
            for (int uw : space.unroll_w)
                for (int uoc : space.unroll_oc)
                    for (int fpt : space.filters_per_task)
                        for (auto perm : space.permutations)
                            for (bool blk : space.blocked)
                                for (int64_t gkc : space.gemm_kc)
                                    for (int64_t gnc : space.gemm_nc) {
                                        TuneParams p;
                                        p.tile_oh = toh;
                                        p.tile_ow = tow;
                                        p.unroll_w = uw;
                                        p.unroll_oc = uoc;
                                        p.filters_per_task = fpt;
                                        p.permute = perm;
                                        p.blocked = blk;
                                        p.gemm_kc = gkc;
                                        p.gemm_nc = gnc;
                                        double y = predict(p);
                                        if (y < best_y) {
                                            best_y = y;
                                            best = p;
                                        }
                                    }
    return best;
}

TuneCache&
TuneCache::instance()
{
    static TuneCache cache;
    return cache;
}

std::string
TuneCache::key(const ConvDesc& desc, const DeviceSpec& device,
               double connectivity_rate)
{
    std::string k;
    for (int64_t v : {desc.cin, desc.cout, desc.kh, desc.kw, desc.h, desc.w,
                      desc.stride, desc.pad, desc.dilation, desc.groups,
                      // Device fingerprint: the measured runtime depends
                      // on the pool width, scheduling model and tile
                      // budget, so tunings never cross devices.
                      static_cast<int64_t>(device.threads),
                      static_cast<int64_t>(device.gpu_like ? 1 : 0),
                      device.tile_budget_kb}) {
        k += std::to_string(v);
        k += ':';
    }
    k += isaName(resolveSimdOps(device.simd_isa).isa);
    k += ':';
    // The GA measures a concrete FKW density; a different pruning rate
    // is a different workload.
    k += std::to_string(connectivity_rate);
    return k;
}

bool
TuneCache::lookup(const ConvDesc& desc, const DeviceSpec& device,
                  double connectivity_rate, TuneParams* params) const
{
    std::lock_guard<std::mutex> lk(mutex_);
    auto it = entries_.find(key(desc, device, connectivity_rate));
    if (it == entries_.end())
        return false;
    ++hits_;
    if (params != nullptr)
        *params = it->second;
    return true;
}

void
TuneCache::insert(const ConvDesc& desc, const DeviceSpec& device,
                  double connectivity_rate, const TuneParams& params)
{
    std::lock_guard<std::mutex> lk(mutex_);
    entries_[key(desc, device, connectivity_rate)] = params;
}

size_t
TuneCache::size() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return entries_.size();
}

int64_t
TuneCache::hits() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return hits_;
}

void
TuneCache::clear()
{
    std::lock_guard<std::mutex> lk(mutex_);
    entries_.clear();
    hits_ = 0;
}

}  // namespace patdnn
