#include "rt/device.h"

#include <algorithm>
#include <mutex>
#include <thread>

namespace patdnn {

ThreadPool&
DeviceSpec::pool() const
{
    // Concurrent sessions may trigger the lazy creation from several
    // threads; a process-wide guard keeps exactly one pool per spec.
    static std::mutex create_mutex;
    std::lock_guard<std::mutex> lk(create_mutex);
    if (!pool_)
        pool_ = std::make_shared<ThreadPool>(threads);
    return *pool_;
}

namespace {

int
hostThreads(int want)
{
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    if (hw <= 0)
        hw = 4;
    return std::max(1, std::min(want, hw));
}

}  // namespace

DeviceSpec
makeCpuDevice(int threads)
{
    DeviceSpec d;
    d.name = "mobile-cpu-sim";
    d.threads = hostThreads(threads);
    d.gpu_like = false;
    d.tile_budget_kb = 32;
    return d;
}

DeviceSpec
makeFixedWidthCpuDevice(int threads)
{
    DeviceSpec d;
    d.name = "mobile-cpu-sim-fixed";
    d.threads = std::max(1, threads);
    d.gpu_like = false;
    d.tile_budget_kb = 32;
    return d;
}

DeviceSpec
makeGpuDevice()
{
    DeviceSpec d;
    d.name = "mobile-gpu-sim";
    d.threads = hostThreads(64);
    d.gpu_like = true;
    d.tile_budget_kb = 16;
    return d;
}

DeviceSpec
makeSnapdragon855()
{
    DeviceSpec d = makeCpuDevice(8);
    d.name = "snapdragon-855-sim";
    return d;
}

DeviceSpec
makeSnapdragon845()
{
    DeviceSpec d = makeCpuDevice(6);
    d.name = "snapdragon-845-sim";
    d.tile_budget_kb = 24;
    return d;
}

DeviceSpec
makeKirin980()
{
    DeviceSpec d = makeCpuDevice(4);
    d.name = "kirin-980-sim";
    d.tile_budget_kb = 16;
    return d;
}

}  // namespace patdnn
