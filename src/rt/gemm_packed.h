/**
 * @file
 * Packed, tiled, cache-blocked dense GEMM (mmt4d-style).
 *
 * The dense executors (im2col, Winograd stage 2) compute
 * C[M x N] (+)= A[M x K] * B[K x N]. This layer rearranges both
 * operands into tile-major "panel" layouts so the per-ISA tile kernel
 * (SimdOps::gemm_tile, rt/simd/dispatch.h) streams contiguous,
 * vector-width-aligned memory:
 *
 *   packed LHS: [ceil(M/MR)] tiles, each [K][MR]   (row panels)
 *   packed RHS: [ceil(N/NR)] tiles, each [K][NR]   (column panels)
 *
 * Edge tiles are zero-padded; the padded lanes feed only discarded
 * accumulator lanes and are never stored back. The outer loops are
 * blocked for cache: within one row tile, the N dimension is walked in
 * `nc`-column blocks (keeping the [MR x nc] C block resident across K)
 * and K in `kc`-element blocks (keeping one [kc x MR] LHS panel slice
 * plus one [kc x NR] RHS panel slice L1-resident). Because the tile
 * kernel's per-element accumulation chain runs through C itself,
 * kc-blocking is bit-neutral, and results are bit-identical across
 * ISAs and blocking choices (the cross-ISA contract of dispatch.h).
 *
 * Blocking defaults derive from the ISA's tile footprint and the
 * device's cache budget (IREE KernelDispatch-style); the auto-tuner can
 * override them per layer via TuneParams::gemm_kc / gemm_nc, memoized
 * in the process-wide TuneCache (see rt/tuner.h).
 */
#pragma once

#include <cstdint>

#include "rt/simd/dispatch.h"

namespace patdnn {

/** Cache-blocking factors of the packed GEMM outer loops. */
struct GemmBlocking
{
    int64_t kc = 0;  ///< K elements per block (panel-slice depth).
    int64_t nc = 0;  ///< N columns per block (C-block width).
};

/**
 * Derive blocking from the tile footprint and the device's L1-resident
 * working-set budget (DeviceSpec::tile_budget_kb): kc sized so one LHS
 * slice + one RHS slice + the C tile fit the budget, nc a few tiles
 * wide so the C block stays register/L1 friendly. `kc_override` /
 * `nc_override` (> 0) replace the heuristic — the tuner's knobs.
 */
GemmBlocking gemmBlockingFor(const SimdOps& ops, int64_t k, int64_t n,
                             int64_t tile_budget_kb, int64_t kc_override = 0,
                             int64_t nc_override = 0);

/** Packed-buffer extents (in floats). */
int64_t packedLhsElems(int64_t m, int64_t k, int mr);
int64_t packedRhsElems(int64_t k, int64_t n, int nr);

/**
 * Pack row-major A[M x K] (row stride `lda`) into MR-row tile panels:
 * dst tile i holds A rows [i*MR, i*MR+MR) as [K][MR], zero-padded past
 * M. `dst` must hold packedLhsElems(m, k, mr) floats.
 */
void packLhsTiles(const float* a, int64_t m, int64_t k, int64_t lda, int mr,
                  float* dst);

/**
 * Pack row-major B[K x N] (row stride `ldb`) into NR-column tile
 * panels: dst tile j holds B columns [j*NR, j*NR+NR) as [K][NR],
 * zero-padded past N. `dst` must hold packedRhsElems(k, n, nr) floats.
 */
void packRhsTiles(const float* b, int64_t k, int64_t n, int64_t ldb, int nr,
                  float* dst);

/**
 * Run the blocked GEMM over row tiles [tile_begin, tile_end) of
 * C[M x N] (row stride `ldc`): C (+)= A * B with C pre-initialized by
 * the caller (bias or zero). Callers parallelize by splitting the
 * [0, ceil(M/MR)) row-tile range across workers; each call is
 * independent and touches only its own C rows.
 */
void packedGemmRowTiles(const SimdOps& ops, const float* packed_lhs,
                        const float* packed_rhs, int64_t m, int64_t k,
                        int64_t n, float* c, int64_t ldc, int64_t tile_begin,
                        int64_t tile_end, const GemmBlocking& blocking);

// ---------------------------------------------------------------------------
// Int8 variant (i8 x i8 -> i32, SimdOps::gemm_tile_i8)
// ---------------------------------------------------------------------------
//
// Same tile-panel scheme with two differences dictated by the i8 tile
// kernel contract (dispatch.h): panels are K-PAIR interleaved
// ([ceil(K/2)][MR|NR][2], odd-K tail zero-padded), and C accumulates in
// i32. Integer accumulation is exact, so the cross-ISA/bit-neutral-
// blocking property holds trivially; kc blocks are rounded to even so a
// block boundary never splits a k pair.

/** Blocking for the i8 path: same heuristic on the i8 tile footprint
 * and 1-byte elements, kc rounded up to even. */
GemmBlocking gemmBlockingForI8(const SimdOps& ops, int64_t k, int64_t n,
                               int64_t tile_budget_kb, int64_t kc_override = 0,
                               int64_t nc_override = 0);

/** Packed-buffer extents in elements (LHS elements are i16 — the pack
 * widens them — RHS elements are i8). */
int64_t packedLhsElemsI8(int64_t m, int64_t k, int mr);
int64_t packedRhsElemsI8(int64_t k, int64_t n, int nr);

/** Pack row-major i8 A[M x K] (row stride `lda`) into MR-row k-pair
 * panels, sign-extending each value to i16 so the kernels broadcast
 * whole (k0, k1) pairs as aligned 32-bit memory units (dispatch.h);
 * `dst` must hold packedLhsElemsI8(m, k, mr) i16 elements. */
void packLhsTilesI8(const int8_t* a, int64_t m, int64_t k, int64_t lda, int mr,
                    int16_t* dst);

/** Pack row-major i8 B[K x N] (row stride `ldb`) into NR-column k-pair
 * panels; `dst` must hold packedRhsElemsI8(k, n, nr) bytes. */
void packRhsTilesI8(const int8_t* b, int64_t k, int64_t n, int64_t ldb, int nr,
                    int8_t* dst);

/**
 * Blocked i8 GEMM over row tiles [tile_begin, tile_end) of the i32
 * C[M x N] (row stride `ldc`): C (+)= A * B with C pre-initialized by
 * the caller (normally zero; bias lands in the f32 requant epilogue).
 * Parallelize exactly like packedGemmRowTiles.
 */
void packedGemmRowTilesI8(const SimdOps& ops, const int16_t* packed_lhs,
                          const int8_t* packed_rhs, int64_t m, int64_t k,
                          int64_t n, int32_t* c, int64_t ldc,
                          int64_t tile_begin, int64_t tile_end,
                          const GemmBlocking& blocking);

}  // namespace patdnn
