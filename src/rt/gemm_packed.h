/**
 * @file
 * Packed, tiled, cache-blocked dense GEMM (mmt4d-style).
 *
 * The dense executors (im2col, Winograd stage 2) compute
 * C[M x N] (+)= A[M x K] * B[K x N]. This layer rearranges both
 * operands into tile-major "panel" layouts so the per-ISA tile kernel
 * (SimdOps::gemm_tile, rt/simd/dispatch.h) streams contiguous,
 * vector-width-aligned memory:
 *
 *   packed LHS: [ceil(M/MR)] tiles, each [K][MR]   (row panels)
 *   packed RHS: [ceil(N/NR)] tiles, each [K][NR]   (column panels)
 *
 * Edge tiles are zero-padded; the padded lanes feed only discarded
 * accumulator lanes and are never stored back. The outer loops are
 * blocked for cache: within one row tile, the N dimension is walked in
 * `nc`-column blocks (keeping the [MR x nc] C block resident across K)
 * and K in `kc`-element blocks (keeping one [kc x MR] LHS panel slice
 * plus one [kc x NR] RHS panel slice L1-resident). Because the tile
 * kernel's per-element accumulation chain runs through C itself,
 * kc-blocking is bit-neutral, and results are bit-identical across
 * ISAs and blocking choices (the cross-ISA contract of dispatch.h).
 *
 * Blocking defaults derive from the ISA's tile footprint and the
 * device's cache budget (IREE KernelDispatch-style); the auto-tuner can
 * override them per layer via TuneParams::gemm_kc / gemm_nc, memoized
 * in the process-wide TuneCache (see rt/tuner.h).
 */
#pragma once

#include <cstdint>

#include "rt/simd/dispatch.h"

namespace patdnn {

/** Cache-blocking factors of the packed GEMM outer loops. */
struct GemmBlocking
{
    int64_t kc = 0;  ///< K elements per block (panel-slice depth).
    int64_t nc = 0;  ///< N columns per block (C-block width).
};

/**
 * Derive blocking from the tile footprint and the device's L1-resident
 * working-set budget (DeviceSpec::tile_budget_kb): kc sized so one LHS
 * slice + one RHS slice + the C tile fit the budget, nc a few tiles
 * wide so the C block stays register/L1 friendly. `kc_override` /
 * `nc_override` (> 0) replace the heuristic — the tuner's knobs.
 */
GemmBlocking gemmBlockingFor(const SimdOps& ops, int64_t k, int64_t n,
                             int64_t tile_budget_kb, int64_t kc_override = 0,
                             int64_t nc_override = 0);

/** Packed-buffer extents (in floats). */
int64_t packedLhsElems(int64_t m, int64_t k, int mr);
int64_t packedRhsElems(int64_t k, int64_t n, int nr);

/**
 * Pack row-major A[M x K] (row stride `lda`) into MR-row tile panels:
 * dst tile i holds A rows [i*MR, i*MR+MR) as [K][MR], zero-padded past
 * M. `dst` must hold packedLhsElems(m, k, mr) floats.
 */
void packLhsTiles(const float* a, int64_t m, int64_t k, int64_t lda, int mr,
                  float* dst);

/**
 * Pack row-major B[K x N] (row stride `ldb`) into NR-column tile
 * panels: dst tile j holds B columns [j*NR, j*NR+NR) as [K][NR],
 * zero-padded past N. `dst` must hold packedRhsElems(k, n, nr) floats.
 */
void packRhsTiles(const float* b, int64_t k, int64_t n, int64_t ldb, int nr,
                  float* dst);

/**
 * Run the blocked GEMM over row tiles [tile_begin, tile_end) of
 * C[M x N] (row stride `ldc`): C (+)= A * B with C pre-initialized by
 * the caller (bias or zero). Callers parallelize by splitting the
 * [0, ceil(M/MR)) row-tile range across workers; each call is
 * independent and touches only its own C rows.
 */
void packedGemmRowTiles(const SimdOps& ops, const float* packed_lhs,
                        const float* packed_rhs, int64_t m, int64_t k,
                        int64_t n, float* c, int64_t ldc, int64_t tile_begin,
                        int64_t tile_end, const GemmBlocking& blocking);

}  // namespace patdnn
