#include "rt/microkernels.h"

#include <algorithm>

#include "util/logging.h"

namespace patdnn {

PatternKernel
lowerPattern(const Pattern& p)
{
    PatternKernel pk;
    pk.mask = p.mask();
    auto kept = p.keptPositions();
    PATDNN_CHECK_LE(kept.size(), 9u, "pattern entries limited to 9");
    pk.entries = static_cast<int>(kept.size());
    for (size_t i = 0; i < kept.size(); ++i) {
        pk.dy[i] = static_cast<int32_t>(kept[i] / p.kw());
        pk.dx[i] = static_cast<int32_t>(kept[i] % p.kw());
    }
    return pk;
}

namespace {

/**
 * Interior x-range of an output row where every entry's input column is
 * in bounds (stride 1): [max_e(pad - dx_e), min_e(w + pad - dx_e)).
 */
void
interiorRange(const PatternKernel& pk, int64_t w, int64_t pad, int64_t x0, int64_t x1,
              int64_t& lo, int64_t& hi)
{
    lo = x0;
    hi = x1;
    for (int e = 0; e < pk.entries; ++e) {
        lo = std::max<int64_t>(lo, pad - pk.dx[e]);
        hi = std::min<int64_t>(hi, w + pad - pk.dx[e]);
    }
    if (hi < lo)
        hi = lo;
}

/** Fully guarded accumulation for one output element (border path). */
inline float
guardedDot(const PatternKernel& pk, const float* weights, const float* in, int64_t h,
           int64_t w, int64_t pad, int64_t stride, int64_t y, int64_t x)
{
    float acc = 0.0f;
    for (int e = 0; e < pk.entries; ++e) {
        int64_t iy = y * stride - pad + pk.dy[e];
        int64_t ix = x * stride - pad + pk.dx[e];
        if (iy >= 0 && iy < h && ix >= 0 && ix < w)
            acc += weights[e] * in[iy * w + ix];
    }
    return acc;
}

}  // namespace

__attribute__((noinline)) float
guardedPatternDot(const PatternKernel& pk, const float* weights, const float* in,
                  const PlaneGeom& g, int64_t y, int64_t x)
{
    return guardedDot(pk, weights, in, g.h, g.w, g.pad, g.stride, y, x);
}

void
kernelAccumulateLre(const PatternKernel& pk, const float* weights, const float* in,
                    float* out, const PlaneGeom& g, int unroll_w,
                    const SimdOps* ops)
{
    if (g.stride != 1) {
        // Generic strided path (guarded, single pass).
        for (int64_t y = g.y0; y < g.y1; ++y) {
            float* orow = out + y * g.ow;
            for (int64_t x = g.x0; x < g.x1; ++x)
                orow[x] += guardedDot(pk, weights, in, g.h, g.w, g.pad, g.stride, y, x);
        }
        return;
    }
    const SimdOps& simd = ops != nullptr ? *ops : resolveSimdOps(detectSimdIsa());
    const int uw = std::max(1, unroll_w);
    for (int64_t y = g.y0; y < g.y1; ++y) {
        // Row validity per entry and hoisted input-row pointers: the
        // "statically determined data access" of the generated code.
        // Folding dy/dx into the base pointers here is what lets the
        // vector kernels run branch-free over the interior columns.
        const float* rows[9];
        int live = 0;
        float wv[9];
        for (int e = 0; e < pk.entries; ++e) {
            int64_t iy = y - g.pad + pk.dy[e];
            if (iy < 0 || iy >= g.h)
                continue;
            rows[live] = in + iy * g.w + pk.dx[e] - g.pad;
            wv[live] = weights[e];
            ++live;
        }
        float* orow = out + y * g.ow;
        if (live == 0)
            continue;
        int64_t lo, hi;
        interiorRange(pk, g.w, g.pad, g.x0, g.x1, lo, hi);
        // Left border (guarded).
        for (int64_t x = g.x0; x < lo; ++x)
            orow[x] += guardedDot(pk, weights, in, g.h, g.w, g.pad, 1, y, x);
        // Interior: single pass through the dispatched kernel table,
        // output row loaded/stored once, weights broadcast per entry.
        if (hi > lo) {
            const float* shifted[9];
            for (int e = 0; e < live; ++e)
                shifted[e] = rows[e] + lo;
            simd.accum_rows(shifted, wv, live, orow + lo, hi - lo, uw);
        }
        // Right border (guarded).
        for (int64_t x = std::max(lo, hi); x < g.x1; ++x)
            orow[x] += guardedDot(pk, weights, in, g.h, g.w, g.pad, 1, y, x);
    }
}

void
kernelAccumulateNoLre(const PatternKernel& pk, const float* weights, const float* in,
                      float* out, const PlaneGeom& g)
{
    // One pass per entry: the output row is re-loaded and re-stored for
    // every entry and input rows are re-walked — the redundant register
    // loads LRE eliminates (Fig. 14b counts the difference).
    for (int e = 0; e < pk.entries; ++e) {
        float wv = weights[e];
        for (int64_t y = g.y0; y < g.y1; ++y) {
            int64_t iy = y * g.stride - g.pad + pk.dy[e];
            if (iy < 0 || iy >= g.h)
                continue;
            const float* irow = in + iy * g.w;
            float* orow = out + y * g.ow;
            for (int64_t x = g.x0; x < g.x1; ++x) {
                int64_t ix = x * g.stride - g.pad + pk.dx[e];
                if (ix < 0 || ix >= g.w)
                    continue;
                orow[x] += wv * irow[ix];
            }
        }
    }
}

void
kernelAccumulateMultiFilter(const PatternKernel& pk, const float* const* weights,
                            const float* in, float* const* outs, int count,
                            const PlaneGeom& g, const SimdOps* ops)
{
    const SimdOps& simd = ops != nullptr ? *ops : resolveSimdOps(detectSimdIsa());
    if (g.stride != 1 || count == 1) {
        for (int f = 0; f < count; ++f)
            kernelAccumulateLre(pk, weights[f], in, outs[f], g, 4, &simd);
        return;
    }
    for (int64_t y = g.y0; y < g.y1; ++y) {
        const float* rows[9];
        int live = 0;
        int live_map[9];
        for (int e = 0; e < pk.entries; ++e) {
            int64_t iy = y - g.pad + pk.dy[e];
            if (iy < 0 || iy >= g.h)
                continue;
            rows[live] = in + iy * g.w + pk.dx[e] - g.pad;
            live_map[live] = e;
            ++live;
        }
        if (live == 0)
            continue;
        int64_t lo, hi;
        interiorRange(pk, g.w, g.pad, g.x0, g.x1, lo, hi);
        for (int f = 0; f < count; ++f) {
            float* orow = outs[f] + y * g.ow;
            for (int64_t x = g.x0; x < lo; ++x)
                orow[x] +=
                    guardedDot(pk, weights[f], in, g.h, g.w, g.pad, 1, y, x);
            for (int64_t x = std::max(lo, hi); x < g.x1; ++x)
                orow[x] +=
                    guardedDot(pk, weights[f], in, g.h, g.w, g.pad, 1, y, x);
        }
        // Interior: the shared input columns are loaded once per vector
        // and fanned out to all filters — the filter-level reuse of
        // Fig. 11 — through the dispatched multi-filter kernel.
        if (hi > lo) {
            const float* shifted[9];
            for (int e = 0; e < live; ++e)
                shifted[e] = rows[e] + lo;
            float* orow_ptrs[16];
            PATDNN_CHECK_LE(count, 16, "multi-filter bundle limited to 16");
            for (int f = 0; f < count; ++f)
                orow_ptrs[f] = outs[f] + y * g.ow + lo;
            simd.accum_rows_multi(shifted, live, live_map, weights, orow_ptrs,
                                  count, hi - lo);
        }
    }
}

}  // namespace patdnn
