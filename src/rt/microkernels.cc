#include "rt/microkernels.h"

#include <algorithm>

#include "util/logging.h"

namespace patdnn {

PatternKernel
lowerPattern(const Pattern& p)
{
    PatternKernel pk;
    pk.mask = p.mask();
    auto kept = p.keptPositions();
    PATDNN_CHECK_LE(kept.size(), 9u, "pattern entries limited to 9");
    pk.entries = static_cast<int>(kept.size());
    for (size_t i = 0; i < kept.size(); ++i) {
        pk.dy[i] = static_cast<int32_t>(kept[i] / p.kw());
        pk.dx[i] = static_cast<int32_t>(kept[i] % p.kw());
    }
    return pk;
}

namespace {

/**
 * Interior x-range of an output row where every entry's input column is
 * in bounds (stride 1): [max_e(pad - dx_e), min_e(w + pad - dx_e)).
 */
void
interiorRange(const PatternKernel& pk, int64_t w, int64_t pad, int64_t x0, int64_t x1,
              int64_t& lo, int64_t& hi)
{
    lo = x0;
    hi = x1;
    for (int e = 0; e < pk.entries; ++e) {
        lo = std::max<int64_t>(lo, pad - pk.dx[e]);
        hi = std::min<int64_t>(hi, w + pad - pk.dx[e]);
    }
    if (hi < lo)
        hi = lo;
}

/** Fully guarded accumulation for one output element (border path). */
inline float
guardedDot(const PatternKernel& pk, const float* weights, const float* in, int64_t h,
           int64_t w, int64_t pad, int64_t stride, int64_t y, int64_t x)
{
    float acc = 0.0f;
    for (int e = 0; e < pk.entries; ++e) {
        int64_t iy = y * stride - pad + pk.dy[e];
        int64_t ix = x * stride - pad + pk.dx[e];
        if (iy >= 0 && iy < h && ix >= 0 && ix < w)
            acc += weights[e] * in[iy * w + ix];
    }
    return acc;
}

}  // namespace

__attribute__((noinline)) float
guardedPatternDot(const PatternKernel& pk, const float* weights, const float* in,
                  const PlaneGeom& g, int64_t y, int64_t x)
{
    return guardedDot(pk, weights, in, g.h, g.w, g.pad, g.stride, y, x);
}

void
kernelAccumulateLre(const PatternKernel& pk, const float* weights, const float* in,
                    float* out, const PlaneGeom& g, int unroll_w)
{
    if (g.stride != 1) {
        // Generic strided path (guarded, single pass).
        for (int64_t y = g.y0; y < g.y1; ++y) {
            float* orow = out + y * g.ow;
            for (int64_t x = g.x0; x < g.x1; ++x)
                orow[x] += guardedDot(pk, weights, in, g.h, g.w, g.pad, g.stride, y, x);
        }
        return;
    }
    const int uw = std::max(1, unroll_w);
    for (int64_t y = g.y0; y < g.y1; ++y) {
        // Row validity per entry and hoisted input-row pointers: the
        // "statically determined data access" of the generated code.
        const float* rows[9];
        int live = 0;
        float wv[9];
        for (int e = 0; e < pk.entries; ++e) {
            int64_t iy = y - g.pad + pk.dy[e];
            if (iy < 0 || iy >= g.h)
                continue;
            rows[live] = in + iy * g.w + pk.dx[e] - g.pad;
            wv[live] = weights[e];
            ++live;
        }
        float* orow = out + y * g.ow;
        if (live == 0)
            continue;
        int64_t lo, hi;
        interiorRange(pk, g.w, g.pad, g.x0, g.x1, lo, hi);
        // Left border (guarded).
        for (int64_t x = g.x0; x < lo; ++x)
            orow[x] += guardedDot(pk, weights, in, g.h, g.w, g.pad, 1, y, x);
        // Interior: single pass, register accumulators. The 4-entry
        // case (every pattern row in bounds) is the hot path and gets
        // a fully unrolled loop the compiler can vectorize.
        int64_t x = lo;
        if (live == 4) {
            const float* r0 = rows[0];
            const float* r1 = rows[1];
            const float* r2 = rows[2];
            const float* r3 = rows[3];
            float w0 = wv[0], w1 = wv[1], w2 = wv[2], w3 = wv[3];
            for (; x < hi; ++x)
                orow[x] += w0 * r0[x] + w1 * r1[x] + w2 * r2[x] + w3 * r3[x];
        } else {
            for (; x + uw <= hi; x += uw) {
                for (int u = 0; u < uw; ++u) {
                    float acc = orow[x + u];
                    for (int e = 0; e < live; ++e)
                        acc += wv[e] * rows[e][x + u];
                    orow[x + u] = acc;
                }
            }
            for (; x < hi; ++x) {
                float acc = orow[x];
                for (int e = 0; e < live; ++e)
                    acc += wv[e] * rows[e][x];
                orow[x] = acc;
            }
        }
        // Right border (guarded).
        for (x = std::max(lo, hi); x < g.x1; ++x)
            orow[x] += guardedDot(pk, weights, in, g.h, g.w, g.pad, 1, y, x);
    }
}

void
kernelAccumulateNoLre(const PatternKernel& pk, const float* weights, const float* in,
                      float* out, const PlaneGeom& g)
{
    // One pass per entry: the output row is re-loaded and re-stored for
    // every entry and input rows are re-walked — the redundant register
    // loads LRE eliminates (Fig. 14b counts the difference).
    for (int e = 0; e < pk.entries; ++e) {
        float wv = weights[e];
        for (int64_t y = g.y0; y < g.y1; ++y) {
            int64_t iy = y * g.stride - g.pad + pk.dy[e];
            if (iy < 0 || iy >= g.h)
                continue;
            const float* irow = in + iy * g.w;
            float* orow = out + y * g.ow;
            for (int64_t x = g.x0; x < g.x1; ++x) {
                int64_t ix = x * g.stride - g.pad + pk.dx[e];
                if (ix < 0 || ix >= g.w)
                    continue;
                orow[x] += wv * irow[ix];
            }
        }
    }
}

void
kernelAccumulateMultiFilter(const PatternKernel& pk, const float* const* weights,
                            const float* in, float* const* outs, int count,
                            const PlaneGeom& g)
{
    if (g.stride != 1 || count == 1) {
        for (int f = 0; f < count; ++f)
            kernelAccumulateLre(pk, weights[f], in, outs[f], g, 4);
        return;
    }
    for (int64_t y = g.y0; y < g.y1; ++y) {
        const float* rows[9];
        int live = 0;
        int live_map[9];
        for (int e = 0; e < pk.entries; ++e) {
            int64_t iy = y - g.pad + pk.dy[e];
            if (iy < 0 || iy >= g.h)
                continue;
            rows[live] = in + iy * g.w + pk.dx[e] - g.pad;
            live_map[live] = e;
            ++live;
        }
        if (live == 0)
            continue;
        int64_t lo, hi;
        interiorRange(pk, g.w, g.pad, g.x0, g.x1, lo, hi);
        for (int f = 0; f < count; ++f) {
            float* orow = outs[f] + y * g.ow;
            for (int64_t x = g.x0; x < lo; ++x)
                orow[x] +=
                    guardedDot(pk, weights[f], in, g.h, g.w, g.pad, 1, y, x);
            for (int64_t x = std::max(lo, hi); x < g.x1; ++x)
                orow[x] +=
                    guardedDot(pk, weights[f], in, g.h, g.w, g.pad, 1, y, x);
        }
        // Interior: load the shared input values once per x, then fan
        // out to all filters — the filter-level reuse of Fig. 11. The
        // all-rows-live 4-entry case is unrolled for vectorization.
        if (live == 4) {
            const float* r0 = rows[0];
            const float* r1 = rows[1];
            const float* r2 = rows[2];
            const float* r3 = rows[3];
            for (int f = 0; f < count; ++f) {
                const float* wf = weights[f];
                float w0 = wf[live_map[0]], w1 = wf[live_map[1]];
                float w2 = wf[live_map[2]], w3 = wf[live_map[3]];
                float* orow = outs[f] + y * g.ow;
                for (int64_t x = lo; x < hi; ++x)
                    orow[x] += w0 * r0[x] + w1 * r1[x] + w2 * r2[x] + w3 * r3[x];
            }
        } else {
            for (int64_t x = lo; x < hi; ++x) {
                float iv[9];
                for (int e = 0; e < live; ++e)
                    iv[e] = rows[e][x];
                for (int f = 0; f < count; ++f) {
                    const float* wf = weights[f];
                    float acc = outs[f][y * g.ow + x];
                    for (int e = 0; e < live; ++e)
                        acc += wf[live_map[e]] * iv[e];
                    outs[f][y * g.ow + x] = acc;
                }
            }
        }
    }
}

}  // namespace patdnn
