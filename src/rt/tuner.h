/**
 * @file
 * Parameter auto-tuning (paper Section 5.5): a Genetic-Algorithm
 * explorer over the configuration space (data placement / tile sizes /
 * loop permutations / unroll factors) plus a learned performance
 * estimator (linear least-squares over configuration features, the
 * paper's "performance estimation model created from historical data")
 * that warm-starts tuning on a new platform.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "rt/lr.h"
#include "rt/simd/dispatch.h"
#include "util/rng.h"

namespace patdnn {

/** The discrete configuration space the GA explores. */
struct TuneSpace
{
    std::vector<int64_t> tile_oh = {4, 8, 16, 32};
    std::vector<int64_t> tile_ow = {32, 64, 128};
    std::vector<int> unroll_w = {2, 4, 8};
    std::vector<int> unroll_oc = {1, 2, 4, 8};
    std::vector<int> filters_per_task = {2, 4, 8, 16};
    std::vector<LoopPermutation> permutations = {LoopPermutation::kCoCiHW,
                                                 LoopPermutation::kCoHWCi};
    std::vector<bool> blocked = {false, true};
};

/**
 * Search space specialized to the kernel ISA the layer will execute
 * with: register-block widths are multiples of the vector width and
 * column tiles scale with it, so tuned TuneParams are meaningful for
 * the kernels that will actually run (and an artifact records which
 * ISA its parameters were searched on — serve/artifact.h).
 */
TuneSpace tuneSpaceFor(SimdIsa isa);

/** GA knobs. */
struct TunerConfig
{
    int population = 12;
    int generations = 4;
    double mutation_rate = 0.25;
    int measure_reps = 2;     ///< Timed runs per fitness evaluation.
    uint64_t seed = 99;
};

/** One explored configuration with its measured cost. */
struct TuneRecord
{
    TuneParams params;
    double time_ms = 0.0;
};

/** Result of a tuning run. */
struct TuneResult
{
    TuneParams best;
    double best_ms = 0.0;
    std::vector<TuneRecord> history;  ///< All evaluated points.
    int evaluations = 0;
};

/**
 * Tune a layer: `measure` runs the layer under the given params and
 * returns median time in ms. The GA initializes an arbitrary number of
 * chromosomes (paper: better parallelism than simulated annealing),
 * evolves with tournament selection, uniform crossover and point
 * mutation, and returns the best configuration found.
 */
TuneResult tuneLayer(const std::function<double(const TuneParams&)>& measure,
                     const TuneSpace& space = {}, const TunerConfig& cfg = {});

/**
 * Performance estimator trained on tuning history: ridge-regularized
 * least squares over configuration features. Predicts time for unseen
 * configurations so a new platform can start from a good guess.
 */
class PerfEstimator
{
  public:
    /** Fit from records (needs >= 4 points). */
    void fit(const std::vector<TuneRecord>& history);

    /** Predict time (ms) for a configuration. */
    double predict(const TuneParams& params) const;

    bool trained() const { return trained_; }

    /** Best configuration in `space` according to the model. */
    TuneParams argminOver(const TuneSpace& space) const;

  private:
    static std::vector<double> features(const TuneParams& p);
    std::vector<double> coef_;
    bool trained_ = false;
};

}  // namespace patdnn
