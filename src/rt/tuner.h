/**
 * @file
 * Parameter auto-tuning (paper Section 5.5): a Genetic-Algorithm
 * explorer over the configuration space (data placement / tile sizes /
 * loop permutations / unroll factors) plus a learned performance
 * estimator (linear least-squares over configuration features, the
 * paper's "performance estimation model created from historical data")
 * that warm-starts tuning on a new platform.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "rt/device.h"
#include "rt/lr.h"
#include "rt/simd/dispatch.h"
#include "util/rng.h"

namespace patdnn {

/** The discrete configuration space the GA explores. */
struct TuneSpace
{
    std::vector<int64_t> tile_oh = {4, 8, 16, 32};
    std::vector<int64_t> tile_ow = {32, 64, 128};
    std::vector<int> unroll_w = {2, 4, 8};
    std::vector<int> unroll_oc = {1, 2, 4, 8};
    std::vector<int> filters_per_task = {2, 4, 8, 16};
    std::vector<LoopPermutation> permutations = {LoopPermutation::kCoCiHW,
                                                 LoopPermutation::kCoHWCi};
    std::vector<bool> blocked = {false, true};
    // Dense packed-GEMM cache blocking (rt/gemm_packed.h); 0 = the
    // budget-derived heuristic stays in the running as a candidate.
    std::vector<int64_t> gemm_kc = {0, 64, 128, 256};
    std::vector<int64_t> gemm_nc = {0, 32, 64, 128};
};

/**
 * Search space specialized to the kernel ISA the layer will execute
 * with: register-block widths are multiples of the vector width and
 * column tiles scale with it, so tuned TuneParams are meaningful for
 * the kernels that will actually run (and an artifact records which
 * ISA its parameters were searched on — serve/artifact.h).
 */
TuneSpace tuneSpaceFor(SimdIsa isa);

/** GA knobs. */
struct TunerConfig
{
    int population = 12;
    int generations = 4;
    double mutation_rate = 0.25;
    int measure_reps = 2;     ///< Timed runs per fitness evaluation.
    uint64_t seed = 99;

    /**
     * Evaluate each batch of candidates (initial population, then each
     * generation's children) in parallel on this pool instead of
     * serially. Candidate *selection* is unchanged — every generation's
     * children are bred from the previous generation only, so the RNG
     * sequence and the explored configurations are identical to the
     * serial schedule, and history keeps its deterministic order.
     * Requirements: `measure` must be thread-safe, and the pool must
     * not be one `measure` itself forks on (ThreadPool fork-joins are
     * not reentrant). Measured times gain cross-candidate contention
     * noise; with a deterministic measure, results are bit-identical
     * to serial.
     */
    ThreadPool* eval_pool = nullptr;
};

/** One explored configuration with its measured cost. */
struct TuneRecord
{
    TuneParams params;
    double time_ms = 0.0;
};

/** Result of a tuning run. */
struct TuneResult
{
    TuneParams best;
    double best_ms = 0.0;
    std::vector<TuneRecord> history;  ///< All evaluated points.
    int evaluations = 0;
};

/**
 * Tune a layer: `measure` runs the layer under the given params and
 * returns median time in ms. The GA initializes an arbitrary number of
 * chromosomes (paper: better parallelism than simulated annealing),
 * evolves with tournament selection, uniform crossover and point
 * mutation, and returns the best configuration found.
 */
TuneResult tuneLayer(const std::function<double(const TuneParams&)>& measure,
                     const TuneSpace& space = {}, const TunerConfig& cfg = {});

/**
 * Process-wide cache of tuned parameters keyed by (layer geometry,
 * resolved kernel ISA, device fingerprint, connectivity rate). Tuned
 * widths do not depend on the weight *values*, but they do depend on
 * everything that shapes the measured runtime: the layer geometry, the
 * kernel vector width, the device's pool width / scheduling model /
 * tile budget, and the sparsity the GA measured (connectivity rate
 * fixes the FKW density). All of that is in the key, so once the GA
 * has tuned one configuration, every later compileLayer /
 * Compiler::compile over the same configuration reuses the result and
 * skips the search — and a different device or pruning rate never
 * silently inherits a foreign tuning. Thread-safe; the hit counter
 * backs tests and cache-efficacy logging.
 */
class TuneCache
{
  public:
    /** The process cache (the auto-tune paths all share one). */
    static TuneCache& instance();

    /** True + *params filled on a hit for (desc geometry, device,
     * connectivity). The device's ISA is resolved to what would
     * actually execute. */
    bool lookup(const ConvDesc& desc, const DeviceSpec& device,
                double connectivity_rate, TuneParams* params) const;

    /** Record the GA's best; later inserts for the same key overwrite
     * (newest tuning wins). */
    void insert(const ConvDesc& desc, const DeviceSpec& device,
                double connectivity_rate, const TuneParams& params);

    size_t size() const;
    int64_t hits() const;

    /** Drop every entry and reset the hit counter (tests). */
    void clear();

  private:
    /** Geometry + device + sparsity key; the layer name is
     * deliberately excluded so identically-shaped layers share one
     * tuning. */
    static std::string key(const ConvDesc& desc, const DeviceSpec& device,
                           double connectivity_rate);

    mutable std::mutex mutex_;
    std::map<std::string, TuneParams> entries_;
    mutable int64_t hits_ = 0;
};

/**
 * Performance estimator trained on tuning history: ridge-regularized
 * least squares over configuration features. Predicts time for unseen
 * configurations so a new platform can start from a good guess.
 */
class PerfEstimator
{
  public:
    /** Fit from records (needs >= 4 points). */
    void fit(const std::vector<TuneRecord>& history);

    /** Predict time (ms) for a configuration. */
    double predict(const TuneParams& params) const;

    bool trained() const { return trained_; }

    /** Best configuration in `space` according to the model. */
    TuneParams argminOver(const TuneSpace& space) const;

  private:
    static std::vector<double> features(const TuneParams& p);
    std::vector<double> coef_;
    bool trained_ = false;
};

}  // namespace patdnn
