/**
 * @file
 * Layerwise Representation (LR), paper Section 5.1 / Fig. 8.
 *
 * The LR is the high-level, sparsity-aware description of one layer
 * that the execution-code-generation stage consumes: which pattern
 * types are present, how the weights are stored (FKW), and the
 * tuning-decided parameters (tile sizes, unroll factors, the loop
 * permutation). The pattern engine is configured entirely from an LR,
 * and the auto-tuner's job is to fill in its `tuning` block.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/conv_desc.h"

namespace patdnn {

/** Computation loop permutations explored by tuning (Fig. 15). */
enum class LoopPermutation
{
    kCoCiHW,  ///< filter -> kernel -> spatial (weight-stationary).
    kCoHWCi,  ///< filter -> spatial tile -> kernel (input-stationary).
};

/** Permutation display name ("cohwci_b"-style as in Fig. 8). */
std::string permutationName(LoopPermutation p, bool blocked);

/** Tuning-decided execution parameters of one layer. */
struct TuneParams
{
    LoopPermutation permute = LoopPermutation::kCoHWCi;
    bool blocked = true;      ///< Spatial tiling on/off.
    int64_t tile_oh = 16;     ///< Output-row tile (when blocked).
    int64_t tile_ow = 64;     ///< Output-col tile (when blocked).
    int unroll_w = 8;         ///< Register-blocked outputs per x step.
    int unroll_oc = 4;        ///< Filter-level unrolling for LRE.
    int filters_per_task = 8; ///< Scheduling granularity.

    // Dense packed-GEMM cache blocking (rt/gemm_packed.h). 0 = derive
    // from the ISA tile footprint and the device tile budget; the
    // auto-tuner searches concrete values per layer.
    int64_t gemm_kc = 0;      ///< K elements per GEMM block.
    int64_t gemm_nc = 0;      ///< N columns per GEMM block.
};

/** Optimization switches (the Fig. 13 ablation axes). */
struct OptSwitches
{
    bool reorder = true;  ///< FKR applied.
    bool lre = true;      ///< Register-level load redundancy elimination.
    bool tuned = true;    ///< TuneParams from auto-tuner (vs defaults).
};

/** The LR: everything needed to generate execution code for a layer. */
struct LayerwiseRep
{
    std::string device = "CPU";
    std::string storage = "tight";  ///< FKW compact storage.
    ConvDesc conv;
    std::vector<int> pattern_types;  ///< Pattern ids present.
    std::string layout = "FKW";
    TuneParams tuning;
    OptSwitches opts;

    /** Render in the Fig. 8 YAML-like style. */
    std::string str() const;
};

}  // namespace patdnn
