/**
 * @file
 * Pattern-specialized micro-kernels: this repo's equivalent of PatDNN's
 * generated code (Section 5.4).
 *
 * The real system emits one straight-line code block per kernel pattern
 * with all data-access instructions statically determined. Here each
 * pattern is "compiled" once into a PatternKernel — its kept positions
 * resolved to (dy, dx) offsets — and executed by fixed-arity unrolled
 * loops with no per-weight indirection, the branch-free property FKR
 * guarantees. Two variants exist per kernel:
 *
 *  - the LRE variant: one pass per kernel over the output tile with a
 *    register accumulator (output loaded/stored once; the unrolled
 *    entry group reuses the input rows held in registers), plus a
 *    filter-level variant that computes `unroll_oc` filters sharing a
 *    (pattern, input channel) on one set of input loads (Fig. 11);
 *  - the no-LRE variant: one pass per entry, reloading output and
 *    input each time — the redundant-load behaviour LRE removes.
 *
 * The LRE variants execute their stride-1 interior through a SimdOps
 * kernel table (rt/simd/dispatch.h) — AVX2/NEON when available, the
 * bit-identical scalar table otherwise. The no-LRE variant is
 * deliberately left scalar: it models the unoptimized baseline.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "prune/pattern.h"
#include "rt/simd/dispatch.h"

namespace patdnn {

/** A pattern lowered to static offsets ("generated code" metadata). */
struct PatternKernel
{
    int entries = 0;
    int32_t dy[9] = {0};   ///< Row offset per kept entry.
    int32_t dx[9] = {0};   ///< Col offset per kept entry.
    uint32_t mask = 0;
};

/** Lower a pattern to its static-offset form. */
PatternKernel lowerPattern(const Pattern& p);

/** Geometry handed to the micro-kernels (one input/output plane). */
struct PlaneGeom
{
    int64_t h = 0, w = 0;    ///< Input plane size.
    int64_t oh = 0, ow = 0;  ///< Output plane size.
    int64_t pad = 0;
    int64_t stride = 1;
    int64_t y0 = 0, y1 = 0;  ///< Output-row tile [y0, y1).
    int64_t x0 = 0, x1 = 0;  ///< Output-col tile [x0, x1).
};

/**
 * LRE micro-kernel: out[y][x] += sum_e w[e] * in[y*s-pad+dy[e]][...] for
 * the tile, single pass, `unroll_w`-wide register blocking on the
 * stride-1 interior fast path. The interior runs through `ops`
 * (a SimdOps kernel table; null = the process-best table), with the
 * per-pattern dy/dx offsets pre-folded into hoisted row pointers so the
 * vector kernels only broadcast weights and stream columns. Borders and
 * strided tiles keep the guarded scalar path.
 */
void kernelAccumulateLre(const PatternKernel& pk, const float* weights,
                         const float* in, float* out, const PlaneGeom& g,
                         int unroll_w, const SimdOps* ops = nullptr);

/**
 * No-LRE micro-kernel: one full pass over the tile per entry (output
 * re-loaded and re-stored per entry; input rows re-traversed per entry).
 */
void kernelAccumulateNoLre(const PatternKernel& pk, const float* weights,
                           const float* in, float* out, const PlaneGeom& g);

/**
 * Filter-level LRE micro-kernel (Fig. 11 right): `count` filters share
 * this (pattern, input channel); input values are loaded once and
 * accumulated into every filter's output plane. `weights[f]` points at
 * the f-th filter's packed kernel weights and `outs[f]` at its output
 * plane. Interior columns go through `ops->accum_rows_multi` (input
 * rows loaded once per vector, fanned out to every filter).
 */
void kernelAccumulateMultiFilter(const PatternKernel& pk,
                                 const float* const* weights, const float* in,
                                 float* const* outs, int count,
                                 const PlaneGeom& g, const SimdOps* ops = nullptr);

/**
 * One guarded output element: sum over the pattern's entries with full
 * bounds checks. Deliberately not inlined: the No-opt execution mode
 * calls it per (pixel, kernel), reproducing the per-kernel dispatch
 * and heavy control flow of the unoptimized code in Fig. 7 that FKR
 * exists to eliminate.
 */
float guardedPatternDot(const PatternKernel& pk, const float* weights,
                        const float* in, const PlaneGeom& g, int64_t y, int64_t x);

}  // namespace patdnn
