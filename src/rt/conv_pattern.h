/**
 * @file
 * The PatDNN pattern-based sparse convolution engine (Section 5).
 *
 * Consumes FKW-stored weights plus an LR and executes the branch-free
 * code structure of Fig. 7: filters are visited in FKR order, each
 * filter's kernels are processed one pattern segment at a time through
 * pattern-specialized micro-kernels, with register-level LRE and
 * tuning-decided tiling/permutation. The ablation switches reproduce
 * the paper's No-opt / +Reorder / +LRE / +Tune progression (Fig. 13).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "nn/conv_desc.h"
#include "rt/conv_ref.h"
#include "rt/device.h"
#include "rt/lr.h"
#include "rt/microkernels.h"
#include "sparse/fkw.h"

namespace patdnn {

/** One scheduled accumulation: a kernel or a multi-filter bundle. */
struct PatternOp
{
    int32_t filter_begin = 0;  ///< First reordered filter position.
    int32_t filter_count = 1;  ///< >1 for filter-level LRE bundles.
    int32_t pattern_id = 0;
    int32_t input_channel = 0;
    /// Global kernel index (into fkw.weights / entries) per bundled
    /// kernel, parallel to filter_pos.
    std::vector<int32_t> kernel_index;
    /// Reordered filter position per bundled kernel (bundles group by
    /// (input channel, pattern), so members need not be adjacent).
    std::vector<int32_t> filter_pos;
};

/** A schedulable unit: contiguous filters of one FKR group. */
struct WorkItem
{
    int32_t filter_begin = 0;
    int32_t filter_end = 0;
    std::vector<PatternOp> ops;
    int64_t macs = 0;  ///< For load-balance accounting.
};

/** Prepared execution plan (also consumed by the load analyzer). */
struct PatternPlan
{
    std::vector<PatternKernel> lowered;  ///< Per pattern id.
    std::vector<WorkItem> items;
    int entries = 4;
};

/** FKW + LR -> executable plan. */
PatternPlan preparePatternPlan(const FkwLayer& fkw, const LayerwiseRep& lr,
                               const DeviceSpec& device);

/** The pattern-based executor. */
class PatternConv
{
  public:
    /**
     * Build from packed weights and an LR. The FkwLayer must outlive
     * the executor (it borrows the weight/index arrays).
     */
    PatternConv(ConvDesc desc, const FkwLayer* fkw, LayerwiseRep lr,
                DeviceSpec device);

    void run(const Tensor& in, Tensor& out, const Epilogue& ep = {}) const;

    const PatternPlan& plan() const { return plan_; }
    const LayerwiseRep& lr() const { return lr_; }

    /** Kernel table this executor dispatches to (device ISA, resolved). */
    const SimdOps& simdOps() const { return *ops_; }

  private:
    void runItem(const WorkItem& item, const float* in, float* out,
                 int64_t b) const;

    ConvDesc desc_;
    const FkwLayer* fkw_;
    LayerwiseRep lr_;
    DeviceSpec device_;
    PatternPlan plan_;
    const SimdOps* ops_;  ///< Resolved once from device_.simd_isa.
};

}  // namespace patdnn
