#include "rt/conv_ref.h"

#include "util/logging.h"

namespace patdnn {

Tensor
makeConvOutput(const ConvDesc& d, int64_t batch)
{
    return Tensor(Shape{batch, d.cout, d.outH(), d.outW()});
}

void
convReference(const ConvDesc& d, const Tensor& weight, const Tensor& in, Tensor& out,
              const Epilogue& ep)
{
    int64_t n = in.shape().dim(0);
    int64_t oh = d.outH(), ow = d.outW();
    PATDNN_CHECK(out.shape() == Shape({n, d.cout, oh, ow}), "output shape");
    int64_t cpg = d.cinPerGroup();
    int64_t opg = d.coutPerGroup();
    for (int64_t b = 0; b < n; ++b) {
        for (int64_t oc = 0; oc < d.cout; ++oc) {
            int64_t g = oc / opg;
            const float* wbase = weight.data() + oc * cpg * d.kh * d.kw;
            float bias = ep.bias != nullptr ? (*ep.bias)[oc] : 0.0f;
            for (int64_t y = 0; y < oh; ++y) {
                for (int64_t x = 0; x < ow; ++x) {
                    double acc = bias;
                    for (int64_t ic = 0; ic < cpg; ++ic) {
                        int64_t in_c = g * cpg + ic;
                        const float* iptr =
                            in.data() + ((b * d.cin + in_c) * d.h) * d.w;
                        const float* wk = wbase + ic * d.kh * d.kw;
                        for (int64_t r = 0; r < d.kh; ++r) {
                            int64_t iy = y * d.stride - d.pad + r * d.dilation;
                            if (iy < 0 || iy >= d.h)
                                continue;
                            for (int64_t c = 0; c < d.kw; ++c) {
                                int64_t ix = x * d.stride - d.pad + c * d.dilation;
                                if (ix < 0 || ix >= d.w)
                                    continue;
                                acc += static_cast<double>(wk[r * d.kw + c]) *
                                       iptr[iy * d.w + ix];
                            }
                        }
                    }
                    float v = static_cast<float>(acc);
                    if (ep.relu && v < 0.0f)
                        v = 0.0f;
                    out.at4(b, oc, y, x) = v;
                }
            }
        }
    }
}

}  // namespace patdnn
