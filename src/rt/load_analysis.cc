#include "rt/load_analysis.h"

namespace patdnn {

LoadCounts
analyzeLoads(const ConvDesc& desc, const FkwLayer& fkw, const LayerwiseRep& lr,
             const DeviceSpec& device)
{
    LoadCounts counts;
    PatternPlan plan = preparePatternPlan(fkw, lr, device);
    int64_t oh = desc.outH();
    int64_t ow = desc.outW();
    int64_t pixels = oh * ow;
    int entries = plan.entries;

    for (const auto& item : plan.items) {
        for (const auto& op : item.ops) {
            int64_t fc = op.filter_count;
            if (lr.opts.lre) {
                // One pass per op: each output element of each filter in
                // the bundle is loaded once; input values are loaded
                // once per x position (shared across the bundle);
                // weights are loaded once per op into registers.
                counts.output_loads += fc * pixels;
                counts.input_loads += static_cast<int64_t>(entries) * pixels;
                counts.weight_loads += fc * entries;
            } else {
                // One pass per entry: output re-loaded per entry; input
                // loaded per (entry, pixel) for every filter separately;
                // weight re-loaded per pass.
                counts.output_loads += fc * pixels * entries;
                counts.input_loads += fc * pixels * entries;
                counts.weight_loads += fc * entries;
            }
        }
    }
    return counts;
}

}  // namespace patdnn
