/**
 * @file
 * Execution device abstraction.
 *
 * The paper runs on Snapdragon 855/845 and Kirin 980 CPUs and their
 * GPUs. This repo substitutes host-CPU execution behind a DeviceSpec
 * that carries the scheduling-relevant properties of each target:
 * worker count, a GPU-like flag (filter groups scheduled as indivisible
 * "thread blocks", making load balance matter more — the Fig. 13
 * observation), and a cache tile budget. See docs/ARCHITECTURE.md,
 * "Substitutions".
 */
#pragma once

#include <memory>
#include <string>

#include "rt/simd/dispatch.h"
#include "util/thread_pool.h"

namespace patdnn {

/** A simulated execution target. */
struct DeviceSpec
{
    std::string name = "host-cpu";
    int threads = 8;         ///< Worker count (paper uses 8 CPU threads).
    bool gpu_like = false;   ///< Schedule groups as thread blocks.
    int64_t tile_budget_kb = 32;  ///< L1-resident working-set budget.

    /**
     * Kernel ISA executors on this device use, defaulting to the best
     * the process supports. Overridable per spec (tests force kScalar;
     * tools/verify.sh --simd-off builds without vector tables at all);
     * an unavailable value silently degrades to scalar at resolve time.
     */
    SimdIsa simd_isa = detectSimdIsa();

    /** Active-ISA display name ("scalar"/"avx2"/"neon"). */
    const char* simdName() const { return isaName(resolveSimdOps(simd_isa).isa); }

    /** Lazily created pool shared by every executor on this device. */
    ThreadPool& pool() const;

  private:
    mutable std::shared_ptr<ThreadPool> pool_;
};

/** Snapdragon-855-class CPU stand-in (the paper's primary platform).
 * The pool width is clamped to the host's hardware concurrency. */
DeviceSpec makeCpuDevice(int threads = 8);

/**
 * CPU device whose pool width is taken verbatim — NOT clamped to
 * std::thread::hardware_concurrency(). Analytic models (load counts,
 * per-thread balance) and committed bench baselines must describe the
 * *target* width, not whatever core count the current CI cell happens
 * to have; serving tests likewise pin their width so single-core
 * runners exercise the same schedules. Oversubscription is fine for
 * both uses (the pool is just threads).
 */
DeviceSpec makeFixedWidthCpuDevice(int threads);

/** Adreno-640-class GPU stand-in: max parallelism, block scheduling. */
DeviceSpec makeGpuDevice();

/** Portability presets for Fig. 18 (differ in threads + tile budget). */
DeviceSpec makeSnapdragon855();
DeviceSpec makeSnapdragon845();
DeviceSpec makeKirin980();

}  // namespace patdnn
