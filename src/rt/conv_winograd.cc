#include "rt/conv_winograd.h"

#include <algorithm>

#include "util/logging.h"

namespace patdnn {
namespace {

/**
 * Filter transform U = G g G^T for F(2x2,3x3):
 *   G = [[1, 0, 0], [1/2, 1/2, 1/2], [1/2, -1/2, 1/2], [0, 0, 1]].
 */
void
transformFilter(const float* g, float* u)
{
    float t[4][3];
    for (int c = 0; c < 3; ++c) {
        float g0 = g[0 * 3 + c], g1 = g[1 * 3 + c], g2 = g[2 * 3 + c];
        t[0][c] = g0;
        t[1][c] = 0.5f * (g0 + g1 + g2);
        t[2][c] = 0.5f * (g0 - g1 + g2);
        t[3][c] = g2;
    }
    for (int r = 0; r < 4; ++r) {
        float g0 = t[r][0], g1 = t[r][1], g2 = t[r][2];
        u[r * 4 + 0] = g0;
        u[r * 4 + 1] = 0.5f * (g0 + g1 + g2);
        u[r * 4 + 2] = 0.5f * (g0 - g1 + g2);
        u[r * 4 + 3] = g2;
    }
}

/** Input transform V = B^T d B with B^T rows [1,0,-1,0],[0,1,1,0],[0,-1,1,0],[0,1,0,-1]. */
void
transformInput(const float d[4][4], float v[16])
{
    float t[4][4];
    for (int c = 0; c < 4; ++c) {
        t[0][c] = d[0][c] - d[2][c];
        t[1][c] = d[1][c] + d[2][c];
        t[2][c] = d[2][c] - d[1][c];
        t[3][c] = d[1][c] - d[3][c];
    }
    for (int r = 0; r < 4; ++r) {
        v[r * 4 + 0] = t[r][0] - t[r][2];
        v[r * 4 + 1] = t[r][1] + t[r][2];
        v[r * 4 + 2] = t[r][2] - t[r][1];
        v[r * 4 + 3] = t[r][1] - t[r][3];
    }
}

/** Output transform Y = A^T m A with A^T = [[1,1,1,0],[0,1,-1,-1]]. */
void
transformOutput(const float m[16], float y[4])
{
    float t[2][4];
    for (int c = 0; c < 4; ++c) {
        t[0][c] = m[0 * 4 + c] + m[1 * 4 + c] + m[2 * 4 + c];
        t[1][c] = m[1 * 4 + c] - m[2 * 4 + c] - m[3 * 4 + c];
    }
    y[0] = t[0][0] + t[0][1] + t[0][2];
    y[1] = t[0][1] - t[0][2] - t[0][3];
    y[2] = t[1][0] + t[1][1] + t[1][2];
    y[3] = t[1][1] - t[1][2] - t[1][3];
}

}  // namespace

WinogradConv::WinogradConv(ConvDesc desc, const Tensor* weight, DeviceSpec device,
                           TuneParams tuning)
    : desc_(std::move(desc)), weight_(weight), device_(std::move(device)),
      tuning_(tuning), ops_(&resolveSimdOps(device_.simd_isa))
{
    winograd_ok_ = desc_.kh == 3 && desc_.kw == 3 && desc_.stride == 1 &&
                   desc_.dilation == 1 && desc_.groups == 1;
    if (!winograd_ok_) {
        // Build the fallback once: it packs its filter matrix in its
        // constructor, which must not happen per run().
        fallback_ = std::make_unique<Im2colConv>(desc_, weight_, device_,
                                                 tuning_);
        return;
    }
    transformed_ = Tensor(Shape{16, desc_.cout, desc_.cin});
    for (int64_t oc = 0; oc < desc_.cout; ++oc) {
        for (int64_t ic = 0; ic < desc_.cin; ++ic) {
            float u[16];
            transformFilter(weight->data() + (oc * desc_.cin + ic) * 9, u);
            for (int t = 0; t < 16; ++t)
                transformed_[(static_cast<int64_t>(t) * desc_.cout + oc) *
                                 desc_.cin + ic] = u[t];
        }
    }
    // Pack the 16 transformed-filter matrices [cout x cin] as LHS tile
    // panels for the stage-2 GEMMs.
    int64_t tiles = ((desc_.outH() + 1) / 2) * ((desc_.outW() + 1) / 2);
    blocking_ = gemmBlockingFor(*ops_, desc_.cin, tiles,
                                device_.tile_budget_kb, tuning_.gemm_kc,
                                tuning_.gemm_nc);
    int64_t per_t = packedLhsElems(desc_.cout, desc_.cin, ops_->gemm_mr);
    packed_u_ = Tensor(Shape{16 * per_t});
    for (int t = 0; t < 16; ++t)
        packLhsTiles(transformed_.data() + static_cast<int64_t>(t) *
                         desc_.cout * desc_.cin,
                     desc_.cout, desc_.cin, desc_.cin, ops_->gemm_mr,
                     packed_u_.data() + t * per_t);
}

void
WinogradConv::run(const Tensor& in, Tensor& out, const Epilogue& ep) const
{
    if (!winograd_ok_) {
        fallback_->run(in, out, ep);
        return;
    }
    runWinograd(in, out, ep);
}

void
WinogradConv::runWinograd(const Tensor& in, Tensor& out, const Epilogue& ep) const
{
    const ConvDesc& d = desc_;
    int64_t n = in.shape().dim(0);
    int64_t oh = d.outH(), ow = d.outW();
    int64_t tiles_y = (oh + 1) / 2;
    int64_t tiles_x = (ow + 1) / 2;
    int64_t tiles = tiles_y * tiles_x;

    for (int64_t b = 0; b < n; ++b) {
        // Stage 1: input transform for all tiles: V [16, cin, tiles].
        Tensor v(Shape{16, d.cin, tiles});
        device_.pool().parallelFor(d.cin, [&](int64_t ic) {
            const float* iptr = in.data() + ((b * d.cin + ic) * d.h) * d.w;
            for (int64_t ty = 0; ty < tiles_y; ++ty) {
                for (int64_t tx = 0; tx < tiles_x; ++tx) {
                    float patch[4][4];
                    for (int r = 0; r < 4; ++r) {
                        int64_t iy = ty * 2 - d.pad + r;
                        for (int c = 0; c < 4; ++c) {
                            int64_t ix = tx * 2 - d.pad + c;
                            patch[r][c] = (iy < 0 || iy >= d.h || ix < 0 || ix >= d.w)
                                              ? 0.0f
                                              : iptr[iy * d.w + ix];
                        }
                    }
                    float vt[16];
                    transformInput(patch, vt);
                    int64_t tile = ty * tiles_x + tx;
                    for (int t = 0; t < 16; ++t)
                        v[(static_cast<int64_t>(t) * d.cin + ic) * tiles + tile] = vt[t];
                }
            }
        });

        // Stage 2: 16 independent GEMMs M[t] = U[t] * V[t],
        // [cout x cin] * [cin x tiles], on the packed tile kernel.
        const SimdOps& ops = *ops_;
        const int mr = ops.gemm_mr;
        const int nr = ops.gemm_nr;
        int64_t lhs_tiles = (d.cout + mr - 1) / mr;
        int64_t rhs_tiles = (tiles + nr - 1) / nr;
        int64_t per_t_lhs = packedLhsElems(d.cout, d.cin, mr);
        int64_t per_t_rhs = packedRhsElems(d.cin, tiles, nr);
        Tensor packed_v(Shape{16 * per_t_rhs});
        device_.pool().parallelFor(16 * rhs_tiles, [&](int64_t job) {
            int64_t t = job / rhs_tiles;
            int64_t j = job % rhs_tiles;
            int64_t live = std::min<int64_t>(nr, tiles - j * nr);
            packRhsTiles(v.data() + t * d.cin * tiles + j * nr, d.cin, live,
                         tiles, nr,
                         packed_v.data() + t * per_t_rhs + j * d.cin * nr);
        });
        Tensor mbuf(Shape{16, d.cout, tiles});
        device_.pool().parallelFor(16 * lhs_tiles, [&](int64_t job) {
            int64_t t = job / lhs_tiles;
            int64_t i = job % lhs_tiles;
            float* mbase = mbuf.data() + t * d.cout * tiles;
            int64_t row1 = std::min<int64_t>((i + 1) * mr, d.cout);
            std::fill(mbase + i * mr * tiles, mbase + row1 * tiles, 0.0f);
            packedGemmRowTiles(ops, packed_u_.data() + t * per_t_lhs,
                               packed_v.data() + t * per_t_rhs, d.cout, d.cin,
                               tiles, mbase, tiles, i, i + 1, blocking_);
        });

        // Stage 3: output transform.
        device_.pool().parallelFor(d.cout, [&](int64_t oc) {
            float bias = ep.bias ? (*ep.bias)[oc] : 0.0f;
            float* optr = out.data() + ((b * d.cout + oc) * oh) * ow;
            for (int64_t ty = 0; ty < tiles_y; ++ty) {
                for (int64_t tx = 0; tx < tiles_x; ++tx) {
                    int64_t tile = ty * tiles_x + tx;
                    float m[16];
                    for (int t = 0; t < 16; ++t)
                        m[t] = mbuf[(static_cast<int64_t>(t) * d.cout + oc) * tiles +
                                    tile];
                    float y[4];
                    transformOutput(m, y);
                    for (int r = 0; r < 2; ++r) {
                        int64_t oy = ty * 2 + r;
                        if (oy >= oh)
                            continue;
                        for (int c = 0; c < 2; ++c) {
                            int64_t ox = tx * 2 + c;
                            if (ox >= ow)
                                continue;
                            float val = y[r * 2 + c] + bias;
                            if (ep.relu && val < 0.0f)
                                val = 0.0f;
                            optr[oy * ow + ox] = val;
                        }
                    }
                }
            }
        });
    }
}

}  // namespace patdnn
