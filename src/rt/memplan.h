/**
 * @file
 * Offline activation memory planning.
 *
 * A per-layer Workspace sizes a session by the SUM of every node's
 * output buffer; peak *live* memory is far smaller because most
 * intermediates die as soon as their single consumer has run. This
 * pass computes, for every value in a compiled layer graph, the
 * [first-def, last-use] interval in execution (node-id) order, then
 * packs the buffers into one arena with a greedy best-fit-by-size
 * allocator under interval-overlap constraints: two buffers may share
 * addresses iff their lifetimes are disjoint. The result — a
 * MemoryPlan of (offset, size) slots plus the arena extent — is
 * computed once at compile time, stored in v4 model artifacts, and
 * turns an InferenceSession into a single allocation of
 * arenaBytes(batch) instead of one malloc per layer (the FlexNN-style
 * "memory-planned execution" direction in ROADMAP.md).
 *
 * Units: everything is in float *elements per sample*. Every op in the
 * runtime keeps the batch as the leading dimension, so a buffer's
 * extent for batch N is exactly N x its per-sample extent, and scaling
 * every offset and size by the same N preserves both disjointness and
 * 64-byte alignment — one plan serves every batch size.
 *
 * Correctness of a plan is an aliasing property that ordinary unit
 * tests won't catch; see tests/memplan_test.cc (randomized-graph
 * properties) and tests/memplan_exec_test.cc (bit-exact differential
 * execution against per-layer workspaces, plus a NaN poison canary
 * over freed ranges).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/status.h"

namespace patdnn {

/**
 * Planner view of one compiled graph node: just liveness, producer
 * edges and the per-sample extent of its output value. Built from a
 * CompiledModel by CompiledModel::planNodes(); tests build these
 * directly for randomized graphs.
 */
struct PlanNode
{
    bool live = false;
    std::vector<int> inputs;      ///< Producer node ids; -1 = model input.
    int64_t elems_per_sample = 0; ///< Output extent for one sample.
};

/** One planned buffer: where it lives in the arena and when. */
struct PlanSlot
{
    bool planned = false;      ///< False for dead node slots.
    int64_t offset_elems = 0;  ///< Arena offset, multiple of alignElems().
    int64_t size_elems = 0;    ///< Per-sample extent.
    int def = -1;              ///< Producing node id (== slot index).
    int last_use = -1;         ///< Last consuming node id (output: node count).
};

/**
 * A single-arena allocation plan over a compiled layer graph. Empty()
 * plans mean "no plan" (planning disabled, pre-v4 artifact, or a graph
 * whose shapes could not be inferred) — sessions then fall back to the
 * per-layer Workspace.
 */
class MemoryPlan
{
  public:
    /// 16 floats = 64 bytes: matches Tensor's allocator alignment so
    /// arena views are as SIMD-friendly as owned tensors.
    static constexpr int64_t kDefaultAlignElems = 16;

    MemoryPlan() = default;
    MemoryPlan(std::vector<PlanSlot> slots, int64_t arena_elems,
               int64_t sum_elems, int64_t align_elems);

    bool empty() const { return slots_.empty(); }
    size_t slotCount() const { return slots_.size(); }
    const PlanSlot& slot(size_t id) const;
    const std::vector<PlanSlot>& slots() const { return slots_; }

    /** Arena extent for one sample (elements / bytes). */
    int64_t arenaElemsPerSample() const { return arena_elems_; }
    size_t arenaBytes(int64_t batch) const;

    /** What a per-layer Workspace would allocate (each buffer rounded
     * to the allocator's 64-byte granularity): the baseline the arena
     * is measured against. Always >= arenaElemsPerSample(). */
    int64_t sumElemsPerSample() const { return sum_elems_; }
    size_t sumBytes(int64_t batch) const;

    int64_t alignElems() const { return align_elems_; }

    /**
     * Full consistency check of this plan against the graph it claims
     * to cover: slot count and liveness match, sizes equal the node
     * extents, lifetimes equal a recomputed lifetime pass, offsets are
     * aligned and inside the arena, the arena never exceeds the
     * per-layer sum, and no two buffers with overlapping lifetimes
     * overlap in the arena. kInvalidArgument with a diagnostic on the
     * first violation. Artifact loading runs this before a restored
     * plan may back a session, so a corrupted plan record can never
     * alias live activations.
     */
    Status validateAgainst(const std::vector<PlanNode>& nodes,
                           int output_node) const;

  private:
    std::vector<PlanSlot> slots_;
    int64_t arena_elems_ = 0;
    int64_t sum_elems_ = 0;
    int64_t align_elems_ = kDefaultAlignElems;
};

/**
 * The lifetime-analysis pass alone: per-node [def, last_use] intervals
 * in execution order, with the output node's value kept live past the
 * final node (its slot is read after the run loop). Slots for dead
 * nodes have planned == false; offsets are left 0 (assigned by
 * planActivations()).
 */
std::vector<PlanSlot> computeLifetimes(const std::vector<PlanNode>& nodes,
                                       int output_node);

/**
 * Lifetime analysis + arena assignment. Deterministic for identical
 * inputs: buffers are placed largest-first (ties by node id) at the
 * best-fit aligned gap among the address ranges of lifetime-
 * overlapping, already-placed buffers. Freed ranges are reused as soon
 * as their owner's last consumer has run.
 */
MemoryPlan planActivations(const std::vector<PlanNode>& nodes, int output_node,
                           int64_t align_elems = MemoryPlan::kDefaultAlignElems);

}  // namespace patdnn
