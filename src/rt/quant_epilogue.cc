#include "rt/quant_epilogue.h"

#include "rt/simd/dispatch.h"

namespace patdnn {

void
requantRowToF32(const int32_t* acc, int64_t n, float scale, float bias,
                bool relu, float* out)
{
    if (relu) {
        for (int64_t i = 0; i < n; ++i) {
            float v = static_cast<float>(acc[i]) * scale + bias;
            out[i] = v > 0.0f ? v : 0.0f;
        }
        return;
    }
    for (int64_t i = 0; i < n; ++i)
        out[i] = static_cast<float>(acc[i]) * scale + bias;
}

void
requantRowToI8(const int32_t* acc, int64_t n, float scale, float bias,
               bool relu, float out_scale, int8_t* out)
{
    float inv = out_scale > 0.0f ? 1.0f / out_scale : 0.0f;
    for (int64_t i = 0; i < n; ++i) {
        float v = static_cast<float>(acc[i]) * scale + bias;
        if (relu && v < 0.0f)
            v = 0.0f;
        out[i] = quantizeValue(v, inv);
    }
}

void
quantizeRowToI8(const float* x, int64_t n, float scale, int8_t* out)
{
    // The portable entry: the scalar table's quantize_row_i8 is the
    // reference rounding (dispatch.h); the quantized conv run path
    // calls its per-ISA sibling directly with the same 1/scale.
    scalarSimdOps().quantize_row_i8(x, n, scale > 0.0f ? 1.0f / scale : 0.0f,
                                    out);
}

}  // namespace patdnn
