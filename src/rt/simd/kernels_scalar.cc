/**
 * @file
 * Portable scalar SimdOps table: the exactness reference every vector
 * table must match bit-for-bit (see dispatch.h). The accumulation
 * order here — output loaded once, entries added in index order —
 * defines the numerics of the whole pattern engine.
 */
#include "rt/simd/dispatch.h"

#include <algorithm>

namespace patdnn {
namespace {

void
accumRowsScalar(const float* const* rows, const float* w, int live, float* out,
                int64_t n, int unroll)
{
    const int uw = std::max(1, unroll);
    int64_t i = 0;
    // Register-blocked main loop: `uw` independent accumulators per
    // step (the tuner's unroll_w knob; the compiler maps them onto
    // whatever vector width the baseline target has).
    for (; i + uw <= n; i += uw) {
        for (int u = 0; u < uw; ++u) {
            float acc = out[i + u];
            for (int e = 0; e < live; ++e)
                acc += w[e] * rows[e][i + u];
            out[i + u] = acc;
        }
    }
    for (; i < n; ++i) {
        float acc = out[i];
        for (int e = 0; e < live; ++e)
            acc += w[e] * rows[e][i];
        out[i] = acc;
    }
}

void
accumRowsMultiScalar(const float* const* rows, int live, const int* wsel,
                     const float* const* w, float* const* outs, int count,
                     int64_t n)
{
    for (int64_t i = 0; i < n; ++i) {
        float iv[9];
        for (int e = 0; e < live; ++e)
            iv[e] = rows[e][i];
        for (int f = 0; f < count; ++f) {
            const float* wf = w[f];
            float acc = outs[f][i];
            for (int e = 0; e < live; ++e)
                acc += wf[wsel[e]] * iv[e];
            outs[f][i] = acc;
        }
    }
}

void
axpyScalar(float a, const float* x, float* y, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        y[i] += a * x[i];
}

void
reluScalar(float* y, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        y[i] = std::max(0.0f, y[i]);
}

// Packed-GEMM tile footprint. 4x4 keeps 16 independent accumulators
// live, which the baseline target maps onto whatever registers it has;
// correctness never depends on these numbers (see dispatch.h).
constexpr int kGemmMrScalar = 4;
constexpr int kGemmNrScalar = 4;

void
gemmTileScalar(const float* a_panel, const float* b_panel, float* c,
               int64_t ldc, int64_t kc, int mr, int nr)
{
    // The per-element k chain — load C once, add a*b in k order, store
    // once — is the numerics contract every vector tile kernel
    // reproduces lane for lane. The tile accumulators live in locals so
    // the k loop runs over registers, not memory.
    float acc[kGemmMrScalar][kGemmNrScalar];
    for (int m = 0; m < mr; ++m)
        for (int n = 0; n < nr; ++n)
            acc[m][n] = c[m * ldc + n];
    for (int64_t k = 0; k < kc; ++k) {
        const float* a = a_panel + k * kGemmMrScalar;
        const float* b = b_panel + k * kGemmNrScalar;
        for (int m = 0; m < mr; ++m) {
            float av = a[m];
            for (int n = 0; n < nr; ++n)
                acc[m][n] += av * b[n];
        }
    }
    for (int m = 0; m < mr; ++m)
        for (int n = 0; n < nr; ++n)
            c[m * ldc + n] = acc[m][n];
}

}  // namespace

const SimdOps&
scalarSimdOps()
{
    static const SimdOps ops = {SimdIsa::kScalar, "scalar", 1,
                                accumRowsScalar, accumRowsMultiScalar,
                                axpyScalar, reluScalar,
                                kGemmMrScalar, kGemmNrScalar, gemmTileScalar};
    return ops;
}

}  // namespace patdnn
