/**
 * @file
 * Portable scalar SimdOps table: the exactness reference every vector
 * table must match bit-for-bit (see dispatch.h). The accumulation
 * order here — output loaded once, entries added in index order —
 * defines the numerics of the whole pattern engine.
 */
#include "rt/simd/dispatch.h"

#include <algorithm>

namespace patdnn {
namespace {

void
accumRowsScalar(const float* const* rows, const float* w, int live, float* out,
                int64_t n, int unroll)
{
    const int uw = std::max(1, unroll);
    int64_t i = 0;
    // Register-blocked main loop: `uw` independent accumulators per
    // step (the tuner's unroll_w knob; the compiler maps them onto
    // whatever vector width the baseline target has).
    for (; i + uw <= n; i += uw) {
        for (int u = 0; u < uw; ++u) {
            float acc = out[i + u];
            for (int e = 0; e < live; ++e)
                acc += w[e] * rows[e][i + u];
            out[i + u] = acc;
        }
    }
    for (; i < n; ++i) {
        float acc = out[i];
        for (int e = 0; e < live; ++e)
            acc += w[e] * rows[e][i];
        out[i] = acc;
    }
}

void
accumRowsMultiScalar(const float* const* rows, int live, const int* wsel,
                     const float* const* w, float* const* outs, int count,
                     int64_t n)
{
    for (int64_t i = 0; i < n; ++i) {
        float iv[9];
        for (int e = 0; e < live; ++e)
            iv[e] = rows[e][i];
        for (int f = 0; f < count; ++f) {
            const float* wf = w[f];
            float acc = outs[f][i];
            for (int e = 0; e < live; ++e)
                acc += wf[wsel[e]] * iv[e];
            outs[f][i] = acc;
        }
    }
}

void
axpyScalar(float a, const float* x, float* y, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        y[i] += a * x[i];
}

void
reluScalar(float* y, int64_t n)
{
    for (int64_t i = 0; i < n; ++i)
        y[i] = std::max(0.0f, y[i]);
}

// Packed-GEMM tile footprint. 4x4 keeps 16 independent accumulators
// live, which the baseline target maps onto whatever registers it has;
// correctness never depends on these numbers (see dispatch.h).
constexpr int kGemmMrScalar = 4;
constexpr int kGemmNrScalar = 4;

void
gemmTileScalar(const float* a_panel, const float* b_panel, float* c,
               int64_t ldc, int64_t kc, int mr, int nr)
{
    // The per-element k chain — load C once, add a*b in k order, store
    // once — is the numerics contract every vector tile kernel
    // reproduces lane for lane. The tile accumulators live in locals so
    // the k loop runs over registers, not memory.
    float acc[kGemmMrScalar][kGemmNrScalar];
    for (int m = 0; m < mr; ++m)
        for (int n = 0; n < nr; ++n)
            acc[m][n] = c[m * ldc + n];
    for (int64_t k = 0; k < kc; ++k) {
        const float* a = a_panel + k * kGemmMrScalar;
        const float* b = b_panel + k * kGemmNrScalar;
        for (int m = 0; m < mr; ++m) {
            float av = a[m];
            for (int n = 0; n < nr; ++n)
                acc[m][n] += av * b[n];
        }
    }
    for (int m = 0; m < mr; ++m)
        for (int n = 0; n < nr; ++n)
            c[m * ldc + n] = acc[m][n];
}

// Int8 tile footprint: small and square — the scalar table is the
// conformance reference, not a speed play (see dispatch.h: integer
// accumulation is exact, so any footprint gives identical results).
constexpr int kGemmI8MrScalar = 4;
constexpr int kGemmI8NrScalar = 4;

void
gemmTileI8Scalar(const int16_t* a_panel, const int8_t* b_panel, int32_t* c,
                 int64_t ldc, int64_t kc, int mr, int nr)
{
    int32_t acc[kGemmI8MrScalar][kGemmI8NrScalar];
    for (int m = 0; m < mr; ++m)
        for (int n = 0; n < nr; ++n)
            acc[m][n] = c[m * ldc + n];
    int64_t kp = (kc + 1) / 2;  // Panels are k-pair interleaved.
    for (int64_t k = 0; k < kp; ++k) {
        const int16_t* a = a_panel + k * kGemmI8MrScalar * 2;
        const int8_t* b = b_panel + k * kGemmI8NrScalar * 2;
        for (int m = 0; m < mr; ++m) {
            int32_t a0 = a[m * 2];
            int32_t a1 = a[m * 2 + 1];
            for (int n = 0; n < nr; ++n)
                acc[m][n] += a0 * b[n * 2] + a1 * b[n * 2 + 1];
        }
    }
    for (int m = 0; m < mr; ++m)
        for (int n = 0; n < nr; ++n)
            c[m * ldc + n] = acc[m][n];
}

// The quantize_row_i8 reference: clamp-then-round restated branch-free
// so adding the sign-matched 0.5 and truncating toward zero is exactly
// round half away from zero (dispatch.h) — and so the compiler can
// vectorize the flat loop even at the baseline ISA.
void
quantizeRowI8Scalar(const float* x, int64_t n, float inv_scale, int8_t* out)
{
    for (int64_t i = 0; i < n; ++i) {
        float s = x[i] * inv_scale;
        s = s > 127.0f ? 127.0f : s;
        s = s < -127.0f ? -127.0f : s;
        s += s >= 0.0f ? 0.5f : -0.5f;
        out[i] = static_cast<int8_t>(static_cast<int32_t>(s));
    }
}

}  // namespace

const SimdOps&
scalarSimdOps()
{
    static const SimdOps ops = {SimdIsa::kScalar, "scalar", 1,
                                accumRowsScalar, accumRowsMultiScalar,
                                axpyScalar, reluScalar,
                                kGemmMrScalar, kGemmNrScalar, gemmTileScalar,
                                kGemmI8MrScalar, kGemmI8NrScalar,
                                gemmTileI8Scalar, quantizeRowI8Scalar};
    return ops;
}

}  // namespace patdnn
