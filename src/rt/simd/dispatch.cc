/**
 * @file
 * Kernel-table registry and load-time CPU feature detection.
 *
 * PATDNN_HAVE_AVX2 / PATDNN_HAVE_NEON are set by src/rt/CMakeLists.txt
 * (private to the rt target) when the matching kernels_<isa>.cc was
 * compiled in; runtime support is re-checked here so one binary runs
 * on any host.
 */
#include "rt/simd/dispatch.h"

#include <cstdlib>

#include "util/logging.h"

namespace patdnn {

#if defined(PATDNN_HAVE_AVX2)
const SimdOps& avx2SimdOps();  // kernels_avx2.cc
#endif
#if defined(PATDNN_HAVE_NEON)
const SimdOps& neonSimdOps();  // kernels_neon.cc
#endif

const char*
isaName(SimdIsa isa)
{
    switch (isa) {
      case SimdIsa::kScalar: return "scalar";
      case SimdIsa::kAvx2: return "avx2";
      case SimdIsa::kNeon: return "neon";
    }
    return "unknown";
}

bool
parseIsaName(const std::string& s, SimdIsa* out)
{
    for (SimdIsa isa :
         {SimdIsa::kScalar, SimdIsa::kAvx2, SimdIsa::kNeon}) {
        if (s == isaName(isa)) {
            *out = isa;
            return true;
        }
    }
    return false;
}

const SimdOps*
simdOpsFor(SimdIsa isa)
{
    switch (isa) {
      case SimdIsa::kScalar:
        return &scalarSimdOps();
      case SimdIsa::kAvx2:
#if defined(PATDNN_HAVE_AVX2)
        if (__builtin_cpu_supports("avx2"))
            return &avx2SimdOps();
#endif
        return nullptr;
      case SimdIsa::kNeon:
#if defined(PATDNN_HAVE_NEON)
        return &neonSimdOps();
#else
        return nullptr;
#endif
    }
    return nullptr;
}

std::vector<SimdIsa>
availableSimdIsas()
{
    std::vector<SimdIsa> out;
    for (SimdIsa isa : {SimdIsa::kScalar, SimdIsa::kAvx2, SimdIsa::kNeon})
        if (simdOpsFor(isa) != nullptr)
            out.push_back(isa);
    return out;
}

SimdIsa
detectSimdIsa()
{
    static const SimdIsa detected = [] {
        if (const char* env = std::getenv("PATDNN_SIMD")) {
            SimdIsa want;
            if (parseIsaName(env, &want) && simdOpsFor(want) != nullptr)
                return want;
            logMessage(LogLevel::kWarn,
                       std::string("PATDNN_SIMD=") + env +
                           " is unknown or unavailable; using scalar kernels");
            return SimdIsa::kScalar;
        }
        // Widest table wins; every table advertises its vector width.
        SimdIsa best = SimdIsa::kScalar;
        int best_width = 0;
        for (SimdIsa isa : availableSimdIsas()) {
            int w = simdOpsFor(isa)->width;
            if (w > best_width) {
                best_width = w;
                best = isa;
            }
        }
        return best;
    }();
    return detected;
}

const SimdOps&
resolveSimdOps(SimdIsa isa)
{
    const SimdOps* ops = simdOpsFor(isa);
    return ops != nullptr ? *ops : scalarSimdOps();
}

}  // namespace patdnn
