/**
 * @file
 * NEON SimdOps table (aarch64): 4 output columns per vector, 8 on the
 * blocked main loop — the layout PatDNN's generated mobile kernels
 * target. Explicit vmulq+vaddq (never vmlaq/vfmaq: aarch64 fuses those
 * into a single-rounding FMLA, which would break the bit-exactness
 * contract of dispatch.h). NEON is baseline on aarch64, so this TU
 * needs no extra compile flags and no cpuid gate.
 */
#include "rt/simd/dispatch.h"

#if defined(__aarch64__) || defined(__ARM_NEON)

#include <arm_neon.h>

#include <cstring>

namespace patdnn {
namespace {

void
accumRowsNeon(const float* const* rows, const float* w, int live, float* out,
              int64_t n, int unroll)
{
    int64_t i = 0;
    if (unroll >= 8) {
        for (; i + 8 <= n; i += 8) {
            float32x4_t a0 = vld1q_f32(out + i);
            float32x4_t a1 = vld1q_f32(out + i + 4);
            for (int e = 0; e < live; ++e) {
                const float32x4_t wv = vdupq_n_f32(w[e]);
                a0 = vaddq_f32(a0, vmulq_f32(wv, vld1q_f32(rows[e] + i)));
                a1 = vaddq_f32(a1, vmulq_f32(wv, vld1q_f32(rows[e] + i + 4)));
            }
            vst1q_f32(out + i, a0);
            vst1q_f32(out + i + 4, a1);
        }
    }
    for (; i + 4 <= n; i += 4) {
        float32x4_t acc = vld1q_f32(out + i);
        for (int e = 0; e < live; ++e)
            acc = vaddq_f32(
                acc, vmulq_f32(vdupq_n_f32(w[e]), vld1q_f32(rows[e] + i)));
        vst1q_f32(out + i, acc);
    }
    for (; i < n; ++i) {
        float acc = out[i];
        for (int e = 0; e < live; ++e)
            acc += w[e] * rows[e][i];
        out[i] = acc;
    }
}

void
accumRowsMultiNeon(const float* const* rows, int live, const int* wsel,
                   const float* const* w, float* const* outs, int count,
                   int64_t n)
{
    int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
        float32x4_t iv[9];
        for (int e = 0; e < live; ++e)
            iv[e] = vld1q_f32(rows[e] + i);
        for (int f = 0; f < count; ++f) {
            const float* wf = w[f];
            float32x4_t acc = vld1q_f32(outs[f] + i);
            for (int e = 0; e < live; ++e)
                acc = vaddq_f32(acc,
                                vmulq_f32(vdupq_n_f32(wf[wsel[e]]), iv[e]));
            vst1q_f32(outs[f] + i, acc);
        }
    }
    for (; i < n; ++i) {
        float iv[9];
        for (int e = 0; e < live; ++e)
            iv[e] = rows[e][i];
        for (int f = 0; f < count; ++f) {
            const float* wf = w[f];
            float acc = outs[f][i];
            for (int e = 0; e < live; ++e)
                acc += wf[wsel[e]] * iv[e];
            outs[f][i] = acc;
        }
    }
}

void
axpyNeon(float a, const float* x, float* y, int64_t n)
{
    const float32x4_t av = vdupq_n_f32(a);
    int64_t i = 0;
    for (; i + 4 <= n; i += 4)
        vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i),
                                   vmulq_f32(av, vld1q_f32(x + i))));
    for (; i < n; ++i)
        y[i] += a * x[i];
}

void
reluNeon(float* y, int64_t n)
{
    const float32x4_t zero = vdupq_n_f32(0.0f);
    int64_t i = 0;
    // vmaxq returns the non-NaN operand lane-wise on aarch64 only for
    // fmax semantics; select explicitly so NaN lanes become 0 exactly
    // like std::max(0.0f, v).
    for (; i + 4 <= n; i += 4) {
        const float32x4_t v = vld1q_f32(y + i);
        const uint32x4_t keep = vcgtq_f32(v, zero);  // v > 0, false on NaN
        vst1q_f32(y + i, vbslq_f32(keep, v, zero));
    }
    for (; i < n; ++i)
        y[i] = 0.0f < y[i] ? y[i] : 0.0f;
}

// Packed-GEMM tile: 4 LHS rows x 8 RHS columns = 8 q-register
// accumulators plus one broadcast and two RHS loads per k step; well
// inside the 32 NEON registers. Explicit vmulq+vaddq, never
// vmlaq/vfmaq (see the file comment).
constexpr int kGemmMrNeon = 4;
constexpr int kGemmNrNeon = 8;

void
gemmTileNeon(const float* a_panel, const float* b_panel, float* c, int64_t ldc,
             int64_t kc, int mr, int nr)
{
    if (mr == kGemmMrNeon && nr == kGemmNrNeon) {
        float32x4_t acc[kGemmMrNeon][2];
        for (int m = 0; m < kGemmMrNeon; ++m) {
            acc[m][0] = vld1q_f32(c + m * ldc);
            acc[m][1] = vld1q_f32(c + m * ldc + 4);
        }
        for (int64_t k = 0; k < kc; ++k) {
            const float32x4_t b0 = vld1q_f32(b_panel + k * kGemmNrNeon);
            const float32x4_t b1 = vld1q_f32(b_panel + k * kGemmNrNeon + 4);
            const float* a = a_panel + k * kGemmMrNeon;
            for (int m = 0; m < kGemmMrNeon; ++m) {
                const float32x4_t av = vdupq_n_f32(a[m]);
                acc[m][0] = vaddq_f32(acc[m][0], vmulq_f32(av, b0));
                acc[m][1] = vaddq_f32(acc[m][1], vmulq_f32(av, b1));
            }
        }
        for (int m = 0; m < kGemmMrNeon; ++m) {
            vst1q_f32(c + m * ldc, acc[m][0]);
            vst1q_f32(c + m * ldc + 4, acc[m][1]);
        }
        return;
    }
    // Edge tiles: same per-element k chain, scalar lanes.
    float acc[kGemmMrNeon][kGemmNrNeon];
    for (int m = 0; m < mr; ++m)
        for (int n = 0; n < nr; ++n)
            acc[m][n] = c[m * ldc + n];
    for (int64_t k = 0; k < kc; ++k) {
        const float* a = a_panel + k * kGemmMrNeon;
        const float* b = b_panel + k * kGemmNrNeon;
        for (int m = 0; m < mr; ++m) {
            float av = a[m];
            for (int n = 0; n < nr; ++n)
                acc[m][n] += av * b[n];
        }
    }
    for (int m = 0; m < mr; ++m)
        for (int n = 0; n < nr; ++n)
            c[m * ldc + n] = acc[m][n];
}

// Int8 tile: 4 LHS rows x 8 RHS columns, one k-PAIR per step (the
// sdot-style shape without requiring the dotprod extension, which is
// not baseline armv8-a): the 16-byte RHS pair row widens to two i16x8
// vectors of interleaved (k0, k1) column pairs, the LHS pair broadcasts
// as one 32-bit lane, vmulq_s16 is exact (127*127 < 32767) and
// vpadalq_s16 does the pairwise i16 -> i32 add-accumulate. The LHS
// panel arrives pre-widened to i16, so the (a0, a1) pair is one
// naturally aligned 32-bit memory unit dup-loaded directly. Integer
// accumulation is exact, so no ordering contract applies (dispatch.h).
constexpr int kGemmI8MrNeon = 4;
constexpr int kGemmI8NrNeon = 8;

void
gemmTileI8Neon(const int16_t* a_panel, const int8_t* b_panel, int32_t* c,
               int64_t ldc, int64_t kc, int mr, int nr)
{
    const int64_t kp = (kc + 1) / 2;  // Panels are k-pair interleaved.
    if (mr == kGemmI8MrNeon && nr == kGemmI8NrNeon) {
        int32x4_t acc[kGemmI8MrNeon][2];
        for (int m = 0; m < kGemmI8MrNeon; ++m) {
            acc[m][0] = vld1q_s32(c + m * ldc);
            acc[m][1] = vld1q_s32(c + m * ldc + 4);
        }
        for (int64_t k = 0; k < kp; ++k) {
            const int8x16_t braw = vld1q_s8(b_panel + k * kGemmI8NrNeon * 2);
            // Columns 0-3 / 4-7 as interleaved (k0, k1) i16 pairs.
            const int16x8_t b_lo = vmovl_s8(vget_low_s8(braw));
            const int16x8_t b_hi = vmovl_s8(vget_high_s8(braw));
            const int16_t* a = a_panel + k * kGemmI8MrNeon * 2;
            for (int m = 0; m < kGemmI8MrNeon; ++m) {
                int32_t pair;
                std::memcpy(&pair, a + m * 2, sizeof(pair));
                const int16x8_t av =
                    vreinterpretq_s16_s32(vdupq_n_s32(pair));
                acc[m][0] = vpadalq_s16(acc[m][0], vmulq_s16(av, b_lo));
                acc[m][1] = vpadalq_s16(acc[m][1], vmulq_s16(av, b_hi));
            }
        }
        for (int m = 0; m < kGemmI8MrNeon; ++m) {
            vst1q_s32(c + m * ldc, acc[m][0]);
            vst1q_s32(c + m * ldc + 4, acc[m][1]);
        }
        return;
    }
    // Edge tiles: scalar lanes over the same pair layout.
    int32_t acc[kGemmI8MrNeon][kGemmI8NrNeon];
    for (int m = 0; m < mr; ++m)
        for (int n = 0; n < nr; ++n)
            acc[m][n] = c[m * ldc + n];
    for (int64_t k = 0; k < kp; ++k) {
        const int16_t* a = a_panel + k * kGemmI8MrNeon * 2;
        const int8_t* b = b_panel + k * kGemmI8NrNeon * 2;
        for (int m = 0; m < mr; ++m) {
            int32_t a0 = a[m * 2];
            int32_t a1 = a[m * 2 + 1];
            for (int n = 0; n < nr; ++n)
                acc[m][n] += a0 * b[n * 2] + a1 * b[n * 2 + 1];
        }
    }
    for (int m = 0; m < mr; ++m)
        for (int n = 0; n < nr; ++n)
            c[m * ldc + n] = acc[m][n];
}

// f32 -> i8 row quantization, 16 elements per step: each q-register
// lane runs the scalar contract verbatim (mul, clamp, sign-matched
// +0.5, truncate via vcvtq_s32_f32), then saturating narrows squeeze
// the four i32 vectors to i8 — values are already inside [-127, 127],
// so the saturation never engages; it is only the narrowing shape.
void
quantizeRowI8Neon(const float* x, int64_t n, float inv_scale, int8_t* out)
{
    const float32x4_t vinv = vdupq_n_f32(inv_scale);
    const float32x4_t vhi = vdupq_n_f32(127.0f);
    const float32x4_t vlo = vdupq_n_f32(-127.0f);
    const uint32x4_t vhalf = vreinterpretq_u32_f32(vdupq_n_f32(0.5f));
    const uint32x4_t vsign = vdupq_n_u32(0x80000000u);
    auto lane = [&](const float* p) {
        float32x4_t s = vmulq_f32(vld1q_f32(p), vinv);
        s = vminq_f32(s, vhi);
        s = vmaxq_f32(s, vlo);
        const float32x4_t half = vreinterpretq_f32_u32(
            vorrq_u32(vandq_u32(vreinterpretq_u32_f32(s), vsign), vhalf));
        return vcvtq_s32_f32(vaddq_f32(s, half));
    };
    int64_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const int16x8_t q01 = vcombine_s16(vqmovn_s32(lane(x + i)),
                                           vqmovn_s32(lane(x + i + 4)));
        const int16x8_t q23 = vcombine_s16(vqmovn_s32(lane(x + i + 8)),
                                           vqmovn_s32(lane(x + i + 12)));
        vst1q_s8(out + i, vcombine_s8(vqmovn_s16(q01), vqmovn_s16(q23)));
    }
    for (; i < n; ++i) {
        float s = x[i] * inv_scale;
        s = s > 127.0f ? 127.0f : s;
        s = s < -127.0f ? -127.0f : s;
        s += s >= 0.0f ? 0.5f : -0.5f;
        out[i] = static_cast<int8_t>(static_cast<int32_t>(s));
    }
}

}  // namespace

const SimdOps&
neonSimdOps()
{
    static const SimdOps ops = {SimdIsa::kNeon, "neon", 4,
                                accumRowsNeon, accumRowsMultiNeon,
                                axpyNeon, reluNeon,
                                kGemmMrNeon, kGemmNrNeon, gemmTileNeon,
                                kGemmI8MrNeon, kGemmI8NrNeon, gemmTileI8Neon,
                                quantizeRowI8Neon};
    return ops;
}

}  // namespace patdnn

#endif  // defined(__aarch64__) || defined(__ARM_NEON)
