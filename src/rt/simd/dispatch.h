/**
 * @file
 * Runtime SIMD dispatch for the pattern micro-kernels.
 *
 * PatDNN's generated mobile code leans on the vector units (NEON on the
 * paper's Snapdragon/Kirin targets); this layer is the host-side
 * equivalent. Each ISA provides one table of vectorized primitives
 * (SimdOps) for the hot inner loops — the LRE interior accumulation,
 * the filter-level multi-filter fan-out, the CSR row saxpy, the ReLU
 * epilogue and the packed-GEMM tile kernel the dense im2col/Winograd
 * executors run on — and one binary selects the best table at load
 * time from CPU features (AVX2 on x86-64, NEON on aarch64, scalar
 * otherwise).
 *
 * Determinism contract: every table computes bit-identical results to
 * scalarSimdOps() — same per-element operation order, plain IEEE mul
 * then add, no FMA contraction — so executors can switch ISA freely
 * (and tests can diff exactly). Vector kernels only widen the x loop;
 * they never reassociate the per-entry accumulation chain.
 *
 * Build gating: PATDNN_ENABLE_SIMD=OFF compiles only the scalar table.
 * The AVX2 translation unit is compiled with -mavx2 but its table is
 * only ever returned after a cpuid check, so one binary runs anywhere.
 * Adding an ISA = one kernels_<isa>.cc defining a SimdOps table + a
 * case in simdOpsFor(); see docs/ARCHITECTURE.md.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace patdnn {

/** Instruction sets a kernel table can be specialized for. */
enum class SimdIsa : uint32_t
{
    kScalar = 0,  ///< Portable C++ (also the exactness reference).
    kAvx2 = 1,    ///< x86-64 AVX2, 8 floats per vector.
    kNeon = 2,    ///< aarch64 NEON, 4 floats per vector.
};

/** Display name ("scalar" / "avx2" / "neon"). */
const char* isaName(SimdIsa isa);

/** Parse an ISA name; false if `s` names no known ISA. */
bool parseIsaName(const std::string& s, SimdIsa* out);

/**
 * One ISA's vectorized primitives. All functions tolerate unaligned
 * pointers and any n >= 0; `out`/`y` must not alias the inputs.
 */
struct SimdOps
{
    SimdIsa isa = SimdIsa::kScalar;
    const char* name = "scalar";
    int width = 1;  ///< Floats per vector step (tuning hint).

    /**
     * LRE interior accumulation over `n` output columns:
     *   out[i] = (((out[i] + w[0]*rows[0][i]) + w[1]*rows[1][i]) + ...)
     * for e in [0, live). `unroll` is the tuner's register-block width
     * (columns per blocked step); ISAs treat it as a hint.
     */
    void (*accum_rows)(const float* const* rows, const float* w, int live,
                       float* out, int64_t n, int unroll);

    /**
     * Filter-level LRE interior (Fig. 11 right): load rows[e][i] once,
     * fan out to `count` filters:
     *   outs[f][i] += sum_e w[f][wsel[e]] * rows[e][i]
     * with the same sequential per-entry order as accum_rows.
     */
    void (*accum_rows_multi)(const float* const* rows, int live,
                             const int* wsel, const float* const* w,
                             float* const* outs, int count, int64_t n);

    /** y[i] += a * x[i] (the CSR stride-1 inner row update). */
    void (*axpy)(float a, const float* x, float* y, int64_t n);

    /** y[i] = max(0, y[i]) (fused ReLU epilogue). */
    void (*relu)(float* y, int64_t n);

    /// Full tile footprint of gemm_tile: rows per LHS panel step.
    int gemm_mr = 1;
    /// Full tile footprint of gemm_tile: columns per RHS panel step.
    int gemm_nr = 1;

    /**
     * Packed-GEMM tile micro-kernel (the mmt4d-style dense inner loop;
     * rt/gemm_packed.h owns the packing and the cache-blocked outer
     * loops). `a_panel` is one LHS tile panel slice laid out
     * [kc][gemm_mr], `b_panel` one RHS tile panel slice laid out
     * [kc][gemm_nr]; `c` is the [mr x nr] output tile at row stride
     * `ldc`, already holding the accumulation state (bias or the
     * previous K block's partial sums). mr/nr are the live extents
     * (< gemm_mr/gemm_nr only on edge tiles; the padded panel lanes
     * hold zeros and are never stored).
     *
     * Numerics: for every output element the chain is
     *   acc = c[m*ldc+n]; for k in [0,kc): acc += a[k][m] * b[k][n];
     * — sequential in k, mul then add, no FMA. The chain runs through
     * the C element itself, so splitting K into blocks is bit-neutral,
     * and every ISA produces bit-identical results regardless of its
     * gemm_mr/gemm_nr footprint (tiling only partitions the m/n space,
     * never the per-element k chain).
     */
    void (*gemm_tile)(const float* a_panel, const float* b_panel, float* c,
                      int64_t ldc, int64_t kc, int mr, int nr);

    /// Full tile footprint of gemm_tile_i8: rows per LHS panel step.
    int gemm_i8_mr = 1;
    /// Full tile footprint of gemm_tile_i8: columns per RHS panel step.
    int gemm_i8_nr = 1;

    /**
     * Int8 packed-GEMM tile micro-kernel: i8×i8 products accumulated in
     * i32 (the quantized dense inner loop; rt/gemm_packed.h owns the
     * packing and blocked outer loops). Panels are K-PAIR interleaved so
     * the AVX2 kernel can feed `_mm256_madd_epi16`-style pairwise
     * multiply-adds straight from memory:
     *
     *   a_panel: [ceil(kc/2)][gemm_i8_mr][2]  (row tile,   k pairs inner)
     *   b_panel: [ceil(kc/2)][gemm_i8_nr][2]  (column tile, k pairs inner)
     *
     * i.e. logical element (k, m) lives at (k/2)*mr*2 + m*2 + (k%2).
     * The LHS panel is widened to i16 at pack time (values still in
     * [-127, 127]) so one (a0, a1) pair is a naturally aligned 4-byte
     * unit the kernel can broadcast straight from memory (vpbroadcastd
     * on AVX2) instead of sign-extending per tile visit; the RHS panel
     * stays i8 since each row is loaded once per k-pair. When kc is odd
     * the trailing k-lane of the last pair is zero in both panels (the
     * packers guarantee this). `c` is the [mr x nr] i32 tile at row
     * stride `ldc`, already holding accumulation state; mr/nr are live
     * extents as in gemm_tile, and padded lanes are never stored.
     *
     * Numerics: every product of two values in [-127, 127] and every
     * running sum fits i32 exactly for any practical kc (|a*b| <= 16129,
     * so ~133k k-steps of headroom), so unlike the f32 tile there is no
     * ordering contract to respect — integer accumulation is exact and
     * every ISA is bit-identical by construction.
     */
    void (*gemm_tile_i8)(const int16_t* a_panel, const int8_t* b_panel,
                         int32_t* c, int64_t ldc, int64_t kc, int mr, int nr);

    /**
     * Activation-side row quantization feeding gemm_tile_i8:
     * out[i] = clamp(round(x[i] * inv_scale), -127, 127) with round
     * half away from zero — prune/quant.h's quantizeValue contract.
     * Every table performs the identical per-lane f32 sequence
     * (multiply, clamp, add sign-matched 0.5, truncate toward zero),
     * so results are bit-identical across ISAs for finite inputs.
     * This runs over the whole im2col patch matrix once per quantized
     * conv call, which makes it the second-hottest loop of the int8
     * path after the GEMM itself.
     */
    void (*quantize_row_i8)(const float* x, int64_t n, float inv_scale,
                            int8_t* out);
};

/** The portable reference table; always available. */
const SimdOps& scalarSimdOps();

/**
 * Table for `isa`, or nullptr when it was not compiled in
 * (PATDNN_ENABLE_SIMD=OFF / wrong arch) or this CPU lacks the feature.
 */
const SimdOps* simdOpsFor(SimdIsa isa);

/** ISAs usable in this process (compiled in + CPU-supported). */
std::vector<SimdIsa> availableSimdIsas();

/**
 * Best ISA for this process, decided once at first use: the widest
 * available table, overridable with PATDNN_SIMD=scalar|avx2|neon (an
 * unavailable override falls back to scalar with a warning).
 */
SimdIsa detectSimdIsa();

/** Table for `isa` if available, else the scalar table (never null). */
const SimdOps& resolveSimdOps(SimdIsa isa);

}  // namespace patdnn
