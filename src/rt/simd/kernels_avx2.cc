/**
 * @file
 * AVX2 SimdOps table: 8 output columns per vector, 16 on the blocked
 * main loop. Compiled with -mavx2 (no -mfma: the mul+add pair must
 * round like the scalar reference — the FMA's single rounding would
 * break the bit-exactness contract of dispatch.h). Per-pattern weights
 * arrive pre-hoisted by the caller (rows[] already folds dy/dx into
 * the base pointers) and are broadcast-loaded once per entry.
 *
 * This TU contains AVX2 instructions, so it must only be reached via
 * simdOpsFor(kAvx2), which checks cpuid first.
 */
#include "rt/simd/dispatch.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

namespace patdnn {
namespace {

void
accumRowsAvx2(const float* const* rows, const float* w, int live, float* out,
              int64_t n, int unroll)
{
    int64_t i = 0;
    // Two accumulators per step when the tuner asks for a block of at
    // least two vectors: hides the add latency without reassociating
    // any per-lane chain.
    if (unroll >= 16) {
        for (; i + 16 <= n; i += 16) {
            __m256 a0 = _mm256_loadu_ps(out + i);
            __m256 a1 = _mm256_loadu_ps(out + i + 8);
            for (int e = 0; e < live; ++e) {
                const __m256 wv = _mm256_set1_ps(w[e]);
                a0 = _mm256_add_ps(
                    a0, _mm256_mul_ps(wv, _mm256_loadu_ps(rows[e] + i)));
                a1 = _mm256_add_ps(
                    a1, _mm256_mul_ps(wv, _mm256_loadu_ps(rows[e] + i + 8)));
            }
            _mm256_storeu_ps(out + i, a0);
            _mm256_storeu_ps(out + i + 8, a1);
        }
    }
    for (; i + 8 <= n; i += 8) {
        __m256 acc = _mm256_loadu_ps(out + i);
        for (int e = 0; e < live; ++e)
            acc = _mm256_add_ps(
                acc, _mm256_mul_ps(_mm256_set1_ps(w[e]),
                                   _mm256_loadu_ps(rows[e] + i)));
        _mm256_storeu_ps(out + i, acc);
    }
    for (; i < n; ++i) {
        float acc = out[i];
        for (int e = 0; e < live; ++e)
            acc += w[e] * rows[e][i];
        out[i] = acc;
    }
}

void
accumRowsMultiAvx2(const float* const* rows, int live, const int* wsel,
                   const float* const* w, float* const* outs, int count,
                   int64_t n)
{
    int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        // Shared input loads (live <= 9 vectors + 1 accumulator + 1
        // broadcast fits the 16 ymm registers).
        __m256 iv[9];
        for (int e = 0; e < live; ++e)
            iv[e] = _mm256_loadu_ps(rows[e] + i);
        for (int f = 0; f < count; ++f) {
            const float* wf = w[f];
            __m256 acc = _mm256_loadu_ps(outs[f] + i);
            for (int e = 0; e < live; ++e)
                acc = _mm256_add_ps(
                    acc, _mm256_mul_ps(_mm256_set1_ps(wf[wsel[e]]), iv[e]));
            _mm256_storeu_ps(outs[f] + i, acc);
        }
    }
    for (; i < n; ++i) {
        float iv[9];
        for (int e = 0; e < live; ++e)
            iv[e] = rows[e][i];
        for (int f = 0; f < count; ++f) {
            const float* wf = w[f];
            float acc = outs[f][i];
            for (int e = 0; e < live; ++e)
                acc += wf[wsel[e]] * iv[e];
            outs[f][i] = acc;
        }
    }
}

void
axpyAvx2(float a, const float* x, float* y, int64_t n)
{
    const __m256 av = _mm256_set1_ps(a);
    int64_t i = 0;
    for (; i + 16 <= n; i += 16) {
        _mm256_storeu_ps(
            y + i, _mm256_add_ps(_mm256_loadu_ps(y + i),
                                 _mm256_mul_ps(av, _mm256_loadu_ps(x + i))));
        _mm256_storeu_ps(
            y + i + 8,
            _mm256_add_ps(_mm256_loadu_ps(y + i + 8),
                          _mm256_mul_ps(av, _mm256_loadu_ps(x + i + 8))));
    }
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(
            y + i, _mm256_add_ps(_mm256_loadu_ps(y + i),
                                 _mm256_mul_ps(av, _mm256_loadu_ps(x + i))));
    for (; i < n; ++i)
        y[i] += a * x[i];
}

void
reluAvx2(float* y, int64_t n)
{
    const __m256 zero = _mm256_setzero_ps();
    int64_t i = 0;
    // maxps returns the second operand on equal/NaN lanes; (v, zero)
    // ordering matches std::max(0.0f, v) for ±0.0 and NaN inputs.
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(y + i, _mm256_max_ps(_mm256_loadu_ps(y + i), zero));
    for (; i < n; ++i)
        y[i] = 0.0f < y[i] ? y[i] : 0.0f;
}

// Packed-GEMM tile: 4 LHS rows x 16 RHS columns = 8 ymm accumulators,
// plus one broadcast and two RHS loads per k step — 11 of the 16 ymm
// registers, leaving headroom for addressing.
constexpr int kGemmMrAvx2 = 4;
constexpr int kGemmNrAvx2 = 16;

void
gemmTileAvx2(const float* a_panel, const float* b_panel, float* c, int64_t ldc,
             int64_t kc, int mr, int nr)
{
    if (mr == kGemmMrAvx2 && nr == kGemmNrAvx2) {
        __m256 acc[kGemmMrAvx2][2];
        for (int m = 0; m < kGemmMrAvx2; ++m) {
            acc[m][0] = _mm256_loadu_ps(c + m * ldc);
            acc[m][1] = _mm256_loadu_ps(c + m * ldc + 8);
        }
        for (int64_t k = 0; k < kc; ++k) {
            const __m256 b0 = _mm256_loadu_ps(b_panel + k * kGemmNrAvx2);
            const __m256 b1 = _mm256_loadu_ps(b_panel + k * kGemmNrAvx2 + 8);
            const float* a = a_panel + k * kGemmMrAvx2;
            for (int m = 0; m < kGemmMrAvx2; ++m) {
                const __m256 av = _mm256_set1_ps(a[m]);
                acc[m][0] =
                    _mm256_add_ps(acc[m][0], _mm256_mul_ps(av, b0));
                acc[m][1] =
                    _mm256_add_ps(acc[m][1], _mm256_mul_ps(av, b1));
            }
        }
        for (int m = 0; m < kGemmMrAvx2; ++m) {
            _mm256_storeu_ps(c + m * ldc, acc[m][0]);
            _mm256_storeu_ps(c + m * ldc + 8, acc[m][1]);
        }
        return;
    }
    // Edge tiles: same per-element k chain, scalar lanes.
    float acc[kGemmMrAvx2][kGemmNrAvx2];
    for (int m = 0; m < mr; ++m)
        for (int n = 0; n < nr; ++n)
            acc[m][n] = c[m * ldc + n];
    for (int64_t k = 0; k < kc; ++k) {
        const float* a = a_panel + k * kGemmMrAvx2;
        const float* b = b_panel + k * kGemmNrAvx2;
        for (int m = 0; m < mr; ++m) {
            float av = a[m];
            for (int n = 0; n < nr; ++n)
                acc[m][n] += av * b[n];
        }
    }
    for (int m = 0; m < mr; ++m)
        for (int n = 0; n < nr; ++n)
            c[m * ldc + n] = acc[m][n];
}

// Int8 tile: 4 LHS rows x 16 RHS columns. One k-PAIR per step: the
// 32-byte RHS pair row sign-extends into two ymm of interleaved
// (k0, k1) i16 column pairs, the LHS (a0, a1) i16 pair broadcasts as
// one 32-bit lane straight from the pre-widened panel (vpbroadcastd
// from memory — no per-visit sign-extension), and _mm256_madd_epi16
// does the pairwise i16 multiply + i32 add — two multiply-adds per k.
// Products fit i16 (127*127 = 16129 < 32767) and the pair sum fits
// i32, so this is exact (dispatch.h).
constexpr int kGemmI8MrAvx2 = 4;
constexpr int kGemmI8NrAvx2 = 16;

void
gemmTileI8Avx2(const int16_t* a_panel, const int8_t* b_panel, int32_t* c,
               int64_t ldc, int64_t kc, int mr, int nr)
{
    const int64_t kp = (kc + 1) / 2;  // Panels are k-pair interleaved.
    if (mr == kGemmI8MrAvx2 && nr == kGemmI8NrAvx2) {
        __m256i acc[kGemmI8MrAvx2][2];
        for (int m = 0; m < kGemmI8MrAvx2; ++m) {
            acc[m][0] = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(c + m * ldc));
            acc[m][1] = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(c + m * ldc + 8));
        }
        for (int64_t k = 0; k < kp; ++k) {
            const __m256i braw = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(b_panel +
                                                 k * kGemmI8NrAvx2 * 2));
            // Columns 0-7 / 8-15 as interleaved (k0, k1) i16 pairs.
            const __m256i b_lo =
                _mm256_cvtepi8_epi16(_mm256_castsi256_si128(braw));
            const __m256i b_hi =
                _mm256_cvtepi8_epi16(_mm256_extracti128_si256(braw, 1));
            const int16_t* a = a_panel + k * kGemmI8MrAvx2 * 2;
            for (int m = 0; m < kGemmI8MrAvx2; ++m) {
                int32_t pair;
                std::memcpy(&pair, a + m * 2, sizeof(pair));
                const __m256i av = _mm256_set1_epi32(pair);
                acc[m][0] = _mm256_add_epi32(acc[m][0],
                                             _mm256_madd_epi16(b_lo, av));
                acc[m][1] = _mm256_add_epi32(acc[m][1],
                                             _mm256_madd_epi16(b_hi, av));
            }
        }
        for (int m = 0; m < kGemmI8MrAvx2; ++m) {
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + m * ldc),
                                acc[m][0]);
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + m * ldc + 8),
                                acc[m][1]);
        }
        return;
    }
    // Edge tiles: scalar lanes over the same pair layout.
    int32_t acc[kGemmI8MrAvx2][kGemmI8NrAvx2];
    for (int m = 0; m < mr; ++m)
        for (int n = 0; n < nr; ++n)
            acc[m][n] = c[m * ldc + n];
    for (int64_t k = 0; k < kp; ++k) {
        const int16_t* a = a_panel + k * kGemmI8MrAvx2 * 2;
        const int8_t* b = b_panel + k * kGemmI8NrAvx2 * 2;
        for (int m = 0; m < mr; ++m) {
            int32_t a0 = a[m * 2];
            int32_t a1 = a[m * 2 + 1];
            for (int n = 0; n < nr; ++n)
                acc[m][n] += a0 * b[n * 2] + a1 * b[n * 2 + 1];
        }
    }
    for (int m = 0; m < mr; ++m)
        for (int n = 0; n < nr; ++n)
            c[m * ldc + n] = acc[m][n];
}

// f32 -> i8 row quantization, 32 elements per step. Each ymm lane runs
// the scalar contract verbatim (mul, clamp, sign-matched +0.5,
// truncate via cvttps2dq), then two saturating narrows squeeze the
// four i32 vectors to i8 — values are already inside [-127, 127], so
// the saturation never engages; it is only the narrowing shape — and
// one cross-lane permute undoes the 128-bit interleave of vpackss.
void
quantizeRowI8Avx2(const float* x, int64_t n, float inv_scale, int8_t* out)
{
    const __m256 vinv = _mm256_set1_ps(inv_scale);
    const __m256 vhi = _mm256_set1_ps(127.0f);
    const __m256 vlo = _mm256_set1_ps(-127.0f);
    const __m256 vhalf = _mm256_set1_ps(0.5f);
    const __m256 vsign = _mm256_set1_ps(-0.0f);
    const __m256i order = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
    auto lane = [&](const float* p) {
        __m256 s = _mm256_mul_ps(_mm256_loadu_ps(p), vinv);
        s = _mm256_min_ps(s, vhi);
        s = _mm256_max_ps(s, vlo);
        const __m256 half = _mm256_or_ps(_mm256_and_ps(s, vsign), vhalf);
        return _mm256_cvttps_epi32(_mm256_add_ps(s, half));
    };
    int64_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i q01 = _mm256_packs_epi32(lane(x + i), lane(x + i + 8));
        const __m256i q23 =
            _mm256_packs_epi32(lane(x + i + 16), lane(x + i + 24));
        const __m256i q = _mm256_permutevar8x32_epi32(
            _mm256_packs_epi16(q01, q23), order);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), q);
    }
    for (; i < n; ++i) {
        float s = x[i] * inv_scale;
        s = s > 127.0f ? 127.0f : s;
        s = s < -127.0f ? -127.0f : s;
        s += s >= 0.0f ? 0.5f : -0.5f;
        out[i] = static_cast<int8_t>(static_cast<int32_t>(s));
    }
}

}  // namespace

const SimdOps&
avx2SimdOps()
{
    static const SimdOps ops = {SimdIsa::kAvx2, "avx2", 8,
                                accumRowsAvx2, accumRowsMultiAvx2,
                                axpyAvx2, reluAvx2,
                                kGemmMrAvx2, kGemmNrAvx2, gemmTileAvx2,
                                kGemmI8MrAvx2, kGemmI8NrAvx2, gemmTileI8Avx2,
                                quantizeRowI8Avx2};
    return ops;
}

}  // namespace patdnn

#endif  // defined(__AVX2__)
