#include "rt/conv_im2col.h"

#include <algorithm>

#include "prune/quant.h"
#include "rt/quant_epilogue.h"
#include "util/logging.h"

namespace patdnn {

Im2colConv::Im2colConv(ConvDesc desc, const Tensor* weight, DeviceSpec device,
                       TuneParams tuning)
    : desc_(std::move(desc)), weight_(weight), device_(std::move(device)),
      tuning_(tuning), ops_(&resolveSimdOps(device_.simd_isa))
{
    int64_t opg = desc_.coutPerGroup();
    int64_t k_dim = desc_.cinPerGroup() * desc_.kh * desc_.kw;
    int64_t n_dim = desc_.outH() * desc_.outW();
    blocking_ = gemmBlockingFor(*ops_, k_dim, n_dim, device_.tile_budget_kb,
                                tuning_.gemm_kc, tuning_.gemm_nc);
    // Weights are row-major [cout, cinPerGroup*kh*kw], so each group is
    // a contiguous [opg x k_dim] LHS; pack all groups back to back.
    int64_t per_group = packedLhsElems(opg, k_dim, ops_->gemm_mr);
    packed_w_ = Tensor(Shape{desc_.groups * per_group});
    for (int64_t g = 0; g < desc_.groups; ++g)
        packLhsTiles(weight->data() + g * opg * k_dim, opg, k_dim, k_dim,
                     ops_->gemm_mr, packed_w_.data() + g * per_group);
}

Im2colConv::Im2colConv(ConvDesc desc, const Tensor* weight, DeviceSpec device,
                       TuneParams tuning, float act_scale,
                       std::vector<float> weight_scales)
    : desc_(std::move(desc)), weight_(weight), device_(std::move(device)),
      tuning_(tuning), ops_(&resolveSimdOps(device_.simd_isa)),
      quantized_(true), act_scale_(act_scale)
{
    PATDNN_CHECK_GT(act_scale_, 0.0f,
                    "quantized Im2colConv needs a positive activation scale");
    int64_t opg = desc_.coutPerGroup();
    int64_t k_dim = desc_.cinPerGroup() * desc_.kh * desc_.kw;
    int64_t n_dim = desc_.outH() * desc_.outW();
    blocking_ = gemmBlockingForI8(*ops_, k_dim, n_dim, device_.tile_budget_kb,
                                  tuning_.gemm_kc, tuning_.gemm_nc);
    // Quantize once (per-cout channel scales), then pack each group's
    // [opg x k_dim] i8 block into k-pair LHS panels. The stored scales
    // win over derived ones so restored artifacts are authoritative.
    QuantizedWeights qw =
        quantizeWeightsPerChannel(*weight, std::move(weight_scales));
    wscales_ = std::move(qw.scales);
    int64_t per_group = packedLhsElemsI8(opg, k_dim, ops_->gemm_i8_mr);
    packed_wq_.resize(static_cast<size_t>(desc_.groups * per_group));
    for (int64_t g = 0; g < desc_.groups; ++g)
        packLhsTilesI8(qw.data.data() + g * opg * k_dim, opg, k_dim, k_dim,
                       ops_->gemm_i8_mr, packed_wq_.data() + g * per_group);
}

Tensor
Im2colConv::im2col(const ConvDesc& d, const Tensor& in, int64_t batch_index,
                   int64_t group)
{
    int64_t oh = d.outH(), ow = d.outW();
    int64_t cpg = d.cinPerGroup();
    int64_t rows = cpg * d.kh * d.kw;
    Tensor cols(Shape{rows, oh * ow});
    for (int64_t ic = 0; ic < cpg; ++ic) {
        const float* iptr =
            in.data() + ((batch_index * d.cin + group * cpg + ic) * d.h) * d.w;
        for (int64_t r = 0; r < d.kh; ++r) {
            for (int64_t c = 0; c < d.kw; ++c) {
                float* dst = cols.data() + ((ic * d.kh + r) * d.kw + c) * oh * ow;
                for (int64_t y = 0; y < oh; ++y) {
                    int64_t iy = y * d.stride - d.pad + r * d.dilation;
                    if (iy < 0 || iy >= d.h) {
                        std::fill(dst + y * ow, dst + (y + 1) * ow, 0.0f);
                        continue;
                    }
                    for (int64_t x = 0; x < ow; ++x) {
                        int64_t ix = x * d.stride - d.pad + c * d.dilation;
                        dst[y * ow + x] =
                            (ix < 0 || ix >= d.w) ? 0.0f : iptr[iy * d.w + ix];
                    }
                }
            }
        }
    }
    return cols;
}

void
Im2colConv::run(const Tensor& in, Tensor& out, const Epilogue& ep) const
{
    if (quantized_) {
        runQuantized(in, out, ep);
        return;
    }
    const ConvDesc& d = desc_;
    const SimdOps& ops = *ops_;
    int64_t n = in.shape().dim(0);
    int64_t oh = d.outH(), ow = d.outW();
    int64_t opg = d.coutPerGroup();
    int64_t k_dim = d.cinPerGroup() * d.kh * d.kw;
    int64_t n_dim = oh * ow;
    const int mr = ops.gemm_mr;
    const int nr = ops.gemm_nr;
    int64_t lhs_tiles = (opg + mr - 1) / mr;
    int64_t rhs_tiles = (n_dim + nr - 1) / nr;
    int64_t per_group = packedLhsElems(opg, k_dim, mr);

    // Per-call scratch (run() is const and may race across sessions).
    Tensor packed_cols(Shape{packedRhsElems(k_dim, n_dim, nr)});

    for (int64_t b = 0; b < n; ++b) {
        for (int64_t g = 0; g < d.groups; ++g) {
            Tensor cols = im2col(d, in, b, g);
            // Pack the patch matrix into NR-column panels in parallel:
            // each tile is an independent [k_dim x NR] slab.
            device_.pool().parallelChunks(
                rhs_tiles, [&](int64_t begin, int64_t end) {
                    for (int64_t j = begin; j < end; ++j) {
                        int64_t live = std::min<int64_t>(nr, n_dim - j * nr);
                        packRhsTiles(cols.data() + j * nr, k_dim, live, n_dim,
                                     nr, packed_cols.data() + j * k_dim * nr);
                    }
                });
            // Blocked GEMM over LHS row tiles: bias prefill, tile
            // kernels, fused ReLU — each worker owns its output rows.
            const float* plhs = packed_w_.data() + g * per_group;
            float* cbase = out.data() + (b * d.cout + g * opg) * n_dim;
            device_.pool().parallelChunks(
                lhs_tiles, [&](int64_t begin, int64_t end) {
                    int64_t row0 = begin * mr;
                    int64_t row1 = std::min<int64_t>(end * mr, opg);
                    for (int64_t m = row0; m < row1; ++m) {
                        float bias = ep.bias ? (*ep.bias)[g * opg + m] : 0.0f;
                        std::fill(cbase + m * n_dim, cbase + (m + 1) * n_dim,
                                  bias);
                    }
                    packedGemmRowTiles(ops, plhs, packed_cols.data(), opg,
                                       k_dim, n_dim, cbase, n_dim, begin, end,
                                       blocking_);
                    if (ep.relu)
                        for (int64_t m = row0; m < row1; ++m)
                            ops.relu(cbase + m * n_dim, n_dim);
                });
        }
    }
}

void
Im2colConv::runQuantized(const Tensor& in, Tensor& out,
                         const Epilogue& ep) const
{
    const ConvDesc& d = desc_;
    const SimdOps& ops = *ops_;
    int64_t n = in.shape().dim(0);
    int64_t opg = d.coutPerGroup();
    int64_t k_dim = d.cinPerGroup() * d.kh * d.kw;
    int64_t n_dim = d.outH() * d.outW();
    const int mr = ops.gemm_i8_mr;
    const int nr = ops.gemm_i8_nr;
    int64_t lhs_tiles = (opg + mr - 1) / mr;
    int64_t rhs_tiles = (n_dim + nr - 1) / nr;
    int64_t kp2 = ((k_dim + 1) / 2) * 2;  // Panel K extent in lanes.
    int64_t per_group = packedLhsElemsI8(opg, k_dim, mr);

    // Per-call scratch (run() is const and may race across sessions):
    // the quantized patch matrix, its packed panels, and the i32
    // accumulator the requant epilogue drains into `out`.
    std::vector<int8_t> qcols(static_cast<size_t>(k_dim * n_dim));
    std::vector<int8_t> packed_cols(
        static_cast<size_t>(packedRhsElemsI8(k_dim, n_dim, nr)));
    std::vector<int32_t> acc(static_cast<size_t>(opg * n_dim));

    const float inv_scale = act_scale_ > 0.0f ? 1.0f / act_scale_ : 0.0f;
    for (int64_t b = 0; b < n; ++b) {
        for (int64_t g = 0; g < d.groups; ++g) {
            Tensor cols = im2col(d, in, b, g);
            // Quantize the patch matrix at the calibrated input scale
            // through the per-ISA kernel (bit-identical across tables),
            // in parallel over K rows (independent slabs).
            device_.pool().parallelChunks(
                k_dim, [&](int64_t begin, int64_t end) {
                    for (int64_t r = begin; r < end; ++r)
                        ops.quantize_row_i8(cols.data() + r * n_dim, n_dim,
                                            inv_scale,
                                            qcols.data() + r * n_dim);
                });
            // Pack into NR-column k-pair panels in parallel.
            device_.pool().parallelChunks(
                rhs_tiles, [&](int64_t begin, int64_t end) {
                    for (int64_t j = begin; j < end; ++j) {
                        int64_t live = std::min<int64_t>(nr, n_dim - j * nr);
                        packRhsTilesI8(qcols.data() + j * nr, k_dim, live,
                                       n_dim, nr,
                                       packed_cols.data() + j * kp2 * nr);
                    }
                });
            // Exact i32 GEMM over LHS row tiles, then the requant
            // epilogue (combined scale + bias + ReLU) into f32 output —
            // each worker owns its accumulator and output rows.
            const int16_t* plhs = packed_wq_.data() + g * per_group;
            float* obase = out.data() + (b * d.cout + g * opg) * n_dim;
            device_.pool().parallelChunks(
                lhs_tiles, [&](int64_t begin, int64_t end) {
                    int64_t row0 = begin * mr;
                    int64_t row1 = std::min<int64_t>(end * mr, opg);
                    std::fill(acc.begin() + row0 * n_dim,
                              acc.begin() + row1 * n_dim, 0);
                    packedGemmRowTilesI8(ops, plhs, packed_cols.data(), opg,
                                         k_dim, n_dim, acc.data(), n_dim,
                                         begin, end, blocking_);
                    for (int64_t m = row0; m < row1; ++m) {
                        int64_t oc = g * opg + m;
                        float bias = ep.bias ? (*ep.bias)[oc] : 0.0f;
                        float scale =
                            wscales_[static_cast<size_t>(oc)] * act_scale_;
                        requantRowToF32(acc.data() + m * n_dim, n_dim, scale,
                                        bias, ep.relu, obase + m * n_dim);
                    }
                });
        }
    }
}

void
Im2colConv::runNaive(const Tensor& in, Tensor& out, const Epilogue& ep) const
{
    const ConvDesc& d = desc_;
    int64_t n = in.shape().dim(0);
    int64_t oh = d.outH(), ow = d.outW();
    int64_t opg = d.coutPerGroup();
    int64_t k_dim = d.cinPerGroup() * d.kh * d.kw;
    int64_t n_dim = oh * ow;
    const Tensor& weight = *weight_;

    for (int64_t b = 0; b < n; ++b) {
        for (int64_t g = 0; g < d.groups; ++g) {
            Tensor cols = im2col(d, in, b, g);
            // GEMM: [opg x k_dim] * [k_dim x n_dim], parallel over rows
            // of the output with 4-row register blocking.
            device_.pool().parallelChunks(opg, [&](int64_t begin, int64_t end) {
                int64_t m = begin;
                for (; m + 4 <= end; m += 4) {
                    int64_t oc = g * opg + m;
                    const float* w0 = weight.data() + (oc + 0) * k_dim;
                    const float* w1 = weight.data() + (oc + 1) * k_dim;
                    const float* w2 = weight.data() + (oc + 2) * k_dim;
                    const float* w3 = weight.data() + (oc + 3) * k_dim;
                    float* o0 = out.data() + ((b * d.cout + oc + 0) * n_dim);
                    float* o1 = out.data() + ((b * d.cout + oc + 1) * n_dim);
                    float* o2 = out.data() + ((b * d.cout + oc + 2) * n_dim);
                    float* o3 = out.data() + ((b * d.cout + oc + 3) * n_dim);
                    float b0 = ep.bias ? (*ep.bias)[oc + 0] : 0.0f;
                    float b1 = ep.bias ? (*ep.bias)[oc + 1] : 0.0f;
                    float b2 = ep.bias ? (*ep.bias)[oc + 2] : 0.0f;
                    float b3 = ep.bias ? (*ep.bias)[oc + 3] : 0.0f;
                    std::fill(o0, o0 + n_dim, b0);
                    std::fill(o1, o1 + n_dim, b1);
                    std::fill(o2, o2 + n_dim, b2);
                    std::fill(o3, o3 + n_dim, b3);
                    for (int64_t k = 0; k < k_dim; ++k) {
                        float v0 = w0[k], v1 = w1[k], v2 = w2[k], v3 = w3[k];
                        if (v0 == 0.0f && v1 == 0.0f && v2 == 0.0f && v3 == 0.0f)
                            continue;
                        const float* col = cols.data() + k * n_dim;
                        for (int64_t j = 0; j < n_dim; ++j) {
                            float cv = col[j];
                            o0[j] += v0 * cv;
                            o1[j] += v1 * cv;
                            o2[j] += v2 * cv;
                            o3[j] += v3 * cv;
                        }
                    }
                }
                for (; m < end; ++m) {
                    int64_t oc = g * opg + m;
                    const float* wr = weight.data() + oc * k_dim;
                    float* optr = out.data() + ((b * d.cout + oc) * n_dim);
                    float bias = ep.bias ? (*ep.bias)[oc] : 0.0f;
                    std::fill(optr, optr + n_dim, bias);
                    for (int64_t k = 0; k < k_dim; ++k) {
                        float v = wr[k];
                        if (v == 0.0f)
                            continue;
                        const float* col = cols.data() + k * n_dim;
                        for (int64_t j = 0; j < n_dim; ++j)
                            optr[j] += v * col[j];
                    }
                }
                if (ep.relu) {
                    for (int64_t m2 = begin; m2 < end; ++m2) {
                        int64_t oc = g * opg + m2;
                        float* optr = out.data() + ((b * d.cout + oc) * n_dim);
                        for (int64_t j = 0; j < n_dim; ++j)
                            optr[j] = std::max(0.0f, optr[j]);
                    }
                }
            });
        }
    }
}

}  // namespace patdnn
