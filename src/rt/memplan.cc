#include "rt/memplan.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace patdnn {

namespace {

int64_t
alignUp(int64_t v, int64_t align)
{
    return (v + align - 1) / align * align;
}

/** Closed-interval lifetime overlap: b is live while a executes (or
 * vice versa). A buffer defined at node i and one last used at node i
 * DO overlap — the executor reads the one while writing the other. */
bool
lifetimesOverlap(const PlanSlot& a, const PlanSlot& b)
{
    return a.def <= b.last_use && b.def <= a.last_use;
}

}  // namespace

MemoryPlan::MemoryPlan(std::vector<PlanSlot> slots, int64_t arena_elems,
                       int64_t sum_elems, int64_t align_elems)
    : slots_(std::move(slots)), arena_elems_(arena_elems), sum_elems_(sum_elems),
      align_elems_(align_elems)
{
    PATDNN_CHECK_GT(align_elems_, 0, "plan alignment must be positive");
}

const PlanSlot&
MemoryPlan::slot(size_t id) const
{
    PATDNN_CHECK(id < slots_.size(), "plan slot " << id << " out of range");
    return slots_[id];
}

size_t
MemoryPlan::arenaBytes(int64_t batch) const
{
    return static_cast<size_t>(arena_elems_) * static_cast<size_t>(batch) *
           sizeof(float);
}

size_t
MemoryPlan::sumBytes(int64_t batch) const
{
    return static_cast<size_t>(sum_elems_) * static_cast<size_t>(batch) *
           sizeof(float);
}

std::vector<PlanSlot>
computeLifetimes(const std::vector<PlanNode>& nodes, int output_node)
{
    std::vector<PlanSlot> slots(nodes.size());
    for (size_t id = 0; id < nodes.size(); ++id) {
        if (!nodes[id].live)
            continue;
        slots[id].planned = true;
        slots[id].size_elems = nodes[id].elems_per_sample;
        slots[id].def = static_cast<int>(id);
        slots[id].last_use = static_cast<int>(id);
    }
    for (size_t id = 0; id < nodes.size(); ++id) {
        if (!nodes[id].live)
            continue;
        for (int in : nodes[id].inputs)
            if (in >= 0 && static_cast<size_t>(in) < slots.size())
                slots[static_cast<size_t>(in)].last_use =
                    std::max(slots[static_cast<size_t>(in)].last_use,
                             static_cast<int>(id));
    }
    // The output value is read after the loop (copied out of the
    // workspace), so its buffer must never be recycled.
    if (output_node >= 0 && static_cast<size_t>(output_node) < slots.size() &&
        slots[static_cast<size_t>(output_node)].planned)
        slots[static_cast<size_t>(output_node)].last_use =
            static_cast<int>(nodes.size());
    return slots;
}

MemoryPlan
planActivations(const std::vector<PlanNode>& nodes, int output_node,
                int64_t align_elems)
{
    PATDNN_CHECK_GT(align_elems, 0, "plan alignment must be positive");
    std::vector<PlanSlot> slots = computeLifetimes(nodes, output_node);

    // Largest-first placement (ties broken by node id for determinism):
    // big buffers anchor the arena, small ones fill the holes.
    std::vector<size_t> order;
    for (size_t id = 0; id < slots.size(); ++id)
        if (slots[id].planned)
            order.push_back(id);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (slots[a].size_elems != slots[b].size_elems)
            return slots[a].size_elems > slots[b].size_elems;
        return a < b;
    });

    int64_t arena_elems = 0;
    int64_t sum_elems = 0;
    std::vector<size_t> placed;
    std::vector<std::pair<int64_t, int64_t>> busy;  ///< Reused scratch.
    for (size_t id : order) {
        PlanSlot& s = slots[id];
        PATDNN_CHECK_GT(s.size_elems, 0,
                        "planned node " << id << " has an empty output");
        sum_elems += alignUp(s.size_elems, align_elems);

        // Address ranges owned by lifetime-overlapping buffers, merged.
        // Two such ranges may themselves overlap (each conflicts with
        // this buffer but not with the other), hence the merge.
        busy.clear();
        for (size_t pid : placed) {
            const PlanSlot& p = slots[pid];
            if (lifetimesOverlap(s, p))
                busy.emplace_back(p.offset_elems, p.offset_elems + p.size_elems);
        }
        std::sort(busy.begin(), busy.end());
        size_t m = 0;
        for (const auto& b : busy) {
            if (m > 0 && b.first <= busy[m - 1].second)
                busy[m - 1].second = std::max(busy[m - 1].second, b.second);
            else
                busy[m++] = b;
        }
        busy.resize(m);

        // Best-fit over the free gaps (smallest gap that holds the
        // buffer); fall back to the open-ended range past the last
        // conflict. Freed ranges are gaps here, so they are reused.
        int64_t best_off = -1;
        int64_t best_waste = 0;
        int64_t cursor = 0;
        for (const auto& b : busy) {
            int64_t start = alignUp(cursor, align_elems);
            if (start + s.size_elems <= b.first) {
                int64_t waste = b.first - start - s.size_elems;
                if (best_off < 0 || waste < best_waste) {
                    best_off = start;
                    best_waste = waste;
                }
            }
            cursor = std::max(cursor, b.second);
        }
        if (best_off < 0)
            best_off = alignUp(cursor, align_elems);
        s.offset_elems = best_off;
        arena_elems = std::max(arena_elems, best_off + s.size_elems);
        placed.push_back(id);
    }
    return MemoryPlan(std::move(slots), arena_elems, sum_elems, align_elems);
}

Status
MemoryPlan::validateAgainst(const std::vector<PlanNode>& nodes,
                            int output_node) const
{
    auto bad = [](const std::string& msg) {
        return Status(ErrorCode::kInvalidArgument, "memory plan: " + msg);
    };
    if (slots_.size() != nodes.size())
        return bad("covers " + std::to_string(slots_.size()) +
                   " slots, graph has " + std::to_string(nodes.size()));
    if (align_elems_ < 1)
        return bad("non-positive alignment");
    if (arena_elems_ < 0 || sum_elems_ < 0 || arena_elems_ > sum_elems_)
        return bad("arena extent " + std::to_string(arena_elems_) +
                   " exceeds the per-layer sum " + std::to_string(sum_elems_));

    std::vector<PlanSlot> expect = computeLifetimes(nodes, output_node);
    int64_t max_end = 0;
    int64_t sum = 0;
    for (size_t id = 0; id < slots_.size(); ++id) {
        const PlanSlot& s = slots_[id];
        const PlanSlot& e = expect[id];
        if (s.planned != e.planned)
            return bad("slot " + std::to_string(id) +
                       (e.planned ? " misses a live node" : " plans a dead node"));
        if (!s.planned)
            continue;
        if (s.size_elems != e.size_elems)
            return bad("slot " + std::to_string(id) + " size " +
                       std::to_string(s.size_elems) + " != node extent " +
                       std::to_string(e.size_elems));
        if (s.def != e.def || s.last_use != e.last_use)
            return bad("slot " + std::to_string(id) +
                       " lifetime disagrees with the graph's lifetime pass");
        if (s.offset_elems < 0 || s.offset_elems % align_elems_ != 0)
            return bad("slot " + std::to_string(id) + " offset " +
                       std::to_string(s.offset_elems) + " is misaligned");
        if (s.offset_elems + s.size_elems > arena_elems_)
            return bad("slot " + std::to_string(id) + " overruns the arena");
        max_end = std::max(max_end, s.offset_elems + s.size_elems);
        sum += alignUp(s.size_elems, align_elems_);
    }
    if (sum != sum_elems_)
        return bad("per-layer sum " + std::to_string(sum_elems_) +
                   " != recomputed " + std::to_string(sum));
    if (max_end != arena_elems_ && !(max_end == 0 && arena_elems_ == 0))
        return bad("arena extent " + std::to_string(arena_elems_) +
                   " != live high-water mark " + std::to_string(max_end));
    for (size_t i = 0; i < slots_.size(); ++i) {
        if (!slots_[i].planned)
            continue;
        for (size_t j = i + 1; j < slots_.size(); ++j) {
            if (!slots_[j].planned || !lifetimesOverlap(slots_[i], slots_[j]))
                continue;
            int64_t ai = slots_[i].offset_elems;
            int64_t bi = ai + slots_[i].size_elems;
            int64_t aj = slots_[j].offset_elems;
            int64_t bj = aj + slots_[j].size_elems;
            if (ai < bj && aj < bi)
                return bad("live buffers " + std::to_string(i) + " and " +
                           std::to_string(j) + " alias in the arena");
        }
    }
    return Status::OK();
}

}  // namespace patdnn
