/**
 * @file
 * Naive threaded direct convolution: the untuned dense baseline
 * (TFLite-like facade). Parallel over output channels, no tiling, no
 * register blocking, no auto-tuning.
 */
#pragma once

#include "nn/conv_desc.h"
#include "rt/conv_ref.h"
#include "rt/device.h"

namespace patdnn {

/** Untuned dense direct convolution on a device. */
class NaiveConv
{
  public:
    NaiveConv(ConvDesc desc, const Tensor* weight, DeviceSpec device)
        : desc_(std::move(desc)), weight_(weight), device_(std::move(device))
    {
    }

    /** Run for a batch-1 (or batch-N) NCHW input. */
    void run(const Tensor& in, Tensor& out, const Epilogue& ep = {}) const;

  private:
    ConvDesc desc_;
    const Tensor* weight_;
    DeviceSpec device_;
};

}  // namespace patdnn
