/**
 * @file
 * Register-load analysis (Fig. 14b): counts the register load operations
 * the generated code performs with and without LRE, by walking the same
 * PatternPlan the executor runs. The counts are exact for the engine's
 * code structure (one load per input value read, one per output-value
 * read-modify-write read), so the before/after ratio mirrors the
 * paper's profiling experiment.
 */
#pragma once

#include <cstdint>

#include "rt/conv_pattern.h"

namespace patdnn {

/** Load counts attributable to one conv layer's execution. */
struct LoadCounts
{
    int64_t input_loads = 0;    ///< Register loads of input values.
    int64_t output_loads = 0;   ///< Register loads of output accumulators.
    int64_t weight_loads = 0;   ///< Register loads of weight values.
    int64_t total() const { return input_loads + output_loads + weight_loads; }
};

/**
 * Count register loads for executing `fkw` under `lr` on `device`.
 *
 * Without LRE every entry performs its own pass: each output element is
 * re-loaded per entry and every input value is loaded per use. With LRE
 * a kernel makes one pass (single output load per element) and bundled
 * filters share one set of input loads.
 */
LoadCounts analyzeLoads(const ConvDesc& desc, const FkwLayer& fkw,
                        const LayerwiseRep& lr, const DeviceSpec& device);

}  // namespace patdnn
