/**
 * @file
 * Reference convolution: the slow, obviously-correct oracle every other
 * executor is validated against in the equivalence test suite.
 */
#pragma once

#include "nn/conv_desc.h"
#include "tensor/tensor.h"

namespace patdnn {

/** Epilogue applied by executors after accumulation. */
struct Epilogue
{
    const Tensor* bias = nullptr;  ///< Per-output-channel bias or null.
    bool relu = false;             ///< Fused ReLU.
};

/**
 * Single-threaded direct convolution supporting stride, padding,
 * dilation and groups. Input NCHW [n, cin, h, w]; output
 * [n, cout, outH, outW].
 */
void convReference(const ConvDesc& d, const Tensor& weight, const Tensor& in,
                   Tensor& out, const Epilogue& ep = {});

/** Allocate a correctly shaped output tensor for a conv. */
Tensor makeConvOutput(const ConvDesc& d, int64_t batch);

}  // namespace patdnn
