#include "prune/pruners.h"

#include <cmath>

#include "util/logging.h"

namespace patdnn {

std::string
pruneSchemeName(PruneScheme scheme)
{
    switch (scheme) {
      case PruneScheme::kNone: return "dense";
      case PruneScheme::kNonStructured: return "non-structured (magnitude)";
      case PruneScheme::kNonStructuredAdmm: return "non-structured (ADMM)";
      case PruneScheme::kFilter: return "filter";
      case PruneScheme::kChannel: return "channel";
      case PruneScheme::kPattern: return "pattern";
      case PruneScheme::kConnectivity: return "connectivity";
      case PruneScheme::kPatternConnectivity: return "pattern+connectivity";
    }
    return "unknown";
}

namespace {

/** Project every conv layer with the scheme's one-shot projection. */
void
projectScheme(Net& net, PruneScheme scheme, const PruneOptions& opts,
              const PatternSet& set, std::vector<PatternAssignment>* assignments)
{
    auto convs = net.convLayers();
    for (size_t i = 0; i < convs.size(); ++i) {
        Tensor& w = convs[i]->weight();
        switch (scheme) {
          case PruneScheme::kNonStructured: {
            int64_t keep = std::max<int64_t>(
                1, static_cast<int64_t>(std::llround(
                       static_cast<double>(w.numel()) / opts.target_compression)));
            projectMagnitude(w, keep);
            break;
          }
          case PruneScheme::kFilter: {
            int64_t filters = w.shape().dim(0);
            int64_t keep = std::max<int64_t>(
                1, static_cast<int64_t>(std::llround(
                       static_cast<double>(filters) / opts.target_compression)));
            projectFilters(w, keep);
            break;
          }
          case PruneScheme::kChannel: {
            int64_t channels = w.shape().dim(1);
            // The first layer's input channels are the image; keep them.
            int64_t keep = i == 0 ? channels
                                  : std::max<int64_t>(
                                        1, static_cast<int64_t>(std::llround(
                                               static_cast<double>(channels) /
                                               opts.target_compression)));
            projectChannels(w, keep);
            break;
          }
          case PruneScheme::kPattern: {
            PatternAssignment asg = projectPattern(w, set);
            if (assignments != nullptr)
                assignments->push_back(asg);
            break;
          }
          case PruneScheme::kConnectivity: {
            int64_t kernels = w.shape().dim(0) * w.shape().dim(1);
            double rate = i == 0 ? 1.5 : opts.connectivity_rate;
            int64_t alpha = std::max<int64_t>(
                1, static_cast<int64_t>(std::ceil(
                       static_cast<double>(kernels) / rate)));
            projectConnectivity(w, alpha);
            break;
          }
          default:
            PATDNN_CHECK(false, "projectScheme: unsupported scheme");
        }
    }
}

/** Masked fine-tuning shared by the one-shot schemes. */
double
retrainMasked(Net& net, const SyntheticShapes& data, const PruneOptions& opts)
{
    auto masks = captureMasks(net);
    TrainConfig ft;
    ft.epochs = opts.retrain_epochs;
    ft.lr = 5e-4f;
    ft.use_adam = true;
    ft.seed = 1234;
    ft.grad_hook = [&](Net& n) { applyMaskToGrads(n, masks); };
    ft.post_step_hook = [&](Net& n) { applyMaskToWeights(n, masks); };
    return trainNet(net, data, ft).test_accuracy;
}

}  // namespace

PruneReport
pruneWithScheme(Net& net, const SyntheticShapes& data, PruneScheme scheme,
                const PruneOptions& opts)
{
    PruneReport report;
    report.scheme = scheme;
    report.dense_accuracy = evalAccuracy(net, data, data.test());

    if (scheme == PruneScheme::kNone) {
        report.pruned_accuracy = report.dense_accuracy;
        report.conv_compression = 1.0;
        return report;
    }

    PatternSet set;
    bool needs_patterns = scheme == PruneScheme::kPattern ||
                          scheme == PruneScheme::kPatternConnectivity;
    if (needs_patterns) {
        std::vector<const Tensor*> weights;
        for (Tensor* w : net.convWeights())
            weights.push_back(w);
        set = designPatternSet(weights, opts.pattern_count, opts.pattern_entries);
    }

    if (scheme == PruneScheme::kPatternConnectivity) {
        AdmmConfig cfg = opts.admm;
        cfg.enable_pattern = true;
        cfg.enable_connectivity = true;
        cfg.connectivity_rate = opts.connectivity_rate;
        cfg.retrain_epochs = opts.retrain_epochs;
        AdmmResult res = admmPrune(net, data, set, cfg);
        report.pruned_accuracy = res.test_accuracy;
        report.conv_compression = res.conv_compression;
        report.assignments = std::move(res.assignments);
        return report;
    }
    if (scheme == PruneScheme::kPattern) {
        AdmmConfig cfg = opts.admm;
        cfg.enable_pattern = true;
        cfg.enable_connectivity = false;
        cfg.retrain_epochs = opts.retrain_epochs;
        AdmmResult res = admmPrune(net, data, set, cfg);
        report.pruned_accuracy = res.test_accuracy;
        report.conv_compression = res.conv_compression;
        report.assignments = std::move(res.assignments);
        return report;
    }
    if (scheme == PruneScheme::kNonStructuredAdmm) {
        // ADMM-NN-like: ADMM regularization toward the magnitude
        // projection, then hard magnitude prune + retrain. We reuse the
        // connectivity machinery with a per-weight magnitude projection
        // by running the one-shot projection after a proximal run.
        AdmmConfig cfg = opts.admm;
        cfg.enable_pattern = false;
        cfg.enable_connectivity = true;
        // Express the target compression as a kernel-count alpha-free
        // magnitude projection: do proximal training toward connectivity
        // (which regularizes kernels toward sparsity), then project by
        // magnitude to the exact target.
        cfg.connectivity_rate = std::max(1.0, opts.target_compression / 2.0);
        cfg.retrain_epochs = 0;
        admmPrune(net, data, set, cfg);
        projectScheme(net, PruneScheme::kNonStructured, opts, set, nullptr);
        report.pruned_accuracy = retrainMasked(net, data, opts);
        report.conv_compression = convCompressionRatio(net);
        return report;
    }

    // One-shot heuristic schemes.
    projectScheme(net, scheme, opts, set, &report.assignments);
    report.pruned_accuracy = retrainMasked(net, data, opts);
    report.conv_compression = convCompressionRatio(net);
    return report;
}

}  // namespace patdnn
