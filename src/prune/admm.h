/**
 * @file
 * Extended ADMM solution framework (paper Section 4.2).
 *
 * Problem (1): minimize f({W_k}, {b_k}) subject to W_k in S_k (kernel
 * pattern constraint) and W_k in S'_k (connectivity constraint). The
 * solver decomposes into three subproblems per iteration:
 *
 *   1. W-update: SGD/Adam on f plus the two proximal quadratics
 *      rho/2 ||W - Z + U||^2 + rho/2 ||W - Y + V||^2 (pattern
 *      assignment refreshed each iteration by L2-norm metric),
 *   2. Z-update: Euclidean projection onto S_k (projectPattern),
 *   3. Y-update: Euclidean projection onto S'_k (projectConnectivity),
 *
 * followed by dual ascent U += W - Z, V += W - Y, then masked mapping &
 * retraining (hard-prune, freeze the masks, fine-tune survivors).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "prune/pattern_set.h"
#include "prune/projections.h"
#include "train/trainer.h"

namespace patdnn {

/** Configuration for the ADMM pruning run. */
struct AdmmConfig
{
    int admm_iterations = 3;      ///< Outer ADMM iterations.
    int epochs_per_iteration = 2; ///< SGD epochs per W-update.
    int retrain_epochs = 3;       ///< Masked fine-tuning epochs.
    float rho = 0.5f;             ///< Augmented-Lagrangian penalty.
    float rho_growth = 1.5f;      ///< Per-iteration rho ramp (>= 1).
    float lr = 5e-3f;
    /// Optimizer for the W-update. SGD (default) preserves the relative
    /// scale of the proximal gradient rho*(W-Z+U); Adam's per-parameter
    /// normalization washes it out at small scales.
    bool w_update_adam = false;
    int64_t batch_size = 32;
    uint64_t seed = 11;
    bool enable_pattern = true;      ///< Constrain to pattern set S_k.
    bool enable_connectivity = true; ///< Constrain kernel count S'_k.
    /// Connectivity pruning rate: keep ceil(kernels / rate) kernels per
    /// layer (the paper's uniform 3.6x). Ignored when disabled.
    double connectivity_rate = 3.6;
    /// First conv layer is pruned at a milder rate (paper: "smaller,
    /// yet more sensitive to pruning").
    double first_layer_rate = 1.5;
    bool verbose = false;
};

/** Per-iteration convergence diagnostics. */
struct AdmmTrace
{
    /// Relative residuals ||W - Z||_F / ||W||_F and ||W - Y||_F / ||W||_F
    /// per iteration; a healthy run drives these toward zero.
    std::vector<double> pattern_residual;
    std::vector<double> connectivity_residual;
    std::vector<double> loss;  ///< Training loss per iter.
};

/** Outcome of an ADMM pruning run. */
struct AdmmResult
{
    double test_accuracy = 0.0;      ///< After masked retraining.
    double dense_accuracy = 0.0;     ///< Baseline before pruning.
    double conv_compression = 1.0;   ///< Dense/nonzero conv weights.
    AdmmTrace trace;
    /// Final pattern assignment per conv layer (entries -1 for pruned
    /// kernels and for non-3x3 layers).
    std::vector<PatternAssignment> assignments;
};

/**
 * Run joint kernel-pattern + connectivity ADMM pruning on a trained net.
 *
 * The net must already be trained (dense_accuracy is measured first).
 * On return the net's conv weights satisfy both constraints exactly.
 */
AdmmResult admmPrune(Net& net, const SyntheticShapes& data, const PatternSet& set,
                     const AdmmConfig& cfg);

/** Compression ratio helper: dense weight count / non-zero count. */
double convCompressionRatio(Net& net);

}  // namespace patdnn
