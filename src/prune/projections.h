/**
 * @file
 * Euclidean projections onto the paper's constraint sets (Section 4.2).
 *
 * ADMM's second/third subproblems have analytical solutions: project the
 * current weights onto S_k (every kernel matches a pattern from the set)
 * and S'_k (at most alpha_k non-zero kernels). Projections for the
 * baselines (non-structured magnitude, filter, channel) live here too so
 * every pruning scheme in Table 2 shares one code path.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "prune/pattern_set.h"
#include "tensor/tensor.h"

namespace patdnn {

/** Per-kernel pattern assignment for one conv weight tensor. */
struct PatternAssignment
{
    /// pattern index into the set per (filter, kernel), -1 = kernel pruned
    /// away entirely by connectivity pruning.
    std::vector<int> pattern_of_kernel;
    int64_t filters = 0;
    int64_t kernels_per_filter = 0;

    int
    at(int64_t f, int64_t k) const
    {
        return pattern_of_kernel[static_cast<size_t>(f * kernels_per_filter + k)];
    }
};

/**
 * Project onto the kernel-pattern constraint S_k: for every kh x kw
 * kernel keep the candidate pattern with maximum kept energy and zero
 * all other entries. Returns the chosen assignment.
 *
 * Non-3x3 kernels (e.g. ResNet 1x1) are left dense, mirroring the paper
 * ("we apply kernel pattern pruning on all 3x3 ones").
 */
PatternAssignment projectPattern(Tensor& weight, const PatternSet& set);

/**
 * Project onto the connectivity constraint S'_k: keep the `alpha`
 * kernels with largest L2 norm (over the whole layer) and zero the rest.
 * Returns the kept-kernel mask per (filter, kernel).
 */
std::vector<uint8_t> projectConnectivity(Tensor& weight, int64_t alpha);

/**
 * Joint projection used by PatDNN: connectivity first (which kernels
 * survive), then pattern projection on the survivors. `alpha` is the
 * number of kernels kept. Assignment entries for removed kernels are -1.
 */
PatternAssignment projectJoint(Tensor& weight, const PatternSet& set, int64_t alpha);

/** Non-structured magnitude projection: keep the `keep` largest |w|. */
void projectMagnitude(Tensor& weight, int64_t keep);

/** Structured filter pruning: zero all but the `keep` largest-L2 filters. */
void projectFilters(Tensor& weight, int64_t keep);

/**
 * Structured channel pruning: zero all but the `keep` largest-L2 input
 * channels (columns of kernels across all filters).
 */
void projectChannels(Tensor& weight, int64_t keep);

/** L2 norm of each kernel; length = filters * kernels_per_filter. */
std::vector<double> kernelNorms(const Tensor& weight);

/** Count of kernels with any non-zero weight. */
int64_t countNonZeroKernels(const Tensor& weight);

}  // namespace patdnn
