/**
 * @file
 * Post-ADMM int8 quantization front-end.
 *
 * PatDNN prunes in f32; this layer maps the surviving weights onto int8
 * lanes so the dense GEMM backend can run i8×i8→i32 tile kernels
 * (SimdOps::gemm_tile_i8). Two pieces:
 *
 *  - Weights: per-output-channel *symmetric* quantization. Each dim-0
 *    channel gets scale = absmax/127 and values are round-to-nearest
 *    into [-127, 127] (symmetric range: -128 is never produced, so
 *    |q| <= 127 and i8×i8 products stay within 16 bits with headroom).
 *    Zero always maps to zero — pattern-pruned positions stay exactly
 *    zero through quantize→dequantize, preserving the sparsity
 *    structure the ADMM projection paid for.
 *
 *  - Activations: a per-layer ActivationCalibrator observes sample-batch
 *    values and picks one symmetric scale, either from the true absmax
 *    or from a percentile of a fixed-bin |x| histogram (clipping rare
 *    outliers tightens the representable range). Both are deterministic
 *    functions of the observed stream.
 *
 * Requantization back to f32 multiplies the i32 accumulator by
 * weight_scale[ch] * act_scale (rt/quant_epilogue.h); because integer
 * accumulation is exact, the whole quantized path is bit-identical
 * across ISAs and blockings for free.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace patdnn {

/** How ActivationCalibrator turns observed values into a scale. */
enum class CalibrationMethod : uint32_t
{
    kAbsMax = 0,      ///< scale = max |x| / 127 (exact range).
    kPercentile = 1,  ///< scale from a |x|-histogram percentile (clips tails).
};

/** Display name ("absmax" / "percentile"). */
const char* calibrationMethodName(CalibrationMethod m);

/** Symmetric scale for a range: absmax/127, or 1 when absmax is 0 (an
 * all-zero tensor quantizes to zeros under any positive scale). */
float symmetricScaleFor(float absmax);

/** Round-to-nearest saturating quantization of one value at 1/scale:
 * clamped to [-127, 127], ties away from zero (std::nearbyint in the
 * default rounding mode is to-even; we use round-half-away so the
 * mapping is symmetric in sign). 0.0f maps to 0 exactly. */
int8_t quantizeValue(float v, float inv_scale);

/** Per-output-channel symmetric quantization of a weight tensor. */
struct QuantizedWeights
{
    std::vector<int8_t> data;   ///< Same element order as the source tensor.
    std::vector<float> scales;  ///< One scale per dim-0 channel.

    /** Elements per channel (source numel / channels). */
    int64_t channel_elems = 0;
};

/**
 * Quantize `w` ([cout, ...]) per dim-0 channel: channel scales are
 * symmetricScaleFor(channel absmax), data is quantizeValue() applied
 * element-wise. When `scales` is non-empty it overrides the derived
 * scales (the artifact-restore path, where the stored scales are
 * authoritative) and must have one entry per channel.
 */
QuantizedWeights quantizeWeightsPerChannel(
    const Tensor& w, const std::vector<float>& scales = {});

/** Dequantize back to f32 (q * scale per channel) into `shape`; the
 * round-trip error of any element is bounded by scale/2. */
Tensor dequantizeWeights(const QuantizedWeights& q, const Shape& shape);

/**
 * Streaming per-layer activation-range observer. Feed it every value of
 * the calibration batch at this layer's *input*, then read scale().
 * Deterministic: the scale is a pure function of the observed stream
 * (kAbsMax trivially; kPercentile through a fixed 2048-bin histogram
 * over [0, range) whose range doubles by folding pairs of bins, so no
 * floating-point accumulation order is involved).
 */
class ActivationCalibrator
{
  public:
    explicit ActivationCalibrator(
        CalibrationMethod method = CalibrationMethod::kAbsMax,
        double percentile = 99.9);

    void observe(const float* x, int64_t n);
    void observe(const Tensor& t);

    /** Symmetric scale for the observed stream (1.0 before any data). */
    float scale() const;

    /** The effective absmax scale() is derived from: the true maximum
     * for kAbsMax, the chosen percentile bin's upper edge otherwise. */
    float effectiveAbsMax() const;

    int64_t observedCount() const { return count_; }
    CalibrationMethod method() const { return method_; }

  private:
    static constexpr int kBins = 2048;

    void growRange(float needed);

    CalibrationMethod method_;
    double percentile_;
    float max_ = 0.0f;
    float range_ = 1.0f;  ///< Histogram covers |x| in [0, range_).
    int64_t count_ = 0;
    std::vector<int64_t> hist_;
};

}  // namespace patdnn
