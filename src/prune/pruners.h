/**
 * @file
 * High-level pruning APIs covering every scheme in the paper's Table 2
 * plus the Table 4 baselines, all returning a common report so benches
 * can tabulate accuracy vs compression vs scheme.
 */
#pragma once

#include <string>
#include <vector>

#include "prune/admm.h"

namespace patdnn {

/** Pruning schemes compared in the paper. */
enum class PruneScheme
{
    kNone,             ///< Dense baseline.
    kNonStructured,    ///< Magnitude pruning, iterative (Deep-Compression-like).
    kNonStructuredAdmm,///< ADMM-regularized magnitude pruning (ADMM-NN-like).
    kFilter,           ///< Structured filter pruning.
    kChannel,          ///< Structured channel pruning.
    kPattern,          ///< Kernel pattern pruning only.
    kConnectivity,     ///< Connectivity pruning only.
    kPatternConnectivity, ///< PatDNN: joint pattern + connectivity.
};

/** Display name of a scheme. */
std::string pruneSchemeName(PruneScheme scheme);

/** Common pruning report (rows of Tables 2/4). */
struct PruneReport
{
    PruneScheme scheme = PruneScheme::kNone;
    double dense_accuracy = 0.0;
    double pruned_accuracy = 0.0;
    double conv_compression = 1.0;
    std::vector<PatternAssignment> assignments;  ///< For pattern schemes.
};

/** Options shared by the scheme runners. */
struct PruneOptions
{
    /// Overall conv weight compression target (e.g. 8.0 for 8x). For
    /// pattern-only pruning the rate is fixed at kernel_size/entries.
    double target_compression = 8.0;
    int pattern_count = 8;       ///< Candidate set size k.
    int pattern_entries = 4;     ///< Kept entries per kernel.
    double connectivity_rate = 3.6;
    int retrain_epochs = 3;
    AdmmConfig admm;             ///< ADMM knobs for ADMM-based schemes.
};

/**
 * Prune a trained net with the given scheme and fine-tune.
 *
 * Heuristic (non-ADMM) schemes project once then retrain with frozen
 * masks, matching the iterative-pruning baselines; ADMM schemes run the
 * full extended framework.
 */
PruneReport pruneWithScheme(Net& net, const SyntheticShapes& data, PruneScheme scheme,
                            const PruneOptions& opts);

}  // namespace patdnn
