/**
 * @file
 * Pattern-set design (paper Section 4.1): mine the natural patterns of a
 * trained model's kernels and keep the top-k most frequent ones as the
 * candidate set the ADMM projection selects from.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "prune/pattern.h"
#include "tensor/tensor.h"

namespace patdnn {

/** A candidate pattern set shared by every 3x3 conv layer of a model. */
struct PatternSet
{
    std::vector<Pattern> patterns;

    /** Number of candidate patterns. */
    int size() const { return static_cast<int>(patterns.size()); }

    /** Index of the pattern with maximum kept energy for this kernel. */
    int bestFor(const float* kernel) const;
};

/** Frequency of one natural pattern across a model's kernels. */
struct PatternFrequency
{
    Pattern pattern;
    int64_t count = 0;
};

/**
 * Scan every kh x kw kernel of every weight tensor, compute its natural
 * pattern, and histogram the results. Weights are OIHW conv tensors;
 * non-3x3 tensors are skipped (the paper applies patterns to 3x3 only).
 */
std::vector<PatternFrequency> minePatternFrequencies(
    const std::vector<const Tensor*>& conv_weights, int entries = 4);

/**
 * Build the top-k pattern candidate set from mined frequencies
 * (ties broken by mask value for determinism).
 */
PatternSet selectTopK(const std::vector<PatternFrequency>& freqs, int k);

/** Convenience: mine + select in one call. */
PatternSet designPatternSet(const std::vector<const Tensor*>& conv_weights, int k,
                            int entries = 4);

/**
 * A fixed, model-independent canonical set used when no pre-trained
 * weights exist yet (e.g. pruning from scratch): the k patterns chosen
 * to cover all 8 center-adjacent orientations as evenly as possible.
 */
PatternSet canonicalPatternSet(int k);

}  // namespace patdnn
