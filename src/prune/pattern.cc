#include "prune/pattern.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace patdnn {

Pattern::Pattern(int64_t kh, int64_t kw, uint32_t mask) : kh_(kh), kw_(kw), mask_(mask)
{
    PATDNN_CHECK_LE(kh * kw, 32, "pattern mask limited to 32 positions");
}

Pattern::Pattern(int64_t kh, int64_t kw, const std::vector<int>& kept) : kh_(kh), kw_(kw)
{
    PATDNN_CHECK_LE(kh * kw, 32, "pattern mask limited to 32 positions");
    for (int p : kept) {
        PATDNN_CHECK(p >= 0 && p < kh * kw, "kept position out of range: " << p);
        mask_ |= (1u << p);
    }
}

int
Pattern::popcount() const
{
    return std::popcount(mask_);
}

bool
Pattern::keeps(int64_t r, int64_t c) const
{
    return (mask_ >> (r * kw_ + c)) & 1u;
}

std::vector<int>
Pattern::keptPositions() const
{
    std::vector<int> pos;
    for (int i = 0; i < kh_ * kw_; ++i)
        if ((mask_ >> i) & 1u)
            pos.push_back(i);
    return pos;
}

bool
Pattern::keepsCenter() const
{
    if (kh_ % 2 == 0 || kw_ % 2 == 0)
        return false;
    return keeps(kh_ / 2, kw_ / 2);
}

double
Pattern::keptEnergy(const float* kernel) const
{
    double e = 0.0;
    for (int i = 0; i < kh_ * kw_; ++i)
        if ((mask_ >> i) & 1u)
            e += static_cast<double>(kernel[i]) * kernel[i];
    return e;
}

void
Pattern::apply(float* kernel) const
{
    for (int i = 0; i < kh_ * kw_; ++i)
        if (!((mask_ >> i) & 1u))
            kernel[i] = 0.0f;
}

std::string
Pattern::str() const
{
    std::ostringstream out;
    for (int64_t r = 0; r < kh_; ++r) {
        for (int64_t c = 0; c < kw_; ++c)
            out << (keeps(r, c) ? 'x' : '.');
        if (r + 1 < kh_)
            out << '\n';
    }
    return out.str();
}

std::vector<Pattern>
allNaturalPatterns3x3()
{
    std::vector<Pattern> out;
    const int center = 4;
    for (int a = 0; a < 9; ++a) {
        if (a == center)
            continue;
        for (int b = a + 1; b < 9; ++b) {
            if (b == center)
                continue;
            for (int c = b + 1; c < 9; ++c) {
                if (c == center)
                    continue;
                out.emplace_back(3, 3, std::vector<int>{center, a, b, c});
            }
        }
    }
    PATDNN_CHECK_EQ(out.size(), 56u, "C(8,3) natural patterns");
    return out;
}

Pattern
naturalPatternOf(const float* kernel, int64_t kh, int64_t kw, int entries)
{
    PATDNN_CHECK(kh % 2 == 1 && kw % 2 == 1, "natural pattern needs odd kernel");
    PATDNN_CHECK_GE(entries, 1, "entries");
    int n = static_cast<int>(kh * kw);
    PATDNN_CHECK_LE(entries, n, "entries exceed kernel size");
    int center = static_cast<int>((kh / 2) * kw + kw / 2);
    std::vector<int> order;
    for (int i = 0; i < n; ++i)
        if (i != center)
            order.push_back(i);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return std::fabs(kernel[a]) > std::fabs(kernel[b]);
    });
    std::vector<int> kept = {center};
    for (int i = 0; i < entries - 1 && i < static_cast<int>(order.size()); ++i)
        kept.push_back(order[static_cast<size_t>(i)]);
    return Pattern(kh, kw, kept);
}

}  // namespace patdnn
