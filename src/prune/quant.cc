#include "prune/quant.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace patdnn {

const char*
calibrationMethodName(CalibrationMethod m)
{
    switch (m) {
      case CalibrationMethod::kAbsMax: return "absmax";
      case CalibrationMethod::kPercentile: return "percentile";
    }
    return "unknown";
}

float
symmetricScaleFor(float absmax)
{
    if (!(absmax > 0.0f))
        return 1.0f;
    return absmax / 127.0f;
}

int8_t
quantizeValue(float v, float inv_scale)
{
    // Round half away from zero: symmetric in sign, so q(-v) == -q(v)
    // and exact zeros stay exactly zero.
    float scaled = v * inv_scale;
    float rounded = scaled >= 0.0f ? std::floor(scaled + 0.5f)
                                   : std::ceil(scaled - 0.5f);
    rounded = std::min(127.0f, std::max(-127.0f, rounded));
    return static_cast<int8_t>(rounded);
}

QuantizedWeights
quantizeWeightsPerChannel(const Tensor& w, const std::vector<float>& scales)
{
    PATDNN_CHECK(w.shape().rank() >= 1 && w.numel() > 0,
                 "quantizeWeightsPerChannel needs a non-empty tensor");
    int64_t channels = w.shape().dim(0);
    QuantizedWeights q;
    q.channel_elems = w.numel() / channels;
    q.data.resize(static_cast<size_t>(w.numel()));
    if (!scales.empty()) {
        PATDNN_CHECK_EQ(static_cast<int64_t>(scales.size()), channels,
                        "override scales must cover every output channel");
        q.scales = scales;
    } else {
        q.scales.resize(static_cast<size_t>(channels));
        for (int64_t c = 0; c < channels; ++c) {
            const float* p = w.data() + c * q.channel_elems;
            float absmax = 0.0f;
            for (int64_t i = 0; i < q.channel_elems; ++i)
                absmax = std::max(absmax, std::fabs(p[i]));
            q.scales[static_cast<size_t>(c)] = symmetricScaleFor(absmax);
        }
    }
    for (int64_t c = 0; c < channels; ++c) {
        float scale = q.scales[static_cast<size_t>(c)];
        float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
        const float* p = w.data() + c * q.channel_elems;
        int8_t* d = q.data.data() + c * q.channel_elems;
        for (int64_t i = 0; i < q.channel_elems; ++i)
            d[i] = quantizeValue(p[i], inv);
    }
    return q;
}

Tensor
dequantizeWeights(const QuantizedWeights& q, const Shape& shape)
{
    PATDNN_CHECK_EQ(shape.numel(), static_cast<int64_t>(q.data.size()),
                    "dequantizeWeights shape/data mismatch");
    Tensor out(shape);
    int64_t channels = shape.dim(0);
    for (int64_t c = 0; c < channels; ++c) {
        float scale = q.scales[static_cast<size_t>(c)];
        const int8_t* d = q.data.data() + c * q.channel_elems;
        float* p = out.data() + c * q.channel_elems;
        for (int64_t i = 0; i < q.channel_elems; ++i)
            p[i] = static_cast<float>(d[i]) * scale;
    }
    return out;
}

// ---------------------------------------------------------------------------
// ActivationCalibrator
// ---------------------------------------------------------------------------

ActivationCalibrator::ActivationCalibrator(CalibrationMethod method,
                                           double percentile)
    : method_(method), percentile_(percentile)
{
    PATDNN_CHECK(percentile_ > 0.0 && percentile_ <= 100.0,
                 "calibration percentile must be in (0, 100]");
    if (method_ == CalibrationMethod::kPercentile)
        hist_.assign(kBins, 0);
}

void
ActivationCalibrator::growRange(float needed)
{
    // Double the covered range, folding bin pairs, until |x| fits. The
    // fold is integer-exact, so the histogram is independent of the
    // order in which large values arrive relative to small ones only up
    // to bin resolution — which is all the percentile read uses.
    while (needed >= range_) {
        for (int b = 0; b < kBins / 2; ++b)
            hist_[static_cast<size_t>(b)] =
                hist_[static_cast<size_t>(2 * b)] +
                hist_[static_cast<size_t>(2 * b + 1)];
        std::fill(hist_.begin() + kBins / 2, hist_.end(), 0);
        range_ *= 2.0f;
    }
}

void
ActivationCalibrator::observe(const float* x, int64_t n)
{
    if (method_ == CalibrationMethod::kAbsMax) {
        for (int64_t i = 0; i < n; ++i)
            max_ = std::max(max_, std::fabs(x[i]));
        count_ += n;
        return;
    }
    for (int64_t i = 0; i < n; ++i) {
        float a = std::fabs(x[i]);
        if (!(a < 1e30f))  // Drop NaN/inf: one poisoned value must not
            continue;      // blow the whole layer's range.
        max_ = std::max(max_, a);
        if (a >= range_)
            growRange(a);
        int bin = static_cast<int>(a / range_ * kBins);
        hist_[static_cast<size_t>(std::min(bin, kBins - 1))] += 1;
        ++count_;
    }
}

void
ActivationCalibrator::observe(const Tensor& t)
{
    observe(t.data(), t.numel());
}

float
ActivationCalibrator::effectiveAbsMax() const
{
    if (count_ == 0)
        return 0.0f;
    if (method_ == CalibrationMethod::kAbsMax)
        return max_;
    // Smallest bin upper-edge covering `percentile_` percent of the
    // observed values; clipping the tail above it trades saturation of
    // rare outliers for resolution on the bulk.
    int64_t target = static_cast<int64_t>(
        std::ceil(percentile_ / 100.0 * static_cast<double>(count_)));
    int64_t seen = 0;
    for (int b = 0; b < kBins; ++b) {
        seen += hist_[static_cast<size_t>(b)];
        if (seen >= target)
            return range_ * static_cast<float>(b + 1) /
                   static_cast<float>(kBins);
    }
    return max_;
}

float
ActivationCalibrator::scale() const
{
    if (count_ == 0)
        return 1.0f;
    return symmetricScaleFor(effectiveAbsMax());
}

}  // namespace patdnn
