#include "prune/admm.h"

#include <cmath>

#include "util/logging.h"

namespace patdnn {
namespace {

/** Per-layer ADMM auxiliary/dual state mirrored over the conv weights. */
struct LayerState
{
    Tensor z, y, u, v;  ///< Auxiliary (Z, Y) and scaled duals (U, V).
    int64_t alpha = 0;  ///< Kernels kept by connectivity pruning.
    bool is_3x3 = false;
};

double
frobeniusDiff(const Tensor& a, const Tensor& b)
{
    double s = 0.0;
    for (int64_t i = 0; i < a.numel(); ++i) {
        double d = static_cast<double>(a[i]) - b[i];
        s += d * d;
    }
    return std::sqrt(s);
}

}  // namespace

double
convCompressionRatio(Net& net)
{
    int64_t dense = 0, nnz = 0;
    for (Tensor* w : net.convWeights()) {
        dense += w->numel();
        nnz += w->countNonZero();
    }
    return nnz == 0 ? 0.0 : static_cast<double>(dense) / static_cast<double>(nnz);
}

AdmmResult
admmPrune(Net& net, const SyntheticShapes& data, const PatternSet& set,
          const AdmmConfig& cfg)
{
    AdmmResult result;
    result.dense_accuracy = evalAccuracy(net, data, data.test());

    auto convs = net.convLayers();
    PATDNN_CHECK(!convs.empty(), "net has no conv layers");

    // Initialize per-layer state. Z and Y start at the projections of
    // the pre-trained weights; duals start at zero.
    std::vector<LayerState> state(convs.size());
    for (size_t i = 0; i < convs.size(); ++i) {
        Tensor& w = convs[i]->weight();
        LayerState& s = state[i];
        s.is_3x3 = w.shape().dim(2) == 3 && w.shape().dim(3) == 3;
        int64_t kernels = w.shape().dim(0) * w.shape().dim(1);
        double rate = (i == 0) ? cfg.first_layer_rate : cfg.connectivity_rate;
        s.alpha = std::max<int64_t>(1, static_cast<int64_t>(
            std::ceil(static_cast<double>(kernels) / rate)));
        s.z = w;
        if (cfg.enable_pattern)
            projectPattern(s.z, set);
        s.y = w;
        if (cfg.enable_connectivity)
            projectConnectivity(s.y, s.alpha);
        s.u = Tensor(w.shape());
        s.v = Tensor(w.shape());
    }

    // ADMM iterations.
    float rho = cfg.rho;
    for (int iter = 0; iter < cfg.admm_iterations; ++iter) {
        // Subproblem 1: W-update. The proximal quadratic terms
        // rho/2 ||W - Z + U||^2 + rho/2 ||W - Y + V||^2 contribute
        // gradient rho * (W - Z + U) + rho * (W - Y + V), injected via
        // the grad hook. (This is exactly d/dW of the quadratics.)
        // rho ramps per iteration so late iterations pin W to the
        // constraint sets even under Adam's adaptive step sizes.
        TrainConfig tc;
        tc.epochs = cfg.epochs_per_iteration;
        tc.batch_size = cfg.batch_size;
        tc.lr = cfg.lr;
        tc.use_adam = cfg.w_update_adam;
        tc.seed = cfg.seed + static_cast<uint64_t>(iter);
        tc.grad_hook = [&](Net& n) {
            auto cls = n.convLayers();
            for (size_t i = 0; i < cls.size(); ++i) {
                Tensor& w = cls[i]->weight();
                Tensor& g = cls[i]->weightGrad();
                const LayerState& s = state[i];
                for (int64_t j = 0; j < w.numel(); ++j) {
                    float prox = 0.0f;
                    if (cfg.enable_pattern)
                        prox += rho * (w[j] - s.z[j] + s.u[j]);
                    if (cfg.enable_connectivity)
                        prox += rho * (w[j] - s.y[j] + s.v[j]);
                    g[j] += prox;
                }
            }
        };
        TrainResult tr = trainNet(net, data, tc);
        result.trace.loss.push_back(tr.final_loss);

        // Subproblems 2 & 3: analytical Euclidean projections, then
        // dual ascent. The recorded residual is the direct constraint
        // violation ||W - Proj(W)||_F / ||W||_F (the dual-shifted
        // distance ||W - Z|| grows with U by construction and is not a
        // convergence signal).
        double pat_res = 0.0, conn_res = 0.0, w_norm = 0.0;
        for (size_t i = 0; i < convs.size(); ++i)
            w_norm += convs[i]->weight().normSq();
        w_norm = std::sqrt(w_norm) + 1e-12;
        for (size_t i = 0; i < convs.size(); ++i) {
            Tensor& w = convs[i]->weight();
            LayerState& s = state[i];
            if (cfg.enable_pattern) {
                Tensor proj = w;
                projectPattern(proj, set);
                pat_res += frobeniusDiff(w, proj);
                // Z^{l+1} = Proj_{S_k}(W + U).
                s.z = w;
                for (int64_t j = 0; j < w.numel(); ++j)
                    s.z[j] += s.u[j];
                projectPattern(s.z, set);
                for (int64_t j = 0; j < w.numel(); ++j)
                    s.u[j] += w[j] - s.z[j];
            }
            if (cfg.enable_connectivity) {
                Tensor proj = w;
                projectConnectivity(proj, s.alpha);
                conn_res += frobeniusDiff(w, proj);
                // Y^{l+1} = Proj_{S'_k}(W + V).
                s.y = w;
                for (int64_t j = 0; j < w.numel(); ++j)
                    s.y[j] += s.v[j];
                projectConnectivity(s.y, s.alpha);
                for (int64_t j = 0; j < w.numel(); ++j)
                    s.v[j] += w[j] - s.y[j];
            }
        }
        result.trace.pattern_residual.push_back(pat_res / w_norm);
        result.trace.connectivity_residual.push_back(conn_res / w_norm);
        rho *= cfg.rho_growth;
        if (cfg.verbose)
            logMessage(LogLevel::kInfo,
                       "ADMM iter " + std::to_string(iter) + ": loss " +
                           std::to_string(tr.final_loss) + " |W-Z| " +
                           std::to_string(pat_res) + " |W-Y| " +
                           std::to_string(conn_res));
    }

    // Masked mapping: hard-project the weights onto both constraints.
    result.assignments.resize(convs.size());
    for (size_t i = 0; i < convs.size(); ++i) {
        Tensor& w = convs[i]->weight();
        LayerState& s = state[i];
        if (cfg.enable_pattern && cfg.enable_connectivity) {
            result.assignments[i] = projectJoint(w, set, s.alpha);
        } else if (cfg.enable_pattern) {
            result.assignments[i] = projectPattern(w, set);
        } else if (cfg.enable_connectivity) {
            auto keep = projectConnectivity(w, s.alpha);
            PatternAssignment asg;
            asg.filters = w.shape().dim(0);
            asg.kernels_per_filter = w.shape().dim(1);
            asg.pattern_of_kernel.assign(keep.size(), -1);
            result.assignments[i] = asg;
        }
    }

    // Masked retraining: freeze the zero structure, fine-tune survivors.
    auto masks = captureMasks(net);
    TrainConfig ft;
    ft.epochs = cfg.retrain_epochs;
    ft.batch_size = cfg.batch_size;
    ft.lr = cfg.lr * 0.5f;
    ft.use_adam = true;
    ft.seed = cfg.seed + 1000;
    ft.grad_hook = [&](Net& n) { applyMaskToGrads(n, masks); };
    ft.post_step_hook = [&](Net& n) { applyMaskToWeights(n, masks); };
    TrainResult ftr = trainNet(net, data, ft);

    result.test_accuracy = ftr.test_accuracy;
    result.conv_compression = convCompressionRatio(net);
    return result;
}

}  // namespace patdnn
