#include "prune/pattern_set.h"

#include <algorithm>
#include <map>

#include "util/logging.h"

namespace patdnn {

int
PatternSet::bestFor(const float* kernel) const
{
    PATDNN_CHECK(!patterns.empty(), "empty pattern set");
    int best = 0;
    double best_e = -1.0;
    for (size_t i = 0; i < patterns.size(); ++i) {
        double e = patterns[i].keptEnergy(kernel);
        if (e > best_e) {
            best_e = e;
            best = static_cast<int>(i);
        }
    }
    return best;
}

std::vector<PatternFrequency>
minePatternFrequencies(const std::vector<const Tensor*>& conv_weights, int entries)
{
    std::map<uint32_t, int64_t> hist;
    for (const Tensor* w : conv_weights) {
        if (w == nullptr || w->shape().rank() != 4)
            continue;
        int64_t kh = w->shape().dim(2);
        int64_t kw = w->shape().dim(3);
        if (kh != 3 || kw != 3)
            continue;
        int64_t kernels = w->shape().dim(0) * w->shape().dim(1);
        for (int64_t k = 0; k < kernels; ++k) {
            const float* kp = w->data() + k * kh * kw;
            Pattern nat = naturalPatternOf(kp, kh, kw, entries);
            hist[nat.mask()] += 1;
        }
    }
    std::vector<PatternFrequency> out;
    out.reserve(hist.size());
    for (const auto& [mask, count] : hist)
        out.push_back({Pattern(3, 3, mask), count});
    std::sort(out.begin(), out.end(), [](const PatternFrequency& a, const PatternFrequency& b) {
        if (a.count != b.count)
            return a.count > b.count;
        return a.pattern.mask() < b.pattern.mask();
    });
    return out;
}

PatternSet
selectTopK(const std::vector<PatternFrequency>& freqs, int k)
{
    PATDNN_CHECK_GT(k, 0, "pattern set size");
    PatternSet set;
    for (const auto& f : freqs) {
        set.patterns.push_back(f.pattern);
        if (set.size() == k)
            break;
    }
    PATDNN_CHECK(!set.patterns.empty(), "no patterns mined; need 3x3 conv weights");
    // Pad with canonical patterns if the model had too few distinct
    // natural patterns (tiny models).
    if (set.size() < k) {
        for (const auto& p : canonicalPatternSet(56).patterns) {
            bool dup = false;
            for (const auto& q : set.patterns)
                if (q == p)
                    dup = true;
            if (!dup)
                set.patterns.push_back(p);
            if (set.size() == k)
                break;
        }
    }
    return set;
}

PatternSet
designPatternSet(const std::vector<const Tensor*>& conv_weights, int k, int entries)
{
    return selectTopK(minePatternFrequencies(conv_weights, entries), k);
}

PatternSet
canonicalPatternSet(int k)
{
    PATDNN_CHECK_GT(k, 0, "pattern set size");
    // Orientation-balanced 4-entry patterns: the center plus three of
    // its neighbours, sweeping edge-anchored then corner-anchored
    // shapes. The first 8 match the L-shaped patterns the pattern
    // theory work (PCONV) identifies as accuracy-preserving.
    const std::vector<std::vector<int>> shapes = {
        {4, 0, 1, 3}, {4, 1, 2, 5}, {4, 3, 6, 7}, {4, 5, 7, 8},
        {4, 0, 1, 2}, {4, 6, 7, 8}, {4, 0, 3, 6}, {4, 2, 5, 8},
        {4, 1, 3, 5}, {4, 3, 5, 7}, {4, 1, 5, 7}, {4, 1, 3, 7},
        {4, 0, 2, 6}, {4, 0, 2, 8}, {4, 0, 6, 8}, {4, 2, 6, 8},
    };
    PatternSet set;
    for (const auto& s : shapes) {
        set.patterns.emplace_back(3, 3, s);
        if (set.size() == k)
            return set;
    }
    // Beyond 16, extend with the remaining natural patterns.
    for (const auto& p : allNaturalPatterns3x3()) {
        bool dup = false;
        for (const auto& q : set.patterns)
            if (q == p)
                dup = true;
        if (!dup)
            set.patterns.push_back(p);
        if (set.size() == k)
            return set;
    }
    return set;
}

}  // namespace patdnn
