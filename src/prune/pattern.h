/**
 * @file
 * Kernel patterns: the fine-grained pruning shapes inside coarse-grained
 * structures that are the paper's central idea (Section 3.1).
 *
 * A pattern is the set of kernel positions whose weights are kept. For
 * the common 3x3 kernel the paper uses 4-entry patterns that always keep
 * the central weight; with the center fixed there are C(8,3) = 56
 * possible "natural" patterns.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace patdnn {

/** A kept-position bitmask over a kh x kw kernel (row-major bits). */
class Pattern
{
  public:
    Pattern() = default;

    /** Build from a bitmask; bit (r*kw+c) set means position kept. */
    Pattern(int64_t kh, int64_t kw, uint32_t mask);

    /** Build from explicit kept positions (r*kw+c indices). */
    Pattern(int64_t kh, int64_t kw, const std::vector<int>& kept);

    int64_t kh() const { return kh_; }
    int64_t kw() const { return kw_; }
    uint32_t mask() const { return mask_; }

    /** Number of kept entries. */
    int popcount() const;

    /** Whether position (r, c) is kept. */
    bool keeps(int64_t r, int64_t c) const;

    /** Kept positions as flat r*kw+c indices, ascending. */
    std::vector<int> keptPositions() const;

    /** Whether the central position of an odd-sized kernel is kept. */
    bool keepsCenter() const;

    /**
     * Kept L2 energy: sum of squares of kernel entries at kept positions.
     * The projection picks the pattern maximizing this (equivalently
     * minimizing the pruning distortion).
     */
    double keptEnergy(const float* kernel) const;

    /** Zero all positions of `kernel` the pattern does not keep. */
    void apply(float* kernel) const;

    /** ASCII art, 'x' kept / '.' pruned, rows separated by '\n'. */
    std::string str() const;

    bool operator==(const Pattern& o) const
    {
        return kh_ == o.kh_ && kw_ == o.kw_ && mask_ == o.mask_;
    }

  private:
    int64_t kh_ = 0;
    int64_t kw_ = 0;
    uint32_t mask_ = 0;
};

/**
 * Enumerate all 4-entry natural patterns of a 3x3 kernel: center kept
 * plus every choice of 3 of the remaining 8 positions (56 total).
 */
std::vector<Pattern> allNaturalPatterns3x3();

/**
 * The natural pattern of one kernel: the center plus the
 * (entries-1) largest-magnitude remaining positions (Section 4.1).
 */
Pattern naturalPatternOf(const float* kernel, int64_t kh, int64_t kw, int entries = 4);

}  // namespace patdnn
