#include "prune/projections.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace patdnn {
namespace {

void
checkConvWeight(const Tensor& w)
{
    PATDNN_CHECK_EQ(w.shape().rank(), 4, "conv weight must be OIHW");
}

}  // namespace

std::vector<double>
kernelNorms(const Tensor& weight)
{
    checkConvWeight(weight);
    int64_t filters = weight.shape().dim(0);
    int64_t kernels = weight.shape().dim(1);
    int64_t ksz = weight.shape().dim(2) * weight.shape().dim(3);
    std::vector<double> norms(static_cast<size_t>(filters * kernels), 0.0);
    for (int64_t i = 0; i < filters * kernels; ++i) {
        const float* kp = weight.data() + i * ksz;
        double s = 0.0;
        for (int64_t j = 0; j < ksz; ++j)
            s += static_cast<double>(kp[j]) * kp[j];
        norms[static_cast<size_t>(i)] = std::sqrt(s);
    }
    return norms;
}

int64_t
countNonZeroKernels(const Tensor& weight)
{
    checkConvWeight(weight);
    int64_t filters = weight.shape().dim(0);
    int64_t kernels = weight.shape().dim(1);
    int64_t ksz = weight.shape().dim(2) * weight.shape().dim(3);
    int64_t n = 0;
    for (int64_t i = 0; i < filters * kernels; ++i) {
        const float* kp = weight.data() + i * ksz;
        for (int64_t j = 0; j < ksz; ++j) {
            if (kp[j] != 0.0f) {
                ++n;
                break;
            }
        }
    }
    return n;
}

PatternAssignment
projectPattern(Tensor& weight, const PatternSet& set)
{
    checkConvWeight(weight);
    int64_t filters = weight.shape().dim(0);
    int64_t kernels = weight.shape().dim(1);
    int64_t kh = weight.shape().dim(2);
    int64_t kw = weight.shape().dim(3);
    PatternAssignment asg;
    asg.filters = filters;
    asg.kernels_per_filter = kernels;
    asg.pattern_of_kernel.assign(static_cast<size_t>(filters * kernels), -1);
    if (kh != 3 || kw != 3)
        return asg;  // Patterns apply to 3x3 kernels only.
    for (int64_t i = 0; i < filters * kernels; ++i) {
        float* kp = weight.data() + i * kh * kw;
        int best = set.bestFor(kp);
        set.patterns[static_cast<size_t>(best)].apply(kp);
        asg.pattern_of_kernel[static_cast<size_t>(i)] = best;
    }
    return asg;
}

std::vector<uint8_t>
projectConnectivity(Tensor& weight, int64_t alpha)
{
    checkConvWeight(weight);
    int64_t filters = weight.shape().dim(0);
    int64_t kernels = weight.shape().dim(1);
    int64_t ksz = weight.shape().dim(2) * weight.shape().dim(3);
    int64_t total = filters * kernels;
    PATDNN_CHECK(alpha >= 0 && alpha <= total, "alpha out of range");
    std::vector<double> norms = kernelNorms(weight);
    std::vector<int64_t> order(static_cast<size_t>(total));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
        return norms[static_cast<size_t>(a)] > norms[static_cast<size_t>(b)];
    });
    std::vector<uint8_t> keep(static_cast<size_t>(total), 0);
    for (int64_t i = 0; i < alpha; ++i)
        keep[static_cast<size_t>(order[static_cast<size_t>(i)])] = 1;
    for (int64_t i = 0; i < total; ++i) {
        if (!keep[static_cast<size_t>(i)]) {
            float* kp = weight.data() + i * ksz;
            std::fill(kp, kp + ksz, 0.0f);
        }
    }
    return keep;
}

PatternAssignment
projectJoint(Tensor& weight, const PatternSet& set, int64_t alpha)
{
    std::vector<uint8_t> keep = projectConnectivity(weight, alpha);
    PatternAssignment asg = projectPattern(weight, set);
    for (size_t i = 0; i < keep.size(); ++i)
        if (!keep[i])
            asg.pattern_of_kernel[i] = -1;
    return asg;
}

void
projectMagnitude(Tensor& weight, int64_t keep)
{
    int64_t n = weight.numel();
    PATDNN_CHECK(keep >= 0 && keep <= n, "keep out of range");
    if (keep == n)
        return;
    std::vector<float> mags(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i)
        mags[static_cast<size_t>(i)] = std::fabs(weight[i]);
    std::nth_element(mags.begin(), mags.begin() + static_cast<size_t>(n - keep),
                     mags.end());
    float threshold = mags[static_cast<size_t>(n - keep)];
    // Zero strictly-below-threshold first, then trim ties to hit `keep`.
    int64_t kept = 0;
    for (int64_t i = 0; i < n; ++i) {
        if (std::fabs(weight[i]) < threshold)
            weight[i] = 0.0f;
        else
            ++kept;
    }
    for (int64_t i = 0; i < n && kept > keep; ++i) {
        if (weight[i] != 0.0f && std::fabs(weight[i]) == threshold) {
            weight[i] = 0.0f;
            --kept;
        }
    }
}

void
projectFilters(Tensor& weight, int64_t keep)
{
    checkConvWeight(weight);
    int64_t filters = weight.shape().dim(0);
    int64_t fsz = weight.shape().dim(1) * weight.shape().dim(2) * weight.shape().dim(3);
    PATDNN_CHECK(keep >= 0 && keep <= filters, "keep out of range");
    std::vector<double> norms(static_cast<size_t>(filters), 0.0);
    for (int64_t f = 0; f < filters; ++f) {
        const float* p = weight.data() + f * fsz;
        double s = 0.0;
        for (int64_t j = 0; j < fsz; ++j)
            s += static_cast<double>(p[j]) * p[j];
        norms[static_cast<size_t>(f)] = s;
    }
    std::vector<int64_t> order(static_cast<size_t>(filters));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
        return norms[static_cast<size_t>(a)] > norms[static_cast<size_t>(b)];
    });
    for (int64_t i = keep; i < filters; ++i) {
        float* p = weight.data() + order[static_cast<size_t>(i)] * fsz;
        std::fill(p, p + fsz, 0.0f);
    }
}

void
projectChannels(Tensor& weight, int64_t keep)
{
    checkConvWeight(weight);
    int64_t filters = weight.shape().dim(0);
    int64_t channels = weight.shape().dim(1);
    int64_t ksz = weight.shape().dim(2) * weight.shape().dim(3);
    PATDNN_CHECK(keep >= 0 && keep <= channels, "keep out of range");
    std::vector<double> norms(static_cast<size_t>(channels), 0.0);
    for (int64_t f = 0; f < filters; ++f)
        for (int64_t c = 0; c < channels; ++c) {
            const float* kp = weight.data() + (f * channels + c) * ksz;
            double s = 0.0;
            for (int64_t j = 0; j < ksz; ++j)
                s += static_cast<double>(kp[j]) * kp[j];
            norms[static_cast<size_t>(c)] += s;
        }
    std::vector<int64_t> order(static_cast<size_t>(channels));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
        return norms[static_cast<size_t>(a)] > norms[static_cast<size_t>(b)];
    });
    std::vector<uint8_t> keep_mask(static_cast<size_t>(channels), 0);
    for (int64_t i = 0; i < keep; ++i)
        keep_mask[static_cast<size_t>(order[static_cast<size_t>(i)])] = 1;
    for (int64_t f = 0; f < filters; ++f)
        for (int64_t c = 0; c < channels; ++c)
            if (!keep_mask[static_cast<size_t>(c)]) {
                float* kp = weight.data() + (f * channels + c) * ksz;
                std::fill(kp, kp + ksz, 0.0f);
            }
}

}  // namespace patdnn
