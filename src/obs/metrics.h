/**
 * @file
 * Low-overhead process metrics: counters, gauges and fixed-bucket
 * histograms behind a process-wide registry.
 *
 * The paper's evaluation is built on attributable numbers (per-layer
 * breakdowns, queue/batching behaviour); this is the runtime half of
 * that story. Every metric is a lock-free atomic cell — recording a
 * sample is a handful of relaxed atomic ops, cheap enough for the
 * serving hot path — while snapshot/reset/export take no lock over the
 * writers either (reset drains each cell with an atomic exchange, so
 * counts are conserved across concurrent writers; see
 * HistogramSnapshot::merge and the stress tests).
 *
 * Registry contract: MetricsRegistry::global() hands out stable
 * references — a registered metric is never destroyed or moved for the
 * life of the process, so hot paths may cache `Counter&` in a static
 * and skip the name lookup. resetAllForTest() zeroes values but keeps
 * every registration (and its address) intact.
 */
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/stats.h"

namespace patdnn {

/** Monotonic event counter. */
class Counter
{
  public:
    void inc(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
    int64_t value() const { return value_.load(std::memory_order_relaxed); }
    void resetForTest() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> value_{0};
};

/** Last-write-wins instantaneous value (plus a high-water helper). */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }

    /** Raise the gauge to v if v is larger (high-water marks). */
    void setMax(double v)
    {
        double cur = value_.load(std::memory_order_relaxed);
        while (v > cur &&
               !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed))
            ;
    }

    double value() const { return value_.load(std::memory_order_relaxed); }
    void resetForTest() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/** Bucket layout shared by every Histogram (fixed at compile time so
 * snapshots from different histograms merge without negotiation):
 * geometric upper bounds from kBucketBase growing by kBucketGrowth per
 * bucket, final bucket unbounded. Sized for latencies in milliseconds
 * (1 us .. ~2 min) but unit-agnostic. */
constexpr size_t kHistogramBuckets = 72;
constexpr double kHistogramBase = 1e-3;
constexpr double kHistogramGrowth = 1.3;

/** Upper bound of bucket i (inclusive); +inf for the last bucket. */
double histogramBucketUpper(size_t i);

/** A point-in-time copy of a histogram's state; mergeable. */
struct HistogramSnapshot
{
    std::array<int64_t, kHistogramBuckets> buckets{};
    int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when count == 0.
    double max = 0.0;

    double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }

    /**
     * The p-th percentile (p in [0,100]) estimated by linear
     * interpolation inside the owning bucket, clamped to the observed
     * [min, max]; 0 for an empty snapshot. Accuracy is bounded by the
     * bucket growth factor (~30% worst case inside one bucket).
     */
    double percentile(double p) const;

    /** p50/p90/p99/p999 in one call (the serving-stats quad). */
    Percentiles percentiles() const;

    /** Accumulate another snapshot into this one. */
    void merge(const HistogramSnapshot& other);
};

/**
 * Fixed-bucket histogram with lock-free record(). snapshot() is a
 * consistent-enough read for reporting (relaxed loads may miss
 * in-flight records); collectAndReset() drains via atomic exchange, so
 * every recorded sample lands in exactly one collected snapshot even
 * under concurrent writers.
 */
class Histogram
{
  public:
    void record(double v);

    HistogramSnapshot snapshot() const;

    /** Atomically drain this histogram into a snapshot (counts are
     * conserved: sample counts land in exactly one drain). The min/max
     * of the returned snapshot cover everything drained by it. */
    HistogramSnapshot collectAndReset();

    void resetForTest() { (void)collectAndReset(); }

  private:
    std::array<std::atomic<int64_t>, kHistogramBuckets> buckets_{};
    std::atomic<int64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{0.0};  ///< Valid only while count_ > 0.
    std::atomic<double> max_{0.0};
    std::atomic<bool> has_samples_{false};
};

/** What kind of metric a registry name resolves to. */
enum class MetricKind
{
    kCounter,
    kGauge,
    kHistogram,
};

/** One exported metric in a registry snapshot. */
struct MetricValue
{
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    int64_t counter = 0;           ///< kCounter.
    double gauge = 0.0;            ///< kGauge.
    HistogramSnapshot histogram;   ///< kHistogram.
};

/**
 * Process-wide name -> metric table. Lookup takes a mutex (cache the
 * returned reference on hot paths); recording through the returned
 * handles is lock-free. Re-requesting a name returns the same object;
 * requesting an existing name as a different kind aborts (names are
 * one flat namespace, as in every metrics pipeline).
 */
class MetricsRegistry
{
  public:
    static MetricsRegistry& global();

    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    /** All registered metrics, sorted by name. */
    std::vector<MetricValue> snapshot() const;

    /** One `<kind> <name> <value...>` line per metric (human/greppable). */
    std::string renderText() const;

    /** JSON object {"counters":{...},"gauges":{...},"histograms":{...}}. */
    std::string renderJson() const;

    /** Zero every metric, keeping all registrations (and addresses). */
    void resetAllForTest();

  private:
    struct Slot
    {
        MetricKind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    mutable std::mutex mutex_;
    std::map<std::string, Slot> metrics_;
};

}  // namespace patdnn
