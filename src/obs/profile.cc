#include "obs/profile.h"

#include <algorithm>

#include "util/logging.h"
#include "util/table.h"

namespace patdnn {

int64_t
RunProfile::totalNs() const
{
    int64_t total = 0;
    for (const RunProfileEntry& e : entries)
        total += e.total_ns;
    return total;
}

void
RunProfile::prepare(size_t nodes)
{
    if (entries.size() != nodes)
        entries.resize(nodes);
}

void
RunProfile::reset()
{
    for (RunProfileEntry& e : entries) {
        e.bytes = 0;
        e.calls = 0;
        e.total_ns = 0;
        e.max_ns = 0;
    }
    runs = 0;
    wall_ns = 0;
}

void
RunProfile::merge(const RunProfile& other)
{
    if (other.entries.empty() && other.runs == 0)
        return;
    if (entries.empty())
        entries.resize(other.entries.size());
    PATDNN_CHECK_EQ(entries.size(), other.entries.size(),
                    "RunProfile::merge needs profiles over the same graph");
    for (size_t i = 0; i < entries.size(); ++i) {
        RunProfileEntry& e = entries[i];
        const RunProfileEntry& o = other.entries[i];
        if (o.calls == 0)
            continue;
        if (e.name.empty()) {
            e.name = o.name;
            e.kind = o.kind;
            e.isa = o.isa;
            e.prec = o.prec;
        }
        e.bytes += o.bytes;
        e.calls += o.calls;
        e.total_ns += o.total_ns;
        e.max_ns = std::max(e.max_ns, o.max_ns);
    }
    runs += other.runs;
    wall_ns += other.wall_ns;
}

std::string
RunProfile::renderTable() const
{
    Table t({"Layer", "Kind", "ISA", "Prec", "Calls", "MB/call", "Total ms",
             "Max ms", "%"});
    double total = static_cast<double>(totalNs());
    for (const RunProfileEntry& e : entries) {
        if (e.calls == 0)
            continue;
        double mb_per_call = static_cast<double>(e.bytes) /
                             static_cast<double>(e.calls) / (1024.0 * 1024.0);
        t.addRow({e.name, e.kind, e.isa, e.prec.empty() ? "-" : e.prec,
                  std::to_string(e.calls),
                  Table::num(mb_per_call, 2), Table::num(e.totalMs(), 3),
                  Table::num(static_cast<double>(e.max_ns) / 1e6, 3),
                  Table::num(total > 0.0
                                 ? 100.0 * static_cast<double>(e.total_ns) / total
                                 : 0.0,
                             1)});
    }
    return t.render();
}

}  // namespace patdnn
