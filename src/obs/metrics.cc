#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/logging.h"

namespace patdnn {

double
histogramBucketUpper(size_t i)
{
    if (i + 1 >= kHistogramBuckets)
        return std::numeric_limits<double>::infinity();
    return kHistogramBase * std::pow(kHistogramGrowth, static_cast<double>(i));
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

namespace {

size_t
bucketIndex(double v)
{
    // Geometric layout: log-time lookup beats a 72-step linear scan and
    // keeps record() branch-light.
    if (!(v > kHistogramBase))  // Also catches NaN and negatives.
        return 0;
    double idx = std::log(v / kHistogramBase) / std::log(kHistogramGrowth);
    size_t i = static_cast<size_t>(idx) + 1;  // v > upper(i-1), candidate i.
    // Float slop: walk to the first bucket whose upper bound covers v.
    while (i < kHistogramBuckets - 1 && v > histogramBucketUpper(i))
        ++i;
    while (i > 0 && v <= histogramBucketUpper(i - 1))
        --i;
    return std::min(i, kHistogramBuckets - 1);
}

/** CAS-raise (or -lower) an atomic double. */
template <typename Cmp>
void
atomicExtreme(std::atomic<double>& cell, double v, Cmp better)
{
    double cur = cell.load(std::memory_order_relaxed);
    while (better(v, cur) &&
           !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed))
        ;
}

}  // namespace

void
Histogram::record(double v)
{
    buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    // First writer seeds min/max; the seed races are benign because the
    // sentinel (0-with-no-samples) is replaced before has_samples_ flips.
    if (!has_samples_.load(std::memory_order_acquire)) {
        double expected = 0.0;
        min_.compare_exchange_strong(expected, v, std::memory_order_relaxed);
        expected = 0.0;
        max_.compare_exchange_strong(expected, v, std::memory_order_relaxed);
        has_samples_.store(true, std::memory_order_release);
    }
    atomicExtreme(min_, v, [](double a, double b) { return a < b; });
    atomicExtreme(max_, v, [](double a, double b) { return a > b; });
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot s;
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
        s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
        s.count += s.buckets[i];
    }
    s.sum = sum_.load(std::memory_order_relaxed);
    if (s.count > 0) {
        s.min = min_.load(std::memory_order_relaxed);
        s.max = max_.load(std::memory_order_relaxed);
    }
    return s;
}

HistogramSnapshot
Histogram::collectAndReset()
{
    HistogramSnapshot s;
    // Conservation is on COUNTS: bucket drains are exchanges, so every
    // recorded sample's count lands in exactly one collected snapshot.
    // min/max racing a concurrent record may attribute that sample's
    // extreme to the next snapshot — reporting fuzz only, never a lost
    // or double-counted sample.
    s.min = min_.exchange(0.0, std::memory_order_relaxed);
    s.max = max_.exchange(0.0, std::memory_order_relaxed);
    has_samples_.store(false, std::memory_order_release);
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
        s.buckets[i] = buckets_[i].exchange(0, std::memory_order_relaxed);
        s.count += s.buckets[i];
    }
    s.sum = sum_.exchange(0.0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    if (s.count == 0) {
        s.min = 0.0;
        s.max = 0.0;
    }
    return s;
}

double
HistogramSnapshot::percentile(double p) const
{
    if (count == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    double rank = p / 100.0 * static_cast<double>(count);
    int64_t cum = 0;
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
        if (buckets[i] == 0)
            continue;
        if (static_cast<double>(cum + buckets[i]) >= rank) {
            double lo = i == 0 ? 0.0 : histogramBucketUpper(i - 1);
            double hi = histogramBucketUpper(i);
            if (!std::isfinite(hi))
                return max;  // Overflow bucket: best answer is the max.
            double frac = (rank - static_cast<double>(cum)) /
                          static_cast<double>(buckets[i]);
            double v = lo + (hi - lo) * frac;
            return std::clamp(v, min, max);
        }
        cum += buckets[i];
    }
    return max;
}

Percentiles
HistogramSnapshot::percentiles() const
{
    Percentiles q;
    q.p50 = percentile(50.0);
    q.p90 = percentile(90.0);
    q.p99 = percentile(99.0);
    q.p999 = percentile(99.9);
    return q;
}

void
HistogramSnapshot::merge(const HistogramSnapshot& other)
{
    if (other.count == 0)
        return;
    for (size_t i = 0; i < kHistogramBuckets; ++i)
        buckets[i] += other.buckets[i];
    if (count == 0) {
        min = other.min;
        max = other.max;
    } else {
        min = std::min(min, other.min);
        max = std::max(max, other.max);
    }
    count += other.count;
    sum += other.sum;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry&
MetricsRegistry::global()
{
    // Leaked: worker threads may record during static destruction.
    static MetricsRegistry* reg = new MetricsRegistry();
    return *reg;
}

Counter&
MetricsRegistry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lk(mutex_);
    Slot& slot = metrics_[name];
    if (!slot.counter && !slot.gauge && !slot.histogram) {
        slot.kind = MetricKind::kCounter;
        slot.counter = std::make_unique<Counter>();
    }
    PATDNN_CHECK(slot.kind == MetricKind::kCounter,
                 "metric '" << name << "' already registered as a different kind");
    return *slot.counter;
}

Gauge&
MetricsRegistry::gauge(const std::string& name)
{
    std::lock_guard<std::mutex> lk(mutex_);
    Slot& slot = metrics_[name];
    if (!slot.counter && !slot.gauge && !slot.histogram) {
        slot.kind = MetricKind::kGauge;
        slot.gauge = std::make_unique<Gauge>();
    }
    PATDNN_CHECK(slot.kind == MetricKind::kGauge,
                 "metric '" << name << "' already registered as a different kind");
    return *slot.gauge;
}

Histogram&
MetricsRegistry::histogram(const std::string& name)
{
    std::lock_guard<std::mutex> lk(mutex_);
    Slot& slot = metrics_[name];
    if (!slot.counter && !slot.gauge && !slot.histogram) {
        slot.kind = MetricKind::kHistogram;
        slot.histogram = std::make_unique<Histogram>();
    }
    PATDNN_CHECK(slot.kind == MetricKind::kHistogram,
                 "metric '" << name << "' already registered as a different kind");
    return *slot.histogram;
}

std::vector<MetricValue>
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    std::vector<MetricValue> out;
    out.reserve(metrics_.size());
    for (const auto& [name, slot] : metrics_) {  // std::map: sorted by name.
        MetricValue v;
        v.name = name;
        v.kind = slot.kind;
        switch (slot.kind) {
          case MetricKind::kCounter: v.counter = slot.counter->value(); break;
          case MetricKind::kGauge: v.gauge = slot.gauge->value(); break;
          case MetricKind::kHistogram:
            v.histogram = slot.histogram->snapshot();
            break;
        }
        out.push_back(std::move(v));
    }
    return out;
}

namespace {

std::string
formatDouble(double v)
{
    std::ostringstream os;
    os << v;
    return os.str();
}

}  // namespace

std::string
MetricsRegistry::renderText() const
{
    std::ostringstream os;
    for (const MetricValue& m : snapshot()) {
        switch (m.kind) {
          case MetricKind::kCounter:
            os << "counter " << m.name << " " << m.counter << "\n";
            break;
          case MetricKind::kGauge:
            os << "gauge " << m.name << " " << formatDouble(m.gauge) << "\n";
            break;
          case MetricKind::kHistogram: {
            Percentiles q = m.histogram.percentiles();
            os << "histogram " << m.name << " count " << m.histogram.count
               << " sum " << formatDouble(m.histogram.sum) << " min "
               << formatDouble(m.histogram.min) << " max "
               << formatDouble(m.histogram.max) << " p50 "
               << formatDouble(q.p50) << " p90 " << formatDouble(q.p90)
               << " p99 " << formatDouble(q.p99) << " p999 "
               << formatDouble(q.p999) << "\n";
            break;
          }
        }
    }
    return os.str();
}

std::string
MetricsRegistry::renderJson() const
{
    // Metric names are caller-chosen identifiers (no quotes/control
    // chars in practice), but escape defensively anyway.
    auto esc = [](const std::string& s) {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        return out;
    };
    std::vector<MetricValue> all = snapshot();
    std::ostringstream os;
    auto emit_section = [&](const char* title, MetricKind kind,
                            auto&& emit_value) {
        os << "\"" << title << "\":{";
        bool first = true;
        for (const MetricValue& m : all) {
            if (m.kind != kind)
                continue;
            if (!first)
                os << ",";
            first = false;
            os << "\"" << esc(m.name) << "\":";
            emit_value(m);
        }
        os << "}";
    };
    os << "{";
    emit_section("counters", MetricKind::kCounter,
                 [&](const MetricValue& m) { os << m.counter; });
    os << ",";
    emit_section("gauges", MetricKind::kGauge,
                 [&](const MetricValue& m) { os << formatDouble(m.gauge); });
    os << ",";
    emit_section("histograms", MetricKind::kHistogram, [&](const MetricValue& m) {
        Percentiles q = m.histogram.percentiles();
        os << "{\"count\":" << m.histogram.count
           << ",\"sum\":" << formatDouble(m.histogram.sum)
           << ",\"min\":" << formatDouble(m.histogram.min)
           << ",\"max\":" << formatDouble(m.histogram.max)
           << ",\"p50\":" << formatDouble(q.p50)
           << ",\"p90\":" << formatDouble(q.p90)
           << ",\"p99\":" << formatDouble(q.p99)
           << ",\"p999\":" << formatDouble(q.p999) << ",\"buckets\":[";
        bool first = true;
        for (size_t i = 0; i < kHistogramBuckets; ++i) {
            if (m.histogram.buckets[i] == 0)
                continue;
            if (!first)
                os << ",";
            first = false;
            double upper = histogramBucketUpper(i);
            os << "[" << (std::isfinite(upper) ? formatDouble(upper) : "1e308")
               << "," << m.histogram.buckets[i] << "]";
        }
        os << "]}";
    });
    os << "}";
    return os.str();
}

void
MetricsRegistry::resetAllForTest()
{
    std::lock_guard<std::mutex> lk(mutex_);
    for (auto& [name, slot] : metrics_) {
        (void)name;
        switch (slot.kind) {
          case MetricKind::kCounter: slot.counter->resetForTest(); break;
          case MetricKind::kGauge: slot.gauge->resetForTest(); break;
          case MetricKind::kHistogram: slot.histogram->resetForTest(); break;
        }
    }
}

}  // namespace patdnn
