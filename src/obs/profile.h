/**
 * @file
 * Per-run layerwise execution profile — the Fig. 14-style breakdown as
 * a first-class runtime object instead of a one-off bench printout.
 *
 * The run loop (rt/framework.cc) fills a RunProfile when the caller
 * passes one: per graph node it accumulates the layer name, executor
 * kind, kernel ISA, bytes touched, call count and total/max wall time.
 * InferenceSession keeps one per session (lastRunProfile()), and
 * bench_fig14_profiling cross-checks the accumulated totals against
 * its own timers so the instrumented path can never silently diverge
 * from the published figure.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace patdnn {

/** Accumulated execution stats for one graph node. */
struct RunProfileEntry
{
    std::string name;     ///< Layer name (ConvDesc name or op kind + id).
    std::string kind;     ///< Executor kind ("pattern", "im2col", "pool"...).
    std::string isa;      ///< Kernel ISA ("avx2"/"neon"/"scalar", "-" = none).
    std::string prec;     ///< Arithmetic precision ("f32" or "i8").
    int64_t bytes = 0;    ///< Bytes touched, summed over calls (in+out+weights).
    int64_t calls = 0;
    int64_t total_ns = 0;
    int64_t max_ns = 0;

    double totalMs() const { return static_cast<double>(total_ns) / 1e6; }
};

/**
 * Layerwise profile over one or more runs. Entries are indexed by graph
 * node id (dead slots keep calls == 0 and are skipped when rendering).
 */
struct RunProfile
{
    std::vector<RunProfileEntry> entries;
    int64_t runs = 0;      ///< Whole-model runs accumulated.
    int64_t wall_ns = 0;   ///< End-to-end run-loop time, summed over runs.

    bool empty() const { return runs == 0; }

    /** Sum of per-entry total_ns (<= wall_ns; the gap is inter-layer
     * glue, which the fig14 cross-check bounds). */
    int64_t totalNs() const;

    /** Size the entry table for a graph (keeps existing labels/stats). */
    void prepare(size_t nodes);

    /** Zero all accumulated numbers, keeping labels (cheap per-run reset). */
    void reset();

    /** Accumulate another profile over the same graph. */
    void merge(const RunProfile& other);

    /**
     * Fig. 14-style table: Layer | Kind | ISA | Prec | Calls | MB/call |
     * Total ms | Max ms | % of layer time. Rendered via util/table.
     */
    std::string renderTable() const;
};

}  // namespace patdnn
