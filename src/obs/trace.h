/**
 * @file
 * Scoped tracing: RAII spans into per-thread ring buffers, exported as
 * Chrome trace_event JSON so a whole served request — admission, queue
 * wait, batch formation, dispatch, every layer — is one timeline in
 * chrome://tracing or Perfetto (ui.perfetto.dev).
 *
 * Cost model, in order of decreasing cheapness:
 *  - PATDNN_ENABLE_TRACING=OFF (CMake): TraceSpan is an empty type and
 *    Tracer::enabled() is a compile-time false, so every span and every
 *    `if (Tracer::enabled())` emit site compiles to NOTHING (pinned by
 *    static_asserts in tests/obs_test.cc). Traced and untraced builds
 *    are behaviourally identical.
 *  - compiled in, runtime-disabled (the default): one relaxed atomic
 *    load per span.
 *  - runtime-enabled (Tracer::setEnabled(true)): two steady_clock reads
 *    plus one ring-buffer write per span — bench_micro's
 *    BM_TraceOverheadZoo pins whole-model overhead under 3%.
 *
 * Each thread owns a fixed-capacity ring (oldest events overwritten),
 * so tracing never allocates on the hot path after a thread's first
 * span and a runaway trace can't eat the heap. collect() merges every
 * thread's ring; rings stay readable after their thread exits.
 */
#pragma once

#ifndef PATDNN_TRACING_ENABLED
#define PATDNN_TRACING_ENABLED 1
#endif

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/status.h"

namespace patdnn {

/** One completed span (Chrome "X" phase event). */
struct TraceEvent
{
    static constexpr size_t kMaxName = 48;

    char name[kMaxName];    ///< Truncated copy (emitters may pass temporaries).
    const char* cat;        ///< Category; must be a static-lifetime string.
    int64_t ts_ns;          ///< Span start, steady-clock nanoseconds.
    int64_t dur_ns;         ///< Span duration in nanoseconds.
    uint32_t tid;           ///< Stable per-thread id (registration order).
    const char* arg_name;   ///< Optional numeric arg; nullptr = none. Static.
    int64_t arg_value;
};

/**
 * Process-wide trace control. All methods are thread-safe. Collection
 * is disabled until setEnabled(true): instrumentation is always
 * present (in tracing builds) but dormant.
 */
class Tracer
{
  public:
    /** True when spans were compiled in (PATDNN_ENABLE_TRACING=ON). */
    static constexpr bool compiledIn() { return PATDNN_TRACING_ENABLED != 0; }

    /** Turn collection on/off (no-op in tracing-off builds). */
    static void setEnabled(bool on);

    /** True when compiled in AND runtime-enabled. Emit sites branch on
     * this; in tracing-off builds it is a compile-time false so the
     * whole emit branch is dead code. */
    static bool enabled()
    {
#if PATDNN_TRACING_ENABLED
        return runtimeEnabled();
#else
        return false;
#endif
    }

    /** Steady-clock now in nanoseconds (the span timebase). */
    static int64_t nowNs();

    /**
     * Record one completed span with explicit timing. For code whose
     * timing authority is not the wall clock — the serving layer stamps
     * spans from its injectable ServeClock so FakeClock tests can
     * assert exact linger coverage. No-op unless enabled().
     */
    static void emitSpan(const char* name, const char* cat, int64_t ts_ns,
                         int64_t dur_ns, const char* arg_name = nullptr,
                         int64_t arg_value = 0);

    /** Drop every buffered event (rings stay registered). */
    static void clear();

    /** Merged snapshot of every thread's ring, sorted by start time. */
    static std::vector<TraceEvent> collect();

    /** collect() rendered as Chrome trace_event JSON. */
    static void writeChromeTrace(std::ostream& os);

    /** writeChromeTrace to a file; kUnavailable on I/O failure. */
    static Status writeChromeTrace(const std::string& path);

    /**
     * Per-thread ring capacity (events) for rings created AFTER this
     * call; existing rings keep their size. Mainly for tests and
     * long-capture tools. Capacity is clamped to >= 16.
     */
    static void setRingCapacity(size_t events);

    /** Default per-thread ring capacity. */
    static constexpr size_t kDefaultRingCapacity = 16384;

  private:
    static bool runtimeEnabled();
};

#if PATDNN_TRACING_ENABLED

/**
 * RAII span: records [construction, destruction) on the current thread.
 * `name` may be a temporary (copied at emit); `cat` and `arg_name` must
 * be static-lifetime strings.
 */
class TraceSpan
{
  public:
    TraceSpan(const char* name, const char* cat,
              const char* arg_name = nullptr, int64_t arg_value = 0)
    {
        if (Tracer::enabled())
            begin(name, cat, arg_name, arg_value);
    }

    TraceSpan(const std::string& name, const char* cat,
              const char* arg_name = nullptr, int64_t arg_value = 0)
    {
        if (Tracer::enabled())
            begin(name.c_str(), cat, arg_name, arg_value);
    }

    ~TraceSpan()
    {
        if (active_)
            Tracer::emitSpan(name_, cat_, start_ns_,
                             Tracer::nowNs() - start_ns_, arg_name_, arg_value_);
    }

    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

  private:
    void begin(const char* name, const char* cat, const char* arg_name,
               int64_t arg_value)
    {
        name_ = name;
        cat_ = cat;
        arg_name_ = arg_name;
        arg_value_ = arg_value;
        start_ns_ = Tracer::nowNs();
        active_ = true;
    }

    const char* name_ = nullptr;  ///< Caller-owned; outlives the span scope.
    const char* cat_ = nullptr;
    const char* arg_name_ = nullptr;
    int64_t arg_value_ = 0;
    int64_t start_ns_ = 0;
    bool active_ = false;
};

#else  // !PATDNN_TRACING_ENABLED

/** Tracing-off build: spans are empty objects the optimizer erases
 * (is_empty/triviality pinned by static_asserts in tests). */
class TraceSpan
{
  public:
    TraceSpan(const char*, const char*, const char* = nullptr, int64_t = 0) {}
    TraceSpan(const std::string&, const char*, const char* = nullptr,
              int64_t = 0)
    {
    }
    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;
};

#endif  // PATDNN_TRACING_ENABLED

}  // namespace patdnn
