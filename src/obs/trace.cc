#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>

namespace patdnn {

namespace {

/**
 * One thread's event ring. The owning thread writes under `mutex`
 * (uncontended except while a collector is reading, so the lock is a
 * couple of uncontended atomic ops on the hot path); collect()/clear()
 * lock each ring briefly. A shared_ptr keeps the ring alive — and its
 * contents collectable — after the owning thread exits.
 */
struct TraceRing
{
    std::mutex mutex;
    std::vector<TraceEvent> events;  ///< Fixed storage of `capacity`.
    size_t capacity = 0;
    size_t next = 0;       ///< Next write index.
    bool wrapped = false;  ///< True once the ring has overwritten.
    uint32_t tid = 0;
};

struct TraceState
{
    std::mutex mutex;
    std::vector<std::shared_ptr<TraceRing>> rings;
    uint32_t next_tid = 1;
    std::atomic<size_t> ring_capacity{Tracer::kDefaultRingCapacity};
    std::atomic<bool> enabled{false};
};

TraceState&
state()
{
    // Leaked: spans may fire during static destruction of other TUs.
    static TraceState* s = new TraceState();
    return *s;
}

TraceRing&
localRing()
{
    thread_local std::shared_ptr<TraceRing> ring = [] {
        auto r = std::make_shared<TraceRing>();
        TraceState& st = state();
        r->capacity =
            std::max<size_t>(16, st.ring_capacity.load(std::memory_order_relaxed));
        r->events.resize(r->capacity);
        std::lock_guard<std::mutex> lk(st.mutex);
        r->tid = st.next_tid++;
        st.rings.push_back(r);
        return r;
    }();
    return *ring;
}

void
appendEvent(TraceRing& ring, const TraceEvent& ev)
{
    std::lock_guard<std::mutex> lk(ring.mutex);
    ring.events[ring.next] = ev;
    ring.next = (ring.next + 1) % ring.capacity;
    if (ring.next == 0)
        ring.wrapped = true;
}

std::string
escapeJson(const char* s)
{
    std::string out;
    for (; *s != '\0'; ++s) {
        unsigned char c = static_cast<unsigned char>(*s);
        if (c == '"' || c == '\\') {
            out += '\\';
            out += static_cast<char>(c);
        } else if (c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += static_cast<char>(c);
        }
    }
    return out;
}

}  // namespace

bool
Tracer::runtimeEnabled()
{
    return state().enabled.load(std::memory_order_relaxed);
}

void
Tracer::setEnabled(bool on)
{
    if (!compiledIn())
        return;
    state().enabled.store(on, std::memory_order_relaxed);
}

int64_t
Tracer::nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
Tracer::emitSpan(const char* name, const char* cat, int64_t ts_ns,
                 int64_t dur_ns, const char* arg_name, int64_t arg_value)
{
    if (!enabled())
        return;
    TraceRing& ring = localRing();
    TraceEvent ev;
    std::strncpy(ev.name, name != nullptr ? name : "", TraceEvent::kMaxName - 1);
    ev.name[TraceEvent::kMaxName - 1] = '\0';
    ev.cat = cat != nullptr ? cat : "";
    ev.ts_ns = ts_ns;
    ev.dur_ns = dur_ns < 0 ? 0 : dur_ns;
    ev.tid = ring.tid;
    ev.arg_name = arg_name;
    ev.arg_value = arg_value;
    appendEvent(ring, ev);
}

void
Tracer::setRingCapacity(size_t events)
{
    state().ring_capacity.store(std::max<size_t>(16, events),
                                std::memory_order_relaxed);
}

void
Tracer::clear()
{
    TraceState& st = state();
    std::vector<std::shared_ptr<TraceRing>> rings;
    {
        std::lock_guard<std::mutex> lk(st.mutex);
        rings = st.rings;
    }
    for (auto& ring : rings) {
        std::lock_guard<std::mutex> lk(ring->mutex);
        ring->next = 0;
        ring->wrapped = false;
    }
}

std::vector<TraceEvent>
Tracer::collect()
{
    TraceState& st = state();
    std::vector<std::shared_ptr<TraceRing>> rings;
    {
        std::lock_guard<std::mutex> lk(st.mutex);
        rings = st.rings;
    }
    std::vector<TraceEvent> out;
    for (auto& ring : rings) {
        std::lock_guard<std::mutex> lk(ring->mutex);
        // Oldest-first: [next, capacity) when wrapped, then [0, next).
        if (ring->wrapped)
            out.insert(out.end(), ring->events.begin() + ring->next,
                       ring->events.end());
        out.insert(out.end(), ring->events.begin(),
                   ring->events.begin() + ring->next);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                         if (a.ts_ns != b.ts_ns)
                             return a.ts_ns < b.ts_ns;
                         // Parents before children at equal start times.
                         return a.dur_ns > b.dur_ns;
                     });
    return out;
}

void
Tracer::writeChromeTrace(std::ostream& os)
{
    std::vector<TraceEvent> events = collect();
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent& ev : events) {
        if (!first)
            os << ",\n";
        first = false;
        // Chrome trace timestamps are microseconds (fractions allowed).
        os << "{\"name\":\"" << escapeJson(ev.name) << "\",\"cat\":\""
           << escapeJson(ev.cat) << "\",\"ph\":\"X\",\"ts\":"
           << static_cast<double>(ev.ts_ns) / 1e3
           << ",\"dur\":" << static_cast<double>(ev.dur_ns) / 1e3
           << ",\"pid\":1,\"tid\":" << ev.tid;
        if (ev.arg_name != nullptr)
            os << ",\"args\":{\"" << escapeJson(ev.arg_name)
               << "\":" << ev.arg_value << "}";
        os << "}";
    }
    os << "],\"displayTimeUnit\":\"ms\"}\n";
}

Status
Tracer::writeChromeTrace(const std::string& path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return Status(ErrorCode::kUnavailable,
                      "cannot open trace output file: " + path);
    writeChromeTrace(os);
    os.flush();
    if (!os)
        return Status(ErrorCode::kUnavailable,
                      "failed writing trace output file: " + path);
    return Status::OK();
}

}  // namespace patdnn
