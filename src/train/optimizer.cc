#include "train/optimizer.h"

#include <cmath>

namespace patdnn {

Sgd::Sgd(std::vector<ParamRef> params, float lr, float momentum, float weight_decay)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum),
      weight_decay_(weight_decay)
{
    velocity_.resize(params_.size());
    for (size_t i = 0; i < params_.size(); ++i)
        velocity_[i].assign(static_cast<size_t>(params_[i].value->numel()), 0.0f);
}

void
Sgd::step()
{
    for (size_t p = 0; p < params_.size(); ++p) {
        Tensor& w = *params_[p].value;
        Tensor& g = *params_[p].grad;
        auto& vel = velocity_[p];
        for (int64_t i = 0; i < w.numel(); ++i) {
            float grad = g[i] + weight_decay_ * w[i];
            vel[static_cast<size_t>(i)] = momentum_ * vel[static_cast<size_t>(i)] + grad;
            w[i] -= lr_ * vel[static_cast<size_t>(i)];
        }
    }
}

Adam::Adam(std::vector<ParamRef> params, float lr, float beta1, float beta2, float eps,
           float weight_decay)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps),
      weight_decay_(weight_decay)
{
    m_.resize(params_.size());
    v_.resize(params_.size());
    for (size_t i = 0; i < params_.size(); ++i) {
        m_[i].assign(static_cast<size_t>(params_[i].value->numel()), 0.0f);
        v_[i].assign(static_cast<size_t>(params_[i].value->numel()), 0.0f);
    }
}

void
Adam::step()
{
    ++t_;
    float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
    float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
    for (size_t p = 0; p < params_.size(); ++p) {
        Tensor& w = *params_[p].value;
        Tensor& g = *params_[p].grad;
        auto& m = m_[p];
        auto& v = v_[p];
        for (int64_t i = 0; i < w.numel(); ++i) {
            float grad = g[i] + weight_decay_ * w[i];
            size_t s = static_cast<size_t>(i);
            m[s] = beta1_ * m[s] + (1.0f - beta1_) * grad;
            v[s] = beta2_ * v[s] + (1.0f - beta2_) * grad * grad;
            float mhat = m[s] / bc1;
            float vhat = v[s] / bc2;
            w[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
        }
    }
}

}  // namespace patdnn
