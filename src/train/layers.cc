#include "train/layers.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace patdnn {

void
TrainLayer::zeroGrads()
{
    for (auto& p : params())
        if (p.grad != nullptr)
            p.grad->fill(0.0f);
}

// ---------------------------------------------------------------------------
// Conv2dLayer
// ---------------------------------------------------------------------------

Conv2dLayer::Conv2dLayer(ConvDesc desc, Rng& rng) : desc_(std::move(desc))
{
    PATDNN_CHECK_EQ(desc_.groups, 1, "training substrate supports groups == 1");
    desc_.check();
    weight_ = Tensor(Shape{desc_.cout, desc_.cin, desc_.kh, desc_.kw});
    weight_.fillHe(rng, desc_.cin * desc_.kh * desc_.kw);
    bias_ = Tensor(Shape{desc_.cout});
    weight_grad_ = Tensor(Shape{desc_.cout, desc_.cin, desc_.kh, desc_.kw});
    bias_grad_ = Tensor(Shape{desc_.cout});
}

Tensor
Conv2dLayer::forward(const Tensor& in, bool training)
{
    const auto& d = desc_;
    int64_t n = in.shape().dim(0);
    PATDNN_CHECK_EQ(in.shape().dim(1), d.cin, "conv input channels");
    PATDNN_CHECK_EQ(in.shape().dim(2), d.h, "conv input height");
    PATDNN_CHECK_EQ(in.shape().dim(3), d.w, "conv input width");
    int64_t oh = d.outH(), ow = d.outW();
    Tensor out(Shape{n, d.cout, oh, ow});
    if (training)
        cached_in_ = in;

    ThreadPool::global().parallelFor(n * d.cout, [&](int64_t job) {
        int64_t b = job / d.cout;
        int64_t oc = job % d.cout;
        const float* wbase = weight_.data() + oc * d.cin * d.kh * d.kw;
        float bias = bias_[oc];
        float* optr = out.data() + ((b * d.cout + oc) * oh) * ow;
        for (int64_t y = 0; y < oh; ++y) {
            for (int64_t x = 0; x < ow; ++x) {
                float acc = bias;
                for (int64_t ic = 0; ic < d.cin; ++ic) {
                    const float* iptr = in.data() + ((b * d.cin + ic) * d.h) * d.w;
                    const float* wk = wbase + ic * d.kh * d.kw;
                    for (int64_t r = 0; r < d.kh; ++r) {
                        int64_t iy = y * d.stride - d.pad + r * d.dilation;
                        if (iy < 0 || iy >= d.h)
                            continue;
                        for (int64_t c = 0; c < d.kw; ++c) {
                            int64_t ix = x * d.stride - d.pad + c * d.dilation;
                            if (ix < 0 || ix >= d.w)
                                continue;
                            acc += wk[r * d.kw + c] * iptr[iy * d.w + ix];
                        }
                    }
                }
                optr[y * ow + x] = acc;
            }
        }
    });
    return out;
}

Tensor
Conv2dLayer::backward(const Tensor& grad_out)
{
    const auto& d = desc_;
    const Tensor& in = cached_in_;
    int64_t n = in.shape().dim(0);
    int64_t oh = d.outH(), ow = d.outW();
    Tensor grad_in(in.shape());

    // Parameter gradients: parallel over output channels so each job
    // owns a disjoint slice of weight_grad_.
    ThreadPool::global().parallelFor(d.cout, [&](int64_t oc) {
        float* wg = weight_grad_.data() + oc * d.cin * d.kh * d.kw;
        double bg = 0.0;
        for (int64_t b = 0; b < n; ++b) {
            const float* gptr = grad_out.data() + ((b * d.cout + oc) * oh) * ow;
            for (int64_t y = 0; y < oh; ++y) {
                for (int64_t x = 0; x < ow; ++x) {
                    float g = gptr[y * ow + x];
                    if (g == 0.0f)
                        continue;
                    bg += g;
                    for (int64_t ic = 0; ic < d.cin; ++ic) {
                        const float* iptr = in.data() + ((b * d.cin + ic) * d.h) * d.w;
                        float* wk = wg + ic * d.kh * d.kw;
                        for (int64_t r = 0; r < d.kh; ++r) {
                            int64_t iy = y * d.stride - d.pad + r * d.dilation;
                            if (iy < 0 || iy >= d.h)
                                continue;
                            for (int64_t c = 0; c < d.kw; ++c) {
                                int64_t ix = x * d.stride - d.pad + c * d.dilation;
                                if (ix < 0 || ix >= d.w)
                                    continue;
                                wk[r * d.kw + c] += g * iptr[iy * d.w + ix];
                            }
                        }
                    }
                }
            }
        }
        bias_grad_[oc] += static_cast<float>(bg);
    });

    // Input gradients: parallel over (batch, input channel).
    ThreadPool::global().parallelFor(n * d.cin, [&](int64_t job) {
        int64_t b = job / d.cin;
        int64_t ic = job % d.cin;
        float* giptr = grad_in.data() + ((b * d.cin + ic) * d.h) * d.w;
        for (int64_t oc = 0; oc < d.cout; ++oc) {
            const float* wk = weight_.data() + (oc * d.cin + ic) * d.kh * d.kw;
            const float* gptr = grad_out.data() + ((b * d.cout + oc) * oh) * ow;
            for (int64_t y = 0; y < oh; ++y) {
                for (int64_t x = 0; x < ow; ++x) {
                    float g = gptr[y * ow + x];
                    if (g == 0.0f)
                        continue;
                    for (int64_t r = 0; r < d.kh; ++r) {
                        int64_t iy = y * d.stride - d.pad + r * d.dilation;
                        if (iy < 0 || iy >= d.h)
                            continue;
                        for (int64_t c = 0; c < d.kw; ++c) {
                            int64_t ix = x * d.stride - d.pad + c * d.dilation;
                            if (ix < 0 || ix >= d.w)
                                continue;
                            giptr[iy * d.w + ix] += g * wk[r * d.kw + c];
                        }
                    }
                }
            }
        }
    });
    return grad_in;
}

std::vector<ParamRef>
Conv2dLayer::params()
{
    return {{&weight_, &weight_grad_, desc_.name + ".weight"},
            {&bias_, &bias_grad_, desc_.name + ".bias"}};
}

// ---------------------------------------------------------------------------
// FcLayer
// ---------------------------------------------------------------------------

FcLayer::FcLayer(std::string name, int64_t in_features, int64_t out_features, Rng& rng)
    : name_(std::move(name)), in_features_(in_features), out_features_(out_features)
{
    weight_ = Tensor(Shape{out_features_, in_features_});
    weight_.fillHe(rng, in_features_);
    bias_ = Tensor(Shape{out_features_});
    weight_grad_ = Tensor(Shape{out_features_, in_features_});
    bias_grad_ = Tensor(Shape{out_features_});
}

Tensor
FcLayer::forward(const Tensor& in, bool training)
{
    int64_t n = in.shape().dim(0);
    PATDNN_CHECK_EQ(in.shape().dim(1), in_features_, "fc input features");
    if (training)
        cached_in_ = in;
    Tensor out(Shape{n, out_features_});
    ThreadPool::global().parallelFor(n, [&](int64_t b) {
        const float* x = in.data() + b * in_features_;
        float* y = out.data() + b * out_features_;
        for (int64_t o = 0; o < out_features_; ++o) {
            const float* wr = weight_.data() + o * in_features_;
            float acc = bias_[o];
            for (int64_t i = 0; i < in_features_; ++i)
                acc += wr[i] * x[i];
            y[o] = acc;
        }
    });
    return out;
}

Tensor
FcLayer::backward(const Tensor& grad_out)
{
    const Tensor& in = cached_in_;
    int64_t n = in.shape().dim(0);
    Tensor grad_in(in.shape());
    ThreadPool::global().parallelFor(out_features_, [&](int64_t o) {
        float* wg = weight_grad_.data() + o * in_features_;
        double bg = 0.0;
        for (int64_t b = 0; b < n; ++b) {
            float g = grad_out[b * out_features_ + o];
            if (g == 0.0f)
                continue;
            bg += g;
            const float* x = in.data() + b * in_features_;
            for (int64_t i = 0; i < in_features_; ++i)
                wg[i] += g * x[i];
        }
        bias_grad_[o] += static_cast<float>(bg);
    });
    ThreadPool::global().parallelFor(n, [&](int64_t b) {
        float* gi = grad_in.data() + b * in_features_;
        for (int64_t o = 0; o < out_features_; ++o) {
            float g = grad_out[b * out_features_ + o];
            if (g == 0.0f)
                continue;
            const float* wr = weight_.data() + o * in_features_;
            for (int64_t i = 0; i < in_features_; ++i)
                gi[i] += g * wr[i];
        }
    });
    return grad_in;
}

std::vector<ParamRef>
FcLayer::params()
{
    return {{&weight_, &weight_grad_, name_ + ".weight"},
            {&bias_, &bias_grad_, name_ + ".bias"}};
}

// ---------------------------------------------------------------------------
// ReluLayer
// ---------------------------------------------------------------------------

Tensor
ReluLayer::forward(const Tensor& in, bool training)
{
    if (training)
        cached_in_ = in;
    Tensor out(in.shape());
    for (int64_t i = 0; i < in.numel(); ++i)
        out[i] = in[i] > 0.0f ? in[i] : 0.0f;
    return out;
}

Tensor
ReluLayer::backward(const Tensor& grad_out)
{
    Tensor grad_in(grad_out.shape());
    for (int64_t i = 0; i < grad_out.numel(); ++i)
        grad_in[i] = cached_in_[i] > 0.0f ? grad_out[i] : 0.0f;
    return grad_in;
}

// ---------------------------------------------------------------------------
// MaxPoolLayer
// ---------------------------------------------------------------------------

Tensor
MaxPoolLayer::forward(const Tensor& in, bool training)
{
    int64_t n = in.shape().dim(0), c = in.shape().dim(1);
    int64_t h = in.shape().dim(2), w = in.shape().dim(3);
    int64_t oh = (h - k_) / stride_ + 1;
    int64_t ow = (w - k_) / stride_ + 1;
    in_shape_ = in.shape();
    Tensor out(Shape{n, c, oh, ow});
    argmax_.assign(static_cast<size_t>(out.numel()), 0);
    for (int64_t bc = 0; bc < n * c; ++bc) {
        const float* ip = in.data() + bc * h * w;
        float* op = out.data() + bc * oh * ow;
        for (int64_t y = 0; y < oh; ++y) {
            for (int64_t x = 0; x < ow; ++x) {
                float best = -1e30f;
                int64_t best_idx = 0;
                for (int64_t r = 0; r < k_; ++r)
                    for (int64_t cc = 0; cc < k_; ++cc) {
                        int64_t iy = y * stride_ + r;
                        int64_t ix = x * stride_ + cc;
                        float v = ip[iy * w + ix];
                        if (v > best) {
                            best = v;
                            best_idx = iy * w + ix;
                        }
                    }
                op[y * ow + x] = best;
                if (training)
                    argmax_[static_cast<size_t>(bc * oh * ow + y * ow + x)] =
                        bc * h * w + best_idx;
            }
        }
    }
    return out;
}

Tensor
MaxPoolLayer::backward(const Tensor& grad_out)
{
    Tensor grad_in(in_shape_);
    for (int64_t i = 0; i < grad_out.numel(); ++i)
        grad_in[argmax_[static_cast<size_t>(i)]] += grad_out[i];
    return grad_in;
}

// ---------------------------------------------------------------------------
// BatchNormLayer
// ---------------------------------------------------------------------------

BatchNormLayer::BatchNormLayer(std::string name, int64_t channels)
    : name_(std::move(name)), channels_(channels)
{
    gamma_ = Tensor(Shape{channels_});
    gamma_.fill(1.0f);
    beta_ = Tensor(Shape{channels_});
    gamma_grad_ = Tensor(Shape{channels_});
    beta_grad_ = Tensor(Shape{channels_});
    running_mean_ = Tensor(Shape{channels_});
    running_var_ = Tensor(Shape{channels_});
    running_var_.fill(1.0f);
}

Tensor
BatchNormLayer::forward(const Tensor& in, bool training)
{
    int64_t n = in.shape().dim(0), c = in.shape().dim(1);
    int64_t hw = in.shape().dim(2) * in.shape().dim(3);
    PATDNN_CHECK_EQ(c, channels_, "batchnorm channels");
    in_shape_ = in.shape();
    Tensor out(in.shape());
    const double momentum = 0.1;
    const double eps = 1e-5;
    if (training) {
        mean_.assign(static_cast<size_t>(c), 0.0);
        inv_std_.assign(static_cast<size_t>(c), 0.0);
        cached_norm_ = Tensor(in.shape());
    }
    for (int64_t ch = 0; ch < c; ++ch) {
        double mean, var;
        if (training) {
            double sum = 0.0, sq = 0.0;
            for (int64_t b = 0; b < n; ++b) {
                const float* p = in.data() + (b * c + ch) * hw;
                for (int64_t i = 0; i < hw; ++i) {
                    sum += p[i];
                    sq += static_cast<double>(p[i]) * p[i];
                }
            }
            double cnt = static_cast<double>(n * hw);
            mean = sum / cnt;
            var = sq / cnt - mean * mean;
            if (var < 0.0)
                var = 0.0;
            running_mean_[ch] = static_cast<float>(
                (1 - momentum) * running_mean_[ch] + momentum * mean);
            running_var_[ch] = static_cast<float>(
                (1 - momentum) * running_var_[ch] + momentum * var);
            mean_[static_cast<size_t>(ch)] = mean;
            inv_std_[static_cast<size_t>(ch)] = 1.0 / std::sqrt(var + eps);
        } else {
            mean = running_mean_[ch];
            var = running_var_[ch];
        }
        double inv_std = 1.0 / std::sqrt(var + eps);
        float g = gamma_[ch], bta = beta_[ch];
        for (int64_t b = 0; b < n; ++b) {
            const float* p = in.data() + (b * c + ch) * hw;
            float* o = out.data() + (b * c + ch) * hw;
            float* cn = training ? cached_norm_.data() + (b * c + ch) * hw : nullptr;
            for (int64_t i = 0; i < hw; ++i) {
                float norm = static_cast<float>((p[i] - mean) * inv_std);
                if (cn != nullptr)
                    cn[i] = norm;
                o[i] = g * norm + bta;
            }
        }
    }
    return out;
}

Tensor
BatchNormLayer::backward(const Tensor& grad_out)
{
    int64_t n = in_shape_.dim(0), c = in_shape_.dim(1);
    int64_t hw = in_shape_.dim(2) * in_shape_.dim(3);
    Tensor grad_in(in_shape_);
    double cnt = static_cast<double>(n * hw);
    for (int64_t ch = 0; ch < c; ++ch) {
        double sum_g = 0.0, sum_gn = 0.0;
        for (int64_t b = 0; b < n; ++b) {
            const float* g = grad_out.data() + (b * c + ch) * hw;
            const float* norm = cached_norm_.data() + (b * c + ch) * hw;
            for (int64_t i = 0; i < hw; ++i) {
                sum_g += g[i];
                sum_gn += static_cast<double>(g[i]) * norm[i];
            }
        }
        gamma_grad_[ch] += static_cast<float>(sum_gn);
        beta_grad_[ch] += static_cast<float>(sum_g);
        double gamma = gamma_[ch];
        double inv_std = inv_std_[static_cast<size_t>(ch)];
        for (int64_t b = 0; b < n; ++b) {
            const float* g = grad_out.data() + (b * c + ch) * hw;
            const float* norm = cached_norm_.data() + (b * c + ch) * hw;
            float* gi = grad_in.data() + (b * c + ch) * hw;
            for (int64_t i = 0; i < hw; ++i) {
                double t = g[i] - sum_g / cnt - norm[i] * sum_gn / cnt;
                gi[i] = static_cast<float>(gamma * inv_std * t);
            }
        }
    }
    return grad_in;
}

std::vector<ParamRef>
BatchNormLayer::params()
{
    return {{&gamma_, &gamma_grad_, name_ + ".gamma"},
            {&beta_, &beta_grad_, name_ + ".beta"}};
}

// ---------------------------------------------------------------------------
// FlattenLayer
// ---------------------------------------------------------------------------

Tensor
FlattenLayer::forward(const Tensor& in, bool)
{
    in_shape_ = in.shape();
    Tensor out = in;
    out.reshape(Shape{in.shape().dim(0), in.numel() / in.shape().dim(0)});
    return out;
}

Tensor
FlattenLayer::backward(const Tensor& grad_out)
{
    Tensor grad_in = grad_out;
    grad_in.reshape(in_shape_);
    return grad_in;
}

// ---------------------------------------------------------------------------
// Loss
// ---------------------------------------------------------------------------

double
softmaxCrossEntropy(const Tensor& logits, const std::vector<int>& labels,
                    Tensor& grad_logits)
{
    int64_t n = logits.shape().dim(0);
    int64_t k = logits.shape().dim(1);
    PATDNN_CHECK_EQ(static_cast<int64_t>(labels.size()), n, "labels batch size");
    grad_logits = Tensor(logits.shape());
    double loss = 0.0;
    for (int64_t b = 0; b < n; ++b) {
        const float* x = logits.data() + b * k;
        float* g = grad_logits.data() + b * k;
        float mx = x[0];
        for (int64_t j = 1; j < k; ++j)
            mx = std::max(mx, x[j]);
        double z = 0.0;
        for (int64_t j = 0; j < k; ++j)
            z += std::exp(static_cast<double>(x[j]) - mx);
        int y = labels[static_cast<size_t>(b)];
        loss += -(static_cast<double>(x[y]) - mx - std::log(z));
        for (int64_t j = 0; j < k; ++j) {
            double p = std::exp(static_cast<double>(x[j]) - mx) / z;
            g[j] = static_cast<float>((p - (j == y ? 1.0 : 0.0)) / static_cast<double>(n));
        }
    }
    return loss / static_cast<double>(n);
}

std::vector<int>
argmaxRows(const Tensor& logits)
{
    int64_t n = logits.shape().dim(0);
    int64_t k = logits.shape().dim(1);
    std::vector<int> out(static_cast<size_t>(n));
    for (int64_t b = 0; b < n; ++b) {
        const float* x = logits.data() + b * k;
        int best = 0;
        for (int64_t j = 1; j < k; ++j)
            if (x[j] > x[best])
                best = static_cast<int>(j);
        out[static_cast<size_t>(b)] = best;
    }
    return out;
}

}  // namespace patdnn
