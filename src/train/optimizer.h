/**
 * @file
 * Optimizers for the training substrate: plain SGD with momentum and
 * Adam (the paper's ADMM subproblem 1 is solved with Adam, ref. [27]).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "train/layers.h"

namespace patdnn {

/** Base optimizer over a fixed parameter list. */
class Optimizer
{
  public:
    explicit Optimizer(std::vector<ParamRef> params) : params_(std::move(params)) {}
    virtual ~Optimizer() = default;

    /** Apply one update step from the currently accumulated gradients. */
    virtual void step() = 0;

  protected:
    std::vector<ParamRef> params_;
};

/** SGD with classical momentum. */
class Sgd : public Optimizer
{
  public:
    Sgd(std::vector<ParamRef> params, float lr, float momentum = 0.9f,
        float weight_decay = 0.0f);
    void step() override;

    void setLr(float lr) { lr_ = lr; }

  private:
    float lr_;
    float momentum_;
    float weight_decay_;
    std::vector<std::vector<float>> velocity_;
};

/** Adam (Kingma & Ba) with bias correction. */
class Adam : public Optimizer
{
  public:
    Adam(std::vector<ParamRef> params, float lr, float beta1 = 0.9f,
         float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
    void step() override;

    void setLr(float lr) { lr_ = lr; }

  private:
    float lr_, beta1_, beta2_, eps_, weight_decay_;
    int64_t t_ = 0;
    std::vector<std::vector<float>> m_, v_;
};

}  // namespace patdnn
