#include "train/net.h"

#include "util/logging.h"

namespace patdnn {

int
Net::add(std::unique_ptr<TrainLayer> layer)
{
    layers_.push_back(std::move(layer));
    return static_cast<int>(layers_.size()) - 1;
}

Net
Net::clone() const
{
    Net copy(name_);
    for (const auto& l : layers_)
        copy.add(l->clone());
    return copy;
}

Tensor
Net::forward(const Tensor& in, bool training)
{
    Tensor x = in;
    for (auto& l : layers_)
        x = l->forward(x, training);
    return x;
}

void
Net::backward(const Tensor& grad_logits)
{
    Tensor g = grad_logits;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        g = (*it)->backward(g);
}

std::vector<ParamRef>
Net::params()
{
    std::vector<ParamRef> out;
    for (auto& l : layers_)
        for (auto& p : l->params())
            out.push_back(p);
    return out;
}

void
Net::zeroGrads()
{
    for (auto& l : layers_)
        l->zeroGrads();
}

std::vector<Tensor*>
Net::convWeights()
{
    std::vector<Tensor*> out;
    for (auto* l : convLayers())
        out.push_back(&l->weight());
    return out;
}

std::vector<Conv2dLayer*>
Net::convLayers()
{
    std::vector<Conv2dLayer*> out;
    for (auto& l : layers_)
        if (auto* c = dynamic_cast<Conv2dLayer*>(l.get()))
            out.push_back(c);
    return out;
}

namespace {

void
addConvBlock(Net& net, const std::string& name, int64_t cin, int64_t cout,
             int64_t res, Rng& rng)
{
    ConvDesc d{name, cin, cout, 3, 3, res, res, 1, 1, 1, 1};
    net.add(std::make_unique<Conv2dLayer>(d, rng));
    net.add(std::make_unique<BatchNormLayer>(name + "_bn", cout));
    net.add(std::make_unique<ReluLayer>(name + "_relu"));
}

}  // namespace

Net
buildVggStyleNet(int classes, int64_t size, int64_t channels, int64_t width,
                 uint64_t seed)
{
    PATDNN_CHECK(size % 4 == 0, "input size divisible by 4");
    Rng rng(seed);
    Net net("vgg-style");
    int64_t res = size;
    addConvBlock(net, "conv1_1", channels, width, res, rng);
    addConvBlock(net, "conv1_2", width, width, res, rng);
    net.add(std::make_unique<MaxPoolLayer>("pool1", 2, 2));
    res /= 2;
    addConvBlock(net, "conv2_1", width, width * 2, res, rng);
    addConvBlock(net, "conv2_2", width * 2, width * 2, res, rng);
    net.add(std::make_unique<MaxPoolLayer>("pool2", 2, 2));
    res /= 2;
    net.add(std::make_unique<FlattenLayer>("flatten"));
    net.add(std::make_unique<FcLayer>("fc", width * 2 * res * res, classes, rng));
    return net;
}

Net
buildResStyleNet(int classes, int64_t size, int64_t channels, int64_t width,
                 uint64_t seed)
{
    PATDNN_CHECK(size % 4 == 0, "input size divisible by 4");
    Rng rng(seed);
    Net net("res-style");
    int64_t res = size;
    addConvBlock(net, "conv1", channels, width, res, rng);
    addConvBlock(net, "conv2", width, width, res, rng);
    net.add(std::make_unique<MaxPoolLayer>("pool1", 2, 2));
    res /= 2;
    addConvBlock(net, "conv3", width, width * 2, res, rng);
    addConvBlock(net, "conv4", width * 2, width * 2, res, rng);
    net.add(std::make_unique<MaxPoolLayer>("pool2", 2, 2));
    res /= 2;
    addConvBlock(net, "conv5", width * 2, width * 4, res, rng);
    net.add(std::make_unique<MaxPoolLayer>("pool3", 2, 2));
    res /= 2;
    net.add(std::make_unique<FlattenLayer>("flatten"));
    net.add(std::make_unique<FcLayer>("fc", width * 4 * res * res, classes, rng));
    return net;
}

}  // namespace patdnn
