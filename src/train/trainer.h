/**
 * @file
 * Training loop: mini-batch SGD/Adam over a SyntheticShapes dataset with
 * optional per-parameter freeze masks (used by masked retraining after
 * ADMM hard-pruning) and optional per-step weight hooks (used by ADMM to
 * inject the proximal gradient terms).
 */
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "train/dataset.h"
#include "train/net.h"
#include "train/optimizer.h"

namespace patdnn {

/** Options for a training run. */
struct TrainConfig
{
    int epochs = 4;
    int64_t batch_size = 32;
    float lr = 1e-3f;
    bool use_adam = true;
    uint64_t seed = 7;
    /// Called after backward and before the optimizer step; may edit
    /// parameter gradients (ADMM proximal terms, mask freezing).
    std::function<void(Net&)> grad_hook;
    /// Called after each optimizer step; may edit weights (re-apply
    /// hard masks so pruned weights stay exactly zero).
    std::function<void(Net&)> post_step_hook;
    bool verbose = false;
};

/** Result of a training/evaluation run. */
struct TrainResult
{
    double final_loss = 0.0;
    double train_accuracy = 0.0;
    double test_accuracy = 0.0;
};

/** Train `net` on the dataset per config. */
TrainResult trainNet(Net& net, const SyntheticShapes& data, const TrainConfig& cfg);

/** Classification accuracy of `net` on a pool of examples. */
double evalAccuracy(Net& net, const SyntheticShapes& data,
                    const std::vector<Example>& pool, int64_t batch_size = 64);

/**
 * Per-conv-layer binary masks (1 = weight kept). Captured from current
 * non-zero structure of the conv weights.
 */
std::vector<std::vector<uint8_t>> captureMasks(Net& net);

/** Zero masked-out gradient entries (freeze pruned weights). */
void applyMaskToGrads(Net& net, const std::vector<std::vector<uint8_t>>& masks);

/** Zero masked-out weights (keep constraint exact after a step). */
void applyMaskToWeights(Net& net, const std::vector<std::vector<uint8_t>>& masks);

}  // namespace patdnn
