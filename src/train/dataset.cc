#include "train/dataset.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace patdnn {
namespace {

/** Draw an anti-aliased line segment into a single-channel canvas. */
void
drawLine(std::vector<float>& img, int64_t n, float x0, float y0, float x1, float y1,
         float thickness, float intensity)
{
    for (int64_t y = 0; y < n; ++y) {
        for (int64_t x = 0; x < n; ++x) {
            float px = static_cast<float>(x);
            float py = static_cast<float>(y);
            float dx = x1 - x0;
            float dy = y1 - y0;
            float len2 = dx * dx + dy * dy + 1e-6f;
            float t = ((px - x0) * dx + (py - y0) * dy) / len2;
            t = std::clamp(t, 0.0f, 1.0f);
            float cx = x0 + t * dx;
            float cy = y0 + t * dy;
            float d = std::sqrt((px - cx) * (px - cx) + (py - cy) * (py - cy));
            float v = std::max(0.0f, 1.0f - d / thickness) * intensity;
            auto& cell = img[static_cast<size_t>(y * n + x)];
            cell = std::max(cell, v);
        }
    }
}

/** Draw a ring centered at (cx, cy). */
void
drawRing(std::vector<float>& img, int64_t n, float cx, float cy, float radius,
         float thickness, float intensity)
{
    for (int64_t y = 0; y < n; ++y) {
        for (int64_t x = 0; x < n; ++x) {
            float d = std::sqrt((x - cx) * (x - cx) + (y - cy) * (y - cy));
            float v = std::max(0.0f, 1.0f - std::fabs(d - radius) / thickness) * intensity;
            auto& cell = img[static_cast<size_t>(y * n + x)];
            cell = std::max(cell, v);
        }
    }
}

/** Draw a filled Gaussian blob. */
void
drawBlob(std::vector<float>& img, int64_t n, float cx, float cy, float sigma,
         float intensity)
{
    for (int64_t y = 0; y < n; ++y) {
        for (int64_t x = 0; x < n; ++x) {
            float d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
            float v = std::exp(-d2 / (2.0f * sigma * sigma)) * intensity;
            auto& cell = img[static_cast<size_t>(y * n + x)];
            cell = std::max(cell, v);
        }
    }
}

}  // namespace

SyntheticShapes::SyntheticShapes(int classes, int64_t size, int64_t channels,
                                 int64_t train_count, int64_t test_count, uint64_t seed)
    : classes_(classes), size_(size), channels_(channels)
{
    PATDNN_CHECK(classes >= 2 && classes <= 10, "classes in [2, 10]");
    Rng rng(seed);
    train_.reserve(static_cast<size_t>(train_count));
    test_.reserve(static_cast<size_t>(test_count));
    for (int64_t i = 0; i < train_count; ++i)
        train_.push_back(renderExample(static_cast<int>(i % classes), rng));
    for (int64_t i = 0; i < test_count; ++i)
        test_.push_back(renderExample(static_cast<int>(i % classes), rng));
}

Example
SyntheticShapes::renderExample(int label, Rng& rng) const
{
    int64_t n = size_;
    std::vector<float> canvas(static_cast<size_t>(n * n), 0.0f);
    float c = static_cast<float>(n) / 2.0f;
    float jx = rng.uniform(-0.12f, 0.12f) * n;
    float jy = rng.uniform(-0.12f, 0.12f) * n;
    float span = 0.33f * n;
    float th = std::max(1.2f, 0.07f * n);

    switch (label) {
      case 0:  // Horizontal bar.
        drawLine(canvas, n, c - span + jx, c + jy, c + span + jx, c + jy, th, 1.0f);
        break;
      case 1:  // Vertical bar.
        drawLine(canvas, n, c + jx, c - span + jy, c + jx, c + span + jy, th, 1.0f);
        break;
      case 2:  // Main diagonal.
        drawLine(canvas, n, c - span + jx, c - span + jy, c + span + jx, c + span + jy,
                 th, 1.0f);
        break;
      case 3:  // Anti-diagonal.
        drawLine(canvas, n, c - span + jx, c + span + jy, c + span + jx, c - span + jy,
                 th, 1.0f);
        break;
      case 4:  // Cross.
        drawLine(canvas, n, c - span + jx, c + jy, c + span + jx, c + jy, th, 0.9f);
        drawLine(canvas, n, c + jx, c - span + jy, c + jx, c + span + jy, th, 0.9f);
        break;
      case 5:  // Ring.
        drawRing(canvas, n, c + jx, c + jy, 0.3f * n, th, 1.0f);
        break;
      case 6:  // Two corner blobs (main diagonal corners).
        drawBlob(canvas, n, 0.25f * n + jx, 0.25f * n + jy, 0.1f * n, 1.0f);
        drawBlob(canvas, n, 0.75f * n + jx, 0.75f * n + jy, 0.1f * n, 1.0f);
        break;
      case 7:  // Two corner blobs (anti-diagonal corners).
        drawBlob(canvas, n, 0.75f * n + jx, 0.25f * n + jy, 0.1f * n, 1.0f);
        drawBlob(canvas, n, 0.25f * n + jx, 0.75f * n + jy, 0.1f * n, 1.0f);
        break;
      case 8:  // L shape.
        drawLine(canvas, n, c - span + jx, c - span + jy, c - span + jx, c + span + jy,
                 th, 1.0f);
        drawLine(canvas, n, c - span + jx, c + span + jy, c + span + jx, c + span + jy,
                 th, 1.0f);
        break;
      default:  // T shape.
        drawLine(canvas, n, c - span + jx, c - span + jy, c + span + jx, c - span + jy,
                 th, 1.0f);
        drawLine(canvas, n, c + jx, c - span + jy, c + jx, c + span + jy, th, 1.0f);
        break;
    }

    Example ex;
    ex.label = label;
    ex.image = Tensor(Shape{channels_, n, n});
    float brightness = rng.uniform(0.75f, 1.0f);
    for (int64_t ch = 0; ch < channels_; ++ch) {
        float tint = rng.uniform(0.8f, 1.0f);
        for (int64_t i = 0; i < n * n; ++i) {
            float v = canvas[static_cast<size_t>(i)] * brightness * tint;
            v += rng.normal(0.0f, 0.04f);
            ex.image[ch * n * n + i] = std::clamp(v, 0.0f, 1.0f);
        }
    }
    return ex;
}

void
SyntheticShapes::makeBatch(const std::vector<Example>& pool,
                           const std::vector<int64_t>& indices, int64_t begin,
                           int64_t end, Tensor& batch, std::vector<int>& labels) const
{
    int64_t bs = end - begin;
    int64_t chw = channels_ * size_ * size_;
    batch = Tensor(Shape{bs, channels_, size_, size_});
    labels.resize(static_cast<size_t>(bs));
    for (int64_t b = 0; b < bs; ++b) {
        const Example& ex = pool[static_cast<size_t>(indices[static_cast<size_t>(begin + b)])];
        for (int64_t i = 0; i < chw; ++i)
            batch[b * chw + i] = ex.image[i];
        labels[static_cast<size_t>(b)] = ex.label;
    }
}

}  // namespace patdnn
